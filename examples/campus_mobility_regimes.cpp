// Mobility-regime walkthrough: one population, growing geography.
//
// A fixed population of devices clusters around buildings (home-points in
// the clustered model). As the deployment area grows — a lab, a campus, a
// city, a region — the *same* per-device movement turns from "strong"
// (mixing the whole network) through "weak" (mixing one cluster) to
// "trivial" (effectively static), and the optimal architecture changes
// with it (Remark 14: the regime belongs to the network, not the node).
//
// Run: ./examples/campus_mobility_regimes [--n 8192]
#include <iostream>

#include "analysis/density.h"
#include "capacity/formulas.h"
#include "capacity/regimes.h"
#include "net/network.h"
#include "sim/fluid.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manetcap;
  util::Flags flags(argc, argv, {"n"});
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 8192));

  std::cout << "=== one population (" << n
            << " devices), growing geography ===\n\n";

  struct Scenario {
    const char* name;
    double alpha, M, R, K;
    net::BsPlacement placement;
  };
  // α grows with the deployment area; clusters (buildings) stay put.
  const Scenario scenarios[] = {
      {"lab floor (dense)", 0.10, 1.0, 0.0, 0.7,
       net::BsPlacement::kClusteredMatched},
      {"campus (strong mobility)", 0.30, 1.0, 0.0, 0.7,
       net::BsPlacement::kClusteredMatched},
      {"city (weak: clusters isolate)", 0.45, 0.45, 0.35, 0.75,
       net::BsPlacement::kClusteredMatched},
      {"region (trivial: near-static)", 0.75, 0.2, 0.3, 0.6,
       net::BsPlacement::kClusterGrid},
  };

  util::Table t({"scenario", "regime", "f*sqrt(gamma)", "density contrast",
                 "law", "lambda (typical)", "scheme", "bottleneck"});

  for (const auto& s : scenarios) {
    net::ScalingParams p;
    p.n = n;
    p.alpha = s.alpha;
    p.with_bs = true;
    p.K = s.K;
    p.M = s.M;
    p.R = s.R;
    p.phi = 0.0;

    const auto regime = capacity::classify(p);
    const auto law = capacity::capacity_law(p);

    auto net = net::Network::build(p, mobility::ShapeKind::kTriangular,
                                   s.placement, 5);
    auto field = analysis::compute_density_field(net.ms_home(), net.bs_pos(),
                                                 net.shape(), p.f(), 16);
    sim::FluidOptions opt;
    opt.seed = 5;
    opt.placement = s.placement;
    auto out = sim::evaluate_capacity(net, opt);

    t.add_row({s.name, to_string(regime),
               util::fmt_double(capacity::f_sqrt_gamma(p), 3),
               std::isinf(field.contrast()) ? "inf"
                                            : util::fmt_double(
                                                  field.contrast(), 3),
               law.expression, util::fmt_sci(out.lambda_symmetric, 3),
               out.scheme, to_string(out.bottleneck)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading the table top to bottom:\n"
      << "  * while mobility is strong the ad hoc fabric carries traffic\n"
      << "    at Theta(1/f) and infrastructure only supplements it;\n"
      << "  * once clusters isolate, every inter-cluster byte must ride\n"
      << "    the backbone: capacity snaps to Theta(min(k^2 c/n, k/n));\n"
      << "  * in the trivial regime the same law holds but the winning\n"
      << "    architecture changes to cellular TDMA (scheme C) — same\n"
      << "    rate, different system (the paper's closing observation).\n";
  return 0;
}
