// Delay-tolerant fleet: a packet-level story in the strong-mobility regime.
//
// A fleet of delivery vehicles circles fixed depots (home-points). We run
// the slotted simulator end-to-end and watch how the paper's machinery
// behaves in the "real" (scheduled, queued) world rather than the fluid
// one: scheme A multihop versus pure two-hop relay, and what adding a thin
// layer of wired roadside units (scheme B) buys.
//
// Run: ./examples/delay_tolerant_fleet [--n 512] [--slots 3000]
#include <iostream>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/slotsim.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manetcap;
  util::Flags flags(argc, argv, {"n", "slots"});
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 512));
  const std::size_t slots =
      static_cast<std::size_t>(flags.get_int("slots", 3000));

  std::cout << "=== delay-tolerant fleet: " << n << " vehicles, " << slots
            << " slots ===\n\n";

  // The fleet: restricted mobility (vehicles roam ~6% of the city around
  // their depot), depots uniform.
  net::ScalingParams adhoc;
  adhoc.n = n;
  adhoc.alpha = 0.3;
  adhoc.with_bs = false;
  adhoc.M = 1.0;

  net::ScalingParams hybrid = adhoc;
  hybrid.with_bs = true;
  hybrid.K = 0.8;   // roadside units
  hybrid.phi = 0.0; // each wired with c = 1/k (µ_c constant — the optimum)

  rng::Xoshiro256 g(2027);
  auto dest = net::permutation_traffic(n, g);

  util::Table t({"architecture", "mobility", "delivered/flow/slot",
                 "p10 flow", "S* pairs/slot"});

  auto run = [&](const char* name, const net::ScalingParams& p,
                 sim::SlotScheme scheme, sim::SlotMobility mob,
                 const char* mob_name) {
    auto net = net::Network::build(p, mobility::ShapeKind::kTriangular,
                                   net::BsPlacement::kClusteredMatched, 17);
    sim::SlotSimOptions opt;
    opt.scheme = scheme;
    opt.mobility = mob;
    opt.slots = slots;
    opt.warmup = slots / 10;
    opt.seed = 19;
    auto r = sim::run_slot_sim(net, dest, opt);
    t.add_row({name, mob_name, util::fmt_sci(r.mean_flow_rate, 3),
               util::fmt_sci(r.p10_flow_rate, 3),
               util::fmt_double(r.pairs_per_slot, 3)});
  };

  // Pure ad hoc, three mobility processes (the law only cares about the
  // stationary distribution — Lemma 2).
  run("ad hoc scheme A", adhoc, sim::SlotScheme::kSchemeA,
      sim::SlotMobility::kIid, "iid");
  run("ad hoc scheme A", adhoc, sim::SlotScheme::kSchemeA,
      sim::SlotMobility::kWalk, "bounded walk");
  run("ad hoc scheme A", adhoc, sim::SlotScheme::kSchemeA,
      sim::SlotMobility::kPullHome, "AR(1) pull");
  // Two-hop relay cannot bridge depots farther than the mobility disk.
  run("two-hop relay", adhoc, sim::SlotScheme::kTwoHop,
      sim::SlotMobility::kIid, "iid");
  // Roadside units + wires.
  run("hybrid scheme B", hybrid, sim::SlotScheme::kSchemeB,
      sim::SlotMobility::kIid, "iid");

  t.print(std::cout);

  std::cout
      << "\nWhat to notice:\n"
      << "  * scheme A's rate is insensitive to the mobility process —\n"
      << "    only the stationary distribution matters (Lemma 2);\n"
      << "  * two-hop relay delivers a fraction of scheme A's rate, and\n"
      << "    pairs whose depots sit farther apart than the mobility disk\n"
      << "    can NEVER deliver, no matter how long we wait — restricted\n"
      << "    mobility cannot play Grossglauser-Tse (Lemma 4's point);\n"
      << "  * roadside units lift the floor (p10 > 0): every flow rides\n"
      << "    the wires at Theta(min(k^2 c/n, k/n)) regardless of "
         "distance.\n";
  return 0;
}
