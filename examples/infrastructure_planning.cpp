// Infrastructure planning study: how many base stations, and how much
// wired bandwidth, does a target per-node rate actually need?
//
// The paper's laws make this a two-knob design problem:
//   * K  (k = n^K base stations)   — buys Θ(k/n) access capacity,
//   * ϕ  (µ_c = k·c = n^ϕ wires)   — useless beyond ϕ = 0, fatal below it.
// This example sweeps both knobs on a concrete population and prints the
// cheapest configuration meeting the target, where "cost" is the natural
// k·(1 + µ_c) proxy (radio heads plus aggregate wiring per BS).
//
// Run: ./examples/infrastructure_planning [--n 8192] [--target 4e-4]
#include <cmath>
#include <iostream>
#include <optional>

#include "capacity/formulas.h"
#include "net/network.h"
#include "routing/scheme_b.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manetcap;
  util::Flags flags(argc, argv, {"n", "alpha", "target"});
  net::ScalingParams p;
  p.n = static_cast<std::size_t>(flags.get_int("n", 8192));
  p.alpha = flags.get_double("alpha", 0.3);
  p.with_bs = true;
  p.M = 1.0;
  const double target = flags.get_double("target", 4e-4);

  std::cout << "=== infrastructure dimensioning for n = " << p.n
            << ", target per-node rate " << util::fmt_sci(target, 2)
            << " ===\n\n";

  util::Table t({"K", "phi", "k", "mu_c", "lambda (typical)", "meets target",
                 "cost k*(1+mu_c)"});

  struct Best {
    double cost;
    double K, phi, lambda;
  };
  std::optional<Best> best;

  for (double K : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    for (double phi : {-0.5, -0.25, 0.0, 0.25, 0.5}) {
      net::ScalingParams q = p;
      q.K = K;
      q.phi = phi;
      auto net = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                     net::BsPlacement::kClusteredMatched, 7);
      rng::Xoshiro256 g(11);
      auto dest = net::permutation_traffic(q.n, g);
      routing::SchemeB b;
      auto r = b.evaluate(net, dest);
      const double lambda = r.lambda_symmetric;
      const double mu_c = std::pow(static_cast<double>(q.n), phi);
      const double cost = static_cast<double>(q.k()) * (1.0 + mu_c);
      const bool ok = lambda >= target;
      if (ok && (!best || cost < best->cost))
        best = Best{cost, K, phi, lambda};
      t.add_row({util::fmt_double(K, 2), util::fmt_double(phi, 3),
                 std::to_string(q.k()), util::fmt_double(mu_c, 3),
                 util::fmt_sci(lambda, 3), ok ? "yes" : "no",
                 util::fmt_double(cost, 4)});
    }
  }
  t.print(std::cout);

  if (best) {
    std::cout << "\ncheapest feasible configuration: K = " << best->K
              << ", phi = " << best->phi << " (lambda = "
              << util::fmt_sci(best->lambda, 3) << ", cost "
              << util::fmt_double(best->cost, 4) << ")\n"
              << "\nObservations the laws predict and the table confirms:\n"
              << "  * raising phi above 0 never helps (access-limited —\n"
              << "    the min(k^2 c/n, k/n) saturates);\n"
              << "  * starving wires (phi << 0) wastes the whole BS\n"
              << "    investment;\n"
              << "  * capacity then rises linearly with k = n^K.\n";
  } else {
    std::cout << "\nno configuration met the target — raise K or lower "
                 "the target.\n";
  }
  return 0;
}
