// Infrastructure planning study: how many base stations, how many antennas,
// and how much wired bandwidth does a target per-node rate actually need?
//
// The generalized laws (arXiv:1402.2042) make this a three-knob design
// problem:
//   * K  (k = n^K base stations)   — buys Θ(k·l/n) access capacity,
//   * L  (l = n^L antennas per BS) — multiplies each BS's access streams,
//   * ϕ  (µ_c = k·c = n^ϕ wires)   — useless beyond ϕ* = min(L, 1−K),
//                                    fatal below 0.
// This example sweeps all three knobs on a concrete population and prints
// the cheapest configuration meeting the target, where cost is the
// BsCostModel dollars k·(fixed + antennas + µ_c).
//
// Run: ./examples/infrastructure_planning [--n 8192] [--target 4e-4]
#include <cmath>
#include <iostream>
#include <optional>

#include "capacity/formulas.h"
#include "capacity/recommend.h"
#include "net/network.h"
#include "routing/scheme_b.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manetcap;
  util::Flags flags(argc, argv, {"n", "alpha", "target"});
  net::ScalingParams p;
  p.n = static_cast<std::size_t>(flags.get_int("n", 8192));
  p.alpha = flags.get_double("alpha", 0.3);
  p.with_bs = true;
  p.M = 1.0;
  const double target = flags.get_double("target", 4e-4);
  const capacity::BsCostModel cost_model;

  std::cout << "=== infrastructure dimensioning for n = " << p.n
            << ", target per-node rate " << util::fmt_sci(target, 2)
            << " ===\n\n";

  util::Table t({"K", "phi", "L", "k", "l", "mu_c", "lambda (strict)",
                 "meets target", "BS dollars"});

  struct Best {
    double cost;
    double K, phi, L, lambda;
  };
  std::optional<Best> best;

  for (double K : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    for (double phi : {-0.5, -0.25, 0.0, 0.25, 0.5}) {
      for (double L : {0.0, 0.25}) {
        net::ScalingParams q = p;
        q.K = K;
        q.phi = phi;
        q.L = L;
        auto net = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                       net::BsPlacement::kClusteredMatched,
                                       7);
        rng::Xoshiro256 g(11);
        auto dest = net::permutation_traffic(q.n, g);
        routing::SchemeB b;
        auto r = b.evaluate(net, dest);
        // The strict solver λ sees the per-BS aggregate rows the antennas
        // widen; the symmetric estimate only carries mean access + wires.
        const double lambda = r.throughput.lambda;
        const double mu_c = std::pow(static_cast<double>(q.n), phi);
        const double cost = capacity::bs_dollars(q, cost_model);
        const bool ok = lambda >= target;
        if (ok && (!best || cost < best->cost))
          best = Best{cost, K, phi, L, lambda};
        t.add_row({util::fmt_double(K, 2), util::fmt_double(phi, 3),
                   util::fmt_double(L, 2), std::to_string(q.k()),
                   std::to_string(q.l()), util::fmt_double(mu_c, 3),
                   util::fmt_sci(lambda, 3), ok ? "yes" : "no",
                   util::fmt_double(cost, 4)});
      }
    }
  }
  t.print(std::cout);

  if (best) {
    std::cout << "\ncheapest feasible configuration: K = " << best->K
              << ", phi = " << best->phi << ", L = " << best->L
              << " (lambda = " << util::fmt_sci(best->lambda, 3) << ", cost "
              << util::fmt_double(best->cost, 4) << ")\n"
              << "design rules at that point: phi* = "
              << util::fmt_double(capacity::recommended_phi(best->L, best->K),
                                  3)
              << ", L* = "
              << util::fmt_double(capacity::recommended_L(best->phi, best->K),
                                  3)
              << " (backhaul/antennas beyond these are pure cost)\n"
              << "\nObservations the laws predict and the table confirms:\n"
              << "  * raising phi above min(L, 1-K) never helps — the\n"
              << "    min(k*l, k^2 c, n)/n law saturates;\n"
              << "  * starving wires (phi << 0) wastes the whole BS\n"
              << "    investment, antennas included;\n"
              << "  * antennas (L > 0) only pay off when the wires can\n"
              << "    feed them (phi > 0) — and then capacity rises with\n"
              << "    k*l = n^(K+L).\n";
  } else {
    std::cout << "\nno configuration met the target — raise K or lower "
                 "the target.\n";
  }
  return 0;
}
