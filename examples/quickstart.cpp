// Quickstart: the five-minute tour of the manetcap public API.
//
//   1. describe a hybrid network by its scaling exponents,
//   2. classify its mobility regime and look up the paper's capacity law,
//   3. sample a concrete instance and measure its fluid capacity,
//   4. cross-check with a packet-level simulation.
//
// Build & run:  ./examples/quickstart [--n 4096] [--alpha 0.3] [--K 0.7]
#include <iostream>

#include "capacity/formulas.h"
#include "capacity/regimes.h"
#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/fluid.h"
#include "sim/slotsim.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace manetcap;
  util::Flags flags(argc, argv, {"n", "alpha", "K", "phi", "M", "R"});

  // --- 1. scaling parameters --------------------------------------------
  net::ScalingParams p;
  p.n = static_cast<std::size_t>(flags.get_int("n", 4096));
  p.alpha = flags.get_double("alpha", 0.3);  // side length f = n^alpha
  p.with_bs = true;
  p.K = flags.get_double("K", 0.7);          // k = n^K base stations
  p.phi = flags.get_double("phi", 0.0);      // mu_c = k*c = n^phi
  p.M = flags.get_double("M", 1.0);          // M = 1: cluster-free
  p.R = flags.get_double("R", 0.0);

  std::cout << "network: " << p.describe() << "\n";
  for (const auto& v : p.assumption_violations())
    std::cout << "  note: " << v << "\n";

  // --- 2. theory ----------------------------------------------------------
  const auto regime = capacity::classify(p);
  const auto law = capacity::capacity_law(p);
  std::cout << "\nmobility regime: " << to_string(regime)
            << "  (f*sqrt(gamma) = "
            << util::fmt_double(capacity::f_sqrt_gamma(p), 3) << ")\n"
            << "capacity law:    lambda = " << law.expression
            << "  ~ n^" << util::fmt_double(law.exponent, 3) << "\n"
            << "optimal range:   R_T = " << law.rt_expression << "  ~ n^"
            << util::fmt_double(law.rt_exponent, 3) << "\n";

  // --- 3. fluid measurement ------------------------------------------------
  sim::FluidOptions opt;
  opt.seed = 42;
  const auto out = sim::evaluate_capacity(p, opt);
  std::cout << "\nfluid capacity of a sampled instance (scheme: "
            << out.scheme << ")\n"
            << "  lambda (worst flow):   " << util::fmt_sci(out.lambda, 3)
            << "\n"
            << "  lambda (typical flow): "
            << util::fmt_sci(out.lambda_symmetric, 3) << "\n"
            << "  ad hoc component:      "
            << util::fmt_sci(out.lambda_adhoc, 3) << "\n"
            << "  infrastructure part:   "
            << util::fmt_sci(out.lambda_infra, 3) << "\n"
            << "  bottleneck resource:   " << to_string(out.bottleneck)
            << "\n";

  // --- 4. packet-level cross-check ----------------------------------------
  // (kept small: 512 nodes, 2000 slots)
  net::ScalingParams small = p;
  small.n = std::min<std::size_t>(p.n, 512);
  auto net = net::Network::build(small, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 42);
  rng::Xoshiro256 g(43);
  auto dest = net::permutation_traffic(small.n, g);
  sim::SlotSimOptions sopt;
  sopt.scheme = sim::SlotScheme::kSchemeB;
  sopt.slots = 2000;
  sopt.warmup = 200;
  sopt.seed = 44;
  auto slot = sim::run_slot_sim(net, dest, sopt);
  std::cout << "\npacket-level cross-check (n = " << small.n
            << ", scheme B, 2000 slots):\n"
            << "  delivered rate/flow:  "
            << util::fmt_sci(slot.mean_flow_rate, 3) << " packets/slot\n"
            << "  S* pairs per slot:    "
            << util::fmt_double(slot.pairs_per_slot, 3) << "\n";
  std::cout << "\nNext: see bench/ for every table & figure of the paper,\n"
            << "and examples/infrastructure_planning for a design study.\n";
  return 0;
}
