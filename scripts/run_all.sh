#!/usr/bin/env bash
# One-shot reproduction: configure, build, test, regenerate every paper
# artifact, and leave the transcripts next to the sources.
#
#   scripts/run_all.sh [build-dir]
#
# THREADS=N bounds the worker threads the parallel drivers (sweeps,
# figure panels, slot-sim cases) fan out on; default: all cores. Results
# are bit-identical for any value — only wall-clock changes.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

export MANETCAP_THREADS="${THREADS:-$(nproc 2>/dev/null || echo 1)}"

cmake -B "$build" -G Ninja -S "$repo"
cmake --build "$build"

ctest --test-dir "$build" 2>&1 | tee "$repo/test_output.txt"

(
  cd "$build/bench"
  for b in *; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== bench/$b ====="
      "./$b"
      echo
    fi
  done
) 2>&1 | tee "$repo/bench_output.txt"

echo
echo "Done. Tables/figures: $repo/bench_output.txt"
echo "CSV series:          $build/bench/bench_csv/"
