#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "backbone/backbone.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::backbone {
namespace {

// -------------------------------------------------------- WiredBackbone --

TEST(WiredBackbone, AccumulatesUndirectedLoad) {
  WiredBackbone b(4, 2.0);
  b.add_load(0, 1, 0.5);
  b.add_load(1, 0, 0.25);  // same edge, opposite order
  EXPECT_DOUBLE_EQ(b.load(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(b.load(1, 0), 0.75);
  EXPECT_DOUBLE_EQ(b.load(2, 3), 0.0);
}

TEST(WiredBackbone, MaxFeasibleScale) {
  WiredBackbone b(3, 4.0);
  b.add_load(0, 1, 2.0);
  b.add_load(1, 2, 1.0);
  // Most loaded edge carries 2 against capacity 4 → scale 2.
  EXPECT_DOUBLE_EQ(b.max_feasible_scale(), 2.0);
  EXPECT_DOUBLE_EQ(b.max_edge_load(), 2.0);
}

TEST(WiredBackbone, UnloadedIsUnbounded) {
  WiredBackbone b(2, 1.0);
  EXPECT_TRUE(std::isinf(b.max_feasible_scale()));
  EXPECT_EQ(b.num_loaded_edges(), 0u);
}

TEST(WiredBackbone, RejectsSelfEdgeAndBadIds) {
  WiredBackbone b(2, 1.0);
  EXPECT_THROW(b.add_load(0, 0, 1.0), manetcap::CheckError);
  EXPECT_THROW(b.add_load(0, 5, 1.0), manetcap::CheckError);
  EXPECT_THROW(b.add_load(0, 1, -1.0), manetcap::CheckError);
}

// ------------------------------------------------------ GroupedBackbone --

TEST(GroupedBackbone, SpreadsOverCrossEdges) {
  // Groups of 3 and 4 BSs → 12 edges between them.
  GroupedBackbone b({3, 4}, 1.0);
  b.add_load(0, 1, 6.0);
  EXPECT_DOUBLE_EQ(b.group_load(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(b.max_edge_load(), 0.5);        // 6 / 12
  EXPECT_DOUBLE_EQ(b.max_feasible_scale(), 2.0);   // 1.0 / 0.5
}

TEST(GroupedBackbone, IntraGroupUsesPairCount) {
  GroupedBackbone b({4}, 1.0);
  b.add_load(0, 0, 3.0);
  // C(4,2) = 6 internal edges → per-edge 0.5.
  EXPECT_DOUBLE_EQ(b.max_edge_load(), 0.5);
}

TEST(GroupedBackbone, OrderOfGroupsIrrelevant) {
  GroupedBackbone b({2, 5}, 1.0);
  b.add_load(0, 1, 1.0);
  b.add_load(1, 0, 1.0);
  EXPECT_DOUBLE_EQ(b.group_load(1, 0), 2.0);
}

TEST(GroupedBackbone, EmptyGroupIsStructurallyInfeasible) {
  GroupedBackbone b({0, 3}, 1.0);
  b.add_load(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(b.max_feasible_scale(), 0.0);
}

TEST(GroupedBackbone, SingletonIntraGroupInfeasible) {
  GroupedBackbone b({1}, 1.0);
  b.add_load(0, 0, 1.0);  // no internal edge exists
  EXPECT_DOUBLE_EQ(b.max_feasible_scale(), 0.0);
}

TEST(GroupedBackbone, ZeroLoadIgnored) {
  GroupedBackbone b({0, 2}, 1.0);
  b.add_load(0, 1, 0.0);  // zero demand on an empty group: harmless
  EXPECT_TRUE(std::isinf(b.max_feasible_scale()));
}

TEST(GroupedBackbone, CapacityScalesResult) {
  GroupedBackbone lo({2, 2}, 0.5);
  GroupedBackbone hi({2, 2}, 2.0);
  lo.add_load(0, 1, 4.0);
  hi.add_load(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(hi.max_feasible_scale() / lo.max_feasible_scale(), 4.0);
}

TEST(GroupedBackbone, SingletonGroupsMatchExactLedger) {
  // Property: with every BS its own group, the grouped (fluid) ledger and
  // the exact per-edge ledger agree on max edge load and feasible scale
  // for any load pattern.
  const std::size_t k = 12;
  std::vector<std::size_t> sizes(k, 1);
  GroupedBackbone grouped(sizes, 0.7);
  WiredBackbone exact(k, 0.7);
  rng::Xoshiro256 g(99);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng::uniform_index(g, k));
    auto b = static_cast<std::uint32_t>(rng::uniform_index(g, k));
    if (a == b) b = (b + 1) % k;
    const double load = rng::uniform(g, 0.0, 3.0);
    grouped.add_load(a, b, load);
    exact.add_load(a, b, load);
  }
  EXPECT_NEAR(grouped.max_edge_load(), exact.max_edge_load(), 1e-12);
  EXPECT_NEAR(grouped.max_feasible_scale(), exact.max_feasible_scale(),
              1e-12);
}

TEST(GroupedBackbone, MatchesTheoryShape) {
  // k BSs in g groups, n flows uniformly over group pairs: per-edge load
  // ≈ λ·n/k² and max scale ≈ c·k²/n — the k²c/n law of Lemma 7/Theorem 5.
  const std::size_t k = 64, groups = 4;
  const double c = 0.01;
  std::vector<std::size_t> sizes(groups, k / groups);
  GroupedBackbone b(sizes, c);
  const std::size_t n = 1024;
  std::size_t flows = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t gs = i % groups;
    const std::uint32_t gd = (i / groups) % groups;
    if (gs == gd) continue;
    b.add_load(gs, gd, 1.0);
    ++flows;
  }
  // Cross-group edges: 16·16 = 256 per pair; ~n·(3/4) flows over 6 pairs.
  const double per_edge_expected =
      static_cast<double>(flows) / 6.0 / 256.0;
  EXPECT_NEAR(b.max_edge_load(), per_edge_expected,
              per_edge_expected * 0.5);
  EXPECT_NEAR(b.max_feasible_scale(), c / b.max_edge_load(), 1e-12);
}

}  // namespace
}  // namespace manetcap::backbone
