#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::rng {
namespace {

TEST(Xoshiro, DeterministicGivenSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SplitStreamsAreIndependentlySeeded) {
  Xoshiro256 root(7);
  Xoshiro256 c1 = root.split(1);
  Xoshiro256 c2 = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1() == c2()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Uniform01, InHalfOpenUnitInterval) {
  Xoshiro256 g(11);
  for (int i = 0; i < 10000; ++i) {
    double u = uniform01(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanIsHalf) {
  Xoshiro256 g(13);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += uniform01(g);
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(UniformIndex, CoversRangeUniformly) {
  Xoshiro256 g(17);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[uniform_index(g, n)];
  for (auto c : counts)
    EXPECT_NEAR(c, trials / static_cast<double>(n), 600.0);
}

TEST(UniformIndex, SingletonAlwaysZero) {
  Xoshiro256 g(19);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(uniform_index(g, 1), 0u);
}

TEST(UniformInDisk, StaysInDiskAndFillsIt) {
  Xoshiro256 g(23);
  const geom::Point c{0.5, 0.5};
  const double r = 0.2;
  int outer_half = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    geom::Point p = uniform_in_disk(g, c, r);
    double d = geom::torus_dist(c, p);
    EXPECT_LE(d, r + 1e-12);
    if (d > r / std::sqrt(2.0)) ++outer_half;
  }
  // Uniform area ⇒ half the mass lies beyond r/√2.
  EXPECT_NEAR(outer_half / static_cast<double>(trials), 0.5, 0.02);
}

TEST(UniformInDisk, WrapsAcrossSeam) {
  Xoshiro256 g(29);
  for (int i = 0; i < 100; ++i) {
    geom::Point p = uniform_in_disk(g, {0.01, 0.01}, 0.05);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_LE(geom::torus_dist(p, {0.01, 0.01}), 0.05 + 1e-12);
  }
}

TEST(Normal, MeanZeroVarianceOne) {
  Xoshiro256 g(31);
  double sum = 0.0, sum2 = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    double x = normal(g);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum2 / trials, 1.0, 0.03);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 g(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  shuffle(g, v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Shuffle, UniformOverPositions) {
  // Element 0 should land in each slot equally often.
  Xoshiro256 g(41);
  const int n = 5, trials = 50000;
  std::vector<int> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v(n);
    for (int i = 0; i < n; ++i) v[i] = i;
    shuffle(g, v);
    for (int i = 0; i < n; ++i)
      if (v[i] == 0) ++counts[i];
  }
  for (auto c : counts)
    EXPECT_NEAR(c, trials / static_cast<double>(n), 500.0);
}

TEST(UniformRange, RespectsBounds) {
  Xoshiro256 g(43);
  for (int i = 0; i < 1000; ++i) {
    double v = uniform(g, -2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

}  // namespace
}  // namespace manetcap::rng
