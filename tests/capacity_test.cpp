#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "capacity/regimes.h"
#include "util/check.h"

namespace manetcap::capacity {
namespace {

net::ScalingParams params(double alpha, double M, double R, bool with_bs,
                          double K = 0.7, double phi = 0.0,
                          std::size_t n = 4096) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = alpha;
  p.M = M;
  p.R = R;
  p.with_bs = with_bs;
  p.K = K;
  p.phi = phi;
  return p;
}

// -------------------------------------------------------------- regimes --

TEST(Regimes, UniformLayoutWithModerateAlphaIsStrong) {
  // m = n ⇒ f√γ ~ n^(α−1/2): strong for all α < 1/2.
  EXPECT_EQ(classify_exponents(0.3, 1.0, 0.0), MobilityRegime::kStrong);
  EXPECT_EQ(classify_exponents(0.49, 1.0, 0.0), MobilityRegime::kStrong);
}

TEST(Regimes, BoundaryAlphaHalfIsNotStrong) {
  // α = 1/2, M = 1: f√γ = √log n = ω(1) → not strong.
  EXPECT_NE(classify_exponents(0.5, 1.0, 0.0), MobilityRegime::kStrong);
}

TEST(Regimes, HeavyClusteringWeakensMobility) {
  // α = 0.45, M = 0.3: α − M/2 = 0.3 > 0 → not strong.
  // Trivial statistic: α − R − (1−M)/2 = 0.45 − 0.4 − 0.35 < 0 → weak.
  EXPECT_EQ(classify_exponents(0.45, 0.3, 0.4), MobilityRegime::kWeak);
}

TEST(Regimes, TrivialWhenMobilityTinyVsClusterScale) {
  // α = 0.5, M = 0.2, R = 0.0: trivial statistic 0.5 − 0 − 0.4 = 0.1 > 0.
  EXPECT_EQ(classify_exponents(0.5, 0.2, 0.0), MobilityRegime::kTrivial);
}

TEST(Regimes, StatisticsMatchConcreteValues) {
  auto p = params(0.45, 0.3, 0.4, true, 0.6);
  const double m = static_cast<double>(p.m());
  EXPECT_NEAR(f_sqrt_gamma(p), p.f() * std::sqrt(std::log(m) / m), 1e-9);
  EXPECT_NEAR(f_sqrt_gamma_tilde(p), p.f() * std::sqrt(p.gamma_tilde()),
              1e-9);
}

TEST(Regimes, FiniteNStatisticsAgreeWithExponentClassification) {
  // Deep in the strong regime the finite-n statistic is ≪ 1; deep in the
  // trivial regime it is ≫ 1.
  auto strong = params(0.2, 1.0, 0.0, true);
  strong.n = 100000;
  EXPECT_LT(f_sqrt_gamma(strong), 0.3);
  auto trivial = params(0.5, 0.2, 0.0, true);
  trivial.n = 100000;
  EXPECT_GT(f_sqrt_gamma_tilde(trivial), 3.0);
}

TEST(Regimes, Names) {
  EXPECT_EQ(to_string(MobilityRegime::kStrong), "strong");
  EXPECT_EQ(to_string(MobilityRegime::kWeak), "weak");
  EXPECT_EQ(to_string(MobilityRegime::kTrivial), "trivial");
}

// ------------------------------------------------------------- formulas --

TEST(Formulas, MobilityExponent) {
  EXPECT_DOUBLE_EQ(mobility_exponent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mobility_exponent(0.35), -0.35);
}

TEST(Formulas, InfrastructureExponentSwitchesAtPhiZero) {
  // ϕ ≥ 0: access-limited k/n → K − 1.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, 0.0), -0.3);
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, 0.5), -0.3);
  // ϕ < 0: backbone-limited k²c/n → K + ϕ − 1.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, -0.5), -0.8);
  EXPECT_TRUE(backbone_limited(-0.1));
  EXPECT_FALSE(backbone_limited(0.0));
}

TEST(Formulas, MobilityDominance) {
  // α = 0.2 vs K = 0.7, ϕ = 0: infra −0.3 < mobility −0.2 → mobility wins.
  EXPECT_TRUE(mobility_dominant(0.2, 0.7, 0.0));
  // K = 0.9: infra −0.1 > −0.2 → infrastructure wins.
  EXPECT_FALSE(mobility_dominant(0.2, 0.9, 0.0));
}

TEST(Formulas, StrongRegimeLawCombinesBothTerms) {
  auto law = capacity_law(params(0.3, 1.0, 0.0, true, 0.9, 0.0));
  EXPECT_EQ(law.regime, MobilityRegime::kStrong);
  EXPECT_DOUBLE_EQ(law.exponent, std::max(-0.3, 0.9 - 1.0));
  EXPECT_DOUBLE_EQ(law.rt_exponent, -0.5);
}

TEST(Formulas, StrongRegimeNoBs) {
  auto law = capacity_law(params(0.3, 1.0, 0.0, false));
  EXPECT_DOUBLE_EQ(law.exponent, -0.3);
  EXPECT_EQ(law.expression, "Th(1/f)");
}

TEST(Formulas, WeakRegimeWithBs) {
  auto law = capacity_law(params(0.45, 0.3, 0.4, true, 0.6, 0.0));
  EXPECT_EQ(law.regime, MobilityRegime::kWeak);
  EXPECT_DOUBLE_EQ(law.exponent, 0.6 - 1.0);
  // R_T = r√(m/n) ⇒ exponent −R + (M−1)/2 = −0.4 − 0.35 = −0.75.
  EXPECT_NEAR(law.rt_exponent, -0.75, 1e-12);
}

TEST(Formulas, WeakRegimeNoBsIsClusteredLaw) {
  auto law = capacity_law(params(0.45, 0.3, 0.4, false));
  EXPECT_DOUBLE_EQ(law.exponent, 0.3 / 2.0 - 1.0);
  EXPECT_NEAR(law.rt_exponent, -0.15, 1e-12);
}

TEST(Formulas, TrivialRegimeWithBs) {
  auto law = capacity_law(params(0.5, 0.2, 0.0, true, 0.6, -0.5));
  EXPECT_EQ(law.regime, MobilityRegime::kTrivial);
  EXPECT_DOUBLE_EQ(law.exponent, 0.6 - 0.5 - 1.0);
  // R_T = r√(m/k) ⇒ −R + (M−K)/2 = 0 + (0.2−0.6)/2 = −0.2.
  EXPECT_NEAR(law.rt_exponent, -0.2, 1e-12);
}

TEST(Formulas, GeneralizedInfrastructureExponent) {
  // Antenna branch binds: K+L = 0.8 < K+ϕ = 1.0 < 1.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.6, 0.4, 0.2), -0.2);
  // Backbone branch binds: K+ϕ = 0.2 smallest.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.6, -0.4, 0.2), -0.8);
  // Saturation: K+L = 1.4 and K+ϕ = 1.3 both exceed 1 → exponent 0.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.9, 0.4, 0.5), 0.0);
  // L = 0 reduces to the paper's 2-arg law on a grid.
  for (double K : {0.0, 0.3, 0.7, 1.0})
    for (double phi : {-0.8, -0.2, 0.0, 0.3, 1.0})
      EXPECT_DOUBLE_EQ(infrastructure_exponent(K, phi, 0.0),
                       infrastructure_exponent(K, phi))
          << "K=" << K << " phi=" << phi;
}

TEST(Formulas, InfrastructureBottleneckBranches) {
  EXPECT_EQ(infrastructure_bottleneck(0.6, -0.4, 0.2),
            InfraBottleneck::kBackbone);
  EXPECT_EQ(infrastructure_bottleneck(0.6, 0.4, 0.2),
            InfraBottleneck::kAntenna);
  EXPECT_EQ(infrastructure_bottleneck(0.9, 0.4, 0.5),
            InfraBottleneck::kSaturated);
  // Tie K+L == K+ϕ prefers the antenna branch (at L = 0 this is the
  // paper's "ϕ ≥ 0 ⇒ access-limited" convention).
  EXPECT_EQ(infrastructure_bottleneck(0.6, 0.0, 0.0),
            InfraBottleneck::kAntenna);
  EXPECT_EQ(infrastructure_bottleneck(0.6, 0.2, 0.2),
            InfraBottleneck::kAntenna);
  EXPECT_EQ(to_string(InfraBottleneck::kBackbone), "backbone");
}

// Satellite bugfix regression: in the weak/trivial regimes with BSs the
// law must be max(infrastructure, clustered no-BS) — BSs can always be
// ignored, so they never make the order capacity worse. Pre-fix the
// with-BS branch returned the infrastructure exponent alone, so these two
// points reported a *lower* exponent with BSs than without.
TEST(Formulas, WithBsNeverWorseThanIgnoringBs) {
  // Weak regime, tiny-K infrastructure: infra = 0.4 − 0.3 − 1 = −0.9
  // but the clustered no-BS scheme achieves M/2 − 1 = −0.85.
  auto weak = params(0.45, 0.3, 0.4, true, 0.4, -0.3);
  auto weak_law = capacity_law(weak);
  ASSERT_EQ(weak_law.regime, MobilityRegime::kWeak);
  EXPECT_DOUBLE_EQ(weak_law.exponent, -0.85);
  EXPECT_EQ(weak_law.expression, "Th(sqrt(m/(n^2 log m)))");
  EXPECT_NEAR(weak_law.rt_exponent, -0.15, 1e-12);
  auto weak_no_bs = weak;
  weak_no_bs.with_bs = false;
  EXPECT_GE(weak_law.exponent, capacity_law(weak_no_bs).exponent);

  // Trivial regime, starved backbone: infra = 0.6 − 0.8 − 1 = −1.2 vs
  // clustered 0.2/2 − 1 = −0.9.
  auto triv = params(0.75, 0.2, 0.3, true, 0.6, -0.8);
  auto triv_law = capacity_law(triv);
  ASSERT_EQ(triv_law.regime, MobilityRegime::kTrivial);
  EXPECT_DOUBLE_EQ(triv_law.exponent, -0.9);

  // The property, over a grid: adding BSs never lowers the exponent.
  for (double alpha : {0.45, 0.75})
    for (double K : {0.1, 0.5, 0.9})
      for (double phi : {-0.8, 0.0, 0.4})
        for (double L : {0.0, 0.3}) {
          auto with = params(alpha, 0.3, 0.4, true, K, phi);
          with.L = L;
          auto without = with;
          without.with_bs = false;
          EXPECT_GE(capacity_law(with).exponent,
                    capacity_law(without).exponent)
              << "alpha=" << alpha << " K=" << K << " phi=" << phi
              << " L=" << L;
        }
}

TEST(Formulas, ExactTieKeepsInfrastructureRow) {
  // K + ϕ = 0.5 − 0.25 and M/2 = 0.5/2 are both exactly 0.25 in binary, so
  // infra == clustered == −0.75 bit-for-bit: the infra row (with its R_T)
  // wins ties and the reported law stays the BS scheme.
  auto law = capacity_law(params(0.375, 0.5, 0.25, true, 0.5, -0.25));
  ASSERT_EQ(law.regime, MobilityRegime::kWeak);
  EXPECT_DOUBLE_EQ(law.exponent, -0.75);
  EXPECT_EQ(law.expression, "Th(min(k^2 c/n, k/n))");
}

TEST(Formulas, AntennasLiftTrivialRegimeLaw) {
  auto single = params(0.75, 0.2, 0.3, true, 0.6, 0.4);
  auto multi = single;
  multi.L = 0.2;
  auto law0 = capacity_law(single);
  auto law1 = capacity_law(multi);
  ASSERT_EQ(law1.regime, MobilityRegime::kTrivial);
  EXPECT_DOUBLE_EQ(law0.exponent, -0.4);
  EXPECT_DOUBLE_EQ(law1.exponent, -0.2);
  EXPECT_EQ(law1.expression, "Th(min(k l/n, k^2 c/n, 1))");
  // With a starved backbone the antennas cannot lift anything.
  auto starved = multi;
  starved.phi = -0.4;
  EXPECT_DOUBLE_EQ(capacity_law(starved).exponent, -0.8);
}

TEST(Formulas, GeneralizedMobilityDominance) {
  // α = 0.25 vs K = 0.6, ϕ = 0.4: single-antenna infra −0.4 loses, two
  // antenna decades L = 0.3 push the access branch to −0.1 and win.
  EXPECT_TRUE(mobility_dominant(0.25, 0.6, 0.4, 0.0));
  EXPECT_FALSE(mobility_dominant(0.25, 0.6, 0.4, 0.3));
  // L cannot help through a starved backbone.
  EXPECT_TRUE(mobility_dominant(0.25, 0.6, -0.4, 0.3));
}

TEST(Formulas, CapacityNeverExceedsConstant) {
  // Per-node capacity exponent can never be positive (W = 1).
  for (double alpha : {0.0, 0.25, 0.5}) {
    for (double K : {0.0, 0.5, 1.0}) {
      for (double phi : {-1.0, 0.0, 1.0}) {
        auto law = capacity_law(params(alpha, 1.0, 0.0, true, K, phi));
        EXPECT_LE(law.exponent, 1e-12)
            << "alpha=" << alpha << " K=" << K << " phi=" << phi;
      }
    }
  }
}

// -------------------------------------------------------- phase diagram --

TEST(PhaseDiagram, GridShapeAndBounds) {
  auto d = compute_phase_diagram(0.0, 6, 5);
  EXPECT_EQ(d.grid.size(), 30u);
  EXPECT_DOUBLE_EQ(d.at(0, 0).alpha, 0.0);
  EXPECT_DOUBLE_EQ(d.at(5, 0).alpha, 0.5);
  EXPECT_DOUBLE_EQ(d.at(0, 4).K, 1.0);
}

TEST(PhaseDiagram, FullInfrastructureAlwaysDominatesAtKOne) {
  // K = 1, ϕ ≥ 0: infra exponent 0 ≥ any mobility exponent.
  auto d = compute_phase_diagram(0.0, 11, 11);
  for (std::size_t ai = 0; ai < 11; ++ai)
    EXPECT_FALSE(d.at(ai, 10).mobility_dominant);
}

TEST(PhaseDiagram, MobilityDominatesSmallK) {
  auto d = compute_phase_diagram(0.0, 11, 11);
  // α = 0.25 (ai=5), K = 0.1 (ki=1): mobility −0.25 > infra −0.9.
  EXPECT_TRUE(d.at(5, 1).mobility_dominant);
}

TEST(PhaseDiagram, BoundaryMatchesFormula) {
  for (double alpha : {0.0, 0.2, 0.4}) {
    for (double phi : {-0.5, 0.0}) {
      const double Kb = dominance_boundary_K(alpha, phi);
      EXPECT_DOUBLE_EQ(Kb, 1.0 - alpha - std::min(phi, 0.0));
      // Just above the boundary infra dominates, just below mobility does.
      EXPECT_GE(infrastructure_exponent(Kb + 0.01, phi),
                mobility_exponent(alpha));
      EXPECT_LT(infrastructure_exponent(Kb - 0.01, phi),
                mobility_exponent(alpha));
    }
  }
}

TEST(PhaseDiagram, NegativePhiShrinksInfrastructureRegion) {
  auto base = compute_phase_diagram(0.0, 11, 11);
  auto neg = compute_phase_diagram(-0.5, 11, 11);
  std::size_t base_infra = 0, neg_infra = 0;
  for (const auto& p : base.grid)
    if (!p.mobility_dominant) ++base_infra;
  for (const auto& p : neg.grid)
    if (!p.mobility_dominant) ++neg_infra;
  EXPECT_GT(base_infra, neg_infra);
}

TEST(PhaseDiagram, AsciiRenderingHasGridRows) {
  auto d = compute_phase_diagram(0.0, 11, 5);
  const std::string art = render_ascii(d);
  EXPECT_NE(art.find('M'), std::string::npos);
  EXPECT_NE(art.find('I'), std::string::npos);
}

// Pins the documented layout contract: grid[ki * alpha_steps + ai] with α
// the fast axis. Consumers (CSV writers, renderers) index the raw vector.
TEST(CapacityPhaseDiagramTest, LayoutIsRowMajor) {
  auto d = compute_phase_diagram(0.0, 0.0, 7, 4);
  ASSERT_EQ(d.grid.size(), 28u);
  for (std::size_t ki = 0; ki < d.k_steps; ++ki)
    for (std::size_t ai = 0; ai < d.alpha_steps; ++ai) {
      const PhasePoint& raw = d.grid[ki * d.alpha_steps + ai];
      EXPECT_DOUBLE_EQ(raw.alpha, d.at(ai, ki).alpha);
      EXPECT_DOUBLE_EQ(raw.K, d.at(ai, ki).K);
      // The axes themselves: α ascends along the fast index, K along the
      // slow one.
      EXPECT_DOUBLE_EQ(raw.alpha, 0.5 * ai / (d.alpha_steps - 1));
      EXPECT_DOUBLE_EQ(raw.K, 1.0 * ki / (d.k_steps - 1));
    }
}

TEST(CapacityPhaseDiagramTest, AtChecksBounds) {
  auto d = compute_phase_diagram(0.0, 5, 3);
  EXPECT_THROW(d.at(5, 0), manetcap::CheckError);
  EXPECT_THROW(d.at(0, 3), manetcap::CheckError);
  auto f = compute_frontier_diagram(0.3, 0.7, 5, 3);
  EXPECT_THROW(f.at(5, 0), manetcap::CheckError);
  EXPECT_THROW(f.at(0, 3), manetcap::CheckError);
}

TEST(PhaseDiagram, GeneralizedBoundaryAndReduction) {
  for (double alpha : {0.0, 0.2, 0.4}) {
    for (double phi : {-0.5, 0.0, 0.5}) {
      EXPECT_DOUBLE_EQ(dominance_boundary_K(alpha, phi, 0.0),
                       dominance_boundary_K(alpha, phi));
      for (double L : {0.0, 0.3}) {
        const double Kb = dominance_boundary_K(alpha, phi, L);
        EXPECT_DOUBLE_EQ(Kb, 1.0 - alpha - std::min(L, phi));
        if (Kb + 0.01 <= 1.0) {
          EXPECT_GE(infrastructure_exponent(Kb + 0.01, phi, L),
                    mobility_exponent(alpha));
        }
        EXPECT_LT(infrastructure_exponent(Kb - 0.01, phi, L),
                  mobility_exponent(alpha));
      }
    }
  }
}

TEST(PhaseDiagram, AntennasGrowInfrastructureRegion) {
  auto base = compute_phase_diagram(0.5, 0.0, 11, 11);
  auto ant = compute_phase_diagram(0.5, 0.4, 11, 11);
  std::size_t base_infra = 0, ant_infra = 0;
  for (const auto& p : base.grid)
    if (!p.mobility_dominant) ++base_infra;
  for (const auto& p : ant.grid)
    if (!p.mobility_dominant) ++ant_infra;
  EXPECT_GT(ant_infra, base_infra);
}

TEST(FrontierDiagram, GridBottlenecksAndLayout) {
  auto d = compute_frontier_diagram(0.3, 0.7, 5, 3);
  ASSERT_EQ(d.grid.size(), 15u);
  EXPECT_DOUBLE_EQ(d.at(0, 0).phi, -1.0);
  EXPECT_DOUBLE_EQ(d.at(4, 0).phi, 1.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2).L, 1.0);
  // Layout contract: grid[li * phi_steps + pi], ϕ the fast axis.
  for (std::size_t li = 0; li < d.l_steps; ++li)
    for (std::size_t pi = 0; pi < d.phi_steps; ++pi) {
      const FrontierPoint& raw = d.grid[li * d.phi_steps + pi];
      EXPECT_DOUBLE_EQ(raw.phi, d.at(pi, li).phi);
      EXPECT_DOUBLE_EQ(raw.L, d.at(pi, li).L);
    }
  // Starved wires: backbone-limited and mobility-dominant.
  EXPECT_EQ(d.at(0, 2).bottleneck, InfraBottleneck::kBackbone);
  EXPECT_TRUE(d.at(0, 2).mobility_dominant);
  // Fat wires + many antennas: K+L and K+ϕ both > 1 → saturated, λ = Θ(1).
  EXPECT_EQ(d.at(4, 2).bottleneck, InfraBottleneck::kSaturated);
  EXPECT_DOUBLE_EQ(d.at(4, 2).exponent, 0.0);
  // Every point's exponent is max(mobility, infrastructure).
  for (const auto& p : d.grid)
    EXPECT_DOUBLE_EQ(
        p.exponent,
        std::max(mobility_exponent(0.3),
                 infrastructure_exponent(0.7, p.phi, p.L)));
}

TEST(FrontierDiagram, AsciiRenderingShowsBottleneckClasses) {
  auto d = compute_frontier_diagram(0.3, 0.7, 11, 6);
  const std::string art = render_ascii(d);
  EXPECT_NE(art.find('M'), std::string::npos);  // mobility-dominant corner
  EXPECT_NE(art.find('A'), std::string::npos);  // antenna-limited
  EXPECT_NE(art.find('S'), std::string::npos);  // saturated corner
}

}  // namespace
}  // namespace manetcap::capacity
