#include <gtest/gtest.h>

#include <cmath>

#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "capacity/regimes.h"
#include "util/check.h"

namespace manetcap::capacity {
namespace {

net::ScalingParams params(double alpha, double M, double R, bool with_bs,
                          double K = 0.7, double phi = 0.0,
                          std::size_t n = 4096) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = alpha;
  p.M = M;
  p.R = R;
  p.with_bs = with_bs;
  p.K = K;
  p.phi = phi;
  return p;
}

// -------------------------------------------------------------- regimes --

TEST(Regimes, UniformLayoutWithModerateAlphaIsStrong) {
  // m = n ⇒ f√γ ~ n^(α−1/2): strong for all α < 1/2.
  EXPECT_EQ(classify_exponents(0.3, 1.0, 0.0), MobilityRegime::kStrong);
  EXPECT_EQ(classify_exponents(0.49, 1.0, 0.0), MobilityRegime::kStrong);
}

TEST(Regimes, BoundaryAlphaHalfIsNotStrong) {
  // α = 1/2, M = 1: f√γ = √log n = ω(1) → not strong.
  EXPECT_NE(classify_exponents(0.5, 1.0, 0.0), MobilityRegime::kStrong);
}

TEST(Regimes, HeavyClusteringWeakensMobility) {
  // α = 0.45, M = 0.3: α − M/2 = 0.3 > 0 → not strong.
  // Trivial statistic: α − R − (1−M)/2 = 0.45 − 0.4 − 0.35 < 0 → weak.
  EXPECT_EQ(classify_exponents(0.45, 0.3, 0.4), MobilityRegime::kWeak);
}

TEST(Regimes, TrivialWhenMobilityTinyVsClusterScale) {
  // α = 0.5, M = 0.2, R = 0.0: trivial statistic 0.5 − 0 − 0.4 = 0.1 > 0.
  EXPECT_EQ(classify_exponents(0.5, 0.2, 0.0), MobilityRegime::kTrivial);
}

TEST(Regimes, StatisticsMatchConcreteValues) {
  auto p = params(0.45, 0.3, 0.4, true, 0.6);
  const double m = static_cast<double>(p.m());
  EXPECT_NEAR(f_sqrt_gamma(p), p.f() * std::sqrt(std::log(m) / m), 1e-9);
  EXPECT_NEAR(f_sqrt_gamma_tilde(p), p.f() * std::sqrt(p.gamma_tilde()),
              1e-9);
}

TEST(Regimes, FiniteNStatisticsAgreeWithExponentClassification) {
  // Deep in the strong regime the finite-n statistic is ≪ 1; deep in the
  // trivial regime it is ≫ 1.
  auto strong = params(0.2, 1.0, 0.0, true);
  strong.n = 100000;
  EXPECT_LT(f_sqrt_gamma(strong), 0.3);
  auto trivial = params(0.5, 0.2, 0.0, true);
  trivial.n = 100000;
  EXPECT_GT(f_sqrt_gamma_tilde(trivial), 3.0);
}

TEST(Regimes, Names) {
  EXPECT_EQ(to_string(MobilityRegime::kStrong), "strong");
  EXPECT_EQ(to_string(MobilityRegime::kWeak), "weak");
  EXPECT_EQ(to_string(MobilityRegime::kTrivial), "trivial");
}

// ------------------------------------------------------------- formulas --

TEST(Formulas, MobilityExponent) {
  EXPECT_DOUBLE_EQ(mobility_exponent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mobility_exponent(0.35), -0.35);
}

TEST(Formulas, InfrastructureExponentSwitchesAtPhiZero) {
  // ϕ ≥ 0: access-limited k/n → K − 1.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, 0.0), -0.3);
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, 0.5), -0.3);
  // ϕ < 0: backbone-limited k²c/n → K + ϕ − 1.
  EXPECT_DOUBLE_EQ(infrastructure_exponent(0.7, -0.5), -0.8);
  EXPECT_TRUE(backbone_limited(-0.1));
  EXPECT_FALSE(backbone_limited(0.0));
}

TEST(Formulas, MobilityDominance) {
  // α = 0.2 vs K = 0.7, ϕ = 0: infra −0.3 < mobility −0.2 → mobility wins.
  EXPECT_TRUE(mobility_dominant(0.2, 0.7, 0.0));
  // K = 0.9: infra −0.1 > −0.2 → infrastructure wins.
  EXPECT_FALSE(mobility_dominant(0.2, 0.9, 0.0));
}

TEST(Formulas, StrongRegimeLawCombinesBothTerms) {
  auto law = capacity_law(params(0.3, 1.0, 0.0, true, 0.9, 0.0));
  EXPECT_EQ(law.regime, MobilityRegime::kStrong);
  EXPECT_DOUBLE_EQ(law.exponent, std::max(-0.3, 0.9 - 1.0));
  EXPECT_DOUBLE_EQ(law.rt_exponent, -0.5);
}

TEST(Formulas, StrongRegimeNoBs) {
  auto law = capacity_law(params(0.3, 1.0, 0.0, false));
  EXPECT_DOUBLE_EQ(law.exponent, -0.3);
  EXPECT_EQ(law.expression, "Th(1/f)");
}

TEST(Formulas, WeakRegimeWithBs) {
  auto law = capacity_law(params(0.45, 0.3, 0.4, true, 0.6, 0.0));
  EXPECT_EQ(law.regime, MobilityRegime::kWeak);
  EXPECT_DOUBLE_EQ(law.exponent, 0.6 - 1.0);
  // R_T = r√(m/n) ⇒ exponent −R + (M−1)/2 = −0.4 − 0.35 = −0.75.
  EXPECT_NEAR(law.rt_exponent, -0.75, 1e-12);
}

TEST(Formulas, WeakRegimeNoBsIsClusteredLaw) {
  auto law = capacity_law(params(0.45, 0.3, 0.4, false));
  EXPECT_DOUBLE_EQ(law.exponent, 0.3 / 2.0 - 1.0);
  EXPECT_NEAR(law.rt_exponent, -0.15, 1e-12);
}

TEST(Formulas, TrivialRegimeWithBs) {
  auto law = capacity_law(params(0.5, 0.2, 0.0, true, 0.6, -0.5));
  EXPECT_EQ(law.regime, MobilityRegime::kTrivial);
  EXPECT_DOUBLE_EQ(law.exponent, 0.6 - 0.5 - 1.0);
  // R_T = r√(m/k) ⇒ −R + (M−K)/2 = 0 + (0.2−0.6)/2 = −0.2.
  EXPECT_NEAR(law.rt_exponent, -0.2, 1e-12);
}

TEST(Formulas, CapacityNeverExceedsConstant) {
  // Per-node capacity exponent can never be positive (W = 1).
  for (double alpha : {0.0, 0.25, 0.5}) {
    for (double K : {0.0, 0.5, 1.0}) {
      for (double phi : {-1.0, 0.0, 1.0}) {
        auto law = capacity_law(params(alpha, 1.0, 0.0, true, K, phi));
        EXPECT_LE(law.exponent, 1e-12)
            << "alpha=" << alpha << " K=" << K << " phi=" << phi;
      }
    }
  }
}

// -------------------------------------------------------- phase diagram --

TEST(PhaseDiagram, GridShapeAndBounds) {
  auto d = compute_phase_diagram(0.0, 6, 5);
  EXPECT_EQ(d.grid.size(), 30u);
  EXPECT_DOUBLE_EQ(d.at(0, 0).alpha, 0.0);
  EXPECT_DOUBLE_EQ(d.at(5, 0).alpha, 0.5);
  EXPECT_DOUBLE_EQ(d.at(0, 4).K, 1.0);
}

TEST(PhaseDiagram, FullInfrastructureAlwaysDominatesAtKOne) {
  // K = 1, ϕ ≥ 0: infra exponent 0 ≥ any mobility exponent.
  auto d = compute_phase_diagram(0.0, 11, 11);
  for (std::size_t ai = 0; ai < 11; ++ai)
    EXPECT_FALSE(d.at(ai, 10).mobility_dominant);
}

TEST(PhaseDiagram, MobilityDominatesSmallK) {
  auto d = compute_phase_diagram(0.0, 11, 11);
  // α = 0.25 (ai=5), K = 0.1 (ki=1): mobility −0.25 > infra −0.9.
  EXPECT_TRUE(d.at(5, 1).mobility_dominant);
}

TEST(PhaseDiagram, BoundaryMatchesFormula) {
  for (double alpha : {0.0, 0.2, 0.4}) {
    for (double phi : {-0.5, 0.0}) {
      const double Kb = dominance_boundary_K(alpha, phi);
      EXPECT_DOUBLE_EQ(Kb, 1.0 - alpha - std::min(phi, 0.0));
      // Just above the boundary infra dominates, just below mobility does.
      EXPECT_GE(infrastructure_exponent(Kb + 0.01, phi),
                mobility_exponent(alpha));
      EXPECT_LT(infrastructure_exponent(Kb - 0.01, phi),
                mobility_exponent(alpha));
    }
  }
}

TEST(PhaseDiagram, NegativePhiShrinksInfrastructureRegion) {
  auto base = compute_phase_diagram(0.0, 11, 11);
  auto neg = compute_phase_diagram(-0.5, 11, 11);
  std::size_t base_infra = 0, neg_infra = 0;
  for (const auto& p : base.grid)
    if (!p.mobility_dominant) ++base_infra;
  for (const auto& p : neg.grid)
    if (!p.mobility_dominant) ++neg_infra;
  EXPECT_GT(base_infra, neg_infra);
}

TEST(PhaseDiagram, AsciiRenderingHasGridRows) {
  auto d = compute_phase_diagram(0.0, 11, 5);
  const std::string art = render_ascii(d);
  EXPECT_NE(art.find('M'), std::string::npos);
  EXPECT_NE(art.find('I'), std::string::npos);
}

}  // namespace
}  // namespace manetcap::capacity
