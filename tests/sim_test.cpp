#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "geom/point.h"
#include "linkcap/link_capacity.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "routing/scheme_c.h"
#include "sim/engine.h"
#include "sim/fluid.h"
#include "sim/metrics.h"
#include "sim/slotsim.h"
#include "sim/slotsim_reference.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "util/check.h"

namespace manetcap::sim {
namespace {

net::ScalingParams strong_params(std::size_t n, bool with_bs = true) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.35;
  p.with_bs = with_bs;
  p.K = 0.75;
  p.M = 1.0;
  p.phi = 0.0;
  return p;
}

net::ScalingParams weak_params(std::size_t n) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.3;
  p.R = 0.4;
  p.phi = 0.0;
  return p;
}

net::ScalingParams trivial_params(std::size_t n) {
  // Trivial mobility needs α > ½ once clusters are disjoint (see
  // DESIGN.md): the network outgrows the mobility radius so fast that
  // within-cluster movement cannot even reach a neighbor.
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.75;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.2;
  p.R = 0.3;
  p.phi = 0.0;
  return p;
}

// ---------------------------------------------------------------- fluid --

TEST(Fluid, StrongRegimeUsesHybridScheme) {
  FluidOptions opt;
  opt.seed = 3;
  auto out = evaluate_capacity(strong_params(4096), opt);
  EXPECT_EQ(out.regime, capacity::MobilityRegime::kStrong);
  EXPECT_GT(out.lambda, 0.0);
  EXPECT_GT(out.lambda_adhoc, 0.0);
  EXPECT_GT(out.lambda_infra, 0.0);
  EXPECT_NE(out.scheme.find("scheme-B"), std::string::npos);
  EXPECT_DOUBLE_EQ(out.lambda, out.lambda_adhoc + out.lambda_infra);
}

TEST(Fluid, WeakRegimeUsesClusterSubnets) {
  FluidOptions opt;
  opt.seed = 5;
  auto out = evaluate_capacity(weak_params(8192), opt);
  EXPECT_EQ(out.regime, capacity::MobilityRegime::kWeak);
  EXPECT_GT(out.lambda, 0.0);
  EXPECT_DOUBLE_EQ(out.lambda_adhoc, 0.0);
  EXPECT_NE(out.scheme.find("clusters"), std::string::npos);
}

TEST(Fluid, TrivialRegimeUsesSchemeC) {
  FluidOptions opt;
  opt.seed = 7;
  auto out = evaluate_capacity(trivial_params(8192), opt);
  EXPECT_EQ(out.regime, capacity::MobilityRegime::kTrivial);
  EXPECT_GT(out.lambda, 0.0);
  EXPECT_NE(out.scheme.find("scheme-C"), std::string::npos);
}

TEST(Fluid, NoBsStrongIsPureAdhoc) {
  FluidOptions opt;
  opt.seed = 9;
  auto out = evaluate_capacity(strong_params(4096, /*with_bs=*/false), opt);
  EXPECT_GT(out.lambda, 0.0);
  EXPECT_DOUBLE_EQ(out.lambda_infra, 0.0);
}

TEST(Fluid, ForcedSchemeOverridesDispatch) {
  FluidOptions opt;
  opt.seed = 11;
  opt.force = FluidOptions::ForceScheme::kB;
  auto out = evaluate_capacity(strong_params(4096), opt);
  EXPECT_NE(out.scheme.find("forced"), std::string::npos);
  EXPECT_DOUBLE_EQ(out.lambda_adhoc, 0.0);
  EXPECT_GT(out.lambda_infra, 0.0);
}

TEST(Fluid, DeterministicGivenSeed) {
  FluidOptions opt;
  opt.seed = 13;
  auto a = evaluate_capacity(strong_params(2048), opt);
  auto b = evaluate_capacity(strong_params(2048), opt);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
}

TEST(Fluid, MoreBaseStationsNeverHurt) {
  FluidOptions opt;
  opt.seed = 15;
  auto small_k = strong_params(4096);
  small_k.K = 0.5;
  auto big_k = strong_params(4096);
  big_k.K = 0.9;
  const double lo = evaluate_capacity(small_k, opt).lambda;
  const double hi = evaluate_capacity(big_k, opt).lambda;
  EXPECT_GT(hi, lo);
}

// ---------------------------------------------------------------- sweep --

TEST(Sweep, GeometricSizes) {
  auto sizes = geometric_sizes(100, 2.0, 4);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[3], 800u);
}

TEST(Sweep, GeometricSizesDeduplicatesCollapsedPoints) {
  // 100·1.001ⁱ rounds to 100 for many consecutive i: collapsed points must
  // appear once, leaving a strictly increasing sequence.
  auto sizes = geometric_sizes(100, 1.001, 12);
  EXPECT_LT(sizes.size(), 12u);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i - 1], sizes[i]);
}

TEST(Sweep, TrialSeedsNeverCollide) {
  // The pre-SplitMix64 linear formula collided across the (seed0, si, t)
  // grid (e.g. seed0 strides of 1 alias si strides of 1000003·k). The
  // mixed derivation must give pairwise-distinct seeds over a dense grid.
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::uint64_t seed0 : {1ULL, 2ULL, 3ULL, 42ULL, 2026ULL,
                              0x9e3779b97f4a7c15ULL}) {
    for (std::size_t si = 0; si < 16; ++si) {
      for (std::size_t t = 0; t < 64; ++t) {
        seen.insert(trial_seed(seed0, si, t));
        ++total;
      }
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Sweep, TrialSeedMatchesRunSweepDerivation) {
  std::vector<std::uint64_t> seen;
  auto eval = [&seen](const EvalContext& ctx) {
    seen.push_back(ctx.seed);
    return 1.0;
  };
  SweepOptions opt;
  opt.seed0 = 7;
  run_sweep(strong_params(0), {128, 256}, 2, eval, opt);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], trial_seed(7, 0, 0));
  EXPECT_EQ(seen[1], trial_seed(7, 0, 1));
  EXPECT_EQ(seen[2], trial_seed(7, 1, 0));
  EXPECT_EQ(seen[3], trial_seed(7, 1, 1));
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  // A seed-sensitive evaluator: any reordering of trials across threads
  // that leaked into the reduction would change the bits of the result.
  auto eval = [](const EvalContext& ctx) {
    rng::Xoshiro256 g(ctx.seed);
    return std::pow(static_cast<double>(ctx.params.n), -0.5) *
           (0.5 + rng::uniform01(g));
  };
  const auto sizes = geometric_sizes(256, 2.0, 5);
  SweepResult reference;
  {
    SweepOptions opt;
    opt.num_threads = 1;
    opt.seed0 = 2026;
    reference = run_sweep(strong_params(0), sizes, 4, eval, opt);
  }
  ASSERT_TRUE(reference.fit_valid);
  for (std::size_t threads : {2u, 8u}) {
    SweepOptions opt;
    opt.num_threads = threads;
    opt.seed0 = 2026;
    auto r = run_sweep(strong_params(0), sizes, 4, eval, opt);
    ASSERT_EQ(r.points.size(), reference.points.size());
    for (std::size_t i = 0; i < r.points.size(); ++i) {
      EXPECT_EQ(r.points[i].n, reference.points[i].n);
      EXPECT_EQ(r.points[i].trials, reference.points[i].trials);
      // Bit-identical, not merely close.
      EXPECT_DOUBLE_EQ(r.points[i].lambda_gm, reference.points[i].lambda_gm);
      EXPECT_DOUBLE_EQ(r.points[i].lambda_min,
                       reference.points[i].lambda_min);
      EXPECT_DOUBLE_EQ(r.points[i].lambda_max,
                       reference.points[i].lambda_max);
    }
    ASSERT_EQ(r.fit_valid, reference.fit_valid);
    EXPECT_DOUBLE_EQ(r.fit.exponent, reference.fit.exponent);
    EXPECT_DOUBLE_EQ(r.fit.stderr_, reference.fit.stderr_);
    EXPECT_DOUBLE_EQ(r.fit.r_squared, reference.fit.r_squared);
  }
}

TEST(Sweep, ParallelFluidEvaluationMatchesSerial) {
  // End-to-end with the real fluid evaluator: sampled networks, scheme
  // dispatch, the lot — still bit-identical across thread counts.
  SweepEvaluator eval = [](const EvalContext& ctx) {
    FluidOptions opt;
    opt.seed = ctx.seed;
    return evaluate_capacity(ctx.params, opt).lambda_symmetric;
  };
  SweepOptions serial;
  serial.num_threads = 1;
  serial.seed0 = 11;
  auto a = run_sweep(strong_params(0), {512, 1024, 2048}, 2, eval, serial);
  SweepOptions parallel = serial;
  parallel.num_threads = 4;
  auto b = run_sweep(strong_params(0), {512, 1024, 2048}, 2, eval, parallel);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_DOUBLE_EQ(a.points[i].lambda_gm, b.points[i].lambda_gm);
  ASSERT_EQ(a.fit_valid, b.fit_valid);
  if (a.fit_valid) {
    EXPECT_DOUBLE_EQ(a.fit.exponent, b.fit.exponent);
  }
}

TEST(Sweep, RecoversAnalyticExponent) {
  // Evaluator returns exactly n^{-0.5}: the fit must find −0.5.
  auto eval = [](const EvalContext& ctx) {
    return std::pow(static_cast<double>(ctx.params.n), -0.5);
  };
  auto result = run_sweep(strong_params(0), geometric_sizes(256, 2.0, 5), 2,
                          eval);
  ASSERT_TRUE(result.fit_valid);
  EXPECT_NEAR(result.fit.exponent, -0.5, 1e-9);
  EXPECT_EQ(result.points.size(), 5u);
}

TEST(Sweep, ZeroMeasurementInvalidatesFit) {
  auto eval = [](const EvalContext& ctx) {
    return ctx.params.n > 1000 ? 0.0 : 1.0;
  };
  auto result =
      run_sweep(strong_params(0), geometric_sizes(256, 2.0, 4), 1, eval);
  EXPECT_FALSE(result.fit_valid);
}

TEST(Sweep, DeterministicSeeds) {
  SweepOptions opt;
  opt.seed0 = 42;
  std::vector<std::uint64_t> seen;
  auto eval = [&seen](const EvalContext& ctx) {
    seen.push_back(ctx.seed);
    return 1.0;
  };
  run_sweep(strong_params(0), {128, 256, 512}, 2, eval, opt);
  std::vector<std::uint64_t> seen2;
  auto eval2 = [&seen2](const EvalContext& ctx) {
    seen2.push_back(ctx.seed);
    return 1.0;
  };
  run_sweep(strong_params(0), {128, 256, 512}, 2, eval2, opt);
  EXPECT_EQ(seen, seen2);
}

// -------------------------------------------------------------- slotsim --

TEST(SlotSim, SchemeADeliversPackets) {
  auto p = strong_params(512, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 17);
  rng::Xoshiro256 g(19);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 21;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.pairs_per_slot, 0.0);
  EXPECT_GT(r.mean_flow_rate, 0.0);
}

TEST(SlotSim, TwoHopDeliversUnderFullMixing) {
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.0;  // full mixing
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 23);
  rng::Xoshiro256 g(29);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kTwoHop;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 31;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.mean_flow_rate, 0.0);
}

TEST(SlotSim, SchemeBDeliversViaInfrastructure) {
  auto p = strong_params(512);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 37);
  rng::Xoshiro256 g(41);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 43;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
}

TEST(SlotSim, DeterministicGivenSeed) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 47);
  rng::Xoshiro256 g(53);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 400;
  opt.warmup = 100;
  opt.seed = 59;
  auto a = run_slot_sim(net, dest, opt);
  auto b = run_slot_sim(net, dest, opt);
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_DOUBLE_EQ(a.pairs_per_slot, b.pairs_per_slot);
}

TEST(SlotSim, SchemeCDeliversInTrivialRegime) {
  auto p = trivial_params(1024);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 81);
  rng::Xoshiro256 g(83);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.slots = 3000;
  opt.warmup = 300;
  opt.seed = 87;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.mean_flow_rate, 0.0);
  EXPECT_GT(r.pairs_per_slot, 0.0);  // active cells per slot
  EXPECT_GT(r.mean_delay, 0.0);
}

TEST(SlotSim, SchemeCMatchesFluidOrder) {
  // Slot-level scheme C against the fluid evaluator: same instance, ratio
  // must be an O(1) constant.
  auto p = trivial_params(1024);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 85);
  rng::Xoshiro256 g(89);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeC c;
  const double fluid = c.evaluate(net, dest).lambda_symmetric;
  ASSERT_GT(fluid, 0.0);

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.slots = 4000;
  opt.warmup = 400;
  opt.seed = 91;
  auto r = run_slot_sim(net, dest, opt);
  ASSERT_GT(r.mean_flow_rate, 0.0);
  const double ratio = r.mean_flow_rate / fluid;
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 20.0);
}

TEST(SlotSim, SchemeBDeliversInWeakRegime) {
  // Theorem 7 at packet level: clusters as subnets, uplink within the
  // cluster, wired across, downlink in the destination cluster.
  auto p = weak_params(1024);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 151);
  rng::Xoshiro256 g(153);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 3000;
  opt.warmup = 300;
  opt.seed = 157;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.mean_flow_rate, 0.0);
}

TEST(SlotSim, DeliveredPacketsHaveDelays) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 91);
  rng::Xoshiro256 g(93);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 97;
  auto r = run_slot_sim(net, dest, opt);
  ASSERT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.mean_delay, 0.0);
  EXPECT_GE(r.p95_delay, r.mean_delay * 0.5);
  EXPECT_LT(r.p95_delay, static_cast<double>(opt.slots));
}

TEST(SlotSim, TwoHopDelayShrinksWithFasterMixing) {
  // Brownian mixing (full torus) delivers two-hop packets; the measured
  // delay is the inter-meeting time, finite and well below the horizon.
  net::ScalingParams p;
  p.n = 128;
  p.alpha = 0.0;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 99);
  rng::Xoshiro256 g(101);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kTwoHop;
  opt.mobility = SlotMobility::kBrownian;
  opt.slots = 3000;
  opt.warmup = 300;
  opt.seed = 103;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.total_delivered, 0u);
  EXPECT_GT(r.mean_delay, 0.0);
}

TEST(SlotSim, MobilityVariantsAllRun) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 61);
  rng::Xoshiro256 g(67);
  auto dest = net::permutation_traffic(p.n, g);
  for (auto mob : {SlotMobility::kIid, SlotMobility::kWalk,
                   SlotMobility::kPullHome}) {
    SlotSimOptions opt;
    opt.scheme = SlotScheme::kSchemeA;
    opt.mobility = mob;
    opt.slots = 600;
    opt.warmup = 150;
    opt.seed = 71;
    auto r = run_slot_sim(net, dest, opt);
    EXPECT_GT(r.pairs_per_slot, 0.0);
  }
}

TEST(SlotSim, WarmupMustPrecedeEnd) {
  auto p = strong_params(64, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 73);
  rng::Xoshiro256 g(79);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.slots = 100;
  opt.warmup = 100;
  EXPECT_THROW(run_slot_sim(net, dest, opt), manetcap::CheckError);
}

TEST(SlotSim, SchemeNames) {
  EXPECT_EQ(to_string(SlotScheme::kSchemeA), "scheme-A");
  EXPECT_EQ(to_string(SlotScheme::kTwoHop), "two-hop");
  EXPECT_EQ(to_string(SlotScheme::kSchemeB), "scheme-B");
}

// ------------------------------------------ options validation (names) --

TEST(SlotSimValidation, EachBadOptionThrowsItsNamedError) {
  auto p = strong_params(64, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 201);
  rng::Xoshiro256 g(203);
  auto dest = net::permutation_traffic(p.n, g);
  auto expect_error = [&](const SlotSimOptions& opt,
                          const std::string& needle) {
    try {
      run_slot_sim(net, dest, opt);
      FAIL() << "expected CheckError mentioning: " << needle;
    } catch (const manetcap::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  SlotSimOptions opt;
  opt.slots = 100;
  opt.warmup = 100;
  expect_error(opt, "warmup (100) must be < slots (100)");
  opt = {};
  opt.max_queue = 0;
  expect_error(opt, "max_queue must be >= 1");
  opt = {};
  opt.ct = 0.0;
  expect_error(opt, "ct must be > 0");
  opt = {};
  opt.delta = -0.5;
  expect_error(opt, "delta must be > 0");
  opt = {};
  opt.source_backlog = 0;
  expect_error(opt, "source_backlog must be >= 1");
}

// --------------------------------- SoA simulator vs frozen reference --

// The SoA hot-path rewrite must be behaviorally invisible: identical
// result structs and byte-identical traces on the same inputs, for every
// scheme and a non-i.i.d. mobility mix (incremental spatial-hash moves
// only happen under walk/pull/brownian mobility).
void expect_matches_reference(const net::ScalingParams& p,
                              net::BsPlacement placement,
                              std::uint64_t build_seed, SlotSimOptions opt) {
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 placement, build_seed);
  rng::Xoshiro256 g(build_seed + 1);
  auto dest = net::permutation_traffic(p.n, g);

  Trace trace_new, trace_ref;
  opt.trace = &trace_new;
  auto got = run_slot_sim(net, dest, opt);
  opt.trace = &trace_ref;
  auto want = run_slot_sim_reference(net, dest, opt);

  EXPECT_DOUBLE_EQ(got.mean_flow_rate, want.mean_flow_rate);
  EXPECT_DOUBLE_EQ(got.min_flow_rate, want.min_flow_rate);
  EXPECT_DOUBLE_EQ(got.p10_flow_rate, want.p10_flow_rate);
  EXPECT_DOUBLE_EQ(got.pairs_per_slot, want.pairs_per_slot);
  EXPECT_EQ(got.total_delivered, want.total_delivered);
  EXPECT_EQ(got.measured_slots, want.measured_slots);
  EXPECT_DOUBLE_EQ(got.mean_delay, want.mean_delay);
  EXPECT_DOUBLE_EQ(got.p95_delay, want.p95_delay);
  EXPECT_EQ(got.injected, want.injected);
  EXPECT_EQ(got.delivered_lifetime, want.delivered_lifetime);
  EXPECT_EQ(got.queued_end, want.queued_end);
  EXPECT_EQ(got.dropped, want.dropped);
  EXPECT_EQ(trace_new.encode(), trace_ref.encode())
      << "per-packet event streams diverged";
}

TEST(SlotSimEquivalence, SchemeAWalkMatchesReference) {
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.mobility = SlotMobility::kWalk;
  opt.slots = 600;
  opt.warmup = 150;
  opt.seed = 211;
  expect_matches_reference(strong_params(256, /*with_bs=*/false),
                           net::BsPlacement::kUniform, 209, opt);
}

TEST(SlotSimEquivalence, TwoHopBrownianMatchesReference) {
  net::ScalingParams p;
  p.n = 128;
  p.alpha = 0.0;  // full mixing
  p.with_bs = false;
  p.M = 1.0;
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kTwoHop;
  opt.mobility = SlotMobility::kBrownian;
  opt.slots = 800;
  opt.warmup = 200;
  opt.seed = 223;
  expect_matches_reference(p, net::BsPlacement::kUniform, 221, opt);
}

TEST(SlotSimEquivalence, SchemeBMatchesReference) {
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 800;
  opt.warmup = 200;
  opt.seed = 227;
  expect_matches_reference(strong_params(512),
                           net::BsPlacement::kClusteredMatched, 229, opt);
}

TEST(SlotSimEquivalence, SchemeCPullHomeMatchesReference) {
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.mobility = SlotMobility::kPullHome;
  opt.slots = 1000;
  opt.warmup = 200;
  opt.seed = 233;
  expect_matches_reference(trivial_params(1024),
                           net::BsPlacement::kClusterGrid, 231, opt);
}

// ------------------------------------------- packet-conservation audit --

TEST(SlotSimAudit, ConservationHoldsForAllSchemes) {
  // ≥10k-slot saturated runs: injected == delivered + queued + dropped
  // must hold exactly for every scheme (the simulator also checks this
  // internally; asserting on the result catches accounting drift between
  // the counters and the returned totals).
  struct SchemeCase {
    SlotScheme scheme;
    net::ScalingParams params;
    net::BsPlacement placement;
  };
  net::ScalingParams two_hop = strong_params(256, /*with_bs=*/false);
  two_hop.alpha = 0.0;  // full mixing
  const std::vector<SchemeCase> cases = {
      {SlotScheme::kSchemeA, strong_params(256, /*with_bs=*/false),
       net::BsPlacement::kUniform},
      {SlotScheme::kTwoHop, two_hop, net::BsPlacement::kUniform},
      {SlotScheme::kSchemeB, strong_params(256),
       net::BsPlacement::kClusteredMatched},
      {SlotScheme::kSchemeC, trivial_params(512),
       net::BsPlacement::kClusterGrid},
  };
  for (const auto& c : cases) {
    auto net = net::Network::build(c.params, mobility::ShapeKind::kUniformDisk,
                                   c.placement, 211);
    rng::Xoshiro256 g(223);
    auto dest = net::permutation_traffic(c.params.n, g);
    SlotSimOptions opt;
    opt.scheme = c.scheme;
    opt.slots = 10000;
    opt.warmup = 1000;
    opt.seed = 227;
    Metrics m;
    opt.metrics = &m;
    auto r = run_slot_sim(net, dest, opt);
    SCOPED_TRACE(to_string(c.scheme));
    EXPECT_GT(r.injected, 0u);
    EXPECT_GT(r.delivered_lifetime, 0u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
    EXPECT_EQ(m.count(Counter::kInjected), r.injected);
    EXPECT_EQ(m.count(Counter::kDelivered), r.delivered_lifetime);
    EXPECT_EQ(m.count(Counter::kDropped), 0u);
    EXPECT_EQ(m.count(Counter::kUndeliverable), 0u);
  }
}

TEST(SlotSimAudit, MetricsSeriesTracksQueues) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 229);
  rng::Xoshiro256 g(233);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 1200;
  opt.warmup = 200;
  opt.seed = 239;
  Metrics m;
  m.enable_series(opt.slots);
  opt.metrics = &m;
  auto r = run_slot_sim(net, dest, opt);
  ASSERT_EQ(m.series().size(), opt.slots);
  // The last sample's queue gauge must equal the end-of-run occupancy.
  EXPECT_EQ(m.series().back().queued, r.queued_end);
  EXPECT_EQ(m.series().back().slot, opt.slots - 1);
  // The scheduler stats were threaded through: candidates ≥ feasible, and
  // candidates = feasible + range-rejected.
  EXPECT_GT(m.count(Counter::kSchedFeasiblePairs), 0u);
  EXPECT_EQ(m.count(Counter::kSchedCandidatePairs),
            m.count(Counter::kSchedFeasiblePairs) +
                m.count(Counter::kSchedRangeRejected));
}

TEST(SlotSimAudit, MetricsAttachmentDoesNotPerturbResults) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 241);
  rng::Xoshiro256 g(251);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 800;
  opt.warmup = 200;
  opt.seed = 257;
  auto plain = run_slot_sim(net, dest, opt);
  Metrics m;
  m.enable_series(opt.slots);
  opt.metrics = &m;
  auto audited = run_slot_sim(net, dest, opt);
  EXPECT_EQ(plain.total_delivered, audited.total_delivered);
  EXPECT_DOUBLE_EQ(plain.pairs_per_slot, audited.pairs_per_slot);
  EXPECT_EQ(plain.injected, audited.injected);
  EXPECT_EQ(plain.queued_end, audited.queued_end);
}

TEST(SlotSimAudit, HugeHorizonSeriesReservationIsBounded) {
  // Regression: enable_series used to reserve the full horizon upfront, so
  // a 10⁷-slot hint pre-committed ~240 MB before the first sample landed.
  // The reservation is now capped at kMaxSeriesReserve samples.
  Metrics m;
  m.enable_series(10'000'000);
  EXPECT_LE(m.series().capacity(), Metrics::kMaxSeriesReserve);
  // A stride hint reserves horizon/stride when that is under the cap.
  Metrics strided;
  strided.enable_series(10'000'000, 1000);
  EXPECT_LE(strided.series().capacity(), Metrics::kMaxSeriesReserve);
  EXPECT_GE(strided.series().capacity(), 10'000'000 / 1000);
  EXPECT_EQ(strided.series_stride(), 1000u);
  // The stride gate drops non-stride slots and keeps stride multiples.
  strided.sample_slot(0, 1, 0, 0);
  strided.sample_slot(1, 2, 0, 0);
  strided.sample_slot(999, 3, 0, 0);
  strided.sample_slot(1000, 4, 0, 0);
  strided.sample_slot(2000, 5, 0, 0);
  ASSERT_EQ(strided.series().size(), 3u);
  EXPECT_EQ(strided.series()[0].slot, 0u);
  EXPECT_EQ(strided.series()[1].slot, 1000u);
  EXPECT_EQ(strided.series()[2].slot, 2000u);
  EXPECT_EQ(strided.series()[2].queued, 5u);
}

TEST(SlotSimAudit, SchemeBSparseTopologyHasNoOrphans) {
  // Regression for the scheme-B stall: with only a handful of BSs most
  // home points have no BS within the contact distance. Before the
  // nearest-BS fallback those flows' packets sat at hop 0 in BS queues
  // forever (wired_step had nowhere to send them), permanently eating
  // max_queue slots; the audit surfaced them as `undeliverable`.
  net::ScalingParams p;
  p.n = 1024;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.55;  // ~45 BSs: most home points uncovered, but enough coverage
               // that covered flows still deliver within the horizon
  p.M = 1.0;
  p.phi = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 263);
  ASSERT_GE(net.num_bs(), 1u);

  // Precondition: the sparse layout really orphans some home points.
  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(),
                                net.num_ms() + net.num_bs(), 0.3, 1.0);
  const double contact = mu.max_contact_dist_ms_bs();
  std::size_t orphans = 0;
  for (const auto& home : net.ms_home()) {
    bool covered = false;
    for (const auto& bs : net.bs_pos())
      covered = covered || geom::torus_dist(home, bs) <= contact;
    if (!covered) ++orphans;
  }
  ASSERT_GT(orphans, 0u) << "topology not sparse enough to exercise the fix";

  rng::Xoshiro256 g(269);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 4000;
  opt.warmup = 400;
  opt.seed = 271;
  Metrics m;
  opt.metrics = &m;
  auto r = run_slot_sim(net, dest, opt);
  // Every uplinked packet has a wired target (no stalled hop-0 packets)
  // and conservation holds despite the orphaned home points.
  EXPECT_EQ(m.count(Counter::kUndeliverable), 0u);
  EXPECT_GT(r.delivered_lifetime, 0u);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
}

TEST(SlotSimAudit, SchemeALastCellDeliversDirectly) {
  // shape_support = 2 with α = 0 makes the mobility radius span the torus,
  // so scheme A's tessellation collapses to a single cell: every flow's
  // H-V path has length 1 and every packet is born at its last cell. Only
  // direct source→destination delivery is possible — this pins the
  // at-last-cell branch in transfer_scheme_a (where a dead BS re-check
  // used to sit; BS endpoints are excluded before the scan).
  net::ScalingParams p;
  p.n = 128;
  p.alpha = 0.0;
  p.with_bs = false;
  p.M = 1.0;
  p.shape_support = 2.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 277);
  rng::Xoshiro256 g(281);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 3000;
  opt.warmup = 300;
  opt.seed = 283;
  Metrics m;
  opt.metrics = &m;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(r.delivered_lifetime, 0u);
  // No relay hand-off can ever fire on length-1 paths.
  EXPECT_EQ(m.count(Counter::kRelayed), 0u);
  EXPECT_EQ(m.count(Counter::kRelayRejectQueueFull), 0u);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
}

TEST(SlotSimAudit, FullQueuesAreCountedNotSilent) {
  // A queue bound of 1 with a deep source window forces injection
  // rejections immediately — the audit must see them instead of the old
  // silent no-op.
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 293);
  rng::Xoshiro256 g(307);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 311;
  opt.max_queue = 1;
  opt.source_backlog = 8;
  Metrics m;
  opt.metrics = &m;
  auto r = run_slot_sim(net, dest, opt);
  EXPECT_GT(m.count(Counter::kInjectRejectQueueFull), 0u);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
}

TEST(Fluid, ForcedSchemeADegeneracyIsSurfaced) {
  // Regression: forcing scheme A on an instance whose squarelet grid is
  // too small (f(n) = Θ(1) → fewer than kMinGrid cells) used to report
  // the degenerate evaluation as if it were a capacity. The outcome now
  // zeroes λ and labels the scheme so ablation tables can't mistake a
  // non-running scheme for a zero-capacity one.
  net::ScalingParams p = strong_params(512, /*with_bs=*/false);
  p.alpha = 0.0;  // full mixing: the mobility disk covers the torus
  FluidOptions opt;
  opt.seed = 11;
  opt.force = FluidOptions::ForceScheme::kA;
  const auto out = evaluate_capacity(p, opt);
  EXPECT_EQ(out.lambda, 0.0);
  EXPECT_EQ(out.lambda_symmetric, 0.0);
  EXPECT_NE(out.scheme.find("degenerate"), std::string::npos) << out.scheme;
  // A healthy grid keeps the plain forced label and a positive rate.
  const auto ok = evaluate_capacity(strong_params(4096, /*with_bs=*/false),
                                    opt);
  EXPECT_GT(ok.lambda, 0.0);
  EXPECT_EQ(ok.scheme.find("degenerate"), std::string::npos) << ok.scheme;
}

// --------------------------------------------------------------- faults --

// Shared scheme-B fault fixture: strong-regime instance with a plan that
// exercises every fault kind at distinct slots.
FaultPlan mixed_plan(std::size_t warmup) {
  FaultPlan plan;
  FaultEvent e;
  e.slot = static_cast<std::uint32_t>(warmup);
  e.kind = FaultKind::kBsDown;
  e.bs = 0;
  plan.events.push_back(e);
  e = {};
  e.slot = static_cast<std::uint32_t>(warmup + 200);
  e.kind = FaultKind::kWireScale;
  e.bs = 1;
  e.bs2 = 2;
  e.scale = 0.25;
  plan.events.push_back(e);
  e = {};
  e.slot = static_cast<std::uint32_t>(warmup + 400);
  e.kind = FaultKind::kBsUp;
  e.bs = 0;
  plan.events.push_back(e);
  return plan;
}

TEST(SlotSimFault, EmptyPlanIsExactlyFaultFree) {
  // Null plan, empty plan and no plan must be the same run bit for bit —
  // the fault machinery is all behind `faults_ != nullptr` guards.
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 331);
  rng::Xoshiro256 g(337);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 347;
  const auto plain = run_slot_sim(net, dest, opt);
  const FaultPlan empty;
  opt.faults = &empty;
  const auto with_empty = run_slot_sim(net, dest, opt);
  EXPECT_EQ(plain.total_delivered, with_empty.total_delivered);
  EXPECT_EQ(plain.injected, with_empty.injected);
  EXPECT_EQ(plain.queued_end, with_empty.queued_end);
  EXPECT_DOUBLE_EQ(plain.mean_flow_rate, with_empty.mean_flow_rate);
  EXPECT_DOUBLE_EQ(plain.pairs_per_slot, with_empty.pairs_per_slot);
  EXPECT_EQ(with_empty.dropped, 0u);
  EXPECT_EQ(with_empty.dropped_bs_outage, 0u);
}

TEST(SlotSimFault, ConservationClosesUnderMixedFaultsSchemeB) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 331);
  rng::Xoshiro256 g(337);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 347;
  const FaultPlan plan = mixed_plan(opt.warmup);
  opt.faults = &plan;
  Metrics m;
  opt.metrics = &m;
  const auto r = run_slot_sim(net, dest, opt);
  // The conservation identity closes with drops in the ledger (also
  // checked internally, including window == injected − delivered −
  // dropped: a dropped packet must release its flow-control slot).
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_EQ(r.dropped, r.dropped_bs_outage);
  EXPECT_EQ(m.count(Counter::kDroppedBsOutage), r.dropped_bs_outage);
  EXPECT_EQ(m.count(Counter::kDropped), r.dropped);
  // BS 0 served someone (ClusteredMatched puts a BS in every populated
  // cluster), so killing it re-homed at least one MS.
  EXPECT_GT(m.count(Counter::kMsRehomed), 0u);
  // Saturated sources keep BS queues non-empty; the dying queue dropped.
  EXPECT_GT(r.dropped_bs_outage, 0u);
  // The run survived the outage: packets still flow.
  EXPECT_GT(r.delivered_lifetime, 0u);
}

TEST(SlotSimFault, ConservationClosesUnderRegionalOutageSchemeC) {
  auto p = trivial_params(512);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 353);
  rng::Xoshiro256 g(359);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 367;
  FaultPlan plan;
  FaultEvent e;
  e.slot = static_cast<std::uint32_t>(opt.warmup);
  e.kind = FaultKind::kRegional;
  e.center = {0.5, 0.5};
  e.radius = 0.25;
  plan.events.push_back(e);
  opt.faults = &plan;
  Metrics m;
  m.enable_series(opt.slots);
  opt.metrics = &m;
  const auto r = run_slot_sim(net, dest, opt);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_EQ(r.dropped, r.dropped_bs_outage);
  // The disk actually killed BSs (ClusterGrid covers the torus) and the
  // survivors re-colored and kept serving.
  const std::size_t k = net.num_bs();
  ASSERT_FALSE(m.series().empty());
  EXPECT_EQ(m.series().front().live_bs, k);
  EXPECT_LT(m.series().back().live_bs, k);
  EXPECT_GT(m.series().back().live_bs, 0u);
  EXPECT_GT(m.count(Counter::kMsRehomed), 0u);
  EXPECT_GT(r.delivered_lifetime, 0u);
}

TEST(SlotSimFault, LiveBsSeriesTracksDownAndUp) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 331);
  rng::Xoshiro256 g(337);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 347;
  const FaultPlan plan = mixed_plan(opt.warmup);
  opt.faults = &plan;
  Metrics m;
  m.enable_series(opt.slots);
  opt.metrics = &m;
  run_slot_sim(net, dest, opt);
  const std::size_t k = net.num_bs();
  const auto& s = m.series();
  ASSERT_EQ(s.size(), opt.slots);
  EXPECT_EQ(s[opt.warmup - 1].live_bs, k);       // before the outage
  EXPECT_EQ(s[opt.warmup].live_bs, k - 1);       // BS 0 down
  EXPECT_EQ(s[opt.warmup + 400].live_bs, k);     // BS 0 back up
  EXPECT_EQ(s.back().live_bs, k);
}

TEST(SlotSimFault, RequiresInfrastructureScheme) {
  // A network that HAS base stations, driven by scheme A (which ignores
  // them): the plan passes shape validation and the scheme gate throws.
  auto p = strong_params(128);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 373);
  rng::Xoshiro256 g(379);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 100;
  opt.warmup = 10;
  FaultPlan plan;
  FaultEvent e;
  e.slot = 50;
  e.kind = FaultKind::kBsDown;
  e.bs = 0;
  plan.events.push_back(e);
  opt.faults = &plan;
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "fault plan on scheme A must throw";
  } catch (const CheckError& err) {
    EXPECT_NE(std::string(err.what()).find("infrastructure"),
              std::string::npos)
        << err.what();
  }
}

TEST(SlotSimFault, RefusesToKillLastLiveBs) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 383);
  rng::Xoshiro256 g(389);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 200;
  opt.warmup = 20;
  FaultPlan plan;
  for (std::uint32_t l = 0; l < net.num_bs(); ++l) {
    FaultEvent e;
    e.slot = 50;
    e.kind = FaultKind::kBsDown;
    e.bs = l;
    plan.events.push_back(e);
  }
  opt.faults = &plan;
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "downing every BS must throw";
  } catch (const CheckError& err) {
    EXPECT_NE(std::string(err.what()).find("no live base station"),
              std::string::npos)
        << err.what();
  }
}

TEST(SlotSimFault, PlanValidationNamesEachError) {
  const auto expect_invalid = [](const FaultPlan& plan, std::size_t k,
                                 std::size_t slots,
                                 const std::string& needle) {
    try {
      plan.validate(k, slots);
      FAIL() << "expected validation error containing '" << needle << "'";
    } catch (const CheckError& err) {
      EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
          << err.what();
    }
  };
  FaultEvent down;
  down.slot = 10;
  down.kind = FaultKind::kBsDown;
  down.bs = 0;

  {  // decreasing slots
    FaultPlan plan;
    plan.events.push_back(down);
    FaultEvent earlier = down;
    earlier.slot = 5;
    plan.events.push_back(earlier);
    expect_invalid(plan, 4, 100, "slot order");
  }
  {  // event beyond the run
    FaultPlan plan;
    FaultEvent e = down;
    e.slot = 100;
    plan.events.push_back(e);
    expect_invalid(plan, 4, 100, ">= slots");
  }
  {  // BS index out of range
    FaultPlan plan;
    FaultEvent e = down;
    e.bs = 4;
    plan.events.push_back(e);
    expect_invalid(plan, 4, 100, "BS index");
  }
  {  // wired self-loop
    FaultPlan plan;
    FaultEvent e;
    e.slot = 10;
    e.kind = FaultKind::kWireScale;
    e.bs = 1;
    e.bs2 = 1;
    e.scale = 0.5;
    plan.events.push_back(e);
    expect_invalid(plan, 4, 100, "must differ");
  }
  {  // scale out of [0, 1]
    FaultPlan plan;
    FaultEvent e;
    e.slot = 10;
    e.kind = FaultKind::kWireScale;
    e.bs = 0;
    e.bs2 = 1;
    e.scale = 1.5;
    plan.events.push_back(e);
    expect_invalid(plan, 4, 100, "scale");
  }
  {  // negative radius
    FaultPlan plan;
    FaultEvent e;
    e.slot = 10;
    e.kind = FaultKind::kRegional;
    e.center = {0.5, 0.5};
    e.radius = -0.1;
    plan.events.push_back(e);
    expect_invalid(plan, 4, 100, "radius");
  }
}

TEST(SlotSimFault, ParseRoundTripsTheGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "down@10:3; wire@20:1-2x0.5; region@30:0.25,0.75,0.1; up@40:3");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBsDown);
  EXPECT_EQ(plan.events[0].slot, 10u);
  EXPECT_EQ(plan.events[0].bs, 3u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kWireScale);
  EXPECT_EQ(plan.events[1].bs, 1u);
  EXPECT_EQ(plan.events[1].bs2, 2u);
  EXPECT_DOUBLE_EQ(plan.events[1].scale, 0.5);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kRegional);
  EXPECT_DOUBLE_EQ(plan.events[2].center.x, 0.25);
  EXPECT_DOUBLE_EQ(plan.events[2].center.y, 0.75);
  EXPECT_DOUBLE_EQ(plan.events[2].radius, 0.1);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kBsUp);
  plan.validate(4, 100);
  EXPECT_FALSE(plan.describe().empty());

  EXPECT_THROW(FaultPlan::parse("explode@10:3"), CheckError);
  EXPECT_THROW(FaultPlan::parse("down@10"), CheckError);
  EXPECT_THROW(FaultPlan::parse("wire@20:1-2"), CheckError);
  EXPECT_THROW(FaultPlan::parse("down@ten:3"), CheckError);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(SlotSimFault, ReferenceSimRejectsFaultPlans) {
  auto p = strong_params(128);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 397);
  rng::Xoshiro256 g(401);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 100;
  opt.warmup = 10;
  FaultPlan plan;
  FaultEvent e;
  e.slot = 50;
  e.kind = FaultKind::kBsDown;
  e.bs = 0;
  plan.events.push_back(e);
  opt.faults = &plan;
  EXPECT_THROW(run_slot_sim_reference(net, dest, opt), CheckError);
  // An empty plan is fine — it is exactly a fault-free run.
  const FaultPlan empty;
  opt.faults = &empty;
  const auto r = run_slot_sim_reference(net, dest, opt);
  EXPECT_GT(r.injected, 0u);
}

TEST(Sweep, MetricsAggregateAcrossCellsAndThreads) {
  // When the sweep aggregates audit counters, every (size, trial) cell
  // receives a fresh registry via EvalContext::metrics and the registries
  // merge in fixed order — the aggregate must be identical for any thread
  // count.
  const std::vector<std::size_t> sizes = {128, 256, 512};
  const std::size_t trials = 3;
  SweepEvaluator eval = [](const EvalContext& ctx) {
    EXPECT_NE(ctx.metrics, nullptr);
    ctx.metrics->add(Counter::kInjected, ctx.params.n);
    ctx.metrics->inc(Counter::kDelivered);
    return 1.0;
  };
  std::uint64_t expected_injected = 0;
  for (std::size_t n : sizes) expected_injected += n * trials;

  for (std::size_t threads : {1u, 4u}) {
    SweepOptions opt;
    opt.num_threads = threads;
    opt.seed0 = 5;
    Metrics agg;
    opt.metrics = &agg;
    run_sweep(strong_params(0), sizes, trials, eval, opt);
    EXPECT_EQ(agg.count(Counter::kInjected), expected_injected);
    EXPECT_EQ(agg.count(Counter::kDelivered), sizes.size() * trials);
  }
}

// --------------------------------------------------- interference backends --

// Named SlotSimPhy* so the TSan CI job's gtest filter picks these up
// alongside the other threaded SlotSim suites.

SlotSimResult run_phy(const net::Network& net,
                      const std::vector<std::uint32_t>& dest,
                      SlotSimOptions opt) {
  return run_slot_sim(net, dest, opt);
}

// Explicitly selecting the protocol backend must take the historical code
// path exactly: every result field bit-identical to the default.
TEST(SlotSimPhy, ProtocolFlagIsByteIdenticalToDefault) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 301);
  rng::Xoshiro256 g(303);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 400;
  opt.warmup = 100;
  opt.seed = 305;
  const auto base = run_phy(net, dest, opt);
  opt.phy = phy::PhyKind::kProtocol;
  // Even absurd SINR params are inert under protocol (never validated).
  opt.sinr.beta = 1e9;
  const auto flagged = run_phy(net, dest, opt);
  EXPECT_EQ(base.total_delivered, flagged.total_delivered);
  EXPECT_EQ(base.injected, flagged.injected);
  EXPECT_EQ(base.queued_end, flagged.queued_end);
  EXPECT_DOUBLE_EQ(base.mean_flow_rate, flagged.mean_flow_rate);
  EXPECT_DOUBLE_EQ(base.pairs_per_slot, flagged.pairs_per_slot);
  EXPECT_DOUBLE_EQ(base.mean_delay, flagged.mean_delay);
}

// The SINR filter runs serially on a per-slot snapshot, so the sharded
// parallel phases must not be able to perturb it: results are bit-identical
// for every shard count, with and without CSMA.
TEST(SlotSimPhy, SinrBitIdenticalAcrossShards) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 307);
  rng::Xoshiro256 g(311);
  auto dest = net::permutation_traffic(p.n, g);
  for (phy::PhyKind kind : {phy::PhyKind::kSinr, phy::PhyKind::kSinrCsma}) {
    SlotSimOptions opt;
    opt.scheme = SlotScheme::kSchemeB;
    opt.slots = 300;
    opt.warmup = 60;
    opt.seed = 313;
    opt.phy = kind;
    opt.sinr.beta = 3.0;     // noise-limited enough that the filter bites
    opt.sinr.snr_edge = 4.0;
    opt.shards = 1;
    const auto serial = run_phy(net, dest, opt);
    for (std::size_t shards : {2UL, 4UL}) {
      opt.shards = shards;
      const auto sharded = run_phy(net, dest, opt);
      EXPECT_EQ(serial.total_delivered, sharded.total_delivered)
          << phy::to_string(kind) << " shards " << shards;
      EXPECT_EQ(serial.injected, sharded.injected);
      EXPECT_EQ(serial.queued_end, sharded.queued_end);
      EXPECT_DOUBLE_EQ(serial.mean_flow_rate, sharded.mean_flow_rate);
      EXPECT_DOUBLE_EQ(serial.pairs_per_slot, sharded.pairs_per_slot);
    }
  }
}

TEST(SlotSimPhy, SchemeCRejectsNonProtocolBackend) {
  auto p = trivial_params(512);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 317);
  rng::Xoshiro256 g(319);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.slots = 200;
  opt.warmup = 40;
  opt.phy = phy::PhyKind::kSinr;
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "expected CheckError";
  } catch (const manetcap::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("scheme C"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(SlotSimPhy, InvalidSinrParamsRejectedAtRunStart) {
  auto p = strong_params(64, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 321);
  rng::Xoshiro256 g(323);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.phy = phy::PhyKind::kSinr;
  opt.sinr.path_loss = 2.0;  // far field diverges
  EXPECT_THROW(run_slot_sim(net, dest, opt), manetcap::CheckError);
}

// A noise-limited configuration must visibly cut the schedule: fewer
// concurrent pairs than the protocol run, with the cut accounted in the
// phy_sinr_rejected audit counter. A hair-trigger CCA shows up in
// phy_csma_suppressed the same way.
TEST(SlotSimPhy, RejectionCountersAccountForTheCut) {
  auto p = strong_params(256, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 327);
  rng::Xoshiro256 g(331);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 300;
  opt.warmup = 60;
  opt.seed = 337;
  const auto protocol = run_phy(net, dest, opt);

  Metrics m;
  opt.metrics = &m;
  opt.phy = phy::PhyKind::kSinr;
  opt.sinr.beta = 5.0;
  opt.sinr.snr_edge = 2.0;  // edge links fail on noise alone
  const auto sinr = run_phy(net, dest, opt);
  EXPECT_GT(m.count(Counter::kPhySinrRejected), 0u);
  EXPECT_EQ(m.count(Counter::kPhyCsmaSuppressed), 0u);
  EXPECT_LT(sinr.pairs_per_slot, protocol.pairs_per_slot);

  Metrics mc;
  opt.metrics = &mc;
  opt.phy = phy::PhyKind::kSinrCsma;
  opt.sinr = {};
  opt.sinr.cca = 0.05;
  const auto csma = run_phy(net, dest, opt);
  EXPECT_GT(mc.count(Counter::kPhyCsmaSuppressed), 0u);
  EXPECT_LT(csma.pairs_per_slot, protocol.pairs_per_slot);
}

// The fluid engine consumes a non-protocol backend as a wireless-capacity
// derate: the Monte-Carlo pair-survival ratio of the instance.
TEST(SlotSimPhy, FluidSurvivalRatioDeratesCapacity) {
  auto p = strong_params(512, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 353);
  phy::SinrParams harsh;
  harsh.beta = 5.0;
  harsh.snr_edge = 2.0;
  EXPECT_DOUBLE_EQ(
      sinr_survival_ratio(net, phy::PhyKind::kProtocol, harsh, 7), 1.0);
  const double ratio =
      sinr_survival_ratio(net, phy::PhyKind::kSinr, harsh, 7);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 1.0);  // the noise-limited config must cut something
  EXPECT_DOUBLE_EQ(ratio,
                   sinr_survival_ratio(net, phy::PhyKind::kSinr, harsh, 7));

  EvalContext ctx;
  ctx.params = p;
  ctx.seed = 7;
  EngineOptions eopt;
  eopt.slots = 400;
  eopt.warmup = 80;
  const double base = measure_instance(EngineKind::kFluid, ctx, eopt);
  eopt.phy = phy::PhyKind::kSinr;
  eopt.sinr = harsh;
  const double derated = measure_instance(EngineKind::kFluid, ctx, eopt);
  EXPECT_GT(base, 0.0);
  EXPECT_GT(derated, 0.0);
  EXPECT_LT(derated, base);
}

// The checkpoint config echo covers the PHY backend: resuming under a
// different interference model must fail loudly, not silently blend two
// physical models in one trajectory.
TEST(SlotSimPhy, CheckpointRejectsBackendMismatch) {
  auto p = strong_params(128, /*with_bs=*/false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 341);
  rng::Xoshiro256 g(347);
  auto dest = net::permutation_traffic(p.n, g);
  const std::string path = testing::TempDir() + "manetcap_phy_mismatch.ckpt";
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeA;
  opt.slots = 200;
  opt.warmup = 40;
  opt.seed = 349;
  opt.phy = phy::PhyKind::kSinr;
  opt.checkpoint_every = 100;
  opt.checkpoint_path = path;
  run_slot_sim(net, dest, opt);

  SlotSimOptions resume = opt;
  resume.checkpoint_every = 0;
  resume.checkpoint_path.clear();
  resume.resume_path = path;
  resume.phy = phy::PhyKind::kProtocol;  // different backend
  try {
    run_slot_sim(net, dest, resume);
    FAIL() << "expected CheckError";
  } catch (const manetcap::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("phy"), std::string::npos)
        << "got: " << e.what();
  }
  // Same backend and parameters: resume completes and matches the
  // uninterrupted run.
  resume.phy = phy::PhyKind::kSinr;
  const auto resumed = run_slot_sim(net, dest, resume);
  opt.checkpoint_every = 0;
  opt.checkpoint_path.clear();
  const auto full = run_slot_sim(net, dest, opt);
  EXPECT_EQ(full.total_delivered, resumed.total_delivered);
  EXPECT_DOUBLE_EQ(full.mean_flow_rate, resumed.mean_flow_rate);
  std::remove(path.c_str());
}

TEST(SlotSimTraffic, DefaultSpecDemandsMatchDestPathExactly) {
  // The demand overload with a default TrafficSpec must reproduce the
  // historical dest-overload run bit for bit: the draw consumes the same
  // RNG stream and every new branch is behind a demands_ guard.
  auto p = strong_params(192);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 811);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1200;
  opt.warmup = 240;
  opt.seed = 821;

  rng::Xoshiro256 g1(traffic_seed(opt.seed));
  const auto dest = net::permutation_traffic(p.n, g1);
  rng::Xoshiro256 g2(traffic_seed(opt.seed));
  const auto demands =
      net::make_traffic_model(net::TrafficSpec{})->draw(p.n, g2);
  ASSERT_EQ(net::dest_of(demands), dest);

  const auto a = run_slot_sim(net, dest, opt);
  const auto b = run_slot_sim(net, demands, opt);
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.queued_end, b.queued_end);
  EXPECT_DOUBLE_EQ(a.mean_flow_rate, b.mean_flow_rate);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_DOUBLE_EQ(a.pairs_per_slot, b.pairs_per_slot);
}

TEST(SlotSimTraffic, OutOfRangeDestIsANamedError) {
  // Regression: a dest id >= n used to be an out-of-bounds CSR read.
  // Both overloads must reject it up front with a named error.
  auto p = strong_params(64);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 823);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 100;
  opt.warmup = 10;

  rng::Xoshiro256 g(traffic_seed(opt.seed));
  auto dest = net::permutation_traffic(p.n, g);
  dest[5] = static_cast<std::uint32_t>(p.n);  // one past the end
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "expected CheckError";
  } catch (const manetcap::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << "got: " << e.what();
  }

  rng::Xoshiro256 g2(traffic_seed(opt.seed));
  auto demands = net::make_traffic_model(net::TrafficSpec{})->draw(p.n, g2);
  demands[5].dst = static_cast<std::uint32_t>(p.n) + 7;
  EXPECT_THROW(run_slot_sim(net, demands, opt), manetcap::CheckError);
}

TEST(SlotSimTraffic, ConservationClosesUnderHotspotBurstyLoad) {
  auto p = strong_params(192);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 827);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 829;
  Metrics m;
  opt.metrics = &m;

  const auto tspec = net::TrafficSpec::parse(
      "hotspot:0.1,0.8; pareto:1.5,200; onoff:30,60; start:200");
  rng::Xoshiro256 g(traffic_seed(opt.seed));
  const auto demands = net::make_traffic_model(tspec)->draw(p.n, g);
  const auto r = run_slot_sim(net, demands, opt);

  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_GT(r.delivered_lifetime, 0u);
  // A 1/3 duty cycle over 1500 slots must gate some injection attempts.
  EXPECT_GT(m.count(Counter::kInjectGatedTraffic), 0u);
  // No churn plan: churn counters stay exactly zero.
  EXPECT_EQ(m.count(Counter::kMsLeft), 0u);
  EXPECT_EQ(m.count(Counter::kDroppedMsChurn), 0u);
}

TEST(SlotSimTraffic, ShardsAreBitIdenticalUnderTrafficAndChurn) {
  auto p = strong_params(192);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 839);
  const auto tspec =
      net::TrafficSpec::parse("hotspot:0.15,0.7; onoff:40,80");
  const FaultPlan plan =
      FaultPlan::parse("leave@400:3; join@700:3; leave@900:17");

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1500;
  opt.warmup = 300;
  opt.seed = 853;
  opt.faults = &plan;

  rng::Xoshiro256 g(traffic_seed(opt.seed));
  const auto demands = net::make_traffic_model(tspec)->draw(p.n, g);
  opt.shards = 1;
  const auto serial = run_slot_sim(net, demands, opt);
  for (std::size_t shards : {2u, 4u}) {
    opt.shards = shards;
    const auto sharded = run_slot_sim(net, demands, opt);
    EXPECT_EQ(serial.total_delivered, sharded.total_delivered)
        << "shards=" << shards;
    EXPECT_EQ(serial.injected, sharded.injected);
    EXPECT_EQ(serial.dropped, sharded.dropped);
    EXPECT_DOUBLE_EQ(serial.mean_flow_rate, sharded.mean_flow_rate);
    EXPECT_DOUBLE_EQ(serial.mean_delay, sharded.mean_delay);
  }
}

TEST(SlotSimChurn, ConservationClosesUnderLeaveAndJoin) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 857);
  rng::Xoshiro256 g(859);
  auto dest = net::permutation_traffic(p.n, g);
  const FaultPlan plan =
      FaultPlan::parse("leave@500:3; leave@600:40; join@900:3");

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 863;
  opt.faults = &plan;
  Metrics m;
  opt.metrics = &m;
  const auto r = run_slot_sim(net, dest, opt);

  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_EQ(r.dropped, r.dropped_ms_churn);
  EXPECT_EQ(m.count(Counter::kDroppedMsChurn), r.dropped_ms_churn);
  EXPECT_EQ(m.count(Counter::kMsLeft), 2u);
  EXPECT_EQ(m.count(Counter::kMsJoined), 1u);
  // Saturated CBR keeps queues non-empty, so each departure flushed
  // packets (its own queue plus in-flight packets addressed to it).
  EXPECT_GT(r.dropped_ms_churn, 0u);
  // Absent sources cannot inject: the gate counter must have fired.
  EXPECT_GT(m.count(Counter::kInjectBlockedChurn), 0u);
  EXPECT_GT(r.delivered_lifetime, 0u);
}

TEST(SlotSimChurn, FirstEventJoinStartsAbsent) {
  // An MS whose first churn event is a join is absent from slot 0 — its
  // flow injects nothing until the join fires.
  auto p = strong_params(128);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 877);
  rng::Xoshiro256 g(881);
  auto dest = net::permutation_traffic(p.n, g);
  const FaultPlan plan = FaultPlan::parse("join@800:5");

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1200;
  opt.warmup = 240;
  opt.seed = 883;
  opt.faults = &plan;
  Metrics m;
  opt.metrics = &m;
  const auto r = run_slot_sim(net, dest, opt);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_EQ(m.count(Counter::kMsJoined), 1u);
  EXPECT_EQ(m.count(Counter::kMsLeft), 0u);
  EXPECT_GT(m.count(Counter::kInjectBlockedChurn), 0u);
}

TEST(SlotSimChurn, CheckpointRefusedWithShiftPlans) {
  auto p = strong_params(64);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 887);
  rng::Xoshiro256 g(907);
  auto dest = net::permutation_traffic(p.n, g);
  const FaultPlan plan = FaultPlan::parse("shift@300:walk");

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 600;
  opt.warmup = 120;
  opt.faults = &plan;
  opt.checkpoint_every = 100;
  opt.checkpoint_path = "churn_shift_ckpt.bin";
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "expected CheckError";
  } catch (const manetcap::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("mobility-shift"),
              std::string::npos)
        << "got: " << e.what();
  }
  // Without checkpointing the same plan runs, shifts once and conserves.
  opt.checkpoint_every = 0;
  opt.checkpoint_path.clear();
  Metrics m;
  opt.metrics = &m;
  const auto r = run_slot_sim(net, dest, opt);
  EXPECT_EQ(m.count(Counter::kMobilityShifts), 1u);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
}

TEST(SlotSimChurn, CheckpointRoundTripsUnderTrafficAndChurn) {
  // Checkpoint/resume must reproduce the uninterrupted run exactly even
  // with a traffic model (on-off gate state) and churn (presence table)
  // in flight.
  auto p = strong_params(128);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 911);
  const auto tspec = net::TrafficSpec::parse("hotspot:0.2,0.6; onoff:25,50");
  const FaultPlan plan = FaultPlan::parse("leave@300:7; join@600:7");
  const std::string path = "churn_traffic_ckpt.bin";

  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 1000;
  opt.warmup = 200;
  opt.seed = 919;
  opt.faults = &plan;
  rng::Xoshiro256 g(traffic_seed(opt.seed));
  const auto demands = net::make_traffic_model(tspec)->draw(p.n, g);

  const auto full = run_slot_sim(net, demands, opt);
  opt.checkpoint_every = 450;
  opt.checkpoint_path = path;
  run_slot_sim(net, demands, opt);
  SlotSimOptions resume = opt;
  resume.checkpoint_every = 0;
  resume.checkpoint_path.clear();
  resume.resume_path = path;
  const auto resumed = run_slot_sim(net, demands, resume);
  EXPECT_EQ(full.total_delivered, resumed.total_delivered);
  EXPECT_EQ(full.injected, resumed.injected);
  EXPECT_EQ(full.dropped, resumed.dropped);
  EXPECT_DOUBLE_EQ(full.mean_flow_rate, resumed.mean_flow_rate);
  std::remove(path.c_str());
}


// ---------------------------------------------------- capacity frontier --
//
// The generalized infrastructure axes (phi backhaul, L antennas) ride the
// fluid engine and the sweep harness; bench/ext_cost_frontier gates the
// capacity-law bends in CI. These tests pin the determinism and the
// engine boundary that the bench relies on.

TEST(CapacityFrontier, SweepOverNewAxesIsBitIdenticalAcrossThreads) {
  // A forced scheme-C sweep at a generalized point (phi < 0, L > 0):
  // exactly the kind of spot ext_cost_frontier measures. Any thread-order
  // leak into the reduction would change the bits of the fit.
  auto p = trivial_params(0);
  p.phi = -0.4;
  p.L = 0.2;
  SweepEvaluator eval = [](const EvalContext& ctx) {
    FluidOptions opt;
    opt.seed = ctx.seed;
    opt.force = FluidOptions::ForceScheme::kC;
    opt.placement = net::BsPlacement::kClusterGrid;
    return evaluate_capacity(ctx.params, opt).lambda_symmetric;
  };
  const auto sizes = geometric_sizes(512, 2.0, 3);
  SweepOptions serial;
  serial.num_threads = 1;
  serial.seed0 = 97;
  auto a = run_sweep(p, sizes, 2, eval, serial);
  SweepOptions parallel = serial;
  parallel.num_threads = 4;
  auto b = run_sweep(p, sizes, 2, eval, parallel);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].lambda_gm, b.points[i].lambda_gm);
    EXPECT_DOUBLE_EQ(a.points[i].lambda_min, b.points[i].lambda_min);
    EXPECT_DOUBLE_EQ(a.points[i].lambda_max, b.points[i].lambda_max);
  }
  ASSERT_TRUE(a.fit_valid);
  ASSERT_TRUE(b.fit_valid);
  EXPECT_DOUBLE_EQ(a.fit.exponent, b.fit.exponent);
}

TEST(CapacityFrontier, AntennasLiftTheFluidEstimateAtSamePoint) {
  // Same network draw, L = 0 vs L > 0: the only change is the antenna
  // multiplier in the scheme-C cell rows, so lambda must not drop and
  // must gain at most a factor l.
  auto p = trivial_params(8192);
  p.phi = 0.4;
  FluidOptions opt;
  opt.seed = 41;
  opt.force = FluidOptions::ForceScheme::kC;
  opt.placement = net::BsPlacement::kClusterGrid;
  auto single = evaluate_capacity(p, opt);
  auto q = p;
  q.L = 0.25;
  auto multi = evaluate_capacity(q, opt);
  EXPECT_GT(multi.lambda_symmetric, single.lambda_symmetric);
  EXPECT_LE(multi.lambda_symmetric,
            single.lambda_symmetric * static_cast<double>(q.l()) * 1.0001);
}

TEST(CapacityFrontier, SlotSimRejectsAntennaScaling) {
  // The packet engine's golden traces pin single-antenna BS event order;
  // L > 0 must be a named error pointing at the fluid engine, not a
  // silently-ignored knob.
  auto p = strong_params(512);
  p.L = 0.25;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 17);
  rng::Xoshiro256 g(19);
  auto dest = net::permutation_traffic(p.n, g);
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeB;
  opt.slots = 100;
  opt.warmup = 0;
  opt.seed = 21;
  try {
    run_slot_sim(net, dest, opt);
    FAIL() << "SlotSim accepted L > 0";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("single-antenna"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("fluid"), std::string::npos);
  }
}

}  // namespace
}  // namespace manetcap::sim
