#include <gtest/gtest.h>

#include <cmath>

#include "analysis/connectivity.h"
#include "mobility/home_points.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::analysis {
namespace {

TEST(Connectivity, TwoPointsConnectAtTheirDistance) {
  std::vector<geom::Point> pts = {{0.1, 0.1}, {0.4, 0.1}};
  EXPECT_FALSE(is_connected(pts, 0.29));
  EXPECT_TRUE(is_connected(pts, 0.31));
  EXPECT_NEAR(critical_range(pts, 1e-5), 0.3, 1e-4);
}

TEST(Connectivity, WrapsAroundTheSeam) {
  std::vector<geom::Point> pts = {{0.02, 0.5}, {0.97, 0.5}};
  EXPECT_TRUE(is_connected(pts, 0.06));  // 0.05 across the seam
}

TEST(Connectivity, ComponentCount) {
  std::vector<geom::Point> pts = {
      {0.1, 0.1}, {0.12, 0.1},        // blob 1
      {0.6, 0.6}, {0.62, 0.6},        // blob 2
      {0.3, 0.85}};                   // singleton
  EXPECT_EQ(count_components(pts, 0.05), 3u);
  EXPECT_EQ(count_components(pts, 0.7072), 1u);
  EXPECT_EQ(count_components({}, 0.1), 0u);
}

TEST(Connectivity, ChainConnectsExactlyAtSpacing) {
  std::vector<geom::Point> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.08 * i, 0.5});
  EXPECT_TRUE(is_connected(pts, 0.081));
  EXPECT_FALSE(is_connected(pts, 0.079));
}

TEST(Connectivity, CriticalRangeIsMonotoneBoundary) {
  rng::Xoshiro256 g(7);
  std::vector<geom::Point> pts(200);
  for (auto& p : pts) p = rng::uniform_point(g);
  const double rc = critical_range(pts, 1e-4);
  EXPECT_TRUE(is_connected(pts, rc + 1e-3));
  EXPECT_FALSE(is_connected(pts, rc - 2e-3));
}

TEST(Connectivity, UniformPointsMatchGuptaKumarOrder) {
  // The measured critical range of n uniform points sits within a small
  // constant of √(log n/(πn)) — the [18] threshold Theorem 1 leans on.
  rng::Xoshiro256 g(11);
  for (std::size_t n : {500u, 2000u, 8000u}) {
    std::vector<geom::Point> pts(n);
    for (auto& p : pts) p = rng::uniform_point(g);
    const double rc = critical_range(pts, 1e-4);
    const double gk = gupta_kumar_range(n);
    EXPECT_GT(rc, 0.4 * gk) << "n=" << n;
    EXPECT_LT(rc, 3.0 * gk) << "n=" << n;
  }
}

TEST(Connectivity, ClusteredLayoutNeedsClusterLevelRange) {
  // Lemma 10's intuition: with m clusters the critical range is governed
  // by the cluster centers, far above the n-point uniform threshold.
  rng::Xoshiro256 g(13);
  auto layout = mobility::place_home_points(
      4000, mobility::ClusterSpec{16, 0.01}, g);
  const double rc = critical_range(layout.points, 1e-4);
  // Far above the uniform-4000 threshold…
  EXPECT_GT(rc, 3.0 * gupta_kumar_range(4000));
  // …and of the order of the 16-cluster threshold.
  const double cluster_rc = critical_range(layout.cluster_centers, 1e-4);
  EXPECT_NEAR(rc, cluster_rc, 0.35 * cluster_rc + 2.0 * 0.01);
}

TEST(Connectivity, InputValidation) {
  EXPECT_THROW(critical_range({{0.1, 0.1}}), manetcap::CheckError);
  EXPECT_THROW(gupta_kumar_range(1), manetcap::CheckError);
  EXPECT_THROW(is_connected({{0.1, 0.1}}, -0.1), manetcap::CheckError);
}

TEST(Connectivity, GuptaKumarRangeFormula) {
  EXPECT_NEAR(gupta_kumar_range(1000),
              std::sqrt(std::log(1000.0) / (M_PI * 1000.0)), 1e-12);
}

}  // namespace
}  // namespace manetcap::analysis
