#include <gtest/gtest.h>

#include <cmath>

#include "capacity/cutset.h"
#include "capacity/recommend.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::capacity {
namespace {

net::ScalingParams strong_params(std::size_t n, bool with_bs) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.3;
  p.with_bs = with_bs;
  p.K = 0.7;
  p.M = 1.0;
  p.phi = 0.0;
  return p;
}

// ---------------------------------------------------------------- cutset --

TEST(CutSet, CrossingFlowsCountedCorrectly) {
  auto p = strong_params(1024, false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 1);
  rng::Xoshiro256 g(2);
  auto dest = net::permutation_traffic(p.n, g);
  auto cut = evaluate_strip_cut(net, dest, 0.0);
  // About half the torus is interior; about half of interior sources have
  // exterior destinations → ~n/4 crossing flows.
  EXPECT_GT(cut.crossing_flows, p.n / 8);
  EXPECT_LT(cut.crossing_flows, p.n / 2);
}

TEST(CutSet, WirelessCapacityPositiveAndLocal) {
  auto p = strong_params(2048, false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 3);
  rng::Xoshiro256 g(4);
  auto dest = net::permutation_traffic(p.n, g);
  auto cut = evaluate_strip_cut(net, dest, 0.25);
  EXPECT_GT(cut.wireless_capacity, 0.0);
  EXPECT_DOUBLE_EQ(cut.wired_capacity, 0.0);  // no BSs
  EXPECT_TRUE(std::isfinite(cut.lambda_bound()));
}

TEST(CutSet, UpperBoundsSchemeAThroughput) {
  // The whole point of Lemma 6: no scheme can beat the cut.
  auto p = strong_params(4096, false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 5);
  rng::Xoshiro256 g(6);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeA a;
  const double achieved = a.evaluate(net, dest).throughput.lambda;
  const auto cut = best_strip_cut(net, dest, 8);
  EXPECT_GE(cut.lambda_bound(), achieved);
}

TEST(CutSet, UpperBoundsSchemeBThroughput) {
  auto p = strong_params(4096, true);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 7);
  rng::Xoshiro256 g(8);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeB b;
  const double achieved = b.evaluate(net, dest).throughput.lambda;
  const auto cut = best_strip_cut(net, dest, 8);
  EXPECT_GE(cut.lambda_bound(), achieved);
  EXPECT_GT(cut.wired_capacity, 0.0);
}

TEST(CutSet, WiredTermScalesAsKSquaredC) {
  // k_I·k_E·c ≈ (k/2)²·c — the Lemma 7 numerator.
  auto p = strong_params(4096, true);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kRegularGrid, 9);
  rng::Xoshiro256 g(10);
  auto dest = net::permutation_traffic(p.n, g);
  auto cut = evaluate_strip_cut(net, dest, 0.0);
  const double k = static_cast<double>(p.k());
  EXPECT_NEAR(cut.wired_capacity, k * k / 4.0 * p.c(),
              0.15 * k * k / 4.0 * p.c());
}

TEST(CutSet, BoundTracksOneOverF) {
  // For the no-BS case the best cut bound scales like Θ(1/f) — the Lemma 4
  // upper bound; check the decay across a 16× size change.
  std::vector<double> bounds;
  for (std::size_t n : {2048u, 32768u}) {
    auto p = strong_params(n, false);
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 11);
    rng::Xoshiro256 g(12);
    auto dest = net::permutation_traffic(p.n, g);
    bounds.push_back(best_strip_cut(net, dest, 4).lambda_bound());
  }
  const double drop = bounds[0] / bounds[1];
  // 16^0.3 ≈ 2.3; allow [1.5, 4].
  EXPECT_GT(drop, 1.5);
  EXPECT_LT(drop, 4.0);
}

TEST(CutSet, EmptyCutIsUnbounded) {
  // Two nodes whose flow does not cross the cut → bound is +inf.
  auto p = strong_params(64, false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 13);
  std::vector<std::uint32_t> dest(p.n);
  // Self-contained permutation: pair up neighbors (0↔1, 2↔3, …) — flows
  // may or may not cross any given cut, but with x0 chosen adversarially
  // at least verify the API contract on the zero-crossing case.
  for (std::uint32_t i = 0; i < p.n; i += 2) {
    dest[i] = i + 1;
    dest[i + 1] = i;
  }
  CutBound cut;
  EXPECT_TRUE(std::isinf(cut.lambda_bound()));  // default: no crossings
}

// ------------------------------------------------------- hop-count bound --

TEST(HopCount, BoundsSchemeAFromAbove) {
  auto p = strong_params(4096, false);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 21);
  rng::Xoshiro256 g(22);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeA a;
  const double achieved = a.evaluate(net, dest).throughput.lambda;
  const auto bound = hop_count_bound(net, dest);
  EXPECT_GE(bound.lambda_bound(), achieved);
  EXPECT_GT(bound.total_min_hops, static_cast<double>(p.n));  // >1 hop avg
}

TEST(HopCount, ScalesAsOneOverF) {
  // budget ~ n·p, Σhops ~ n·f ⇒ bound ~ 1/f: check decay over 16×.
  std::vector<double> bounds;
  for (std::size_t n : {2048u, 32768u}) {
    auto p = strong_params(n, false);
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 23);
    rng::Xoshiro256 g(24);
    auto dest = net::permutation_traffic(p.n, g);
    bounds.push_back(hop_count_bound(net, dest).lambda_bound());
  }
  const double drop = bounds[0] / bounds[1];
  EXPECT_GT(drop, 1.5);  // 16^0.3 ≈ 2.3
  EXPECT_LT(drop, 4.0);
}

TEST(HopCount, MinimumOneHopPerFlow) {
  auto p = strong_params(64, false);
  p.alpha = 0.0;  // mobility covers the torus: every flow needs ≥ 1 hop
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 25);
  rng::Xoshiro256 g(26);
  auto dest = net::permutation_traffic(p.n, g);
  const auto bound = hop_count_bound(net, dest);
  EXPECT_DOUBLE_EQ(bound.total_min_hops, 64.0);
}

// ------------------------------------------------------------- recommend --

TEST(Recommend, PhiZeroIsTheBalance) {
  EXPECT_DOUBLE_EQ(recommended_phi(), 0.0);
}

TEST(Recommend, RequiredKInvertsTheLaw) {
  // Target λ = Θ(n^{-0.3}) at ϕ = 0 needs K = 0.7.
  EXPECT_DOUBLE_EQ(required_K(-0.3, 0.0), 0.7);
  // Thin wires (ϕ = −0.2) must be compensated with more BSs.
  EXPECT_DOUBLE_EQ(required_K(-0.3, -0.2), 0.9);
  // Fat wires don't reduce the BS count (access-limited).
  EXPECT_DOUBLE_EQ(required_K(-0.3, 0.5), 0.7);
  EXPECT_THROW(required_K(0.1, 0.0), manetcap::CheckError);
}

TEST(Recommend, WorthwhileKMatchesPhaseBoundary) {
  EXPECT_DOUBLE_EQ(infrastructure_worthwhile_K(0.3, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(infrastructure_worthwhile_K(0.3, -0.5), 1.2);
  EXPECT_TRUE(infrastructure_improves(0.3, 0.8, 0.0));
  EXPECT_FALSE(infrastructure_improves(0.3, 0.6, 0.0));
}

TEST(Recommend, WiredBandwidthRealizesPhi) {
  net::ScalingParams p;
  p.n = 10000;
  p.with_bs = true;
  p.K = 0.5;
  const double c = wired_bandwidth_for_phi(p, 0.0);
  EXPECT_NEAR(c * static_cast<double>(p.k()), 1.0, 1e-9);
  const double c2 = wired_bandwidth_for_phi(p, 0.5);
  EXPECT_NEAR(c2 * static_cast<double>(p.k()), 100.0, 1e-9);
}

// Satellite bugfix: n^ϕ can silently overflow to inf or underflow into
// denormals for extreme ϕ; both must trip a named CHECK instead of
// propagating into wired-credit budgets.
TEST(Recommend, WiredBandwidthChecksOverflowAndDenormals) {
  net::ScalingParams p;
  p.n = 1000000;
  p.with_bs = true;
  p.K = 0.5;
  // 10^(6·60) = 10^360 overflows double (max ~1.8e308).
  EXPECT_THROW(wired_bandwidth_for_phi(p, 60.0), manetcap::CheckError);
  // 10^(−6·52)/k = 10^−315 is a denormal (double normal min ~2.2e-308).
  EXPECT_THROW(wired_bandwidth_for_phi(p, -52.0), manetcap::CheckError);
  // A representable but tiny value still passes.
  EXPECT_GT(wired_bandwidth_for_phi(p, -40.0), 0.0);
}

TEST(Recommend, GeneralizedPhiAndAntennaRules) {
  // ϕ* = min(L, 1 − K): backhaul beyond what antennas can radiate or the
  // saturation cap allows is pure waste.
  EXPECT_DOUBLE_EQ(recommended_phi(0.0, 0.7), 0.0);  // legacy at L = 0
  EXPECT_DOUBLE_EQ(recommended_phi(0.2, 0.7), 0.2);
  EXPECT_DOUBLE_EQ(recommended_phi(0.5, 0.7), 0.3);  // capped at 1 − K
  // L* = max(0, min(ϕ, 1 − K)): antennas beyond the backbone or the cap
  // are useless; a starved backbone (ϕ ≤ 0) already wants l = 1.
  EXPECT_DOUBLE_EQ(recommended_L(-0.4, 0.7), 0.0);
  EXPECT_DOUBLE_EQ(recommended_L(0.2, 0.7), 0.2);
  EXPECT_DOUBLE_EQ(recommended_L(0.5, 0.7), 0.3);
}

TEST(Recommend, GeneralizedRequiredKAndBoundary) {
  // L lets wires substitute for BSs: target −0.1 at ϕ = 0.3, L = 0.3 needs
  // K = −0.1 + 1 − 0.3 = 0.6 instead of 0.9 at L = 0.
  EXPECT_DOUBLE_EQ(required_K(-0.1, 0.3, 0.0), 0.9);
  EXPECT_DOUBLE_EQ(required_K(-0.1, 0.3, 0.3), 0.6);
  // Reduction to the 2-arg form at L = 0.
  for (double e : {-0.5, -0.2})
    for (double phi : {-0.3, 0.0, 0.4})
      EXPECT_DOUBLE_EQ(required_K(e, phi, 0.0), required_K(e, phi));
  EXPECT_DOUBLE_EQ(infrastructure_worthwhile_K(0.3, 0.4, 0.2), 0.5);
  EXPECT_TRUE(infrastructure_improves(0.3, 0.6, 0.4, 0.2));
  EXPECT_FALSE(infrastructure_improves(0.3, 0.6, 0.4, 0.0));
  // At the exact boundary K = worthwhile K the exponents tie and
  // "improves" must be false — consistent with required_K inverting to
  // the same K.
  const double Kb = infrastructure_worthwhile_K(0.25, 0.0, 0.0);
  EXPECT_FALSE(infrastructure_improves(0.25, Kb, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(required_K(-0.25, 0.0, 0.0), Kb);
}

TEST(Recommend, BsCostModelDollarsAndExponents) {
  // Exponent: K + max(0, L, ϕ) — the dominant per-BS line item times k.
  EXPECT_DOUBLE_EQ(bs_cost_exponent(0.6, -0.4, 0.0), 0.6);  // fixed cost
  EXPECT_DOUBLE_EQ(bs_cost_exponent(0.6, 0.4, 0.2), 1.0);   // backhaul
  EXPECT_DOUBLE_EQ(bs_cost_exponent(0.6, 0.1, 0.3), 0.9);   // antennas
  // Per-dollar = capacity exponent − cost exponent; starved wires waste
  // the whole BS budget, so the per-dollar frontier peaks at ϕ = L.
  EXPECT_DOUBLE_EQ(capacity_per_dollar_exponent(0.75, 0.6, 0.4, 0.4),
                   0.0 - 1.0);
  EXPECT_LT(capacity_per_dollar_exponent(0.75, 0.6, -0.4, 0.4),
            capacity_per_dollar_exponent(0.75, 0.6, 0.0, 0.0));

  net::ScalingParams p;
  p.n = 10000;
  p.with_bs = true;
  p.K = 0.5;
  p.phi = 0.5;
  p.L = 0.25;
  BsCostModel cost;
  cost.fixed = 2.0;
  cost.per_antenna = 3.0;
  cost.per_backhaul = 5.0;
  // k = 100, l = 10, µ_c = 100: 100·(2 + 3·10 + 5·100) = 53200.
  EXPECT_NEAR(bs_dollars(p, cost), 53200.0, 1e-6);
}

}  // namespace
}  // namespace manetcap::capacity
