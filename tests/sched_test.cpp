#include <gtest/gtest.h>

#include <cmath>

#include "geom/spatial_hash.h"
#include "mobility/home_points.h"
#include "phy/protocol_model.h"
#include "rng/rng.h"
#include "sched/greedy.h"
#include "sched/sstar.h"
#include "sched/tdma_cell.h"
#include "util/check.h"

namespace manetcap::sched {
namespace {

// ---------------------------------------------------------------- S* ----

TEST(SStar, RangeScalesWithPopulation) {
  SStarScheduler s(2.0, 1.0);
  EXPECT_DOUBLE_EQ(s.range_for(4), 1.0);
  EXPECT_DOUBLE_EQ(s.range_for(100), 0.2);
}

TEST(SStar, IsolatedClosePairIsScheduled) {
  SStarScheduler s(1.0, 1.0);
  // Population 4 → R_T = 0.5, guard = 1.0 — but torus max distance ≈ 0.707,
  // so keep it tighter: population drives the range; use far-apart pairs.
  SStarScheduler tight(0.2, 1.0);  // R_T = 0.1, guard = 0.2 at pop 4
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.60, 0.60}, {0.65, 0.60}};
  auto pairs = tight.feasible_pairs(pos);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].tx, 0u);
  EXPECT_EQ(pairs[0].rx, 1u);
  EXPECT_EQ(pairs[1].tx, 2u);
  EXPECT_EQ(pairs[1].rx, 3u);
}

TEST(SStar, ThirdNodeInGuardZoneBlocksPair) {
  SStarScheduler s(0.2, 1.0);  // pop 3 → R_T ≈ 0.115, guard ≈ 0.23
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.25, 0.10}};  // 2 inside 1's guard
  EXPECT_TRUE(s.feasible_pairs(pos).empty());
}

TEST(SStar, InactiveNodesStillBlock) {
  // Definition 10 counts ALL other nodes, active or not.
  SStarScheduler s(0.2, 1.0);
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.12, 0.10},  // candidate pair
      {0.14, 0.10},                // bystander within guard
      {0.70, 0.70}};               // far away
  auto pairs = s.feasible_pairs(pos);
  for (const auto& p : pairs) {
    EXPECT_NE(p.tx, 0u);
    EXPECT_NE(p.rx, 1u);
  }
}

TEST(SStar, PairsOutsideRangeNotScheduled) {
  SStarScheduler s(0.1, 1.0);  // pop 2 → R_T ≈ 0.0707
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.3, 0.1}};
  EXPECT_TRUE(s.feasible_pairs(pos).empty());
}

TEST(SStar, OutputIsProtocolModelFeasible) {
  // S* is strictly stricter than the protocol model (Theorem 2's setup):
  // whatever S* schedules must pass the Definition 4 checks. c_T = 0.3
  // keeps guard-zone occupancy Θ(1) so pairs actually get scheduled.
  rng::Xoshiro256 g(7);
  std::vector<geom::Point> pos(500);
  for (auto& p : pos) p = rng::uniform_point(g);
  SStarScheduler s(0.3, 1.0);
  auto pairs = s.feasible_pairs(pos);
  ASSERT_GT(pairs.size(), 0u);  // some pairs should exist at this density
  phy::ProtocolModel pm(s.range_for(pos.size()), 1.0);
  EXPECT_TRUE(pm.feasible(pos, pairs));
}

TEST(SStar, EachNodeInAtMostOnePair) {
  rng::Xoshiro256 g(11);
  std::vector<geom::Point> pos(800);
  for (auto& p : pos) p = rng::uniform_point(g);
  SStarScheduler s(0.4, 0.5);
  auto pairs = s.feasible_pairs(pos);
  std::vector<int> uses(pos.size(), 0);
  for (const auto& p : pairs) {
    ++uses[p.tx];
    ++uses[p.rx];
  }
  for (int u : uses) EXPECT_LE(u, 1);
}

TEST(SStar, PrebuiltHashGivesSameResult) {
  rng::Xoshiro256 g(13);
  std::vector<geom::Point> pos(300);
  for (auto& p : pos) p = rng::uniform_point(g);
  SStarScheduler s(0.3, 1.0);
  geom::SpatialHash hash((1.0 + 1.0) * s.range_for(pos.size()), pos.size());
  hash.build(pos);
  auto a = s.feasible_pairs(pos);
  auto b = s.feasible_pairs(pos, hash);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tx, b[i].tx);
    EXPECT_EQ(a[i].rx, b[i].rx);
  }
}

// --------------------------------------------------------------- TDMA ----

TEST(Tdma, ColorValidation) {
  EXPECT_THROW(TdmaSchedule({0, 1, 5}, 4), manetcap::CheckError);
  EXPECT_NO_THROW(TdmaSchedule({0, 1, 3}, 4));
}

TEST(Tdma, RoundRobinActivation) {
  TdmaSchedule t({0, 1, 2, 0}, 3);
  EXPECT_TRUE(t.is_active(0, 0));
  EXPECT_FALSE(t.is_active(1, 0));
  EXPECT_TRUE(t.is_active(1, 1));
  EXPECT_TRUE(t.is_active(3, 3));  // cell 3 has color 0, slot 3 → color 0
  EXPECT_DOUBLE_EQ(t.duty_cycle(), 1.0 / 3.0);
}

TEST(Tdma, EveryCellActiveOncePerPeriod) {
  TdmaSchedule t({0, 1, 2, 3}, 4);
  for (std::size_t cell = 0; cell < 4; ++cell) {
    int active = 0;
    for (std::uint64_t slot = 0; slot < 4; ++slot)
      if (t.is_active(cell, slot)) ++active;
    EXPECT_EQ(active, 1);
  }
}

TEST(Tdma, SquareColoringPeriodCoversGuard) {
  const double side = 0.1, range = 0.12, delta = 1.0;
  const int p = square_coloring_period(side, range, delta);
  // Same-color cells are (p-1)·side ≥ (2+Δ)·range apart.
  EXPECT_GE((p - 1) * side, (2.0 + delta) * range);
}

TEST(Tdma, SquareColoringAssignsPeriodSquaredColors) {
  geom::SquareTessellation tess(8);
  auto colors = color_square_tessellation(tess, 2);
  for (int c : colors) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
  // Adjacent cells never share a color for period ≥ 2.
  for (int idx = 0; idx < tess.num_cells(); ++idx) {
    for (auto nb : tess.neighbors4(tess.cell_at(idx)))
      EXPECT_NE(colors[idx], colors[tess.index_of(nb)]);
  }
}

TEST(Tdma, HexPeriodPositive) {
  EXPECT_GE(hex_coloring_period(0.01, 1.0), 2);
  EXPECT_GT(hex_coloring_period(0.01, 3.0), hex_coloring_period(0.01, 0.0));
}

// -------------------------------------------------------------- greedy ----

TEST(Greedy, SelectionIsProtocolFeasible) {
  rng::Xoshiro256 g(17);
  std::vector<geom::Point> pos(400);
  for (auto& p : pos) p = rng::uniform_point(g);
  GreedyScheduler sched(0.06, 1.0);
  auto cands = sched.nearest_neighbor_candidates(pos);
  auto chosen = sched.schedule(pos, cands);
  phy::ProtocolModel pm(0.06, 1.0);
  EXPECT_TRUE(pm.feasible(pos, chosen));
  EXPECT_GT(chosen.size(), 0u);
}

TEST(Greedy, RespectsRange) {
  GreedyScheduler sched(0.05, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.4, 0.4}};
  auto chosen = sched.schedule(pos, {{0, 1}});
  EXPECT_TRUE(chosen.empty());
}

TEST(Greedy, PrefersShortLinks) {
  GreedyScheduler sched(0.2, 1.0);
  // Two candidate links sharing airspace; the shorter must win.
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.12, 0.10},   // short pair
      {0.20, 0.10}, {0.35, 0.10}};  // long pair, receiver inside guard
  auto chosen = sched.schedule(pos, {{2, 3}, {0, 1}});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].tx, 0u);
}

TEST(Greedy, NodesUsedAtMostOnce) {
  GreedyScheduler sched(0.3, 0.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.15, 0.1}, {0.2, 0.1}};
  auto chosen = sched.schedule(pos, {{0, 1}, {1, 2}});
  EXPECT_EQ(chosen.size(), 1u);
}

TEST(Greedy, NearestNeighborCandidatesCoverNodes) {
  rng::Xoshiro256 g(23);
  std::vector<geom::Point> pos(100);
  for (auto& p : pos) p = rng::uniform_point(g);
  GreedyScheduler sched(0.3, 1.0);
  auto cands = sched.nearest_neighbor_candidates(pos);
  EXPECT_GE(cands.size(), 50u);  // at least one per mutual pair
  for (const auto& c : cands) EXPECT_NE(c.tx, c.rx);
}

// ------------------------------------- S* / protocol-model consistency ----

// Regression for a boundary mismatch: S* is strict on both thresholds
// (d < R_T, interferer d > guard), while the protocol model historically
// used non-strict comparisons — so a pair sitting exactly on a threshold
// was rejected by the scheduler yet declared feasible by the model. The
// geometries below put distances EXACTLY on the thresholds (0.25 and 0.5
// are FP-exact; ct = 0.5 at population 4 gives R_T = 0.25, guard = 0.5).
TEST(SStar, ProtocolModelAgreesAtExactRangeBoundary) {
  SStarScheduler s(0.5, 1.0);
  const double rt = s.range_for(4);
  ASSERT_DOUBLE_EQ(rt, 0.25);
  std::vector<geom::Point> pos = {
      {0.25, 0.25}, {0.5, 0.25},        // d == R_T exactly
      {0.8125, 0.8125}, {0.875, 0.8125}};  // isolated pair, d = 0.0625
  const auto pairs = s.feasible_pairs(pos);
  ASSERT_EQ(pairs.size(), 1u);  // S* range-rejects the boundary pair
  EXPECT_EQ(pairs[0].tx, 2u);
  phy::ProtocolModel pm(rt, s.delta());
  EXPECT_FALSE(pm.in_range(pos[0], pos[1]));  // model must agree
  EXPECT_TRUE(pm.feasible(pos, {{pairs[0].tx, pairs[0].rx}}));
}

TEST(SStar, ProtocolModelAgreesAtExactGuardBoundary) {
  SStarScheduler s(0.5, 1.0);
  const double rt = s.range_for(4);  // 0.25; guard = 0.5
  // Node 2 sits exactly guard away from receiver 1 (torus Δy = 0.5): S*
  // counts it inside the guard disk, so nothing is scheduled — and the
  // protocol model must call the same geometry infeasible.
  std::vector<geom::Point> pos = {
      {0.125, 0.5}, {0.25, 0.5}, {0.25, 0.0}, {0.3125, 0.0}};
  EXPECT_TRUE(s.feasible_pairs(pos).empty());
  phy::ProtocolModel pm(rt, s.delta());
  EXPECT_FALSE(pm.guard_ok(pos[2], pos[1]));
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {2, 3}}));
  // Control: nudge the blocker outward past the guard; both pairs schedule
  // and the model agrees they are feasible.
  std::vector<geom::Point> clear = {
      {0.125, 0.5}, {0.25, 0.5}, {0.2, 0.0}, {0.2625, 0.0}};
  const auto pairs = s.feasible_pairs(clear);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pm.feasible(clear, {{0, 1}, {2, 3}}));
}

}  // namespace
}  // namespace manetcap::sched
