#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/network.h"
#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/l_hop.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::routing {
namespace {

net::ScalingParams strong_no_bs(std::size_t n, double alpha = 0.35) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = alpha;
  p.with_bs = false;
  p.M = 1.0;
  return p;
}

net::ScalingParams strong_with_bs(std::size_t n, double K = 0.75,
                                  double phi = 0.0) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.35;
  p.with_bs = true;
  p.K = K;
  p.phi = phi;
  p.M = 1.0;
  return p;
}

net::ScalingParams weak_params(std::size_t n) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.3;
  p.R = 0.4;
  p.phi = 0.0;
  return p;
}

net::ScalingParams trivial_params(std::size_t n) {
  // α > ½: the only region where trivial mobility coexists with disjoint
  // clusters (see DESIGN.md).
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.75;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.2;
  p.R = 0.3;
  p.phi = 0.0;
  return p;
}

std::vector<std::uint32_t> traffic_for(const net::Network& net,
                                       std::uint64_t seed = 77) {
  rng::Xoshiro256 g(seed);
  return net::permutation_traffic(net.num_ms(), g);
}

// ------------------------------------------------------------- scheme A --

TEST(SchemeA, PositiveThroughputInStrongRegime) {
  auto net = net::Network::build(strong_no_bs(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 1);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(net));
  EXPECT_FALSE(r.degenerate);
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_GT(r.grid_side, 4);
  EXPECT_GT(r.mean_hops, 1.0);
}

TEST(SchemeA, DegeneratesWhenMobilityCoversTorus) {
  auto net = net::Network::build(strong_no_bs(512, /*alpha=*/0.0),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 2);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(net));
  EXPECT_TRUE(r.degenerate);
}

TEST(SchemeA, ThroughputScalesAsOneOverF) {
  // λ(n)·f(n) should be roughly constant across sizes (Theorem 3).
  SchemeA a;
  std::vector<double> products;
  for (std::size_t n : {2048u, 8192u, 32768u}) {
    auto p = strong_no_bs(n);
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 3);
    auto r = a.evaluate(net, traffic_for(net));
    ASSERT_GT(r.throughput.lambda, 0.0) << "n=" << n;
    products.push_back(r.throughput.lambda * p.f());
  }
  // Spread within a factor 3 over a 16× size range.
  const double lo = *std::min_element(products.begin(), products.end());
  const double hi = *std::max_element(products.begin(), products.end());
  EXPECT_LT(hi / lo, 3.0);
}

TEST(SchemeA, BottleneckIsWireless) {
  auto net = net::Network::build(strong_no_bs(4096),
                                 mobility::ShapeKind::kTriangular,
                                 net::BsPlacement::kUniform, 4);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(net));
  EXPECT_EQ(r.throughput.bottleneck, flow::Resource::kWirelessRelay);
}

TEST(SchemeA, FailsInClusteredSparseLayout) {
  // Non-uniformly dense: empty squarelets break H-V forwarding (the very
  // reason the paper's weak regime abandons scheme A).
  auto net = net::Network::build(weak_params(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 5);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(net));
  if (!r.degenerate) EXPECT_DOUBLE_EQ(r.throughput.lambda, 0.0);
}

TEST(SchemeA, TooLargeCellFactorRejected) {
  EXPECT_THROW(SchemeA(1.0), manetcap::CheckError);  // √5·1.0 > 2
  EXPECT_NO_THROW(SchemeA(0.85));
}

// ------------------------------------------------------------- scheme B --

TEST(SchemeB, PositiveThroughputWithInfrastructure) {
  auto net = net::Network::build(strong_with_bs(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 6);
  SchemeB b;
  auto r = b.evaluate(net, traffic_for(net));
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_EQ(r.num_groups, 16u);
  // A small finite-n fraction of MSs may see no BS inside the mobility
  // disk (k/f² grows, so this vanishes asymptotically).
  EXPECT_LT(r.unreachable_ms, net.num_ms() / 20);
  EXPECT_GT(r.mean_access_rate, 0.0);
}

TEST(SchemeB, AccessRateScalesAsKOverN) {
  // Lemma 9: µ^A = Θ(k/n).
  std::vector<double> ratios;
  for (std::size_t n : {4096u, 16384u}) {
    auto p = strong_with_bs(n);
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched, 7);
    SchemeB b;
    auto r = b.evaluate(net, traffic_for(net));
    const double k_over_n =
        static_cast<double>(p.k()) / static_cast<double>(n);
    ratios.push_back(r.mean_access_rate / k_over_n);
  }
  EXPECT_LT(std::abs(std::log(ratios[0] / ratios[1])), std::log(2.0));
}

TEST(SchemeB, BackboneBindsWhenWiresAreThin) {
  // ϕ = −1 starves the backbone: bottleneck must move to the wires and
  // λ must drop accordingly.
  auto rich_net = net::Network::build(strong_with_bs(4096, 0.75, 0.5),
                                      mobility::ShapeKind::kUniformDisk,
                                      net::BsPlacement::kClusteredMatched, 8);
  auto poor_net = net::Network::build(strong_with_bs(4096, 0.75, -1.0),
                                      mobility::ShapeKind::kUniformDisk,
                                      net::BsPlacement::kClusteredMatched, 8);
  SchemeB b;
  auto rich = b.evaluate(rich_net, traffic_for(rich_net));
  auto poor = b.evaluate(poor_net, traffic_for(poor_net));
  EXPECT_EQ(poor.throughput.bottleneck, flow::Resource::kBackbone);
  EXPECT_LT(poor.throughput.lambda, rich.throughput.lambda);
}

TEST(SchemeB, AccessBindsWhenWiresAreFat) {
  auto net = net::Network::build(strong_with_bs(4096, 0.75, 1.0),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 9);
  SchemeB b;
  auto r = b.evaluate(net, traffic_for(net));
  EXPECT_EQ(r.throughput.bottleneck, flow::Resource::kAccess);
}

TEST(SchemeB, ClusterGroupingServesWeakRegime) {
  auto net = net::Network::build(weak_params(8192),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 10);
  SchemeB b(BsGrouping::kCluster);
  auto r = b.evaluate(net, traffic_for(net));
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_EQ(r.num_groups, net.ms_layout().num_clusters());
}

TEST(SchemeB, RequiresBaseStations) {
  auto net = net::Network::build(strong_no_bs(512),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 11);
  SchemeB b;
  auto dest = traffic_for(net);
  EXPECT_THROW(b.evaluate(net, dest), manetcap::CheckError);
}

// ------------------------------------------------------------- scheme C --

TEST(SchemeC, PositiveThroughputInTrivialRegime) {
  auto net = net::Network::build(trivial_params(8192),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 12);
  SchemeC c;
  auto r = c.evaluate(net, traffic_for(net));
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_EQ(r.ms_without_bs, 0u);
  EXPECT_GT(r.mean_duty_cycle, 0.0);
  EXPECT_LE(r.mean_duty_cycle, 1.0);
  EXPECT_GT(r.mean_cell_population, 1.0);
}

TEST(SchemeC, CellPopulationScalesAsNOverK) {
  auto p = trivial_params(8192);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 13);
  SchemeC c;
  auto r = c.evaluate(net, traffic_for(net));
  const double n_over_k =
      static_cast<double>(p.n) / static_cast<double>(p.k());
  EXPECT_GT(r.mean_cell_population, 0.3 * n_over_k);
  EXPECT_LT(r.mean_cell_population, 3.0 * n_over_k);
}

TEST(SchemeC, ThroughputNearKOverN) {
  // With ϕ = 0 the law is Θ(k/n); duty cycles put the constant below 1.
  auto p = trivial_params(8192);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 14);
  SchemeC c;
  auto r = c.evaluate(net, traffic_for(net));
  const double k_over_n =
      static_cast<double>(p.k()) / static_cast<double>(p.n);
  // TDMA duty cycles and cell-population skew put the constant well below
  // 1; the law itself (Θ(k/n)) is verified by the scaling sweep benches.
  EXPECT_GT(r.throughput.lambda, 3e-4 * k_over_n);
  EXPECT_LT(r.throughput.lambda, k_over_n);
}

// ------------------------------------------- generalized model (L > 0) --

TEST(SchemeC, AntennasLiftThroughputWhenWiresAllow) {
  // Same sampled instance, fat wires (ϕ = 0.4): l = n^0.25 antennas
  // multiply each cell's TDMA row, so λ must strictly rise — and by no
  // more than the antenna count.
  auto p = trivial_params(8192);
  p.phi = 0.4;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 15);
  SchemeC c;
  auto single = c.evaluate(net, traffic_for(net));
  auto q = p;
  q.L = 0.25;
  auto net_l = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusterGrid, 15);
  auto multi = c.evaluate(net_l, traffic_for(net_l));
  EXPECT_GT(multi.throughput.lambda, single.throughput.lambda);
  EXPECT_LE(multi.throughput.lambda,
            static_cast<double>(q.l()) * single.throughput.lambda * 1.0001);
  EXPECT_GT(multi.lambda_symmetric, single.lambda_symmetric);
}

TEST(SchemeC, AntennaGainCappedByMeanCellPopulation) {
  // The cell rows are duty·min(l, pop): once l exceeds a cell's population
  // the row saturates, so the symmetric estimate's gain over L = 0 is
  // bounded by the mean population, not by l.
  auto p = trivial_params(8192);
  p.phi = 0.5;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 16);
  SchemeC c;
  auto single = c.evaluate(net, traffic_for(net));
  auto q = p;
  q.L = 0.4;  // l = n^0.4 ≈ 36.7 vs mean population n^0.4 — saturating
  auto net_l = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusterGrid, 16);
  auto multi = c.evaluate(net_l, traffic_for(net_l));
  EXPECT_GT(multi.lambda_symmetric, single.lambda_symmetric);
  EXPECT_LE(multi.lambda_symmetric,
            single.lambda_symmetric * single.mean_cell_population * 1.0001);
}

TEST(SchemeB, AntennasWidenBsAggregateRows) {
  // Scheme B's per-BS aggregate access rows are capped at l·(bandwidth
  // share); with more antennas λ must not drop, and the L = 0 build must
  // be identical to the legacy single-antenna evaluation.
  auto p = strong_with_bs(4096, 0.6, 0.0);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 17);
  SchemeB b;
  auto dest = traffic_for(net);
  auto single = b.evaluate(net, dest);
  auto q = p;
  q.L = 0.3;
  auto net_l = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched, 17);
  auto multi = b.evaluate(net_l, traffic_for(net_l));
  EXPECT_GE(multi.throughput.lambda, single.throughput.lambda);
  // The honest finding of this reproduction: scheme B's access is capped
  // by the per-MS meeting rate (Lemma 9), so antennas give at most a
  // constant — not an order — improvement. Bound the gain generously.
  EXPECT_LE(multi.throughput.lambda, 10.0 * single.throughput.lambda);
}

// ------------------------------------------------------------- two-hop --

TEST(TwoHop, ConstantThroughputUnderFullMixing) {
  // f = Θ(1), uniform home-points: the Grossglauser–Tse Θ(1) regime.
  TwoHopRelay th;
  std::vector<double> lambdas;
  for (std::size_t n : {1024u, 4096u}) {
    auto net = net::Network::build(strong_no_bs(n, /*alpha=*/0.0),
                                   mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 15);
    auto r = th.evaluate(net, traffic_for(net));
    EXPECT_EQ(r.disconnected_flows, 0u);
    ASSERT_GT(r.throughput.lambda, 0.0);
    lambdas.push_back(r.throughput.lambda);
  }
  // Θ(1): no more than 2× drift over a 4× size change.
  EXPECT_LT(std::abs(std::log(lambdas[0] / lambdas[1])), std::log(2.0));
}

TEST(TwoHop, RestrictedMobilityDisconnectsDistantFlows) {
  auto net = net::Network::build(strong_no_bs(2048, /*alpha=*/0.4),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 16);
  TwoHopRelay th;
  auto r = th.evaluate(net, traffic_for(net));
  // Most source–destination pairs are Θ(1) apart with mobility radius
  // n^−0.4 ≈ 0.047: no common relay exists.
  EXPECT_GT(r.disconnected_flows, net.num_ms() / 2);
  EXPECT_DOUBLE_EQ(r.throughput.lambda, 0.0);
}

// ------------------------------------------------------------ L-max-hop --

TEST(LMaxHop, ZeroHopsRoutesEverythingViaInfrastructure) {
  auto net = net::Network::build(strong_with_bs(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 31);
  auto dest = traffic_for(net);
  LMaxHop scheme(0);
  auto r = scheme.evaluate(net, dest);
  // Only same-squarelet flows stay ad hoc at L = 0.
  EXPECT_LT(r.short_flows, net.num_ms() / 10);
  EXPECT_GT(r.long_flows, net.num_ms() * 9 / 10);
  EXPECT_GT(r.lambda_symmetric, 0.0);
}

TEST(LMaxHop, HugeLIsPureAdhoc) {
  auto net = net::Network::build(strong_with_bs(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 32);
  auto dest = traffic_for(net);
  LMaxHop scheme(1000);
  auto r = scheme.evaluate(net, dest);
  EXPECT_EQ(r.long_flows, 0u);
  EXPECT_EQ(r.short_flows, net.num_ms());
  EXPECT_GT(r.lambda_symmetric, 0.0);
  EXPECT_DOUBLE_EQ(r.lambda_infra_class, 0.0);
}

TEST(LMaxHop, ClassCountsPartitionFlows) {
  auto net = net::Network::build(strong_with_bs(2048),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 33);
  auto dest = traffic_for(net);
  for (int L : {1, 3, 7}) {
    LMaxHop scheme(L);
    auto r = scheme.evaluate(net, dest);
    EXPECT_EQ(r.short_flows + r.long_flows, net.num_ms()) << "L=" << L;
  }
}

TEST(LMaxHop, ShortFlowCountGrowsWithL) {
  auto net = net::Network::build(strong_with_bs(2048),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 34);
  auto dest = traffic_for(net);
  std::size_t prev = 0;
  for (int L : {0, 2, 4, 8}) {
    LMaxHop scheme(L);
    auto r = scheme.evaluate(net, dest);
    EXPECT_GE(r.short_flows, prev);
    prev = r.short_flows;
  }
}

TEST(LMaxHop, DegenerateGridFallsBackToInfrastructure) {
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.05;  // mobility covers the torus: no multihop grid
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;
  p.phi = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 35);
  auto dest = traffic_for(net);
  LMaxHop scheme(4);
  auto r = scheme.evaluate(net, dest);
  EXPECT_TRUE(r.adhoc_degenerate);
  EXPECT_EQ(r.long_flows, net.num_ms());
  EXPECT_GT(r.lambda_symmetric, 0.0);
}

TEST(LMaxHop, InvalidParametersRejected) {
  EXPECT_THROW(LMaxHop(-1), manetcap::CheckError);
  EXPECT_THROW(LMaxHop(2, 0.0), manetcap::CheckError);
  EXPECT_THROW(LMaxHop(2, 1.0), manetcap::CheckError);
}

// -------------------------------------------- flow masks on schemes A/B --

TEST(FlowMask, SchemeAPartialMaskRaisesPerFlowRate) {
  auto net = net::Network::build(strong_no_bs(2048),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 36);
  auto dest = traffic_for(net);
  // Include only a quarter of the flows: λ per included flow must be at
  // least the all-flows λ (strictly less contention).
  std::vector<bool> mask(net.num_ms(), false);
  for (std::size_t s = 0; s < net.num_ms(); s += 4) mask[s] = true;
  SchemeA a;
  const auto all = a.evaluate(net, dest);
  const auto part = a.evaluate(net, dest, &mask);
  ASSERT_FALSE(all.degenerate);
  EXPECT_GE(part.lambda_symmetric, all.lambda_symmetric);
}

TEST(FlowMask, SchemeBHalvedBandwidthHalvesAccess) {
  auto net = net::Network::build(strong_with_bs(4096),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 37);
  auto dest = traffic_for(net);
  SchemeB b;
  const auto full = b.evaluate(net, dest);
  const auto half = b.evaluate(net, dest, nullptr, 0.5);
  EXPECT_NEAR(half.mean_access_rate, full.mean_access_rate / 2.0,
              0.05 * full.mean_access_rate);
}

// ------------------------------------------------------ static multihop --

TEST(StaticMultihop, UniformLayoutGuptaKumarShape) {
  StaticMultihop sm;
  std::vector<double> lambdas;
  std::vector<double> ns;
  for (std::size_t n : {2048u, 8192u, 32768u}) {
    auto net = net::Network::build(strong_no_bs(n, /*alpha=*/0.2),
                                   mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 17);
    auto r = sm.evaluate(net, traffic_for(net));
    ASSERT_TRUE(r.connected) << "n=" << n;
    ASSERT_GT(r.throughput.lambda, 0.0);
    lambdas.push_back(r.throughput.lambda);
    ns.push_back(static_cast<double>(n));
  }
  // λ ~ 1/(n·R_T) ~ n^{-1/2} up to logs: the 16× size change should cut
  // λ by roughly 4 (allow [2.5, 8]).
  const double drop = lambdas.front() / lambdas.back();
  EXPECT_GT(drop, 2.5);
  EXPECT_LT(drop, 10.0);
}

TEST(StaticMultihop, ClusteredVariantConnectsViaClusterGraph) {
  auto p = weak_params(8192);
  p.with_bs = false;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 18);
  StaticMultihop sm;
  auto r = sm.evaluate(net, traffic_for(net));
  EXPECT_GT(r.transmission_range, 0.0);
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_TRUE(r.connected);
  EXPECT_LT(r.mean_duty_cycle, 1.0);
}

TEST(StaticMultihop, ClusteredSlowerThanStrongMobility) {
  // Remark 13: the no-BS clustered capacity is strictly below Θ(1/f).
  auto p = weak_params(8192);
  p.with_bs = false;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 19);
  StaticMultihop sm;
  auto r = sm.evaluate(net, traffic_for(net));
  EXPECT_LT(r.throughput.lambda, 1.0 / p.f());
}

}  // namespace
}  // namespace manetcap::routing
