#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "routing/multicast.h"
#include "routing/scheme_a.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::routing {
namespace {

net::ScalingParams strong_params(std::size_t n, bool with_bs) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.3;
  p.with_bs = with_bs;
  p.K = 0.7;
  p.M = 1.0;
  p.phi = 0.0;
  return p;
}

// --------------------------------------------------------- traffic model --

TEST(MulticastTraffic, DestinationsDistinctAndNotSelf) {
  rng::Xoshiro256 g(3);
  auto t = multicast_traffic(200, 8, g);
  ASSERT_EQ(t.dests.size(), 200u);
  EXPECT_EQ(t.group_size(), 8u);
  for (std::uint32_t s = 0; s < 200; ++s) {
    std::set<std::uint32_t> uniq(t.dests[s].begin(), t.dests[s].end());
    EXPECT_EQ(uniq.size(), 8u);
    EXPECT_EQ(uniq.count(s), 0u);
    for (auto d : uniq) EXPECT_LT(d, 200u);
  }
}

TEST(MulticastTraffic, RejectsBadGroupSizes) {
  rng::Xoshiro256 g(5);
  EXPECT_THROW(multicast_traffic(10, 0, g), manetcap::CheckError);
  EXPECT_THROW(multicast_traffic(10, 10, g), manetcap::CheckError);
}

// ------------------------------------------------------------- scheme A --

TEST(MulticastSchemeA, TreeNeverWorseThanUnicastBundle) {
  auto net = net::Network::build(strong_params(4096, false),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 7);
  rng::Xoshiro256 g(9);
  auto traffic = multicast_traffic(net.num_ms(), 8, g);
  MulticastSchemeA tree(/*share_tree=*/true);
  MulticastSchemeA bundle(/*share_tree=*/false);
  auto rt = tree.evaluate(net, traffic);
  auto rb = bundle.evaluate(net, traffic);
  ASSERT_FALSE(rt.degenerate);
  EXPECT_GE(rt.lambda_symmetric, rb.lambda_symmetric);
  // Sharing strictly reduces loaded edges.
  EXPECT_LT(rt.mean_tree_edges, rb.mean_tree_edges);
  // Both count the same underlying unicast edge total.
  EXPECT_DOUBLE_EQ(rt.mean_unicast_edges, rb.mean_unicast_edges);
}

TEST(MulticastSchemeA, GroupOfOneMatchesUnicastSchemeA) {
  // g = 1 multicast is plain unicast: the tree and the H-V path coincide.
  auto net = net::Network::build(strong_params(2048, false),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 11);
  rng::Xoshiro256 g(13);
  auto traffic = multicast_traffic(net.num_ms(), 1, g);
  // Multicast evaluation:
  MulticastSchemeA mc;
  auto rm = mc.evaluate(net, traffic);
  ASSERT_FALSE(rm.degenerate);
  // Same flows through the unicast evaluator (traffic is not a
  // permutation, but scheme A only needs per-flow destinations).
  std::vector<std::uint32_t> dest(net.num_ms());
  for (std::uint32_t s = 0; s < net.num_ms(); ++s)
    dest[s] = traffic.dests[s][0];
  SchemeA a;
  auto ru = a.evaluate(net, dest);
  EXPECT_NEAR(rm.lambda_symmetric, ru.lambda_symmetric,
              0.35 * ru.lambda_symmetric);
  EXPECT_DOUBLE_EQ(rm.mean_tree_edges, rm.mean_unicast_edges);
}

TEST(MulticastSchemeA, SharingFactorGrowsWithGroupSize) {
  auto net = net::Network::build(strong_params(4096, false),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 17);
  MulticastSchemeA mc;
  double prev_factor = 0.0;
  for (std::size_t g_size : {2u, 8u, 32u}) {
    rng::Xoshiro256 g(19);
    auto traffic = multicast_traffic(net.num_ms(), g_size, g);
    auto r = mc.evaluate(net, traffic);
    const double factor = r.mean_unicast_edges / r.mean_tree_edges;
    EXPECT_GT(factor, prev_factor) << "g=" << g_size;
    prev_factor = factor;
  }
  EXPECT_GT(prev_factor, 1.5);  // large groups share a lot
}

TEST(MulticastSchemeA, DegeneratesWithFullMixing) {
  auto p = strong_params(256, false);
  p.alpha = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 21);
  rng::Xoshiro256 g(23);
  auto traffic = multicast_traffic(net.num_ms(), 4, g);
  MulticastSchemeA mc;
  EXPECT_TRUE(mc.evaluate(net, traffic).degenerate);
}

// ------------------------------------------------------------- scheme B --

TEST(MulticastSchemeB, DeliversAndScalesDownWithGroupSize) {
  auto net = net::Network::build(strong_params(8192, true),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 25);
  MulticastSchemeB mc;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t g_size : {1u, 4u, 16u}) {
    rng::Xoshiro256 g(27);
    auto traffic = multicast_traffic(net.num_ms(), g_size, g);
    auto r = mc.evaluate(net, traffic);
    EXPECT_GT(r.lambda_symmetric, 0.0) << "g=" << g_size;
    // Each extra destination adds a downlink: λ must shrink with g.
    EXPECT_LT(r.lambda_symmetric, prev) << "g=" << g_size;
    prev = r.lambda_symmetric;
  }
}

TEST(MulticastSchemeB, WiredFanOutBoundedByGroupCount) {
  // A flow loads at most (#squarelet groups − 1) wired group pairs no
  // matter how large g is: infrastructure multicast amortizes distance.
  auto net = net::Network::build(strong_params(8192, true),
                                 mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 29);
  MulticastSchemeB mc;
  rng::Xoshiro256 g1(31), g2(31);
  auto small = mc.evaluate(net, multicast_traffic(net.num_ms(), 15, g1));
  auto large = mc.evaluate(net, multicast_traffic(net.num_ms(), 60, g2));
  // With 16 groups, g = 15 already touches most groups; quadrupling g
  // cannot quadruple the backbone bound.
  ASSERT_GT(large.throughput.lambda_backbone, 0.0);
  EXPECT_LT(small.throughput.lambda_backbone /
                large.throughput.lambda_backbone,
            2.0);
}

}  // namespace
}  // namespace manetcap::routing
