#include <gtest/gtest.h>

#include <cmath>

#include "flow/constraints.h"
#include "util/check.h"

namespace manetcap::flow {
namespace {

TEST(ConstraintSet, EmptySetIsUnbounded) {
  ConstraintSet cs;
  auto r = cs.solve();
  EXPECT_TRUE(std::isinf(r.lambda));
}

TEST(ConstraintSet, ZeroLoadIgnored) {
  ConstraintSet cs;
  cs.add(Resource::kAccess, 1.0, 0.0);
  EXPECT_EQ(cs.size(), 0u);
  EXPECT_TRUE(std::isinf(cs.solve().lambda));
}

TEST(ConstraintSet, SingleConstraintGivesRatio) {
  ConstraintSet cs;
  cs.add(Resource::kAccess, 2.0, 4.0);
  auto r = cs.solve();
  EXPECT_DOUBLE_EQ(r.lambda, 0.5);
  EXPECT_EQ(r.bottleneck, Resource::kAccess);
}

TEST(ConstraintSet, MinAcrossConstraints) {
  ConstraintSet cs;
  cs.add(Resource::kWirelessRelay, 10.0, 1.0);
  cs.add(Resource::kBackbone, 1.0, 1.0, "edge (a,b)");
  cs.add(Resource::kAccess, 5.0, 1.0);
  auto r = cs.solve();
  EXPECT_DOUBLE_EQ(r.lambda, 1.0);
  EXPECT_EQ(r.bottleneck, Resource::kBackbone);
  EXPECT_EQ(r.bottleneck_label, "edge (a,b)");
}

TEST(ConstraintSet, PerResourceBoundsReported) {
  ConstraintSet cs;
  cs.add(Resource::kWirelessRelay, 8.0, 2.0);   // 4
  cs.add(Resource::kAccess, 3.0, 1.0);          // 3
  cs.add(Resource::kBackbone, 10.0, 1.0);       // 10
  auto r = cs.solve();
  EXPECT_DOUBLE_EQ(r.lambda_wireless, 4.0);
  EXPECT_DOUBLE_EQ(r.lambda_access, 3.0);
  EXPECT_DOUBLE_EQ(r.lambda_backbone, 10.0);
  EXPECT_DOUBLE_EQ(r.lambda, 3.0);
}

TEST(ConstraintSet, ZeroCapacityWithLoadKillsThroughput) {
  ConstraintSet cs;
  cs.add(Resource::kAccess, 5.0, 1.0);
  cs.add(Resource::kAccess, 0.0, 1.0, "unreachable");
  auto r = cs.solve();
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);
  EXPECT_EQ(r.bottleneck_label, "unreachable");
}

TEST(ConstraintSet, TightestOfSameResourceWins) {
  ConstraintSet cs;
  for (int i = 1; i <= 10; ++i)
    cs.add(Resource::kWirelessRelay, 1.0, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cs.solve().lambda, 0.1);
}

TEST(ConstraintSet, NegativeInputsRejected) {
  ConstraintSet cs;
  EXPECT_THROW(cs.add(Resource::kAccess, -1.0, 1.0), manetcap::CheckError);
  EXPECT_THROW(cs.add(Resource::kAccess, 1.0, -1.0), manetcap::CheckError);
}

TEST(Resource, Names) {
  EXPECT_EQ(to_string(Resource::kWirelessRelay), "wireless-relay");
  EXPECT_EQ(to_string(Resource::kAccess), "access");
  EXPECT_EQ(to_string(Resource::kBackbone), "backbone");
}

}  // namespace
}  // namespace manetcap::flow
