#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/spec.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace manetcap {
namespace {

// ---------------------------------------------------------------- check --

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(MANETCAP_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(MANETCAP_CHECK(false), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    MANETCAP_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, ErrorNamesFileAndCondition) {
  try {
    MANETCAP_CHECK(2 < 1);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

// ---------------------------------------------------------------- table --

TEST(Table, AlignsColumns) {
  util::Table t({"a", "long-header"});
  t.add_row({"xxxxxx", "1"});
  const std::string out = t.to_string();
  // Both rows must have equal length lines (alignment).
  std::istringstream is(out);
  std::string l1, l2, l3;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1.size(), l3.size());
}

TEST(Table, RejectsWrongCellCount) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, SeparatorRendersRule) {
  util::Table t({"h"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  EXPECT_NE(t.to_string().find("---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);  // separator counts as a row slot
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(util::fmt_double(1.23456, 3), "1.23");
  EXPECT_EQ(util::fmt_sci(0.000123, 2).substr(0, 4), "1.23");
}

// ------------------------------------------------------------------ csv --

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/manetcap_csv_test.csv";
  {
    util::CsvWriter w(path, {"n", "lambda"});
    w.add_row({"10", "0.5"});
    w.add_row({"20", "0.25"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "n,lambda");
  std::getline(in, line);
  EXPECT_EQ(line, "10,0.5");
  std::remove(path.c_str());
}

TEST(Csv, RowLengthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/manetcap_csv_test2.csv";
  util::CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), CheckError);
  std::remove(path.c_str());
}

TEST(Csv, UnopenablePathThrowsNamingThePath) {
  const std::string path =
      ::testing::TempDir() + "/no_such_dir_manetcap/out.csv";
  try {
    util::CsvWriter w(path, {"a"});
    FAIL() << "expected runtime_error for unopenable path";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(Csv, WriteFailureSurfacesImmediately) {
  // Regression: CsvWriter used to buffer through std::ofstream and never
  // check the stream, so a full disk silently produced a truncated CSV
  // while the bench reported success. Every add_row now flushes and
  // checks. /dev/full accepts the open and fails every flush with ENOSPC
  // — the canonical disk-full simulation; skip where it is absent.
  std::ofstream probe("/dev/full");
  if (!probe.is_open()) GTEST_SKIP() << "/dev/full not available";
  try {
    // The header flush in the constructor may already fail; if the libc
    // defers it, the first row's flush must.
    util::CsvWriter w("/dev/full", {"a", "b"});
    w.add_row({"1", "2"});
    FAIL() << "expected runtime_error on disk-full write";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, AddRowAfterCloseThrows) {
  const std::string path = ::testing::TempDir() + "/manetcap_csv_close.csv";
  util::CsvWriter w(path, {"a"});
  w.add_row({"1"});
  w.close();
  EXPECT_THROW(w.add_row({"2"}), CheckError);
  w.close();  // idempotent: closing twice is a no-op
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- flags --

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=100", "--alpha", "0.5", "--verbose"};
  util::Flags f(5, argv, {"n", "alpha", "verbose"});
  EXPECT_EQ(f.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  util::Flags f(1, argv, {"n"});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_FALSE(f.has("n"));
}

TEST(Flags, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(util::Flags(2, argv, {"n"}), std::runtime_error);
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "file1", "--n=1", "file2"};
  util::Flags f(4, argv, {"n"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "file1");
  EXPECT_EQ(f.positional()[1], "file2");
}

TEST(Flags, BadIntValueNamesFlagAndValue) {
  const char* argv[] = {"prog", "--n=abc"};
  util::Flags f(2, argv, {"n"});
  try {
    f.get_int("n", 0);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--n"), std::string::npos);
    EXPECT_NE(what.find("abc"), std::string::npos);
  }
}

TEST(Flags, BadDoubleValueNamesFlagAndValue) {
  const char* argv[] = {"prog", "--alpha=zero"};
  util::Flags f(2, argv, {"alpha"});
  try {
    f.get_double("alpha", 0.0);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--alpha"), std::string::npos);
    EXPECT_NE(what.find("zero"), std::string::npos);
  }
}

TEST(Flags, TrailingGarbageRejected) {
  const char* argv[] = {"prog", "--n=12x", "--alpha=0.5y"};
  util::Flags f(3, argv, {"n", "alpha"});
  EXPECT_THROW(f.get_int("n", 0), std::runtime_error);
  EXPECT_THROW(f.get_double("alpha", 0.0), std::runtime_error);
}

TEST(Flags, OutOfRangeIntRejected) {
  const char* argv[] = {"prog", "--n=99999999999999999999999999"};
  util::Flags f(2, argv, {"n"});
  EXPECT_THROW(f.get_int("n", 0), std::runtime_error);
}

// stod parses "nan"/"inf" into values that poison every downstream
// comparison without ever tripping a range check; get_double must reject
// them with the same `bad value for --<name>: <value>` shape as any other
// malformed number.
TEST(Flags, NonFiniteDoubleRejectedWithNamedError) {
  const char* spellings[] = {"nan",  "NaN",  "-nan", "inf",
                             "Inf",  "-inf", "INFINITY"};
  for (const char* s : spellings) {
    const std::string arg = std::string("--alpha=") + s;
    const char* argv[] = {"prog", arg.c_str()};
    util::Flags f(2, argv, {"alpha"});
    try {
      f.get_double("alpha", 0.0);
      FAIL() << "expected throw for " << s;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("bad value for --alpha"), std::string::npos) << s;
      EXPECT_NE(what.find(s), std::string::npos) << s;
    }
  }
  // Finite values, including huge-but-representable ones, still parse.
  const char* argv[] = {"prog", "--alpha=1e300"};
  util::Flags f(2, argv, {"alpha"});
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 1e300);
}

// ---------------------------------------------------------- thread pool --

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_index(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // One worker + FIFO queue: execution order equals submission order.
  util::ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, PropagatesEarliestException) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  try {
    pool.for_each_index(hits.size(), [&hits](std::size_t i) {
      ++hits[i];
      if (i == 5 || i == 20)
        throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // Deterministically the lowest failing index, not whichever thread
    // happened to fail first.
    EXPECT_STREQ(e.what(), "task 5");
  }
  // Every index still ran — one failure does not cancel the fan-out.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleClearsStoredException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(util::ThreadPool::default_num_threads(), 1u);
}

TEST(ThreadPool, ParallelForExecutesEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Zero-count fan-out is a no-op, not a hang.
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRespectsWidthCap) {
  util::ThreadPool pool(4);
  std::atomic<int> active{0}, peak{0};
  pool.parallel_for(
      64,
      [&](std::size_t) {
        const int now = ++active;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        --active;
      },
      /*width=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, ParallelForThrowsLowestFailingIndex) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  try {
    pool.parallel_for(hits.size(), [&hits](std::size_t i) {
      ++hits[i];
      if (i == 7 || i == 21)
        throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  // Every index still ran, and the group's error does not linger: a
  // following fan-out on the same pool is clean.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_NO_THROW(pool.parallel_for(8, [](std::size_t) {}));
}

TEST(ThreadPool, ParallelForGroupsAreIndependent) {
  // Two interleaved groups on one pool must each complete exactly their
  // own indices — the group barrier must not wait on (or steal errors
  // from) foreign tasks. Driven from two threads sharing the pool.
  util::ThreadPool pool(2);
  std::atomic<int> a_sum{0}, b_sum{0};
  std::thread other([&] {
    pool.parallel_for(100, [&a_sum](std::size_t i) {
      a_sum += static_cast<int>(i);
    });
  });
  pool.parallel_for(50, [&b_sum](std::size_t i) {
    b_sum += static_cast<int>(i);
  });
  other.join();
  EXPECT_EQ(a_sum.load(), 99 * 100 / 2);
  EXPECT_EQ(b_sum.load(), 49 * 50 / 2);
}

TEST(ThreadPool, SharedPoolIsPersistentAndUsable) {
  auto& pool = util::ThreadPool::shared();
  EXPECT_EQ(&pool, &util::ThreadPool::shared());  // one instance
  std::atomic<int> sum{0};
  pool.parallel_for(16, [&sum](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 15 * 16 / 2);
}

// ------------------------------------------------------------ stopwatch --

TEST(Stopwatch, MeasuresNonNegativeTime) {
  util::Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

// ------------------------------------------------------------------ log --

TEST(Log, ThresholdSuppressesLowerLevels) {
  util::set_log_level(util::LogLevel::kError);
  // Nothing to assert on stderr portably; exercise the paths.
  MANETCAP_LOG(kInfo) << "suppressed";
  MANETCAP_LOG(kError) << "emitted";
  util::set_log_level(util::LogLevel::kInfo);
  EXPECT_EQ(util::log_level(), util::LogLevel::kInfo);
}

// ----------------------------------------------------------------- spec --

TEST(Spec, SplitEmitsEmptySegments) {
  using util::spec::split;
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x;", ';'), (std::vector<std::string>{"x", ""}));
  EXPECT_EQ(split("one", ';'), (std::vector<std::string>{"one"}));
}

TEST(Spec, TrimStripsSpacesAndTabs) {
  using util::spec::trim;
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim("\t\t"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Spec, NumericFieldsMustBeFullyConsumed) {
  // "12x" silently parsing as 12 is how a typo'd spec corrupts a run —
  // both parsers must consume the whole field or throw the grammar's
  // error shape, prefixed with the caller-supplied grammar name.
  EXPECT_EQ(util::spec::parse_u64("G", "42", "tok"), 42u);
  EXPECT_DOUBLE_EQ(util::spec::parse_f64("G", "0.25", "tok"), 0.25);
  auto expect_error = [](auto fn, const std::string& s,
                         const char* needle) {
    try {
      fn("MyGrammar", s, "the-token");
      FAIL() << "expected CheckError for '" << s << "'";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("MyGrammar"), std::string::npos)
          << "got: " << what;
      EXPECT_NE(what.find(needle), std::string::npos) << "got: " << what;
      EXPECT_NE(what.find("the-token"), std::string::npos);
    }
  };
  expect_error(util::spec::parse_u64, "12x", "bad number");
  expect_error(util::spec::parse_u64, "", "missing number");
  expect_error(util::spec::parse_f64, "1.5e", "bad number");
  expect_error(util::spec::parse_f64, "", "missing number");
}

TEST(Spec, SplitEventParsesTimedClauses) {
  const auto e = util::spec::split_event("G", "down@120:3");
  EXPECT_EQ(e.kind, "down");
  EXPECT_EQ(e.slot, "120");
  EXPECT_EQ(e.args, "3");
  // args keep any later ':' intact for the grammar to interpret.
  const auto w = util::spec::split_event("G", "wire@9:0-1x0.5");
  EXPECT_EQ(w.kind, "wire");
  EXPECT_EQ(w.args, "0-1x0.5");
  for (const char* bad : {"down120:3", "down@120", "plain"}) {
    try {
      util::spec::split_event("G", bad);
      FAIL() << "expected CheckError for '" << bad << "'";
    } catch (const CheckError& e2) {
      EXPECT_NE(std::string(e2.what()).find("expected KIND@SLOT:ARGS"),
                std::string::npos)
          << "got: " << e2.what();
    }
  }
}

}  // namespace
}  // namespace manetcap
