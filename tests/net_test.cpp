#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/network.h"
#include "net/params.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::net {
namespace {

ScalingParams strong_params(std::size_t n = 1024) {
  ScalingParams p;
  p.n = n;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;  // cluster-free
  p.phi = 0.0;
  return p;
}

ScalingParams clustered_params(std::size_t n = 2048) {
  ScalingParams p;
  p.n = n;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.3;
  p.R = 0.4;
  p.phi = 0.0;
  return p;
}

// --------------------------------------------------------------- params --

TEST(ScalingParams, DerivedQuantities) {
  ScalingParams p = strong_params(10000);
  EXPECT_NEAR(p.f(), std::pow(10000.0, 0.3), 1e-9);
  EXPECT_EQ(p.k(), static_cast<std::size_t>(std::round(std::pow(10000, 0.7))));
  EXPECT_EQ(p.m(), 10000u);  // cluster-free
  EXPECT_DOUBLE_EQ(p.r(), 0.0);
  EXPECT_NEAR(p.c() * static_cast<double>(p.k()), 1.0, 1e-9);  // phi = 0
}

TEST(ScalingParams, GammaMatchesDefinition) {
  ScalingParams p = clustered_params(4096);
  const double m = static_cast<double>(p.m());
  EXPECT_NEAR(p.gamma(), std::log(m) / m, 1e-12);
  const double per = 4096.0 / m;
  EXPECT_NEAR(p.gamma_tilde(), p.r() * p.r() * std::log(per) / per, 1e-12);
}

TEST(ScalingParams, MobilityRadiusIsSupportOverF) {
  ScalingParams p = strong_params(4096);
  p.shape_support = 2.0;
  EXPECT_NEAR(p.mobility_radius(), 2.0 / p.f(), 1e-12);
}

TEST(ScalingParams, NoBsHasNoStations) {
  ScalingParams p = strong_params();
  p.with_bs = false;
  EXPECT_EQ(p.k(), 0u);
  EXPECT_THROW(p.c(), manetcap::CheckError);
}

TEST(ScalingParams, ValidConfigurationHasNoViolations) {
  EXPECT_TRUE(strong_params().assumption_violations().empty());
  EXPECT_TRUE(clustered_params().assumption_violations().empty());
}

TEST(ScalingParams, ViolationsDetected) {
  ScalingParams p = clustered_params();
  p.alpha = 0.7;  // outside [0, 1/2]
  EXPECT_FALSE(p.assumption_violations().empty());

  ScalingParams q = clustered_params();
  q.R = 0.1;  // M − 2R = 0.3 − 0.2 > 0 ⇒ overlap
  EXPECT_FALSE(q.assumption_violations().empty());

  ScalingParams r = clustered_params();
  r.K = 0.2;  // K <= M violates k = omega(m)
  EXPECT_FALSE(r.assumption_violations().empty());
}

TEST(ScalingParams, DescribeMentionsKeyNumbers) {
  const std::string d = clustered_params().describe();
  EXPECT_NE(d.find("n=2048"), std::string::npos);
  EXPECT_NE(d.find("alpha=0.45"), std::string::npos);
}

// -------------------------------------------------------------- network --

TEST(Network, BuildsRequestedPopulation) {
  auto net = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 1);
  EXPECT_EQ(net.num_ms(), 1024u);
  EXPECT_EQ(net.num_bs(), strong_params().k());
  EXPECT_EQ(net.ms_home().size(), 1024u);
}

TEST(Network, DeterministicGivenSeed) {
  auto a = Network::build(clustered_params(), mobility::ShapeKind::kTriangular,
                          BsPlacement::kClusteredMatched, 99);
  auto b = Network::build(clustered_params(), mobility::ShapeKind::kTriangular,
                          BsPlacement::kClusteredMatched, 99);
  for (std::size_t i = 0; i < a.num_ms(); ++i) {
    EXPECT_DOUBLE_EQ(a.ms_home()[i].x, b.ms_home()[i].x);
    EXPECT_DOUBLE_EQ(a.ms_home()[i].y, b.ms_home()[i].y);
  }
  for (std::size_t j = 0; j < a.num_bs(); ++j)
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].x, b.bs_pos()[j].x);
}

TEST(Network, SeedsChangeLayout) {
  auto a = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kUniform, 1);
  auto b = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kUniform, 2);
  EXPECT_GT(geom::torus_dist(a.ms_home()[0], b.ms_home()[0]), 0.0);
}

TEST(Network, ClusteredMatchedBsNearClusters) {
  auto net = Network::build(clustered_params(),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 7);
  const auto& layout = net.ms_layout();
  const double tol = layout.cluster_radius + net.mobility_radius() + 1e-9;
  for (std::size_t j = 0; j < net.num_bs(); ++j) {
    const auto c = net.bs_cluster()[j];
    EXPECT_LE(geom::torus_dist(net.bs_pos()[j], layout.cluster_centers[c]),
              tol);
  }
}

TEST(Network, RegularGridIsDeterministicLattice) {
  auto p = strong_params();
  auto a = Network::build(p, mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kRegularGrid, 1);
  auto b = Network::build(p, mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kRegularGrid, 2);
  // Lattice ignores the seed.
  for (std::size_t j = 0; j < a.num_bs(); ++j) {
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].x, b.bs_pos()[j].x);
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].y, b.bs_pos()[j].y);
  }
}

TEST(Network, EveryClusterGetsBs) {
  // k = ω(m) should give every cluster at least one BS w.h.p.
  auto net = Network::build(clustered_params(4096),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 3);
  std::set<std::uint32_t> clusters_with_bs(net.bs_cluster().begin(),
                                           net.bs_cluster().end());
  EXPECT_EQ(clusters_with_bs.size(), net.ms_layout().num_clusters());
}

// -------------------------------------------------------------- traffic --

TEST(Network, WithBsSubsetKeepsPositionClusterAlignment) {
  // Every surviving BS must keep its (position, cluster) pairing — the
  // two arrays are compacted in one pass and a mismatch would silently
  // re-home the fluid scheme-B evaluation after an outage.
  auto net = Network::build(clustered_params(),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 17);
  ASSERT_GT(net.num_bs(), 2u);
  std::vector<bool> keep(net.num_bs(), false);
  for (std::size_t j = 0; j < keep.size(); j += 2) keep[j] = true;
  const auto sub = net.with_bs_subset(keep);
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < keep.size(); ++j) {
    if (!keep[j]) continue;
    EXPECT_DOUBLE_EQ(sub.bs_pos()[cursor].x, net.bs_pos()[j].x);
    EXPECT_DOUBLE_EQ(sub.bs_pos()[cursor].y, net.bs_pos()[j].y);
    EXPECT_EQ(sub.bs_cluster()[cursor], net.bs_cluster()[j]);
    ++cursor;
  }
  EXPECT_EQ(sub.num_bs(), cursor);
  EXPECT_EQ(sub.bs_cluster().size(), cursor);
  // The MS side and the scaling parameters are untouched: surviving
  // wires keep their per-edge capacity c(n).
  EXPECT_EQ(sub.num_ms(), net.num_ms());
  EXPECT_DOUBLE_EQ(sub.params().phi, net.params().phi);
}

TEST(Network, WithBsSubsetEdgeCases) {
  auto net = Network::build(strong_params(256),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 19);
  // keep-all is the identity on the BS arrays.
  const auto all = net.with_bs_subset(
      std::vector<bool>(net.num_bs(), true));
  ASSERT_EQ(all.num_bs(), net.num_bs());
  for (std::size_t j = 0; j < net.num_bs(); ++j) {
    EXPECT_DOUBLE_EQ(all.bs_pos()[j].x, net.bs_pos()[j].x);
    EXPECT_EQ(all.bs_cluster()[j], net.bs_cluster()[j]);
  }
  // keep-none leaves a BS-free network (the no-infrastructure shape).
  const auto none = net.with_bs_subset(
      std::vector<bool>(net.num_bs(), false));
  EXPECT_EQ(none.num_bs(), 0u);
  EXPECT_TRUE(none.bs_cluster().empty());
  EXPECT_EQ(none.num_ms(), net.num_ms());
  // A mask of the wrong size is a named error, not UB.
  EXPECT_THROW(net.with_bs_subset(std::vector<bool>(net.num_bs() + 1, true)),
               CheckError);
}

TEST(Traffic, ProducesValidPermutation) {
  rng::Xoshiro256 g(5);
  for (std::size_t n : {2u, 3u, 10u, 1001u}) {
    auto dest = permutation_traffic(n, g);
    EXPECT_TRUE(is_valid_permutation_traffic(dest)) << "n=" << n;
  }
}

TEST(Traffic, NoFixedPointsOverManySeeds) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    rng::Xoshiro256 g(seed);
    auto dest = permutation_traffic(7, g);
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NE(dest[i], i);
  }
}

TEST(Traffic, ValidatorRejectsBadInputs) {
  EXPECT_FALSE(is_valid_permutation_traffic({0, 1}));      // fixed points
  EXPECT_FALSE(is_valid_permutation_traffic({1, 1, 0}));   // duplicate
  EXPECT_FALSE(is_valid_permutation_traffic({3, 0, 1}));   // out of range
  EXPECT_TRUE(is_valid_permutation_traffic({1, 2, 0}));
}

TEST(Traffic, RequiresAtLeastTwoNodes) {
  rng::Xoshiro256 g(1);
  EXPECT_THROW(permutation_traffic(1, g), manetcap::CheckError);
}

}  // namespace
}  // namespace manetcap::net
