#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/params.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::net {
namespace {

ScalingParams strong_params(std::size_t n = 1024) {
  ScalingParams p;
  p.n = n;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;  // cluster-free
  p.phi = 0.0;
  return p;
}

ScalingParams clustered_params(std::size_t n = 2048) {
  ScalingParams p;
  p.n = n;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.3;
  p.R = 0.4;
  p.phi = 0.0;
  return p;
}

// --------------------------------------------------------------- params --

TEST(ScalingParams, DerivedQuantities) {
  ScalingParams p = strong_params(10000);
  EXPECT_NEAR(p.f(), std::pow(10000.0, 0.3), 1e-9);
  EXPECT_EQ(p.k(), static_cast<std::size_t>(std::round(std::pow(10000, 0.7))));
  EXPECT_EQ(p.m(), 10000u);  // cluster-free
  EXPECT_DOUBLE_EQ(p.r(), 0.0);
  EXPECT_NEAR(p.c() * static_cast<double>(p.k()), 1.0, 1e-9);  // phi = 0
}

TEST(ScalingParams, GammaMatchesDefinition) {
  ScalingParams p = clustered_params(4096);
  const double m = static_cast<double>(p.m());
  EXPECT_NEAR(p.gamma(), std::log(m) / m, 1e-12);
  const double per = 4096.0 / m;
  EXPECT_NEAR(p.gamma_tilde(), p.r() * p.r() * std::log(per) / per, 1e-12);
}

TEST(ScalingParams, MobilityRadiusIsSupportOverF) {
  ScalingParams p = strong_params(4096);
  p.shape_support = 2.0;
  EXPECT_NEAR(p.mobility_radius(), 2.0 / p.f(), 1e-12);
}

TEST(ScalingParams, NoBsHasNoStations) {
  ScalingParams p = strong_params();
  p.with_bs = false;
  EXPECT_EQ(p.k(), 0u);
  EXPECT_THROW(p.c(), manetcap::CheckError);
}

TEST(ScalingParams, ValidConfigurationHasNoViolations) {
  EXPECT_TRUE(strong_params().assumption_violations().empty());
  EXPECT_TRUE(clustered_params().assumption_violations().empty());
}

TEST(ScalingParams, ViolationsDetected) {
  ScalingParams p = clustered_params();
  p.alpha = 0.7;  // outside [0, 1/2]
  EXPECT_FALSE(p.assumption_violations().empty());

  ScalingParams q = clustered_params();
  q.R = 0.1;  // M − 2R = 0.3 − 0.2 > 0 ⇒ overlap
  EXPECT_FALSE(q.assumption_violations().empty());

  ScalingParams r = clustered_params();
  r.K = 0.2;  // K <= M violates k = omega(m)
  EXPECT_FALSE(r.assumption_violations().empty());
}

TEST(ScalingParams, DescribeMentionsKeyNumbers) {
  const std::string d = clustered_params().describe();
  EXPECT_NE(d.find("n=2048"), std::string::npos);
  EXPECT_NE(d.find("alpha=0.45"), std::string::npos);
}

TEST(ScalingParams, AntennaCountFollowsL) {
  ScalingParams p = strong_params(10000);
  EXPECT_EQ(p.l(), 1u);  // L = 0: the paper's single-antenna BS
  p.L = 0.5;
  EXPECT_EQ(p.l(), 100u);
  p.with_bs = false;
  EXPECT_EQ(p.l(), 1u);  // no BSs: l is a harmless 1, not 0
}

TEST(ScalingParams, DescribeShowsAntennasOnlyWhenGeneralized) {
  ScalingParams p = clustered_params();
  EXPECT_EQ(p.describe().find("L="), std::string::npos);
  p.L = 0.25;
  const std::string d = p.describe();
  EXPECT_NE(d.find("L=0.25"), std::string::npos);
  EXPECT_NE(d.find("l="), std::string::npos);
}

TEST(ScalingParams, AntennaViolationsDetected) {
  ScalingParams p = strong_params();
  p.L = -0.1;  // antennas cannot shrink with n
  EXPECT_FALSE(p.assumption_violations().empty());

  ScalingParams q = strong_params();
  q.L = 0.4;  // K + L = 1.1 > 1: more antennas than MSs
  EXPECT_FALSE(q.assumption_violations().empty());

  ScalingParams r = strong_params();
  r.L = 0.3;  // K + L = 1.0 is fine
  EXPECT_TRUE(r.assumption_violations().empty());
}

// -------------------------------------------------------------- network --

TEST(Network, BuildsRequestedPopulation) {
  auto net = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 1);
  EXPECT_EQ(net.num_ms(), 1024u);
  EXPECT_EQ(net.num_bs(), strong_params().k());
  EXPECT_EQ(net.ms_home().size(), 1024u);
}

TEST(Network, DeterministicGivenSeed) {
  auto a = Network::build(clustered_params(), mobility::ShapeKind::kTriangular,
                          BsPlacement::kClusteredMatched, 99);
  auto b = Network::build(clustered_params(), mobility::ShapeKind::kTriangular,
                          BsPlacement::kClusteredMatched, 99);
  for (std::size_t i = 0; i < a.num_ms(); ++i) {
    EXPECT_DOUBLE_EQ(a.ms_home()[i].x, b.ms_home()[i].x);
    EXPECT_DOUBLE_EQ(a.ms_home()[i].y, b.ms_home()[i].y);
  }
  for (std::size_t j = 0; j < a.num_bs(); ++j)
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].x, b.bs_pos()[j].x);
}

TEST(Network, SeedsChangeLayout) {
  auto a = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kUniform, 1);
  auto b = Network::build(strong_params(), mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kUniform, 2);
  EXPECT_GT(geom::torus_dist(a.ms_home()[0], b.ms_home()[0]), 0.0);
}

TEST(Network, ClusteredMatchedBsNearClusters) {
  auto net = Network::build(clustered_params(),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 7);
  const auto& layout = net.ms_layout();
  const double tol = layout.cluster_radius + net.mobility_radius() + 1e-9;
  for (std::size_t j = 0; j < net.num_bs(); ++j) {
    const auto c = net.bs_cluster()[j];
    EXPECT_LE(geom::torus_dist(net.bs_pos()[j], layout.cluster_centers[c]),
              tol);
  }
}

TEST(Network, RegularGridIsDeterministicLattice) {
  auto p = strong_params();
  auto a = Network::build(p, mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kRegularGrid, 1);
  auto b = Network::build(p, mobility::ShapeKind::kUniformDisk,
                          BsPlacement::kRegularGrid, 2);
  // Lattice ignores the seed.
  for (std::size_t j = 0; j < a.num_bs(); ++j) {
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].x, b.bs_pos()[j].x);
    EXPECT_DOUBLE_EQ(a.bs_pos()[j].y, b.bs_pos()[j].y);
  }
}

TEST(Network, EveryClusterGetsBs) {
  // k = ω(m) should give every cluster at least one BS w.h.p.
  auto net = Network::build(clustered_params(4096),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 3);
  std::set<std::uint32_t> clusters_with_bs(net.bs_cluster().begin(),
                                           net.bs_cluster().end());
  EXPECT_EQ(clusters_with_bs.size(), net.ms_layout().num_clusters());
}

// -------------------------------------------------------------- traffic --

TEST(Network, WithBsSubsetKeepsPositionClusterAlignment) {
  // Every surviving BS must keep its (position, cluster) pairing — the
  // two arrays are compacted in one pass and a mismatch would silently
  // re-home the fluid scheme-B evaluation after an outage.
  auto net = Network::build(clustered_params(),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 17);
  ASSERT_GT(net.num_bs(), 2u);
  std::vector<bool> keep(net.num_bs(), false);
  for (std::size_t j = 0; j < keep.size(); j += 2) keep[j] = true;
  const auto sub = net.with_bs_subset(keep);
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < keep.size(); ++j) {
    if (!keep[j]) continue;
    EXPECT_DOUBLE_EQ(sub.bs_pos()[cursor].x, net.bs_pos()[j].x);
    EXPECT_DOUBLE_EQ(sub.bs_pos()[cursor].y, net.bs_pos()[j].y);
    EXPECT_EQ(sub.bs_cluster()[cursor], net.bs_cluster()[j]);
    ++cursor;
  }
  EXPECT_EQ(sub.num_bs(), cursor);
  EXPECT_EQ(sub.bs_cluster().size(), cursor);
  // The MS side and the scaling parameters are untouched: surviving
  // wires keep their per-edge capacity c(n).
  EXPECT_EQ(sub.num_ms(), net.num_ms());
  EXPECT_DOUBLE_EQ(sub.params().phi, net.params().phi);
}

TEST(Network, WithBsSubsetEdgeCases) {
  auto net = Network::build(strong_params(256),
                            mobility::ShapeKind::kUniformDisk,
                            BsPlacement::kClusteredMatched, 19);
  // keep-all is the identity on the BS arrays.
  const auto all = net.with_bs_subset(
      std::vector<bool>(net.num_bs(), true));
  ASSERT_EQ(all.num_bs(), net.num_bs());
  for (std::size_t j = 0; j < net.num_bs(); ++j) {
    EXPECT_DOUBLE_EQ(all.bs_pos()[j].x, net.bs_pos()[j].x);
    EXPECT_EQ(all.bs_cluster()[j], net.bs_cluster()[j]);
  }
  // keep-none leaves a BS-free network (the no-infrastructure shape).
  const auto none = net.with_bs_subset(
      std::vector<bool>(net.num_bs(), false));
  EXPECT_EQ(none.num_bs(), 0u);
  EXPECT_TRUE(none.bs_cluster().empty());
  EXPECT_EQ(none.num_ms(), net.num_ms());
  // A mask of the wrong size is a named error, not UB.
  EXPECT_THROW(net.with_bs_subset(std::vector<bool>(net.num_bs() + 1, true)),
               CheckError);
}

TEST(Traffic, ProducesValidPermutation) {
  rng::Xoshiro256 g(5);
  for (std::size_t n : {2u, 3u, 10u, 1001u}) {
    auto dest = permutation_traffic(n, g);
    EXPECT_TRUE(is_valid_permutation_traffic(dest)) << "n=" << n;
  }
}

TEST(Traffic, NoFixedPointsOverManySeeds) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    rng::Xoshiro256 g(seed);
    auto dest = permutation_traffic(7, g);
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NE(dest[i], i);
  }
}

TEST(Traffic, ValidatorRejectsBadInputs) {
  EXPECT_FALSE(is_valid_permutation_traffic({0, 1}));      // fixed points
  EXPECT_FALSE(is_valid_permutation_traffic({1, 1, 0}));   // duplicate
  EXPECT_FALSE(is_valid_permutation_traffic({3, 0, 1}));   // out of range
  EXPECT_TRUE(is_valid_permutation_traffic({1, 2, 0}));
}

TEST(Traffic, RequiresAtLeastTwoNodes) {
  rng::Xoshiro256 g(1);
  EXPECT_THROW(permutation_traffic(1, g), manetcap::CheckError);
}

TEST(Traffic, DestValidatorNamesEachError) {
  auto expect_error = [](const std::vector<std::uint32_t>& dest,
                         std::size_t n, const char* needle) {
    try {
      validate_traffic_dest(dest, n, "who");
      FAIL() << "expected CheckError for " << needle;
    } catch (const manetcap::CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << "got: " << what;
      EXPECT_NE(what.find("who"), std::string::npos);
    }
  };
  expect_error({1, 0, 2}, 4, "one entry per MS");
  expect_error({1, 5, 0}, 3, "out of range");
  expect_error({1, 1, 0}, 3, "self-loop");
  // Many-to-one maps are legal (hotspot), unlike permutation validation.
  validate_traffic_dest({1, 0, 0, 0}, 4);
}

TEST(TrafficSpec, ParseDescribeRoundTrip) {
  const TrafficSpec d;
  EXPECT_TRUE(d.is_default());
  EXPECT_TRUE(TrafficSpec::parse("").is_default());
  EXPECT_TRUE(TrafficSpec::parse("perm").is_default());
  EXPECT_EQ(TrafficSpec::parse("perm").describe(), "perm");

  const auto s = TrafficSpec::parse(
      " hotspot:0.25,0.9 ; pareto:2,500 ; onoff:32,96 ; start:400 ");
  EXPECT_FALSE(s.is_default());
  EXPECT_EQ(s.pattern, TrafficPattern::kHotspot);
  EXPECT_DOUBLE_EQ(s.hotspot_frac, 0.25);
  EXPECT_DOUBLE_EQ(s.hotspot_mass, 0.9);
  EXPECT_DOUBLE_EQ(s.pareto_alpha, 2.0);
  EXPECT_DOUBLE_EQ(s.pareto_mean, 500.0);
  EXPECT_DOUBLE_EQ(s.on_mean, 32.0);
  EXPECT_DOUBLE_EQ(s.off_mean, 96.0);
  EXPECT_EQ(s.max_start, 400u);
  // describe() re-parses to the same spec (the round-trip contract the
  // FaultPlan grammar also keeps).
  const auto back = TrafficSpec::parse(s.describe());
  EXPECT_EQ(back.pattern, s.pattern);
  EXPECT_DOUBLE_EQ(back.hotspot_frac, s.hotspot_frac);
  EXPECT_DOUBLE_EQ(back.hotspot_mass, s.hotspot_mass);
  EXPECT_DOUBLE_EQ(back.pareto_mean, s.pareto_mean);
  EXPECT_DOUBLE_EQ(back.on_mean, s.on_mean);
  EXPECT_EQ(back.max_start, s.max_start);
}

TEST(TrafficSpec, ParseNamesEachError) {
  auto expect_error = [](const char* spec, const char* needle) {
    try {
      TrafficSpec::parse(spec);
      FAIL() << "expected CheckError for '" << spec << "'";
    } catch (const manetcap::CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("TrafficSpec"), std::string::npos)
          << "got: " << what;
      EXPECT_NE(what.find(needle), std::string::npos) << "got: " << what;
    }
  };
  expect_error("blorp:1,2", "unknown clause");
  expect_error("perm:3", "takes no arguments");
  expect_error("hotspot:0.5", "two comma-separated values");
  expect_error("hotspot:0.5,0.8,1", "two comma-separated values");
  expect_error("onoff:12x,30", "bad number");
  expect_error("start:", "missing number");
  expect_error("hotspot:1.5,0.5", "outside (0, 1]");
  expect_error("hotspot:0.5,1.5", "outside [0, 1]");
  expect_error("pareto:0.9,100", "must be > 1");
  expect_error("pareto:1.5,0.2", "must be >= 1 packet");
  expect_error("onoff:0,30", "both on/off means or neither");
}

TEST(TrafficModel, DefaultDrawMatchesPermutationStream) {
  // The default model must consume the RNG exactly like the historical
  // permutation_traffic call — the byte-identity contract both engines
  // lean on.
  rng::Xoshiro256 g1(77);
  const auto dest = permutation_traffic(300, g1);
  rng::Xoshiro256 g2(77);
  const auto demands = make_traffic_model(TrafficSpec{})->draw(300, g2);
  EXPECT_EQ(dest_of(demands), dest);
  EXPECT_EQ(g1.state(), g2.state());  // no extra draws for decorations
  for (const FlowDemand& f : demands) {
    EXPECT_TRUE(f.unlimited());
    EXPECT_TRUE(f.always_on());
    EXPECT_EQ(f.start, 0u);
  }
  validate_demands(demands, 300);
}

TEST(TrafficModel, HotspotConcentratesMass) {
  const std::size_t n = 2000;
  auto spec = TrafficSpec::parse("hotspot:0.1,0.8");
  rng::Xoshiro256 g(101);
  const auto demands = make_traffic_model(spec)->draw(n, g);
  validate_demands(demands, n);
  // Count destination hits per MS; the top-10% must absorb far more than
  // a uniform map's 10% share (expected ~82% incl. the uniform tail).
  std::vector<std::size_t> hits(n, 0);
  for (const FlowDemand& f : demands) ++hits[f.dst];
  std::vector<std::size_t> sorted = hits;
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t top = 0;
  for (std::size_t i = 0; i < n / 10; ++i) top += sorted[i];
  EXPECT_GT(top, (n * 6) / 10);  // ≫ the uniform 10%
  // mass 0 degenerates to uniform random destinations.
  spec.hotspot_mass = 0.0;
  rng::Xoshiro256 g2(103);
  const auto uniform = make_traffic_model(spec)->draw(n, g2);
  validate_demands(uniform, n);
  std::vector<std::size_t> uhits(n, 0);
  for (const FlowDemand& f : uniform) ++uhits[f.dst];
  std::sort(uhits.rbegin(), uhits.rend());
  std::size_t utop = 0;
  for (std::size_t i = 0; i < n / 10; ++i) utop += uhits[i];
  // Poisson fluctuations put the uniform map's top-10% near 30%, still
  // nowhere near the hotspot model's 60%+.
  EXPECT_LT(utop, (n * 7) / 20);
}

TEST(TrafficModel, ParetoSizesAreHeavyTailedWithTheRequestedMean) {
  const std::size_t n = 4000;
  const auto spec = TrafficSpec::parse("pareto:1.5,1000");
  rng::Xoshiro256 g(107);
  const auto demands = make_traffic_model(spec)->draw(n, g);
  validate_demands(demands, n);
  double sum = 0.0;
  std::uint64_t max_size = 0;
  for (const FlowDemand& f : demands) {
    EXPECT_GE(f.size, 1u);
    EXPECT_FALSE(f.unlimited());
    sum += static_cast<double>(f.size);
    max_size = std::max(max_size, f.size);
  }
  const double mean = sum / static_cast<double>(n);
  // α = 1.5 has infinite variance, so the sample mean is noisy — gate a
  // wide band around the requested mean and require a genuine tail.
  EXPECT_GT(mean, 400.0);
  EXPECT_LT(mean, 6000.0);
  EXPECT_GT(max_size, 10000u);  // x_m ≈ 333; a 4000-draw max ≫ the bulk
}

TEST(TrafficModel, StaggeredStartsStayInRange) {
  const auto spec = TrafficSpec::parse("start:500");
  rng::Xoshiro256 g(109);
  const auto demands = make_traffic_model(spec)->draw(1000, g);
  bool any_late = false;
  for (const FlowDemand& f : demands) {
    EXPECT_LE(f.start, 500u);
    any_late = any_late || f.start > 250;
  }
  EXPECT_TRUE(any_late);  // uniform over [0, 500] cannot all land early
}

TEST(OnOffGate, DutyCycleAndLazyAdvanceAgree) {
  const std::uint64_t kSlots = 200000;
  OnOffGate dense(40.0, 60.0, 1234);
  OnOffGate sparse(40.0, 60.0, 1234);
  std::uint64_t on = 0;
  for (std::uint64_t t = 0; t < kSlots; ++t)
    if (dense.on_at(t)) ++on;
  // Querying every 7th slot must agree with the dense walk at the common
  // slots — the lazy advance is order-independent state, not sampling.
  OnOffGate dense2(40.0, 60.0, 1234);
  for (std::uint64_t t = 0; t < kSlots; t += 7)
    EXPECT_EQ(sparse.on_at(t), dense2.on_at(t)) << "slot " << t;
  // Long-run duty ≈ on/(on+off) = 0.4.
  const double duty = static_cast<double>(on) / kSlots;
  EXPECT_GT(duty, 0.3);
  EXPECT_LT(duty, 0.5);
  // The always-on default gate never gates.
  OnOffGate open;
  EXPECT_FALSE(open.active());
  EXPECT_TRUE(open.on_at(0));
  EXPECT_TRUE(open.on_at(1u << 20));
  // Restore round-trip: a snapshot reproduces the original's future.
  OnOffGate a(25.0, 75.0, 55);
  for (std::uint64_t t = 0; t < 1000; ++t) a.on_at(t);
  OnOffGate b(25.0, 75.0, 55);
  b.restore(a.until(), a.is_on(), a.rng_state());
  OnOffGate c(25.0, 75.0, 55);
  for (std::uint64_t t = 0; t < 1000; ++t) c.on_at(t);
  for (std::uint64_t t = 1000; t < 5000; ++t)
    EXPECT_EQ(b.on_at(t), c.on_at(t)) << "slot " << t;
}

TEST(TrafficModel, DemandValidatorNamesEachError) {
  rng::Xoshiro256 g(113);
  const auto good = make_traffic_model(TrafficSpec{})->draw(8, g);
  auto expect_error = [](std::vector<FlowDemand> demands, std::size_t n,
                         const char* needle) {
    try {
      validate_demands(demands, n);
      FAIL() << "expected CheckError for " << needle;
    } catch (const manetcap::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  expect_error(good, 9, "one flow per MS");
  auto bad = good;
  bad[2].src = 3;
  expect_error(bad, 8, "must be sourced at MS");
  bad = good;
  bad[2].dst = 8;
  expect_error(bad, 8, "out of range");
  bad = good;
  bad[2].dst = 2;
  expect_error(bad, 8, "self-loop");
  bad = good;
  bad[2].size = 0;
  expect_error(bad, 8, "zero size");
  bad = good;
  bad[2].on_mean = 10.0;  // off_mean still 0
  expect_error(bad, 8, "both on/off means or neither");
}

}  // namespace
}  // namespace manetcap::net
