// Tests for the per-packet event trace (sim/trace.h): codec round-trip and
// corruption detection, replay-checker invariants under seeded mutations,
// golden-trace stability, thread-count invariance of the verdict, the
// scheme-C downlink starvation regression, and the wired-step compaction
// identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "geom/point.h"
#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/metrics.h"
#include "sim/slotsim.h"
#include "sim/trace.h"
#include "util/check.h"

namespace manetcap::sim {
namespace {

GoldenTraceSpec spec_by_name(const std::string& name) {
  for (const auto& s : golden_trace_specs())
    if (s.name == name) return s;
  ADD_FAILURE() << "no golden spec named " << name;
  return {};
}

bool has_violation(const TraceVerdict& v, const std::string& invariant) {
  return std::any_of(v.violations.begin(), v.violations.end(),
                     [&](const TraceViolation& x) {
                       return x.invariant == invariant;
                     });
}

// ---------------------------------------------------------------- codec --

TEST(TraceCodec, RoundTripPreservesEverything) {
  const Trace trace = capture_trace(spec_by_name("scheme_b"));
  ASSERT_FALSE(trace.events.empty());
  const Trace back = Trace::decode(trace.encode());
  EXPECT_EQ(back.context, trace.context);
  EXPECT_EQ(back.events, trace.events);
  EXPECT_EQ(back.footer, trace.footer);
}

TEST(TraceCodec, EncodeIsDeterministic) {
  const auto spec = spec_by_name("two_hop");
  EXPECT_EQ(capture_trace(spec).encode(), capture_trace(spec).encode());
}

TEST(TraceCodec, ChecksumCatchesCorruption) {
  auto bytes = capture_trace(spec_by_name("two_hop")).encode();
  // Flip one payload bit (past the magic, before the checksum).
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(Trace::decode(bytes), manetcap::CheckError);
}

TEST(TraceCodec, TruncationIsRejected) {
  auto bytes = capture_trace(spec_by_name("two_hop")).encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Trace::decode(bytes), manetcap::CheckError);
  EXPECT_THROW(Trace::decode({}), manetcap::CheckError);
}

TEST(TraceCodec, BadMagicIsRejected) {
  auto bytes = capture_trace(spec_by_name("two_hop")).encode();
  bytes[0] = 'X';
  EXPECT_THROW(Trace::decode(bytes), manetcap::CheckError);
}

// -------------------------------------------------------------- checker --

TEST(TraceVerify, AllGoldenSpecsPass) {
  for (const auto& spec : golden_trace_specs()) {
    const Trace trace = capture_trace(spec);
    ASSERT_FALSE(trace.events.empty()) << spec.name;
    const TraceVerdict verdict = verify_trace(trace);
    EXPECT_TRUE(verdict.ok) << spec.name << "\n" << verdict.summary();
    EXPECT_EQ(verdict.injected, trace.footer.injected) << spec.name;
    EXPECT_EQ(verdict.delivered, trace.footer.delivered) << spec.name;
  }
}

TEST(TraceVerify, VerdictIsThreadCountInvariant) {
  for (const auto& name : {"scheme_a", "scheme_b"}) {
    Trace trace = capture_trace(spec_by_name(name));
    // Corrupt a mid-stream relay/forward so the multi-thread merge path
    // has violations to order, not just a PASS string.
    for (auto& e : trace.events) {
      if (e.kind == TraceEventKind::kRelay ||
          e.kind == TraceEventKind::kWiredForward) {
        e.hop += 3;
        break;
      }
    }
    TraceVerifyOptions opt;
    opt.num_threads = 1;
    const std::string serial = verify_trace(trace, opt).summary();
    for (const std::size_t threads : {2UL, 8UL}) {
      opt.num_threads = threads;
      EXPECT_EQ(verify_trace(trace, opt).summary(), serial)
          << name << " with " << threads << " threads";
    }
  }
}

TEST(TraceVerify, SkippedHopFailsHopMonotone) {
  Trace trace = capture_trace(spec_by_name("scheme_a"));
  for (auto& e : trace.events) {
    if (e.kind == TraceEventKind::kRelay) {
      e.hop += 1;  // claims the packet jumped a squarelet on its H-V path
      break;
    }
  }
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "hop_monotone")) << verdict.summary();
}

TEST(TraceVerify, WrongServingBsFailsServingBs) {
  Trace trace = capture_trace(spec_by_name("scheme_b"));
  const TraceContext& c = trace.context;
  bool mutated = false;
  for (auto& e : trace.events) {
    if (e.kind != TraceEventKind::kWiredForward || e.from == e.to) continue;
    // Retarget the forward at a BS outside the destination's serving set.
    const std::uint32_t dst = c.dest[e.flow];
    for (std::uint32_t bs = c.n; bs < c.n + c.k; ++bs) {
      const auto& s = c.serving[dst];
      if (bs != e.from && std::find(s.begin(), s.end(), bs) == s.end()) {
        e.to = bs;
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "serving_bs")) << verdict.summary();
}

TEST(TraceVerify, ThirdHopFailsTwoHopLimit) {
  Trace trace = capture_trace(spec_by_name("two_hop"));
  // Forge a second relay of an already-relayed packet: find a relay and
  // append a copy hopping onward from its receiver.
  const TraceEvent* relay = nullptr;
  for (const auto& e : trace.events)
    if (e.kind == TraceEventKind::kRelay) relay = &e;
  ASSERT_NE(relay, nullptr);
  TraceEvent third = *relay;
  third.slot = trace.events.back().slot;
  third.from = relay->to;
  third.to = (relay->to + 1) % trace.context.n;
  third.hop = 2;
  trace.events.push_back(third);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "two_hop_limit")) << verdict.summary();
}

TEST(TraceVerify, ReorderedEventsFailSlotMonotone) {
  Trace trace = capture_trace(spec_by_name("scheme_a"));
  ASSERT_GE(trace.events.size(), 16u);
  std::swap(trace.events[4], trace.events[trace.events.size() - 4]);
  // Survives a codec round-trip (slot deltas are signed), then fails.
  const TraceVerdict verdict = verify_trace(Trace::decode(trace.encode()));
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "slot_monotone")) << verdict.summary();
}

TEST(TraceVerify, DropEventsAreForbidden) {
  Trace trace = capture_trace(spec_by_name("scheme_a"));
  TraceEvent drop;
  drop.kind = TraceEventKind::kDrop;
  drop.slot = trace.events.back().slot;
  drop.flow = trace.events.back().flow;
  trace.events.push_back(drop);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "drop_forbidden")) << verdict.summary();
}

TEST(TraceVerify, FooterMismatchIsDetected) {
  Trace trace = capture_trace(spec_by_name("two_hop"));
  trace.footer.delivered += 1;
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "footer_totals")) << verdict.summary();
}

// Hand-built trace: two wired forwards on an edge whose credit rate can
// only have funded one — the feasibility bound must fire. Synthetic (not a
// mutated capture) because duplicating a captured forward would first trip
// packet_not_at_node.
TEST(TraceVerify, InfeasibleWiredSpendFailsWiredCredit) {
  Trace trace;
  TraceContext& c = trace.context;
  c.scheme = SlotScheme::kSchemeB;
  c.n = 2;
  c.k = 2;
  c.slots = 100;
  c.warmup = 10;
  c.max_queue = 64;
  c.source_backlog = 4;
  c.wired_c = 0.05;  // bucket holds max(1, 4·0.05) = 1 credit
  c.dest = {1, 0};
  c.serving = {{3}, {3}};
  // Two uplinks of flow 0 at BS 2, then two wired forwards 2→3 at slot
  // 60: continuous accrual since slot 0 caps at one full bucket —
  // enough for one forward, not two in the same slot.
  trace.events = {
      {TraceEventKind::kInject, 5, 0, 0, 0, 2},
      {TraceEventKind::kInject, 6, 0, 0, 0, 2},
      {TraceEventKind::kWiredForward, 60, 0, 1, 2, 3},
      {TraceEventKind::kWiredForward, 60, 0, 1, 2, 3},
  };
  trace.footer.injected = 2;
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "wired_credit")) << verdict.summary();

  // The same second forward 39 slots later is feasible: the edge refills
  // 39·0.05 ≈ 2 credits, re-capped to a full bucket.
  trace.events[3].slot = 99;
  const TraceVerdict ok_verdict = verify_trace(trace);
  EXPECT_FALSE(has_violation(ok_verdict, "wired_credit"))
      << ok_verdict.summary();
}

TEST(TraceVerify, InvalidContextIsRejected) {
  Trace trace;
  trace.context.scheme = SlotScheme::kSchemeB;
  trace.context.n = 4;
  trace.context.k = 0;  // infrastructure scheme without BSs
  trace.context.slots = 10;
  trace.context.max_queue = 1;
  trace.context.source_backlog = 1;
  trace.context.dest = {1, 0, 3, 2};
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "context_invalid")) << verdict.summary();
}

// -------------------------------------------------------------- goldens --

// The committed golden files must match a fresh capture bit-for-bit on
// this build: any behavioral drift in the simulator (packet decisions,
// event order, context) shows up as a byte difference here, with the
// invariant-level diagnosis available from verify_trace.
TEST(TraceGolden, CommittedFilesMatchFreshCapture) {
  for (const auto& spec : golden_trace_specs()) {
    const std::string path =
        std::string(MANETCAP_GOLDEN_DIR) + "/" + spec.name + ".trace";
    const Trace committed = Trace::load(path);
    EXPECT_EQ(committed.encode(), capture_trace(spec).encode())
        << spec.name << ": golden trace drifted; if the simulator change "
        << "is intentional, regenerate with `trace_check --gen`";
  }
}

TEST(TraceGolden, CommittedFilesVerify) {
  for (const auto& spec : golden_trace_specs()) {
    const std::string path =
        std::string(MANETCAP_GOLDEN_DIR) + "/" + spec.name + ".trace";
    const TraceVerdict verdict = verify_trace(Trace::load(path));
    EXPECT_TRUE(verdict.ok) << spec.name << "\n" << verdict.summary();
  }
}

// --------------------------------------------------------------- faults --

// Replicates capture_trace with a fault plan attached (GoldenTraceSpec has
// no fault field on purpose: goldens stay fault-free and byte-stable).
Trace capture_with_faults(const GoldenTraceSpec& spec, const FaultPlan& plan,
                          SlotSimResult* result = nullptr) {
  const auto net =
      net::Network::build(spec.params, mobility::ShapeKind::kUniformDisk,
                          spec.placement, spec.net_seed);
  rng::Xoshiro256 g(spec.traffic_seed);
  const auto dest = net::permutation_traffic(spec.params.n, g);
  Trace trace;
  SlotSimOptions opt;
  opt.scheme = spec.scheme;
  opt.slots = spec.slots;
  opt.warmup = spec.warmup;
  opt.seed = spec.sim_seed;
  opt.trace = &trace;
  opt.faults = &plan;
  const SlotSimResult r = run_slot_sim(net, dest, opt);
  if (result != nullptr) *result = r;
  return trace;
}

FaultPlan scheme_b_plan() {
  FaultPlan plan;
  FaultEvent e;
  e.slot = 200;
  e.kind = FaultKind::kBsDown;
  e.bs = 0;
  plan.events.push_back(e);
  e = {};
  e.slot = 300;
  e.kind = FaultKind::kWireScale;
  e.bs = 0;
  e.bs2 = 1;
  e.scale = 0.5;
  plan.events.push_back(e);
  e = {};
  e.slot = 400;
  e.kind = FaultKind::kBsUp;
  e.bs = 0;
  plan.events.push_back(e);
  return plan;
}

TEST(TraceFault, FaultedTraceUsesV2MagicAndRoundTrips) {
  const Trace trace = capture_with_faults(spec_by_name("scheme_b"),
                                          scheme_b_plan());
  ASSERT_FALSE(trace.context.faults.empty());
  const auto bytes = trace.encode();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "MCTRACE2");
  const Trace back = Trace::decode(bytes);
  EXPECT_EQ(back.context, trace.context);  // TraceFault == covers the tables
  EXPECT_EQ(back.events, trace.events);
  EXPECT_EQ(back.footer, trace.footer);

  // Fault-free captures must keep the legacy magic (byte-stable goldens).
  const auto legacy = capture_trace(spec_by_name("scheme_b")).encode();
  ASSERT_GE(legacy.size(), 8u);
  EXPECT_EQ(std::string(legacy.begin(), legacy.begin() + 8), "MCTRACE1");
}

TEST(TraceFault, VerifierAcceptsFaultedSchemeB) {
  SlotSimResult result;
  const Trace trace = capture_with_faults(spec_by_name("scheme_b"),
                                          scheme_b_plan(), &result);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_TRUE(verdict.ok) << verdict.summary();
  EXPECT_EQ(verdict.dropped, trace.footer.dropped);
  EXPECT_EQ(verdict.dropped, result.dropped_bs_outage);
  // The plan had teeth: a down marker and at least one re-homed MS.
  ASSERT_FALSE(trace.context.faults.empty());
  EXPECT_FALSE(trace.context.faults.front().rehomed_ms.empty());
}

TEST(TraceFault, VerifierAcceptsRegionalSchemeC) {
  FaultPlan plan;
  FaultEvent e;
  e.slot = 250;
  e.kind = FaultKind::kRegional;
  e.center = {0.5, 0.5};
  e.radius = 0.3;
  plan.events.push_back(e);
  SlotSimResult result;
  const Trace trace =
      capture_with_faults(spec_by_name("scheme_c"), plan, &result);
  // The regional event resolves to concrete BS ids in the timeline.
  ASSERT_FALSE(trace.context.faults.empty());
  EXPECT_GT(trace.context.faults.front().bs.size(), 0u);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_TRUE(verdict.ok) << verdict.summary();
  EXPECT_EQ(verdict.dropped, result.dropped_bs_outage);
}

TEST(TraceFault, EventTouchingDeadBsIsRejected) {
  FaultPlan plan;
  FaultEvent down;
  down.slot = 200;
  down.kind = FaultKind::kBsDown;
  down.bs = 0;
  plan.events.push_back(down);  // BS 0 stays dead to the end
  Trace trace = capture_with_faults(spec_by_name("scheme_b"), plan);
  const std::uint32_t dead = trace.context.n;  // BS 0's absolute node id
  bool mutated = false;
  for (auto& e : trace.events) {
    if (e.kind == TraceEventKind::kDeliver && e.slot > 200 &&
        e.from != dead) {
      e.from = dead;  // claim a dead BS handed the packet over
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "dead_bs")) << verdict.summary();
}

TEST(TraceFault, CorruptedMarkerIsRejected) {
  Trace trace = capture_with_faults(spec_by_name("scheme_b"),
                                    scheme_b_plan());
  bool mutated = false;
  for (auto& e : trace.events) {
    if (e.kind == TraceEventKind::kBsDown) {
      // Marker claims a different BS died than the timeline recorded.
      e.from += 1;
      e.to += 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "fault_timeline")) << verdict.summary();
}

TEST(TraceFault, ForgedDropIsRejected) {
  SlotSimResult result;
  Trace trace = capture_with_faults(spec_by_name("scheme_b"),
                                    scheme_b_plan(), &result);
  // A drop at a slot where the timeline downs no BS is illegal even in a
  // faulted trace.
  TraceEvent drop;
  drop.kind = TraceEventKind::kDrop;
  drop.slot = trace.events.back().slot;
  drop.flow = 0;
  drop.from = trace.context.n + 1;  // BS 1 — alive throughout
  drop.to = drop.from;
  trace.events.push_back(drop);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(has_violation(verdict, "drop_forbidden")) << verdict.summary();
}

// ------------------------------------------------- scheme C starvation --

// Regression: the scheme-C downlink used to scan only the first
// kScanDepth=16 queue positions. A cell whose BS queue holds ≥16 hop-0
// packets stalled on wired credit starves every deliverable hop-1 packet
// behind them — forever. This instance pins that shape: per cell, the 16
// first-injected packets have cross-cell destinations and (with c(n) ≈
// 3e-8) never earn wired credit, while later injections have same-cell
// destinations that promote to hop 1 in place at depth ≥ 16.
TEST(SchemeCRegression, DownlinkDeliversBehindDeepStalledBacklog) {
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.75;  // trivial regime
  p.with_bs = true;
  p.K = 0.125;  // k = 256^0.125 = 2 cells → ~128 members each
  p.M = 0.2;
  p.R = 0.3;
  p.phi = -3.0;  // c(n) = n^phi / k ≈ 3e-8: cross-cell wires never fund
  const auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                       net::BsPlacement::kClusterGrid, 99);
  const std::size_t n = net.num_ms();
  const std::size_t k = net.num_bs();
  ASSERT_EQ(k, 2u);

  // Replicate the scheme-C association (nearest BS by torus distance).
  std::vector<std::vector<std::uint32_t>> members(k);
  std::vector<std::uint32_t> cell(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t best = 0;
    double best_d = geom::torus_dist(net.ms_home()[i], net.bs_pos()[0]);
    for (std::uint32_t l = 1; l < k; ++l) {
      const double d = geom::torus_dist(net.ms_home()[i], net.bs_pos()[l]);
      if (d < best_d) {
        best_d = d;
        best = l;
      }
    }
    cell[i] = best;
    members[best].push_back(i);
  }
  for (const auto& m : members) ASSERT_GE(m.size(), 20u);

  // First 16 members of each cell (the first 16 uplinked packets, since
  // the uplink round-robins members in id order and source_backlog=1
  // blocks re-injection) target the other cell; the rest stay local.
  std::vector<std::uint32_t> dest(n);
  for (std::uint32_t l = 0; l < k; ++l) {
    const auto& mine = members[l];
    const auto& other = members[1 - l];
    for (std::size_t j = 0; j < mine.size(); ++j) {
      if (j < 16) {
        dest[mine[j]] = other[j % other.size()];
      } else {
        const std::size_t peer = j + 1 < mine.size() ? j + 1 : 16;
        dest[mine[j]] = mine[peer];
      }
    }
  }

  Metrics metrics;
  SlotSimOptions opt;
  opt.scheme = SlotScheme::kSchemeC;
  opt.slots = 2000;
  opt.warmup = 200;
  opt.source_backlog = 1;
  opt.seed = 7;
  opt.metrics = &metrics;
  const SlotSimResult res = run_slot_sim(net, dest, opt);

  // Before the fix: 16 credit-stalled hop-0 packets occupy the scanned
  // prefix of both cells and delivered_lifetime is exactly 0.
  EXPECT_GT(res.delivered_lifetime, 100u);
  EXPECT_GT(metrics.count(Counter::kDownlinkStarved), 0u);
}

// ------------------------------------------ wired-step queue compaction --

// wired_step drains BS queues with a single read/write-cursor compaction
// pass (one O(|q|) sweep) instead of erase-in-place (O(|q|²) memmoves).
// The golden byte-compare above pins scheme B/C end-to-end; this pins the
// exact event sequence — order of forwards, promotions and deliveries —
// under a deep mixed queue with contended credit.
TEST(WiredStep, CompactionPreservesEventOrderUnderContention) {
  auto spec = spec_by_name("scheme_b");
  // Scarce credit (c ≈ 0.007/slot: ~150-slot refills) so stalled hop-0
  // packets pile up ahead of forwardable ones and stalls interleave with
  // funded forwards inside single queue sweeps.
  spec.params.phi = -0.15;
  spec.slots = 1200;
  const Trace trace = capture_trace(spec);
  std::uint64_t stalled_then_forwarded = 0;
  for (const auto& e : trace.events)
    if (e.kind == TraceEventKind::kWiredForward && e.from != e.to)
      ++stalled_then_forwarded;
  ASSERT_GT(stalled_then_forwarded, 0u);
  const TraceVerdict verdict = verify_trace(trace);
  EXPECT_TRUE(verdict.ok) << verdict.summary();
  // Deterministic: the same contended run yields the same byte stream.
  EXPECT_EQ(capture_trace(spec).encode(), trace.encode());
}

}  // namespace
}  // namespace manetcap::sim
