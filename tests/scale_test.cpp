// Tests for the single-run scale features (docs/SCALE.md): shard
// invariance of the striped slot pipeline (traces and results must be
// byte-identical for every --shards value), checkpoint/restore round-trip
// bit-identity — including mid-fault-plan resume — and the MCCKPT1
// validation surface (config echo, fingerprints, corruption).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/slotsim.h"
#include "sim/trace.h"
#include "util/check.h"

namespace manetcap::sim {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const SlotSimResult& a, const SlotSimResult& b,
                      const std::string& what) {
  EXPECT_TRUE(bits_equal(a.mean_flow_rate, b.mean_flow_rate)) << what;
  EXPECT_TRUE(bits_equal(a.min_flow_rate, b.min_flow_rate)) << what;
  EXPECT_TRUE(bits_equal(a.p10_flow_rate, b.p10_flow_rate)) << what;
  EXPECT_TRUE(bits_equal(a.pairs_per_slot, b.pairs_per_slot)) << what;
  EXPECT_TRUE(bits_equal(a.mean_delay, b.mean_delay)) << what;
  EXPECT_TRUE(bits_equal(a.p95_delay, b.p95_delay)) << what;
  EXPECT_EQ(a.total_delivered, b.total_delivered) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.delivered_lifetime, b.delivered_lifetime) << what;
  EXPECT_EQ(a.queued_end, b.queued_end) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
}

struct SimRun {
  SlotSimResult res;
  std::vector<std::uint8_t> trace_bytes;
};

/// Builds the spec's network + traffic and runs with the given scale
/// knobs, returning the result and the encoded trace.
SimRun run_spec(const GoldenTraceSpec& spec, std::size_t shards,
             std::size_t checkpoint_every = 0,
             const std::string& checkpoint_path = "",
             const std::string& resume_path = "",
             const FaultPlan* faults = nullptr) {
  const auto net =
      net::Network::build(spec.params, mobility::ShapeKind::kUniformDisk,
                          spec.placement, spec.net_seed);
  rng::Xoshiro256 g(spec.traffic_seed);
  const auto dest = net::permutation_traffic(spec.params.n, g);
  Trace trace;
  SlotSimOptions opt;
  opt.scheme = spec.scheme;
  opt.slots = spec.slots;
  opt.warmup = spec.warmup;
  opt.seed = spec.sim_seed;
  opt.trace = &trace;
  opt.shards = shards;
  opt.checkpoint_every = checkpoint_every;
  opt.checkpoint_path = checkpoint_path;
  opt.resume_path = resume_path;
  opt.faults = faults;
  SimRun r;
  r.res = run_slot_sim(net, dest, opt);
  r.trace_bytes = trace.encode();
  return r;
}

std::string tmp_ckpt(const std::string& stem) {
  return testing::TempDir() + "manetcap_" + stem + ".ckpt";
}

// ----------------------------------------------------- shard invariance --

// The tentpole determinism contract: for every golden scheme, runs with
// shards ∈ {1, 2, 8} produce byte-identical traces and bit-identical
// results. This pins the stripe decomposition (hash maintenance, S* scan,
// overlapped mobility step) as unobservable.
TEST(ShardInvariance, AllGoldenSchemesByteIdentical) {
  for (const auto& spec : golden_trace_specs()) {
    const SimRun serial = run_spec(spec, 1);
    ASSERT_FALSE(serial.trace_bytes.empty()) << spec.name;
    for (const std::size_t shards : {2UL, 8UL}) {
      const SimRun sharded = run_spec(spec, shards);
      EXPECT_EQ(serial.trace_bytes, sharded.trace_bytes)
          << spec.name << " with " << shards << " shards";
      expect_identical(serial.res, sharded.res,
                       spec.name + " with " + std::to_string(shards) +
                           " shards");
    }
  }
}

TEST(ShardInvariance, StateBytesReported) {
  const SimRun r = run_spec(golden_trace_specs()[2], 1);  // scheme_b
  EXPECT_GT(r.res.state_bytes, 0u);
}

// ------------------------------------------------------------ checkpoint --

// A run checkpointed mid-horizon and resumed must complete byte-identical
// to the uninterrupted run: same trace, same result bits.
TEST(Checkpoint, ResumeIsByteIdentical) {
  for (std::size_t i : {0UL, 2UL}) {  // scheme_a (ad hoc), scheme_b (infra)
    const auto spec = golden_trace_specs()[i];
    const std::string path = tmp_ckpt("roundtrip_" + spec.name);
    // The checkpointing run IS the uninterrupted run — the save is a pure
    // side effect, so its trace doubles as the reference.
    const SimRun full = run_spec(spec, 1, spec.slots / 2, path);
    GoldenTraceSpec resumed_spec = spec;
    const SimRun resumed = run_spec(resumed_spec, 1, 0, "", path);
    EXPECT_EQ(full.trace_bytes, resumed.trace_bytes) << spec.name;
    expect_identical(full.res, resumed.res, spec.name + " resumed");
    std::remove(path.c_str());
  }
}

// Resuming with a different shard count must also be unobservable — the
// checkpoint stores logical state only.
TEST(Checkpoint, ResumeShardedFromSerialCheckpoint) {
  const auto spec = golden_trace_specs()[2];  // scheme_b
  const std::string path = tmp_ckpt("reshard");
  const SimRun full = run_spec(spec, 1, spec.slots / 2, path);
  const SimRun resumed = run_spec(spec, 8, 0, "", path);
  EXPECT_EQ(full.trace_bytes, resumed.trace_bytes);
  expect_identical(full.res, resumed.res, "sharded resume");
  std::remove(path.c_str());
}

// Checkpoint taken mid-fault-plan: the fault cursor, BS liveness, rebuilt
// serving sets and the already-emitted fault timeline must all restore so
// the remaining events replay identically.
TEST(Checkpoint, ResumeMidFaultPlanIsByteIdentical) {
  const auto spec = golden_trace_specs()[2];  // scheme_b, k >= 2
  const FaultPlan plan = FaultPlan::parse("down@100:0;up@500:0");
  const std::string path = tmp_ckpt("faults");
  // Checkpoint at slot 400: after the outage, before the revival.
  const SimRun full = run_spec(spec, 1, 400, path, "", &plan);
  EXPECT_GT(full.res.dropped_bs_outage, 0u);
  const SimRun resumed = run_spec(spec, 1, 0, "", path, &plan);
  EXPECT_EQ(full.trace_bytes, resumed.trace_bytes);
  expect_identical(full.res, resumed.res, "mid-fault resume");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ validation --

TEST(Checkpoint, ConfigMismatchIsRejected) {
  const auto spec = golden_trace_specs()[2];
  const std::string path = tmp_ckpt("mismatch");
  run_spec(spec, 1, spec.slots / 2, path);
  GoldenTraceSpec other = spec;
  other.sim_seed ^= 1;  // different RNG stream
  EXPECT_THROW(run_spec(other, 1, 0, "", path), manetcap::CheckError);
  GoldenTraceSpec other_traffic = spec;
  other_traffic.traffic_seed ^= 1;  // different dest permutation
  EXPECT_THROW(run_spec(other_traffic, 1, 0, "", path),
               manetcap::CheckError);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptionIsRejected) {
  const auto spec = golden_trace_specs()[0];
  const std::string path = tmp_ckpt("corrupt");
  run_spec(spec, 1, spec.slots / 2, path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    char b = 0;
    f.read(&b, 1);
    f.seekp(64);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  EXPECT_THROW(run_spec(spec, 1, 0, "", path), manetcap::CheckError);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsRejected) {
  const auto spec = golden_trace_specs()[0];
  EXPECT_THROW(run_spec(spec, 1, 0, "", tmp_ckpt("nonexistent")),
               manetcap::CheckError);
}

TEST(Checkpoint, EveryWithoutPathIsRejected) {
  const auto spec = golden_trace_specs()[0];
  EXPECT_THROW(run_spec(spec, 1, 100, ""), manetcap::CheckError);
}

}  // namespace
}  // namespace manetcap::sim
