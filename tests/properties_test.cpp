// Cross-module property tests: invariants that tie the analytic layer, the
// fluid evaluators and the packet simulator together.
#include <gtest/gtest.h>

#include <cmath>

#include "capacity/cutset.h"
#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "capacity/recommend.h"
#include "linkcap/link_capacity.h"
#include "linkcap/measure.h"
#include "mobility/shape.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/fluid.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "util/check.h"

namespace manetcap {
namespace {

// ------------------------------------------------- μ-law self-consistency --

struct MuCase {
  mobility::ShapeKind kind;
  double f;
};

class MuLawConsistency : public ::testing::TestWithParam<MuCase> {};

TEST_P(MuLawConsistency, MsMsRatioEqualsEtaRatio) {
  const auto [kind, f] = GetParam();
  mobility::Shape shape(kind);
  linkcap::LinkCapacityModel mu(shape, f, 4096);
  const double mu0 = mu.mu_ms_ms(0.0);
  ASSERT_GT(mu0, 0.0);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double d = frac * 2.0 * shape.support() / f;
    EXPECT_NEAR(mu.mu_ms_ms(d) / mu0,
                shape.eta(f * d) / shape.eta(0.0), 1e-9)
        << "d=" << d;
  }
}

TEST_P(MuLawConsistency, MsBsRatioEqualsDensityRatio) {
  const auto [kind, f] = GetParam();
  mobility::Shape shape(kind);
  linkcap::LinkCapacityModel mu(shape, f, 4096);
  const double mu0 = mu.mu_ms_bs(0.0);
  ASSERT_GT(mu0, 0.0);
  for (double frac : {0.2, 0.5, 0.8}) {
    const double d = frac * shape.support() / f;
    EXPECT_NEAR(mu.mu_ms_bs(d) / mu0,
                shape.density(f * d) / shape.density(0.0), 1e-9);
  }
}

TEST_P(MuLawConsistency, MonteCarloTracksAnalytic) {
  const auto [kind, f] = GetParam();
  mobility::Shape shape(kind);
  linkcap::LinkCapacityModel mu(shape, f, 4096);
  rng::Xoshiro256 g(17);
  const double d = 0.5 * shape.support() / f;
  auto est = linkcap::estimate_meeting_probability(shape, f, d, mu.range(),
                                                   150000, g);
  const double analytic = mu.meeting_probability_ms_ms(d);
  EXPECT_NEAR(est.value, analytic,
              std::max(5.0 * est.stderr_, 0.08 * analytic));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, MuLawConsistency,
    ::testing::Values(MuCase{mobility::ShapeKind::kUniformDisk, 4.0},
                      MuCase{mobility::ShapeKind::kUniformDisk, 16.0},
                      MuCase{mobility::ShapeKind::kTriangular, 4.0},
                      MuCase{mobility::ShapeKind::kTriangular, 16.0},
                      MuCase{mobility::ShapeKind::kQuadratic, 8.0}));

// ------------------------------------------------ fluid-evaluator sanity --

class FluidInvariants
    : public ::testing::TestWithParam<capacity::MobilityRegime> {};

TEST_P(FluidInvariants, SymmetricAtLeastStrict) {
  net::ScalingParams p;
  switch (GetParam()) {
    case capacity::MobilityRegime::kStrong:
      p.n = 4096;
      p.alpha = 0.3;
      p.with_bs = true;
      p.K = 0.7;
      p.M = 1.0;
      break;
    case capacity::MobilityRegime::kWeak:
      p.n = 4096;
      p.alpha = 0.45;
      p.with_bs = true;
      p.K = 0.6;
      p.M = 0.3;
      p.R = 0.4;
      break;
    case capacity::MobilityRegime::kTrivial:
      p.n = 4096;
      p.alpha = 0.75;
      p.with_bs = true;
      p.K = 0.6;
      p.M = 0.2;
      p.R = 0.3;
      break;
  }
  ASSERT_EQ(capacity::classify(p), GetParam());
  sim::FluidOptions opt;
  opt.seed = 19;
  if (GetParam() == capacity::MobilityRegime::kTrivial)
    opt.placement = net::BsPlacement::kClusterGrid;
  auto out = sim::evaluate_capacity(p, opt);
  // The worst flow can never beat the typical flow.
  EXPECT_LE(out.lambda, out.lambda_symmetric * (1.0 + 1e-9));
  EXPECT_GT(out.lambda_symmetric, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Regimes, FluidInvariants,
                         ::testing::Values(capacity::MobilityRegime::kStrong,
                                           capacity::MobilityRegime::kWeak,
                                           capacity::MobilityRegime::kTrivial));

TEST(FluidInvariants, CutBoundDominatesEvaluator) {
  // The Lemma 6/7 bound must sit above whatever the dispatcher achieves,
  // across all three regimes' parameter points.
  struct Case {
    net::ScalingParams p;
    net::BsPlacement placement;
  };
  std::vector<Case> cases;
  {
    net::ScalingParams p;
    p.n = 4096;
    p.alpha = 0.3;
    p.with_bs = true;
    p.K = 0.7;
    p.M = 1.0;
    cases.push_back({p, net::BsPlacement::kClusteredMatched});
    p.with_bs = false;
    cases.push_back({p, net::BsPlacement::kUniform});
  }
  for (const auto& c : cases) {
    auto net = net::Network::build(c.p, mobility::ShapeKind::kUniformDisk,
                                   c.placement, 23);
    sim::FluidOptions opt;
    opt.seed = 23;
    opt.placement = c.placement;
    auto out = sim::evaluate_capacity(net, opt);
    rng::Xoshiro256 g(sim::traffic_seed(23));
    auto dest = net::permutation_traffic(c.p.n, g);
    auto cut = capacity::best_strip_cut(net, dest, 4);
    EXPECT_GE(cut.lambda_bound(), out.lambda)
        << c.p.describe();
  }
}

// -------------------------------------------------- phase-diagram algebra --

TEST(PhaseDiagramProperty, ExponentIsMaxOfComponents) {
  for (double phi : {-0.7, 0.0, 0.4}) {
    auto d = capacity::compute_phase_diagram(phi, 9, 9);
    for (const auto& pt : d.grid) {
      const double mob = capacity::mobility_exponent(pt.alpha);
      const double infra = capacity::infrastructure_exponent(pt.K, phi);
      EXPECT_DOUBLE_EQ(pt.exponent, std::max(mob, infra));
      EXPECT_EQ(pt.mobility_dominant, mob > infra);
    }
  }
}

TEST(PhaseDiagramProperty, ExponentMonotoneInKAndAlpha) {
  auto d = capacity::compute_phase_diagram(0.0, 11, 11);
  // Non-decreasing in K (more BSs never hurt), non-increasing in α
  // (larger networks never help).
  for (std::size_t ki = 0; ki + 1 < d.k_steps; ++ki)
    for (std::size_t ai = 0; ai < d.alpha_steps; ++ai)
      EXPECT_LE(d.at(ai, ki).exponent, d.at(ai, ki + 1).exponent + 1e-12);
  for (std::size_t ai = 0; ai + 1 < d.alpha_steps; ++ai)
    for (std::size_t ki = 0; ki < d.k_steps; ++ki)
      EXPECT_GE(d.at(ai, ki).exponent, d.at(ai + 1, ki).exponent - 1e-12);
}

// Property (satellite of the generalized-infrastructure PR): the closed
// form dominance_boundary_K must agree with a brute-force argmax over the
// computed grid on EVERY panel, including the new ϕ/L axes. Grid values
// are dyadic (eighths/quarters), so every exponent below is binary-exact
// and the comparison needs no tolerance.
TEST(PhaseDiagramProperty, BoundaryMatchesBruteForceOverAllPanels) {
  constexpr std::size_t kAlphaSteps = 5;  // α = ai/8 ∈ {0, ⅛, ¼, ⅜, ½}
  constexpr std::size_t kKSteps = 9;      // K = ki/8 ∈ {0, ⅛, …, 1}
  for (double phi : {-0.5, -0.25, 0.0, 0.25, 0.5}) {
    for (double L : {0.0, 0.25, 0.5}) {
      auto d = capacity::compute_phase_diagram(phi, L, kAlphaSteps, kKSteps);
      for (std::size_t ai = 0; ai < kAlphaSteps; ++ai) {
        // Brute force: first grid K at which infrastructure dominates.
        std::size_t first = kKSteps;
        for (std::size_t ki = 0; ki < kKSteps; ++ki)
          if (!d.at(ai, ki).mobility_dominant) {
            first = ki;
            break;
          }
        const double alpha = d.at(ai, 0).alpha;
        const double Kb = capacity::dominance_boundary_K(alpha, phi, L);
        // Closed form: smallest grid index with ki/8 ≥ Kb (none if > 1).
        const std::size_t predicted =
            Kb > 1.0 ? kKSteps
                     : static_cast<std::size_t>(
                           std::ceil(Kb * 8.0 - 1e-12) < 0.0
                               ? 0.0
                               : std::ceil(Kb * 8.0 - 1e-12));
        EXPECT_EQ(first, predicted)
            << "phi=" << phi << " L=" << L << " alpha=" << alpha
            << " boundary=" << Kb;
        // Consistency at the boundary: exactly at K = Kb the exponents tie,
        // so "improves" is false but the diagram is already
        // infrastructure-dominant (ties prefer infrastructure), and
        // required_K inverts back to the boundary.
        if (Kb >= 0.0 && Kb <= 1.0) {
          EXPECT_FALSE(capacity::infrastructure_improves(alpha, Kb, phi, L));
          EXPECT_DOUBLE_EQ(capacity::required_K(-alpha, phi, L), Kb);
        }
      }
    }
  }
}

TEST(PhaseDiagramProperty, FrontierPanelMatchesPointwiseRecomputation) {
  for (double alpha : {0.125, 0.375}) {
    for (double K : {0.25, 0.75}) {
      auto d = capacity::compute_frontier_diagram(alpha, K, 9, 5);
      for (const auto& pt : d.grid) {
        const double mob = capacity::mobility_exponent(alpha);
        const double infra =
            capacity::infrastructure_exponent(K, pt.phi, pt.L);
        EXPECT_DOUBLE_EQ(pt.exponent, std::max(mob, infra));
        EXPECT_EQ(pt.mobility_dominant, mob > infra);
        EXPECT_EQ(pt.bottleneck,
                  capacity::infrastructure_bottleneck(K, pt.phi, pt.L));
      }
    }
  }
}

// ------------------------------------------------------- sweep invariants --

TEST(SweepProperty, GeometricMeanBetweenMinAndMax) {
  net::ScalingParams p;
  p.alpha = 0.3;
  p.with_bs = false;
  p.M = 1.0;
  sim::SweepEvaluator eval = [](const sim::EvalContext& ctx) {
    sim::FluidOptions opt;
    opt.seed = ctx.seed;
    return sim::evaluate_capacity(ctx.params, opt).lambda_symmetric;
  };
  sim::SweepOptions sopt;
  sopt.seed0 = 29;
  auto sweep = sim::run_sweep(p, {1024, 2048, 4096}, 3, eval, sopt);
  for (const auto& pt : sweep.points) {
    EXPECT_GE(pt.lambda_gm, pt.lambda_min - 1e-15);
    EXPECT_LE(pt.lambda_gm, pt.lambda_max + 1e-15);
    EXPECT_GT(pt.lambda_min, 0.0);
  }
}

// ------------------------------------------------------ slot-sim windows --

TEST(SlotSimProperty, LargerWindowNeverSlower) {
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.3;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 31);
  rng::Xoshiro256 g(37);
  auto dest = net::permutation_traffic(p.n, g);
  double prev_rate = 0.0;
  for (std::size_t window : {1u, 4u, 16u}) {
    sim::SlotSimOptions opt;
    opt.scheme = sim::SlotScheme::kSchemeA;
    opt.slots = 1500;
    opt.warmup = 300;
    opt.seed = 41;
    opt.source_backlog = window;
    auto r = sim::run_slot_sim(net, dest, opt);
    EXPECT_GE(r.mean_flow_rate, prev_rate * 0.85)  // allow slot noise
        << "window " << window;
    prev_rate = std::max(prev_rate, r.mean_flow_rate);
  }
}

TEST(SlotSimProperty, DeliveredNeverExceedsInjectedBudget) {
  // With window w, at most w packets per flow can be in flight, so the
  // delivered count is bounded by (measured slots)·(meetings) trivially —
  // check the tighter invariant: per-flow delivered ≤ slots (one delivery
  // per slot per flow is the absolute ceiling).
  net::ScalingParams p;
  p.n = 128;
  p.alpha = 0.3;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 43);
  rng::Xoshiro256 g(47);
  auto dest = net::permutation_traffic(p.n, g);
  sim::SlotSimOptions opt;
  opt.scheme = sim::SlotScheme::kSchemeA;
  opt.slots = 800;
  opt.warmup = 100;
  opt.seed = 53;
  auto r = sim::run_slot_sim(net, dest, opt);
  EXPECT_LE(r.mean_flow_rate, 1.0);
  EXPECT_LE(r.min_flow_rate, r.mean_flow_rate);
  EXPECT_LE(r.total_delivered,
            static_cast<std::uint64_t>(p.n) * r.measured_slots);
}

}  // namespace
}  // namespace manetcap
