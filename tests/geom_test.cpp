#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "geom/hex.h"
#include "geom/point.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "util/check.h"

namespace manetcap::geom {
namespace {

// ---------------------------------------------------------------- point --

TEST(Point, Wrap01KeepsRange) {
  EXPECT_DOUBLE_EQ(wrap01(0.25), 0.25);
  EXPECT_DOUBLE_EQ(wrap01(1.25), 0.25);
  EXPECT_DOUBLE_EQ(wrap01(-0.25), 0.75);
  EXPECT_GE(wrap01(-1e-18), 0.0);
  EXPECT_LT(wrap01(-1e-18), 1.0);
  EXPECT_LT(wrap01(0.999999999999999999), 1.0);
}

// Pins the v − floor(v) rounding hazard: for tiny negative v the
// subtraction rounds to exactly 1.0, which would escape [0, 1) and break
// every bucket computation downstream. The fix (w >= 1.0 → w − 1.0) must
// hold on every boundary spelling of "almost 0" and "almost 1".
TEST(Point, Wrap01BoundaryHazards) {
  // Tiny magnitudes either side of zero.
  EXPECT_LT(wrap01(1e-18), 1.0);
  EXPECT_GE(wrap01(1e-18), 0.0);
  EXPECT_LT(wrap01(-1e-18), 1.0);  // the historical 1.0 escape
  EXPECT_GE(wrap01(-1e-18), 0.0);
  // Exact integers land on exactly 0.
  EXPECT_DOUBLE_EQ(wrap01(1.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap01(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap01(0.0), 0.0);
  // Largest double below 1.0 is already in range and must be unchanged.
  const double below_one = std::nextafter(1.0, 0.0);
  EXPECT_DOUBLE_EQ(wrap01(below_one), below_one);
  EXPECT_LT(wrap01(below_one), 1.0);
  // Its negative wraps to something in range too.
  EXPECT_LT(wrap01(-below_one), 1.0);
  EXPECT_GE(wrap01(-below_one), 0.0);
}

// Downstream guarantee the wrap provides: a point built from any of the
// hazard values indexes into a SpatialHash without tripping the bucket
// bounds, and a disk query still finds it.
TEST(Point, WrappedBoundaryPointsAreHashable) {
  const double hazards[] = {-1e-18, 1e-18, 1.0,
                            -1.0,   std::nextafter(1.0, 0.0)};
  for (double h : hazards) {
    const Point p = Point::wrapped(h, h);
    ASSERT_GE(p.x, 0.0);
    ASSERT_LT(p.x, 1.0);
    SpatialHash hash(0.1, 1);
    std::vector<Point> pts = {p};
    hash.build(pts);
    std::size_t found = 0;
    hash.visit_disk(p, 0.01, [&](std::uint32_t) { ++found; });
    EXPECT_EQ(found, 1u) << "hazard " << h;
  }
}

TEST(Point, TorusDistanceUsesShortestWrap) {
  Point a{0.05, 0.5};
  Point b{0.95, 0.5};
  EXPECT_NEAR(torus_dist(a, b), 0.10, 1e-12);  // across the seam
  EXPECT_NEAR(torus_dist(a, a), 0.0, 1e-12);
}

TEST(Point, TorusDistanceIsSymmetric) {
  Point a{0.1, 0.9};
  Point b{0.8, 0.05};
  EXPECT_DOUBLE_EQ(torus_dist(a, b), torus_dist(b, a));
}

TEST(Point, MaxTorusDistanceIsHalfDiagonal) {
  Point a{0.0, 0.0};
  Point b{0.5, 0.5};
  EXPECT_NEAR(torus_dist(a, b), std::sqrt(0.5), 1e-12);
}

TEST(Point, DisplacedWraps) {
  Point p{0.9, 0.9};
  Point q = p.displaced({0.2, 0.2});
  EXPECT_NEAR(q.x, 0.1, 1e-12);
  EXPECT_NEAR(q.y, 0.1, 1e-12);
}

TEST(Point, DeltaInverseOfDisplacement) {
  Point p{0.3, 0.7};
  Vec2 d{0.15, -0.2};
  Point q = p.displaced(d);
  Vec2 back = torus_delta(p, q);
  EXPECT_NEAR(back.x, d.x, 1e-12);
  EXPECT_NEAR(back.y, d.y, 1e-12);
}

// ---------------------------------------------------- square tessellation --

TEST(SquareTessellation, CellOfRoundTrips) {
  SquareTessellation t(8);
  for (int idx = 0; idx < t.num_cells(); ++idx) {
    Cell c = t.cell_at(idx);
    EXPECT_EQ(t.index_of(c), idx);
    EXPECT_EQ(t.cell_of(t.center(c)), c);
  }
}

TEST(SquareTessellation, WithMinCellAreaRespectsBound) {
  const double area = 0.013;
  SquareTessellation t = SquareTessellation::with_min_cell_area(area);
  EXPECT_GE(t.cell_area(), area);
  // One more cell per side would violate the bound.
  SquareTessellation t2(t.cells_per_side() + 1);
  EXPECT_LT(t2.cell_area(), area);
}

TEST(SquareTessellation, WrapHandlesNegatives) {
  SquareTessellation t(4);
  EXPECT_EQ(t.wrap(-1, -1), (Cell{3, 3}));
  EXPECT_EQ(t.wrap(4, 5), (Cell{0, 1}));
}

TEST(SquareTessellation, Neighbors4AreDistinctAndAdjacent) {
  SquareTessellation t(5);
  Cell c{0, 0};
  auto nb = t.neighbors4(c);
  ASSERT_EQ(nb.size(), 4u);
  std::set<int> ids;
  for (auto x : nb) {
    ids.insert(t.index_of(x));
    EXPECT_EQ(t.hop_distance(c, x), 1);
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(SquareTessellation, HopDistanceWraps) {
  SquareTessellation t(10);
  EXPECT_EQ(t.hop_distance({0, 0}, {0, 9}), 1);
  EXPECT_EQ(t.hop_distance({0, 0}, {5, 5}), 10);
  EXPECT_EQ(t.hop_distance({2, 3}, {2, 3}), 0);
}

TEST(SquareTessellation, HvPathConnectsEndpoints) {
  SquareTessellation t(9);
  Cell src{1, 2}, dst{7, 8};
  auto path = t.hv_path(src, dst);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  // Consecutive cells are 4-adjacent; length equals hop distance + 1.
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_EQ(t.hop_distance(path[i], path[i + 1]), 1);
  EXPECT_EQ(path.size(), static_cast<std::size_t>(
                             t.hop_distance(src, dst)) + 1);
}

TEST(SquareTessellation, HvPathGoesHorizontalFirst) {
  SquareTessellation t(6);
  auto path = t.hv_path({0, 0}, {3, 3});
  // After the first step only the column may change.
  EXPECT_EQ(path[1].row, 0);
  EXPECT_EQ(path[1].col, 1);
}

TEST(SquareTessellation, HvPathTakesShortWrap) {
  SquareTessellation t(10);
  auto path = t.hv_path({0, 9}, {0, 0});
  EXPECT_EQ(path.size(), 2u);  // wraps across the seam, not 9 hops
}

TEST(SquareTessellation, SingleCellDegenerate) {
  SquareTessellation t(1);
  EXPECT_EQ(t.cell_of({0.7, 0.2}), (Cell{0, 0}));
  EXPECT_EQ(t.hv_path({0, 0}, {0, 0}).size(), 1u);
}

// ------------------------------------------------------------------ hex --

TEST(HexGrid, CellOfCenterRoundTrips) {
  HexGrid grid(0.05);
  for (int q = -3; q <= 3; ++q) {
    for (int r = -3; r <= 3; ++r) {
      Hex h{q, r};
      EXPECT_EQ(grid.cell_of(grid.center(h)), h);
    }
  }
}

TEST(HexGrid, NeighborsAtUnitDistance) {
  HexGrid grid(1.0);
  Hex origin{0, 0};
  for (Hex nb : grid.neighbors(origin)) {
    EXPECT_EQ(grid.distance(origin, nb), 1);
    // Center spacing of adjacent pointy-top hexes is √3·side.
    EXPECT_NEAR((grid.center(nb) - grid.center(origin)).norm(),
                std::sqrt(3.0), 1e-12);
  }
}

TEST(HexGrid, CellsWithinCoversDiskArea) {
  HexGrid grid(0.02);
  const double radius = 0.3;
  auto cells = grid.cells_within(radius);
  // Count ≈ disk area / hex area.
  const double expect = M_PI * radius * radius / grid.cell_area();
  EXPECT_NEAR(static_cast<double>(cells.size()), expect, expect * 0.15);
}

TEST(HexGrid, TdmaColorRange) {
  HexGrid grid(0.1);
  const int period = 3;
  for (int q = -5; q <= 5; ++q) {
    for (int r = -5; r <= 5; ++r) {
      int c = grid.tdma_color({q, r}, period);
      EXPECT_GE(c, 0);
      EXPECT_LT(c, period * period);
    }
  }
}

TEST(HexGrid, SameColorCellsAreFar) {
  HexGrid grid(0.01);
  const int period = 4;
  Hex a{0, 0};
  const int color = grid.tdma_color(a, period);
  for (int q = -8; q <= 8; ++q) {
    for (int r = -8; r <= 8; ++r) {
      Hex b{q, r};
      if (b == a || grid.tdma_color(b, period) != color) continue;
      EXPECT_GE(grid.distance(a, b), period);
    }
  }
}

// --------------------------------------------------------- spatial hash --

TEST(SpatialHash, FindsExactDiskMembers) {
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({(i % 20) / 20.0 + 0.013, (i / 20) / 10.0 + 0.017});
  for (auto& p : pts) p = Point::wrapped(p.x, p.y);

  SpatialHash hash(0.1, pts.size());
  hash.build(pts);

  const Point center{0.5, 0.5};
  const double r = 0.23;
  auto got = hash.query_disk(center, r);
  std::set<std::uint32_t> got_set(got.begin(), got.end());

  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    const bool inside = torus_dist(center, pts[i]) <= r;
    EXPECT_EQ(got_set.count(i) > 0, inside) << "id " << i;
  }
}

TEST(SpatialHash, WrapsAroundSeam) {
  std::vector<Point> pts = {{0.98, 0.5}, {0.02, 0.5}, {0.5, 0.5}};
  SpatialHash hash(0.05, pts.size());
  hash.build(pts);
  auto got = hash.query_disk({0.999, 0.5}, 0.05);
  std::set<std::uint32_t> s(got.begin(), got.end());
  EXPECT_TRUE(s.count(0));
  EXPECT_TRUE(s.count(1));
  EXPECT_FALSE(s.count(2));
}

TEST(SpatialHash, CountMatchesQuery) {
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back({(i * 37 % 64) / 64.0,
                                              (i * 11 % 64) / 64.0});
  SpatialHash hash(0.2, pts.size());
  hash.build(pts);
  EXPECT_EQ(hash.count_in_disk({0.3, 0.3}, 0.2),
            hash.query_disk({0.3, 0.3}, 0.2).size());
}

TEST(SpatialHash, NearestIsTrueNearest) {
  std::vector<Point> pts = {{0.1, 0.1}, {0.9, 0.9}, {0.45, 0.52},
                            {0.3, 0.8},  {0.7, 0.2}};
  SpatialHash hash(0.1, pts.size());
  hash.build(pts);
  const Point probe{0.5, 0.5};
  std::uint32_t got = hash.nearest(probe, 99);
  std::uint32_t want = 0;
  double best = 1e9;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    double d = torus_dist(probe, pts[i]);
    if (d < best) {
      best = d;
      want = i;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(SpatialHash, NearestHonorsExclusion) {
  std::vector<Point> pts = {{0.5, 0.5}, {0.52, 0.5}};
  SpatialHash hash(0.1, pts.size());
  hash.build(pts);
  EXPECT_EQ(hash.nearest({0.5, 0.5}, 0), 1u);
}

TEST(SpatialHash, EmptyIndexReportsSentinel) {
  SpatialHash hash(0.1);
  hash.build({});
  // The old contract returned 0 here — an in-band id a caller could index
  // with. kNone is out-of-band by construction.
  EXPECT_EQ(hash.nearest({0.5, 0.5}, 0), SpatialHash::kNone);
  EXPECT_EQ(hash.nearest({0.5, 0.5}), SpatialHash::kNone);
  EXPECT_EQ(hash.count_in_disk({0.5, 0.5}, 0.3), 0u);
}

TEST(SpatialHash, AllCandidatesExcludedReportsSentinel) {
  // A single indexed point that is also the exclusion: the old contract
  // returned points_.size() (= 1), which is an indexable id in any array
  // sized like the candidate set plus one appended probe.
  std::vector<Point> pts = {{0.25, 0.75}};
  SpatialHash hash(0.1, pts.size());
  hash.build(pts);
  EXPECT_EQ(hash.nearest({0.5, 0.5}, 0), SpatialHash::kNone);
  EXPECT_EQ(hash.nearest({0.5, 0.5}, SpatialHash::kNone), 0u);
}

TEST(SpatialHash, NearestMatchesBruteForceOnClusteredPoints) {
  // The ring search must agree with brute force even when points are
  // clustered far from the probe (many empty rings before the first hit)
  // and when the best candidate sits just outside the first occupied ring.
  std::vector<Point> pts;
  for (int i = 0; i < 40; ++i)
    pts.push_back({0.8 + 0.01 * (i % 7), 0.1 + 0.013 * (i % 5)});
  pts.push_back({0.79, 0.12});
  SpatialHash hash(0.05, pts.size());
  hash.build(pts);
  const std::vector<Point> probes = {{0.1, 0.9}, {0.5, 0.5}, {0.81, 0.11},
                                     {0.99, 0.99}, {0.0, 0.0}};
  for (const Point& probe : probes) {
    std::uint32_t want = 0;
    double best = 1e9;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      const double d = torus_dist(probe, pts[i]);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    EXPECT_EQ(hash.nearest(probe), want);
  }
}

TEST(SpatialHash, FullTorusRadiusSeesEveryPoint) {
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back({(i * 13 % 50) / 50.0, (i * 7 % 50) / 50.0});
  SpatialHash hash(0.01, pts.size());
  hash.build(pts);
  EXPECT_EQ(hash.count_in_disk({0.0, 0.0}, 0.71), pts.size());
}

// Regression: a radius_hint of 1e-12 used to push 1/hint through an int
// cast (UB — the clamp ran after the narrowing). The constructor now
// clamps to kMaxGridSide in int64 first; queries must still match brute
// force on the resulting maximally fine grid.
TEST(SpatialHash, TinyRadiusHintClampsInsteadOfOverflowing) {
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i)
    pts.push_back({(i * 29 % 64) / 64.0, (i * 17 % 64) / 64.0});
  // Without a point-count hint the denormal hint clamps to the max side
  // (construction only — building a 4096² table for 64 points is wasteful).
  EXPECT_EQ(SpatialHash(1e-12).grid_side(), SpatialHash::kMaxGridSide);
  // With the hint the √points cap kicks in, but the tiny radius must still
  // pass through the int64 clamp, not the old int cast.
  SpatialHash hash(1e-12, pts.size());
  hash.build(pts);
  EXPECT_EQ(hash.grid_side(), 16);  // 2·⌈√64⌉
  const Point probe{0.31, 0.64};
  const double r = 0.2;
  std::size_t brute = 0;
  for (const Point& p : pts)
    if (torus_dist(probe, p) <= r) ++brute;
  EXPECT_EQ(hash.count_in_disk(probe, r), brute);
  // Incremental mode under the clamped grid: move a point across the
  // whole torus and re-query.
  hash.move(0, pts[0], probe);
  EXPECT_GE(hash.count_in_disk(probe, 1e-9), 1u);
}

// Rows partition the indexed set: visiting every row range exactly covers
// every id once — the invariant the sharded S* scan rides on.
TEST(SpatialHash, VisitRowsPartitionsIds) {
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({(i * 37 % 200) / 200.0, (i * 101 % 200) / 200.0});
  SpatialHash hash(0.05, pts.size());
  hash.build(pts);
  const std::int64_t g = hash.grid_side();
  std::vector<int> seen(pts.size(), 0);
  for (std::int64_t s = 0; s < 4; ++s)
    hash.visit_rows(g * s / 4, g * (s + 1) / 4,
                    [&](std::uint32_t id) { ++seen[id]; });
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

}  // namespace
}  // namespace manetcap::geom
