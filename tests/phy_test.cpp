#include <gtest/gtest.h>

#include "phy/protocol_model.h"
#include "util/check.h"

namespace manetcap::phy {
namespace {

TEST(ProtocolModel, RangeCheck) {
  ProtocolModel pm(0.1, 1.0);
  EXPECT_TRUE(pm.in_range({0.5, 0.5}, {0.55, 0.5}));
  EXPECT_FALSE(pm.in_range({0.5, 0.5}, {0.65, 0.5}));
  // Wraps around the torus seam.
  EXPECT_TRUE(pm.in_range({0.98, 0.5}, {0.03, 0.5}));
}

TEST(ProtocolModel, GuardRadiusIsScaledRange) {
  ProtocolModel pm(0.1, 0.5);
  EXPECT_DOUBLE_EQ(pm.guard_radius(), 0.15);
  EXPECT_FALSE(pm.guard_ok({0.5, 0.5}, {0.5, 0.6}));   // 0.1 < 0.15
  EXPECT_TRUE(pm.guard_ok({0.5, 0.5}, {0.5, 0.66}));   // 0.16 ≥ 0.15
}

TEST(ProtocolModel, SingleLinkFeasible) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.15, 0.1}};
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}}));
}

TEST(ProtocolModel, OutOfRangeLinkInfeasible) {
  ProtocolModel pm(0.05, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.3, 0.1}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}}));
}

TEST(ProtocolModel, InterferenceViolatesGuard) {
  ProtocolModel pm(0.1, 1.0);  // guard = 0.2
  // Transmitter 2 sits 0.15 from receiver 1: violates (1+Δ)R_T.
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.30, 0.10}, {0.35, 0.10}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

TEST(ProtocolModel, WellSeparatedLinksCoexist) {
  ProtocolModel pm(0.05, 1.0);  // guard = 0.1
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.13, 0.10}, {0.60, 0.60}, {0.63, 0.60}};
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

TEST(ProtocolModel, HalfDuplexEnforced) {
  ProtocolModel pm(0.2, 0.1);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.2, 0.1}, {0.3, 0.1}};
  // Node 1 cannot receive and transmit simultaneously.
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {1, 2}}));
  // Nor receive twice.
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {2, 1}}));
}

TEST(ProtocolModel, SelfLoopRejected) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 0}}));
}

TEST(ProtocolModel, EmptySetIsFeasible) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}};
  EXPECT_TRUE(pm.feasible(pos, {}));
}

TEST(ProtocolModel, InvalidParamsThrow) {
  EXPECT_THROW(ProtocolModel(0.0, 1.0), manetcap::CheckError);
  EXPECT_THROW(ProtocolModel(0.1, -0.5), manetcap::CheckError);
}

TEST(ProtocolModel, ZeroDeltaOnlyNeedsRange) {
  ProtocolModel pm(0.1, 0.0);  // guard == range
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.27, 0.10}, {0.32, 0.10}};
  // Transmitter 2 is 0.12 > 0.1 from receiver 1 — fine with Δ = 0.
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

}  // namespace
}  // namespace manetcap::phy
