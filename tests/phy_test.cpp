#include <gtest/gtest.h>

#include <stdexcept>

#include "phy/interference.h"
#include "phy/protocol_model.h"
#include "util/check.h"

namespace manetcap::phy {
namespace {

TEST(ProtocolModel, RangeCheck) {
  ProtocolModel pm(0.1, 1.0);
  EXPECT_TRUE(pm.in_range({0.5, 0.5}, {0.55, 0.5}));
  EXPECT_FALSE(pm.in_range({0.5, 0.5}, {0.65, 0.5}));
  // Wraps around the torus seam.
  EXPECT_TRUE(pm.in_range({0.98, 0.5}, {0.03, 0.5}));
}

TEST(ProtocolModel, GuardRadiusIsScaledRange) {
  ProtocolModel pm(0.1, 0.5);
  EXPECT_DOUBLE_EQ(pm.guard_radius(), 0.15);
  EXPECT_FALSE(pm.guard_ok({0.5, 0.5}, {0.5, 0.6}));   // 0.1 < 0.15
  EXPECT_TRUE(pm.guard_ok({0.5, 0.5}, {0.5, 0.66}));   // 0.16 ≥ 0.15
}

TEST(ProtocolModel, SingleLinkFeasible) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.15, 0.1}};
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}}));
}

TEST(ProtocolModel, OutOfRangeLinkInfeasible) {
  ProtocolModel pm(0.05, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.3, 0.1}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}}));
}

TEST(ProtocolModel, InterferenceViolatesGuard) {
  ProtocolModel pm(0.1, 1.0);  // guard = 0.2
  // Transmitter 2 sits 0.15 from receiver 1: violates (1+Δ)R_T.
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.30, 0.10}, {0.35, 0.10}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

TEST(ProtocolModel, WellSeparatedLinksCoexist) {
  ProtocolModel pm(0.05, 1.0);  // guard = 0.1
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.13, 0.10}, {0.60, 0.60}, {0.63, 0.60}};
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

TEST(ProtocolModel, HalfDuplexEnforced) {
  ProtocolModel pm(0.2, 0.1);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.2, 0.1}, {0.3, 0.1}};
  // Node 1 cannot receive and transmit simultaneously.
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {1, 2}}));
  // Nor receive twice.
  EXPECT_FALSE(pm.feasible(pos, {{0, 1}, {2, 1}}));
}

TEST(ProtocolModel, SelfLoopRejected) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}};
  EXPECT_FALSE(pm.feasible(pos, {{0, 0}}));
}

TEST(ProtocolModel, EmptySetIsFeasible) {
  ProtocolModel pm(0.1, 1.0);
  std::vector<geom::Point> pos = {{0.1, 0.1}};
  EXPECT_TRUE(pm.feasible(pos, {}));
}

TEST(ProtocolModel, InvalidParamsThrow) {
  EXPECT_THROW(ProtocolModel(0.0, 1.0), manetcap::CheckError);
  EXPECT_THROW(ProtocolModel(0.1, -0.5), manetcap::CheckError);
}

TEST(ProtocolModel, ZeroDeltaOnlyNeedsRange) {
  ProtocolModel pm(0.1, 0.0);  // guard == range
  std::vector<geom::Point> pos = {
      {0.10, 0.10}, {0.15, 0.10}, {0.27, 0.10}, {0.32, 0.10}};
  // Transmitter 2 is 0.12 > 0.1 from receiver 1 — fine with Δ = 0.
  EXPECT_TRUE(pm.feasible(pos, {{0, 1}, {2, 3}}));
}

// S* (Definition 10) is strict on both boundaries: d < R_T for the link,
// d > (1+Δ)R_T for every other transmitter. The protocol model must agree
// exactly, or a pair sitting on a measure-zero boundary would be scheduled
// by one and rejected by the other. Exact-FP geometry: 0.25 and 0.5 are
// representable, so the comparisons below are equalities, not near-misses.
TEST(ProtocolModel, RangeBoundaryIsStrict) {
  ProtocolModel pm(0.25, 1.0);
  // d == R_T exactly: NOT in range (Definition 10 requires d < R_T).
  EXPECT_FALSE(pm.in_range({0.25, 0.25}, {0.5, 0.25}));
  EXPECT_TRUE(pm.in_range({0.25, 0.25}, {0.499, 0.25}));
}

TEST(ProtocolModel, GuardBoundaryIsStrict) {
  ProtocolModel pm(0.25, 1.0);  // guard = 0.5
  // Interferer at exactly (1+Δ)R_T from the receiver: guard VIOLATED
  // (Definition 10 requires d > guard; S*'s disk visit counts d ≤ guard
  // as blocking).
  EXPECT_FALSE(pm.guard_ok({0.25, 0.0}, {0.25, 0.5}));
  // 0.5 is the max torus distance along one axis; push past the guard with
  // an x offset: d = √(0.05² + 0.5²) ≈ 0.5025 > 0.5.
  EXPECT_TRUE(pm.guard_ok({0.2, 0.0}, {0.25, 0.5}));
}

// ------------------------------------------------- interference backends --

TEST(Interference, ParsePhyRoundTrip) {
  for (PhyKind k :
       {PhyKind::kProtocol, PhyKind::kSinr, PhyKind::kSinrCsma})
    EXPECT_EQ(parse_phy(to_string(k)), k);
  EXPECT_THROW(parse_phy("laser"), std::runtime_error);
}

TEST(Interference, SinrParamsValidateRejectsBadFields) {
  auto bad = [](auto&& mutate) {
    SinrParams p;
    mutate(p);
    EXPECT_THROW(p.validate(), manetcap::CheckError);
  };
  SinrParams ok;
  EXPECT_NO_THROW(ok.validate());
  bad([](SinrParams& p) { p.path_loss = 2.0; });  // far field diverges
  bad([](SinrParams& p) { p.path_loss = std::nan(""); });
  bad([](SinrParams& p) { p.beta = 0.0; });
  bad([](SinrParams& p) { p.snr_edge = -1.0; });
  bad([](SinrParams& p) { p.power = 0.0; });
  bad([](SinrParams& p) { p.field_radius = 0.5; });  // must cover the link
  bad([](SinrParams& p) { p.cca = 0.0; });
}

TEST(Interference, ProtocolBackendIsNoOpFilter) {
  const auto model = make_interference_model(PhyKind::kProtocol, 1.0);
  EXPECT_EQ(model->kind(), PhyKind::kProtocol);
  std::vector<geom::Point> pos = {{0.1, 0.1}, {0.11, 0.1}};
  std::vector<Transmission> pairs = {{0, 1}};
  InterferenceModel::Workspace ws;
  PhyStats stats;
  model->filter_pairs(pos, 0.05, pairs, ws, &stats);
  EXPECT_EQ(pairs.size(), 1u);
  EXPECT_EQ(stats.sinr_rejected, 0u);
  EXPECT_EQ(stats.csma_suppressed, 0u);
}

// An interference-free link at exactly R_T comes in at SNR = snr_edge by
// construction of the noise floor; β brackets around snr_edge flip it.
TEST(Interference, SingleLinkSnrEdgeThreshold) {
  const double rt = 0.125;  // exact in FP; d_link == rt exactly
  std::vector<geom::Point> pos = {{0.25, 0.25}, {0.375, 0.25}};
  SinrParams p;
  p.snr_edge = 10.0;
  p.beta = 9.999;
  EXPECT_TRUE(make_interference_model(PhyKind::kSinr, 1.0, p)
                  ->link_succeeds(pos, rt, {0, 1}, {}));
  p.beta = 10.001;
  EXPECT_FALSE(make_interference_model(PhyKind::kSinr, 1.0, p)
                   ->link_succeeds(pos, rt, {0, 1}, {}));
}

// The 3-node divergence the backends exist to expose: an interferer inside
// the protocol guard zone is an automatic protocol failure, but under SINR
// the much stronger signal captures the receiver anyway — until β rises.
TEST(Interference, ThreeNodeProtocolVsSinrCapture) {
  const double rt = 0.05;
  std::vector<geom::Point> pos = {
      {0.50, 0.5}, {0.52, 0.5}, {0.56, 0.5}};  // tx, rx, interferer
  const std::vector<std::uint32_t> other_tx = {2};
  const auto protocol = make_interference_model(PhyKind::kProtocol, 1.0);
  // d(interferer, rx) = 0.04 < guard 0.1: protocol kills the link.
  EXPECT_FALSE(protocol->link_succeeds(pos, rt, {0, 1}, other_tx));
  // SINR = d_s^{-3} / (N0 + d_i^{-3}) = 125000 / (800 + 15625) ≈ 7.6.
  SinrParams p;
  p.beta = 1.0;
  EXPECT_TRUE(make_interference_model(PhyKind::kSinr, 1.0, p)
                  ->link_succeeds(pos, rt, {0, 1}, other_tx));
  p.beta = 8.0;
  EXPECT_FALSE(make_interference_model(PhyKind::kSinr, 1.0, p)
                   ->link_succeeds(pos, rt, {0, 1}, other_tx));
}

// filter_pairs must agree with the exact-sum reference link_succeeds when
// the near field covers the whole torus (far-field correction zero): a
// pair survives iff BOTH directions succeed against the same-direction
// endpoints of every scheduled pair.
TEST(Interference, FilterMatchesReferenceWhenNearFieldCoversTorus) {
  const double rt = 0.1;
  // Five pairs: 1 and 2 sit on the same row close enough to jam each
  // other (interferer at link distance → SINR < 1), the rest are isolated.
  std::vector<geom::Point> pos = {
      {0.05, 0.20}, {0.09, 0.20},   // pair 0 — isolated
      {0.22, 0.45}, {0.26, 0.45},   // pair 1 — jammed by pair 2
      {0.30, 0.45}, {0.34, 0.45},   // pair 2 — jammed by pair 1
      {0.62, 0.70}, {0.66, 0.70},   // pair 3 — isolated
      {0.85, 0.10}, {0.89, 0.10}};  // pair 4 — isolated
  std::vector<Transmission> pairs = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}};
  SinrParams params;
  params.field_radius = 100.0;  // rf ≥ torus radius → exact sums
  const auto model = make_interference_model(PhyKind::kSinr, 1.0, params);

  std::vector<Transmission> expected;
  for (const auto& pr : pairs) {
    std::vector<std::uint32_t> fwd_tx;
    std::vector<std::uint32_t> rev_tx;
    for (const auto& o : pairs) {
      fwd_tx.push_back(o.tx);
      rev_tx.push_back(o.rx);
    }
    if (model->link_succeeds(pos, rt, {pr.tx, pr.rx}, fwd_tx) &&
        model->link_succeeds(pos, rt, {pr.rx, pr.tx}, rev_tx))
      expected.push_back(pr);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), pairs.size());  // the geometry cuts something

  auto filtered = pairs;
  InterferenceModel::Workspace ws;
  PhyStats stats;
  model->filter_pairs(pos, rt, filtered, ws, &stats);
  ASSERT_EQ(filtered.size(), expected.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i].tx, expected[i].tx);
    EXPECT_EQ(filtered[i].rx, expected[i].rx);
  }
  EXPECT_EQ(stats.sinr_rejected, pairs.size() - expected.size());
}

// A minimal near-field radius routes distant interference through the
// closed-form far-field mean; for pairs far from the β threshold the
// outcome must match the exact evaluation.
TEST(Interference, FarFieldApproximationPreservesClearOutcomes) {
  const double rt = 0.1;
  std::vector<geom::Point> pos = {
      {0.1, 0.1}, {0.15, 0.1}, {0.6, 0.6}, {0.65, 0.6}};
  std::vector<Transmission> pairs = {{0, 1}, {2, 3}};
  InterferenceModel::Workspace ws;
  for (double field_radius : {1.0, 3.0, 100.0}) {
    SinrParams p;
    p.field_radius = field_radius;
    auto filtered = pairs;
    make_interference_model(PhyKind::kSinr, 1.0, p)
        ->filter_pairs(pos, rt, filtered, ws);
    EXPECT_EQ(filtered.size(), 2u) << "field_radius " << field_radius;
  }
}

TEST(Interference, FilterIsDeterministicAcrossWorkspaceReuse) {
  const double rt = 0.07;
  std::vector<geom::Point> pos;
  std::vector<Transmission> pairs;
  for (std::uint32_t p = 0; p < 8; ++p) {
    pos.push_back({0.12 * p, 0.3 + 0.07 * (p % 3)});
    pos.push_back({0.12 * p + 0.03, 0.3 + 0.07 * (p % 3)});
    pairs.push_back({2 * p, 2 * p + 1});
  }
  SinrParams params;
  params.beta = 2.0;
  const auto model = make_interference_model(PhyKind::kSinrCsma, 1.0, params);
  InterferenceModel::Workspace reused;
  std::vector<Transmission> first;
  for (int round = 0; round < 3; ++round) {
    auto filtered = pairs;
    InterferenceModel::Workspace fresh;
    model->filter_pairs(pos, rt, filtered, round == 0 ? fresh : reused);
    if (round == 0) {
      first = filtered;
    } else {
      ASSERT_EQ(filtered.size(), first.size());
      for (std::size_t i = 0; i < filtered.size(); ++i) {
        EXPECT_EQ(filtered[i].tx, first[i].tx);
        EXPECT_EQ(filtered[i].rx, first[i].rx);
      }
    }
  }
}

TEST(Interference, CsmaSuppressesMutuallyAudibleCandidates) {
  const double rt = 0.1;  // N0 = 100
  std::vector<geom::Point> pos = {
      {0.10, 0.1}, {0.15, 0.1}, {0.35, 0.1}, {0.40, 0.1}};
  std::vector<Transmission> pairs = {{0, 1}, {2, 3}};
  InterferenceModel::Workspace ws;
  // Sensed energy between the two pairs' candidates is ≈ 100–190 units;
  // cca = 0.5 puts the threshold at 50: both pairs hear each other and
  // back off (the CCA pass is synchronous — both defer).
  SinrParams p;
  p.cca = 0.5;
  auto filtered = pairs;
  PhyStats stats;
  make_interference_model(PhyKind::kSinrCsma, 1.0, p)
      ->filter_pairs(pos, rt, filtered, ws, &stats);
  EXPECT_TRUE(filtered.empty());
  EXPECT_EQ(stats.csma_suppressed, 2u);
  EXPECT_EQ(stats.sinr_rejected, 0u);
  // A deaf threshold lets both through CCA, and the SINR stage keeps them
  // (signal 8000 vs noise+interference ≈ 225).
  p.cca = 1e6;
  filtered = pairs;
  PhyStats stats2;
  make_interference_model(PhyKind::kSinrCsma, 1.0, p)
      ->filter_pairs(pos, rt, filtered, ws, &stats2);
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(stats2.csma_suppressed, 0u);
}

}  // namespace
}  // namespace manetcap::phy
