// Property tests that validate the paper's lemmas and theorems empirically
// on sampled finite networks — the bridge between the analysis and the
// simulator. Each test names the statement it exercises.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/density.h"
#include "capacity/formulas.h"
#include "capacity/regimes.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "linkcap/measure.h"
#include "mobility/process.h"
#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "sched/sstar.h"
#include "sim/fluid.h"
#include "util/check.h"

namespace manetcap {
namespace {

net::ScalingParams strong_params(std::size_t n) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;
  p.phi = 0.0;
  return p;
}

net::ScalingParams clustered_params(std::size_t n, double alpha = 0.45,
                                    double M = 0.3, double R = 0.4) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = alpha;
  p.with_bs = true;
  p.K = 0.6;
  p.M = M;
  p.R = R;
  p.phi = 0.0;
  return p;
}

// ----------------------------------------------------- Theorem 1 / Def 8 --

TEST(Theorem1, StrongMobilityGivesUniformDensity) {
  auto p = strong_params(16384);
  ASSERT_EQ(capacity::classify(p), capacity::MobilityRegime::kStrong);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 1);
  auto field = analysis::compute_density_field(net.ms_home(), net.bs_pos(),
                                               net.shape(), p.f(), 24);
  // ρ bounded between positive constants: contrast is O(1).
  EXPECT_LT(field.contrast(), 5.0);
  EXPECT_GT(field.min, 0.1);
}

TEST(Theorem1, WeakMobilityViolatesUniformDensity) {
  auto p = clustered_params(16384);
  ASSERT_NE(capacity::classify(p), capacity::MobilityRegime::kStrong);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 2);
  auto field = analysis::compute_density_field(net.ms_home(), net.bs_pos(),
                                               net.shape(), p.f(), 24);
  EXPECT_GT(field.contrast(), 20.0);
}

// -------------------------------------------------------------- Lemma 1 --

TEST(Lemma1, TessellationCountsWithinConstantFactors) {
  // γ(n) = log m / m must be small for the (16+β)γ tessellation to have
  // multiple cells, so use many clusters (M close to 2R from below).
  auto p = clustered_params(1 << 20, 0.3, 0.55, 0.29);
  ASSERT_TRUE(p.assumption_violations().empty());
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 3);
  // |A| = (16+β)γ(n) with β = 1.
  const double cell_area = 17.0 * p.gamma();
  auto tess = geom::SquareTessellation::with_min_cell_area(cell_area);
  ASSERT_GE(tess.cells_per_side(), 2);

  std::vector<std::size_t> nm(tess.num_cells(), 0), nb(tess.num_cells(), 0);
  for (const auto& x : net.ms_home())
    ++nm[tess.index_of(tess.cell_of(x))];
  for (const auto& y : net.bs_pos()) ++nb[tess.index_of(tess.cell_of(y))];

  const double n_al = static_cast<double>(p.n) * tess.cell_area();
  const double k_al = static_cast<double>(p.k()) * tess.cell_area();
  for (int c = 0; c < tess.num_cells(); ++c) {
    EXPECT_GT(static_cast<double>(nm[c]), n_al / 4.0) << "cell " << c;
    EXPECT_LT(static_cast<double>(nm[c]), 4.0 * n_al) << "cell " << c;
    EXPECT_GT(static_cast<double>(nb[c]), k_al / 4.0) << "cell " << c;
    EXPECT_LT(static_cast<double>(nb[c]), 4.0 * k_al) << "cell " << c;
  }
}

// -------------------------------------------------------------- Lemma 3 --

TEST(Lemma3, BusyProbabilityBoundedBelowByConstant) {
  // Uniformly dense instance: every node is S*-scheduled a constant
  // fraction of time.
  net::ScalingParams p;
  p.n = 1024;
  p.alpha = 0.25;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 4);
  mobility::IidStationaryMobility process(net.ms_home(), net.shape(),
                                          1.0 / p.f(), 5);
  sched::SStarScheduler sstar(0.3, 1.0);
  auto busy = linkcap::measure_busy_probability(process, {}, sstar, 400);
  const double mean =
      std::accumulate(busy.begin(), busy.end(), 0.0) / busy.size();
  EXPECT_GT(mean, 0.01);
  // The constant does not degrade with n (spot-check a 4× larger net).
  net::ScalingParams p2 = p;
  p2.n = 4096;
  auto net2 = net::Network::build(p2, mobility::ShapeKind::kUniformDisk,
                                  net::BsPlacement::kUniform, 6);
  mobility::IidStationaryMobility process2(net2.ms_home(), net2.shape(),
                                           1.0 / p2.f(), 7);
  auto busy2 = linkcap::measure_busy_probability(process2, {}, sstar, 200);
  const double mean2 =
      std::accumulate(busy2.begin(), busy2.end(), 0.0) / busy2.size();
  EXPECT_GT(mean2, 0.01);
  EXPECT_LT(std::abs(std::log(mean / mean2)), std::log(2.5));
}

// ------------------------------------------------------------- Lemma 11 --

TEST(Lemma11, ChernoffClusterPopulations) {
  auto p = clustered_params(32768, 0.45, 0.3, 0.4);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 8);
  const std::size_t m = net.ms_layout().num_clusters();
  std::vector<std::size_t> ni(m, 0), ki(m, 0);
  for (auto c : net.ms_layout().cluster_of) ++ni[c];
  for (auto c : net.bs_cluster()) ++ki[c];
  const double n_per = static_cast<double>(p.n) / static_cast<double>(m);
  const double k_per = static_cast<double>(p.k()) / static_cast<double>(m);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_GT(static_cast<double>(ni[i]), 0.5 * n_per);
    EXPECT_LT(static_cast<double>(ni[i]), 1.5 * n_per);
    EXPECT_GT(static_cast<double>(ki[i]), 0.3 * k_per);
    EXPECT_LT(static_cast<double>(ki[i]), 2.0 * k_per);
  }
}

// ------------------------------------------------------------- Lemma 12 --

TEST(Lemma12, ClustersAreMutuallyNonInterfering) {
  // With R_T = r√(m/n) and disjoint clusters (M − 2R < 0), nodes of
  // different clusters sit beyond the (1+Δ)R_T guard reach w.h.p.
  auto p = clustered_params(16384, 0.45, 0.3, 0.4);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 9);
  const double m = static_cast<double>(p.m());
  const double rt = p.r() * std::sqrt(m / static_cast<double>(p.n));
  const double guard = (1.0 + 1.0) * rt;  // Δ = 1
  const double wobble = 2.0 * net.mobility_radius();

  // Cluster centers are uniform, so at finite n a few pairs can land close
  // (the lemma is a w.h.p. statement); require the violating fraction to
  // be a vanishing share of all pairs.
  const auto& layout = net.ms_layout();
  std::size_t pairs = 0, violations = 0;
  for (std::size_t a = 0; a < layout.num_clusters(); ++a) {
    for (std::size_t b = a + 1; b < layout.num_clusters(); ++b) {
      ++pairs;
      const double d = geom::torus_dist(layout.cluster_centers[a],
                                        layout.cluster_centers[b]);
      if (d <= 2.0 * layout.cluster_radius + wobble + guard) ++violations;
    }
  }
  EXPECT_LT(static_cast<double>(violations), 0.05 * static_cast<double>(pairs))
      << violations << " of " << pairs << " cluster pairs too close";
}

// -------------------------------------------------------- Proposition 1 --

TEST(Proposition1, ShapeIntegralScalesAsInverseFSquared) {
  mobility::Shape s(mobility::ShapeKind::kQuadratic);
  auto integral = [&s](double f) {
    // ∫_O s(f·‖Y − X‖) dY by midpoint quadrature around X = (0.5, 0.5).
    const int grid = 600;
    double acc = 0.0;
    for (int a = 0; a < grid; ++a) {
      for (int b = 0; b < grid; ++b) {
        const geom::Point y{(a + 0.5) / grid, (b + 0.5) / grid};
        acc += s.density(f * geom::torus_dist(y, {0.5, 0.5}));
      }
    }
    return acc / (grid * grid);
  };
  const double i4 = integral(4.0);
  const double i8 = integral(8.0);
  EXPECT_NEAR(i4 / i8, 4.0, 0.2);  // 1/f² law
}

// ----------------------------------------------- Theorem 2 (range choice) --

TEST(Theorem2, OversizedRangeCollapsesScheduling) {
  // R_T = ω(1/√n): the exclusion region covers many nodes and S* can
  // schedule almost nothing — the e^{−nR_T²} penalty of the proof.
  net::ScalingParams p;
  p.n = 2048;
  p.alpha = 0.2;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 10);
  mobility::IidStationaryMobility process(net.ms_home(), net.shape(),
                                          1.0 / p.f(), 11);
  sched::SStarScheduler good(0.3, 1.0);
  sched::SStarScheduler oversized(3.0, 1.0);  // 10× the optimal constant
  std::size_t good_pairs = 0, oversized_pairs = 0;
  for (int t = 0; t < 50; ++t) {
    const auto& pos = process.positions();
    good_pairs += good.feasible_pairs(pos).size();
    oversized_pairs += oversized.feasible_pairs(pos).size();
    process.step();
  }
  EXPECT_GT(good_pairs, 10 * std::max<std::size_t>(oversized_pairs, 1));
}

// -------------------------------------------- Theorem 6 (BS placement) ----

TEST(Theorem6, PlacementInvarianceInUniformlyDenseRegime) {
  auto p = strong_params(8192);
  rng::Xoshiro256 g(12);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeB b;
  std::vector<double> lambdas;
  for (auto placement :
       {net::BsPlacement::kClusteredMatched, net::BsPlacement::kUniform,
        net::BsPlacement::kRegularGrid}) {
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   placement, 13);
    auto r = b.evaluate(net, dest);
    ASSERT_GT(r.throughput.lambda, 0.0) << to_string(placement);
    lambdas.push_back(r.throughput.lambda);
  }
  const double lo = *std::min_element(lambdas.begin(), lambdas.end());
  const double hi = *std::max_element(lambdas.begin(), lambdas.end());
  EXPECT_LT(hi / lo, 2.5);  // order-equivalent
}

// ------------------------------------- Theorem 8 (static equivalence) ----

TEST(Theorem8, MobilityNegligibleAtTrivialScale) {
  // 4D/f(n) — the worst-case two-node closing speed — is a vanishing
  // fraction of the scheme C cell scale r√(m/k). α > ½ is required for
  // the trivial regime to be populated at all (see DESIGN.md).
  net::ScalingParams p;
  p.n = 65536;
  p.alpha = 0.75;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.2;
  p.R = 0.3;
  ASSERT_EQ(capacity::classify(p), capacity::MobilityRegime::kTrivial);
  const double cell_side =
      p.r() * std::sqrt(static_cast<double>(p.m()) /
                        static_cast<double>(p.k()));
  EXPECT_LT(4.0 * p.mobility_radius(), 0.5 * cell_side);
}

TEST(Theorem8, ScheduleFeasibilityPersistsUnderTrivialMobility) {
  // Build a protocol-feasible transmission set at t₀ with scheme-C-scale
  // ranges and margins of 4D/f, then let every node move for 200 slots:
  // the set must remain feasible at every instant — mobility is "trivial"
  // precisely because it cannot break a snapshot schedule (Theorem 8).
  net::ScalingParams p;
  p.n = 2048;
  p.alpha = 0.75;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.2;
  p.R = 0.3;
  ASSERT_EQ(capacity::classify(p), capacity::MobilityRegime::kTrivial);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 21);

  // Transmissions: each selected BS to its nearest MS; BSs chosen greedily
  // so selected transmitters are far apart relative to the range.
  geom::SpatialHash ms_hash(0.01, net.num_ms());
  ms_hash.build(net.ms_home());
  const double wobble = 4.0 * net.mobility_radius();
  std::vector<phy::Transmission> txs;
  std::vector<geom::Point> chosen_pos;
  double max_link = 0.0;
  // m = n^0.2 ≈ 5 clusters at this size, so only a handful of spatially
  // separated transmitters exist; one per cluster suffices for the check.
  for (std::uint32_t l = 0; l < net.num_bs() && txs.size() < 16; ++l) {
    const geom::Point y = net.bs_pos()[l];
    bool clear = true;
    for (const auto& cp : chosen_pos)
      if (geom::torus_dist(y, cp) < 0.12) clear = false;
    if (!clear) continue;
    const std::uint32_t i = ms_hash.nearest(y, ~std::uint32_t{0});
    if (i >= net.num_ms()) continue;
    const double d = geom::torus_dist(y, net.ms_home()[i]);
    max_link = std::max(max_link, d);
    // BS transmits (id offset n), MS receives.
    txs.push_back({static_cast<std::uint32_t>(net.num_ms()) + l, i});
    chosen_pos.push_back(y);
  }
  ASSERT_GE(txs.size(), 4u);

  const double rt = max_link + 2.0 * wobble;  // range with persistence margin
  phy::ProtocolModel pm(rt, 1.0);

  mobility::PullHomeMobility process(net.ms_home(), net.mobility_radius(),
                                     23);
  std::size_t feasible_slots = 0;
  const int slots = 200;
  for (int t = 0; t < slots; ++t) {
    std::vector<geom::Point> pos = process.positions();
    pos.insert(pos.end(), net.bs_pos().begin(), net.bs_pos().end());
    if (pm.feasible(pos, txs)) ++feasible_slots;
    process.step();
  }
  // Theorem 8 is a w.h.p. statement; at these margins it should hold at
  // every single slot.
  EXPECT_EQ(feasible_slots, static_cast<std::size_t>(slots));
}

// --------------------------------------- Theorems 3–5 (capacity orders) ----

TEST(Theorem3, SchemeAUpperBoundedByInverseF) {
  // λ·f stays bounded above by a constant across sizes (Lemma 4).
  routing::SchemeA a;
  for (std::size_t n : {4096u, 16384u}) {
    net::ScalingParams p;
    p.n = n;
    p.alpha = 0.35;
    p.with_bs = false;
    p.M = 1.0;
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 14);
    rng::Xoshiro256 g(15);
    auto dest = net::permutation_traffic(p.n, g);
    auto r = a.evaluate(net, dest);
    ASSERT_GT(r.throughput.lambda, 0.0);
    EXPECT_LT(r.throughput.lambda * p.f(), 1.0);
  }
}

TEST(Theorem5, HybridBeatsBothComponentsAlone) {
  // λ = Θ(1/f) + Θ(min(k²c/n, k/n)): the combined throughput is at least
  // each single-scheme throughput.
  sim::FluidOptions opt;
  opt.seed = 16;
  auto out = sim::evaluate_capacity(strong_params(8192), opt);
  sim::FluidOptions only_a = opt;
  only_a.force = sim::FluidOptions::ForceScheme::kA;
  sim::FluidOptions only_b = opt;
  only_b.force = sim::FluidOptions::ForceScheme::kB;
  const double la = sim::evaluate_capacity(strong_params(8192), only_a).lambda;
  const double lb = sim::evaluate_capacity(strong_params(8192), only_b).lambda;
  EXPECT_GE(out.lambda * 1.0000001, la);
  EXPECT_GE(out.lambda * 1.0000001, lb);
}

// --------------------------------- Remark 13 (clustering hurts, no BS) ----

TEST(Remark13, ClusteredNoBsCapacityDecaysFasterThanStrong) {
  // The gap Remark 13 describes is an *order* gap: the clustered no-BS
  // law n^{M/2−1} falls off much faster than the strong-mobility n^{−α}.
  // Compare decay factors over a 4× size change instead of raw values
  // (raw values at one n are constant-dominated).
  sim::FluidOptions opt;
  opt.seed = 17;
  auto decay = [&opt](net::ScalingParams p) {
    p.n = 8192;
    const double lo = sim::evaluate_capacity(p, opt).lambda;
    p.n = 32768;
    const double hi = sim::evaluate_capacity(p, opt).lambda;
    return lo / hi;  // > 1: capacity shrinks with n
  };
  // α = 0.3 keeps the uniform instance deep inside the uniformly dense
  // region at these finite sizes (f√γ ≪ 1); α near ½ is strong only
  // asymptotically.
  net::ScalingParams uniform;
  uniform.alpha = 0.3;
  uniform.with_bs = false;
  uniform.M = 1.0;
  auto clustered = clustered_params(0);
  clustered.with_bs = false;

  const double strong_decay = decay(uniform);      // ≈ 4^0.3 ≈ 1.5
  const double clustered_decay = decay(clustered); // ≈ 4^0.85 ≈ 3.2
  EXPECT_GT(strong_decay, 1.0);
  EXPECT_GT(clustered_decay, 1.3 * strong_decay);
}

}  // namespace
}  // namespace manetcap
