#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/density.h"
#include "analysis/loglog_fit.h"
#include "analysis/stats.h"
#include "mobility/home_points.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::analysis {
namespace {

// ----------------------------------------------------------- power law --

TEST(PowerLawFit, RecoversExactLaw) {
  std::vector<double> x, y;
  for (double v = 100.0; v <= 1e5; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.5 * std::pow(v, -0.5));
  }
  auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, -0.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.log_prefactor), 3.5, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.stderr_, 0.0, 1e-9);
}

TEST(PowerLawFit, PredictInterpolates) {
  std::vector<double> x{10, 100, 1000};
  std::vector<double> y{1.0, 0.1, 0.01};  // slope −1
  auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.predict(316.2), 0.0316, 0.001);
}

TEST(PowerLawFit, NoisyDataHasPositiveStderr) {
  rng::Xoshiro256 g(3);
  std::vector<double> x, y;
  for (double v = 64.0; v <= 65536.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(std::pow(v, -0.7) * std::exp(0.2 * rng::normal(g)));
  }
  auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, -0.7, 0.15);
  EXPECT_GT(fit.stderr_, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(PowerLawFit, RejectsBadInput) {
  EXPECT_THROW(fit_power_law({1, 2}, {1, 2}), manetcap::CheckError);
  EXPECT_THROW(fit_power_law({1, 2, 3}, {1, 2}), manetcap::CheckError);
  EXPECT_THROW(fit_power_law({1, 2, 3}, {1, 0.0, 2}), manetcap::CheckError);
  EXPECT_THROW(fit_power_law({1, 1, 1}, {1, 2, 3}), manetcap::CheckError);
}

// ---------------------------------------------------------------- stats --

TEST(Stats, SummaryBasics) {
  auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SingleValueHasZeroSpread) {
  auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), manetcap::CheckError);
}

TEST(Stats, Quantiles) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Stats, QuantileMatchesFullSortWithTies) {
  // The selection-based quantile must reproduce the full-sort reference
  // bit for bit, including on heavily tied data where nth_element's
  // partition order differs from a stable sort's.
  auto reference = [](std::vector<double> values, double p) {
    std::sort(values.begin(), values.end());
    const double pos = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  rng::Xoshiro256 g(31);
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    std::vector<double> v(n);
    for (double& x : v) {
      // Draw from a tiny support so duplicates dominate.
      x = static_cast<double>(
          static_cast<int>(rng::uniform01(g) * 7.0));
    }
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.77, 0.9, 0.95, 1.0}) {
      EXPECT_DOUBLE_EQ(quantile(v, p), reference(v, p))
          << "n=" << n << " p=" << p;
    }
  }
}

// -------------------------------------------------------------- density --

TEST(Density, UniformLayoutIsFlat) {
  rng::Xoshiro256 g(7);
  auto layout =
      mobility::place_home_points(20000, mobility::ClusterSpec::uniform(20000),
                                  g);
  mobility::Shape shape(mobility::ShapeKind::kUniformDisk);
  // f moderate: mobility disks overlap heavily → near-uniform ρ.
  auto field = compute_density_field(layout.points, {}, shape, 4.0, 16);
  EXPECT_LT(field.contrast(), 2.0);
  // E[ρ] = population · π/population = π for the 1/√pop probe radius.
  EXPECT_NEAR(field.mean, M_PI, 0.25);
}

TEST(Density, ClusteredLayoutWithTinyMobilityIsSpiky) {
  rng::Xoshiro256 g(11);
  auto layout =
      mobility::place_home_points(20000, mobility::ClusterSpec{5, 0.02}, g);
  mobility::Shape shape(mobility::ShapeKind::kUniformDisk);
  // Large f: mobility disk ≪ cluster separation → empty regions.
  auto field = compute_density_field(layout.points, {}, shape, 100.0, 16);
  EXPECT_GT(field.contrast(), 50.0);
}

TEST(Density, MobilitySmoothsClusters) {
  // Same clustered layout, strong mobility (small f) → flat again.
  rng::Xoshiro256 g(13);
  auto layout =
      mobility::place_home_points(20000, mobility::ClusterSpec{32, 0.05}, g);
  mobility::Shape shape(mobility::ShapeKind::kUniformDisk);
  auto spiky = compute_density_field(layout.points, {}, shape, 50.0, 12);
  auto smooth = compute_density_field(layout.points, {}, shape, 1.5, 12);
  EXPECT_LT(smooth.contrast(), spiky.contrast());
  EXPECT_LT(smooth.contrast(), 3.0);
}

TEST(Density, BsCountTowardDensity) {
  mobility::Shape shape(mobility::ShapeKind::kUniformDisk);
  std::vector<geom::Point> no_ms;
  std::vector<geom::Point> bs = {{0.5, 0.5}};
  auto field =
      compute_density_field(no_ms, bs, shape, 2.0, 8, /*probe_radius=*/0.2);
  // Probes within 0.2 of the BS see it.
  EXPECT_GT(field.max, 0.99);
  EXPECT_DOUBLE_EQ(field.min, 0.0);
}

TEST(Density, UniformDenseCheck) {
  DensityField f;
  f.grid = 2;
  f.rho = {1.0, 1.2, 0.9, 1.1};
  f.min = 0.9;
  f.max = 1.2;
  f.mean = 1.05;
  EXPECT_TRUE(is_uniformly_dense(f, 0.5, 2.0));
  EXPECT_FALSE(is_uniformly_dense(f, 0.95, 2.0));
  EXPECT_FALSE(is_uniformly_dense(f, 0.5, 1.1));
}

}  // namespace
}  // namespace manetcap::analysis
