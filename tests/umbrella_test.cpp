// Compile-level test: the umbrella header must expose the whole public
// API without conflicts, and a representative symbol from every layer must
// be usable through it alone.
#include "manetcap.h"

#include <gtest/gtest.h>

namespace manetcap {
namespace {

TEST(Umbrella, EveryLayerReachable) {
  // geom / rng
  EXPECT_NEAR(geom::torus_dist({0.1, 0.5}, {0.9, 0.5}), 0.2, 1e-12);
  rng::Xoshiro256 g(1);
  EXPECT_LT(rng::uniform01(g), 1.0);
  // mobility
  mobility::Shape shape(mobility::ShapeKind::kTriangular);
  EXPECT_GT(shape.eta0(), 0.0);
  // net
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.25;
  p.M = 1.0;
  EXPECT_GT(p.f(), 1.0);
  // phy / sched
  phy::ProtocolModel pm(0.1, 1.0);
  EXPECT_TRUE(pm.in_range({0.1, 0.1}, {0.15, 0.1}));
  sched::SStarScheduler sstar(0.3, 1.0);
  EXPECT_GT(sstar.range_for(100), 0.0);
  // linkcap
  linkcap::LinkCapacityModel mu(shape, 4.0, 1024);
  EXPECT_GT(mu.mu_ms_ms(0.0), 0.0);
  // backbone / flow
  backbone::GroupedBackbone bb({2, 2}, 1.0);
  bb.add_load(0, 1, 1.0);
  EXPECT_GT(bb.max_feasible_scale(), 0.0);
  flow::ConstraintSet cs;
  cs.add(flow::Resource::kAccess, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(cs.solve().lambda, 0.5);
  // capacity
  EXPECT_DOUBLE_EQ(capacity::mobility_exponent(0.3), -0.3);
  EXPECT_DOUBLE_EQ(capacity::recommended_phi(), 0.0);
  // analysis
  EXPECT_GT(analysis::gupta_kumar_range(100), 0.0);
  // routing + sim types exist
  routing::SchemeA a;
  (void)a;
  sim::FluidOptions opt;
  (void)opt;
}

}  // namespace
}  // namespace manetcap
