// Flow-level engine tests: rate-structure invariants, the audit identity,
// seed unification across engines, bottleneck propagation, forced-scheme
// degeneracy, and fluid-vs-packet cross-validation on the golden
// scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "net/traffic.h"
#include "rng/rng.h"
#include "routing/rate_structure.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "sim/engine.h"
#include "sim/fluid.h"
#include "sim/flowsim.h"
#include "sim/metrics.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "sim/trace.h"

namespace manetcap::sim {
namespace {

net::ScalingParams strong_params(std::size_t n, bool with_bs = true) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.35;
  p.with_bs = with_bs;
  p.K = 0.75;
  p.M = 1.0;
  p.phi = 0.0;
  return p;
}

net::ScalingParams trivial_params(std::size_t n) {
  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.75;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.2;
  p.R = 0.3;
  p.phi = 0.0;
  return p;
}

struct Instance {
  net::Network net;
  std::vector<std::uint32_t> dest;
};

Instance make_instance(const net::ScalingParams& p, net::BsPlacement place,
                       std::uint64_t seed) {
  auto net =
      net::Network::build(p, mobility::ShapeKind::kUniformDisk, place, seed);
  rng::Xoshiro256 g(traffic_seed(seed));
  auto dest = net::permutation_traffic(p.n, g);
  return {std::move(net), std::move(dest)};
}

/// Fills `rs` for the given flow scheme using the same dispatch FlowSim
/// runs, returning the evaluator's solver result.
flow::ThroughputResult fill_rates(const Instance& in, FlowScheme scheme,
                                  routing::RateStructure& rs) {
  switch (scheme) {
    case FlowScheme::kSchemeA:
      return routing::SchemeA()
          .evaluate(in.net, in.dest, nullptr, 1.0, &rs)
          .throughput;
    case FlowScheme::kTwoHop:
      return routing::TwoHopRelay().evaluate(in.net, in.dest, &rs).throughput;
    case FlowScheme::kSchemeB:
      return routing::SchemeB(routing::BsGrouping::kSquarelet)
          .evaluate(in.net, in.dest, nullptr, 1.0, &rs)
          .throughput;
    case FlowScheme::kSchemeC:
      return routing::SchemeC().evaluate(in.net, in.dest, &rs).throughput;
    case FlowScheme::kStaticMultihop:
      return routing::StaticMultihop()
          .evaluate(in.net, in.dest, &rs)
          .throughput;
  }
  return {};
}

struct SchemeCase {
  FlowScheme scheme;
  net::ScalingParams params;
  net::BsPlacement placement;
};

std::vector<SchemeCase> scheme_cases() {
  net::ScalingParams static_p = strong_params(1024, /*with_bs=*/false);
  static_p.alpha = 0.75;  // static baseline: mobility effectively off
  return {
      {FlowScheme::kSchemeA, strong_params(4096, /*with_bs=*/false),
       net::BsPlacement::kUniform},
      {FlowScheme::kTwoHop, strong_params(512, /*with_bs=*/false),
       net::BsPlacement::kUniform},
      {FlowScheme::kSchemeB, strong_params(1024),
       net::BsPlacement::kClusteredMatched},
      {FlowScheme::kSchemeC, trivial_params(1024),
       net::BsPlacement::kClusterGrid},
      {FlowScheme::kStaticMultihop, static_p, net::BsPlacement::kUniform},
  };
}

// ------------------------------------------------ rate-structure contract --

// The recorded incidence must reproduce the solver exactly: the min over
// served flows of the per-flow TDMA share (min over incident rows of
// cap/load) IS the solver's λ, and no constraint is oversubscribed by the
// recorded coefficients.
TEST(RateStructure, TdmaShareReproducesSolverLambda) {
  for (const auto& c : scheme_cases()) {
    Instance in = make_instance(c.params, c.placement, 7);
    routing::RateStructure rs;
    const auto tp = fill_rates(in, c.scheme, rs);
    ASSERT_EQ(rs.flow_start.size(), c.params.n + 1) << to_string(c.scheme);

    double min_share = std::numeric_limits<double>::infinity();
    std::size_t served = 0;
    for (std::uint32_t f = 0; f < c.params.n; ++f) {
      if (rs.flow_served[f] == 0) continue;
      ++served;
      double share = std::numeric_limits<double>::infinity();
      for (std::uint32_t j = rs.flow_start[f]; j < rs.flow_start[f + 1];
           ++j) {
        const auto& row = rs.constraints[rs.incid_cid[j]];
        share = std::min(share, row.capacity / row.unit_load);
      }
      min_share = std::min(min_share, share);
    }
    ASSERT_GT(served, 0u) << to_string(c.scheme);
    ASSERT_TRUE(std::isfinite(min_share)) << to_string(c.scheme);
    EXPECT_DOUBLE_EQ(min_share, tp.lambda) << to_string(c.scheme);

    // Σ_f coeff(f, c) ≤ unit_load(c) for every real (positive-capacity)
    // row: the recorded per-flow loads never exceed what the evaluator
    // charged the constraint.
    std::vector<double> coeff_sum(rs.constraints.size(), 0.0);
    for (std::uint32_t f = 0; f < c.params.n; ++f)
      for (std::uint32_t j = rs.flow_start[f]; j < rs.flow_start[f + 1];
           ++j)
        coeff_sum[rs.incid_cid[j]] += rs.incid_coeff[j];
    for (std::size_t cid = 0; cid < rs.constraints.size(); ++cid) {
      if (rs.constraints[cid].capacity <= 0.0) continue;
      EXPECT_LE(coeff_sum[cid],
                rs.constraints[cid].unit_load * (1.0 + 1e-9))
          << to_string(c.scheme) << " cid " << cid;
    }

    // Hops are at least 1 for every served flow; per-flow cids ascend.
    for (std::uint32_t f = 0; f < c.params.n; ++f) {
      if (rs.flow_served[f] == 0) continue;
      EXPECT_GE(rs.flow_hops[f], 1.0);
      for (std::uint32_t j = rs.flow_start[f] + 1;
           j < rs.flow_start[f + 1]; ++j)
        EXPECT_LT(rs.incid_cid[j - 1], rs.incid_cid[j]);
    }
  }
}

// ------------------------------------------------------- engine contract --

// injected == delivered + queued + dropped, for every scheme, by
// construction of the fluid advance — and the engine must agree with the
// evaluator's strict λ.
TEST(FlowSim, AuditIdentityHoldsForEveryScheme) {
  for (const auto& c : scheme_cases()) {
    Instance in = make_instance(c.params, c.placement, 11);
    FlowSimOptions opt;
    opt.scheme = c.scheme;
    opt.slots = 1500;
    opt.warmup = 300;
    Metrics m;
    opt.metrics = &m;
    const auto r = run_flow_sim(in.net, in.dest, opt);
    SCOPED_TRACE(to_string(c.scheme));
    EXPECT_FALSE(r.degenerate);
    EXPECT_GT(r.served_flows, 0u);
    EXPECT_GT(r.mean_flow_rate, 0.0);
    EXPECT_EQ(r.injected,
              r.delivered_lifetime + r.queued_end + r.dropped);
    EXPECT_GT(r.injected, 0u);
    EXPECT_EQ(m.count(Counter::kInjected), r.injected);
    EXPECT_EQ(m.count(Counter::kDelivered), r.delivered_lifetime);
    EXPECT_GT(r.state_bytes, 0u);
  }
}

// With water-filling off, the allocation is the pure TDMA share, whose
// minimum equals the solver λ — and on a wire-free scheme nothing throttles
// delivery, so the measured minimum rate IS λ (steady state: warmup exceeds
// every pipeline depth).
TEST(FlowSim, PureTdmaMinRateEqualsSolverLambda) {
  Instance in = make_instance(strong_params(4096, /*with_bs=*/false),
                              net::BsPlacement::kUniform, 5);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeA;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.maxmin_rounds = 0;
  const auto r = run_flow_sim(in.net, in.dest, opt);
  ASSERT_FALSE(r.degenerate);
  ASSERT_GT(r.lambda_strict, 0.0);
  EXPECT_EQ(r.served_flows, in.dest.size());
  EXPECT_NEAR(r.min_flow_rate, r.lambda_strict, 1e-12);
  // Water-filling only improves rates, and never below the TDMA floor.
  FlowSimOptions wf = opt;
  wf.maxmin_rounds = 4;
  const auto rw = run_flow_sim(in.net, in.dest, wf);
  EXPECT_GE(rw.mean_flow_rate, r.mean_flow_rate * (1.0 - 1e-12));
  EXPECT_GE(rw.min_flow_rate, r.min_flow_rate * (1.0 - 1e-12));
}

// ---------------------------------------------------- seed unification ----

// Same (seed) ⇒ same destination permutation in every engine. The fluid
// dispatcher used to draw from seed ^ 0xa5a5…, so fluid and SlotSim
// evaluated different flows for the same seed and cross-validation was
// meaningless.
TEST(TrafficSeed, FluidUsesCanonicalDerivation) {
  EXPECT_EQ(traffic_seed(2026), trial_seed(2026, 0, 1));

  const auto p = strong_params(512);
  Instance in = make_instance(p, net::BsPlacement::kClusteredMatched, 17);
  // evaluate_capacity builds the same network internally (same seed and
  // placement) and must land on the same permutation: forcing scheme B
  // must reproduce the direct evaluation on our dest bit for bit.
  FluidOptions opt;
  opt.seed = 17;
  opt.force = FluidOptions::ForceScheme::kB;
  const auto out = evaluate_capacity(in.net, opt);
  const auto direct = routing::SchemeB(routing::BsGrouping::kSquarelet)
                          .evaluate(in.net, in.dest);
  EXPECT_EQ(out.lambda, direct.throughput.lambda);
  EXPECT_EQ(out.bottleneck, direct.throughput.bottleneck);
}

// --------------------------------------------- bottleneck propagation ----

// The dispatcher must report the winning component's actual bottleneck —
// the strong-regime branch used to hard-code kWirelessRelay for the ad hoc
// side instead of propagating the evaluator's.
TEST(Fluid, BottleneckComesFromWinningComponent) {
  // Pure ad hoc strong regime: outcome must carry the ad hoc evaluator's
  // own bottleneck (two-hop fallback included), not an assumption.
  {
    const auto p = strong_params(4096, /*with_bs=*/false);
    Instance in = make_instance(p, net::BsPlacement::kUniform, 3);
    FluidOptions opt;
    opt.seed = 3;
    const auto out = evaluate_capacity(in.net, opt);
    const auto ra = routing::SchemeA().evaluate(in.net, in.dest);
    const auto& tp = ra.degenerate
                         ? routing::TwoHopRelay().evaluate(in.net, in.dest)
                               .throughput
                         : ra.throughput;
    EXPECT_EQ(out.bottleneck, tp.bottleneck);
    EXPECT_EQ(out.bottleneck_label, tp.bottleneck_label);
  }
  // Hybrid: whichever component carries the larger λ owns the bottleneck.
  {
    const auto p = strong_params(2048);
    Instance in = make_instance(p, net::BsPlacement::kClusteredMatched, 3);
    FluidOptions opt;
    opt.seed = 3;
    const auto out = evaluate_capacity(in.net, opt);
    const auto ra = routing::SchemeA().evaluate(in.net, in.dest);
    const auto la = ra.degenerate
                        ? routing::TwoHopRelay().evaluate(in.net, in.dest)
                              .throughput
                        : ra.throughput;
    const auto rb = routing::SchemeB(routing::BsGrouping::kSquarelet)
                        .evaluate(in.net, in.dest);
    const auto& want =
        la.lambda >= rb.throughput.lambda ? la : rb.throughput;
    EXPECT_EQ(out.bottleneck, want.bottleneck);
    EXPECT_EQ(out.bottleneck_label, want.bottleneck_label);
  }
}

// ------------------------------------------------- forced degeneracy ------

// Forcing an infrastructure scheme onto a BS-free network is a labeled
// λ = 0 outcome, not a crash and not silently-default numbers (the same
// contract the forced-A fix established for degenerate grids).
TEST(Fluid, ForcedInfraSchemeWithoutBsIsLabeledDegenerate) {
  const auto p = strong_params(512, /*with_bs=*/false);
  for (const auto force : {FluidOptions::ForceScheme::kB,
                           FluidOptions::ForceScheme::kC}) {
    FluidOptions opt;
    opt.seed = 9;
    opt.placement = net::BsPlacement::kUniform;
    opt.force = force;
    const auto out = evaluate_capacity(p, opt);
    EXPECT_EQ(out.lambda, 0.0);
    EXPECT_EQ(out.lambda_symmetric, 0.0);
    EXPECT_NE(out.scheme.find("degenerate"), std::string::npos)
        << out.scheme;
  }
  // Healthy counterparts still measure positive rates.
  for (const auto force : {FluidOptions::ForceScheme::kB,
                           FluidOptions::ForceScheme::kC}) {
    FluidOptions opt;
    opt.seed = 9;
    opt.force = force;
    if (force == FluidOptions::ForceScheme::kC)
      opt.placement = net::BsPlacement::kClusterGrid;
    const auto out = evaluate_capacity(
        force == FluidOptions::ForceScheme::kC ? trivial_params(2048)
                                               : strong_params(2048),
        opt);
    EXPECT_GT(out.lambda, 0.0) << out.scheme;
    EXPECT_EQ(out.scheme.find("degenerate"), std::string::npos)
        << out.scheme;
  }
}

// A degenerate FlowSim run (scheme A under the minimum grid) reports
// λ = 0 with the audit trivially conserved instead of faking a rate.
TEST(FlowSim, DegenerateSchemeAIsSurfaced) {
  net::ScalingParams p = strong_params(512, /*with_bs=*/false);
  p.alpha = 0.0;  // f(n) = 1: mobility spans the torus, grid collapses
  Instance in = make_instance(p, net::BsPlacement::kUniform, 21);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeA;
  const auto r = run_flow_sim(in.net, in.dest, opt);
  EXPECT_TRUE(r.degenerate);
  EXPECT_EQ(r.mean_flow_rate, 0.0);
  EXPECT_EQ(r.injected, 0u);
  EXPECT_EQ(r.queued_end, 0u);
}

// ------------------------------------------------- cross-validation ------

// Fluid vs packet on the four golden scenarios: identical instance and
// traffic (the byte-compared golden specs), mean rates within the
// per-scheme bands bench/flowsim_speed.cpp gates in CI. The packet engine
// is the ground truth; the flow engine is its scheduling relaxation.
TEST(FlowSim, CrossValidatesAgainstSlotSimOnGoldens) {
  struct Band {
    double lo, hi;
  };
  auto band_of = [](SlotScheme s) -> Band {
    switch (s) {
      case SlotScheme::kSchemeA:
        return {0.8, 4.0};
      case SlotScheme::kTwoHop:
        return {1.0, 12.0};
      case SlotScheme::kSchemeB:
        return {0.35, 2.5};
      case SlotScheme::kSchemeC:
        return {0.25, 2.0};
    }
    return {0.0, 1e9};
  };
  auto flow_scheme_of = [](SlotScheme s) {
    switch (s) {
      case SlotScheme::kSchemeA:
        return FlowScheme::kSchemeA;
      case SlotScheme::kTwoHop:
        return FlowScheme::kTwoHop;
      case SlotScheme::kSchemeB:
        return FlowScheme::kSchemeB;
      case SlotScheme::kSchemeC:
        return FlowScheme::kSchemeC;
    }
    return FlowScheme::kSchemeA;
  };
  for (const auto& spec : golden_trace_specs()) {
    SCOPED_TRACE(spec.name);
    const auto net =
        net::Network::build(spec.params, mobility::ShapeKind::kUniformDisk,
                            spec.placement, spec.net_seed);
    rng::Xoshiro256 g(spec.traffic_seed);
    const auto dest = net::permutation_traffic(spec.params.n, g);

    SlotSimOptions sopt;
    sopt.scheme = spec.scheme;
    sopt.slots = spec.slots;
    sopt.warmup = spec.warmup;
    sopt.seed = spec.sim_seed;
    const auto sres = run_slot_sim(net, dest, sopt);

    FlowSimOptions fopt;
    fopt.scheme = flow_scheme_of(spec.scheme);
    fopt.slots = spec.slots;
    fopt.warmup = spec.warmup;
    fopt.seed = spec.sim_seed;
    const auto fres = run_flow_sim(net, dest, fopt);

    ASSERT_GT(sres.mean_flow_rate, 0.0);
    ASSERT_GT(fres.mean_flow_rate, 0.0);
    const double ratio = fres.mean_flow_rate / sres.mean_flow_rate;
    const Band b = band_of(spec.scheme);
    EXPECT_GE(ratio, b.lo) << "fluid " << fres.mean_flow_rate << " slots "
                           << sres.mean_flow_rate;
    EXPECT_LE(ratio, b.hi) << "fluid " << fres.mean_flow_rate << " slots "
                           << sres.mean_flow_rate;
  }
}

// ------------------------------------------------------ engine plumbing --

TEST(Engine, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_engine("fluid"), EngineKind::kFluid);
  EXPECT_EQ(parse_engine("slots"), EngineKind::kSlots);
  EXPECT_EQ(parse_engine("auto"), EngineKind::kAuto);
  EXPECT_EQ(to_string(EngineKind::kFluid), "fluid");
  EXPECT_EQ(to_string(EngineKind::kSlots), "slots");
  EXPECT_EQ(to_string(EngineKind::kAuto), "auto");
  EXPECT_THROW(parse_engine("warp"), std::runtime_error);
}

// run_sweep through the fluid engine: positive, decreasing λ(n) with a
// valid fit — the flow engine is fast enough to sweep where SlotSim is
// not, and its curve must behave like a capacity law.
TEST(Engine, FluidSweepMeasuresDecreasingLambda) {
  net::ScalingParams base = strong_params(0);
  const std::vector<std::size_t> sizes = {1024, 2048, 4096};
  EngineOptions eopt;
  eopt.slots = 1200;
  eopt.warmup = 200;
  SweepOptions sopt;
  sopt.seed0 = 1;
  const auto sweep = run_sweep(base, sizes, 2,
                               make_engine_evaluator(EngineKind::kFluid,
                                                     eopt),
                               sopt);
  ASSERT_EQ(sweep.points.size(), sizes.size());
  for (const auto& pt : sweep.points) EXPECT_GT(pt.lambda_gm, 0.0);
  for (std::size_t i = 1; i < sweep.points.size(); ++i)
    EXPECT_LT(sweep.points[i].lambda_gm, sweep.points[i - 1].lambda_gm);
  EXPECT_TRUE(sweep.fit_valid);
  EXPECT_LT(sweep.fit.exponent, 0.0);
}

// kAuto resolves per instance: both arms measure a positive rate and the
// fluid arm is the one that carries large n.
TEST(Engine, AutoSelectsByInstanceSize) {
  EngineOptions eopt;
  eopt.slots = 600;
  eopt.warmup = 120;
  EvalContext small;
  small.params = strong_params(256);
  small.seed = trial_seed(1, 0, 0);
  EvalContext large;
  large.params = strong_params(2048);
  large.seed = trial_seed(1, 1, 0);
  const double r_small = measure_instance(EngineKind::kAuto, small, eopt);
  const double r_large = measure_instance(EngineKind::kAuto, large, eopt);
  EXPECT_GT(r_small, 0.0);
  EXPECT_GT(r_large, 0.0);
  // The fluid arm at n=2048 must match an explicit fluid measurement.
  EXPECT_EQ(r_large, measure_instance(EngineKind::kFluid, large, eopt));
}

TEST(FlowSimTraffic, DefaultSpecDemandsMatchDestPathExactly) {
  // A demand set drawn from the default TrafficSpec must take the legacy
  // arithmetic bit for bit: duty 1.0, start 0, unlimited size.
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 929);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 937;

  rng::Xoshiro256 g1(traffic_seed(opt.seed));
  const auto dest = net::permutation_traffic(p.n, g1);
  rng::Xoshiro256 g2(traffic_seed(opt.seed));
  const auto demands =
      net::make_traffic_model(net::TrafficSpec{})->draw(p.n, g2);
  ASSERT_EQ(net::dest_of(demands), dest);

  const auto a = run_flow_sim(net, dest, opt);
  const auto b = run_flow_sim(net, demands, opt);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered_lifetime, b.delivered_lifetime);
  EXPECT_EQ(a.queued_end, b.queued_end);
  EXPECT_DOUBLE_EQ(a.mean_flow_rate, b.mean_flow_rate);
  EXPECT_DOUBLE_EQ(a.min_flow_rate, b.min_flow_rate);
  EXPECT_DOUBLE_EQ(a.p10_flow_rate, b.p10_flow_rate);
}

TEST(FlowSimTraffic, DutyThinningCutsInjectedVolume) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 941);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 947;

  rng::Xoshiro256 g1(traffic_seed(opt.seed));
  const auto cbr =
      net::make_traffic_model(net::TrafficSpec{})->draw(p.n, g1);
  rng::Xoshiro256 g2(traffic_seed(opt.seed));
  const auto bursty =
      net::make_traffic_model(net::TrafficSpec::parse("onoff:50,150"))
          ->draw(p.n, g2);
  // Same destination draw, different decoration.
  ASSERT_EQ(net::dest_of(cbr), net::dest_of(bursty));

  const auto rc = run_flow_sim(net, cbr, opt);
  const auto rb = run_flow_sim(net, bursty, opt);
  // Duty 50/(50+150) = 1/4 thins every flow's offered rate; the injected
  // integral must drop strictly, and both audits must close.
  EXPECT_LT(rb.injected, rc.injected);
  EXPECT_EQ(rc.injected, rc.delivered_lifetime + rc.queued_end + rc.dropped);
  EXPECT_EQ(rb.injected, rb.delivered_lifetime + rb.queued_end + rb.dropped);
  EXPECT_LT(rb.mean_flow_rate, rc.mean_flow_rate);
}

TEST(FlowSimTraffic, FiniteSizesCapInjection) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 953);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 4000;
  opt.warmup = 400;
  opt.seed = 967;

  rng::Xoshiro256 g(traffic_seed(opt.seed));
  auto demands = net::make_traffic_model(net::TrafficSpec{})->draw(p.n, g);
  for (auto& d : demands) d.size = 2;  // two packets each, then silence
  const auto r = run_flow_sim(net, demands, opt);
  EXPECT_LE(r.injected, 2u * p.n);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
}

TEST(FlowSimTraffic, OutOfRangeDestIsANamedError) {
  auto p = strong_params(64);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 971);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 200;
  opt.warmup = 20;

  rng::Xoshiro256 g(traffic_seed(opt.seed));
  auto dest = net::permutation_traffic(p.n, g);
  dest[3] = static_cast<std::uint32_t>(p.n);
  try {
    run_flow_sim(net, dest, opt);
    FAIL() << "expected CheckError";
  } catch (const manetcap::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(FlowSimChurn, ConservationClosesAndLeaveGatesInjection) {
  auto p = strong_params(256);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 977);
  rng::Xoshiro256 g(983);
  const auto dest = net::permutation_traffic(p.n, g);

  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 2000;
  opt.warmup = 400;
  opt.seed = 991;
  Metrics m0;
  opt.metrics = &m0;
  const auto plain = run_flow_sim(net, dest, opt);

  const FaultPlan plan = FaultPlan::parse("leave@600:3; leave@700:12");
  opt.faults = &plan;
  Metrics m;
  opt.metrics = &m;
  const auto r = run_flow_sim(net, dest, opt);
  EXPECT_EQ(r.injected, r.delivered_lifetime + r.queued_end + r.dropped);
  EXPECT_EQ(m.count(Counter::kMsLeft), 2u);
  EXPECT_EQ(m.count(Counter::kDroppedMsChurn), r.dropped);
  // Departed sources stop injecting, so the churn run injects strictly
  // less fluid volume than the undisturbed one.
  EXPECT_LT(r.injected, plain.injected);
  EXPECT_GT(r.delivered_lifetime, 0u);
  // The fluid engine is deterministic: a repeat run is bit-identical.
  Metrics m2;
  opt.metrics = &m2;
  const auto r2 = run_flow_sim(net, dest, opt);
  EXPECT_EQ(r.injected, r2.injected);
  EXPECT_EQ(r.dropped, r2.dropped);
  EXPECT_DOUBLE_EQ(r.mean_flow_rate, r2.mean_flow_rate);
}

TEST(FlowSimChurn, RejectsInfraAndShiftPlans) {
  // The fluid engine has no per-slot geometry: BS outages, wire faults
  // and mobility shifts must be refused with a named error, not ignored.
  auto p = strong_params(64);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 997);
  rng::Xoshiro256 g(1009);
  const auto dest = net::permutation_traffic(p.n, g);
  FlowSimOptions opt;
  opt.scheme = FlowScheme::kSchemeB;
  opt.slots = 400;
  opt.warmup = 40;
  for (const char* spec : {"down@100:0", "shift@100:walk"}) {
    const FaultPlan plan = FaultPlan::parse(spec);
    opt.faults = &plan;
    try {
      run_flow_sim(net, dest, opt);
      FAIL() << "expected CheckError for " << spec;
    } catch (const manetcap::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("churn-only"), std::string::npos)
          << "got: " << e.what();
    }
  }
}

}  // namespace
}  // namespace manetcap::sim
