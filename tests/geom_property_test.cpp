// Property-based sweeps over the geometric substrate: metric axioms on the
// torus, H-V path invariants across grid sizes, spatial-hash consistency
// against a brute-force oracle, and hex-grid round-trips across scales.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/hex.h"
#include "geom/point.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "rng/rng.h"

namespace manetcap::geom {
namespace {

// ------------------------------------------------------- metric axioms --

TEST(TorusMetricProperty, AxiomsOnRandomTriples) {
  rng::Xoshiro256 g(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const Point a = rng::uniform_point(g);
    const Point b = rng::uniform_point(g);
    const Point c = rng::uniform_point(g);
    const double ab = torus_dist(a, b);
    const double ba = torus_dist(b, a);
    const double ac = torus_dist(a, c);
    const double cb = torus_dist(c, b);
    EXPECT_DOUBLE_EQ(ab, ba);                      // symmetry
    EXPECT_GE(ab, 0.0);                            // non-negativity
    EXPECT_LE(ab, ac + cb + 1e-12);                // triangle inequality
    EXPECT_LE(ab, std::sqrt(0.5) + 1e-12);         // diameter bound
  }
}

TEST(TorusMetricProperty, TranslationInvariance) {
  rng::Xoshiro256 g(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const Point a = rng::uniform_point(g);
    const Point b = rng::uniform_point(g);
    const Vec2 shift{rng::uniform01(g), rng::uniform01(g)};
    EXPECT_NEAR(torus_dist(a, b),
                torus_dist(a.displaced(shift), b.displaced(shift)), 1e-12);
  }
}

TEST(TorusMetricProperty, DisplacementComposition) {
  rng::Xoshiro256 g(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const Point p = rng::uniform_point(g);
    const Vec2 d1{rng::uniform(g, -0.3, 0.3), rng::uniform(g, -0.3, 0.3)};
    const Vec2 d2{rng::uniform(g, -0.3, 0.3), rng::uniform(g, -0.3, 0.3)};
    const Point q1 = p.displaced(d1).displaced(d2);
    const Point q2 = p.displaced(d1 + d2);
    EXPECT_NEAR(torus_dist(q1, q2), 0.0, 1e-12);
  }
}

// --------------------------------------------------- H-V path invariants --

class HvPathProperty : public ::testing::TestWithParam<int> {};

TEST_P(HvPathProperty, PathsAreShortestAndWellFormed) {
  const int g_side = GetParam();
  SquareTessellation t(g_side);
  rng::Xoshiro256 g(4);
  for (int trial = 0; trial < 300; ++trial) {
    Cell src{static_cast<int>(rng::uniform_index(g, g_side)),
             static_cast<int>(rng::uniform_index(g, g_side))};
    Cell dst{static_cast<int>(rng::uniform_index(g, g_side)),
             static_cast<int>(rng::uniform_index(g, g_side))};
    auto path = t.hv_path(src, dst);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    EXPECT_EQ(path.size(),
              static_cast<std::size_t>(t.hop_distance(src, dst)) + 1);
    // Unimodal: horizontal moves strictly precede vertical moves.
    bool vertical_started = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const bool is_vertical = path[i].col == path[i + 1].col;
      if (is_vertical) vertical_started = true;
      EXPECT_TRUE(!vertical_started || is_vertical)
          << "horizontal move after vertical at step " << i;
    }
    // No cell repeats (simple path).
    std::set<int> seen;
    for (const auto& c : path) EXPECT_TRUE(seen.insert(t.index_of(c)).second);
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, HvPathProperty,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

class TessellationRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TessellationRoundTrip, RandomPointsLandInTheirCell) {
  SquareTessellation t(GetParam());
  rng::Xoshiro256 g(5);
  for (int trial = 0; trial < 500; ++trial) {
    const Point p = rng::uniform_point(g);
    const Cell c = t.cell_of(p);
    // The point is inside [col/g, (col+1)/g) × [row/g, (row+1)/g).
    EXPECT_GE(p.x, static_cast<double>(c.col) / t.cells_per_side() - 1e-12);
    EXPECT_LT(p.x, static_cast<double>(c.col + 1) / t.cells_per_side());
    EXPECT_GE(p.y, static_cast<double>(c.row) / t.cells_per_side() - 1e-12);
    EXPECT_LT(p.y, static_cast<double>(c.row + 1) / t.cells_per_side());
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, TessellationRoundTrip,
                         ::testing::Values(1, 2, 7, 31, 100));

// ------------------------------------------------ spatial hash vs oracle --

struct HashCase {
  std::size_t n;
  double radius;
};

class SpatialHashOracle : public ::testing::TestWithParam<HashCase> {};

TEST_P(SpatialHashOracle, MatchesBruteForce) {
  const auto [n, radius] = GetParam();
  rng::Xoshiro256 g(6);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = rng::uniform_point(g);
  SpatialHash hash(radius, n);
  hash.build(pts);

  for (int probe = 0; probe < 30; ++probe) {
    const Point c = rng::uniform_point(g);
    auto got = hash.query_disk(c, radius);
    std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got.size(), got_set.size()) << "duplicate ids reported";
    std::set<std::uint32_t> want;
    for (std::uint32_t i = 0; i < n; ++i)
      if (torus_dist(c, pts[i]) <= radius) want.insert(i);
    EXPECT_EQ(got_set, want) << "n=" << n << " r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpatialHashOracle,
    ::testing::Values(HashCase{10, 0.05}, HashCase{100, 0.02},
                      HashCase{100, 0.3}, HashCase{1000, 0.01},
                      HashCase{1000, 0.45}, HashCase{5000, 0.004},
                      HashCase{64, 0.7}));

TEST(SpatialHashProperty, QueryRadiusLargerThanHint) {
  // Queries may use radii different from the construction hint.
  rng::Xoshiro256 g(7);
  std::vector<Point> pts(500);
  for (auto& p : pts) p = rng::uniform_point(g);
  SpatialHash hash(0.01, pts.size());
  hash.build(pts);
  for (double r : {0.05, 0.2, 0.5}) {
    std::size_t want = 0;
    const Point c{0.4, 0.6};
    for (const auto& p : pts)
      if (torus_dist(c, p) <= r) ++want;
    EXPECT_EQ(hash.count_in_disk(c, r), want) << "r=" << r;
  }
}

TEST(SpatialHashProperty, RebuildReplacesContents) {
  SpatialHash hash(0.1);
  hash.build({{0.1, 0.1}});
  EXPECT_EQ(hash.count_in_disk({0.1, 0.1}, 0.01), 1u);
  hash.build({{0.9, 0.9}, {0.8, 0.8}});
  EXPECT_EQ(hash.size(), 2u);
  EXPECT_EQ(hash.count_in_disk({0.1, 0.1}, 0.01), 0u);
}

// --------------------------------------------- incremental maintenance --

TEST(SpatialHashMove, AcrossBucketBoundary) {
  // radius_hint 0.1 → 10 buckets per side: (0.05, 0.05) and (0.55, 0.55)
  // are far apart in bucket space.
  SpatialHash hash(0.1);
  hash.build({{0.05, 0.05}, {0.95, 0.5}});
  ASSERT_EQ(hash.count_in_disk({0.05, 0.05}, 0.02), 1u);

  hash.move(0, {0.05, 0.05}, {0.55, 0.55});
  EXPECT_EQ(hash.count_in_disk({0.05, 0.05}, 0.02), 0u);
  EXPECT_EQ(hash.count_in_disk({0.55, 0.55}, 0.02), 1u);
  EXPECT_EQ(hash.point(0).x, 0.55);
  // The unmoved point is unaffected.
  EXPECT_EQ(hash.count_in_disk({0.95, 0.5}, 0.02), 1u);
}

TEST(SpatialHashMove, TorusWrap) {
  SpatialHash hash(0.1);
  hash.build({{0.995, 0.5}});
  // Wrap across the x = 1 seam: old and new positions are 0.01 apart on
  // the torus but land in the first/last bucket columns.
  hash.move(0, {0.995, 0.5}, {0.005, 0.5});
  EXPECT_EQ(hash.count_in_disk({0.005, 0.5}, 0.001), 1u);
  EXPECT_EQ(hash.count_in_disk({0.995, 0.5}, 0.011), 1u);  // still close
  EXPECT_EQ(hash.count_in_disk({0.995, 0.5}, 0.001), 0u);
}

TEST(SpatialHashMove, NoOpMoveWithinBucketUpdatesPosition) {
  SpatialHash hash(0.1);
  hash.build({{0.51, 0.51}});
  // Same bucket — no relinking — but the stored position must refine.
  hash.move(0, {0.51, 0.51}, {0.52, 0.52});
  EXPECT_EQ(hash.count_in_disk({0.52, 0.52}, 1e-6), 1u);
  EXPECT_EQ(hash.count_in_disk({0.51, 0.51}, 1e-6), 0u);
  // Moving a point onto its existing position is also fine.
  hash.move(0, {0.52, 0.52}, {0.52, 0.52});
  EXPECT_EQ(hash.count_in_disk({0.52, 0.52}, 1e-6), 1u);
}

TEST(SpatialHashMove, NearestAndExcludeAfterMoves) {
  SpatialHash hash(0.05);
  hash.build({{0.1, 0.1}, {0.2, 0.2}, {0.8, 0.8}});
  hash.move(2, {0.8, 0.8}, {0.11, 0.1});  // now the closest to (0.1, 0.1)
  EXPECT_EQ(hash.nearest({0.1, 0.1}), 0u);
  EXPECT_EQ(hash.nearest({0.1, 0.1}, 0), 2u);
  // kNone as `exclude` excludes nothing; a single-point index excluding
  // that point yields kNone.
  EXPECT_EQ(hash.nearest({0.12, 0.1}, SpatialHash::kNone), 2u);
  SpatialHash lone(0.1);
  lone.build({{0.3, 0.3}});
  lone.move(0, {0.3, 0.3}, {0.6, 0.6});
  EXPECT_EQ(lone.nearest({0.3, 0.3}, 0), SpatialHash::kNone);
}

TEST(SpatialHashMove, RandomWalkMatchesFreshBuildOracle) {
  // After arbitrary interleavings of boundary-crossing and in-bucket
  // moves, every disk query must agree (as an id set) with a hash freshly
  // built from the current positions.
  rng::Xoshiro256 g(99);
  const std::size_t n = 300;
  const double radius = 0.06;
  std::vector<Point> pts(n);
  for (auto& p : pts) p = rng::uniform_point(g);
  SpatialHash inc(radius, n);
  inc.build(pts);

  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t id = 0; id < n; ++id) {
      if (rng::uniform01(g) < 0.5) continue;  // unmoved points must persist
      Point next = pts[id];
      // Mix of tiny (same-bucket) and large (multi-bucket, often wrapping)
      // displacements.
      const double step = rng::uniform01(g) < 0.5 ? 0.004 : 0.3;
      next.x = wrap01(next.x + (rng::uniform01(g) - 0.5) * step);
      next.y = wrap01(next.y + (rng::uniform01(g) - 0.5) * step);
      inc.move(id, pts[id], next);
      pts[id] = next;
    }
    SpatialHash fresh(radius, n);
    fresh.build(pts);
    for (int probe = 0; probe < 20; ++probe) {
      const Point c = rng::uniform_point(g);
      auto got = inc.query_disk(c, radius);
      auto want = fresh.query_disk(c, radius);
      std::set<std::uint32_t> got_set(got.begin(), got.end());
      std::set<std::uint32_t> want_set(want.begin(), want.end());
      EXPECT_EQ(got.size(), got_set.size()) << "duplicate ids after moves";
      EXPECT_EQ(got_set, want_set) << "round " << round;
    }
  }
}

// ------------------------------------------------------- hex round trips --

class HexRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(HexRoundTrip, RandomOffsetsMapToNearestCenter) {
  const double side = GetParam();
  HexGrid grid(side);
  rng::Xoshiro256 g(8);
  for (int trial = 0; trial < 400; ++trial) {
    const Vec2 v{rng::uniform(g, -6.0 * side, 6.0 * side),
                 rng::uniform(g, -6.0 * side, 6.0 * side)};
    const Hex h = grid.cell_of(v);
    // v must be within one circumradius (= side) of its cell center, and
    // no neighbor center may be strictly closer.
    const double d_own = (grid.center(h) - v).norm();
    EXPECT_LE(d_own, side + 1e-9);
    for (const Hex nb : grid.neighbors(h)) {
      EXPECT_GE((grid.center(nb) - v).norm(), d_own - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, HexRoundTrip,
                         ::testing::Values(0.001, 0.02, 0.5, 3.0));

TEST(HexProperty, DistanceIsAMetric) {
  HexGrid grid(1.0);
  rng::Xoshiro256 g(9);
  for (int trial = 0; trial < 500; ++trial) {
    auto rnd = [&g]() {
      return Hex{static_cast<int>(rng::uniform_index(g, 21)) - 10,
                 static_cast<int>(rng::uniform_index(g, 21)) - 10};
    };
    const Hex a = rnd(), b = rnd(), c = rnd();
    EXPECT_EQ(grid.distance(a, b), grid.distance(b, a));
    EXPECT_LE(grid.distance(a, b),
              grid.distance(a, c) + grid.distance(c, b));
    EXPECT_EQ(grid.distance(a, a), 0);
  }
}

}  // namespace
}  // namespace manetcap::geom
