// Edge-case and robustness tests for the routing schemes: tiny networks,
// single-BS systems, strict coverage mode, degenerate clusters — the
// failure-injection side of the suite.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"
#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::routing {
namespace {

std::vector<std::uint32_t> traffic_for(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  return net::permutation_traffic(n, g);
}

// ------------------------------------------------------- tiny networks --

TEST(EdgeCases, TwoNodeNetworkTwoHop) {
  net::ScalingParams p;
  p.n = 2;
  p.alpha = 0.0;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 1);
  TwoHopRelay th;
  auto r = th.evaluate(net, {1, 0});
  // Direct contact only (no third node to relay); capacity positive since
  // the mobility disks cover the torus.
  EXPECT_GT(r.throughput.lambda, 0.0);
}

TEST(EdgeCases, TinyNetworkSchemeADegenerates) {
  net::ScalingParams p;
  p.n = 8;
  p.alpha = 0.1;  // f ≈ 1.2: grid cannot reach kMinGrid
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 2);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(8, 3));
  EXPECT_TRUE(r.degenerate);
  EXPECT_DOUBLE_EQ(r.throughput.lambda, 0.0);
}

TEST(EdgeCases, SingleBaseStationSchemeB) {
  net::ScalingParams p;
  p.n = 64;
  p.alpha = 0.0;  // everyone can reach the single BS
  p.with_bs = true;
  p.K = 0.0;      // k = 1
  p.M = 1.0;
  p.phi = 0.0;
  ASSERT_EQ(p.k(), 1u);
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 4);
  SchemeB b;
  auto r = b.evaluate(net, traffic_for(64, 5));
  // One BS, one squarelet group: no wires needed, access only.
  EXPECT_GT(r.throughput.lambda, 0.0);
  EXPECT_EQ(r.throughput.bottleneck, flow::Resource::kAccess);
}

TEST(EdgeCases, SingleBaseStationSchemeC) {
  net::ScalingParams p;
  p.n = 64;
  p.alpha = 0.0;
  p.with_bs = true;
  p.K = 0.0;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 6);
  SchemeC c;
  auto r = c.evaluate(net, traffic_for(64, 7));
  EXPECT_GT(r.throughput.lambda, 0.0);
  // All 64 MSs share the one cell.
  EXPECT_DOUBLE_EQ(r.max_cell_population, 64.0);
}

// --------------------------------------------------- coverage handling --

TEST(EdgeCases, StrictCoverageZeroesOutUncoveredInstances) {
  // Large f with few BSs: many MSs see no BS. Strict mode must report 0.
  net::ScalingParams p;
  p.n = 1024;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.3;  // k = 8: hopeless coverage at f ≈ 23
  p.M = 1.0;
  p.phi = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 8);
  auto dest = traffic_for(1024, 9);
  SchemeB strict(BsGrouping::kSquarelet, /*strict_coverage=*/true);
  SchemeB lenient(BsGrouping::kSquarelet, /*strict_coverage=*/false);
  auto rs = strict.evaluate(net, dest);
  auto rl = lenient.evaluate(net, dest);
  ASSERT_GT(rs.unreachable_ms, 0u);
  EXPECT_DOUBLE_EQ(rs.throughput.lambda, 0.0);
  // Lenient mode serves the covered subset.
  EXPECT_GT(rl.mean_access_rate, 0.0);
}

TEST(EdgeCases, SchemeCReportsClustersWithoutBs) {
  // Force a cluster/BS mismatch: more clusters than BSs.
  net::ScalingParams p;
  p.n = 512;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.25;  // k = 5
  p.M = 0.5;   // m = 23 > k: some clusters must be empty
  p.R = 0.35;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 10);
  SchemeC c;
  auto r = c.evaluate(net, traffic_for(512, 11));
  EXPECT_GT(r.ms_without_bs, 0u);
  EXPECT_DOUBLE_EQ(r.throughput.lambda, 0.0);
}

// -------------------------------------------------- shape insensitivity --

class SchemeAShapeInvariance
    : public ::testing::TestWithParam<mobility::ShapeKind> {};

TEST_P(SchemeAShapeInvariance, ThroughputOrderIndependentOfShape) {
  // Lemma 2 / Corollary 1: the capacity order depends on s(·) only through
  // constants. All three shapes must land within a small factor.
  net::ScalingParams p;
  p.n = 4096;
  p.alpha = 0.3;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, GetParam(),
                                 net::BsPlacement::kUniform, 12);
  SchemeA a;
  auto r = a.evaluate(net, traffic_for(4096, 13));
  ASSERT_FALSE(r.degenerate);
  // Reference envelope established against the uniform-disk run.
  EXPECT_GT(r.lambda_symmetric, 1e-4);
  EXPECT_LT(r.lambda_symmetric, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SchemeAShapeInvariance,
                         ::testing::Values(mobility::ShapeKind::kUniformDisk,
                                           mobility::ShapeKind::kTriangular,
                                           mobility::ShapeKind::kQuadratic));

// --------------------------------------------------- placement variants --

TEST(EdgeCases, ClusterGridPlacementPutsBsInClusters) {
  net::ScalingParams p;
  p.n = 2048;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 0.3;
  p.R = 0.4;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 14);
  const auto& layout = net.ms_layout();
  ASSERT_EQ(net.num_bs(), p.k());
  for (std::size_t j = 0; j < net.num_bs(); ++j) {
    const auto c = net.bs_cluster()[j];
    ASSERT_LT(c, layout.num_clusters());
    EXPECT_LE(geom::torus_dist(net.bs_pos()[j], layout.cluster_centers[c]),
              layout.cluster_radius + 1e-9)
        << "BS " << j;
  }
  // Quota split: every cluster holds ⌊k/m⌋ or ⌈k/m⌉ BSs.
  std::vector<std::size_t> per_cluster(layout.num_clusters(), 0);
  for (auto c : net.bs_cluster()) ++per_cluster[c];
  const std::size_t lo = p.k() / layout.num_clusters();
  for (auto cnt : per_cluster) {
    EXPECT_GE(cnt, lo);
    EXPECT_LE(cnt, lo + 1);
  }
}

TEST(EdgeCases, ClusterGridRejectsClusterFreeLayouts) {
  net::ScalingParams p;
  p.n = 256;
  p.alpha = 0.2;
  p.with_bs = true;
  p.K = 0.5;
  p.M = 1.0;  // cluster-free
  EXPECT_THROW(net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusterGrid, 15),
               manetcap::CheckError);
}

TEST(EdgeCases, ClusterGridBsSeparationIsRegular) {
  // Hex-lattice placement: within a cluster, the closest BS pair is far
  // closer to uniform spacing than random placement would give.
  net::ScalingParams p;
  p.n = 2048;
  p.alpha = 0.45;
  p.with_bs = true;
  p.K = 0.65;
  p.M = 0.25;
  p.R = 0.4;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusterGrid, 16);
  // Minimum pairwise distance among BSs of the same cluster should be
  // bounded below by ~0.8× the hex spacing (no collapsed pairs).
  const auto m = net.ms_layout().num_clusters();
  std::vector<std::vector<std::uint32_t>> by_cluster(m);
  for (std::uint32_t j = 0; j < net.num_bs(); ++j)
    by_cluster[net.bs_cluster()[j]].push_back(j);
  for (const auto& members : by_cluster) {
    if (members.size() < 2) continue;
    const double quota = static_cast<double>(members.size());
    const double expected_spacing =
        std::sqrt(M_PI * net.ms_layout().cluster_radius *
                  net.ms_layout().cluster_radius / quota);
    double min_d = 1.0;
    for (std::size_t a = 0; a < members.size(); ++a)
      for (std::size_t b = a + 1; b < members.size(); ++b)
        min_d = std::min(min_d,
                         geom::torus_dist(net.bs_pos()[members[a]],
                                          net.bs_pos()[members[b]]));
    EXPECT_GT(min_d, 0.5 * expected_spacing);
  }
}

// ------------------------------------------------------ input contracts --

TEST(EdgeCases, MismatchedTrafficLengthRejected) {
  net::ScalingParams p;
  p.n = 128;
  p.alpha = 0.25;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 17);
  std::vector<std::uint32_t> short_dest(64, 0);
  SchemeA a;
  EXPECT_THROW(a.evaluate(net, short_dest), manetcap::CheckError);
  TwoHopRelay th;
  EXPECT_THROW(th.evaluate(net, short_dest), manetcap::CheckError);
  StaticMultihop sm;
  EXPECT_THROW(sm.evaluate(net, short_dest), manetcap::CheckError);
}

TEST(EdgeCases, StaticMultihopRejectsBadConstants) {
  EXPECT_THROW(StaticMultihop(0.5, 1.0), manetcap::CheckError);
  EXPECT_THROW(StaticMultihop(2.0, -0.1), manetcap::CheckError);
  EXPECT_NO_THROW(StaticMultihop(1.0, 0.0));
}

}  // namespace
}  // namespace manetcap::routing
