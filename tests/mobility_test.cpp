#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>

#include "mobility/home_points.h"
#include "mobility/process.h"
#include "mobility/shape.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::mobility {
namespace {

// ---------------------------------------------------------------- shape --

class ShapeFamilies : public ::testing::TestWithParam<ShapeKind> {};

TEST_P(ShapeFamilies, DensityNonIncreasingWithFiniteSupport) {
  Shape s(GetParam(), 1.0);
  double prev = s.density(0.0);
  EXPECT_GT(prev, 0.0);
  for (double d = 0.05; d <= 1.3; d += 0.05) {
    double cur = s.density(d);
    EXPECT_LE(cur, prev + 1e-12) << "at d=" << d;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(s.density(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.density(2.0), 0.0);
}

TEST_P(ShapeFamilies, NormalizationMatchesNumericIntegral) {
  Shape s(GetParam(), 0.7);
  // Numeric radial integral ∫ s(t)·2πt dt.
  double acc = 0.0;
  const int steps = 20000;
  const double h = 0.7 / steps;
  for (int i = 0; i < steps; ++i) {
    const double t = (i + 0.5) * h;
    acc += s.density(t) * 2.0 * M_PI * t * h;
  }
  EXPECT_NEAR(s.normalization(), acc, acc * 1e-3);
}

TEST_P(ShapeFamilies, SampledRadiusMatchesDensity) {
  Shape s(GetParam(), 1.0);
  rng::Xoshiro256 g(5);
  // Empirical CDF at r=0.5 vs analytic mass fraction.
  const int trials = 200000;
  int within = 0;
  for (int i = 0; i < trials; ++i)
    if (s.sample_displacement(g).norm() <= 0.5) ++within;

  double mass = 0.0;
  const int steps = 5000;
  for (int i = 0; i < steps; ++i) {
    const double t = (i + 0.5) * (0.5 / steps);
    mass += s.density(t) * 2.0 * M_PI * t * (0.5 / steps);
  }
  mass /= s.normalization();
  EXPECT_NEAR(within / static_cast<double>(trials), mass, 0.01);
}

TEST_P(ShapeFamilies, SampleDirectionIsIsotropic) {
  Shape s(GetParam(), 1.0);
  rng::Xoshiro256 g(7);
  int right = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    if (s.sample_displacement(g).x > 0.0) ++right;
  EXPECT_NEAR(right / static_cast<double>(trials), 0.5, 0.01);
}

TEST_P(ShapeFamilies, EtaNonIncreasingWithDoubleSupport) {
  Shape s(GetParam(), 1.0);
  double prev = s.eta(0.0);
  EXPECT_GT(prev, 0.0);
  for (double x = 0.1; x <= 2.2; x += 0.1) {
    double cur = s.eta(x);
    EXPECT_LE(cur, prev + 1e-9) << "at x=" << x;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(s.eta(2.0), 0.0);
  EXPECT_DOUBLE_EQ(s.eta(3.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ShapeFamilies,
                         ::testing::Values(ShapeKind::kUniformDisk,
                                           ShapeKind::kTriangular,
                                           ShapeKind::kQuadratic),
                         [](const auto& param_info) {
                           return to_string(param_info.param) ==
                                          "uniform-disk"
                                      ? std::string("UniformDisk")
                                  : to_string(param_info.param) ==
                                          "triangular"
                                      ? std::string("Triangular")
                                      : std::string("Quadratic");
                         });

TEST(Shape, UniformDiskEtaIsLensArea) {
  // For s = 1 on a disk of radius D, η(x) is exactly the two-disk lens.
  Shape s(ShapeKind::kUniformDisk, 1.0);
  for (double x : {0.0, 0.3, 0.8, 1.2, 1.7}) {
    EXPECT_NEAR(s.eta(x), disk_lens_area(1.0, x),
                0.02 * disk_lens_area(1.0, 0.0))
        << "at x=" << x;
  }
}

TEST(Shape, DiskLensAreaEdgeCases) {
  EXPECT_NEAR(disk_lens_area(1.0, 0.0), M_PI, 1e-12);
  EXPECT_DOUBLE_EQ(disk_lens_area(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(disk_lens_area(1.0, 5.0), 0.0);
  EXPECT_GT(disk_lens_area(1.0, 1.0), 0.0);
}

TEST(Shape, SupportScalesFamilies) {
  Shape small(ShapeKind::kTriangular, 0.5);
  EXPECT_DOUBLE_EQ(small.support(), 0.5);
  EXPECT_DOUBLE_EQ(small.density(0.6), 0.0);
  EXPECT_GT(small.density(0.4), 0.0);
}

TEST(Shape, InvalidSupportThrows) {
  EXPECT_THROW(Shape(ShapeKind::kUniformDisk, 0.0), CheckError);
  EXPECT_THROW(Shape(ShapeKind::kUniformDisk, -1.0), CheckError);
}

// ---------------------------------------------------------- home points --

TEST(HomePoints, UniformLayoutIsBijective) {
  rng::Xoshiro256 g(11);
  auto layout = place_home_points(100, ClusterSpec::uniform(100), g);
  EXPECT_EQ(layout.points.size(), 100u);
  EXPECT_EQ(layout.num_clusters(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(layout.cluster_of[i], i);
  }
  // No two nodes coincide.
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = i + 1; j < 100; ++j)
      EXPECT_GT(geom::torus_dist(layout.points[i], layout.points[j]), 0.0);
}

TEST(HomePoints, ClusteredPointsStayInClusterDisk) {
  rng::Xoshiro256 g(13);
  ClusterSpec spec{8, 0.03};
  auto layout = place_home_points(400, spec, g);
  for (std::uint32_t i = 0; i < 400; ++i) {
    const auto c = layout.cluster_of[i];
    ASSERT_LT(c, 8u);
    EXPECT_LE(geom::torus_dist(layout.points[i],
                               layout.cluster_centers[c]),
              0.03 + 1e-12);
  }
}

TEST(HomePoints, ClustersRoughlyBalanced) {
  rng::Xoshiro256 g(17);
  auto layout = place_home_points(8000, ClusterSpec{8, 0.02}, g);
  auto members = layout.members_by_cluster();
  for (const auto& ms : members) {
    // Chernoff (Lemma 11): within a factor ~(1±ε) of n/m.
    EXPECT_GT(ms.size(), 700u);
    EXPECT_LT(ms.size(), 1300u);
  }
}

TEST(HomePoints, MembersByClusterPartitions) {
  rng::Xoshiro256 g(19);
  auto layout = place_home_points(300, ClusterSpec{5, 0.05}, g);
  auto members = layout.members_by_cluster();
  std::size_t total = 0;
  for (const auto& ms : members) total += ms.size();
  EXPECT_EQ(total, 300u);
}

TEST(HomePoints, PlaceInClustersReusesCenters) {
  rng::Xoshiro256 g(23);
  std::vector<geom::Point> centers = {{0.2, 0.2}, {0.8, 0.8}};
  auto layout = place_in_clusters(50, centers, 0.01, g);
  EXPECT_EQ(layout.cluster_centers.size(), 2u);
  for (std::uint32_t i = 0; i < 50; ++i)
    EXPECT_LE(geom::torus_dist(layout.points[i],
                               centers[layout.cluster_of[i]]),
              0.011);
}

// -------------------------------------------------------------- process --

TEST(IidMobility, StationaryWithinMobilityDisk) {
  rng::Xoshiro256 g(29);
  auto layout = place_home_points(50, ClusterSpec::uniform(50), g);
  Shape shape(ShapeKind::kUniformDisk, 1.0);
  const double inv_f = 0.05;
  IidStationaryMobility mob(layout.points, shape, inv_f, 31);
  for (int t = 0; t < 20; ++t) {
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_LE(geom::torus_dist(mob.positions()[i], layout.points[i]),
                inv_f + 1e-12);
    }
    mob.step();
  }
}

TEST(IidMobility, StepsAreIndependentDraws) {
  Shape shape(ShapeKind::kUniformDisk, 1.0);
  IidStationaryMobility mob({{0.5, 0.5}}, shape, 0.1, 37);
  geom::Point p0 = mob.positions()[0];
  mob.step();
  geom::Point p1 = mob.positions()[0];
  EXPECT_GT(geom::torus_dist(p0, p1), 0.0);
}

TEST(BoundedRandomWalk, NeverLeavesDisk) {
  rng::Xoshiro256 g(41);
  auto layout = place_home_points(20, ClusterSpec::uniform(20), g);
  const double radius = 0.07;
  BoundedRandomWalk walk(layout.points, radius, 43);
  for (int t = 0; t < 200; ++t) {
    walk.step();
    for (std::size_t i = 0; i < 20; ++i)
      EXPECT_LE(geom::torus_dist(walk.positions()[i], layout.points[i]),
                radius + 1e-9);
  }
}

TEST(BoundedRandomWalk, StationaryRoughlyUniformOnDisk) {
  // Fraction of time beyond radius/√2 should approach 1/2 (uniform area).
  BoundedRandomWalk walk({{0.5, 0.5}}, 0.1, 47);
  int outer = 0;
  const int steps = 40000;
  for (int t = 0; t < steps; ++t) {
    walk.step();
    if (geom::torus_dist(walk.positions()[0], {0.5, 0.5}) >
        0.1 / std::sqrt(2.0))
      ++outer;
  }
  EXPECT_NEAR(outer / static_cast<double>(steps), 0.5, 0.06);
}

TEST(PullHomeMobility, NeverLeavesDiskAndIsCorrelated) {
  PullHomeMobility mob({{0.3, 0.3}}, 0.05, 53);
  geom::Point prev = mob.positions()[0];
  double step_sum = 0.0;
  for (int t = 0; t < 500; ++t) {
    mob.step();
    geom::Point cur = mob.positions()[0];
    EXPECT_LE(geom::torus_dist(cur, {0.3, 0.3}), 0.05 + 1e-9);
    step_sum += geom::torus_dist(prev, cur);
    prev = cur;
  }
  // Correlated motion: mean per-slot displacement well below the diameter.
  EXPECT_LT(step_sum / 500.0, 0.05);
  EXPECT_GT(step_sum / 500.0, 0.0);
}

TEST(PullHomeMobility, HighRhoStartsNearStationarity) {
  // Regression: the historical fixed 32-step burn-in left ρ = 0.99 at
  // 0.99^32 ≈ 0.72 of its initial home-point bias, so the time-zero
  // ensemble was far tighter than the stationary law. The burn-in now
  // scales with the mixing time (⌈log ε / log ρ⌉). Stationary E|offset|²
  // of the untruncated AR(1) is 2·(radius/2.5)²; boundary clipping shaves
  // a little off the top, while the old under-mixed start sat at ≈ 0.47
  // of it — well outside the band below.
  const double radius = 0.05;
  const int reps = 400;
  double sum2 = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    PullHomeMobility mob({{0.5, 0.5}}, radius, 1000 + rep, 0.99);
    sum2 += geom::torus_dist2(mob.positions()[0], {0.5, 0.5});
  }
  const double expected = 2.0 * (radius / 2.5) * (radius / 2.5);
  EXPECT_GT(sum2 / reps, 0.6 * expected);
  EXPECT_LT(sum2 / reps, 1.4 * expected);
}

TEST(PullHomeMobility, DefaultRhoMatchesExplicitRho) {
  // The default-ρ (0.8) burn-in stays at the historical 32 steps
  // (⌈log 1e−3 / log 0.8⌉ = 31, floored at 32), so runs seeded before the
  // adaptive burn-in reproduce bit for bit; the golden traces and the
  // reference-equivalence tests pin that end to end. Here: the default
  // and an explicit 0.8 are the same process.
  PullHomeMobility a({{0.3, 0.3}}, 0.05, 53);
  PullHomeMobility b({{0.3, 0.3}}, 0.05, 53, 0.8);
  for (int t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(a.positions()[0].x, b.positions()[0].x);
    EXPECT_DOUBLE_EQ(a.positions()[0].y, b.positions()[0].y);
    a.step();
    b.step();
  }
}

TEST(BrownianTorus, StationaryUniformCoverage) {
  // Unrestricted Brownian motion mixes over the whole torus: after many
  // steps the time-average occupancy of each quadrant approaches 1/4.
  BrownianTorusMobility mob({{0.5, 0.5}}, 61, /*sigma=*/0.08);
  std::array<int, 4> quadrant{0, 0, 0, 0};
  const int steps = 40000;
  for (int t = 0; t < steps; ++t) {
    mob.step();
    const auto p = mob.positions()[0];
    quadrant[(p.x < 0.5 ? 0 : 1) + (p.y < 0.5 ? 0 : 2)]++;
  }
  for (int q : quadrant)
    EXPECT_NEAR(q / static_cast<double>(steps), 0.25, 0.08);
}

TEST(BrownianTorus, StepScaleMatchesSigma) {
  BrownianTorusMobility mob({{0.2, 0.2}}, 67, /*sigma=*/0.01);
  double sum2 = 0.0;
  geom::Point prev = mob.positions()[0];
  const int steps = 2000;
  for (int t = 0; t < steps; ++t) {
    mob.step();
    sum2 += geom::torus_dist2(prev, mob.positions()[0]);
    prev = mob.positions()[0];
  }
  // E[step²] = 2σ².
  EXPECT_NEAR(sum2 / steps, 2.0 * 0.01 * 0.01, 0.3 * 2.0 * 0.01 * 0.01);
}

TEST(Process, DeterministicGivenSeed) {
  Shape shape(ShapeKind::kTriangular, 1.0);
  IidStationaryMobility a({{0.1, 0.1}, {0.6, 0.6}}, shape, 0.05, 59);
  IidStationaryMobility b({{0.1, 0.1}, {0.6, 0.6}}, shape, 0.05, 59);
  for (int t = 0; t < 10; ++t) {
    for (int i = 0; i < 2; ++i) {
      EXPECT_DOUBLE_EQ(a.positions()[i].x, b.positions()[i].x);
      EXPECT_DOUBLE_EQ(a.positions()[i].y, b.positions()[i].y);
    }
    a.step();
    b.step();
  }
}

}  // namespace
}  // namespace manetcap::mobility
