#include <gtest/gtest.h>

#include <cmath>

#include "linkcap/link_capacity.h"
#include "linkcap/measure.h"
#include "mobility/shape.h"
#include "rng/rng.h"
#include "util/check.h"

namespace manetcap::linkcap {
namespace {

using mobility::Shape;
using mobility::ShapeKind;

// ---------------------------------------------------------- analytic ----

TEST(LinkCapacityModel, RangeIsCtOverSqrtPopulation) {
  Shape s(ShapeKind::kUniformDisk);
  LinkCapacityModel m(s, 4.0, 400, 0.3, 1.0);
  EXPECT_NEAR(m.range(), 0.3 / 20.0, 1e-12);
}

TEST(LinkCapacityModel, MsMsDecaysWithHomeDistance) {
  Shape s(ShapeKind::kTriangular);
  const double f = 8.0;
  LinkCapacityModel m(s, f, 1024);
  double prev = m.mu_ms_ms(0.0);
  EXPECT_GT(prev, 0.0);
  for (double d = 0.02; d < 0.3; d += 0.02) {
    double cur = m.mu_ms_ms(d);
    EXPECT_LE(cur, prev + 1e-15) << "at d=" << d;
    prev = cur;
  }
  // Zero beyond 2D/f.
  EXPECT_DOUBLE_EQ(m.mu_ms_ms(2.0 / f + 0.01), 0.0);
}

TEST(LinkCapacityModel, MsBsTracksShapeDensity) {
  Shape s(ShapeKind::kQuadratic);
  const double f = 4.0;
  LinkCapacityModel m(s, f, 256);
  // μ(d) / μ(0) should equal s(f·d)/s(0).
  const double d = 0.1;
  EXPECT_NEAR(m.mu_ms_bs(d) / m.mu_ms_bs(0.0),
              s.density(f * d) / s.density(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(m.mu_ms_bs(1.0 / f + 0.01), 0.0);
}

TEST(LinkCapacityModel, ScalesAsFSquaredOverN) {
  // Corollary 1: μ(0) = Θ(f²/n). Doubling f at fixed n quadruples μ;
  // quadrupling n (population) halves nothing else than 1/n.
  Shape s(ShapeKind::kUniformDisk);
  LinkCapacityModel a(s, 4.0, 1000);
  LinkCapacityModel b(s, 8.0, 1000);
  LinkCapacityModel c(s, 4.0, 4000);
  EXPECT_NEAR(b.mu_ms_ms(0.0) / a.mu_ms_ms(0.0), 4.0, 1e-9);
  EXPECT_NEAR(a.mu_ms_ms(0.0) / c.mu_ms_ms(0.0), 4.0, 1e-9);
}

TEST(LinkCapacityModel, IsolationFactorConstantInN) {
  Shape s(ShapeKind::kUniformDisk);
  LinkCapacityModel a(s, 2.0, 100, 0.3, 1.0);
  LinkCapacityModel b(s, 2.0, 100000, 0.3, 1.0);
  EXPECT_DOUBLE_EQ(a.isolation_factor(), b.isolation_factor());
  EXPECT_GT(a.isolation_factor(), 0.0);
  EXPECT_LT(a.isolation_factor(), 1.0);
}

TEST(LinkCapacityModel, ContactDistances) {
  Shape s(ShapeKind::kUniformDisk, 1.0);
  LinkCapacityModel m(s, 10.0, 10000, 0.3, 1.0);
  EXPECT_NEAR(m.max_contact_dist_ms_ms(), 0.2 + m.range(), 1e-12);
  EXPECT_NEAR(m.max_contact_dist_ms_bs(), 0.1 + m.range(), 1e-12);
}

// -------------------------------------------------- Monte-Carlo checks ----

TEST(MeetingProbability, MatchesAnalyticAtZeroDistance) {
  Shape s(ShapeKind::kUniformDisk);
  const double f = 8.0;
  const std::size_t pop = 4096;
  LinkCapacityModel model(s, f, pop, 0.3, 1.0);
  rng::Xoshiro256 g(3);
  auto est = estimate_meeting_probability(s, f, 0.0, model.range(), 200000, g);
  const double analytic = model.meeting_probability_ms_ms(0.0);
  EXPECT_NEAR(est.value, analytic,
              std::max(4.0 * est.stderr_, 0.05 * analytic));
}

class MeetingAtDistance : public ::testing::TestWithParam<double> {};

TEST_P(MeetingAtDistance, MsMsMatchesEtaKernel) {
  const double dist_frac = GetParam();  // fraction of 2D/f
  Shape s(ShapeKind::kTriangular);
  const double f = 6.0;
  LinkCapacityModel model(s, f, 2048, 0.3, 1.0);
  const double d = dist_frac * 2.0 / f;
  rng::Xoshiro256 g(5);
  auto est = estimate_meeting_probability(s, f, d, model.range(), 300000, g);
  const double analytic = model.meeting_probability_ms_ms(d);
  EXPECT_NEAR(est.value, analytic,
              std::max(4.0 * est.stderr_, 0.08 * analytic + 1e-7))
      << "home distance " << d;
}

INSTANTIATE_TEST_SUITE_P(Distances, MeetingAtDistance,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75));

TEST(MeetingProbability, BsCaseMatchesShapeDensity) {
  Shape s(ShapeKind::kUniformDisk);
  const double f = 6.0;
  LinkCapacityModel model(s, f, 2048, 0.3, 1.0);
  rng::Xoshiro256 g(7);
  for (double d : {0.0, 0.08, 0.15}) {
    auto est =
        estimate_meeting_probability_bs(s, f, d, model.range(), 200000, g);
    const double analytic = model.meeting_probability_ms_bs(d);
    EXPECT_NEAR(est.value, analytic,
                std::max(4.0 * est.stderr_, 0.05 * analytic + 1e-7))
        << "home distance " << d;
  }
}

TEST(MeetingProbability, ZeroBeyondContact) {
  Shape s(ShapeKind::kUniformDisk);
  const double f = 10.0;
  rng::Xoshiro256 g(9);
  auto est = estimate_meeting_probability(s, f, 0.5, 0.01, 10000, g);
  EXPECT_DOUBLE_EQ(est.value, 0.0);
}

TEST(Estimate, StderrShrinksWithTrials) {
  Shape s(ShapeKind::kUniformDisk);
  rng::Xoshiro256 g(11);
  auto small = estimate_meeting_probability(s, 4.0, 0.0, 0.05, 1000, g);
  auto large = estimate_meeting_probability(s, 4.0, 0.0, 0.05, 100000, g);
  EXPECT_GT(small.stderr_, large.stderr_);
}

}  // namespace
}  // namespace manetcap::linkcap
