// trace_check — golden-trace replay checker for the slot simulator.
//
// Modes:
//   trace_check [--threads N] FILE...
//       Load each MCTRACE1 file, replay it against its embedded routing
//       context (sim::verify_trace) and print the verdict. Exit 0 iff
//       every file passes; a corrupt file (bad magic / checksum) fails
//       with its decode error instead of crashing the batch.
//   trace_check --gen [--dir DIR]
//       Regenerate the four tier-1 golden traces (sim::golden_trace_specs)
//       into DIR (default: tests/golden relative to the working directory),
//       verifying each before writing. See docs/TRACE.md for the workflow.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using manetcap::sim::Trace;
using manetcap::sim::TraceVerdict;
using manetcap::sim::TraceVerifyOptions;

int run_gen(const std::string& dir) {
  for (const auto& spec : manetcap::sim::golden_trace_specs()) {
    const Trace trace = manetcap::sim::capture_trace(spec);
    const TraceVerdict verdict = manetcap::sim::verify_trace(trace);
    if (!verdict.ok) {
      std::fprintf(stderr, "refusing to write invalid golden %s:\n%s",
                   spec.name.c_str(), verdict.summary().c_str());
      return 1;
    }
    const std::string path = dir + "/" + spec.name + ".trace";
    trace.save(path);
    std::printf("%s: %zu events, %s", path.c_str(), trace.events.size(),
                verdict.summary().c_str());
  }
  return 0;
}

int run_check(const std::vector<std::string>& files, std::size_t threads) {
  TraceVerifyOptions opt;
  opt.num_threads = threads;
  bool all_ok = true;
  for (const std::string& file : files) {
    try {
      const Trace trace = Trace::load(file);
      const TraceVerdict verdict = manetcap::sim::verify_trace(trace, opt);
      std::printf("%s: %s", file.c_str(), verdict.summary().c_str());
      all_ok = all_ok && verdict.ok;
    } catch (const std::exception& e) {
      std::printf("%s: FAIL decode: %s\n", file.c_str(), e.what());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    manetcap::util::Flags flags(argc, argv, {"gen", "dir", "threads"});
    if (flags.get_bool("gen", false))
      return run_gen(flags.get_string("dir", "tests/golden"));
    const auto& files = flags.positional();
    if (files.empty()) {
      std::fprintf(stderr,
                   "usage: trace_check [--threads N] FILE...\n"
                   "       trace_check --gen [--dir DIR]\n");
      return 2;
    }
    return run_check(files,
                     static_cast<std::size_t>(flags.get_int("threads", 1)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_check: %s\n", e.what());
    return 2;
  }
}
