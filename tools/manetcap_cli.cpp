// manetcap_cli — command-line front end to the library.
//
//   manetcap_cli classify  --alpha 0.45 --M 0.3 --R 0.4
//   manetcap_cli capacity  --n 8192 --alpha 0.3 --K 0.7 --phi 0
//   manetcap_cli sweep     --alpha 0.3 --K 0.7 --n0 2048 --count 4
//   manetcap_cli simulate  --n 512 --scheme B --slots 2000
//   manetcap_cli phase     --phi -0.5
//
// Every subcommand prints a self-contained report; `--help` lists flags.
#include <cstring>
#include <iostream>
#include <string>

#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "capacity/recommend.h"
#include "capacity/regimes.h"
#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/fluid.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace manetcap;

void usage() {
  std::cout <<
      R"(manetcap_cli — capacity scaling for hybrid mobile ad hoc networks

subcommands:
  classify   regime + capacity law from exponents
             --alpha A [--M M --R R] [--K K --phi P] [--no-bs] [--n N]
  capacity   sample an instance and measure its fluid capacity
             --n N --alpha A [--K K --phi P --M M --R R]
             [--no-bs] [--placement matched|uniform|grid|cluster-grid]
             [--seed S]
  sweep      lambda(n) scaling sweep + exponent fit
             --alpha A [--K K --phi P --M M --R R] [--no-bs]
             [--n0 N0 --count C --ratio R --trials T] [--seed S]
             [--threads T]  (0 = all cores; results identical for any T)
  simulate   slot-level packet simulation
             --n N --alpha A --scheme A|B|C|twohop [--K K --phi P]
             [--slots S --warmup W] [--mobility iid|walk|pull|brownian]
             [--seed S] [--metrics-out NAME]
             (--metrics-out writes NAME_counters.csv + NAME_series.csv
              under ./bench_csv — the packet-conservation audit trail)
  phase      Figure 3 phase-diagram panel for a given phi
             --phi P
)";
}

net::ScalingParams params_from(const util::Flags& f) {
  net::ScalingParams p;
  p.n = static_cast<std::size_t>(f.get_int("n", 4096));
  p.alpha = f.get_double("alpha", 0.3);
  p.with_bs = !f.get_bool("no-bs", false);
  p.K = f.get_double("K", 0.7);
  p.phi = f.get_double("phi", 0.0);
  p.M = f.get_double("M", 1.0);
  p.R = f.get_double("R", 0.0);
  return p;
}

net::BsPlacement placement_from(const util::Flags& f) {
  const std::string s = f.get_string("placement", "matched");
  if (s == "matched") return net::BsPlacement::kClusteredMatched;
  if (s == "uniform") return net::BsPlacement::kUniform;
  if (s == "grid") return net::BsPlacement::kRegularGrid;
  if (s == "cluster-grid") return net::BsPlacement::kClusterGrid;
  throw std::runtime_error("unknown placement: " + s);
}

int cmd_classify(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  const auto regime = capacity::classify(p);
  const auto law = capacity::capacity_law(p);
  std::cout << "parameters: " << p.describe() << "\n";
  for (const auto& v : p.assumption_violations())
    std::cout << "  note: " << v << "\n";
  std::cout << "regime:     " << to_string(regime) << "\n"
            << "  f*sqrt(gamma)  = "
            << util::fmt_double(capacity::f_sqrt_gamma(p), 4)
            << (p.cluster_free()
                    ? "\n"
                    : "\n  f*sqrt(gamma~) = " +
                          util::fmt_double(
                              capacity::f_sqrt_gamma_tilde(p), 4) + "\n")
            << "capacity:   " << law.expression << "  ~ n^"
            << util::fmt_double(law.exponent, 4) << "\n"
            << "optimal RT: " << law.rt_expression << "  ~ n^"
            << util::fmt_double(law.rt_exponent, 4) << "\n";
  if (p.with_bs) {
    std::cout << "infra dominance boundary: K >= "
              << util::fmt_double(
                     capacity::infrastructure_worthwhile_K(p.alpha, p.phi),
                     4)
              << " (this network has K = " << p.K << ")\n";
  }
  return 0;
}

int cmd_capacity(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  sim::FluidOptions opt;
  opt.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  opt.placement = placement_from(f);
  const auto out = sim::evaluate_capacity(p, opt);
  std::cout << "parameters:      " << p.describe() << "\n"
            << "regime:          " << to_string(out.regime) << "\n"
            << "scheme:          " << out.scheme << "\n"
            << "lambda (worst):  " << util::fmt_sci(out.lambda, 4) << "\n"
            << "lambda (typical):" << util::fmt_sci(out.lambda_symmetric, 4)
            << "\n"
            << "  ad hoc part:   " << util::fmt_sci(out.lambda_adhoc, 4)
            << "\n"
            << "  infra part:    " << util::fmt_sci(out.lambda_infra, 4)
            << "\n"
            << "bottleneck:      " << to_string(out.bottleneck) << "\n";
  return 0;
}

int cmd_sweep(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  const auto sizes = sim::geometric_sizes(
      static_cast<std::size_t>(f.get_int("n0", 2048)),
      f.get_double("ratio", 2.0),
      static_cast<std::size_t>(f.get_int("count", 4)));
  const auto trials = static_cast<std::size_t>(f.get_int("trials", 2));
  sim::Evaluator eval = [&f](const net::ScalingParams& pp,
                             std::uint64_t seed) {
    sim::FluidOptions opt;
    opt.seed = seed;
    opt.placement = placement_from(f);
    return sim::evaluate_capacity(pp, opt).lambda_symmetric;
  };
  sim::SweepOptions sopt;
  sopt.seed0 = static_cast<std::uint64_t>(f.get_int("seed", 1));
  // 0 = util::ThreadPool::default_num_threads(); per-trial seeds make the
  // result bit-identical for every thread count.
  sopt.num_threads = static_cast<std::size_t>(f.get_int("threads", 0));
  auto sweep = sim::run_sweep(p, sizes, trials, eval, sopt);

  util::Table t({"n", "lambda (gm)", "min", "max"});
  for (const auto& pt : sweep.points)
    t.add_row({std::to_string(pt.n), util::fmt_sci(pt.lambda_gm, 4),
               util::fmt_sci(pt.lambda_min, 4),
               util::fmt_sci(pt.lambda_max, 4)});
  t.print(std::cout);
  if (sweep.fit_valid) {
    std::cout << "fitted exponent: "
              << util::fmt_double(sweep.fit.exponent, 4) << " +- "
              << util::fmt_double(sweep.fit.stderr_, 3)
              << "  (R^2 = " << util::fmt_double(sweep.fit.r_squared, 4)
              << ")\n"
              << "theory exponent: "
              << util::fmt_double(capacity::capacity_exponent(p), 4) << "\n";
  } else {
    std::cout << "fit unavailable (some sizes measured lambda = 0)\n";
  }
  return 0;
}

int cmd_simulate(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  const std::string scheme = f.get_string("scheme", "A");
  sim::SlotSimOptions opt;
  if (scheme == "A")
    opt.scheme = sim::SlotScheme::kSchemeA;
  else if (scheme == "B")
    opt.scheme = sim::SlotScheme::kSchemeB;
  else if (scheme == "C")
    opt.scheme = sim::SlotScheme::kSchemeC;
  else if (scheme == "twohop")
    opt.scheme = sim::SlotScheme::kTwoHop;
  else
    throw std::runtime_error("unknown scheme: " + scheme);

  const std::string mob = f.get_string("mobility", "iid");
  if (mob == "iid")
    opt.mobility = sim::SlotMobility::kIid;
  else if (mob == "walk")
    opt.mobility = sim::SlotMobility::kWalk;
  else if (mob == "pull")
    opt.mobility = sim::SlotMobility::kPullHome;
  else if (mob == "brownian")
    opt.mobility = sim::SlotMobility::kBrownian;
  else
    throw std::runtime_error("unknown mobility: " + mob);

  opt.slots = static_cast<std::size_t>(f.get_int("slots", 2000));
  opt.warmup = static_cast<std::size_t>(f.get_int("warmup",
                                                  opt.slots / 10));
  opt.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));

  const std::string metrics_out = f.get_string("metrics-out", "");
  sim::Metrics metrics;
  if (!metrics_out.empty()) {
    metrics.enable_series(opt.slots);
    opt.metrics = &metrics;
  }

  auto placement = opt.scheme == sim::SlotScheme::kSchemeC && !p.cluster_free()
                       ? net::BsPlacement::kClusterGrid
                       : net::BsPlacement::kClusteredMatched;
  if (!p.with_bs) placement = net::BsPlacement::kUniform;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 placement, opt.seed);
  rng::Xoshiro256 g(opt.seed ^ 0x1234567ULL);
  auto dest = net::permutation_traffic(p.n, g);
  const auto r = sim::run_slot_sim(net, dest, opt);
  std::cout << "scheme " << to_string(opt.scheme) << ", " << opt.slots
            << " slots (" << opt.warmup << " warmup), mobility " << mob
            << "\n"
            << "  delivered total:    " << r.total_delivered << "\n"
            << "  rate/flow/slot:     " << util::fmt_sci(r.mean_flow_rate, 4)
            << " (p10 " << util::fmt_sci(r.p10_flow_rate, 4) << ")\n"
            << "  mean delay:         " << util::fmt_double(r.mean_delay, 5)
            << " slots (p95 " << util::fmt_double(r.p95_delay, 5) << ")\n"
            << "  concurrency/slot:   "
            << util::fmt_double(r.pairs_per_slot, 4) << "\n"
            << "  audit: injected " << r.injected << " = delivered "
            << r.delivered_lifetime << " + queued " << r.queued_end
            << " + dropped " << r.dropped << " (conserved)\n";
  if (!metrics_out.empty()) {
    const auto cpath =
        metrics.write_counters_csv(metrics_out, to_string(opt.scheme));
    const auto spath = metrics.write_series_csv(metrics_out);
    std::cout << "  metrics: " << cpath << ", " << spath << "\n";
  }
  return 0;
}

int cmd_phase(const util::Flags& f) {
  const double phi = f.get_double("phi", 0.0);
  auto d = capacity::compute_phase_diagram(phi, 11, 11);
  std::cout << capacity::render_ascii(d);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string cmd = argv[1];
  try {
    util::Flags flags(argc - 1, argv + 1,
                      {"n", "alpha", "K", "phi", "M", "R", "no-bs",
                       "placement", "seed", "n0", "count", "ratio", "trials",
                       "scheme", "slots", "warmup", "mobility", "threads",
                       "metrics-out"});
    if (cmd == "classify") return cmd_classify(flags);
    if (cmd == "capacity") return cmd_capacity(flags);
    if (cmd == "sweep") return cmd_sweep(flags);
    if (cmd == "simulate") return cmd_simulate(flags);
    if (cmd == "phase") return cmd_phase(flags);
    std::cerr << "unknown subcommand: " << cmd << "\n\n";
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
