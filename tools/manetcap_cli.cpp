// manetcap_cli — command-line front end to the library.
//
//   manetcap_cli classify  --alpha 0.45 --M 0.3 --R 0.4
//   manetcap_cli capacity  --n 8192 --alpha 0.3 --K 0.7 --phi 0
//   manetcap_cli sweep     --alpha 0.3 --K 0.7 --n0 2048 --count 4
//   manetcap_cli simulate  --n 512 --scheme B --slots 2000
//   manetcap_cli phase     --phi -0.5
//   manetcap_cli phase     --panel frontier --alpha 0.3 --K 0.7
//   manetcap_cli recommend --alpha 0.3 --K 0.7 --target -0.25
//
// Every subcommand prints a self-contained report; `--help` lists flags.
#include <cstring>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "capacity/recommend.h"
#include "capacity/regimes.h"
#include "net/network.h"
#include "net/traffic.h"
#include "phy/interference.h"
#include "rng/rng.h"
#include "sim/engine.h"
#include "sim/fluid.h"
#include "sim/flowsim.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace manetcap;

// ------------------------------------------------------------ flag specs --
// One shared table describes every flag once (value placeholder + help
// line); each subcommand lists the names it accepts. Per-subcommand --help
// and the Flags known-set are both generated from here, so the parser and
// the documentation cannot drift apart.
struct FlagSpec {
  const char* name;
  const char* arg;  // value placeholder; "" for boolean flags
  const char* help;
};

constexpr FlagSpec kFlagSpecs[] = {
    {"n", "N", "number of mobile stations (default 4096)"},
    {"alpha", "A", "mobility exponent: f(n) = n^alpha (default 0.3)"},
    {"K", "K", "base-station exponent: k = n^K (default 0.7)"},
    {"phi", "P", "wired-bandwidth exponent: c = n^phi / k (default 0)"},
    {"L", "L",
     "antennas-per-BS exponent: l = n^L (default 0 = the paper's "
     "single-antenna BS; L > 0 needs --engine fluid)"},
    {"M", "M", "cluster count exponent: m = n^M (default 1 = cluster-free)"},
    {"R", "R", "cluster radius exponent (default 0)"},
    {"no-bs", "", "pure ad hoc network (no base stations)"},
    {"placement", "matched|uniform|grid|cluster-grid",
     "base-station placement (default matched)"},
    {"seed", "S", "RNG seed (default 1)"},
    {"n0", "N0", "smallest sweep size (default 2048)"},
    {"count", "C", "number of geometrically spaced sizes (default 4)"},
    {"ratio", "R", "geometric ratio between sizes (default 2.0)"},
    {"trials", "T", "trials per size (default 2)"},
    {"threads", "T",
     "sweep concurrency cap; 0 = all cores, bit-identical for any value"},
    {"scheme", "A|B|C|twohop|static",
     "forwarding scheme (default A; static needs --engine fluid)"},
    {"engine", "fluid|slots|auto",
     "measurement engine: flow-level, packet-level, or size-based "
     "crossover (sweep default fluid, simulate default slots)"},
    {"slots", "S", "simulated slots (default 2000)"},
    {"warmup", "W", "warmup slots excluded from rates (default slots/10)"},
    {"mobility", "iid|walk|pull|brownian", "mobility process (default iid)"},
    {"metrics-out", "NAME",
     "write NAME_counters.csv + NAME_series.csv under ./bench_csv"},
    {"faults", "SPEC",
     "fault/churn plan: 'down@SLOT:BS | up@SLOT:BS | wire@SLOT:A-BxSCALE | "
     "region@SLOT:X,Y,R | leave@SLOT:MS | join@SLOT:MS | shift@SLOT:REGIME'"
     ", ';'-separated (BS faults need schemes B/C; the fluid engine takes "
     "churn only)"},
    {"traffic", "SPEC",
     "traffic scenario (default perm): 'perm | hotspot:FRAC,MASS | "
     "pareto:ALPHA,MEAN | onoff:ON,OFF | start:MAX', ';'-separated "
     "(docs/TRAFFIC.md)"},
    {"shards", "S",
     "spatial stripes for the parallel slot phases; bit-identical for any "
     "value (default 1 = serial)"},
    {"phy", "protocol|sinr|sinr-csma",
     "interference backend (default protocol; docs/PHY.md). Scheme C "
     "always runs under protocol"},
    {"path-loss", "A",
     "SINR path-loss exponent alpha (> 2 for far-field convergence; "
     "default 3)"},
    {"sinr-beta", "B", "SINR capture threshold beta (default 1)"},
    {"snr-edge", "S",
     "SNR of an interference-free link at exactly R_T; sets the noise "
     "floor N0 = P R_T^-alpha / snr-edge (default 10)"},
    {"tx-power", "P", "transmit power P (default 1)"},
    {"field-radius", "F",
     "near-field radius in multiples of R_T; interferers beyond it use "
     "the closed-form far-field mean (default 6)"},
    {"cca", "C",
     "sinr-csma carrier-sense threshold in multiples of the noise floor "
     "(default 4)"},
    {"checkpoint", "FILE",
     "write the full simulator state to FILE every --checkpoint-every "
     "slots (atomic; MCCKPT1)"},
    {"checkpoint-every", "S",
     "checkpoint period in slots (default 0 = never; requires "
     "--checkpoint)"},
    {"resume", "FILE",
     "resume a run from an MCCKPT1 checkpoint written by the identical "
     "configuration"},
    {"panel", "fig3|frontier",
     "phase panel: Figure 3 over (alpha, K), or the antenna/backhaul "
     "frontier over (phi, L) at fixed (alpha, K) (default fig3)"},
    {"target", "E",
     "target per-node capacity exponent e in lambda = Theta(n^e) "
     "(default -0.25)"},
    {"cost-antenna", "D", "BS dollars per antenna element (default 1)"},
    {"cost-backhaul", "D",
     "BS dollars per unit of aggregate wired bandwidth (default 1)"},
};

const FlagSpec& spec_of(const std::string& name) {
  for (const FlagSpec& s : kFlagSpecs)
    if (name == s.name) return s;
  throw std::logic_error("flag missing from kFlagSpecs: " + name);
}

int cmd_classify(const util::Flags& f);
int cmd_capacity(const util::Flags& f);
int cmd_sweep(const util::Flags& f);
int cmd_simulate(const util::Flags& f);
int cmd_phase(const util::Flags& f);
int cmd_recommend(const util::Flags& f);

struct Subcommand {
  const char* name;
  const char* summary;
  std::vector<std::string> flags;  // names into kFlagSpecs
  int (*run)(const util::Flags&);
};

// params_from() reads the scaling-exponent flags, so every subcommand that
// builds ScalingParams accepts them all.
const std::vector<std::string> kParamFlags = {"n",   "alpha", "K",    "phi",
                                              "L",   "M",     "R",    "no-bs"};

std::vector<std::string> with_params(std::vector<std::string> extra) {
  std::vector<std::string> all = kParamFlags;
  all.insert(all.end(), extra.begin(), extra.end());
  return all;
}

const std::vector<Subcommand>& subcommands() {
  static const std::vector<Subcommand> kSubcommands = {
      {"classify", "regime + capacity law from exponents", with_params({}),
       &cmd_classify},
      {"capacity", "sample an instance and measure its fluid capacity",
       with_params({"placement", "seed"}), &cmd_capacity},
      {"sweep", "lambda(n) scaling sweep + exponent fit",
       with_params({"placement", "n0", "count", "ratio", "trials", "seed",
                    "threads", "engine", "slots", "warmup", "traffic", "phy",
                    "path-loss", "sinr-beta", "snr-edge", "tx-power",
                    "field-radius", "cca"}),
       &cmd_sweep},
      {"simulate", "packet- or flow-level simulation of one instance",
       with_params({"scheme", "engine", "slots", "warmup", "mobility",
                    "seed", "metrics-out", "traffic", "faults", "shards",
                    "checkpoint", "checkpoint-every", "resume", "phy",
                    "path-loss", "sinr-beta", "snr-edge", "tx-power",
                    "field-radius", "cca"}),
       &cmd_simulate},
      {"phase", "Figure 3 phase-diagram panel for a given phi",
       {"phi", "L", "panel", "alpha", "K"}, &cmd_phase},
      {"recommend",
       "antennas/backhaul per BS-dollar (generalized-model design rules)",
       with_params({"target", "cost-antenna", "cost-backhaul"}),
       &cmd_recommend},
  };
  return kSubcommands;
}

void print_subcommand_help(const Subcommand& sc) {
  std::cout << "manetcap_cli " << sc.name << " — " << sc.summary << "\n\n"
            << "flags:\n";
  for (const std::string& name : sc.flags) {
    const FlagSpec& s = spec_of(name);
    std::string head = "  --" + std::string(s.name);
    if (s.arg[0] != '\0') head += " " + std::string(s.arg);
    std::cout << head << ' ';
    for (std::size_t pad = head.size() + 1; pad < 34; ++pad) std::cout << ' ';
    std::cout << s.help << "\n";
  }
}

void usage() {
  std::cout << "manetcap_cli — capacity scaling for hybrid mobile ad hoc "
               "networks\n\nsubcommands:\n";
  for (const Subcommand& sc : subcommands()) {
    std::string head = "  " + std::string(sc.name);
    for (std::size_t pad = head.size(); pad < 13; ++pad) head += ' ';
    std::cout << head << sc.summary << "\n";
  }
  std::cout << "\nrun `manetcap_cli <subcommand> --help` for that "
               "subcommand's flags.\n";
}

net::ScalingParams params_from(const util::Flags& f) {
  net::ScalingParams p;
  p.n = static_cast<std::size_t>(f.get_int("n", 4096));
  p.alpha = f.get_double("alpha", 0.3);
  p.with_bs = !f.get_bool("no-bs", false);
  p.K = f.get_double("K", 0.7);
  p.phi = f.get_double("phi", 0.0);
  p.L = f.get_double("L", 0.0);
  p.M = f.get_double("M", 1.0);
  p.R = f.get_double("R", 0.0);
  return p;
}

phy::PhyKind phy_from(const util::Flags& f) {
  return phy::parse_phy(f.get_string("phy", "protocol"));
}

phy::SinrParams sinr_from(const util::Flags& f) {
  phy::SinrParams s;
  s.path_loss = f.get_double("path-loss", s.path_loss);
  s.beta = f.get_double("sinr-beta", s.beta);
  s.snr_edge = f.get_double("snr-edge", s.snr_edge);
  s.power = f.get_double("tx-power", s.power);
  s.field_radius = f.get_double("field-radius", s.field_radius);
  s.cca = f.get_double("cca", s.cca);
  return s;
}

net::BsPlacement placement_from(const util::Flags& f) {
  const std::string s = f.get_string("placement", "matched");
  if (s == "matched") return net::BsPlacement::kClusteredMatched;
  if (s == "uniform") return net::BsPlacement::kUniform;
  if (s == "grid") return net::BsPlacement::kRegularGrid;
  if (s == "cluster-grid") return net::BsPlacement::kClusterGrid;
  throw std::runtime_error("unknown placement: " + s);
}

int cmd_classify(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  const auto regime = capacity::classify(p);
  const auto law = capacity::capacity_law(p);
  std::cout << "parameters: " << p.describe() << "\n";
  for (const auto& v : p.assumption_violations())
    std::cout << "  note: " << v << "\n";
  std::cout << "regime:     " << to_string(regime) << "\n"
            << "  f*sqrt(gamma)  = "
            << util::fmt_double(capacity::f_sqrt_gamma(p), 4)
            << (p.cluster_free()
                    ? "\n"
                    : "\n  f*sqrt(gamma~) = " +
                          util::fmt_double(
                              capacity::f_sqrt_gamma_tilde(p), 4) + "\n")
            << "capacity:   " << law.expression << "  ~ n^"
            << util::fmt_double(law.exponent, 4) << "\n"
            << "optimal RT: " << law.rt_expression << "  ~ n^"
            << util::fmt_double(law.rt_exponent, 4) << "\n";
  if (p.with_bs) {
    std::cout << "infra dominance boundary: K >= "
              << util::fmt_double(capacity::infrastructure_worthwhile_K(
                                      p.alpha, p.phi, p.L),
                                  4)
              << " (this network has K = " << p.K << ")\n"
              << "infra bottleneck: "
              << capacity::to_string(
                     capacity::infrastructure_bottleneck(p.K, p.phi, p.L))
              << "\n";
  }
  return 0;
}

int cmd_capacity(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  sim::FluidOptions opt;
  opt.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  opt.placement = placement_from(f);
  const auto out = sim::evaluate_capacity(p, opt);
  std::cout << "parameters:      " << p.describe() << "\n"
            << "regime:          " << to_string(out.regime) << "\n"
            << "scheme:          " << out.scheme << "\n"
            << "lambda (worst):  " << util::fmt_sci(out.lambda, 4) << "\n"
            << "lambda (typical):" << util::fmt_sci(out.lambda_symmetric, 4)
            << "\n"
            << "  ad hoc part:   " << util::fmt_sci(out.lambda_adhoc, 4)
            << "\n"
            << "  infra part:    " << util::fmt_sci(out.lambda_infra, 4)
            << "\n"
            << "bottleneck:      " << to_string(out.bottleneck) << "\n";
  return 0;
}

int cmd_sweep(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  const auto sizes = sim::geometric_sizes(
      static_cast<std::size_t>(f.get_int("n0", 2048)),
      f.get_double("ratio", 2.0),
      static_cast<std::size_t>(f.get_int("count", 4)));
  const auto trials = static_cast<std::size_t>(f.get_int("trials", 2));
  const auto engine = sim::parse_engine(f.get_string("engine", "fluid"));
  sim::EngineOptions eopt;
  eopt.placement = placement_from(f);
  eopt.slots = static_cast<std::size_t>(f.get_int("slots", 2000));
  eopt.warmup = static_cast<std::size_t>(f.get_int("warmup",
                                                   eopt.slots / 10));
  eopt.phy = phy_from(f);
  eopt.sinr = sinr_from(f);
  if (eopt.phy != phy::PhyKind::kProtocol) eopt.sinr.validate();
  const std::string traffic_spec = f.get_string("traffic", "");
  if (!traffic_spec.empty())
    eopt.traffic = net::TrafficSpec::parse(traffic_spec);
  sim::SweepEvaluator eval = sim::make_engine_evaluator(engine, eopt);
  sim::SweepOptions sopt;
  sopt.seed0 = static_cast<std::uint64_t>(f.get_int("seed", 1));
  // 0 = util::ThreadPool::default_num_threads(); per-trial seeds make the
  // result bit-identical for every thread count.
  sopt.num_threads = static_cast<std::size_t>(f.get_int("threads", 0));
  auto sweep = sim::run_sweep(p, sizes, trials, eval, sopt);

  util::Table t({"n", "lambda (gm)", "min", "max"});
  for (const auto& pt : sweep.points)
    t.add_row({std::to_string(pt.n), util::fmt_sci(pt.lambda_gm, 4),
               util::fmt_sci(pt.lambda_min, 4),
               util::fmt_sci(pt.lambda_max, 4)});
  std::cout << "engine: " << sim::to_string(engine) << "\n";
  if (!eopt.traffic.is_default())
    std::cout << "traffic: " << eopt.traffic.describe() << "\n";
  if (eopt.phy != phy::PhyKind::kProtocol)
    std::cout << "phy:    " << phy::to_string(eopt.phy)
              << " (path-loss " << eopt.sinr.path_loss << ", beta "
              << eopt.sinr.beta << ", snr-edge " << eopt.sinr.snr_edge
              << ")\n";
  t.print(std::cout);
  if (sweep.fit_valid) {
    std::cout << "fitted exponent: "
              << util::fmt_double(sweep.fit.exponent, 4) << " +- "
              << util::fmt_double(sweep.fit.stderr_, 3)
              << "  (R^2 = " << util::fmt_double(sweep.fit.r_squared, 4)
              << ")\n"
              << "theory exponent: "
              << util::fmt_double(capacity::capacity_exponent(p), 4) << "\n";
  } else {
    std::cout << "fit unavailable (some sizes measured lambda = 0)\n";
  }
  return 0;
}

// simulate --engine fluid: the flow-level engine on the same instance and
// traffic the packet path would build, reporting the same audit identity.
int cmd_simulate_fluid(const util::Flags& f, const net::ScalingParams& p) {
  const std::string scheme = f.get_string("scheme", "A");
  sim::FlowSimOptions opt;
  if (scheme == "A")
    opt.scheme = sim::FlowScheme::kSchemeA;
  else if (scheme == "B")
    opt.scheme = sim::FlowScheme::kSchemeB;
  else if (scheme == "C")
    opt.scheme = sim::FlowScheme::kSchemeC;
  else if (scheme == "twohop")
    opt.scheme = sim::FlowScheme::kTwoHop;
  else if (scheme == "static")
    opt.scheme = sim::FlowScheme::kStaticMultihop;
  else
    throw std::runtime_error("unknown scheme: " + scheme);
  if (!f.get_string("checkpoint", "").empty() ||
      !f.get_string("resume", "").empty())
    throw std::runtime_error("--checkpoint/--resume need --engine slots");

  opt.slots = static_cast<std::size_t>(f.get_int("slots", 2000));
  opt.warmup = static_cast<std::size_t>(f.get_int("warmup",
                                                  opt.slots / 10));
  opt.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  opt.grouping = capacity::classify(p) == capacity::MobilityRegime::kWeak
                     ? routing::BsGrouping::kCluster
                     : routing::BsGrouping::kSquarelet;

  // The fluid engine takes churn-only plans; run_flow_sim rejects
  // infrastructure or mobility-shift events with a named error.
  const std::string fault_spec = f.get_string("faults", "");
  sim::FaultPlan faults;
  if (!fault_spec.empty()) {
    faults = sim::FaultPlan::parse(fault_spec);
    opt.faults = &faults;
  }
  const std::string traffic_spec = f.get_string("traffic", "");
  net::TrafficSpec tspec;
  if (!traffic_spec.empty()) tspec = net::TrafficSpec::parse(traffic_spec);

  const std::string metrics_out = f.get_string("metrics-out", "");
  sim::Metrics metrics;
  if (!metrics_out.empty()) {
    metrics.enable_series(opt.slots);
    opt.metrics = &metrics;
  }

  const auto placement = sim::engine_placement(
      p, opt.scheme == sim::FlowScheme::kSchemeC,
      net::BsPlacement::kClusteredMatched);
  const auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                       placement, opt.seed);
  rng::Xoshiro256 g(sim::traffic_seed(opt.seed));
  std::vector<net::FlowDemand> demands;
  std::vector<std::uint32_t> dest;
  if (tspec.is_default())
    dest = net::permutation_traffic(p.n, g);
  else
    demands = net::make_traffic_model(tspec)->draw(p.n, g);

  // Non-protocol backends derate the wireless capacities by the measured
  // pair-survival ratio (docs/PHY.md): schemes A/B via bandwidth_share
  // (wires untouched), the wireless-only schemes by scaling the rate.
  const auto phy = phy_from(f);
  double survival = 1.0;
  if (phy != phy::PhyKind::kProtocol) {
    if (opt.scheme == sim::FlowScheme::kSchemeC)
      throw std::runtime_error(
          "--phy " + phy::to_string(phy) +
          " does not apply to scheme C (TDMA schedule has no per-slot "
          "geometry); use --phy protocol");
    auto sinr = sinr_from(f);
    sinr.validate();
    survival = sim::sinr_survival_ratio(net, phy, sinr,
                                        sim::trial_seed(opt.seed, 0, 2));
  }
  const bool shares = opt.scheme == sim::FlowScheme::kSchemeA ||
                      opt.scheme == sim::FlowScheme::kSchemeB;
  if (shares && survival > 0.0) opt.bandwidth_share = survival;
  auto r = survival > 0.0
               ? (tspec.is_default() ? sim::run_flow_sim(net, dest, opt)
                                     : sim::run_flow_sim(net, demands, opt))
               : sim::FlowSimResult{};
  if (!shares && survival < 1.0) {
    r.mean_flow_rate *= survival;
    r.p10_flow_rate *= survival;
    r.lambda_strict *= survival;
  }
  std::cout << "scheme " << to_string(opt.scheme) << " (flow engine), "
            << opt.slots << " slots (" << opt.warmup << " warmup)\n";
  if (!tspec.is_default())
    std::cout << "  traffic:            " << tspec.describe() << "\n";
  if (!fault_spec.empty())
    std::cout << "  churn: " << faults.events.size() << " event(s), "
              << r.dropped << " packet(s) dropped to departures\n"
              << faults.describe();
  if (phy != phy::PhyKind::kProtocol)
    std::cout << "  phy " << phy::to_string(phy) << ": pair survival "
              << util::fmt_double(survival, 4)
              << (survival == 0.0 ? " — no pair clears beta; lambda = 0"
                                  : " (wireless capacity derate)")
              << "\n";
  std::cout << "  rate/flow/slot:     " << util::fmt_sci(r.mean_flow_rate, 4)
            << " (p10 " << util::fmt_sci(r.p10_flow_rate, 4) << ")\n"
            << "  lambda (solver):    " << util::fmt_sci(r.lambda_strict, 4)
            << "\n"
            << "  bottleneck:         " << to_string(r.bottleneck)
            << (r.bottleneck_label.empty() ? ""
                                           : " (" + r.bottleneck_label + ")")
            << "\n"
            << "  served flows:       " << r.served_flows << " / " << p.n
            << (r.degenerate ? "  (degenerate)" : "") << "\n"
            << "  audit: injected " << r.injected << " = delivered "
            << r.delivered_lifetime << " + queued " << r.queued_end
            << " + dropped " << r.dropped << " (conserved)\n";
  if (!metrics_out.empty()) {
    const auto cpath =
        metrics.write_counters_csv(metrics_out, to_string(opt.scheme));
    const auto spath = metrics.write_series_csv(metrics_out);
    std::cout << "  metrics: " << cpath << ", " << spath << "\n";
  }
  return 0;
}

int cmd_simulate(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  auto engine = sim::parse_engine(f.get_string("engine", "slots"));
  if (engine == sim::EngineKind::kAuto)
    engine = p.n < sim::EngineOptions{}.auto_threshold
                 ? sim::EngineKind::kSlots
                 : sim::EngineKind::kFluid;
  if (engine == sim::EngineKind::kFluid) return cmd_simulate_fluid(f, p);
  const std::string scheme = f.get_string("scheme", "A");
  sim::SlotSimOptions opt;
  if (scheme == "A")
    opt.scheme = sim::SlotScheme::kSchemeA;
  else if (scheme == "B")
    opt.scheme = sim::SlotScheme::kSchemeB;
  else if (scheme == "C")
    opt.scheme = sim::SlotScheme::kSchemeC;
  else if (scheme == "twohop")
    opt.scheme = sim::SlotScheme::kTwoHop;
  else
    throw std::runtime_error("unknown scheme: " + scheme);

  const std::string mob = f.get_string("mobility", "iid");
  if (mob == "iid")
    opt.mobility = sim::SlotMobility::kIid;
  else if (mob == "walk")
    opt.mobility = sim::SlotMobility::kWalk;
  else if (mob == "pull")
    opt.mobility = sim::SlotMobility::kPullHome;
  else if (mob == "brownian")
    opt.mobility = sim::SlotMobility::kBrownian;
  else
    throw std::runtime_error("unknown mobility: " + mob);

  opt.slots = static_cast<std::size_t>(f.get_int("slots", 2000));
  opt.warmup = static_cast<std::size_t>(f.get_int("warmup",
                                                  opt.slots / 10));
  opt.seed = static_cast<std::uint64_t>(f.get_int("seed", 1));
  opt.phy = phy_from(f);
  opt.sinr = sinr_from(f);
  opt.shards = static_cast<std::size_t>(f.get_int("shards", 1));
  opt.checkpoint_path = f.get_string("checkpoint", "");
  opt.checkpoint_every =
      static_cast<std::size_t>(f.get_int("checkpoint-every", 0));
  opt.resume_path = f.get_string("resume", "");

  const std::string metrics_out = f.get_string("metrics-out", "");
  sim::Metrics metrics;
  if (!metrics_out.empty()) {
    metrics.enable_series(opt.slots);
    opt.metrics = &metrics;
  }

  const std::string fault_spec = f.get_string("faults", "");
  sim::FaultPlan faults;
  if (!fault_spec.empty()) {
    faults = sim::FaultPlan::parse(fault_spec);
    opt.faults = &faults;
  }

  auto placement = opt.scheme == sim::SlotScheme::kSchemeC && !p.cluster_free()
                       ? net::BsPlacement::kClusterGrid
                       : net::BsPlacement::kClusteredMatched;
  if (!p.with_bs) placement = net::BsPlacement::kUniform;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 placement, opt.seed);
  const std::string traffic_spec = f.get_string("traffic", "");
  net::TrafficSpec tspec;
  if (!traffic_spec.empty()) tspec = net::TrafficSpec::parse(traffic_spec);

  rng::Xoshiro256 g(sim::traffic_seed(opt.seed));
  sim::SlotSimResult r;
  if (tspec.is_default()) {
    auto dest = net::permutation_traffic(p.n, g);
    r = sim::run_slot_sim(net, dest, opt);
  } else {
    const auto demands = net::make_traffic_model(tspec)->draw(p.n, g);
    r = sim::run_slot_sim(net, demands, opt);
  }
  std::cout << "scheme " << to_string(opt.scheme) << ", " << opt.slots
            << " slots (" << opt.warmup << " warmup), mobility " << mob
            << "\n";
  if (!tspec.is_default())
    std::cout << "  traffic:            " << tspec.describe() << "\n";
  if (opt.phy != phy::PhyKind::kProtocol)
    std::cout << "  phy:                " << phy::to_string(opt.phy)
              << " (path-loss " << opt.sinr.path_loss << ", beta "
              << opt.sinr.beta << ", snr-edge " << opt.sinr.snr_edge
              << ")\n";
  std::cout << "  delivered total:    " << r.total_delivered << "\n"
            << "  rate/flow/slot:     " << util::fmt_sci(r.mean_flow_rate, 4)
            << " (p10 " << util::fmt_sci(r.p10_flow_rate, 4) << ")\n"
            << "  mean delay:         " << util::fmt_double(r.mean_delay, 5)
            << " slots (p95 " << util::fmt_double(r.p95_delay, 5) << ")\n"
            << "  concurrency/slot:   "
            << util::fmt_double(r.pairs_per_slot, 4) << "\n"
            << "  audit: injected " << r.injected << " = delivered "
            << r.delivered_lifetime << " + queued " << r.queued_end
            << " + dropped " << r.dropped << " (conserved)\n";
  if (!fault_spec.empty())
    std::cout << "  faults: " << faults.events.size() << " event(s), "
              << r.dropped_bs_outage << " packet(s) dropped to BS outages, "
              << r.dropped_ms_churn << " to MS departures\n"
              << faults.describe();
  if (!metrics_out.empty()) {
    const auto cpath =
        metrics.write_counters_csv(metrics_out, to_string(opt.scheme));
    const auto spath = metrics.write_series_csv(metrics_out);
    std::cout << "  metrics: " << cpath << ", " << spath << "\n";
  }
  return 0;
}

int cmd_phase(const util::Flags& f) {
  const std::string panel = f.get_string("panel", "fig3");
  if (panel == "frontier") {
    auto d = capacity::compute_frontier_diagram(
        f.get_double("alpha", 0.3), f.get_double("K", 0.7), 21, 11);
    std::cout << capacity::render_ascii(d);
  } else if (panel == "fig3") {
    auto d = capacity::compute_phase_diagram(
        f.get_double("phi", 0.0), f.get_double("L", 0.0), 11, 11);
    std::cout << capacity::render_ascii(d);
  } else {
    throw std::runtime_error("unknown panel: " + panel);
  }
  return 0;
}

// recommend — the generalized-model design rules: the binding bottleneck,
// order-optimal backhaul/antenna exponents, the K a target capacity needs,
// and a capacity-per-BS-dollar argmax over the (phi, L) frontier grid.
int cmd_recommend(const util::Flags& f) {
  net::ScalingParams p = params_from(f);
  if (!p.with_bs)
    throw std::runtime_error("recommend needs base stations (drop --no-bs)");
  const double target = f.get_double("target", -0.25);
  capacity::BsCostModel cost;
  cost.per_antenna = f.get_double("cost-antenna", cost.per_antenna);
  cost.per_backhaul = f.get_double("cost-backhaul", cost.per_backhaul);

  std::cout << "parameters: " << p.describe() << "\n";
  for (const auto& v : p.assumption_violations())
    std::cout << "  note: " << v << "\n";
  std::cout << "infra bottleneck:   "
            << capacity::to_string(
                   capacity::infrastructure_bottleneck(p.K, p.phi, p.L))
            << " (exponent "
            << util::fmt_double(
                   capacity::infrastructure_exponent(p.K, p.phi, p.L), 4)
            << ")\n"
            << "recommended phi*:   "
            << util::fmt_double(capacity::recommended_phi(p.L, p.K), 4)
            << " (backbone stops binding; this network has phi = " << p.phi
            << ")\n"
            << "recommended L*:     "
            << util::fmt_double(capacity::recommended_L(p.phi, p.K), 4)
            << " (antennas stop binding; this network has L = " << p.L
            << ")\n"
            << "K for target n^" << util::fmt_double(target, 4) << ": "
            << util::fmt_double(capacity::required_K(target, p.phi, p.L), 4)
            << (capacity::required_K(target, p.phi, p.L) > 1.0
                    ? "  (> 1: unreachable with k <= n)"
                    : "")
            << "\n"
            << "BS dollars:         "
            << util::fmt_sci(capacity::bs_dollars(p, cost), 4)
            << " (cost exponent "
            << util::fmt_double(
                   capacity::bs_cost_exponent(p.K, p.phi, p.L), 4)
            << ")\n"
            << "capacity/dollar:    n^"
            << util::fmt_double(capacity::capacity_per_dollar_exponent(
                                    p.alpha, p.K, p.phi, p.L),
                                4)
            << "\n";

  // Frontier argmax: best (phi, L) for capacity per BS-dollar at this
  // (alpha, K) on a 0.1-spaced grid (cost exponent does not depend on the
  // dollar coefficients).
  double best_e = -std::numeric_limits<double>::infinity();
  double best_phi = 0.0, best_l = 0.0;
  for (int li = 0; li <= 10; ++li) {
    for (int pi = -10; pi <= 10; ++pi) {
      const double L = 0.1 * li, phi = 0.1 * pi;
      const double e =
          capacity::capacity_per_dollar_exponent(p.alpha, p.K, phi, L);
      if (e > best_e) {
        best_e = e;
        best_phi = phi;
        best_l = L;
      }
    }
  }
  std::cout << "frontier argmax:    phi = " << util::fmt_double(best_phi, 2)
            << ", L = " << util::fmt_double(best_l, 2)
            << " -> capacity/dollar n^" << util::fmt_double(best_e, 4)
            << " (grid step 0.1)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string cmd = argv[1];
  const Subcommand* sc = nullptr;
  for (const Subcommand& s : subcommands())
    if (cmd == s.name) sc = &s;
  if (sc == nullptr) {
    std::cerr << "unknown subcommand: " << cmd << "\n\n";
    usage();
    return 1;
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_subcommand_help(*sc);
      return 0;
    }
  }
  try {
    util::Flags flags(argc - 1, argv + 1, sc->flags, sc->name);
    return sc->run(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
