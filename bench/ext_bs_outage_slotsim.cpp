// Extension: failure injection in the *slot simulator* — the dynamic
// counterpart of ext_bs_outage (which degrades the fluid model). A
// FaultPlan kills base stations at the end of warmup and the packet
// simulator keeps running: affected MSs re-home to the nearest live BS,
// dying queues are dropped (counted), and delivered throughput is
// measured over the degraded window.
//
// Expected shape, mirroring the fluid laws: a *random* outage of a
// fraction p of BSs degrades the mean delivered rate by ≈ (1 − p)
// (access-limited linearity in k); a *regional* outage (every BS in a
// disk) collapses the min flow much faster than the mean — the flows
// anchored in the dead region fail over to distant BSs and queue behind
// everyone else.
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/faults.h"
#include "sim/slotsim.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace {
using namespace manetcap;

struct OutageRun {
  std::size_t surviving_k = 0;
  sim::SlotSimResult res;
};

OutageRun run_with_plan(const net::Network& net,
                        const std::vector<std::uint32_t>& dest,
                        const sim::SlotSimOptions& base,
                        const sim::FaultPlan& plan, std::size_t killed) {
  sim::SlotSimOptions opt = base;
  opt.faults = plan.empty() ? nullptr : &plan;
  OutageRun out;
  out.surviving_k = net.num_bs() - killed;
  out.res = sim::run_slot_sim(net, dest, opt);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"smoke"});
  const bool smoke = flags.get_bool("smoke", false);

  net::ScalingParams p;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.6;
  p.M = 1.0;
  p.phi = 0.0;
  p.n = smoke ? 256 : 512;

  sim::SlotSimOptions opt;
  opt.scheme = sim::SlotScheme::kSchemeB;
  opt.slots = smoke ? 1200 : 4000;
  opt.warmup = smoke ? 200 : 400;
  opt.seed = 107;

  std::cout << "=== extension: BS outage failure injection (slot sim) ===\n"
            << "n = " << p.n << ", alpha = 0.3, K = 0.6, phi = 0, scheme B, "
            << opt.slots << " slots (" << opt.warmup << " warmup)\n"
            << "faults fire at slot " << opt.warmup
            << " — the whole measurement window runs degraded\n\n";

  const auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                       net::BsPlacement::kClusteredMatched,
                                       401);
  rng::Xoshiro256 g(403);
  const auto dest = net::permutation_traffic(p.n, g);
  const std::size_t k = net.num_bs();

  const sim::FaultPlan no_faults;
  const auto baseline = run_with_plan(net, dest, opt, no_faults, 0);

  util::CsvWriter csv(util::artifact_path("ext_bs_outage_slotsim"),
                      {"kind", "param", "surviving_k", "mean_rate", "min_rate",
                       "ratio_mean", "prediction", "dropped_bs_outage"});

  // -- random outages: kill each BS independently with probability p --
  std::cout << "-- random outages: lose a fraction p of all BSs at slot "
            << opt.warmup << " --\n";
  util::Table t1({"outage p", "surviving k", "slot mean rate", "vs baseline",
                  "law prediction (1-p)", "dropped"});
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.1, 0.25, 0.5};
  for (double frac : fractions) {
    rng::Xoshiro256 kill(405);
    sim::FaultPlan plan;
    std::size_t killed = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (rng::uniform01(kill) < frac) {
        sim::FaultEvent e;
        e.slot = opt.warmup;
        e.kind = sim::FaultKind::kBsDown;
        e.bs = static_cast<std::uint32_t>(j);
        plan.events.push_back(e);
        ++killed;
      }
    }
    // The simulator (rightly) refuses to kill the last live BS.
    if (killed == k) {
      plan.events.pop_back();
      --killed;
    }
    const auto run = run_with_plan(net, dest, opt, plan, killed);
    // Predict with the *realized* kill fraction, not the nominal p — at
    // small k the Bernoulli draw is noisy and the law is about survivors.
    const double realized = static_cast<double>(killed) / k;
    t1.add_row({util::fmt_double(frac, 3), std::to_string(run.surviving_k),
                util::fmt_sci(run.res.mean_flow_rate, 3),
                util::fmt_ratio(run.res.mean_flow_rate,
                                baseline.res.mean_flow_rate, 3),
                util::fmt_double(1.0 - realized, 3),
                std::to_string(run.res.dropped_bs_outage)});
    csv.add_row({"random", util::fmt_double(frac, 3),
                 std::to_string(run.surviving_k),
                 util::fmt_sci(run.res.mean_flow_rate, 6),
                 util::fmt_sci(run.res.min_flow_rate, 6),
                 util::fmt_ratio(run.res.mean_flow_rate,
                                 baseline.res.mean_flow_rate, 6),
                 util::fmt_double(1.0 - realized, 6),
                 std::to_string(run.res.dropped_bs_outage)});
  }
  t1.print(std::cout);

  // -- regional outage: every BS within radius R of the torus center --
  std::cout << "\n-- regional outage: every BS within radius R of (0.5, 0.5) "
               "dies at slot "
            << opt.warmup << " --\n";
  util::Table t2({"outage radius", "surviving k", "slot mean rate",
                  "slot min rate", "min vs baseline min", "dropped"});
  const std::vector<double> radii = smoke ? std::vector<double>{0.2}
                                          : std::vector<double>{0.1, 0.2, 0.3};
  for (double radius : radii) {
    sim::FaultPlan plan;
    sim::FaultEvent e;
    e.slot = opt.warmup;
    e.kind = sim::FaultKind::kRegional;
    e.center = {0.5, 0.5};
    e.radius = radius;
    plan.events.push_back(e);
    // The simulator resolves the disk itself; count the kill here only to
    // report surviving k (same strict-< predicate as the simulator).
    std::size_t killed = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (geom::torus_dist(net.bs_pos()[j], {0.5, 0.5}) < radius) ++killed;
    }
    if (killed == k) {
      // A disk that swallows every BS would trip the last-live-BS guard;
      // skip the row rather than crash the bench.
      std::cout << "  (radius " << radius << " kills every BS — skipped)\n";
      continue;
    }
    const auto run = run_with_plan(net, dest, opt, plan, killed);
    t2.add_row({util::fmt_double(radius, 3), std::to_string(run.surviving_k),
                util::fmt_sci(run.res.mean_flow_rate, 3),
                util::fmt_sci(run.res.min_flow_rate, 3),
                util::fmt_ratio(run.res.min_flow_rate,
                                baseline.res.min_flow_rate, 3),
                std::to_string(run.res.dropped_bs_outage)});
    csv.add_row({"regional", util::fmt_double(radius, 3),
                 std::to_string(run.surviving_k),
                 util::fmt_sci(run.res.mean_flow_rate, 6),
                 util::fmt_sci(run.res.min_flow_rate, 6),
                 util::fmt_ratio(run.res.mean_flow_rate,
                                 baseline.res.mean_flow_rate, 6), "n/a",
                 std::to_string(run.res.dropped_bs_outage)});
  }
  t2.print(std::cout);

  std::cout
      << "\nReading: the packet simulator reproduces the fluid-model story\n"
      << "dynamically. Random outages track the (1 - p) access-law line —\n"
      << "re-homing spreads the orphaned MSs across survivors, so capacity\n"
      << "degrades with surviving k. A regional outage hits the min flow\n"
      << "hardest: flows anchored in the dead disk fail over to distant\n"
      << "BSs and queue behind their members. Every run's conservation\n"
      << "identity (injected == delivered + queued + dropped) is checked\n"
      << "inside run_slot_sim; the dropped column is exactly the queues\n"
      << "lost with dying BSs.\n";
  return 0;
}
