// Table I reproduction: per-node capacity scaling law in every regime.
//
// For each of the paper's five rows we sweep n geometrically, measure the
// fluid per-node capacity λ(n) of the regime's optimal scheme, and fit the
// scaling exponent. The paper's claim is the Θ(n^e) order — the fitted
// slope should land near the theoretical e (log factors and finite-n
// effects perturb it by ~0.1).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "analysis/loglog_fit.h"
#include "capacity/formulas.h"
#include "capacity/regimes.h"
#include "net/traffic.h"
#include "routing/static_multihop.h"
#include "rng/rng.h"
#include "sim/fluid.h"
#include "sim/sweep.h"
#include "util/artifacts.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace manetcap;

struct Row {
  const char* name;
  const char* condition;
  net::ScalingParams params;
  net::BsPlacement placement = net::BsPlacement::kClusteredMatched;
  std::vector<std::size_t> sizes;  // empty → default geometric sweep
};

/// Sizes at which scheme A's squarelet grid divides evenly: the grid side
/// is ⌊1.25·n^α⌋, so n = (g/1.25)^{1/α} keeps the effective cell-side
/// factor exactly 0.8 and removes tessellation-rounding wobble from the
/// scaling fit.
std::vector<std::size_t> grid_aligned_sizes(double alpha,
                                            const std::vector<int>& grids) {
  std::vector<std::size_t> sizes;
  for (int g : grids) {
    const double f = static_cast<double>(g) / 1.25;
    sizes.push_back(
        static_cast<std::size_t>(std::ceil(std::pow(f, 1.0 / alpha))) + 1);
  }
  return sizes;
}

net::ScalingParams make(double alpha, bool with_bs, double K, double M,
                        double R, double phi) {
  net::ScalingParams p;
  p.alpha = alpha;
  p.with_bs = with_bs;
  p.K = K;
  p.M = M;
  p.R = R;
  p.phi = phi;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"threads"});
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));
  std::cout << "=== Table I: capacity scaling in every mobility regime ===\n"
            << "lambda(n) measured by the fluid evaluator with the regime's\n"
            << "optimal scheme; slope of log lambda vs log n compared with\n"
            << "the paper's exponent (Theorems 3, 5, 7, 9; Corollary 3).\n"
            << "sweep threads: " << num_threads
            << " (results are thread-count independent)\n\n";

  // Parameter points sit deep inside each regime so that the asymptotic
  // law is visible at n ≤ 64k (boundaries converge only polylog-slowly).
  const auto aligned = grid_aligned_sizes(0.25, {10, 12, 14, 16, 18, 20});
  const std::vector<Row> rows = {
      {"strong, no BS", "f*sqrt(gamma)=o(1)",
       make(0.25, false, 0.0, 1.0, 0.0, 0.0),
       net::BsPlacement::kUniform, aligned},
      {"strong, with BS", "f*sqrt(gamma)=o(1)",
       make(0.25, true, 0.85, 1.0, 0.0, 0.0),
       net::BsPlacement::kClusteredMatched, aligned},
      // The clustered no-BS law needs m = n^M in the hundreds before the
      // Θ(1/log m) duty cycles localize (the cluster graph stops being a
      // clique); the evaluation is cheap without BSs, so sweep much larger
      // n with tight range constants (factor 1.2, Δ = 0.25).
      {"weak/trivial, no BS", "f*sqrt(gamma)=omega(1)",
       make(0.45, false, 0.0, 0.45, 0.35, 0.0),
       net::BsPlacement::kUniform,
       {131072, 262144, 524288, 1048576, 2097152, 4194304}},
      {"weak, with BS", "f*sqrt(gamma~)=o(1)",
       make(0.45, true, 0.75, 0.45, 0.35, 0.0),
       net::BsPlacement::kClusteredMatched, {}},
      {"trivial, with BS", "f*sqrt(gamma~)=omega(log(n/m))",
       make(0.75, true, 0.6, 0.2, 0.3, 0.0),
       net::BsPlacement::kClusterGrid, {}},
  };

  util::Table table({"regime", "condition", "paper capacity", "theory e",
                     "measured e", "stderr", "R^2", "strict e", "verdict"});

  const auto sizes = sim::geometric_sizes(2048, 2.0, 5);  // 2048 .. 32768
  const std::size_t trials = 3;

  util::CsvWriter csv(util::artifact_path("table1_lambda_vs_n"),
                      {"regime", "n", "lambda_gm", "lambda_min",
                       "lambda_max", "theory_exponent"});

  for (const auto& row : rows) {
    util::Stopwatch sw;
    const auto law = capacity::capacity_law(row.params);
    // Primary fit: the symmetric (typical-resource) capacity — the strict
    // worst-case λ carries a slowly-vanishing extreme-value bias at these
    // sizes (its slope is reported alongside for reference). Trials run
    // concurrently, so strict samples are collected under a mutex and
    // sorted into a schedule-independent order before fitting.
    struct StrictSample {
      double n;
      std::uint64_t seed;
      double lambda;
    };
    std::mutex strict_mu;
    std::vector<StrictSample> strict_samples;
    const bool clustered_no_bs = !row.params.with_bs &&
                                 row.params.M < 1.0;
    sim::SweepEvaluator eval = [&row, &strict_mu, &strict_samples,
                                clustered_no_bs](const sim::EvalContext& ctx) {
      const net::ScalingParams& p = ctx.params;
      const std::uint64_t seed = ctx.seed;
      double strict_lambda = 0.0, symmetric = 0.0;
      if (clustered_no_bs) {
        // Direct static-multihop evaluation with tight range constants —
        // the oversized defaults keep guard zones saturated at these m.
        auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                       net::BsPlacement::kUniform, seed);
        rng::Xoshiro256 g(seed * 69069u + 5);
        auto dest = net::permutation_traffic(p.n, g);
        routing::StaticMultihop sm(/*range_factor=*/1.2, /*delta=*/0.25);
        auto r = sm.evaluate(net, dest);
        strict_lambda = r.throughput.lambda;
        symmetric = r.lambda_symmetric;
      } else {
        sim::FluidOptions opt;
        opt.seed = seed;
        opt.placement = row.placement;
        auto out = sim::evaluate_capacity(p, opt);
        strict_lambda = out.lambda;
        symmetric = out.lambda_symmetric;
      }
      if (strict_lambda > 0.0) {
        std::lock_guard<std::mutex> lock(strict_mu);
        strict_samples.push_back(
            {static_cast<double>(p.n), seed, strict_lambda});
      }
      return symmetric;
    };
    sim::SweepOptions sopt;
    sopt.num_threads = num_threads;
    sopt.seed0 = 2026;
    auto sweep = sim::run_sweep(row.params,
                                row.sizes.empty() ? sizes : row.sizes,
                                trials, eval, sopt);
    std::sort(strict_samples.begin(), strict_samples.end(),
              [](const StrictSample& a, const StrictSample& b) {
                return a.n != b.n ? a.n < b.n : a.seed < b.seed;
              });

    for (const auto& point : sweep.points) {
      csv.add_row({row.name, std::to_string(point.n),
                   util::fmt_sci(point.lambda_gm, 6),
                   util::fmt_sci(point.lambda_min, 6),
                   util::fmt_sci(point.lambda_max, 6),
                   util::fmt_double(law.exponent, 4)});
    }

    std::string measured = "n/a", err = "-", r2 = "-", verdict = "FAIL";
    if (sweep.fit_valid) {
      measured = util::fmt_double(sweep.fit.exponent, 3);
      err = util::fmt_double(sweep.fit.stderr_, 2);
      r2 = util::fmt_double(sweep.fit.r_squared, 3);
      const double gap = std::abs(sweep.fit.exponent - law.exponent);
      verdict = gap < 0.12 ? "match" : (gap < 0.25 ? "close" : "off");
    }
    std::string strict = "n/a";
    if (strict_samples.size() >= 3) {
      std::vector<double> strict_n, strict_lambda;
      strict_n.reserve(strict_samples.size());
      strict_lambda.reserve(strict_samples.size());
      for (const auto& s : strict_samples) {
        strict_n.push_back(s.n);
        strict_lambda.push_back(s.lambda);
      }
      auto sf = analysis::fit_power_law(strict_n, strict_lambda);
      strict = util::fmt_double(sf.exponent, 3);
    }
    table.add_row({row.name, row.condition, law.expression,
                   util::fmt_double(law.exponent, 3), measured, err, r2,
                   strict, verdict});
    std::cerr << "[table1] " << row.name << " done in "
              << util::fmt_double(sw.seconds(), 3) << "s\n";
  }

  table.print(std::cout);

  std::cout << "\nOptimal transmission ranges (Table I, right column):\n";
  util::Table rt({"regime", "paper R_T", "exponent of R_T"});
  for (const auto& row : rows) {
    const auto law = capacity::capacity_law(row.params);
    rt.add_row({row.name, law.rt_expression,
                util::fmt_double(law.rt_exponent, 3)});
  }
  rt.print(std::cout);
  return 0;
}
