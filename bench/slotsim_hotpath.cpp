// Hot-path overhaul benchmark: the SoA slot simulator (run_slot_sim)
// against the frozen pre-overhaul reference (run_slot_sim_reference) on
// identical inputs. Reports wall-clock and slots/sec for both, verifies
// the two results are identical, writes a CSV artifact, and with --check
// gates on the speedup ratio against a checked-in baseline.
//
// The gate compares the *ratio* new/reference, not absolute slots/sec:
// both implementations run back-to-back in one process on the same
// hardware, so the ratio is stable across machines where raw throughput
// is not. A >25% drop of the measured ratio below the baseline ratio
// fails the run (exit 1) — that is the CI perf-smoke contract.
//
// Flags:
//   --scheme A|B|C|twohop  routing scheme            (default B)
//   --n N                  mobile-station count      (default 2000)
//   --slots S              simulated slots           (default 4000)
//   --smoke                pinned small case: scheme B, n=2000, 800 slots
//   --check                gate against the baseline; exit 1 on regression
//   --baseline PATH        baseline CSV
//                          (default bench/slotsim_hotpath_baseline.csv)
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/slotsim.h"
#include "sim/slotsim_reference.h"
#include "sim/sweep.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {
using namespace manetcap;

sim::SlotScheme scheme_from(const std::string& s) {
  if (s == "A") return sim::SlotScheme::kSchemeA;
  if (s == "B") return sim::SlotScheme::kSchemeB;
  if (s == "C") return sim::SlotScheme::kSchemeC;
  if (s == "twohop") return sim::SlotScheme::kTwoHop;
  throw std::runtime_error("unknown scheme: " + s);
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool identical(const sim::SlotSimResult& a, const sim::SlotSimResult& b) {
  return bits_equal(a.mean_flow_rate, b.mean_flow_rate) &&
         bits_equal(a.min_flow_rate, b.min_flow_rate) &&
         bits_equal(a.p10_flow_rate, b.p10_flow_rate) &&
         bits_equal(a.pairs_per_slot, b.pairs_per_slot) &&
         bits_equal(a.mean_delay, b.mean_delay) &&
         bits_equal(a.p95_delay, b.p95_delay) &&
         a.total_delivered == b.total_delivered &&
         a.measured_slots == b.measured_slots && a.injected == b.injected &&
         a.delivered_lifetime == b.delivered_lifetime &&
         a.queued_end == b.queued_end && a.dropped == b.dropped;
}

/// Reads the baseline speedup for `case_name` from a CSV with columns
/// case,scheme,n,slots,speedup. Returns 0 when the case is absent.
double baseline_speedup(const std::string& path, const std::string& case_name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline: " + path);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() >= 5 && fields[0] == case_name)
      return std::stod(fields[4]);
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(
      argc, argv, {"scheme", "n", "slots", "smoke", "check", "baseline"});
  const bool smoke = flags.get_bool("smoke", false);
  const std::string case_name = smoke ? "smoke" : "full";

  net::ScalingParams p;
  p.n = static_cast<std::size_t>(flags.get_int("n", 2000));
  p.alpha = 0.35;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;

  sim::SlotSimOptions opt;
  opt.scheme = scheme_from(flags.get_string("scheme", "B"));
  opt.slots = static_cast<std::size_t>(flags.get_int("slots",
                                                     smoke ? 800 : 4000));
  opt.warmup = opt.slots / 10;
  opt.seed = 1;

  auto placement = opt.scheme == sim::SlotScheme::kSchemeC && !p.cluster_free()
                       ? net::BsPlacement::kClusterGrid
                       : net::BsPlacement::kClusteredMatched;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 placement, opt.seed);
  rng::Xoshiro256 g(sim::traffic_seed(opt.seed));
  auto dest = net::permutation_traffic(p.n, g);

  std::cout << "=== slot-simulator hot path: SoA rewrite vs reference ===\n"
            << "case " << case_name << ": scheme "
            << to_string(opt.scheme) << ", n = " << p.n << ", "
            << opt.slots << " slots (seed 1)\n\n";

  util::Stopwatch sw;
  const auto ref = sim::run_slot_sim_reference(net, dest, opt);
  const double t_ref = sw.seconds();
  sw.reset();
  const auto soa = sim::run_slot_sim(net, dest, opt);
  const double t_soa = sw.seconds();

  const double sps_ref = static_cast<double>(opt.slots) / t_ref;
  const double sps_soa = static_cast<double>(opt.slots) / t_soa;
  const double speedup = sps_soa / sps_ref;

  util::Table t({"impl", "wall-clock [s]", "slots/sec", "speedup",
                 "identical"});
  t.add_row({"reference", util::fmt_double(t_ref, 3),
             std::to_string(std::llround(sps_ref)), "1.00", "-"});
  t.add_row({"SoA", util::fmt_double(t_soa, 3),
             std::to_string(std::llround(sps_soa)),
             util::fmt_double(speedup, 3),
             identical(ref, soa) ? "yes" : "NO (BUG)"});
  t.print(std::cout);

  util::CsvWriter csv(util::artifact_path("slotsim_hotpath"),
                      {"case", "scheme", "n", "slots", "impl", "wall_s",
                       "slots_per_sec", "speedup_vs_reference"});
  csv.add_row({case_name, to_string(opt.scheme), std::to_string(p.n),
               std::to_string(opt.slots), "reference",
               util::fmt_double(t_ref, 4),
               std::to_string(std::llround(sps_ref)), "1.00"});
  csv.add_row({case_name, to_string(opt.scheme), std::to_string(p.n),
               std::to_string(opt.slots), "soa", util::fmt_double(t_soa, 4),
               std::to_string(std::llround(sps_soa)),
               util::fmt_double(speedup, 3)});

  if (!identical(ref, soa)) {
    std::cerr << "\nERROR: SoA simulator diverged from the reference\n";
    return 1;
  }

  if (flags.get_bool("check", false)) {
    const std::string path = flags.get_string(
        "baseline", "bench/slotsim_hotpath_baseline.csv");
    const double want = baseline_speedup(path, case_name);
    if (want <= 0.0) {
      std::cerr << "\nERROR: no baseline row for case '" << case_name
                << "' in " << path << "\n";
      return 1;
    }
    const double floor = 0.75 * want;
    std::cout << "\nperf gate: measured speedup "
              << util::fmt_double(speedup, 2) << "x vs baseline "
              << util::fmt_double(want, 2) << "x (floor "
              << util::fmt_double(floor, 2) << "x, 25% regression budget): "
              << (speedup >= floor ? "OK" : "REGRESSION") << "\n";
    if (speedup < floor) {
      std::cerr << "ERROR: hot-path speedup regressed by more than 25%\n";
      return 1;
    }
  }
  return 0;
}
