// Extension: the L-maximum-hop allocation of Li–Zhang–Fang [9].
//
// Flows within L squarelet hops stay ad hoc; farther flows ride the
// infrastructure; the wireless channel is split between the two. Sweeping
// L traces the interpolation between pure scheme B (L = 0) and pure
// scheme A (L → grid diameter) and shows where the interior optimum sits
// for a given infrastructure density.
#include <iostream>

#include "net/traffic.h"
#include "routing/l_hop.h"
#include "rng/rng.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== extension: L-maximum-hop hybrid allocation ===\n"
            << "n = 8192, alpha = 0.3, phi = 0, even channel split\n\n";

  for (double K : {0.6, 0.8}) {
    net::ScalingParams p;
    p.n = 8192;
    p.alpha = 0.3;
    p.with_bs = true;
    p.K = K;
    p.M = 1.0;
    p.phi = 0.0;
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched, 501);
    rng::Xoshiro256 g(503);
    auto dest = net::permutation_traffic(p.n, g);

    std::cout << "-- K = " << K << " (k = " << p.k() << ") --\n";
    util::Table t({"L", "short flows", "long flows", "lambda (typical)",
                   "adhoc-class bound", "infra-class bound"});
    double best = 0.0;
    int best_l = 0;
    for (int L : {0, 1, 2, 4, 8, 16, 32}) {
      routing::LMaxHop scheme(L);
      auto r = scheme.evaluate(net, dest);
      if (r.lambda_symmetric > best) {
        best = r.lambda_symmetric;
        best_l = L;
      }
      t.add_row({std::to_string(L), std::to_string(r.short_flows),
                 std::to_string(r.long_flows),
                 util::fmt_sci(r.lambda_symmetric, 3),
                 util::fmt_sci(r.lambda_adhoc_class, 3),
                 util::fmt_sci(r.lambda_infra_class, 3)});
    }
    t.print(std::cout);
    std::cout << "best L = " << best_l << " (lambda "
              << util::fmt_sci(best, 3) << ")\n\n";
  }

  std::cout
      << "Reading: the binding class flips where the two bound columns\n"
      << "cross. With sparse infrastructure (K = 0.6) the infra class is\n"
      << "always the choke point and the best policy is all-ad-hoc\n"
      << "(large L); with dense infrastructure (K = 0.8) offloading\n"
      << "everything to the BSs wins (L = 0). The [9] design dial moves\n"
      << "from one extreme to the other as k = n^K grows — exactly the\n"
      << "mobility-dominant vs infrastructure-dominant split of Fig. 3.\n";
  return 0;
}
