// Slot-level validation: the fluid capacity numbers must be achievable by
// a real spatio-temporal schedule (Definition 5). For each scheme we run
// the packet simulator under saturation and compare delivered throughput
// with the fluid λ of the same instance — the ratio should be an O(1)
// constant, stable across sizes and mobility processes.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/scheme_c.h"
#include "routing/two_hop.h"
#include "rng/rng.h"
#include "sim/slotsim.h"
#include "sim/trace.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {
using namespace manetcap;

struct Case {
  const char* name;
  net::ScalingParams params;
  sim::SlotScheme scheme;
};

// "scheme-A n=512" → "scheme-A_n512" (artifact file stem).
std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == ' ') out.push_back('_');
    else if (c != '=') out.push_back(c);
  }
  return out;
}

// CI gate: tracing must stay near-free. Runs one representative scheme-B
// instance with and without a trace attached, interleaved min-of-3 per
// variant (min absorbs scheduler noise; interleaving absorbs thermal
// drift), and fails when the traced run is more than 10% slower.
int run_trace_overhead_check() {
  net::ScalingParams p;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.8;
  p.M = 1.0;
  p.phi = 0.0;
  p.n = 512;
  const auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                       net::BsPlacement::kClusteredMatched,
                                       101);
  rng::Xoshiro256 g(103);
  const auto dest = net::permutation_traffic(p.n, g);
  sim::SlotSimOptions opt;
  opt.scheme = sim::SlotScheme::kSchemeB;
  opt.slots = 4000;
  opt.warmup = 400;
  opt.seed = 107;

  constexpr int kReps = 3;
  double best_off = 1e300, best_on = 1e300;
  // Untimed warmup rep to fault in code and allocator pools.
  sim::run_slot_sim(net, dest, opt);
  for (int rep = 0; rep < kReps; ++rep) {
    {
      opt.trace = nullptr;
      util::Stopwatch sw;
      sim::run_slot_sim(net, dest, opt);
      best_off = std::min(best_off, sw.seconds());
    }
    {
      sim::Trace trace;
      opt.trace = &trace;
      util::Stopwatch sw;
      sim::run_slot_sim(net, dest, opt);
      best_on = std::min(best_on, sw.seconds());
    }
  }
  const double ratio = best_on / best_off;
  std::cout << "trace overhead: untraced " << best_off * 1e3 << " ms, traced "
            << best_on * 1e3 << " ms, ratio " << ratio << " (limit 1.10)\n";
  if (ratio > 1.10) {
    std::cout << "FAIL: tracing-enabled run regressed more than 10%\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv,
                          {"threads", "trace", "trace-overhead-check"});
  if (flags.get_bool("trace-overhead-check", false))
    return run_trace_overhead_check();
  const bool with_trace = flags.get_bool("trace", false);
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));
  std::cout << "=== slot-level schedule vs fluid capacity ===\n"
            << "saturated sources, S* scheduling, 4000 slots (400 warmup)\n\n";

  std::vector<Case> cases;
  {
    net::ScalingParams p;
    p.alpha = 0.3;
    p.with_bs = false;
    p.M = 1.0;
    p.n = 512;
    cases.push_back({"scheme-A n=512", p, sim::SlotScheme::kSchemeA});
    p.n = 1024;
    cases.push_back({"scheme-A n=1024", p, sim::SlotScheme::kSchemeA});
  }
  {
    net::ScalingParams p;
    p.alpha = 0.0;  // full mixing for two-hop
    p.with_bs = false;
    p.M = 1.0;
    p.n = 256;
    cases.push_back({"two-hop n=256", p, sim::SlotScheme::kTwoHop});
  }
  {
    net::ScalingParams p;
    p.alpha = 0.3;
    p.with_bs = true;
    p.K = 0.8;
    p.M = 1.0;
    p.phi = 0.0;
    p.n = 512;
    cases.push_back({"scheme-B n=512", p, sim::SlotScheme::kSchemeB});
    p.n = 1024;
    cases.push_back({"scheme-B n=1024", p, sim::SlotScheme::kSchemeB});
  }
  {
    // Trivial regime (α > ½, see DESIGN.md) with the Definition 13
    // cluster-grid BS placement.
    net::ScalingParams p;
    p.alpha = 0.75;
    p.with_bs = true;
    p.K = 0.6;
    p.M = 0.2;
    p.R = 0.3;
    p.phi = 0.0;
    p.n = 1024;
    cases.push_back({"scheme-C n=1024", p, sim::SlotScheme::kSchemeC});
  }

  // The slot simulator's *mean* flow rate is the typical-flow quantity, so
  // it is compared against the symmetric fluid estimate; the strict fluid
  // λ (worst flow) pairs with the p10 tail.
  util::Table t({"case", "fluid strict", "fluid symmetric", "slot mean rate",
                 "slot p10 rate", "slot/symmetric", "pairs/slot"});

  // Every case is an independent instance + simulation: fan the cases out
  // across the pool, then emit rows in declaration order.
  struct CaseResult {
    double strict = 0.0, symmetric = 0.0;
    sim::SlotSimResult slot;
    sim::Metrics metrics;  // per-case audit trail (counters + slot series)
    sim::Trace trace;      // captured only when --trace is set
  };
  std::vector<CaseResult> results(cases.size());
  {
    util::ThreadPool pool(std::min<std::size_t>(
        num_threads == 0 ? util::ThreadPool::default_num_threads()
                         : num_threads,
        cases.size()));
    pool.for_each_index(cases.size(), [&cases, &results,
                                       with_trace](std::size_t i) {
      const auto& c = cases[i];
      auto net = net::Network::build(
          c.params, mobility::ShapeKind::kUniformDisk,
          c.scheme == sim::SlotScheme::kSchemeC
              ? net::BsPlacement::kClusterGrid
              : net::BsPlacement::kClusteredMatched,
          101);
      rng::Xoshiro256 g(103);
      auto dest = net::permutation_traffic(c.params.n, g);

      double strict = 0.0, symmetric = 0.0;
      switch (c.scheme) {
        case sim::SlotScheme::kSchemeA: {
          routing::SchemeA a;
          auto r = a.evaluate(net, dest);
          strict = r.throughput.lambda;
          symmetric = r.lambda_symmetric;
          break;
        }
        case sim::SlotScheme::kTwoHop: {
          routing::TwoHopRelay th;
          auto r = th.evaluate(net, dest);
          strict = r.throughput.lambda;
          symmetric = r.lambda_symmetric;
          break;
        }
        case sim::SlotScheme::kSchemeB: {
          routing::SchemeB b;
          auto r = b.evaluate(net, dest);
          strict = r.throughput.lambda;
          symmetric = r.lambda_symmetric;
          break;
        }
        case sim::SlotScheme::kSchemeC: {
          routing::SchemeC c2;
          auto r = c2.evaluate(net, dest);
          strict = r.throughput.lambda;
          symmetric = r.lambda_symmetric;
          break;
        }
      }

      sim::SlotSimOptions opt;
      opt.scheme = c.scheme;
      opt.slots = 4000;
      opt.warmup = 400;
      opt.seed = 107;
      results[i].strict = strict;
      results[i].symmetric = symmetric;
      results[i].metrics.enable_series(opt.slots);
      opt.metrics = &results[i].metrics;
      if (with_trace) opt.trace = &results[i].trace;
      results[i].slot = sim::run_slot_sim(net, dest, opt);
    });
  }

  // --trace: replay every captured event log through the invariant
  // checker; a violation in any case fails the bench.
  bool traces_ok = true;
  if (with_trace) {
    std::cout << "=== trace replay (sim::verify_trace) ===\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto verdict = sim::verify_trace(results[i].trace);
      std::cout << cases[i].name << " [" << results[i].trace.events.size()
                << " events]: " << verdict.summary();
      traces_ok = traces_ok && verdict.ok;
    }
    std::cout << "\n";
  }

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& res = results[i];
    const auto& r = res.slot;
    t.add_row({c.name, util::fmt_sci(res.strict, 3),
               util::fmt_sci(res.symmetric, 3),
               util::fmt_sci(r.mean_flow_rate, 3),
               util::fmt_sci(r.p10_flow_rate, 3),
               res.symmetric > 0.0
                   ? util::fmt_double(r.mean_flow_rate / res.symmetric, 3)
                   : "-",
               util::fmt_double(r.pairs_per_slot, 3)});
  }
  t.print(std::cout);

  // Packet-conservation audit: every recorded run ships its accounting.
  // The invariant injected == delivered + queued + dropped was already
  // checked inside run_slot_sim; this table (and the CSVs under
  // bench_csv/) make the flow visible — rejects and stalls are where
  // throughput quietly leaks.
  std::cout << "\n=== packet-conservation audit ===\n";
  util::Table audit_table({"case", "injected", "delivered", "queued end",
                           "inject rej", "relay rej", "wired stalls"});
  {
    util::CsvWriter audit_csv(util::artifact_path("slotsim_validation_audit"),
                              {"case", "counter", "value"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto& m = results[i].metrics;
      const auto& r = results[i].slot;
      audit_table.add_row(
          {cases[i].name, std::to_string(r.injected),
           std::to_string(r.delivered_lifetime), std::to_string(r.queued_end),
           std::to_string(m.count(sim::Counter::kInjectRejectQueueFull)),
           std::to_string(m.count(sim::Counter::kRelayRejectQueueFull)),
           std::to_string(m.count(sim::Counter::kWiredCreditStall))});
      for (std::size_t ci = 0; ci < sim::kNumCounters; ++ci) {
        const auto counter = static_cast<sim::Counter>(ci);
        audit_csv.add_row({cases[i].name, sim::to_string(counter),
                           std::to_string(m.count(counter))});
      }
      results[i].metrics.write_series_csv("slotsim_validation_" +
                                          sanitize(cases[i].name));
    }
  }
  audit_table.print(std::cout);

  std::cout << "\n=== mobility-process insensitivity (Lemma 2) ===\n"
            << "same instance, three ergodic processes sharing the\n"
            << "stationary law; delivered throughput should agree.\n";
  {
    net::ScalingParams p;
    p.alpha = 0.3;
    p.with_bs = false;
    p.M = 1.0;
    p.n = 512;
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kUniform, 109);
    rng::Xoshiro256 g(113);
    auto dest = net::permutation_traffic(p.n, g);
    util::Table t2({"mobility process", "slot mean rate", "pairs/slot"});
    const std::vector<sim::SlotMobility> mobs = {sim::SlotMobility::kIid,
                                                 sim::SlotMobility::kWalk,
                                                 sim::SlotMobility::kPullHome};
    std::vector<sim::SlotSimResult> mob_results(mobs.size());
    util::ThreadPool pool(std::min<std::size_t>(
        num_threads == 0 ? util::ThreadPool::default_num_threads()
                         : num_threads,
        mobs.size()));
    pool.for_each_index(mobs.size(),
                        [&mobs, &mob_results, &net, &dest](std::size_t i) {
                          sim::SlotSimOptions opt;
                          opt.scheme = sim::SlotScheme::kSchemeA;
                          opt.mobility = mobs[i];
                          opt.slots = 4000;
                          opt.warmup = 400;
                          opt.seed = 127;
                          mob_results[i] = sim::run_slot_sim(net, dest, opt);
                        });
    for (std::size_t i = 0; i < mobs.size(); ++i) {
      const auto& r = mob_results[i];
      const char* name = mobs[i] == sim::SlotMobility::kIid    ? "iid"
                         : mobs[i] == sim::SlotMobility::kWalk ? "bounded walk"
                                                               : "AR(1) pull";
      t2.add_row({name, util::fmt_sci(r.mean_flow_rate, 3),
                  util::fmt_double(r.pairs_per_slot, 3)});
    }
    t2.print(std::cout);
  }
  return traces_ok ? 0 : 1;
}
