// SINR backend smoke: correctness invariants + ratio-gated wall clock.
//
// Runs the same instance (strong-regime scheme A, plus a scheme B variant)
// through the packet engine under each interference backend and reports
// rate, concurrency, rejection counters and wall clock per backend. The
// protocol run is the baseline; the gates are RATIOS against it, so the
// bench is host-speed independent:
//
//   * wall(sinr) / wall(protocol) ≤ --budget-ratio (the SINR filter is
//     O(pairs) expected per slot — near-field disk visits plus a
//     closed-form far-field term — so the overhead must stay a constant
//     factor, not a new asymptotic term);
//   * the SINR schedule is a subset: pairs/slot never exceeds protocol's,
//     and a non-zero cut shows up in the matching audit counter;
//   * the protocol run reports zero PHY counters (no model constructed).
//
// Flags:
//   --smoke          CI-sized instance (n = 256, 400 slots)
//   --check          gate the invariants above; exit 1 on violation
//   --n N            population (default 512)
//   --slots S        horizon (default 800)
//   --budget-ratio R wall-clock ceiling for sinr/protocol (default 8.0)
#include <iostream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "phy/interference.h"
#include "rng/rng.h"
#include "sim/metrics.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {
using namespace manetcap;

struct BackendRun {
  double wall_s = 0.0;
  double rate = 0.0;
  double pairs_per_slot = 0.0;
  std::uint64_t sinr_rejected = 0;
  std::uint64_t csma_suppressed = 0;
};

BackendRun run_backend(const net::Network& net,
                       const std::vector<std::uint32_t>& dest,
                       sim::SlotScheme scheme, std::size_t slots,
                       phy::PhyKind kind) {
  sim::SlotSimOptions opt;
  opt.scheme = scheme;
  opt.slots = slots;
  opt.warmup = slots / 5;
  opt.seed = 9;
  opt.phy = kind;
  // Noise-limited enough that the SINR stage visibly cuts the schedule,
  // and a CCA threshold low enough that the CSMA stage does too.
  opt.sinr.beta = 3.0;
  opt.sinr.snr_edge = 2.0;
  opt.sinr.cca = 0.5;
  sim::Metrics m;
  opt.metrics = &m;
  util::Stopwatch sw;
  const auto r = sim::run_slot_sim(net, dest, opt);
  BackendRun out;
  out.wall_s = sw.seconds();
  out.rate = r.mean_flow_rate;
  out.pairs_per_slot = r.pairs_per_slot;
  out.sinr_rejected = m.count(sim::Counter::kPhySinrRejected);
  out.csma_suppressed = m.count(sim::Counter::kPhyCsmaSuppressed);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv,
                          {"smoke", "check", "n", "slots", "budget-ratio"});
  const bool smoke = flags.get_bool("smoke", false);
  const bool check = flags.get_bool("check", false);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", smoke ? 256 : 512));
  const std::size_t slots =
      static_cast<std::size_t>(flags.get_int("slots", smoke ? 400 : 800));
  const double budget_ratio = flags.get_double("budget-ratio", 8.0);

  const std::string artifact = util::artifact_path("sinr_smoke");
  util::CsvWriter csv(artifact,
                      {"scheme", "phy", "n", "slots", "rate",
                       "pairs_per_slot", "sinr_rejected", "csma_suppressed",
                       "wall_s", "wall_ratio"});
  bool ok = true;

  const struct {
    sim::SlotScheme scheme;
    bool with_bs;
  } cases[] = {{sim::SlotScheme::kSchemeA, false},
               {sim::SlotScheme::kSchemeB, true}};
  for (const auto& c : cases) {
    net::ScalingParams p;
    p.n = n;
    p.alpha = 0.35;
    p.with_bs = c.with_bs;
    p.K = 0.75;
    p.M = 1.0;
    const auto placement = c.with_bs ? net::BsPlacement::kClusteredMatched
                                     : net::BsPlacement::kUniform;
    const auto net = net::Network::build(
        p, mobility::ShapeKind::kUniformDisk, placement, 7);
    rng::Xoshiro256 g(sim::traffic_seed(7));
    const auto dest = net::permutation_traffic(p.n, g);

    std::cout << "=== " << to_string(c.scheme) << ", n = " << n << ", "
              << slots << " slots ===\n\n";
    util::Table t({"phy", "rate", "pairs/slot", "sinr cut", "csma cut",
                   "wall", "vs protocol"});
    BackendRun protocol;
    for (phy::PhyKind kind : {phy::PhyKind::kProtocol, phy::PhyKind::kSinr,
                              phy::PhyKind::kSinrCsma}) {
      const BackendRun r = run_backend(net, dest, c.scheme, slots, kind);
      if (kind == phy::PhyKind::kProtocol) protocol = r;
      const double wall_ratio =
          protocol.wall_s > 0.0 ? r.wall_s / protocol.wall_s : 0.0;
      t.add_row({phy::to_string(kind), util::fmt_sci(r.rate, 4),
                 util::fmt_double(r.pairs_per_slot, 3),
                 std::to_string(r.sinr_rejected),
                 std::to_string(r.csma_suppressed),
                 util::fmt_double(r.wall_s, 3) + "s",
                 util::fmt_double(wall_ratio, 2) + "x"});
      csv.add_row({to_string(c.scheme), phy::to_string(kind),
                   std::to_string(n), std::to_string(slots),
                   util::fmt_sci(r.rate, 6),
                   util::fmt_double(r.pairs_per_slot, 4),
                   std::to_string(r.sinr_rejected),
                   std::to_string(r.csma_suppressed),
                   util::fmt_double(r.wall_s, 4),
                   util::fmt_double(wall_ratio, 3)});

      if (kind == phy::PhyKind::kProtocol) {
        if (r.sinr_rejected != 0 || r.csma_suppressed != 0) {
          std::cout << "FAIL: protocol run reported PHY counters\n";
          ok = false;
        }
        continue;
      }
      if (r.pairs_per_slot > protocol.pairs_per_slot) {
        std::cout << "FAIL: " << phy::to_string(kind)
                  << " scheduled MORE pairs than protocol ("
                  << r.pairs_per_slot << " > " << protocol.pairs_per_slot
                  << ")\n";
        ok = false;
      }
      const std::uint64_t cut = r.sinr_rejected + r.csma_suppressed;
      if (cut == 0) {
        std::cout << "FAIL: " << phy::to_string(kind)
                  << " cut nothing under a noise-limited config\n";
        ok = false;
      }
      if (wall_ratio > budget_ratio) {
        std::cout << "FAIL: " << phy::to_string(kind) << " wall ratio "
                  << util::fmt_double(wall_ratio, 2) << "x exceeds budget "
                  << util::fmt_double(budget_ratio, 2) << "x\n";
        ok = false;
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "artifact: " << artifact << "\n";
  if (check) {
    std::cout << (ok ? "CHECK PASS\n" : "CHECK FAIL\n");
    return ok ? 0 : 1;
  }
  return 0;
}
