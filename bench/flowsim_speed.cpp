// Flow-engine bench: cross-validation + speed.
//
// Part 1 — cross-validation. For each of the four golden-trace scenarios
// (one per scheme, the same instances the byte-compared traces pin), run
// the packet engine and the flow engine on the identical network + traffic
// and compare mean per-flow rates. The flow engine is a relaxation — it
// assumes perfect scheduling over the evaluator's constraint rows — so the
// ratio fluid/slots is expected near 1 for the centrally-scheduled schemes
// (B, C) and above 1 for the contention-limited ad hoc schemes (A,
// two-hop). --check gates each scenario's ratio inside a per-scheme band.
//
// Part 2 — speed. A λ(n) scaling sweep up to n = 10⁵ through the fluid
// engine (run_sweep --engine fluid equivalent), timed end to end. --check
// gates the total wall clock: the sweep that takes SlotSim hours must
// complete in seconds.
//
// Flags:
//   --smoke      sweep tops out at n = 2·10⁴ (CI-sized)
//   --check      gate ratio bands + sweep wall clock; exit 1 on violation
//   --n N        sweep top size (default 100000)
//   --budget S   sweep wall-clock ceiling in seconds (default 60)
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {
using namespace manetcap;

sim::FlowScheme flow_scheme_of(sim::SlotScheme s) {
  switch (s) {
    case sim::SlotScheme::kSchemeA:
      return sim::FlowScheme::kSchemeA;
    case sim::SlotScheme::kTwoHop:
      return sim::FlowScheme::kTwoHop;
    case sim::SlotScheme::kSchemeB:
      return sim::FlowScheme::kSchemeB;
    case sim::SlotScheme::kSchemeC:
      return sim::FlowScheme::kSchemeC;
  }
  return sim::FlowScheme::kSchemeA;
}

/// Accepted fluid/slots mean-rate band per golden scenario. The bands are
/// behavioural contracts, not noise margins: a fluid rate that drifts out
/// of band means one engine's model changed (e.g. the wired-credit pacing
/// or a duty-cycle law) without the other following.
struct Band {
  double lo, hi;
};

Band band_of(sim::SlotScheme s) {
  switch (s) {
    case sim::SlotScheme::kSchemeA:
      return {0.8, 4.0};  // relaxation: fluid ≥ packet, bounded contention
    case sim::SlotScheme::kTwoHop:
      return {1.0, 12.0};  // random matching leaves most of the bound unused
    case sim::SlotScheme::kSchemeB:
      // Same credit pacing both sides, but fluid pins each flow to ONE
      // wired edge while the packet engine round-robins over the serving
      // set — at golden-trace sizes that costs up to ~2x.
      return {0.35, 2.5};
    case sim::SlotScheme::kSchemeC:
      return {0.25, 2.0};  // duty-cycle law is conservative vs list schedule
  }
  return {0.0, 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv,
                          {"smoke", "check", "n", "budget"});
  const bool smoke = flags.get_bool("smoke", false);
  const bool check = flags.get_bool("check", false);
  const std::size_t n_top = static_cast<std::size_t>(
      flags.get_int("n", smoke ? 20000 : 100000));
  const double budget_s = flags.get_double("budget", 60.0);

  util::CsvWriter csv(util::artifact_path("flowsim_speed"),
                      {"part", "case", "n", "fluid_rate", "slots_rate",
                       "ratio", "fluid_wall_s", "slots_wall_s"});
  bool ok = true;

  // --- part 1: per-scheme cross-validation on the golden scenarios --------
  std::cout << "=== flow engine vs packet engine: golden scenarios ===\n\n";
  util::Table xval({"case", "n", "fluid rate", "slots rate", "ratio",
                    "band", "speedup"});
  for (const auto& spec : sim::golden_trace_specs()) {
    const auto net =
        net::Network::build(spec.params, mobility::ShapeKind::kUniformDisk,
                            spec.placement, spec.net_seed);
    rng::Xoshiro256 g(spec.traffic_seed);
    const auto dest = net::permutation_traffic(spec.params.n, g);

    sim::SlotSimOptions sopt;
    sopt.scheme = spec.scheme;
    sopt.slots = spec.slots;
    sopt.warmup = spec.warmup;
    sopt.seed = spec.sim_seed;
    util::Stopwatch sw;
    const auto sres = sim::run_slot_sim(net, dest, sopt);
    const double slots_wall = sw.seconds();

    sim::FlowSimOptions fopt;
    fopt.scheme = flow_scheme_of(spec.scheme);
    fopt.slots = spec.slots;
    fopt.warmup = spec.warmup;
    fopt.seed = spec.sim_seed;
    sw.reset();
    const auto fres = sim::run_flow_sim(net, dest, fopt);
    const double fluid_wall = sw.seconds();

    const double ratio = sres.mean_flow_rate > 0.0
                             ? fres.mean_flow_rate / sres.mean_flow_rate
                             : 0.0;
    const Band band = band_of(spec.scheme);
    const bool in_band = ratio >= band.lo && ratio <= band.hi;
    ok = ok && in_band;
    xval.add_row(
        {spec.name, std::to_string(spec.params.n),
         util::fmt_sci(fres.mean_flow_rate, 4),
         util::fmt_sci(sres.mean_flow_rate, 4),
         util::fmt_double(ratio, 3) + (in_band ? "" : "  OUT OF BAND"),
         "[" + util::fmt_double(band.lo, 2) + ", " +
             util::fmt_double(band.hi, 2) + "]",
         util::fmt_double(slots_wall / std::max(fluid_wall, 1e-9), 1) +
             "x"});
    csv.add_row({"xval", spec.name, std::to_string(spec.params.n),
                 util::fmt_sci(fres.mean_flow_rate, 6),
                 util::fmt_sci(sres.mean_flow_rate, 6),
                 util::fmt_double(ratio, 4), util::fmt_double(fluid_wall, 4),
                 util::fmt_double(slots_wall, 4)});
  }
  xval.print(std::cout);

  // --- part 2: fluid-engine scaling sweep to n_top ------------------------
  std::cout << "\n=== fluid-engine scaling sweep to n = " << n_top
            << " ===\n\n";
  net::ScalingParams base;
  base.alpha = 0.35;
  base.with_bs = true;
  base.K = 0.7;
  base.M = 1.0;
  const auto sizes = sim::geometric_sizes(n_top / 16, 2.0, 5);
  sim::EngineOptions eopt;
  eopt.slots = 2000;
  eopt.warmup = 200;
  sim::SweepOptions swopt;
  swopt.seed0 = 1;
  swopt.num_threads = 0;  // all cores; bit-identical for any value
  util::Stopwatch sweep_sw;
  const auto sweep = sim::run_sweep(
      base, sizes, 2, sim::make_engine_evaluator(sim::EngineKind::kFluid,
                                                 eopt),
      swopt);
  const double sweep_wall = sweep_sw.seconds();

  util::Table st({"n", "lambda (gm)", "min", "max"});
  for (const auto& pt : sweep.points) {
    st.add_row({std::to_string(pt.n), util::fmt_sci(pt.lambda_gm, 4),
                util::fmt_sci(pt.lambda_min, 4),
                util::fmt_sci(pt.lambda_max, 4)});
    csv.add_row({"sweep", "strong", std::to_string(pt.n),
                 util::fmt_sci(pt.lambda_gm, 6), "", "", "", ""});
  }
  st.print(std::cout);
  if (sweep.fit_valid)
    std::cout << "fitted exponent: "
              << util::fmt_double(sweep.fit.exponent, 4) << " (R^2 = "
              << util::fmt_double(sweep.fit.r_squared, 4) << ")\n";
  std::cout << "sweep wall clock: " << util::fmt_double(sweep_wall, 2)
            << " s (" << sizes.size() << " sizes x 2 trials, budget "
            << util::fmt_double(budget_s, 0) << " s)\n";
  csv.add_row({"sweep", "wall_clock", std::to_string(n_top), "", "", "",
               util::fmt_double(sweep_wall, 3), ""});

  if (check && sweep_wall > budget_s) {
    std::cerr << "ERROR: fluid sweep took " << util::fmt_double(sweep_wall, 1)
              << " s > budget " << util::fmt_double(budget_s, 0) << " s\n";
    ok = false;
  }
  if (check && !ok) {
    std::cerr << "flowsim_speed: gate FAILED\n";
    return 1;
  }
  std::cout << "\nflowsim_speed: " << (ok ? "all gates pass" : "ratio out of "
                                                               "band (not "
                                                               "gated)")
            << "\n";
  return 0;
}
