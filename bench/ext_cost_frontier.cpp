// Extension: the generalized infrastructure cost/capacity frontier.
//
// Jeong & Shin (arXiv:1402.2042) generalize the paper's BS model with
// l = n^L antennas and backhaul µ_c = n^ϕ, turning the infrastructure law
// into Θ(min(k·l, k²c, n)/n). This bench measures where that law *bends*
// on the fluid engine — forced schemes, log-log exponent fits over an
// n-sweep (scheme C: typical-resource λ; scheme B: strict solver λ) — and
// prints the capacity-per-BS-dollar frontier the new recommend API
// computes.
//
// Which scheme shows which bend is itself a finding of this reproduction:
//   * Scheme C (cellular TDMA, Theorem 9) realizes the full generalized
//     law — its cell rows are duty·min(l, pop)/(2·pop) = Θ(n^(K+L−1)) and
//     its Valiant backbone is Θ(n^(K+ϕ−1)) — so it shows both the antenna
//     lift and the backhaul bend.
//   * Scheme B's access is mobility-limited: each MS meets a BS for a
//     Θ(k/n) fraction of time (Lemma 9), a per-MS radio cap that no number
//     of BS antennas can widen. Its law bends with ϕ but is flat in L —
//     the honest scheme-B frontier under this paper's mobility model (see
//     docs/FRONTIER.md).
//
// The gates compare exponent *differences* between spot points on the
// SAME branch of the min(), which cancels that branch's finite-n bias
// (each branch carries its own sub-polynomial correction, so cross-knee
// differences do not converge at reachable n — within-branch ones do):
//   gate 1 (C, antenna lift):     e(ϕ₊, L) − e(ϕ₊, 0) ≈ L
//   gate 2 (C, antenna futility): e(ϕ₋, L) − e(ϕ₋, 0) ≈ 0 (wires starve)
//   gates 3+4 (C) and 5+6 (B) locate the backhaul knee by its one-sided
//   slopes: dλ-exponent/dϕ ≈ 1 below the knee (backbone-bound pair) and
//   ≈ 0 above it (access-bound pair, e(0.4) − e(0.1) ≈ 0) — together,
//   the closed-form bend of min(k·l, k²c, n)/n and of the paper's
//   min(k²c/n, k/n).
//
// Flags:
//   --smoke   CI-sized (smaller sweep)
//   --check   gate: |measured bend − closed form| ≤ 0.05 for each bend and
//             repeat sweeps bit-identical; exit 1 on violation
//   --n0 N    smallest sweep size (default 2048)
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "capacity/formulas.h"
#include "capacity/recommend.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/flowsim.h"
#include "sim/fluid.h"
#include "sim/sweep.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {
using namespace manetcap;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct Spot {
  char scheme;  // 'B' or 'C'
  double phi, L;
  double measured_e = 0.0;
  double theory_e = 0.0;
  double r_squared = 0.0;
  bool fit_valid = false;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"smoke", "check", "n0", "threads"});
  const bool smoke = flags.get_bool("smoke", false);
  const bool check = flags.get_bool("check", false);
  const std::size_t n0 =
      static_cast<std::size_t>(flags.get_int("n0", 2048));
  const std::size_t count = smoke ? 4 : 5;
  const std::size_t trials = 2;
  const auto num_threads = static_cast<std::size_t>(flags.get_int(
      "threads",
      static_cast<long>(util::ThreadPool::default_num_threads())));

  // Scheme C lives in the trivial regime over a clustered layout (the
  // scheme_c golden-trace shape); scheme B runs strong-mobility and
  // cluster-free. Both share K so the bends are comparable.
  net::ScalingParams pc;
  pc.alpha = 0.75;
  pc.with_bs = true;
  pc.K = 0.6;
  pc.M = 0.2;
  pc.R = 0.3;
  net::ScalingParams pb;
  pb.alpha = 0.3;
  pb.with_bs = true;
  pb.K = 0.6;
  pb.M = 1.0;

  // Below-knee pairs (C: ϕ ∈ {−0.7, −0.4}, B: {−0.8, −0.6}) sit where
  // each scheme is firmly backbone-bound at finite n — the engines'
  // generous backbone constants shift the finite-n knee left of its
  // asymptotic ϕ = 0, and scheme B's strict λ crosses over deeper than
  // scheme C's typical λ. Above-knee pairs at ϕ ∈ {0.1, 0.4}: both
  // access-bound.
  const double kL = 0.2;
  std::vector<Spot> spots = {
      {'C', -0.7, 0.0}, {'C', -0.4, 0.0}, {'C', -0.4, kL},
      {'C', 0.1, 0.0},  {'C', 0.4, 0.0},  {'C', 0.4, kL},
      {'B', -0.8, 0.0}, {'B', -0.6, 0.0}, {'B', 0.1, 0.0},
      {'B', 0.4, 0.0}};

  std::cout << "=== extension: generalized cost frontier (fluid engine, "
               "forced schemes) ===\n"
            << "K = " << pc.K << ", scheme C at alpha = " << pc.alpha
            << " (clustered), scheme B at alpha = " << pb.alpha
            << ", n = " << n0 << "..x2^" << (count - 1) << ", " << trials
            << " trials\n\n";

  util::CsvWriter csv(
      util::artifact_path("ext_cost_frontier"),
      {"section", "scheme", "phi", "L", "n", "lambda", "measured_e",
       "theory_e", "cost_e", "per_dollar_e"});

  bool ok = true;
  auto fail = [&](const std::string& msg) {
    std::cerr << "ERROR: " << msg << "\n";
    ok = false;
  };

  // --- measured sweeps at the spot points --------------------------------
  util::Table t({"scheme", "phi", "L", "theory e", "measured e", "R^2"});
  const auto sizes = sim::geometric_sizes(n0, 2.0, count);
  for (Spot& s : spots) {
    net::ScalingParams p = s.scheme == 'C' ? pc : pb;
    p.phi = s.phi;
    p.L = s.L;
    const bool is_c = s.scheme == 'C';
    const std::size_t slots = smoke ? 600 : 1200;
    // Scheme C: the fluid typical-resource λ (mean cell rows + Valiant
    // backbone) tracks the closed form cleanly. Scheme B: the strict
    // constraint-solver λ over the squarelet-grouping rows — its backbone
    // row is load/c(n) with the load a pure function of the sampled
    // instance, so with identical seeds the ϕ-slope is exactly the c(n)
    // slope and the balls-in-bins polylog in the max edge load cancels in
    // the within-branch difference. (The measured mean flow rate is a
    // mixture with intra-squarelet flows and does not isolate a branch.)
    sim::SweepEvaluator eval = [is_c, slots](const sim::EvalContext& ctx) {
      if (is_c) {
        sim::FluidOptions opt;
        opt.seed = ctx.seed;
        opt.force = sim::FluidOptions::ForceScheme::kC;
        opt.placement = net::BsPlacement::kClusterGrid;
        return sim::evaluate_capacity(ctx.params, opt).lambda_symmetric;
      }
      auto net =
          net::Network::build(ctx.params, mobility::ShapeKind::kUniformDisk,
                              net::BsPlacement::kClusteredMatched, ctx.seed);
      rng::Xoshiro256 g(sim::traffic_seed(ctx.seed));
      const auto dest = net::permutation_traffic(ctx.params.n, g);
      sim::FlowSimOptions fopt;
      fopt.scheme = sim::FlowScheme::kSchemeB;
      fopt.slots = slots;
      fopt.seed = ctx.seed;
      return sim::run_flow_sim(net, dest, fopt).lambda_strict;
    };
    sim::SweepOptions sopt;
    sopt.seed0 = 97;
    sopt.num_threads = num_threads;
    auto sweep = sim::run_sweep(p, sizes, trials, eval, sopt);
    if (check) {
      // Determinism gate: the sweep is seeded per cell, so a repeat must
      // reproduce every bit.
      auto again = sim::run_sweep(p, sizes, trials, eval, sopt);
      for (std::size_t i = 0; i < sweep.points.size(); ++i)
        if (!bits_equal(sweep.points[i].lambda_gm,
                        again.points[i].lambda_gm))
          fail("repeat sweep not bit-identical at phi=" +
               util::fmt_double(s.phi, 2));
    }
    s.fit_valid = sweep.fit_valid;
    s.measured_e = sweep.fit_valid ? sweep.fit.exponent : 0.0;
    s.r_squared = sweep.fit_valid ? sweep.fit.r_squared : 0.0;
    s.theory_e = capacity::infrastructure_exponent(p.K, s.phi, s.L);
    if (!sweep.fit_valid)
      fail("fit unavailable at phi=" + util::fmt_double(s.phi, 2) +
           ", L=" + util::fmt_double(s.L, 2));
    t.add_row({std::string(1, s.scheme), util::fmt_double(s.phi, 2),
               util::fmt_double(s.L, 2), util::fmt_double(s.theory_e, 3),
               s.fit_valid ? util::fmt_double(s.measured_e, 3) : "n/a",
               s.fit_valid ? util::fmt_double(s.r_squared, 3) : "n/a"});
    for (const auto& pt : sweep.points)
      csv.add_row({"sweep", std::string(1, s.scheme),
                   util::fmt_double(s.phi, 2), util::fmt_double(s.L, 2),
                   std::to_string(pt.n), util::fmt_sci(pt.lambda_gm, 6), "",
                   "", "", ""});
    csv.add_row({"fit", std::string(1, s.scheme),
                 util::fmt_double(s.phi, 2), util::fmt_double(s.L, 2), "",
                 "", util::fmt_double(s.measured_e, 4),
                 util::fmt_double(s.theory_e, 4), "", ""});
  }
  t.print(std::cout);

  // --- the bends ---------------------------------------------------------
  // spots: [0] C(-0.7,0) [1] C(-0.4,0) [2] C(-0.4,L) [3] C(0.1,0)
  //        [4] C(0.4,0)  [5] C(0.4,L)  [6] B(-0.8)   [7] B(-0.6)
  //        [8] B(0.1)    [9] B(0.4)
  struct Bend {
    const char* name;
    double measured, theory;
  };
  const auto e = [&](std::size_t i) { return spots[i].measured_e; };
  const auto te = [&](std::size_t i) { return spots[i].theory_e; };
  const std::vector<Bend> bends = {
      {"C antenna lift at phi>0", e(5) - e(4), te(5) - te(4)},
      {"C antenna futility at phi<0", e(2) - e(1), te(2) - te(1)},
      {"C backbone slope below knee", e(1) - e(0), te(1) - te(0)},
      {"C access saturation above knee", e(4) - e(3), te(4) - te(3)},
      {"B backbone slope below knee", e(7) - e(6), te(7) - te(6)},
      {"B access saturation above knee", e(9) - e(8), te(9) - te(8)},
  };
  constexpr double kTol = 0.05;
  std::cout << "\nbends (exponent differences; finite-n bias cancels):\n";
  for (const Bend& b : bends) {
    const double delta = std::abs(b.measured - b.theory);
    std::cout << "  " << b.name << ": measured "
              << util::fmt_double(b.measured, 3) << ", closed form "
              << util::fmt_double(b.theory, 3) << " (|delta| "
              << util::fmt_double(delta, 3) << ")\n";
    if (delta > kTol)
      fail(std::string(b.name) + ": |delta| " + util::fmt_double(delta, 3) +
           " > " + util::fmt_double(kTol, 2));
  }

  // --- theory-side capacity-per-BS-dollar frontier -----------------------
  std::cout << "\ncapacity per BS-dollar (exponent of n; alpha = " << pc.alpha
            << ", K = " << pc.K << "):\n";
  util::Table ft({"L \\ phi", "-0.4", "-0.2", "0.0", "0.2", "0.4"});
  const std::vector<double> fphis = {-0.4, -0.2, 0.0, 0.2, 0.4};
  const std::vector<double> fls = {0.4, 0.3, 0.2, 0.1, 0.0};
  double best_e = -1e300, best_phi = 0.0, best_l = 0.0;
  for (double L : fls) {
    std::vector<std::string> row{util::fmt_double(L, 2)};
    for (double phi : fphis) {
      const double pd =
          capacity::capacity_per_dollar_exponent(pc.alpha, pc.K, phi, L);
      row.push_back(util::fmt_double(pd, 3));
      csv.add_row(
          {"frontier", "", util::fmt_double(phi, 2), util::fmt_double(L, 2),
           "", "", "",
           util::fmt_double(capacity::infrastructure_exponent(pc.K, phi, L),
                            4),
           util::fmt_double(capacity::bs_cost_exponent(pc.K, phi, L), 4),
           util::fmt_double(pd, 4)});
      if (pd > best_e) {
        best_e = pd;
        best_phi = phi;
        best_l = L;
      }
    }
    ft.add_row(row);
  }
  ft.print(std::cout);
  std::cout << "frontier argmax: phi = " << util::fmt_double(best_phi, 2)
            << ", L = " << util::fmt_double(best_l, 2)
            << " -> capacity/dollar n^" << util::fmt_double(best_e, 3)
            << "; recommended phi* = "
            << util::fmt_double(capacity::recommended_phi(best_l, pc.K), 2)
            << ", L* = "
            << util::fmt_double(capacity::recommended_L(best_phi, pc.K), 2)
            << "\n";

  std::cout << "\nReading: in scheme C the backbone can feed the antennas\n"
            << "when phi > 0, so L lifts the measured exponent by ~L; when\n"
            << "phi < 0 the wires starve and extra antennas are pure cost.\n"
            << "That asymmetry is the bend min(K+L, K+phi, 1) predicts. In\n"
            << "scheme B the per-MS meeting rate Theta(k/n) (Lemma 9) caps\n"
            << "access regardless of L — only its backhaul branch bends.\n";

  if (check && !ok) {
    std::cerr << "ext_cost_frontier: gate FAILED\n";
    return 1;
  }
  std::cout << "\next_cost_frontier: "
            << (ok ? "all gates pass" : "violations above (not gated)")
            << "\n";
  return 0;
}
