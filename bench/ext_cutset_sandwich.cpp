// Extension: sandwiching the capacity between the Lemma 6/7 cut-set upper
// bound and the schemes' achieved rates.
//
// For each n the table shows  achieved λ ≤ cut bound  with both sides
// scaling at the same exponent — the tightness claim behind Corollary 2
// ("the lower bound in Theorem 5 is tight").
#include <cmath>
#include <iostream>

#include "analysis/loglog_fit.h"
#include "capacity/cutset.h"
#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "util/table.h"

namespace {
using namespace manetcap;

void sandwich(const char* title, bool with_bs, std::ostream& os) {
  os << "--- " << title << " ---\n";
  util::Table t({"n", "achieved lambda", "cut-set bound", "hop-count bound",
                 "bound/achieved"});
  std::vector<double> ns, bounds, achieved_v;
  for (std::size_t n : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    net::ScalingParams p;
    p.n = n;
    p.alpha = 0.3;
    p.with_bs = with_bs;
    p.K = 0.7;
    p.M = 1.0;
    p.phi = 0.0;
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   with_bs
                                       ? net::BsPlacement::kClusteredMatched
                                       : net::BsPlacement::kUniform,
                                   311);
    rng::Xoshiro256 g(313);
    auto dest = net::permutation_traffic(p.n, g);

    double achieved = 0.0;
    if (with_bs) {
      routing::SchemeA a;
      routing::SchemeB b;
      achieved = a.evaluate(net, dest).lambda_symmetric +
                 b.evaluate(net, dest).lambda_symmetric;
    } else {
      routing::SchemeA a;
      achieved = a.evaluate(net, dest).lambda_symmetric;
    }
    const auto cut = capacity::best_strip_cut(net, dest, 6);
    const double bound = cut.lambda_bound();
    // Lemma 4's second device: only the no-BS case (wires bypass hops).
    const std::string hop =
        with_bs ? "-"
                : util::fmt_sci(
                      capacity::hop_count_bound(net, dest).lambda_bound(),
                      3);
    ns.push_back(static_cast<double>(n));
    bounds.push_back(bound);
    achieved_v.push_back(achieved);
    t.add_row({std::to_string(n), util::fmt_sci(achieved, 3),
               util::fmt_sci(bound, 3), hop,
               util::fmt_double(bound / achieved, 3)});
  }
  t.print(os);
  auto fit_b = analysis::fit_power_law(ns, bounds);
  auto fit_a = analysis::fit_power_law(ns, achieved_v);
  os << "exponents: bound " << util::fmt_double(fit_b.exponent, 3)
     << ", achieved " << util::fmt_double(fit_a.exponent, 3)
     << " (same order => the lower bound is tight, Corollary 2)\n\n";
}

}  // namespace

int main() {
  std::cout << "=== extension: cut-set upper bound vs achieved rate ===\n\n";
  sandwich("pure ad hoc (alpha = 0.3, no BSs): Lemma 4 / Theorem 3", false,
           std::cout);
  sandwich("hybrid (alpha = 0.3, K = 0.7, phi = 0): Lemma 7 / Theorem 5",
           true, std::cout);
  std::cout << "The bound/achieved gap is a constant factor (scheduling\n"
            << "isolation, H-V detours, TDMA duty cycles) — both sides\n"
            << "scale identically, which is all a Theta statement needs.\n";
  return 0;
}
