// Extension: traffic scenarios beyond the uniform permutation.
//
// The capacity laws are proved for uniform-permutation CBR traffic; this
// bench asks how far they carry when the workload is skewed. For each
// scheme, run the fluid engine under three scenarios from the pluggable
// traffic layer (net/traffic.h):
//
//   cbr       perm                       — the paper's workload (baseline)
//   hotspot   hotspot:0.15,0.7           — 70% of flows target 15% of MSs
//   bursty    hotspot:0.15,0.7;onoff:50,150 — the same skew, 25% duty cycle
//
// Hotspot skew concentrates destination load: schemes whose bottleneck is
// per-node access (B, C downlink) lose typical rate as the hot nodes
// saturate, while relay-limited schemes barely notice. On-off thinning
// cuts *offered* load fourfold, so injected volume must drop strictly
// below the CBR run — the audit gate below turns that law into a check.
//
// Flags:
//   --smoke   CI-sized (n = 1024, shorter horizon)
//   --check   gate: audits close, repeat runs are bit-identical, and each
//             scheme's bursty injected volume < its CBR injected volume;
//             exit 1 on violation
//   --n N     network size (default 4096)
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/engine.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {
using namespace manetcap;

struct Scenario {
  const char* name;
  const char* spec;  // empty = default permutation CBR
};

struct SchemeCase {
  const char* name;
  sim::FlowScheme scheme;
  net::BsPlacement placement;
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"smoke", "check", "n"});
  const bool smoke = flags.get_bool("smoke", false);
  const bool check = flags.get_bool("check", false);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", smoke ? 1024 : 4096));
  const std::size_t slots = smoke ? 1000 : 2000;
  const std::size_t warmup = slots / 10;

  net::ScalingParams p;
  p.n = n;
  p.alpha = 0.35;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;
  // Scheme C lives in the trivial regime over a clustered layout (same
  // shape as the scheme_c golden trace); everything else shares `p`.
  net::ScalingParams pc = p;
  pc.alpha = 0.75;
  pc.K = 0.6;
  pc.M = 0.2;
  pc.R = 0.3;

  const Scenario scenarios[] = {
      {"cbr", ""},
      {"hotspot", "hotspot:0.15,0.7"},
      {"bursty", "hotspot:0.15,0.7;onoff:50,150"},
  };
  const SchemeCase schemes[] = {
      {"scheme-B", sim::FlowScheme::kSchemeB,
       net::BsPlacement::kClusteredMatched},
      {"scheme-C", sim::FlowScheme::kSchemeC, net::BsPlacement::kClusterGrid},
      {"two-hop", sim::FlowScheme::kTwoHop,
       net::BsPlacement::kClusteredMatched},
      {"static-multihop", sim::FlowScheme::kStaticMultihop,
       net::BsPlacement::kClusteredMatched},
  };

  std::cout << "=== extension: traffic scenarios vs schemes (fluid engine) "
               "===\n"
            << "n = " << n << ", alpha = " << p.alpha << ", K = " << p.K
            << ", " << slots << " slots\n\n";

  util::CsvWriter csv(util::artifact_path("ext_traffic_models"),
                      {"scheme", "traffic", "n", "mean_rate", "p10_rate",
                       "injected", "delivered", "queued", "dropped",
                       "wall_s"});
  util::Table t({"scheme", "traffic", "mean rate", "p10 rate", "injected",
                 "delivered", "vs cbr"});
  bool ok = true;
  auto fail = [&](const std::string& msg) {
    std::cerr << "ERROR: " << msg << "\n";
    ok = false;
  };

  for (const SchemeCase& sc : schemes) {
    const bool is_c = sc.scheme == sim::FlowScheme::kSchemeC;
    const auto net =
        net::Network::build(is_c ? pc : p, mobility::ShapeKind::kUniformDisk,
                            sc.placement, /*seed=*/701);
    sim::FlowSimOptions opt;
    opt.scheme = sc.scheme;
    opt.slots = slots;
    opt.warmup = warmup;
    opt.seed = 701;

    std::uint64_t cbr_injected = 0;
    double cbr_rate = 0.0;
    for (const Scenario& s : scenarios) {
      net::TrafficSpec tspec;
      if (*s.spec != '\0') tspec = net::TrafficSpec::parse(s.spec);
      rng::Xoshiro256 g(sim::traffic_seed(opt.seed));
      const auto demands = net::make_traffic_model(tspec)->draw(n, g);

      util::Stopwatch sw;
      const auto r = sim::run_flow_sim(net, demands, opt);
      const double wall = sw.seconds();

      if (r.injected !=
          r.delivered_lifetime + r.queued_end + r.dropped)
        fail(std::string(sc.name) + "/" + s.name +
             ": audit does not close");
      if (std::strcmp(s.name, "cbr") == 0) {
        cbr_injected = r.injected;
        cbr_rate = r.mean_flow_rate;
        // Determinism gate: the fluid engine and the demand draw are both
        // seeded, so a repeat run must reproduce every bit.
        rng::Xoshiro256 g2(sim::traffic_seed(opt.seed));
        const auto demands2 = net::make_traffic_model(tspec)->draw(n, g2);
        const auto r2 = sim::run_flow_sim(net, demands2, opt);
        if (!bits_equal(r2.mean_flow_rate, r.mean_flow_rate) ||
            r2.injected != r.injected)
          fail(std::string(sc.name) + ": repeat run not bit-identical");
      }
      if (std::strcmp(s.name, "bursty") == 0 && r.injected >= cbr_injected)
        fail(std::string(sc.name) +
             ": bursty injected >= CBR injected (duty thinning lost)");

      t.add_row({sc.name, s.name, util::fmt_sci(r.mean_flow_rate, 4),
                 util::fmt_sci(r.p10_flow_rate, 4),
                 std::to_string(r.injected),
                 std::to_string(r.delivered_lifetime),
                 cbr_rate > 0.0
                     ? util::fmt_double(r.mean_flow_rate / cbr_rate, 3)
                     : "-"});
      csv.add_row({sc.name, s.name, std::to_string(n),
                   util::fmt_sci(r.mean_flow_rate, 6),
                   util::fmt_sci(r.p10_flow_rate, 6),
                   std::to_string(r.injected),
                   std::to_string(r.delivered_lifetime),
                   std::to_string(r.queued_end), std::to_string(r.dropped),
                   util::fmt_double(wall, 4)});
    }
  }
  t.print(std::cout);

  std::cout << "\nReading: hotspot skew moves destination load onto a few\n"
            << "nodes — access-limited schemes pay in the p10 rate while\n"
            << "relay-limited ones shrug. The bursty row injects a quarter\n"
            << "of the CBR volume (duty 50/(50+150)); its *delivered* rate\n"
            << "drops by roughly the same factor, which is the fluid\n"
            << "rendering of thinning, not a capacity change.\n";

  if (check && !ok) {
    std::cerr << "ext_traffic_models: gate FAILED\n";
    return 1;
  }
  std::cout << "\next_traffic_models: "
            << (ok ? "all gates pass" : "violations above (not gated)")
            << "\n";
  return 0;
}
