// Corollary 1 / Lemma 2 / Lemma 3 reproduction: the link-capacity law.
//
//  (a) μ(d) against home-point distance: Monte-Carlo meeting probability
//      vs the analytic f²·η(f·d)/n kernel, for all three s(·) shapes;
//  (b) μ(0) scaling across n (slope 2α − 1 at fixed α);
//  (c) Lemma 3: the S* busy probability stays a constant as n grows.
#include <cmath>
#include <iostream>

#include "analysis/loglog_fit.h"
#include "linkcap/link_capacity.h"
#include "linkcap/measure.h"
#include "mobility/process.h"
#include "net/network.h"
#include "rng/rng.h"
#include "sched/sstar.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== Corollary 1: link capacity vs home-point distance ===\n"
            << "population 4096, f = n^0.3; MC = meeting probability over\n"
            << "300k stationary draws; analytic = pi R_T^2 f^2 eta(f d)/S0^2\n\n";

  const double f = std::pow(4096.0, 0.3);
  for (auto kind : {mobility::ShapeKind::kUniformDisk,
                    mobility::ShapeKind::kTriangular,
                    mobility::ShapeKind::kQuadratic}) {
    mobility::Shape shape(kind);
    linkcap::LinkCapacityModel model(shape, f, 4096);
    rng::Xoshiro256 g(3);
    util::Table t({"home dist (x 2D/f)", "MC Pr{d<=R_T}", "analytic",
                   "ratio"});
    for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      const double d = frac * 2.0 * shape.support() / f;
      auto est = linkcap::estimate_meeting_probability(shape, f, d,
                                                       model.range(),
                                                       300000, g);
      const double analytic = model.meeting_probability_ms_ms(d);
      t.add_row({util::fmt_double(frac, 2), util::fmt_sci(est.value, 3),
                 util::fmt_sci(analytic, 3),
                 analytic > 0.0 ? util::fmt_double(est.value / analytic, 3)
                                : "-"});
    }
    std::cout << "shape: " << to_string(kind) << '\n';
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== mu(0) scaling across n (expected slope 2*0.3 - 1 = "
               "-0.4) ===\n";
  {
    mobility::Shape shape(mobility::ShapeKind::kUniformDisk);
    std::vector<double> ns, mus;
    util::Table t({"n", "analytic mu(0)", "MC mu(0)"});
    rng::Xoshiro256 g(5);
    for (double n : {1024.0, 4096.0, 16384.0, 65536.0}) {
      const double fn = std::pow(n, 0.3);
      linkcap::LinkCapacityModel model(shape, fn,
                                       static_cast<std::size_t>(n));
      auto est = linkcap::estimate_meeting_probability(
          shape, fn, 0.0, model.range(), 200000, g);
      ns.push_back(n);
      mus.push_back(model.meeting_probability_ms_ms(0.0));
      t.add_row({util::fmt_double(n, 6),
                 util::fmt_sci(model.meeting_probability_ms_ms(0.0), 3),
                 util::fmt_sci(est.value, 3)});
    }
    t.print(std::cout);
    auto fit = analysis::fit_power_law(ns, mus);
    std::cout << "fitted slope: " << util::fmt_double(fit.exponent, 4)
              << " (theory -0.4)\n\n";
  }

  std::cout << "=== Lemma 3: busy probability is Theta(1) in n ===\n";
  {
    util::Table t({"n", "mean busy prob", "p10 busy prob"});
    for (std::size_t n : {512u, 2048u, 8192u}) {
      net::ScalingParams p;
      p.n = n;
      p.alpha = 0.25;
      p.with_bs = false;
      p.M = 1.0;
      auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                     net::BsPlacement::kUniform, 7);
      mobility::IidStationaryMobility process(net.ms_home(), net.shape(),
                                              1.0 / p.f(), 9);
      sched::SStarScheduler sstar(0.3, 1.0);
      auto busy =
          linkcap::measure_busy_probability(process, {}, sstar, 300);
      std::sort(busy.begin(), busy.end());
      double mean = 0.0;
      for (double b : busy) mean += b;
      mean /= static_cast<double>(busy.size());
      t.add_row({std::to_string(n), util::fmt_double(mean, 4),
                 util::fmt_double(busy[busy.size() / 10], 4)});
    }
    t.print(std::cout);
    std::cout << "constant across a 16x population change, as Lemma 3 "
                 "requires.\n";
  }
  return 0;
}
