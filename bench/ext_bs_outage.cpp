// Extension: failure injection — base-station outages.
//
// The laws say capacity is linear in k (access-limited, ϕ = 0), so a
// *random* outage of a fraction p of BSs should degrade λ gracefully by
// ≈ (1 − p). A *regional* outage (every BS in a disk dies) is a different
// story: the squarelet group serving that region empties and the flows
// anchored there lose infrastructure service entirely — the strict λ
// collapses while the typical (surviving-flow) rate barely moves.
#include <cmath>
#include <iostream>

#include "net/network.h"
#include "net/traffic.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== extension: BS outage failure injection ===\n"
            << "n = 8192, alpha = 0.3, K = 0.75, phi = 0, scheme B\n\n";

  net::ScalingParams p;
  p.n = 8192;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.75;
  p.M = 1.0;
  p.phi = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 401);
  rng::Xoshiro256 g(403);
  auto dest = net::permutation_traffic(p.n, g);
  routing::SchemeB b;

  const auto baseline = b.evaluate(net, dest);

  std::cout << "-- random outages: lose a fraction p of all BSs --\n";
  util::Table t1({"outage p", "surviving k", "lambda (typical)",
                  "vs baseline", "law prediction (1-p)"});
  for (double frac : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    rng::Xoshiro256 kill(405);
    std::vector<bool> keep(net.num_bs(), true);
    std::size_t killed = 0;
    for (std::size_t j = 0; j < keep.size(); ++j) {
      if (rng::uniform01(kill) < frac) {
        keep[j] = false;
        ++killed;
      }
    }
    auto degraded = net.with_bs_subset(keep);
    auto r = b.evaluate(degraded, dest);
    t1.add_row({util::fmt_double(frac, 3),
                std::to_string(net.num_bs() - killed),
                util::fmt_sci(r.lambda_symmetric, 3),
                util::fmt_ratio(r.lambda_symmetric,
                                baseline.lambda_symmetric, 3),
                util::fmt_double(1.0 - frac, 3)});
  }
  t1.print(std::cout);

  std::cout << "\n-- regional outage: every BS within radius rho of the "
               "torus center dies --\n";
  util::Table t2({"outage radius", "surviving k", "lambda strict",
                  "lambda typical", "uncovered MS"});
  for (double rho : {0.0, 0.1, 0.2, 0.3}) {
    std::vector<bool> keep(net.num_bs(), true);
    std::size_t killed = 0;
    for (std::size_t j = 0; j < keep.size(); ++j) {
      if (geom::torus_dist(net.bs_pos()[j], {0.5, 0.5}) < rho) {
        keep[j] = false;
        ++killed;
      }
    }
    auto degraded = net.with_bs_subset(keep);
    auto r = b.evaluate(degraded, dest);
    t2.add_row({util::fmt_double(rho, 3),
                std::to_string(net.num_bs() - killed),
                util::fmt_sci(r.throughput.lambda, 3),
                util::fmt_sci(r.lambda_symmetric, 3),
                std::to_string(r.unreachable_ms)});
  }
  t2.print(std::cout);

  std::cout
      << "\nReading: random outages degrade linearly in surviving k — the\n"
      << "Θ(k/n) access law in action. A regional outage is qualitatively\n"
      << "worse: the typical rate of the *surviving* flows barely moves,\n"
      << "but a growing population (uncovered MS column) is cut off from\n"
      << "the infrastructure outright and the worst covered flow halves —\n"
      << "the capacity laws are statements about balanced deployments.\n";
  return 0;
}
