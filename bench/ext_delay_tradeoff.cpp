// Extension: the capacity–delay landscape of the three architectures.
//
// The paper's companion literature (Neely–Modiano [12], Sharma et al. [11],
// Li et al. [9]) studies what the throughput laws cost in delay. Our slot
// simulator measures both at once: scheme A pays Θ(f(n)) squarelet hops,
// two-hop relay pays inter-meeting times, and infrastructure (scheme B)
// short-circuits distance entirely — [9]'s "delay is constant" claim for
// hybrid networks, visible here as a flat delay column across n.
#include <iostream>

#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/slotsim.h"
#include "util/table.h"

namespace {
using namespace manetcap;

sim::SlotSimResult run_case(const net::ScalingParams& p,
                            sim::SlotScheme scheme, std::size_t slots) {
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 301);
  rng::Xoshiro256 g(303);
  auto dest = net::permutation_traffic(p.n, g);
  sim::SlotSimOptions opt;
  opt.scheme = scheme;
  opt.slots = slots;
  opt.warmup = slots / 10;
  opt.seed = 307;
  // Light load: one outstanding packet per source, so the measured delay
  // is the end-to-end transit time, not a saturated-queue wait.
  opt.source_backlog = 1;
  return sim::run_slot_sim(net, dest, opt);
}

}  // namespace

int main() {
  std::cout << "=== extension: capacity vs delay per architecture ===\n"
            << "slot simulator, saturated sources; delay = injection slot\n"
            << "to delivery slot over the measurement window.\n\n";

  util::Table t({"scheme", "n", "rate/flow", "mean delay", "p95 delay"});

  for (std::size_t n : {256u, 512u, 1024u}) {
    net::ScalingParams adhoc;
    adhoc.n = n;
    adhoc.alpha = 0.3;
    adhoc.with_bs = false;
    adhoc.M = 1.0;
    auto ra = run_case(adhoc, sim::SlotScheme::kSchemeA, 4000);
    t.add_row({"scheme-A", std::to_string(n),
               util::fmt_sci(ra.mean_flow_rate, 3),
               util::fmt_double(ra.mean_delay, 4),
               util::fmt_double(ra.p95_delay, 4)});
  }
  t.add_separator();
  for (std::size_t n : {256u, 512u, 1024u}) {
    net::ScalingParams mixing;
    mixing.n = n;
    mixing.alpha = 0.0;  // full mixing: the regime where two-hop works
    mixing.with_bs = false;
    mixing.M = 1.0;
    auto rt = run_case(mixing, sim::SlotScheme::kTwoHop, 4000);
    t.add_row({"two-hop (f=1)", std::to_string(n),
               util::fmt_sci(rt.mean_flow_rate, 3),
               util::fmt_double(rt.mean_delay, 4),
               util::fmt_double(rt.p95_delay, 4)});
  }
  t.add_separator();
  for (std::size_t n : {256u, 512u, 1024u}) {
    net::ScalingParams hybrid;
    hybrid.n = n;
    hybrid.alpha = 0.3;
    hybrid.with_bs = true;
    hybrid.K = 0.8;
    hybrid.M = 1.0;
    hybrid.phi = 0.0;
    auto rb = run_case(hybrid, sim::SlotScheme::kSchemeB, 4000);
    t.add_row({"scheme-B", std::to_string(n),
               util::fmt_sci(rb.mean_flow_rate, 3),
               util::fmt_double(rb.mean_delay, 4),
               util::fmt_double(rb.p95_delay, 4)});
  }
  t.print(std::cout);

  std::cout
      << "\nShapes to check against the delay-capacity literature:\n"
      << "  * scheme A delay grows with n (Theta(f) squarelet hops, each\n"
      << "    a wait for the right relay);\n"
      << "  * two-hop delay is the inter-meeting time — large even when\n"
      << "    throughput is Theta(1);\n"
      << "  * scheme B delay stays roughly flat in n (uplink wait + wire\n"
      << "    + downlink wait), the constant-delay claim of Li et al. [9].\n";
  return 0;
}
