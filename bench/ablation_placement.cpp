// Theorem 6 ablation: BS placement invariance in the uniformly dense
// regime. Scheme B is evaluated under clustered-matched, uniform, and
// regular-grid placement across an n-sweep; the three fitted exponents and
// the per-n capacity ratios must agree up to constants.
#include <cmath>
#include <iostream>

#include "net/traffic.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "sim/sweep.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== Theorem 6 ablation: BS placement invariance ===\n"
            << "strong regime (alpha = 0.3, K = 0.75, phi = 0), scheme B\n\n";

  net::ScalingParams base;
  base.alpha = 0.3;
  base.with_bs = true;
  base.K = 0.75;
  base.M = 1.0;
  base.phi = 0.0;

  const auto sizes = sim::geometric_sizes(2048, 2.0, 4);
  util::Table t({"placement", "lambda(n=2048)", "lambda(n=16384)",
                 "fitted e", "stderr", "R^2"});

  std::vector<double> first_lambdas;
  for (auto placement :
       {net::BsPlacement::kClusteredMatched, net::BsPlacement::kUniform,
        net::BsPlacement::kRegularGrid}) {
    sim::SweepEvaluator eval = [placement](const sim::EvalContext& ctx) {
      auto net = net::Network::build(
          ctx.params, mobility::ShapeKind::kUniformDisk, placement, ctx.seed);
      rng::Xoshiro256 g(ctx.seed ^ 0x5bd1e995u);
      auto dest = net::permutation_traffic(ctx.params.n, g);
      routing::SchemeB b;
      // Typical-MS capacity: the strict min over MSs is an extreme-value
      // statistic whose noise would drown the placement comparison.
      return b.evaluate(net, dest).lambda_symmetric;
    };
    sim::SweepOptions sopt;
    sopt.seed0 = 41;
    auto sweep = sim::run_sweep(base, sizes, 3, eval, sopt);
    first_lambdas.push_back(sweep.points.front().lambda_gm);
    t.add_row({to_string(placement),
               util::fmt_sci(sweep.points.front().lambda_gm, 3),
               util::fmt_sci(sweep.points.back().lambda_gm, 3),
               sweep.fit_valid ? util::fmt_double(sweep.fit.exponent, 3)
                               : "n/a",
               sweep.fit_valid ? util::fmt_double(sweep.fit.stderr_, 2)
                               : "-",
               sweep.fit_valid ? util::fmt_double(sweep.fit.r_squared, 3)
                               : "-"});
  }
  t.print(std::cout);

  const double lo =
      *std::min_element(first_lambdas.begin(), first_lambdas.end());
  const double hi =
      *std::max_element(first_lambdas.begin(), first_lambdas.end());
  std::cout << "\nplacement spread at n=2048: max/min = "
            << util::fmt_double(hi / lo, 3)
            << " (Theorem 6 predicts a constant, i.e. order-1, gap)\n";
  return 0;
}
