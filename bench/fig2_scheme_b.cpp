// Figure 2 reproduction: anatomy of optimal routing scheme B.
//
// The paper's figure illustrates the three phases (MS→BSs, wired BS↔BS,
// BSs→MS). We instrument a sampled instance and print, for several wired
// bandwidth exponents ϕ, the sustainable rate of each phase and which one
// binds — the quantitative content behind the picture.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "geom/tessellation.h"
#include "net/traffic.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace manetcap;

/// Renders the paper's Figure 2 picture for a sampled instance: the 4×4
/// squarelet grid with per-cell MS/BS counts, and one flow's three phases.
void draw_instance() {
  net::ScalingParams p;
  p.n = 512;
  p.alpha = 0.2;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;
  p.phi = 0.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kClusteredMatched, 19);
  geom::SquareTessellation tess(4);
  std::vector<int> ms_count(16, 0), bs_count(16, 0);
  for (const auto& x : net.ms_home())
    ++ms_count[tess.index_of(tess.cell_of(x))];
  for (const auto& y : net.bs_pos())
    ++bs_count[tess.index_of(tess.cell_of(y))];

  std::cout << "--- a sampled instance (n = 512, k = " << net.num_bs()
            << "), per-squarelet [MS | BS] ---\n";
  for (int row = 3; row >= 0; --row) {
    std::cout << "  ";
    for (int col = 0; col < 4; ++col) {
      const int idx = tess.index_of({row, col});
      std::printf("[%3d|%2d] ", ms_count[idx], bs_count[idx]);
    }
    std::cout << '\n';
  }

  rng::Xoshiro256 g(23);
  auto dest = net::permutation_traffic(p.n, g);
  // Pick a flow whose endpoints sit in different squarelets.
  std::uint32_t s = 0;
  while (tess.cell_of(net.ms_home()[s]) ==
         tess.cell_of(net.ms_home()[dest[s]]))
    ++s;
  const auto cs = tess.cell_of(net.ms_home()[s]);
  const auto cd = tess.cell_of(net.ms_home()[dest[s]]);
  std::cout << "\nsample flow MS" << s << " -> MS" << dest[s] << ":\n"
            << "  phase I   : MS" << s << " uplinks to the "
            << bs_count[tess.index_of(cs)] << " BSs of squarelet ("
            << cs.row << "," << cs.col << ")\n"
            << "  phase II  : those BSs wire the data to the "
            << bs_count[tess.index_of(cd)] << " BSs of squarelet ("
            << cd.row << "," << cd.col << ") — "
            << bs_count[tess.index_of(cs)] * bs_count[tess.index_of(cd)]
            << " parallel edges of capacity c(n)\n"
            << "  phase III : the destination squarelet's BSs deliver to MS"
            << dest[s] << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"threads"});
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));
  std::cout << "=== Figure 2: optimal routing scheme B, phase by phase ===\n"
            << "n = 8192, K = 0.7 (k = n^0.7), squarelet grouping; the\n"
            << "wired backbone carries mu_c = k*c = n^phi per BS.\n\n";
  draw_instance();

  util::Table t({"phi", "lambda", "phase I+III bound", "phase II bound",
                 "bottleneck", "min access", "mean access", "groups",
                 "uncovered MS"});

  // Each phi row samples and evaluates its own instance — independent
  // tasks writing pre-sized slots; rows are printed in phi order below.
  const std::vector<double> phis = {-1.0, -0.5, -0.25, 0.0, 0.5, 1.0};
  std::vector<routing::SchemeBResult> results(phis.size());
  util::ThreadPool pool(std::min<std::size_t>(
      num_threads == 0 ? util::ThreadPool::default_num_threads() : num_threads,
      phis.size()));
  pool.for_each_index(phis.size(), [&phis, &results](std::size_t i) {
    net::ScalingParams p;
    p.n = 8192;
    p.alpha = 0.3;
    p.with_bs = true;
    p.K = 0.7;
    p.M = 1.0;
    p.phi = phis[i];

    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched, 21);
    rng::Xoshiro256 g(23);
    auto dest = net::permutation_traffic(p.n, g);
    routing::SchemeB b;
    results[i] = b.evaluate(net, dest);
  });

  for (std::size_t i = 0; i < phis.size(); ++i) {
    const auto& r = results[i];
    auto bound = [](double v) {
      return std::isinf(v) ? std::string("-") : util::fmt_sci(v, 2);
    };
    t.add_row({util::fmt_double(phis[i], 3),
               util::fmt_sci(r.throughput.lambda, 3),
               bound(r.throughput.lambda_access),
               bound(r.throughput.lambda_backbone),
               to_string(r.throughput.bottleneck),
               util::fmt_sci(r.min_access_rate, 2),
               util::fmt_sci(r.mean_access_rate, 2),
               std::to_string(r.num_groups),
               std::to_string(r.unreachable_ms)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: for phi < 0 the wired phase II binds (lambda tracks\n"
      << "k^2 c/n and grows with phi); at phi >= 0 the wireless access\n"
      << "phase binds and lambda saturates at Theta(k/n) — the min() in\n"
      << "Theorems 5/7/9 and the phi = 0 balance point.\n";
  return 0;
}
