// Extension: multicast capacity — the [20] connection.
//
// Each source serves g destinations. Scheme A can route the flow as a
// squarelet *tree* (shared prefixes loaded once) instead of g independent
// unicasts; the measured tree/unicast edge ratio is the sharing gain
// (Li [20] shows Θ(√g) asymptotically for g ≤ f²). Infrastructure
// multicast (scheme B) amortizes distance entirely: the wire fan-out is
// capped by the number of BS groups, and only the g downlinks scale.
#include <cmath>
#include <iostream>

#include "net/network.h"
#include "routing/multicast.h"
#include "rng/rng.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== extension: multicast (1 source -> g destinations) ===\n"
            << "n = 8192, alpha = 0.3; scheme A trees vs g-fold unicast,\n"
            << "and infrastructure multicast (K = 0.7, phi = 0).\n\n";

  auto adhoc_net = net::Network::build(
      [] {
        net::ScalingParams p;
        p.n = 8192;
        p.alpha = 0.3;
        p.with_bs = false;
        p.M = 1.0;
        return p;
      }(),
      mobility::ShapeKind::kUniformDisk, net::BsPlacement::kUniform, 601);
  auto hybrid_net = net::Network::build(
      [] {
        net::ScalingParams p;
        p.n = 8192;
        p.alpha = 0.3;
        p.with_bs = true;
        p.K = 0.7;
        p.M = 1.0;
        p.phi = 0.0;
        return p;
      }(),
      mobility::ShapeKind::kUniformDisk,
      net::BsPlacement::kClusteredMatched, 603);

  util::Table t({"g", "lambda tree", "lambda unicast-bundle",
                 "tree/bundle gain", "sharing factor", "sqrt(g)",
                 "lambda infra (scheme B)"});
  routing::MulticastSchemeA tree(true);
  routing::MulticastSchemeA bundle(false);
  routing::MulticastSchemeB infra;

  for (std::size_t g_size : {1u, 2u, 4u, 8u, 16u, 32u}) {
    rng::Xoshiro256 g(605);
    auto traffic = routing::multicast_traffic(8192, g_size, g);
    auto rt = tree.evaluate(adhoc_net, traffic);
    auto rb = bundle.evaluate(adhoc_net, traffic);
    auto ri = infra.evaluate(hybrid_net, traffic);
    const double share = rt.mean_unicast_edges / rt.mean_tree_edges;
    t.add_row({std::to_string(g_size),
               util::fmt_sci(rt.lambda_symmetric, 3),
               util::fmt_sci(rb.lambda_symmetric, 3),
               util::fmt_double(rt.lambda_symmetric /
                                    std::max(rb.lambda_symmetric, 1e-300),
                                3),
               util::fmt_double(share, 3),
               util::fmt_double(std::sqrt(static_cast<double>(g_size)), 3),
               util::fmt_sci(ri.lambda_symmetric, 3)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: tree sharing buys a growing constant over the unicast\n"
      << "bundle as g rises (the sharing factor tracks the sqrt(g) trend\n"
      << "of Li [20] while destinations are sparse in the squarelet grid).\n"
      << "Scheme B degrades only through its g downlinks — for large\n"
      << "groups the infrastructure advantage over ad hoc multicast is\n"
      << "even larger than in the unicast Fig. 3 comparison.\n";
  return 0;
}
