// Figure 1 reproduction: local density ρ(X) for a non-uniformly dense
// network (left panel of the paper's figure) vs a uniformly dense one
// (right panel). We print ASCII density maps plus the min/max/contrast
// statistics that Definition 8 bounds.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/density.h"
#include "capacity/regimes.h"
#include "net/network.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace manetcap;

void render_map(const analysis::DensityField& field, std::ostream& os) {
  // 10-level shading by value relative to the field mean.
  static const char* kShades = " .:-=+*#%@";
  for (std::size_t row = field.grid; row-- > 0;) {
    os << "  ";
    for (std::size_t col = 0; col < field.grid; ++col) {
      const double v = field.at(row, col);
      const double rel = field.max > 0.0 ? v / field.max : 0.0;
      int level = static_cast<int>(rel * 9.999);
      os << kShades[level < 0 ? 0 : (level > 9 ? 9 : level)];
    }
    os << '\n';
  }
}

struct Panel {
  const char* title;
  net::ScalingParams params;
  std::uint64_t seed;
  analysis::DensityField field;  // filled by compute
};

void render_panel(const Panel& panel, util::Table* summary) {
  const auto& p = panel.params;
  std::cout << "--- " << panel.title << " ---\n"
            << "    " << p.describe() << "\n"
            << "    regime: " << to_string(capacity::classify(p))
            << ", f*sqrt(gamma) = "
            << util::fmt_double(capacity::f_sqrt_gamma(p), 3) << "\n";
  render_map(panel.field, std::cout);
  const bool uniform = analysis::is_uniformly_dense(panel.field, 0.05, 50.0);
  std::cout << '\n';
  summary->add_row(
      {panel.title, util::fmt_double(panel.field.min, 3),
       util::fmt_double(panel.field.max, 3),
       util::fmt_double(panel.field.mean, 3),
       std::isinf(panel.field.contrast())
           ? "inf"
           : util::fmt_double(panel.field.contrast(), 3),
       uniform ? "yes" : "no"});
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"threads"});
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));
  std::cout << "=== Figure 1: uniformly dense vs non-uniformly dense ===\n"
            << "rho(X) per Definition 7 on a 32x32 probe grid ('@' = max).\n\n";

  util::Table summary(
      {"panel", "min rho", "max rho", "mean rho", "contrast", "unif dense"});

  // Left panel: clustered home-points, mobility too weak to smooth them.
  net::ScalingParams left;
  left.n = 16384;
  left.alpha = 0.45;
  left.with_bs = false;
  left.M = 0.25;
  left.R = 0.35;

  // Right panel: same population, strong mobility (Theorem 1 condition).
  net::ScalingParams right;
  right.n = 16384;
  right.alpha = 0.25;
  right.with_bs = false;
  right.M = 1.0;

  // Clustered home-points *with* strong mobility also smooth out —
  // mobility overcomes clustering (Remark 5).
  net::ScalingParams smoothed;
  smoothed.n = 16384;
  smoothed.alpha = 0.1;
  smoothed.with_bs = false;
  smoothed.M = 0.25;
  smoothed.R = 0.1;

  std::vector<Panel> panels = {
      {"non-uniformly dense (weak mobility)", left, 11, {}},
      {"uniformly dense (strong mobility)", right, 12, {}},
      {"clustered but smoothed by mobility", smoothed, 13, {}},
  };

  // Each panel samples its own instance — independent tasks; the rendering
  // below stays serial, so output order is fixed for any thread count.
  util::ThreadPool pool(std::min<std::size_t>(
      num_threads == 0 ? util::ThreadPool::default_num_threads() : num_threads,
      panels.size()));
  pool.for_each_index(panels.size(), [&panels](std::size_t i) {
    auto& panel = panels[i];
    const auto& p = panel.params;
    auto net = net::Network::build(
        p, mobility::ShapeKind::kUniformDisk,
        p.with_bs ? net::BsPlacement::kClusteredMatched
                  : net::BsPlacement::kUniform,
        panel.seed);
    panel.field = analysis::compute_density_field(
        net.ms_home(), net.bs_pos(), net.shape(), p.f(), 32);
  });

  for (const auto& panel : panels) render_panel(panel, &summary);

  summary.print(std::cout);
  std::cout << "\nDefinition 8 expects bounded contrast in the uniformly\n"
            << "dense cases and divergent contrast otherwise.\n";
  return 0;
}
