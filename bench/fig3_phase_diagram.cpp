// Figure 3 reproduction: the capacity phase diagram over (α, K).
//
// Left panel: ϕ ≥ 0 (access-limited infrastructure); right panel:
// ϕ = −1/2 (backbone-limited). For each grid point we print the capacity
// exponent and whether mobility or infrastructure dominates, plus the
// analytic dominance boundary K(α) = 1 − α − min(ϕ, 0). A handful of grid
// points are then spot-checked by measurement: a small n-sweep must
// reproduce both the dominant side and the exponent.
#include <cmath>
#include <iostream>

#include "capacity/formulas.h"
#include "capacity/phase_diagram.h"
#include "sim/fluid.h"
#include "sim/sweep.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {
using namespace manetcap;

void print_panel(double phi) {
  auto d = capacity::compute_phase_diagram(phi, 11, 11);
  std::cout << capacity::render_ascii(d);
  std::cout << "dominance boundary K(alpha) = 1 - alpha - min(phi,0):";
  for (double alpha : {0.0, 0.25, 0.5})
    std::cout << "  K(" << alpha
              << ")=" << capacity::dominance_boundary_K(alpha, phi);
  std::cout << "\n\nexponent grid (lambda = Theta(n^e)):\n";
  util::Table t(
      {"K \\ alpha", "0.0", "0.1", "0.2", "0.3", "0.4", "0.5"});
  for (int ki = static_cast<int>(d.k_steps) - 1; ki >= 0; ki -= 2) {
    std::vector<std::string> row;
    row.push_back(util::fmt_double(d.at(0, ki).K, 2));
    for (std::size_t ai = 0; ai < d.alpha_steps; ai += 2) {
      const auto& pt = d.at(ai, ki);
      row.push_back(util::fmt_double(pt.exponent, 2) +
                    (pt.mobility_dominant ? " M" : " I"));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"threads"});
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));
  std::cout << "=== Figure 3: capacity over (alpha, K), phi as parameter ===\n\n"
            << "--- left panel: phi = 0 (access phase is the bottleneck) ---\n";
  print_panel(0.0);
  std::cout << "--- right panel: phi = -1/2 (wired backbone is the "
               "bottleneck) ---\n";
  print_panel(-0.5);

  std::cout << "--- measured spot-checks (small sweeps, n = 2048..16384) ---\n"
            << "scheme A and scheme B are raced independently; the winner\n"
            << "at the largest n decides the measured dominance side.\n";
  util::Table t({"alpha", "K", "phi", "theory e", "measured e", "theory side",
                 "measured side"});
  struct Spot {
    double alpha, K, phi;
  };
  const std::vector<Spot> spots = {
      {0.35, 0.4, 0.0},   // mobility dominant (sparse infrastructure)
      {0.25, 0.9, 0.0},   // infrastructure dominant, access-limited
      {0.2, 0.5, -0.5},   // strong mobility beats thin-wired infrastructure
  };
  for (const auto& s : spots) {
    net::ScalingParams p;
    p.alpha = s.alpha;
    p.with_bs = true;
    p.K = s.K;
    p.M = 1.0;
    p.phi = s.phi;

    sim::SweepEvaluator eval = [](const sim::EvalContext& ctx) {
      sim::FluidOptions opt;
      opt.seed = ctx.seed;
      opt.force = sim::FluidOptions::ForceScheme::kA;
      const double la =
          sim::evaluate_capacity(ctx.params, opt).lambda_symmetric;
      opt.force = sim::FluidOptions::ForceScheme::kB;
      const double lb =
          sim::evaluate_capacity(ctx.params, opt).lambda_symmetric;
      return std::max(la, lb);
    };
    const auto sweep_sizes = sim::geometric_sizes(2048, 2.0, 4);
    const std::size_t sweep_trials = 2;
    sim::SweepOptions sopt;
    sopt.num_threads = num_threads;
    sopt.seed0 = 31;
    auto sweep = sim::run_sweep(p, sweep_sizes, sweep_trials, eval, sopt);
    // Measured dominance side: race the schemes once more at the largest
    // size with the last trial's seed — a fixed cell, so the verdict does
    // not depend on which trial a worker finished last.
    double last_a = 0.0, last_b = 0.0;
    {
      net::ScalingParams pl = p;
      pl.n = sweep_sizes.back();
      sim::FluidOptions opt;
      opt.seed = sim::trial_seed(sopt.seed0, sweep_sizes.size() - 1,
                                 sweep_trials - 1);
      opt.force = sim::FluidOptions::ForceScheme::kA;
      last_a = sim::evaluate_capacity(pl, opt).lambda_symmetric;
      opt.force = sim::FluidOptions::ForceScheme::kB;
      last_b = sim::evaluate_capacity(pl, opt).lambda_symmetric;
    }
    const double theory =
        std::max(capacity::mobility_exponent(s.alpha),
                 capacity::infrastructure_exponent(s.K, s.phi));
    const bool theory_mob = capacity::mobility_dominant(s.alpha, s.K, s.phi);
    t.add_row({util::fmt_double(s.alpha, 2), util::fmt_double(s.K, 2),
               util::fmt_double(s.phi, 2), util::fmt_double(theory, 3),
               sweep.fit_valid ? util::fmt_double(sweep.fit.exponent, 3)
                               : "n/a",
               theory_mob ? "mobility" : "infrastructure",
               last_a > last_b ? "mobility" : "infrastructure"});
  }
  t.print(std::cout);
  return 0;
}
