// Microbenchmarks for the simulation hot paths (google-benchmark):
// spatial hash build/query, S* slot scheduling, H-V path construction,
// η-kernel evaluation and the analytic link capacity.
#include <benchmark/benchmark.h>

#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "mobility/shape.h"
#include "rng/rng.h"
#include "sched/sstar.h"

namespace {

using namespace manetcap;

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  std::vector<geom::Point> pts(n);
  for (auto& p : pts) p = rng::uniform_point(g);
  return pts;
}

void BM_SpatialHashBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto pts = random_points(n, 1);
  geom::SpatialHash hash(1.0 / std::sqrt(static_cast<double>(n)), n);
  for (auto _ : state) {
    hash.build(pts);
    benchmark::DoNotOptimize(hash.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SpatialHashBuild)->Arg(1024)->Arg(16384);

void BM_SpatialHashQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto pts = random_points(n, 2);
  const double r = 2.0 / std::sqrt(static_cast<double>(n));
  geom::SpatialHash hash(r, n);
  hash.build(pts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.count_in_disk(pts[i % n], r));
    ++i;
  }
}
BENCHMARK(BM_SpatialHashQuery)->Arg(1024)->Arg(16384);

void BM_SStarSlot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto pts = random_points(n, 3);
  sched::SStarScheduler sstar(0.3, 1.0);
  for (auto _ : state) {
    auto pairs = sstar.feasible_pairs(pts);
    benchmark::DoNotOptimize(pairs.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SStarSlot)->Arg(1024)->Arg(8192);

void BM_HvPath(benchmark::State& state) {
  geom::SquareTessellation tess(64);
  rng::Xoshiro256 g(4);
  for (auto _ : state) {
    geom::Cell a{static_cast<int>(rng::uniform_index(g, 64)),
                 static_cast<int>(rng::uniform_index(g, 64))};
    geom::Cell b{static_cast<int>(rng::uniform_index(g, 64)),
                 static_cast<int>(rng::uniform_index(g, 64))};
    auto path = tess.hv_path(a, b);
    benchmark::DoNotOptimize(path.size());
  }
}
BENCHMARK(BM_HvPath);

void BM_ShapeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    mobility::Shape s(mobility::ShapeKind::kTriangular);
    benchmark::DoNotOptimize(s.eta0());
  }
}
BENCHMARK(BM_ShapeConstruction);

void BM_EtaLookup(benchmark::State& state) {
  mobility::Shape s(mobility::ShapeKind::kQuadratic);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.eta(x));
    x += 0.001;
    if (x > 2.0) x = 0.0;
  }
}
BENCHMARK(BM_EtaLookup);

void BM_LinkCapacityEval(benchmark::State& state) {
  mobility::Shape s(mobility::ShapeKind::kUniformDisk);
  linkcap::LinkCapacityModel model(s, 16.0, 65536);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.mu_ms_ms(d));
    d += 1e-4;
    if (d > 0.2) d = 0.0;
  }
}
BENCHMARK(BM_LinkCapacityEval);

}  // namespace

BENCHMARK_MAIN();
