// Parallel sweep engine scaling: a Table-I-style fluid sweep run serially
// and with the thread pool. Records wall-clock for both, the speedup, and
// verifies that the two SweepResults are bit-identical — the determinism
// contract of run_sweep (per-cell SplitMix64 seeds + fixed-order serial
// reduction).
#include <cstring>
#include <iostream>

#include "sim/fluid.h"
#include "sim/sweep.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {
using namespace manetcap;

bool identical(const sim::SweepResult& a, const sim::SweepResult& b) {
  if (a.points.size() != b.points.size() || a.fit_valid != b.fit_valid)
    return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const auto& pa = a.points[i];
    const auto& pb = b.points[i];
    if (pa.n != pb.n ||
        std::memcmp(&pa.lambda_gm, &pb.lambda_gm, sizeof(double)) != 0 ||
        std::memcmp(&pa.lambda_min, &pb.lambda_min, sizeof(double)) != 0 ||
        std::memcmp(&pa.lambda_max, &pb.lambda_max, sizeof(double)) != 0)
      return false;
  }
  if (a.fit_valid &&
      std::memcmp(&a.fit.exponent, &b.fit.exponent, sizeof(double)) != 0)
    return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv, {"threads"});
  const auto num_threads = static_cast<std::size_t>(
      flags.get_int("threads",
                    static_cast<long>(util::ThreadPool::default_num_threads())));

  net::ScalingParams p;
  p.alpha = 0.25;
  p.with_bs = true;
  p.K = 0.85;
  p.M = 1.0;
  p.phi = 0.0;

  sim::SweepEvaluator eval = [](const sim::EvalContext& ctx) {
    sim::FluidOptions opt;
    opt.seed = ctx.seed;
    return sim::evaluate_capacity(ctx.params, opt).lambda_symmetric;
  };
  const auto sizes = sim::geometric_sizes(2048, 2.0, 4);  // 2048 .. 16384
  const std::size_t trials = 4;

  std::cout << "=== parallel sweep engine: wall-clock scaling ===\n"
            << "fluid evaluator, strong regime with BS; " << sizes.size()
            << " sizes x " << trials << " trials, seed0 = 2026.\n"
            << "available threads: " << num_threads << "\n\n";

  sim::SweepOptions serial;
  serial.num_threads = 1;
  serial.seed0 = 2026;
  util::Stopwatch sw;
  const auto r1 = sim::run_sweep(p, sizes, trials, eval, serial);
  const double t1 = sw.seconds();

  sim::SweepOptions parallel = serial;
  parallel.num_threads = num_threads;
  sw.reset();
  const auto rn = sim::run_sweep(p, sizes, trials, eval, parallel);
  const double tn = sw.seconds();

  util::Table t({"threads", "wall-clock [s]", "speedup", "bit-identical"});
  t.add_row({"1", util::fmt_double(t1, 3), "1.00", "-"});
  t.add_row({std::to_string(num_threads), util::fmt_double(tn, 3),
             tn > 0.0 ? util::fmt_double(t1 / tn, 2) : "-",
             identical(r1, rn) ? "yes" : "NO (BUG)"});
  t.print(std::cout);

  if (!identical(r1, rn)) {
    std::cerr << "ERROR: parallel sweep diverged from the serial result\n";
    return 1;
  }
  std::cout << "\n(speedup tracks the physical core count; on a 1-core\n"
            << "machine both rows time the same serial execution order)\n";
  return 0;
}
