// Theorem 2 / Remark 6 ablation: the S* transmission range.
//
// R_T = c_T/√n is order-optimal: a smaller range loses contacts, a larger
// one silences the guard zone. We sweep the constant c_T at fixed n and
// the exponent β of R_T = n^{-β} across n, measuring scheduled pairs per
// slot and aggregate contact capacity under a live mobility process.
#include <cmath>
#include <iostream>

#include "mobility/process.h"
#include "net/network.h"
#include "sched/sstar.h"
#include "util/table.h"

namespace {
using namespace manetcap;

double pairs_per_slot(const net::Network& net, double ct, int slots) {
  mobility::IidStationaryMobility process(
      net.ms_home(), net.shape(), 1.0 / net.params().f(), 97);
  sched::SStarScheduler sstar(ct, 1.0);
  std::size_t total = 0;
  for (int t = 0; t < slots; ++t) {
    total += sstar.feasible_pairs(process.positions()).size();
    process.step();
  }
  return static_cast<double>(total) / slots;
}

}  // namespace

int main() {
  std::cout << "=== Theorem 2 ablation: transmission range of policy S* ===\n";

  net::ScalingParams p;
  p.n = 4096;
  p.alpha = 0.25;
  p.with_bs = false;
  p.M = 1.0;
  auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                 net::BsPlacement::kUniform, 71);

  std::cout << "\n-- sweep the constant c_T at n = 4096 "
               "(R_T = c_T/sqrt(n)) --\n";
  util::Table t1({"c_T", "R_T", "scheduled pairs/slot", "pairs x R_T^2"});
  for (double ct : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 4.0}) {
    const double pps = pairs_per_slot(net, ct, 40);
    const double rt = ct / std::sqrt(static_cast<double>(p.n));
    t1.add_row({util::fmt_double(ct, 3), util::fmt_sci(rt, 2),
                util::fmt_double(pps, 4),
                util::fmt_sci(pps * rt * rt, 3)});
  }
  t1.print(std::cout);
  std::cout << "Interior maximum near c_T ~ 0.3-0.5: guard-zone occupancy\n"
            << "pi(1+Delta)^2 c_T^2 ~ 1. Far larger c_T collapses the\n"
            << "schedule (e^{-n R_T^2} of Theorem 2's proof).\n";

  std::cout << "\n-- sweep the exponent beta of R_T = n^{-beta} --\n";
  util::Table t2({"n", "beta=0.35", "beta=0.5 (paper)", "beta=0.65"});
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    net::ScalingParams q = p;
    q.n = n;
    auto nq = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                  net::BsPlacement::kUniform, 73);
    std::vector<std::string> row{std::to_string(n)};
    for (double beta : {0.35, 0.5, 0.65}) {
      // c_T such that R_T = n^{-beta}: ct = n^{1/2 - beta}.
      const double ct = std::pow(static_cast<double>(n), 0.5 - beta);
      row.push_back(util::fmt_double(pairs_per_slot(nq, 0.3 * ct, 25), 4));
    }
    t2.add_row(row);
  }
  t2.print(std::cout);
  std::cout << "Scheduled concurrency scales linearly in n only at the\n"
            << "paper's beta = 1/2; smaller beta (larger range) loses\n"
            << "spatial reuse, larger beta (shorter range) loses contacts\n"
            << "(Remark 6's critical-distance argument).\n";
  return 0;
}
