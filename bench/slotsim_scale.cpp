// Single-run scale benchmark: how far one SlotSim run stretches, and what
// it costs. For each population size it runs scheme B serial (shards=1),
// reports slots/sec and resident state bytes per mobile station, then
// repeats the identical run sharded (--shards S) and verifies the results
// — and, at sizes where tracing is affordable, the encoded per-packet
// traces — are byte-identical. The sharded speedup is reported but never
// gated: CI machines differ in core count (a 1-core runner shows ~1x by
// construction), so the portable contracts are
//   (1) sharded == serial, bit for bit, and
//   (2) bytes/MS stays within 25% of the checked-in baseline
// and those are what --check enforces (exit 1 on violation).
//
// Flags:
//   --n N          largest population (default 1000000)
//   --shards S     stripe count for the sharded leg (default 8)
//   --slots S      simulated slots per run (default 40)
//   --smoke        pinned small case: n=20000, 120 slots
//   --check        gate bytes/MS against the baseline; exit 1 on regression
//   --baseline PATH  baseline CSV (default bench/slotsim_scale_baseline.csv)
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "util/artifacts.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {
using namespace manetcap;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool identical(const sim::SlotSimResult& a, const sim::SlotSimResult& b) {
  return bits_equal(a.mean_flow_rate, b.mean_flow_rate) &&
         bits_equal(a.min_flow_rate, b.min_flow_rate) &&
         bits_equal(a.p10_flow_rate, b.p10_flow_rate) &&
         bits_equal(a.pairs_per_slot, b.pairs_per_slot) &&
         bits_equal(a.mean_delay, b.mean_delay) &&
         bits_equal(a.p95_delay, b.p95_delay) &&
         a.total_delivered == b.total_delivered &&
         a.measured_slots == b.measured_slots && a.injected == b.injected &&
         a.delivered_lifetime == b.delivered_lifetime &&
         a.queued_end == b.queued_end && a.dropped == b.dropped;
}

/// Per-packet tracing is O(delivered) memory — affordable for the identity
/// check at moderate n, pure overhead at 10^6.
constexpr std::size_t kTraceCeiling = 50000;

/// Baseline bytes/MS for (case, n) from a CSV with columns
/// case,n,bytes_per_ms. Returns 0 when absent.
double baseline_bytes_per_ms(const std::string& path,
                             const std::string& case_name, std::size_t n) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline: " + path);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() >= 3 && fields[0] == case_name &&
        fields[1] == std::to_string(n))
      return std::stod(fields[2]);
  }
  return 0.0;
}

struct Leg {
  sim::SlotSimResult res;
  std::vector<std::uint8_t> trace_bytes;  // empty above kTraceCeiling
  double wall_s = 0.0;
};

Leg run_leg(const net::Network& net, const std::vector<std::uint32_t>& dest,
            sim::SlotSimOptions opt, std::size_t shards) {
  opt.shards = shards;
  sim::Trace trace;
  if (net.num_ms() <= kTraceCeiling) opt.trace = &trace;
  Leg leg;
  util::Stopwatch sw;
  leg.res = sim::run_slot_sim(net, dest, opt);
  leg.wall_s = sw.seconds();
  if (opt.trace != nullptr) leg.trace_bytes = trace.encode();
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(
      argc, argv, {"n", "shards", "slots", "smoke", "check", "baseline"});
  const bool smoke = flags.get_bool("smoke", false);
  const std::string case_name = smoke ? "smoke" : "full";
  const std::size_t shards =
      static_cast<std::size_t>(flags.get_int("shards", 8));

  const std::size_t n_top = static_cast<std::size_t>(
      flags.get_int("n", smoke ? 20000 : 1000000));
  std::vector<std::size_t> sizes;
  if (smoke) {
    sizes = {n_top};
  } else {
    // One intermediate point an order of magnitude down gives the bytes/MS
    // trend without doubling the wall-clock of the top size.
    if (n_top >= 10) sizes.push_back(n_top / 10);
    sizes.push_back(n_top);
  }

  sim::SlotSimOptions base;
  base.scheme = sim::SlotScheme::kSchemeB;
  base.slots =
      static_cast<std::size_t>(flags.get_int("slots", smoke ? 120 : 40));
  base.warmup = base.slots / 10;
  base.seed = 1;

  std::cout << "=== single-run scale: sharded SlotSim, bytes/MS ===\n"
            << "case " << case_name << ": scheme B, " << base.slots
            << " slots, shards " << shards << " (seed 1)\n\n";

  util::Table t({"n", "impl", "wall-clock [s]", "slots/sec", "bytes/MS",
                 "speedup", "identical"});
  util::CsvWriter csv(util::artifact_path("slotsim_scale"),
                      {"case", "scheme", "n", "slots", "shards", "wall_s",
                       "slots_per_sec", "bytes_per_ms",
                       "speedup_vs_serial", "identical"});

  bool all_identical = true;
  bool gate_ok = true;
  for (std::size_t n : sizes) {
    net::ScalingParams p;
    p.n = n;
    p.alpha = 0.35;
    p.with_bs = true;
    p.K = 0.7;
    p.M = 1.0;
    auto net = net::Network::build(p, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched,
                                   base.seed);
    rng::Xoshiro256 g(sim::traffic_seed(base.seed));
    auto dest = net::permutation_traffic(p.n, g);

    const Leg serial = run_leg(net, dest, base, 1);
    const Leg sharded = run_leg(net, dest, base, shards);

    const bool same = identical(serial.res, sharded.res) &&
                      serial.trace_bytes == sharded.trace_bytes;
    all_identical = all_identical && same;
    const double sps_serial =
        static_cast<double>(base.slots) / serial.wall_s;
    const double sps_sharded =
        static_cast<double>(base.slots) / sharded.wall_s;
    const double speedup = sps_sharded / sps_serial;
    const double bytes_per_ms =
        static_cast<double>(serial.res.state_bytes) / static_cast<double>(n);

    t.add_row({std::to_string(n), "serial",
               util::fmt_double(serial.wall_s, 3),
               std::to_string(std::llround(sps_serial)),
               util::fmt_double(bytes_per_ms, 6), "1.00", "-"});
    t.add_row({std::to_string(n), "shards=" + std::to_string(shards),
               util::fmt_double(sharded.wall_s, 3),
               std::to_string(std::llround(sps_sharded)),
               util::fmt_double(
                   static_cast<double>(sharded.res.state_bytes) /
                       static_cast<double>(n),
                   6),
               util::fmt_double(speedup, 2), same ? "yes" : "NO (BUG)"});
    csv.add_row({case_name, "scheme-B", std::to_string(n),
                 std::to_string(base.slots), "1",
                 util::fmt_double(serial.wall_s, 4),
                 std::to_string(std::llround(sps_serial)),
                 util::fmt_double(bytes_per_ms, 6), "1.00", "yes"});
    csv.add_row({case_name, "scheme-B", std::to_string(n),
                 std::to_string(base.slots), std::to_string(shards),
                 util::fmt_double(sharded.wall_s, 4),
                 std::to_string(std::llround(sps_sharded)),
                 util::fmt_double(
                     static_cast<double>(sharded.res.state_bytes) /
                         static_cast<double>(n),
                     6),
                 util::fmt_double(speedup, 2), same ? "yes" : "no"});

    if (flags.get_bool("check", false)) {
      const std::string path = flags.get_string(
          "baseline", "bench/slotsim_scale_baseline.csv");
      const double want = baseline_bytes_per_ms(path, case_name, n);
      if (want <= 0.0) {
        std::cerr << "ERROR: no baseline row for (" << case_name << ", n="
                  << n << ") in " << path << "\n";
        gate_ok = false;
      } else {
        const double ceiling = 1.25 * want;
        std::cout << "mem gate (n=" << n << "): measured "
                  << util::fmt_double(bytes_per_ms, 6)
                  << " bytes/MS vs baseline " << util::fmt_double(want, 6)
                  << " (ceiling " << util::fmt_double(ceiling, 6)
                  << ", 25% growth budget): "
                  << (bytes_per_ms <= ceiling ? "OK" : "REGRESSION") << "\n";
        gate_ok = gate_ok && bytes_per_ms <= ceiling;
      }
    }
  }
  t.print(std::cout);

  if (!all_identical) {
    std::cerr << "\nERROR: sharded run diverged from the serial run\n";
    return 1;
  }
  if (!gate_ok) {
    std::cerr << "\nERROR: bytes/MS regressed by more than 25%\n";
    return 1;
  }
  return 0;
}
