// Backbone-bandwidth ablation: where does the min(k²c/n, k/n) crossover
// sit? The paper's prose says ϕ = 1, its own formula and Figure 3 say
// ϕ = 0 (see DESIGN.md). We sweep ϕ and let the measurement decide: λ
// should grow with ϕ while the backbone binds and saturate once the access
// phase takes over.
#include <cmath>
#include <iostream>

#include "capacity/formulas.h"
#include "net/traffic.h"
#include "routing/scheme_b.h"
#include "rng/rng.h"
#include "util/artifacts.h"
#include "util/table.h"

int main() {
  using namespace manetcap;
  std::cout << "=== phi ablation: the wired/wireless balance point ===\n"
            << "n = 8192, alpha = 0.3, K = 0.7, scheme B; mu_c = k*c = "
               "n^phi\n\n";

  net::ScalingParams p;
  p.n = 8192;
  p.alpha = 0.3;
  p.with_bs = true;
  p.K = 0.7;
  p.M = 1.0;

  auto net_builder = [&p](double phi, std::uint64_t seed) {
    net::ScalingParams q = p;
    q.phi = phi;
    return net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                               net::BsPlacement::kClusteredMatched, seed);
  };

  util::Table t({"phi", "theory e(infra)", "lambda", "bottleneck",
                 "lambda / lambda(phi=0)"});
  util::CsvWriter csv(util::artifact_path("ablation_phi"),
                      {"phi", "lambda", "bottleneck"});
  double lambda_at_zero = 0.0;
  std::vector<std::pair<double, double>> series;
  for (double phi : {-1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto net = net_builder(phi, 83);
    rng::Xoshiro256 g(89);
    auto dest = net::permutation_traffic(p.n, g);
    routing::SchemeB b;
    auto r = b.evaluate(net, dest);
    if (phi == 0.0) lambda_at_zero = r.throughput.lambda;
    series.push_back({phi, r.throughput.lambda});
    csv.add_row({util::fmt_double(phi, 4),
                 util::fmt_sci(r.throughput.lambda, 6),
                 to_string(r.throughput.bottleneck)});
    t.add_row({util::fmt_double(phi, 3),
               util::fmt_double(capacity::infrastructure_exponent(p.K, phi),
                                3),
               util::fmt_sci(r.throughput.lambda, 3),
               to_string(r.throughput.bottleneck),
               lambda_at_zero > 0.0
                   ? util::fmt_double(r.throughput.lambda / lambda_at_zero, 3)
                   : "-"});
  }
  t.print(std::cout);

  // Locate the measured crossover: the last phi where growing phi still
  // raised lambda by more than 10%.
  double crossover = series.front().first;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].second > 1.10 * series[i - 1].second)
      crossover = series[i].first;
  }
  std::cout << "\nmeasured saturation point at n = 8192: phi ~ "
            << util::fmt_double(crossover, 2) << "\n";

  // The finite-n crossover sits below 0 by a constant-ratio offset
  // phi*(n) = ln(C_access/C_backbone)/ln(n) → 0. Show the convergence:
  // evaluate both phase bounds at phi = 0 and solve n^{phi*} · bound_II =
  // bound_I for phi*.
  std::cout << "\nconvergence of the crossover toward phi = 0:\n";
  util::Table conv({"n", "access bound", "backbone bound (phi=0)",
                    "interpolated phi*"});
  for (std::size_t n : {2048u, 8192u, 32768u, 131072u, 524288u}) {
    net::ScalingParams q = p;
    q.n = n;
    q.phi = 0.0;
    auto net = net::Network::build(q, mobility::ShapeKind::kUniformDisk,
                                   net::BsPlacement::kClusteredMatched, 83);
    rng::Xoshiro256 g(89);
    auto dest = net::permutation_traffic(q.n, g);
    routing::SchemeB b;
    auto r = b.evaluate(net, dest);
    const double acc = r.throughput.lambda_access;
    const double bb = r.throughput.lambda_backbone;
    const double phi_star =
        std::log(acc / bb) / std::log(static_cast<double>(n));
    conv.add_row({std::to_string(n), util::fmt_sci(acc, 2),
                  util::fmt_sci(bb, 2), util::fmt_double(phi_star, 3)});
  }
  conv.print(std::cout);
  std::cout << "\nphi* rises toward 0 as n grows — the balance point is\n"
            << "phi = 0 (keep c(n) ~ 1/k, i.e. mu_c constant), not the\n"
            << "paper's prose claim of phi = 1 (see DESIGN.md).\n";
  return 0;
}
