file(REMOVE_RECURSE
  "CMakeFiles/manet_flow.dir/constraints.cpp.o"
  "CMakeFiles/manet_flow.dir/constraints.cpp.o.d"
  "libmanet_flow.a"
  "libmanet_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
