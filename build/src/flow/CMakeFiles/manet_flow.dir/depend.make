# Empty dependencies file for manet_flow.
# This may be replaced when dependencies are built.
