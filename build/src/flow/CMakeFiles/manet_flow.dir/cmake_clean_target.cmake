file(REMOVE_RECURSE
  "libmanet_flow.a"
)
