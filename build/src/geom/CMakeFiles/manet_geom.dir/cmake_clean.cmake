file(REMOVE_RECURSE
  "CMakeFiles/manet_geom.dir/hex.cpp.o"
  "CMakeFiles/manet_geom.dir/hex.cpp.o.d"
  "CMakeFiles/manet_geom.dir/spatial_hash.cpp.o"
  "CMakeFiles/manet_geom.dir/spatial_hash.cpp.o.d"
  "CMakeFiles/manet_geom.dir/tessellation.cpp.o"
  "CMakeFiles/manet_geom.dir/tessellation.cpp.o.d"
  "libmanet_geom.a"
  "libmanet_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
