# Empty compiler generated dependencies file for manet_geom.
# This may be replaced when dependencies are built.
