file(REMOVE_RECURSE
  "libmanet_geom.a"
)
