file(REMOVE_RECURSE
  "CMakeFiles/manet_phy.dir/protocol_model.cpp.o"
  "CMakeFiles/manet_phy.dir/protocol_model.cpp.o.d"
  "libmanet_phy.a"
  "libmanet_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
