file(REMOVE_RECURSE
  "libmanet_phy.a"
)
