# Empty dependencies file for manet_phy.
# This may be replaced when dependencies are built.
