file(REMOVE_RECURSE
  "CMakeFiles/manet_routing.dir/l_hop.cpp.o"
  "CMakeFiles/manet_routing.dir/l_hop.cpp.o.d"
  "CMakeFiles/manet_routing.dir/multicast.cpp.o"
  "CMakeFiles/manet_routing.dir/multicast.cpp.o.d"
  "CMakeFiles/manet_routing.dir/scheme_a.cpp.o"
  "CMakeFiles/manet_routing.dir/scheme_a.cpp.o.d"
  "CMakeFiles/manet_routing.dir/scheme_b.cpp.o"
  "CMakeFiles/manet_routing.dir/scheme_b.cpp.o.d"
  "CMakeFiles/manet_routing.dir/scheme_c.cpp.o"
  "CMakeFiles/manet_routing.dir/scheme_c.cpp.o.d"
  "CMakeFiles/manet_routing.dir/static_multihop.cpp.o"
  "CMakeFiles/manet_routing.dir/static_multihop.cpp.o.d"
  "CMakeFiles/manet_routing.dir/two_hop.cpp.o"
  "CMakeFiles/manet_routing.dir/two_hop.cpp.o.d"
  "libmanet_routing.a"
  "libmanet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
