# Empty dependencies file for manet_routing.
# This may be replaced when dependencies are built.
