file(REMOVE_RECURSE
  "libmanet_routing.a"
)
