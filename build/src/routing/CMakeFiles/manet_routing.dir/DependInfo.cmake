
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/l_hop.cpp" "src/routing/CMakeFiles/manet_routing.dir/l_hop.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/l_hop.cpp.o.d"
  "/root/repo/src/routing/multicast.cpp" "src/routing/CMakeFiles/manet_routing.dir/multicast.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/multicast.cpp.o.d"
  "/root/repo/src/routing/scheme_a.cpp" "src/routing/CMakeFiles/manet_routing.dir/scheme_a.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/scheme_a.cpp.o.d"
  "/root/repo/src/routing/scheme_b.cpp" "src/routing/CMakeFiles/manet_routing.dir/scheme_b.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/scheme_b.cpp.o.d"
  "/root/repo/src/routing/scheme_c.cpp" "src/routing/CMakeFiles/manet_routing.dir/scheme_c.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/scheme_c.cpp.o.d"
  "/root/repo/src/routing/static_multihop.cpp" "src/routing/CMakeFiles/manet_routing.dir/static_multihop.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/static_multihop.cpp.o.d"
  "/root/repo/src/routing/two_hop.cpp" "src/routing/CMakeFiles/manet_routing.dir/two_hop.cpp.o" "gcc" "src/routing/CMakeFiles/manet_routing.dir/two_hop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/manet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/manet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/manet_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/manet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/manet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/manet_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/linkcap/CMakeFiles/manet_linkcap.dir/DependInfo.cmake"
  "/root/repo/build/src/backbone/CMakeFiles/manet_backbone.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/manet_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
