file(REMOVE_RECURSE
  "CMakeFiles/manet_rng.dir/rng.cpp.o"
  "CMakeFiles/manet_rng.dir/rng.cpp.o.d"
  "libmanet_rng.a"
  "libmanet_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
