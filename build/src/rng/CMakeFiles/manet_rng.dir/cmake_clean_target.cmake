file(REMOVE_RECURSE
  "libmanet_rng.a"
)
