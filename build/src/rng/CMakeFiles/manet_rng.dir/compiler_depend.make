# Empty compiler generated dependencies file for manet_rng.
# This may be replaced when dependencies are built.
