file(REMOVE_RECURSE
  "libmanet_mobility.a"
)
