file(REMOVE_RECURSE
  "CMakeFiles/manet_mobility.dir/home_points.cpp.o"
  "CMakeFiles/manet_mobility.dir/home_points.cpp.o.d"
  "CMakeFiles/manet_mobility.dir/process.cpp.o"
  "CMakeFiles/manet_mobility.dir/process.cpp.o.d"
  "CMakeFiles/manet_mobility.dir/shape.cpp.o"
  "CMakeFiles/manet_mobility.dir/shape.cpp.o.d"
  "libmanet_mobility.a"
  "libmanet_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
