# Empty dependencies file for manet_mobility.
# This may be replaced when dependencies are built.
