
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/home_points.cpp" "src/mobility/CMakeFiles/manet_mobility.dir/home_points.cpp.o" "gcc" "src/mobility/CMakeFiles/manet_mobility.dir/home_points.cpp.o.d"
  "/root/repo/src/mobility/process.cpp" "src/mobility/CMakeFiles/manet_mobility.dir/process.cpp.o" "gcc" "src/mobility/CMakeFiles/manet_mobility.dir/process.cpp.o.d"
  "/root/repo/src/mobility/shape.cpp" "src/mobility/CMakeFiles/manet_mobility.dir/shape.cpp.o" "gcc" "src/mobility/CMakeFiles/manet_mobility.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/manet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/manet_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
