file(REMOVE_RECURSE
  "libmanet_capacity.a"
)
