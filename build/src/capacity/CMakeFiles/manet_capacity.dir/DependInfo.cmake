
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capacity/cutset.cpp" "src/capacity/CMakeFiles/manet_capacity.dir/cutset.cpp.o" "gcc" "src/capacity/CMakeFiles/manet_capacity.dir/cutset.cpp.o.d"
  "/root/repo/src/capacity/formulas.cpp" "src/capacity/CMakeFiles/manet_capacity.dir/formulas.cpp.o" "gcc" "src/capacity/CMakeFiles/manet_capacity.dir/formulas.cpp.o.d"
  "/root/repo/src/capacity/phase_diagram.cpp" "src/capacity/CMakeFiles/manet_capacity.dir/phase_diagram.cpp.o" "gcc" "src/capacity/CMakeFiles/manet_capacity.dir/phase_diagram.cpp.o.d"
  "/root/repo/src/capacity/recommend.cpp" "src/capacity/CMakeFiles/manet_capacity.dir/recommend.cpp.o" "gcc" "src/capacity/CMakeFiles/manet_capacity.dir/recommend.cpp.o.d"
  "/root/repo/src/capacity/regimes.cpp" "src/capacity/CMakeFiles/manet_capacity.dir/regimes.cpp.o" "gcc" "src/capacity/CMakeFiles/manet_capacity.dir/regimes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/manet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/manet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/linkcap/CMakeFiles/manet_linkcap.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/manet_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/manet_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/manet_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/manet_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
