file(REMOVE_RECURSE
  "CMakeFiles/manet_capacity.dir/cutset.cpp.o"
  "CMakeFiles/manet_capacity.dir/cutset.cpp.o.d"
  "CMakeFiles/manet_capacity.dir/formulas.cpp.o"
  "CMakeFiles/manet_capacity.dir/formulas.cpp.o.d"
  "CMakeFiles/manet_capacity.dir/phase_diagram.cpp.o"
  "CMakeFiles/manet_capacity.dir/phase_diagram.cpp.o.d"
  "CMakeFiles/manet_capacity.dir/recommend.cpp.o"
  "CMakeFiles/manet_capacity.dir/recommend.cpp.o.d"
  "CMakeFiles/manet_capacity.dir/regimes.cpp.o"
  "CMakeFiles/manet_capacity.dir/regimes.cpp.o.d"
  "libmanet_capacity.a"
  "libmanet_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
