# Empty compiler generated dependencies file for manet_capacity.
# This may be replaced when dependencies are built.
