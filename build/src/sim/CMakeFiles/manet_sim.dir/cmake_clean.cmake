file(REMOVE_RECURSE
  "CMakeFiles/manet_sim.dir/fluid.cpp.o"
  "CMakeFiles/manet_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/manet_sim.dir/slotsim.cpp.o"
  "CMakeFiles/manet_sim.dir/slotsim.cpp.o.d"
  "CMakeFiles/manet_sim.dir/sweep.cpp.o"
  "CMakeFiles/manet_sim.dir/sweep.cpp.o.d"
  "libmanet_sim.a"
  "libmanet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
