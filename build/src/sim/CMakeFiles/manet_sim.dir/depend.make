# Empty dependencies file for manet_sim.
# This may be replaced when dependencies are built.
