file(REMOVE_RECURSE
  "libmanet_sim.a"
)
