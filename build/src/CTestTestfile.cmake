# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("rng")
subdirs("mobility")
subdirs("net")
subdirs("phy")
subdirs("sched")
subdirs("linkcap")
subdirs("backbone")
subdirs("routing")
subdirs("flow")
subdirs("capacity")
subdirs("analysis")
subdirs("sim")
