# Empty compiler generated dependencies file for manet_analysis.
# This may be replaced when dependencies are built.
