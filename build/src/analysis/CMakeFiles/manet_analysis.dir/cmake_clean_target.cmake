file(REMOVE_RECURSE
  "libmanet_analysis.a"
)
