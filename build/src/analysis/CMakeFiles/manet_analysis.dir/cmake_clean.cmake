file(REMOVE_RECURSE
  "CMakeFiles/manet_analysis.dir/connectivity.cpp.o"
  "CMakeFiles/manet_analysis.dir/connectivity.cpp.o.d"
  "CMakeFiles/manet_analysis.dir/density.cpp.o"
  "CMakeFiles/manet_analysis.dir/density.cpp.o.d"
  "CMakeFiles/manet_analysis.dir/loglog_fit.cpp.o"
  "CMakeFiles/manet_analysis.dir/loglog_fit.cpp.o.d"
  "CMakeFiles/manet_analysis.dir/stats.cpp.o"
  "CMakeFiles/manet_analysis.dir/stats.cpp.o.d"
  "libmanet_analysis.a"
  "libmanet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
