file(REMOVE_RECURSE
  "libmanet_linkcap.a"
)
