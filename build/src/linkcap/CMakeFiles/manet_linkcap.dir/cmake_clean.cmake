file(REMOVE_RECURSE
  "CMakeFiles/manet_linkcap.dir/link_capacity.cpp.o"
  "CMakeFiles/manet_linkcap.dir/link_capacity.cpp.o.d"
  "CMakeFiles/manet_linkcap.dir/measure.cpp.o"
  "CMakeFiles/manet_linkcap.dir/measure.cpp.o.d"
  "libmanet_linkcap.a"
  "libmanet_linkcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_linkcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
