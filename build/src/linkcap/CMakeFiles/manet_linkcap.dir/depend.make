# Empty dependencies file for manet_linkcap.
# This may be replaced when dependencies are built.
