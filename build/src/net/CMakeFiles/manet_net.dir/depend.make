# Empty dependencies file for manet_net.
# This may be replaced when dependencies are built.
