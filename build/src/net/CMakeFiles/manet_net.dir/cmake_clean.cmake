file(REMOVE_RECURSE
  "CMakeFiles/manet_net.dir/network.cpp.o"
  "CMakeFiles/manet_net.dir/network.cpp.o.d"
  "CMakeFiles/manet_net.dir/params.cpp.o"
  "CMakeFiles/manet_net.dir/params.cpp.o.d"
  "CMakeFiles/manet_net.dir/traffic.cpp.o"
  "CMakeFiles/manet_net.dir/traffic.cpp.o.d"
  "libmanet_net.a"
  "libmanet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
