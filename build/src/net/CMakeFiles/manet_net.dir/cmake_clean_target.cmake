file(REMOVE_RECURSE
  "libmanet_net.a"
)
