# Empty dependencies file for manet_backbone.
# This may be replaced when dependencies are built.
