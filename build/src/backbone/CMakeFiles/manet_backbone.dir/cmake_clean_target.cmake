file(REMOVE_RECURSE
  "libmanet_backbone.a"
)
