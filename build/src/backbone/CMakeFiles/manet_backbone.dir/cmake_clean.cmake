file(REMOVE_RECURSE
  "CMakeFiles/manet_backbone.dir/backbone.cpp.o"
  "CMakeFiles/manet_backbone.dir/backbone.cpp.o.d"
  "libmanet_backbone.a"
  "libmanet_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
