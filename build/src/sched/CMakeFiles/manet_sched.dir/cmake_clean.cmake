file(REMOVE_RECURSE
  "CMakeFiles/manet_sched.dir/greedy.cpp.o"
  "CMakeFiles/manet_sched.dir/greedy.cpp.o.d"
  "CMakeFiles/manet_sched.dir/sstar.cpp.o"
  "CMakeFiles/manet_sched.dir/sstar.cpp.o.d"
  "CMakeFiles/manet_sched.dir/tdma_cell.cpp.o"
  "CMakeFiles/manet_sched.dir/tdma_cell.cpp.o.d"
  "libmanet_sched.a"
  "libmanet_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
