file(REMOVE_RECURSE
  "libmanet_sched.a"
)
