# Empty compiler generated dependencies file for manet_sched.
# This may be replaced when dependencies are built.
