
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/greedy.cpp" "src/sched/CMakeFiles/manet_sched.dir/greedy.cpp.o" "gcc" "src/sched/CMakeFiles/manet_sched.dir/greedy.cpp.o.d"
  "/root/repo/src/sched/sstar.cpp" "src/sched/CMakeFiles/manet_sched.dir/sstar.cpp.o" "gcc" "src/sched/CMakeFiles/manet_sched.dir/sstar.cpp.o.d"
  "/root/repo/src/sched/tdma_cell.cpp" "src/sched/CMakeFiles/manet_sched.dir/tdma_cell.cpp.o" "gcc" "src/sched/CMakeFiles/manet_sched.dir/tdma_cell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/manet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/manet_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
