# Empty dependencies file for manet_util.
# This may be replaced when dependencies are built.
