file(REMOVE_RECURSE
  "CMakeFiles/manet_util.dir/artifacts.cpp.o"
  "CMakeFiles/manet_util.dir/artifacts.cpp.o.d"
  "CMakeFiles/manet_util.dir/csv.cpp.o"
  "CMakeFiles/manet_util.dir/csv.cpp.o.d"
  "CMakeFiles/manet_util.dir/flags.cpp.o"
  "CMakeFiles/manet_util.dir/flags.cpp.o.d"
  "CMakeFiles/manet_util.dir/log.cpp.o"
  "CMakeFiles/manet_util.dir/log.cpp.o.d"
  "CMakeFiles/manet_util.dir/table.cpp.o"
  "CMakeFiles/manet_util.dir/table.cpp.o.d"
  "libmanet_util.a"
  "libmanet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
