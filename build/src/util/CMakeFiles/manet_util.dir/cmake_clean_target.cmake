file(REMOVE_RECURSE
  "libmanet_util.a"
)
