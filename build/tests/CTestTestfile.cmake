# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/linkcap_test[1]_include.cmake")
include("/root/repo/build/tests/backbone_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/cutset_test[1]_include.cmake")
include("/root/repo/build/tests/connectivity_test[1]_include.cmake")
include("/root/repo/build/tests/geom_property_test[1]_include.cmake")
include("/root/repo/build/tests/routing_edge_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
