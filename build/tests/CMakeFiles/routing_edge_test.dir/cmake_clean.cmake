file(REMOVE_RECURSE
  "CMakeFiles/routing_edge_test.dir/routing_edge_test.cpp.o"
  "CMakeFiles/routing_edge_test.dir/routing_edge_test.cpp.o.d"
  "routing_edge_test"
  "routing_edge_test.pdb"
  "routing_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
