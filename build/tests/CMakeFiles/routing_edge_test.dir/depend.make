# Empty dependencies file for routing_edge_test.
# This may be replaced when dependencies are built.
