
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phy_test.cpp" "tests/CMakeFiles/phy_test.dir/phy_test.cpp.o" "gcc" "tests/CMakeFiles/phy_test.dir/phy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/manet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/manet_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
