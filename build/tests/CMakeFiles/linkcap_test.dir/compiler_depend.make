# Empty compiler generated dependencies file for linkcap_test.
# This may be replaced when dependencies are built.
