file(REMOVE_RECURSE
  "CMakeFiles/linkcap_test.dir/linkcap_test.cpp.o"
  "CMakeFiles/linkcap_test.dir/linkcap_test.cpp.o.d"
  "linkcap_test"
  "linkcap_test.pdb"
  "linkcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
