# Empty dependencies file for cutset_test.
# This may be replaced when dependencies are built.
