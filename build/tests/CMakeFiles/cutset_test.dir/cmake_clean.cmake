file(REMOVE_RECURSE
  "CMakeFiles/cutset_test.dir/cutset_test.cpp.o"
  "CMakeFiles/cutset_test.dir/cutset_test.cpp.o.d"
  "cutset_test"
  "cutset_test.pdb"
  "cutset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
