file(REMOVE_RECURSE
  "CMakeFiles/fig2_scheme_b.dir/fig2_scheme_b.cpp.o"
  "CMakeFiles/fig2_scheme_b.dir/fig2_scheme_b.cpp.o.d"
  "fig2_scheme_b"
  "fig2_scheme_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scheme_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
