# Empty dependencies file for fig2_scheme_b.
# This may be replaced when dependencies are built.
