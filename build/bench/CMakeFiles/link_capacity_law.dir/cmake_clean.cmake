file(REMOVE_RECURSE
  "CMakeFiles/link_capacity_law.dir/link_capacity_law.cpp.o"
  "CMakeFiles/link_capacity_law.dir/link_capacity_law.cpp.o.d"
  "link_capacity_law"
  "link_capacity_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_capacity_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
