# Empty compiler generated dependencies file for link_capacity_law.
# This may be replaced when dependencies are built.
