file(REMOVE_RECURSE
  "CMakeFiles/ext_delay_tradeoff.dir/ext_delay_tradeoff.cpp.o"
  "CMakeFiles/ext_delay_tradeoff.dir/ext_delay_tradeoff.cpp.o.d"
  "ext_delay_tradeoff"
  "ext_delay_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_delay_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
