# Empty dependencies file for ext_delay_tradeoff.
# This may be replaced when dependencies are built.
