# Empty compiler generated dependencies file for ext_l_hop.
# This may be replaced when dependencies are built.
