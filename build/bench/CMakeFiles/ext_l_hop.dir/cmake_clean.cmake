file(REMOVE_RECURSE
  "CMakeFiles/ext_l_hop.dir/ext_l_hop.cpp.o"
  "CMakeFiles/ext_l_hop.dir/ext_l_hop.cpp.o.d"
  "ext_l_hop"
  "ext_l_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_l_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
