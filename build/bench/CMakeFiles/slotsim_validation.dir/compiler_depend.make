# Empty compiler generated dependencies file for slotsim_validation.
# This may be replaced when dependencies are built.
