file(REMOVE_RECURSE
  "CMakeFiles/slotsim_validation.dir/slotsim_validation.cpp.o"
  "CMakeFiles/slotsim_validation.dir/slotsim_validation.cpp.o.d"
  "slotsim_validation"
  "slotsim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slotsim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
