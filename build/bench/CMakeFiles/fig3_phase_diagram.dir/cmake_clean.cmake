file(REMOVE_RECURSE
  "CMakeFiles/fig3_phase_diagram.dir/fig3_phase_diagram.cpp.o"
  "CMakeFiles/fig3_phase_diagram.dir/fig3_phase_diagram.cpp.o.d"
  "fig3_phase_diagram"
  "fig3_phase_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_phase_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
