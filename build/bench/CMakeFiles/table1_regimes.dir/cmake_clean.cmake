file(REMOVE_RECURSE
  "CMakeFiles/table1_regimes.dir/table1_regimes.cpp.o"
  "CMakeFiles/table1_regimes.dir/table1_regimes.cpp.o.d"
  "table1_regimes"
  "table1_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
