# Empty compiler generated dependencies file for table1_regimes.
# This may be replaced when dependencies are built.
