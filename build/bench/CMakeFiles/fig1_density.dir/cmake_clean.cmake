file(REMOVE_RECURSE
  "CMakeFiles/fig1_density.dir/fig1_density.cpp.o"
  "CMakeFiles/fig1_density.dir/fig1_density.cpp.o.d"
  "fig1_density"
  "fig1_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
