# Empty dependencies file for ext_cutset_sandwich.
# This may be replaced when dependencies are built.
