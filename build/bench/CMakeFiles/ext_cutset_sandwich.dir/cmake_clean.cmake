file(REMOVE_RECURSE
  "CMakeFiles/ext_cutset_sandwich.dir/ext_cutset_sandwich.cpp.o"
  "CMakeFiles/ext_cutset_sandwich.dir/ext_cutset_sandwich.cpp.o.d"
  "ext_cutset_sandwich"
  "ext_cutset_sandwich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cutset_sandwich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
