# Empty dependencies file for ablation_rt.
# This may be replaced when dependencies are built.
