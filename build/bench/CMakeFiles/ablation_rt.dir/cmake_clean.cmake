file(REMOVE_RECURSE
  "CMakeFiles/ablation_rt.dir/ablation_rt.cpp.o"
  "CMakeFiles/ablation_rt.dir/ablation_rt.cpp.o.d"
  "ablation_rt"
  "ablation_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
