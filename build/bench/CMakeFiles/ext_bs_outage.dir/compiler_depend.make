# Empty compiler generated dependencies file for ext_bs_outage.
# This may be replaced when dependencies are built.
