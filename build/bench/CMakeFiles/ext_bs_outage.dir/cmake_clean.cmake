file(REMOVE_RECURSE
  "CMakeFiles/ext_bs_outage.dir/ext_bs_outage.cpp.o"
  "CMakeFiles/ext_bs_outage.dir/ext_bs_outage.cpp.o.d"
  "ext_bs_outage"
  "ext_bs_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bs_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
