# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/manetcap_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_classify "/root/repo/build/tools/manetcap_cli" "classify" "--alpha" "0.45" "--M" "0.3" "--R" "0.4" "--K" "0.6")
set_tests_properties(cli_classify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_capacity "/root/repo/build/tools/manetcap_cli" "capacity" "--n" "1024" "--alpha" "0.3" "--K" "0.7")
set_tests_properties(cli_capacity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/manetcap_cli" "sweep" "--alpha" "0.3" "--K" "0.7" "--n0" "512" "--count" "3" "--trials" "1")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/manetcap_cli" "simulate" "--n" "256" "--alpha" "0.3" "--scheme" "B" "--slots" "600")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_phase "/root/repo/build/tools/manetcap_cli" "phase" "--phi" "-0.5")
set_tests_properties(cli_phase PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_subcommand "/root/repo/build/tools/manetcap_cli" "frobnicate")
set_tests_properties(cli_rejects_bad_subcommand PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/manetcap_cli" "classify" "--bogus" "1")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
