file(REMOVE_RECURSE
  "CMakeFiles/manetcap_cli.dir/manetcap_cli.cpp.o"
  "CMakeFiles/manetcap_cli.dir/manetcap_cli.cpp.o.d"
  "manetcap_cli"
  "manetcap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manetcap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
