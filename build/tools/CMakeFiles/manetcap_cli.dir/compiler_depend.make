# Empty compiler generated dependencies file for manetcap_cli.
# This may be replaced when dependencies are built.
