file(REMOVE_RECURSE
  "CMakeFiles/delay_tolerant_fleet.dir/delay_tolerant_fleet.cpp.o"
  "CMakeFiles/delay_tolerant_fleet.dir/delay_tolerant_fleet.cpp.o.d"
  "delay_tolerant_fleet"
  "delay_tolerant_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_tolerant_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
