# Empty compiler generated dependencies file for delay_tolerant_fleet.
# This may be replaced when dependencies are built.
