# Empty dependencies file for campus_mobility_regimes.
# This may be replaced when dependencies are built.
