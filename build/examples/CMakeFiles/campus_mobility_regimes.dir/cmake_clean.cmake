file(REMOVE_RECURSE
  "CMakeFiles/campus_mobility_regimes.dir/campus_mobility_regimes.cpp.o"
  "CMakeFiles/campus_mobility_regimes.dir/campus_mobility_regimes.cpp.o.d"
  "campus_mobility_regimes"
  "campus_mobility_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_mobility_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
