file(REMOVE_RECURSE
  "CMakeFiles/infrastructure_planning.dir/infrastructure_planning.cpp.o"
  "CMakeFiles/infrastructure_planning.dir/infrastructure_planning.cpp.o.d"
  "infrastructure_planning"
  "infrastructure_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infrastructure_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
