# Empty compiler generated dependencies file for infrastructure_planning.
# This may be replaced when dependencies are built.
