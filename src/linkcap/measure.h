// Monte-Carlo measurement of link capacity and scheduling statistics.
//
// These estimators validate the analytic model empirically:
//  * meeting probability of a pair at given home-distance (Corollary 1),
//  * S* busy probability per node (Lemma 3: bounded below by a constant),
//  * per-slot S* pair statistics over a real mobility process.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/process.h"
#include "mobility/shape.h"
#include "net/network.h"
#include "rng/rng.h"
#include "sched/sstar.h"

namespace manetcap::linkcap {

/// A Monte-Carlo probability estimate with its binomial standard error.
struct Estimate {
  double value = 0.0;
  double stderr_ = 0.0;
  std::size_t trials = 0;
};

/// Estimates Pr{ d_ij ≤ rt } for two MSs whose home-points are `home_dist`
/// apart, both moving with stationary law φ ∝ s(f‖·‖).
Estimate estimate_meeting_probability(const mobility::Shape& shape, double f,
                                      double home_dist, double rt,
                                      std::size_t trials, rng::Xoshiro256& g);

/// Estimates Pr{ d ≤ rt } between a MS (home at distance `home_dist`) and a
/// static BS.
Estimate estimate_meeting_probability_bs(const mobility::Shape& shape,
                                         double f, double home_dist,
                                         double rt, std::size_t trials,
                                         rng::Xoshiro256& g);

/// Per-node fraction of slots in which the node is a member of an
/// S*-feasible pair, measured over `slots` steps of `process` with the BSs
/// (static) appended to the population. Result has process.size() +
/// bs.size() entries (Lemma 3 asserts a constant lower bound for each).
/// `model`, when non-null and non-protocol, re-evaluates each slot's S*
/// pair set under that interference backend first (docs/PHY.md) — Lemma 3
/// is a protocol-model statement, so the SINR measurement quantifies how
/// much of the busy probability the model swap erodes.
std::vector<double> measure_busy_probability(
    mobility::MobilityProcess& process,
    const std::vector<geom::Point>& bs_pos,
    const sched::SStarScheduler& sstar, std::size_t slots,
    const phy::InterferenceModel* model = nullptr);

/// Measures the S* link capacity μ(i, j) (fraction of slots the specific
/// pair is feasible) for selected pairs, over `slots` steps of `process`.
/// `pairs` index into the combined MS+BS population. `model` as above.
std::vector<double> measure_pair_capacity(
    mobility::MobilityProcess& process,
    const std::vector<geom::Point>& bs_pos,
    const sched::SStarScheduler& sstar,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    std::size_t slots, const phy::InterferenceModel* model = nullptr);

}  // namespace manetcap::linkcap
