// Link capacity (Definition 9) under policy S* — the paper's central
// analytical object.
//
// Lemma 2: μ(i,j) = Θ( Pr{ d_ij ≤ c_T/√n | home-points } ), so with
// stationary distributions φ ∝ s(f·‖·‖) (Corollary 1):
//
//   μ(X_i^h, X_j^h) = Θ( f²·η(f·d) / n ),  η(x) = ∫ s(‖X−x₀‖)s(‖X‖) dX
//   μ(X_i^h, Y_l^h) = Θ( f²·s(f·d) / n )
//
// LinkCapacityModel evaluates these with explicit geometric constants
// (meeting probability π·R_T²·⟨φ_i, φ_j⟩ times a constant isolation factor)
// so that Monte-Carlo measurements can be compared against it 1:1, not just
// in order of magnitude.
#pragma once

#include <cstddef>

#include "mobility/shape.h"

namespace manetcap::linkcap {

/// Analytic S* link capacities for one (shape, f, population) configuration.
class LinkCapacityModel {
 public:
  /// `population` is the number of nodes the S* range divides over
  /// (n MSs + k BSs); `ct`, `delta` are the S* constants. The default
  /// c_T = 0.3 keeps the expected guard-zone occupancy π(1+Δ)²c_T² near 1,
  /// so the isolation constant is Θ(1) rather than astronomically small —
  /// any constant works in order terms, this one also works numerically.
  LinkCapacityModel(const mobility::Shape& shape, double f,
                    std::size_t population, double ct = kDefaultCt,
                    double delta = kDefaultDelta);

  static constexpr double kDefaultCt = 0.3;
  static constexpr double kDefaultDelta = 1.0;

  /// Builds a model with an explicitly chosen transmission range instead
  /// of c_T/√population — the weak regime runs S* at the subnet-scaled
  /// R_T = Θ(r√(m/n)) (Table I), not the global Θ(1/√n).
  static LinkCapacityModel with_range(const mobility::Shape& shape, double f,
                                      double range,
                                      double delta = kDefaultDelta);

  /// R_T = c_T/√population.
  double range() const { return rt_; }

  /// Probability that two nodes with home-distance `d` are within R_T of
  /// each other in stationarity: π·R_T²·f²·η(f·d)/S₀² (Corollary 1's Θ
  /// argument with constants kept).
  double meeting_probability_ms_ms(double home_dist) const;

  /// Same for a MS against a static BS at distance `d`:
  /// π·R_T²·f²·s(f·d)/S₀.
  double meeting_probability_ms_bs(double home_dist) const;

  /// Constant probability that the guard zones of both endpoints are clear
  /// of all other nodes in a uniformly dense network (Poisson thinning with
  /// mean 2π(1+Δ)²c_T² interferer candidates).
  double isolation_factor() const;

  /// Full analytic link capacity μ = isolation · meeting probability.
  double mu_ms_ms(double home_dist) const {
    return isolation_factor() * meeting_probability_ms_ms(home_dist);
  }
  double mu_ms_bs(double home_dist) const {
    return isolation_factor() * meeting_probability_ms_bs(home_dist);
  }

  /// Home-distance beyond which μ is exactly zero: (2D + c_T/√pop·f)/f for
  /// MS–MS (both supports plus the range), (D + R_T·f)/f for MS–BS.
  double max_contact_dist_ms_ms() const;
  double max_contact_dist_ms_bs() const;

  const mobility::Shape& shape() const { return *shape_; }
  double f() const { return f_; }

 private:
  const mobility::Shape* shape_;
  double f_;
  double rt_;
  double ct_;
  double delta_;
};

}  // namespace manetcap::linkcap
