#include "linkcap/measure.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"

namespace manetcap::linkcap {

namespace {
Estimate finish(std::size_t hits, std::size_t trials) {
  Estimate e;
  e.trials = trials;
  e.value = static_cast<double>(hits) / static_cast<double>(trials);
  e.stderr_ = std::sqrt(e.value * (1.0 - e.value) /
                        static_cast<double>(trials));
  return e;
}

std::vector<geom::Point> combined_positions(
    const mobility::MobilityProcess& process,
    const std::vector<geom::Point>& bs_pos) {
  std::vector<geom::Point> pos = process.positions();
  pos.insert(pos.end(), bs_pos.begin(), bs_pos.end());
  return pos;
}
}  // namespace

Estimate estimate_meeting_probability(const mobility::Shape& shape, double f,
                                      double home_dist, double rt,
                                      std::size_t trials,
                                      rng::Xoshiro256& g) {
  MANETCAP_CHECK(trials > 0);
  const geom::Point hi{0.25, 0.25};
  const geom::Point hj = hi.displaced({home_dist, 0.0});
  const double inv_f = 1.0 / f;
  const double rt2 = rt * rt;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    geom::Point xi = hi.displaced(shape.sample_displacement(g) * inv_f);
    geom::Point xj = hj.displaced(shape.sample_displacement(g) * inv_f);
    if (geom::torus_dist2(xi, xj) <= rt2) ++hits;
  }
  return finish(hits, trials);
}

Estimate estimate_meeting_probability_bs(const mobility::Shape& shape,
                                         double f, double home_dist,
                                         double rt, std::size_t trials,
                                         rng::Xoshiro256& g) {
  MANETCAP_CHECK(trials > 0);
  const geom::Point h{0.25, 0.25};
  const geom::Point y = h.displaced({home_dist, 0.0});
  const double inv_f = 1.0 / f;
  const double rt2 = rt * rt;
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    geom::Point xi = h.displaced(shape.sample_displacement(g) * inv_f);
    if (geom::torus_dist2(xi, y) <= rt2) ++hits;
  }
  return finish(hits, trials);
}

std::vector<double> measure_busy_probability(
    mobility::MobilityProcess& process,
    const std::vector<geom::Point>& bs_pos,
    const sched::SStarScheduler& sstar, std::size_t slots,
    const phy::InterferenceModel* model) {
  MANETCAP_CHECK(slots > 0);
  const std::size_t pop = process.size() + bs_pos.size();
  std::vector<std::size_t> busy(pop, 0);
  for (std::size_t t = 0; t < slots; ++t) {
    auto pos = combined_positions(process, bs_pos);
    for (const auto& pair : sstar.feasible_pairs(pos, nullptr, model)) {
      ++busy[pair.tx];
      ++busy[pair.rx];
    }
    process.step();
  }
  std::vector<double> out(pop);
  for (std::size_t i = 0; i < pop; ++i)
    out[i] = static_cast<double>(busy[i]) / static_cast<double>(slots);
  return out;
}

std::vector<double> measure_pair_capacity(
    mobility::MobilityProcess& process,
    const std::vector<geom::Point>& bs_pos,
    const sched::SStarScheduler& sstar,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    std::size_t slots, const phy::InterferenceModel* model) {
  MANETCAP_CHECK(slots > 0);
  // Canonicalize (lo, hi) for lookup against the scheduler's i<j output.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> index;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    auto key = std::minmax(pairs[p].first, pairs[p].second);
    index[{key.first, key.second}] = p;
  }
  std::vector<std::size_t> hits(pairs.size(), 0);
  for (std::size_t t = 0; t < slots; ++t) {
    auto pos = combined_positions(process, bs_pos);
    for (const auto& tr : sstar.feasible_pairs(pos, nullptr, model)) {
      auto it = index.find({tr.tx, tr.rx});
      if (it != index.end()) ++hits[it->second];
    }
    process.step();
  }
  std::vector<double> out(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p)
    out[p] = static_cast<double>(hits[p]) / static_cast<double>(slots);
  return out;
}

}  // namespace manetcap::linkcap
