#include "linkcap/link_capacity.h"

#include <cmath>

#include "util/check.h"

namespace manetcap::linkcap {

LinkCapacityModel::LinkCapacityModel(const mobility::Shape& shape, double f,
                                     std::size_t population, double ct,
                                     double delta)
    : shape_(&shape),
      f_(f),
      rt_(ct / std::sqrt(static_cast<double>(population))),
      ct_(ct),
      delta_(delta) {
  MANETCAP_CHECK(f >= 1.0);
  MANETCAP_CHECK(population >= 1);
  MANETCAP_CHECK(ct > 0.0);
}

LinkCapacityModel LinkCapacityModel::with_range(const mobility::Shape& shape,
                                                double f, double range,
                                                double delta) {
  MANETCAP_CHECK(range > 0.0);
  LinkCapacityModel model(shape, f, 1, kDefaultCt, delta);
  model.rt_ = range;
  return model;
}

double LinkCapacityModel::meeting_probability_ms_ms(double home_dist) const {
  const double s0 = shape_->normalization();
  const double kernel = shape_->eta(f_ * home_dist);
  return M_PI * rt_ * rt_ * f_ * f_ * kernel / (s0 * s0);
}

double LinkCapacityModel::meeting_probability_ms_bs(double home_dist) const {
  const double s0 = shape_->normalization();
  return M_PI * rt_ * rt_ * f_ * f_ * shape_->density(f_ * home_dist) / s0;
}

double LinkCapacityModel::isolation_factor() const {
  // Expected interferers inside one guard disk in a uniformly dense
  // population: pop · π((1+Δ)R_T)² = π(1+Δ)²c_T². Two (overlapping) disks
  // are bounded by twice that; Poissonization gives the clearing constant.
  const double mean = 2.0 * M_PI * (1.0 + delta_) * (1.0 + delta_) *
                      ct_ * ct_;
  return std::exp(-mean);
}

double LinkCapacityModel::max_contact_dist_ms_ms() const {
  return (2.0 * shape_->support()) / f_ + rt_;
}

double LinkCapacityModel::max_contact_dist_ms_bs() const {
  return shape_->support() / f_ + rt_;
}

}  // namespace manetcap::linkcap
