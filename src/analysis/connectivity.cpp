#include "analysis/connectivity.h"

#include <cmath>
#include <vector>

#include "geom/spatial_hash.h"
#include "util/check.h"

namespace manetcap::analysis {

namespace {
/// Label components with a BFS over the disk graph; returns the count.
std::size_t bfs_components(const std::vector<geom::Point>& points,
                           double range) {
  const std::size_t n = points.size();
  if (n == 0) return 0;
  geom::SpatialHash hash(std::max(range, 1e-4), n);
  hash.build(points);

  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> stack;
  std::size_t components = 0;
  for (std::uint32_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    ++components;
    visited[seed] = true;
    stack.push_back(seed);
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      hash.visit_disk(points[u], range, [&](std::uint32_t v) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      });
    }
  }
  return components;
}
}  // namespace

bool is_connected(const std::vector<geom::Point>& points, double range) {
  MANETCAP_CHECK(range >= 0.0);
  return bfs_components(points, range) <= 1;
}

std::size_t count_components(const std::vector<geom::Point>& points,
                             double range) {
  MANETCAP_CHECK(range >= 0.0);
  return bfs_components(points, range);
}

double critical_range(const std::vector<geom::Point>& points,
                      double tolerance) {
  MANETCAP_CHECK_MSG(points.size() >= 2, "need at least two points");
  MANETCAP_CHECK(tolerance > 0.0);
  double lo = 0.0;
  double hi = std::sqrt(0.5);  // torus diameter: always connected
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (is_connected(points, mid))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

double gupta_kumar_range(std::size_t n) {
  MANETCAP_CHECK(n >= 2);
  const double nn = static_cast<double>(n);
  return std::sqrt(std::log(nn) / (M_PI * nn));
}

}  // namespace manetcap::analysis
