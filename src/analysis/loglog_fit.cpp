#include "analysis/loglog_fit.h"

#include <cmath>

#include "util/check.h"

namespace manetcap::analysis {

double PowerLawFit::predict(double x) const {
  return std::exp(log_prefactor + exponent * std::log(x));
}

PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y) {
  MANETCAP_CHECK_MSG(x.size() == y.size(), "x and y length mismatch");
  MANETCAP_CHECK_MSG(x.size() >= 3, "power-law fit needs >= 3 points");

  const std::size_t n = x.size();
  std::vector<double> lx(n), ly(n);
  for (std::size_t i = 0; i < n; ++i) {
    MANETCAP_CHECK_MSG(x[i] > 0.0 && y[i] > 0.0,
                       "power-law fit needs positive data, got (x="
                           << x[i] << ", y=" << y[i] << ")");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }

  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += lx[i];
    my += ly[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = lx[i] - mx;
    const double dy = ly[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MANETCAP_CHECK_MSG(sxx > 0.0, "all x values identical");

  PowerLawFit fit;
  fit.points = n;
  fit.exponent = sxy / sxx;
  fit.log_prefactor = my - fit.exponent * mx;

  // Residual variance → slope standard error; R² against total variance.
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = ly[i] - (fit.log_prefactor + fit.exponent * lx[i]);
    ss_res += e * e;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
  if (n > 2) {
    const double var =
        ss_res / (static_cast<double>(n) - 2.0) / sxx;
    fit.stderr_ = std::sqrt(var);
  }
  return fit;
}

}  // namespace manetcap::analysis
