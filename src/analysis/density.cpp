#include "analysis/density.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/spatial_hash.h"
#include "util/check.h"

namespace manetcap::analysis {

double DensityField::contrast() const {
  if (min <= 0.0) return std::numeric_limits<double>::infinity();
  return max / min;
}

DensityField compute_density_field(const std::vector<geom::Point>& ms_home,
                                   const std::vector<geom::Point>& bs_pos,
                                   const mobility::Shape& shape, double f,
                                   std::size_t grid, double probe_radius) {
  MANETCAP_CHECK(grid >= 2);
  MANETCAP_CHECK(f >= 1.0);
  const std::size_t population = ms_home.size() + bs_pos.size();
  MANETCAP_CHECK(population >= 1);
  if (probe_radius <= 0.0)
    probe_radius = 1.0 / std::sqrt(static_cast<double>(population));

  const double s0 = shape.normalization();
  const double disk = M_PI * probe_radius * probe_radius;
  // A MS with home farther than support/f + probe_radius contributes 0.
  const double reach = shape.support() / f + probe_radius;

  geom::SpatialHash ms_hash(std::max(reach, 1e-4), ms_home.size());
  ms_hash.build(ms_home);
  geom::SpatialHash bs_hash(std::max(probe_radius, 1e-4), bs_pos.size());
  if (!bs_pos.empty()) bs_hash.build(bs_pos);

  DensityField field;
  field.grid = grid;
  field.rho.assign(grid * grid, 0.0);
  field.min = std::numeric_limits<double>::infinity();
  field.max = 0.0;
  double sum = 0.0;

  for (std::size_t row = 0; row < grid; ++row) {
    for (std::size_t col = 0; col < grid; ++col) {
      const geom::Point probe{(static_cast<double>(col) + 0.5) / grid,
                              (static_cast<double>(row) + 0.5) / grid};
      double rho = 0.0;
      // Mobile stations: probability mass of φ_i on the probe disk,
      // φ_i(X) = f²·s(f·‖X − X_i^h‖)/S₀ evaluated at the probe center.
      ms_hash.visit_disk(probe, reach, [&](std::uint32_t i) {
        const double d = geom::torus_dist(probe, ms_home[i]);
        rho += disk * f * f * shape.density(f * d) / s0;
      });
      // Static base stations: plain membership.
      if (!bs_pos.empty())
        rho += static_cast<double>(bs_hash.count_in_disk(probe, probe_radius));

      field.rho[row * grid + col] = rho;
      field.min = std::min(field.min, rho);
      field.max = std::max(field.max, rho);
      sum += rho;
    }
  }
  field.mean = sum / static_cast<double>(grid * grid);
  return field;
}

bool is_uniformly_dense(const DensityField& field, double h, double H) {
  MANETCAP_CHECK(h > 0.0 && H > h);
  return field.min > h && field.max < H;
}

}  // namespace manetcap::analysis
