#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::analysis {

Summary summarize(const std::vector<double>& values) {
  MANETCAP_CHECK_MSG(!values.empty(), "summarize needs data");
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(s.count - 1));
  }
  return s;
}

double geometric_mean(const std::vector<double>& values) {
  MANETCAP_CHECK_MSG(!values.empty(), "geometric_mean needs data");
  double acc = 0.0;
  for (double v : values) {
    MANETCAP_CHECK_MSG(v > 0.0, "geometric_mean needs positive data");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

double quantile(std::vector<double> values, double p) {
  MANETCAP_CHECK_MSG(!values.empty(), "quantile needs data");
  MANETCAP_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace manetcap::analysis
