#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::analysis {

Summary summarize(const std::vector<double>& values) {
  MANETCAP_CHECK_MSG(!values.empty(), "summarize needs data");
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(s.count - 1));
  }
  return s;
}

double geometric_mean(const std::vector<double>& values) {
  MANETCAP_CHECK_MSG(!values.empty(), "geometric_mean needs data");
  double acc = 0.0;
  for (double v : values) {
    MANETCAP_CHECK_MSG(v > 0.0, "geometric_mean needs positive data");
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

double quantile(std::vector<double> values, double p) {
  MANETCAP_CHECK_MSG(!values.empty(), "quantile needs data");
  MANETCAP_CHECK(p >= 0.0 && p <= 1.0);
  // Selection instead of a full sort: the slot simulator calls this over
  // whole delay vectors, where O(n) nth_element beats O(n log n). After
  // placing the lo-th order statistic, the interpolation partner (the
  // hi-th) is the minimum of the upper partition — identical, ties
  // included, to what a full sort would put at hi.
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  const double vlo = *lo_it;
  if (frac <= 0.0 || lo + 1 >= values.size()) return vlo;
  const double vhi = *std::min_element(lo_it + 1, values.end());
  return vlo * (1.0 - frac) + vhi * frac;
}

}  // namespace manetcap::analysis
