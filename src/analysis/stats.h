// Small summary-statistics helpers for experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace manetcap::analysis {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Computes mean / sample-stddev / extrema; requires a non-empty input.
Summary summarize(const std::vector<double>& values);

/// Geometric mean (values must be strictly positive) — the right average
/// for quantities compared on log scales.
double geometric_mean(const std::vector<double>& values);

/// p-quantile (0 ≤ p ≤ 1) with linear interpolation on the sorted copy.
double quantile(std::vector<double> values, double p);

}  // namespace manetcap::analysis
