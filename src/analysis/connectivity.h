// Connectivity analysis of disk graphs on the torus.
//
// The regime conditions compare the mobility radius against *critical
// transmission ranges*: √(log n/(πn)) for n uniform points (Gupta–Kumar
// [18], used in Theorem 1's intuition) and the cluster-level analogue of
// Lemma 10. These helpers measure the actual critical range of a point
// set, so experiments can verify the theoretical thresholds instead of
// assuming them.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace manetcap::analysis {

/// True iff the disk graph with edge rule torus_dist ≤ range is connected.
/// O(n · expected neighbors) via a spatial-hash BFS.
bool is_connected(const std::vector<geom::Point>& points, double range);

/// Number of connected components of the disk graph.
std::size_t count_components(const std::vector<geom::Point>& points,
                             double range);

/// Smallest range (within `tolerance`) at which the disk graph is
/// connected — equals the longest edge of the Euclidean MST; found by
/// bisection on [0, √2/2]. Requires ≥ 2 points.
double critical_range(const std::vector<geom::Point>& points,
                      double tolerance = 1e-4);

/// The Gupta–Kumar theoretical critical range √(log n/(π n)) for n
/// uniform points on the unit torus.
double gupta_kumar_range(std::size_t n);

}  // namespace manetcap::analysis
