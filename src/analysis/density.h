// Local node density ρ(X) (Definition 7) and the uniformly-dense test
// (Definition 8 / Theorem 1) — the quantity behind Figure 1.
//
// ρ(X) = Σ_i Pr{ Z_i ∈ B(X, 1/√n) | home-points }: for a mobile node the
// probability mass its stationary law puts on the probe disk, for a static
// BS the plain indicator. A network is uniformly dense when ρ is bounded
// between positive constants h < H everywhere.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/stats.h"
#include "geom/point.h"
#include "mobility/shape.h"

namespace manetcap::analysis {

struct DensityField {
  std::size_t grid = 0;             // probe points per side
  std::vector<double> rho;          // row-major grid values
  double min = 0.0, max = 0.0, mean = 0.0;

  double at(std::size_t row, std::size_t col) const {
    return rho[row * grid + col];
  }

  /// Ratio max/min — the figure-of-merit for Figure 1 (≈ O(1) when
  /// uniformly dense, diverging with clustering otherwise). +inf when some
  /// probe sees zero density.
  double contrast() const;
};

/// Evaluates ρ(X) on a `grid`×`grid` probe lattice for MS home-points with
/// stationary shape `shape` scaled by 1/f, plus static BSs.
/// `probe_radius` defaults to 1/√(population) per Definition 7.
DensityField compute_density_field(
    const std::vector<geom::Point>& ms_home,
    const std::vector<geom::Point>& bs_pos, const mobility::Shape& shape,
    double f, std::size_t grid, double probe_radius = 0.0);

/// Definition 8 check: h < ρ(X) < H for every probe point.
bool is_uniformly_dense(const DensityField& field, double h, double H);

}  // namespace manetcap::analysis
