// Scaling-exponent estimation: least-squares slope of log y against log x.
//
// A law y = Θ(x^e · polylog) over a finite sweep shows up as a fitted slope
// close to e; the slope's standard error and R² tell us how clean the
// power-law is. This is the bridge between the paper's asymptotic Θ(·)
// statements and finite-n measurements.
#pragma once

#include <cstddef>
#include <vector>

namespace manetcap::analysis {

struct PowerLawFit {
  double exponent = 0.0;     // fitted slope in log-log space
  double log_prefactor = 0.0;  // intercept: y ≈ e^log_prefactor · x^exponent
  double stderr_ = 0.0;      // standard error of the slope
  double r_squared = 0.0;
  std::size_t points = 0;

  /// Predicted y at x under the fitted law.
  double predict(double x) const;
};

/// Fits log(y) = a + e·log(x); requires ≥ 3 points, all strictly positive.
/// Throws CheckError otherwise.
PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace manetcap::analysis
