#include "util/artifacts.h"

#include <filesystem>
#include <system_error>

namespace manetcap::util {

std::string artifact_path(const std::string& name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("bench_csv", ec);
  if (ec) return name + ".csv";
  return (fs::path("bench_csv") / (name + ".csv")).string();
}

}  // namespace manetcap::util
