// Output-artifact helpers for the benchmark harness: every bench prints a
// human-readable table AND drops a machine-readable CSV under
// ./bench_csv/ so figures can be replotted without re-running.
#pragma once

#include <string>

#include "util/csv.h"

namespace manetcap::util {

/// Ensures ./bench_csv exists and returns the path for `name`.csv.
/// Falls back to the current directory if the directory cannot be made.
std::string artifact_path(const std::string& name);

}  // namespace manetcap::util
