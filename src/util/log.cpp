#include "util/log.h"

#include <atomic>
#include <iostream>

namespace manetcap::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << "[" << tag(level) << "] " << msg << '\n';
}

}  // namespace manetcap::util
