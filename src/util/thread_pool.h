// Fixed-size worker pool for deterministic fan-out of independent tasks.
//
// Deliberately work-stealing-free: a single FIFO queue feeds the workers,
// so tasks *start* in submission order and the pool adds no scheduling
// randomness of its own. Determinism of results is the caller's contract:
// tasks write to disjoint, pre-allocated slots and every reduction happens
// serially in the caller, so numeric output is bit-identical for any pool
// size (including 1).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manetcap::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means default_num_threads().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue (waits for every submitted task) and joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks are dequeued FIFO, i.e. they begin executing
  /// in submission order (completion order is up to the scheduler).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the exception of the earliest-submitted failing task and
  /// clears the stored exception.
  void wait_idle();

  /// Runs fn(0), …, fn(count-1) across the pool and blocks until all
  /// complete. Every index runs even if an earlier one throws; afterwards
  /// the exception of the lowest failing index is rethrown, so error
  /// reporting does not depend on thread timing. A pool of size 1 executes
  /// the indices in order on a single worker.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Group-scoped fan-out: runs fn(0), …, fn(count-1) with at most `width`
  /// indices executing concurrently (0 = no extra cap beyond the pool),
  /// and blocks until exactly these indices finish — unlike wait_idle(),
  /// which waits for everything in the pool, so concurrent parallel_for
  /// groups (from different callers sharing one pool) cannot observe each
  /// other. The calling thread participates as one of the runners, so a
  /// shared pool of W workers sustains W+1-wide groups and a fan-out on a
  /// fully busy pool still makes progress on the caller. Error contract
  /// matches for_each_index: every index runs; the exception of the lowest
  /// failing index is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t width = 0);

  /// Process-wide persistent pool (default_num_threads() workers, created
  /// on first use). Callers that fan out repeatedly — run_sweep above all —
  /// share these workers instead of paying thread creation and teardown
  /// per call. Use parallel_for (never wait_idle) on the shared pool.
  static ThreadPool& shared();

  /// Worker count to use when the caller does not care: the MANETCAP_THREADS
  /// environment variable if set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (minimum 1).
  static std::size_t default_num_threads();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t sequence = 0;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_work_;   // queue became non-empty / shutdown
  std::condition_variable cv_idle_;   // all tasks finished
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;         // queued + currently executing
  std::uint64_t next_sequence_ = 0;
  std::uint64_t first_error_sequence_ = 0;
  std::exception_ptr first_error_;    // earliest-submitted failure
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace manetcap::util
