// Wall-clock stopwatch for harness progress reporting.
#pragma once

#include <chrono>

namespace manetcap::util {

/// Measures elapsed wall time since construction or the last reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace manetcap::util
