#include "util/thread_pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "util/check.h"

namespace manetcap::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MANETCAP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    MANETCAP_CHECK(!shutdown_);
    queue_.push_back({std::move(task), next_sequence_++});
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) submit([&fn, i] { fn(i); });
  wait_idle();
}

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("MANETCAP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && (!first_error_ || task.sequence < first_error_sequence_)) {
        first_error_ = err;
        first_error_sequence_ = task.sequence;
      }
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace manetcap::util
