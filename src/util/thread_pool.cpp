#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "util/check.h"

namespace manetcap::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_num_threads();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MANETCAP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    MANETCAP_CHECK(!shutdown_);
    queue_.push_back({std::move(task), next_sequence_++});
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) submit([&fn, i] { fn(i); });
  wait_idle();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t width) {
  if (count == 0) return;

  // Private completion state on the caller's stack: the group is done when
  // every runner (caller included) has drained the shared index counter.
  // The caller cannot return before `running` hits zero, so the runners'
  // reference to this frame never dangles.
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::size_t> next{0};
    std::size_t running = 0;
    std::exception_ptr first_error;
    std::size_t first_error_index = 0;
  } group;

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = group.next.fetch_add(1);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(group.mu);
        if (!group.first_error || i < group.first_error_index) {
          group.first_error = std::current_exception();
          group.first_error_index = i;
        }
      }
    }
  };

  std::size_t runners = workers_.size() + 1;  // pool + the calling thread
  if (width != 0) runners = std::min(runners, width);
  runners = std::min(runners, count);
  {
    std::lock_guard<std::mutex> lock(group.mu);
    group.running = runners;
  }
  for (std::size_t r = 1; r < runners; ++r)
    submit([&group, &drain] {
      drain();
      std::lock_guard<std::mutex> lock(group.mu);
      if (--group.running == 0) group.cv.notify_all();
    });
  drain();
  std::unique_lock<std::mutex> lock(group.mu);
  --group.running;
  group.cv.wait(lock, [&group] { return group.running == 0; });
  if (group.first_error) std::rethrow_exception(group.first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("MANETCAP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr err;
    try {
      task.fn();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && (!first_error_ || task.sequence < first_error_sequence_)) {
        first_error_ = err;
        first_error_sequence_ = task.sequence;
      }
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace manetcap::util
