// Shared tokenizer for the repo's ';'-separated spec grammars.
//
// FaultPlan timelines (docs/FAULTS.md) and TrafficSpec scenarios
// (docs/TRAFFIC.md) both parse small single-line spec strings of
// ';'-separated clauses with ':'-separated argument lists; fault/churn
// clauses additionally carry an '@slot' timestamp. The splitting, the
// whitespace handling and the strict numeric-field parsing live here so
// every grammar reports the same shape of error, prefixed by the grammar
// name ("FaultPlan: ...", "TrafficSpec: ...").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace manetcap::util::spec {

/// Splits on `sep`, emitting empty segments ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(const std::string& s, char sep);

/// Strips leading and trailing spaces/tabs.
std::string trim(const std::string& s);

/// Parses one full numeric field; the whole substring must be consumed —
/// "12x" silently parsing as 12 is how a typo'd spec corrupts a run.
/// Errors read "<who>: missing number in '<token>'" /
/// "<who>: bad number '<s>' in '<token>'".
std::uint64_t parse_u64(const char* who, const std::string& s,
                        const std::string& token);

/// Like parse_u64 but for finite doubles.
double parse_f64(const char* who, const std::string& s,
                 const std::string& token);

/// One 'KIND@SLOT:ARGS' clause of a timed-event grammar, split but not
/// yet interpreted. `slot` is the raw digit string (parse with
/// parse_u64); `args` is everything after the first ':' past the '@'.
struct EventClause {
  std::string kind;
  std::string slot;
  std::string args;
};

/// Splits one trimmed token of an '@slot' grammar. Throws
/// "<who>: expected KIND@SLOT:ARGS, got '<token>'" when either the '@'
/// or the ':' is missing.
EventClause split_event(const char* who, const std::string& token);

}  // namespace manetcap::util::spec
