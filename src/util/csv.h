// Minimal CSV emission for experiment outputs (one file per figure series).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace manetcap::util {

/// Writes rows of comma-separated values with RFC-4180-style quoting.
/// The writer owns the output stream; the file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must match the header's column count.
  void add_row(const std::vector<std::string>& row);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream out_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
};

/// Quotes a CSV field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace manetcap::util
