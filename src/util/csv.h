// Minimal CSV emission for experiment outputs (one file per figure series).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace manetcap::util {

/// Writes rows of comma-separated values with RFC-4180-style quoting.
/// The writer owns the output stream. Write failures (disk full,
/// revoked permissions, dead mount) are detected — every row is flushed
/// and checked, so a bad stream throws from add_row/close with the path
/// in the message instead of silently producing a truncated artifact.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened or written.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Best-effort close; never throws (use close() to observe errors).
  ~CsvWriter();

  /// Appends one data row; must match the header's column count.
  /// Throws std::runtime_error if the write does not reach the file.
  void add_row(const std::vector<std::string>& row);

  /// Flushes and closes the file, throwing on any pending write error.
  /// Idempotent; the destructor calls a non-throwing variant.
  void close();

  std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& row);
  void check_stream();

  std::ofstream out_;
  std::string path_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
};

/// Quotes a CSV field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace manetcap::util
