// Lightweight precondition / invariant checking.
//
// MANETCAP_CHECK is always on (cheap conditions guarding API misuse);
// MANETCAP_DCHECK compiles out in NDEBUG builds (hot-loop invariants).
// Violations throw manetcap::CheckError so tests can assert on them and
// callers can recover; terminating the process is never the library's call.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace manetcap {

/// Thrown when a MANETCAP_CHECK / MANETCAP_DCHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace manetcap

#define MANETCAP_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::manetcap::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define MANETCAP_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::manetcap::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                       os_.str());                        \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MANETCAP_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define MANETCAP_DCHECK(cond) MANETCAP_CHECK(cond)
#endif
