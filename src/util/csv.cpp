#include "util/csv.h"

#include <stdexcept>

#include "util/check.h"

namespace manetcap::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path), cols_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  MANETCAP_CHECK(cols_ > 0);
  write_row(header);
  check_stream();
}

CsvWriter::~CsvWriter() {
  // Best-effort only: a destructor must not throw. Callers that need the
  // error (every artifact writer should) call close() explicitly.
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  MANETCAP_CHECK_MSG(row.size() == cols_,
                     "CSV row has " << row.size() << " cells, expected "
                                    << cols_);
  MANETCAP_CHECK_MSG(out_.is_open(), "CsvWriter: add_row after close: "
                                         << path_);
  write_row(row);
  check_stream();
  ++rows_;
}

void CsvWriter::close() {
  if (!out_.is_open()) return;
  out_.flush();
  check_stream();
  out_.close();
  if (out_.fail())
    throw std::runtime_error("CsvWriter: close failed: " + path_);
}

/// Flush-and-check after every row: an ofstream buffers, so a failed
/// write (ENOSPC, EIO) would otherwise only surface — or worse, vanish —
/// at destruction, long after the caller reported success.
void CsvWriter::check_stream() {
  out_.flush();
  if (!out_)
    throw std::runtime_error("CsvWriter: write failed (disk full or file "
                             "unwritable): " +
                             path_);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace manetcap::util
