#include "util/csv.h"

#include <stdexcept>

#include "util/check.h"

namespace manetcap::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  MANETCAP_CHECK(cols_ > 0);
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  MANETCAP_CHECK_MSG(row.size() == cols_,
                     "CSV row has " << row.size() << " cells, expected "
                                    << cols_);
  write_row(row);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace manetcap::util
