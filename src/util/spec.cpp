#include "util/spec.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace manetcap::util::spec {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::uint64_t parse_u64(const char* who, const std::string& s,
                        const std::string& token) {
  MANETCAP_CHECK_MSG(!s.empty(),
                     who << ": missing number in '" << token << "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  MANETCAP_CHECK_MSG(end == s.c_str() + s.size() && s[0] != '-',
                     who << ": bad number '" << s << "' in '" << token
                         << "'");
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* who, const std::string& s,
                 const std::string& token) {
  MANETCAP_CHECK_MSG(!s.empty(),
                     who << ": missing number in '" << token << "'");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  MANETCAP_CHECK_MSG(end == s.c_str() + s.size() && std::isfinite(v),
                     who << ": bad number '" << s << "' in '" << token
                         << "'");
  return v;
}

EventClause split_event(const char* who, const std::string& token) {
  const std::size_t at = token.find('@');
  const std::size_t colon =
      token.find(':', at == std::string::npos ? 0 : at);
  MANETCAP_CHECK_MSG(at != std::string::npos && colon != std::string::npos,
                     who << ": expected KIND@SLOT:ARGS, got '" << token
                         << "'");
  EventClause c;
  c.kind = token.substr(0, at);
  c.slot = token.substr(at + 1, colon - at - 1);
  c.args = token.substr(colon + 1);
  return c;
}

}  // namespace manetcap::util::spec
