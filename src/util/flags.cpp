#include "util/flags.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace manetcap::util {

namespace {
bool is_known(const std::vector<std::string>& known, const std::string& name) {
  return std::find(known.begin(), known.end(), name) != known.end();
}
}  // namespace

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& known)
    : Flags(argc, argv, known, std::string()) {}

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& known,
             const std::string& context) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--flag value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(known, name)) {
      if (context.empty())
        throw std::runtime_error("unknown flag: --" + name);
      throw std::runtime_error("unknown flag --" + name + " for " + context);
    }
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

namespace {
[[noreturn]] void bad_value(const std::string& name,
                            const std::string& value) {
  throw std::runtime_error("bad value for --" + name + ": " + value);
}
}  // namespace

long Flags::get_int(const std::string& name, long def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) bad_value(name, it->second);
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(name, it->second);
  } catch (const std::out_of_range&) {
    bad_value(name, it->second);
  }
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    // stod happily parses "nan"/"inf", which then poison every downstream
    // comparison (a NaN range or threshold passes no check and fails no
    // check). No flag in this codebase means a non-finite value; reject.
    // get_int needs no equivalent: stol has no non-finite spellings and
    // out_of_range already covers overflow.
    if (pos != it->second.size() || !std::isfinite(v))
      bad_value(name, it->second);
    return v;
  } catch (const std::invalid_argument&) {
    bad_value(name, it->second);
  } catch (const std::out_of_range&) {
    bad_value(name, it->second);
  }
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace manetcap::util
