// Aligned plain-text table printer used by the benchmark harness to emit
// paper-style tables (Table I, per-figure series) to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace manetcap::util {

/// Builds a column-aligned text table incrementally and renders it.
///
/// Usage:
///   Table t({"n", "lambda", "slope"});
///   t.add_row({"1024", "0.031", "-0.52"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at the current position.
  void add_separator();

  /// Renders the table with single-space-padded, column-aligned cells.
  void print(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  // A row is either a cell vector or empty (encoding a separator).
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (benchmark output).
std::string fmt_double(double v, int digits = 4);

/// Formats a double in scientific notation with `digits` mantissa digits.
std::string fmt_sci(double v, int digits = 3);

/// Formats value/baseline with `digits` significant digits, or "n/a" when
/// the baseline is zero, negative or non-finite — degradation tables must
/// not divide by a dead baseline (a zero-λ baseline used to print inf/nan).
std::string fmt_ratio(double value, double baseline, int digits = 3);

}  // namespace manetcap::util
