// Tiny command-line flag parser for examples and benches.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms; any
// unknown flag is an error so typos surface immediately.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace manetcap::util {

/// Parses argv into a name→value map and exposes typed accessors with
/// defaults. Construction throws std::runtime_error on malformed input.
class Flags {
 public:
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known);

  /// Same, with an error context: an unknown flag is reported as
  /// "unknown flag --<name> for <context>", so a CLI with per-subcommand
  /// flag sets can tell the user which subcommand rejected the flag.
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known, const std::string& context);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& def) const;
  long get_int(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace manetcap::util
