#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace manetcap::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MANETCAP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MANETCAP_CHECK_MSG(row.size() == header_.size(),
                     "row has " << row.size() << " cells, header has "
                                << header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << s
         << ' ';
      if (c + 1 < width.size()) os << '|';
    }
    os << '\n';
  };

  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty())
      print_rule();
    else
      print_cells(row);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_sci(double v, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_ratio(double value, double baseline, int digits) {
  if (!std::isfinite(baseline) || baseline <= 0.0 || !std::isfinite(value))
    return "n/a";
  return fmt_double(value / baseline, digits);
}

}  // namespace manetcap::util
