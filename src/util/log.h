// Leveled stderr logging with a global threshold. Deliberately minimal:
// the library is single-process and logging is for harness progress only.
#pragma once

#include <sstream>
#include <string>

namespace manetcap::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` to stderr with a level tag if `level` passes the threshold.
void log(LogLevel level, const std::string& msg);

namespace detail {
/// Stream-style one-shot logger: `Logger(kInfo).stream() << ...;`
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  ~Logger() { log(level_, os_.str()); }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace manetcap::util

#define MANETCAP_LOG(level)                                        \
  ::manetcap::util::detail::Logger(::manetcap::util::LogLevel::level) \
      .stream()
