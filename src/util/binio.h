// Shared binary codec for the trace (MCTRACE1/2) and checkpoint (MCCKPT1)
// file formats: LEB128 varints, ZigZag, fixed-width u64/f64, id lists and
// an FNV-1a trailer. Extracted from sim/trace.cpp; the byte layouts it
// produces are frozen — golden traces are byte-compared every build, so
// any change here is a format break.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace manetcap::util::binio {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// ZigZag so signed deltas encode compactly even when negative — the
/// codec carries any delta; semantic constraints (e.g. slot monotonicity)
/// are the consumer's to judge.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked cursor over an encoded buffer. `label` prefixes every
/// error so a truncated trace and a truncated checkpoint stay
/// distinguishable; `end` is exclusive (a checksum trailer lives beyond it).
struct ByteReader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;
  std::size_t end = 0;
  const char* label = "binio";

  std::uint8_t u8() {
    MANETCAP_CHECK_MSG(pos < end, label << ": truncated buffer");
    return bytes[pos++];
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      MANETCAP_CHECK_MSG(pos < end, label << ": truncated varint");
      const std::uint8_t b = bytes[pos++];
      MANETCAP_CHECK_MSG(shift < 64, label << ": varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::uint32_t u32v() {
    const std::uint64_t v = varint();
    MANETCAP_CHECK_MSG(v <= 0xffffffffULL,
                       label << ": field exceeds 32 bits");
    return static_cast<std::uint32_t>(v);
  }

  std::uint64_t u64_fixed() {
    MANETCAP_CHECK_MSG(pos + 8 <= end, label << ": truncated u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }
};

inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline void put_u64_fixed(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint64_t get_u64_fixed(const std::vector<std::uint8_t>& bytes,
                                   std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
  return v;
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64_fixed(out, std::bit_cast<std::uint64_t>(v));
}

/// Reads a fixed-width f64 through the reader (with bounds check) and
/// advances it — unlike get_u64_fixed, which peeks at a raw offset.
inline double get_f64(ByteReader& r) {
  MANETCAP_CHECK_MSG(r.pos + 8 <= r.end, r.label << ": truncated f64");
  const double v = std::bit_cast<double>(get_u64_fixed(r.bytes, r.pos));
  r.pos += 8;
  return v;
}

inline void put_id_list(std::vector<std::uint8_t>& out,
                        const std::vector<std::uint32_t>& v) {
  put_varint(out, v.size());
  for (std::uint32_t x : v) put_varint(out, x);
}

inline std::vector<std::uint32_t> get_id_list(ByteReader& r) {
  const std::uint64_t count = r.varint();
  MANETCAP_CHECK_MSG(count <= (1ULL << 28), r.label << ": id list too large");
  std::vector<std::uint32_t> v(count);
  for (auto& x : v) x = r.u32v();
  return v;
}

inline void put_id_lists(std::vector<std::uint8_t>& out,
                         const std::vector<std::vector<std::uint32_t>>& vs) {
  put_varint(out, vs.size());
  for (const auto& v : vs) put_id_list(out, v);
}

inline std::vector<std::vector<std::uint32_t>> get_id_lists(ByteReader& r) {
  const std::uint64_t count = r.varint();
  MANETCAP_CHECK_MSG(count <= (1ULL << 28), r.label << ": id table too large");
  std::vector<std::vector<std::uint32_t>> vs(count);
  for (auto& v : vs) v = get_id_list(r);
  return vs;
}

}  // namespace manetcap::util::binio
