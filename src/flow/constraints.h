// Fluid capacity computation: a routing scheme reduces to a set of
// (capacity, unit-load) constraints, and the feasible per-node rate is the
// largest λ with λ·load ≤ capacity on every constraint.
//
// This is exactly the quantity the paper's proofs manipulate — cut-set
// numerators are capacities, cut-crossing flow counts are loads — so fluid
// λ measurements inherit the theory's structure one-for-one.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace manetcap::flow {

/// Which resource a constraint models; bottleneck attribution reports the
/// category of the binding constraint (Remark 10's mobility-dominant vs
/// infrastructure-dominant discussion, refined to the three phases).
enum class Resource {
  kWirelessRelay,  // MS↔MS multihop links (scheme A squarelet hops)
  kAccess,         // MS↔BS wireless up/downlink (scheme B phases I & III)
  kBackbone,       // BS↔BS wired edges (scheme B phase II)
};

std::string to_string(Resource r);

/// One fluid constraint: at per-node rate λ the resource carries λ·unit_load
/// and offers `capacity`.
struct Constraint {
  Resource resource = Resource::kWirelessRelay;
  double capacity = 0.0;   // bps available on this resource
  double unit_load = 0.0;  // bps demanded per unit of per-node rate λ
  std::string label;       // optional diagnostics ("squarelet (3,1)→(3,2)")
};

/// Result of maximizing λ over a constraint set.
struct ThroughputResult {
  /// Largest feasible per-node rate; 0 when some loaded constraint has zero
  /// capacity, +inf when nothing is loaded.
  double lambda = 0.0;
  Resource bottleneck = Resource::kWirelessRelay;
  std::string bottleneck_label;

  /// Per-resource λ bound (+inf if the resource is unconstrained).
  double lambda_wireless = std::numeric_limits<double>::infinity();
  double lambda_access = std::numeric_limits<double>::infinity();
  double lambda_backbone = std::numeric_limits<double>::infinity();
};

/// Accumulates constraints and maximizes λ.
class ConstraintSet {
 public:
  /// Adds a constraint; zero-load constraints are ignored (no demand).
  void add(Resource resource, double capacity, double unit_load,
           std::string label = {});

  std::size_t size() const { return constraints_.size(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  ThroughputResult solve() const;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace manetcap::flow
