#include "flow/constraints.h"

#include "util/check.h"

namespace manetcap::flow {

std::string to_string(Resource r) {
  switch (r) {
    case Resource::kWirelessRelay:
      return "wireless-relay";
    case Resource::kAccess:
      return "access";
    case Resource::kBackbone:
      return "backbone";
  }
  return "?";
}

void ConstraintSet::add(Resource resource, double capacity, double unit_load,
                        std::string label) {
  MANETCAP_CHECK(capacity >= 0.0);
  MANETCAP_CHECK(unit_load >= 0.0);
  if (unit_load == 0.0) return;
  constraints_.push_back(
      {resource, capacity, unit_load, std::move(label)});
}

ThroughputResult ConstraintSet::solve() const {
  ThroughputResult res;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : constraints_) {
    const double bound = c.capacity / c.unit_load;  // may be 0
    double* per_resource = nullptr;
    switch (c.resource) {
      case Resource::kWirelessRelay:
        per_resource = &res.lambda_wireless;
        break;
      case Resource::kAccess:
        per_resource = &res.lambda_access;
        break;
      case Resource::kBackbone:
        per_resource = &res.lambda_backbone;
        break;
    }
    if (bound < *per_resource) *per_resource = bound;
    if (bound < best) {
      best = bound;
      res.bottleneck = c.resource;
      res.bottleneck_label = c.label;
    }
  }
  res.lambda = best;
  return res;
}

}  // namespace manetcap::flow
