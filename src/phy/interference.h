// Pluggable interference backends for the S* schedule (docs/PHY.md).
//
// The paper proves Table I under the protocol model (Definition 4); its
// successors (arXiv:0811.0726, arXiv:1402.2042) work under the physical
// (SINR) model. This interface lets every consumer of S* output — the slot
// simulator, the Monte-Carlo link-capacity estimators, the sweep engines —
// re-evaluate the same schedule under either model:
//
//  * protocol    — Definition 4; a no-op filter, since S* output is
//                  protocol-feasible by construction. The default, and
//                  byte-identical to the pre-backend code (the filter is
//                  never even invoked on the default path).
//  * sinr        — power-law path loss P·d^{-α} over torus distance: a
//                  directed link succeeds iff
//                      P·d_ij^{-α} / (N0 + Σ_l P·d_lj^{-α}) ≥ β
//                  summed over the other simultaneously transmitting
//                  nodes l. A scheduled pair carries one packet per
//                  direction (Definition 10 splits the bandwidth), so the
//                  pair survives only when BOTH directions meet β.
//  * sinr-csma   — a synchronous clear-channel-assessment pass first (an
//                  lr-wpan-style CCA mode 1: a candidate transmitter that
//                  senses energy above a threshold backs off), then the
//                  SINR filter over the survivors.
//
// Interference accumulation is O(pairs) expected per slot: near field via
// bounded-radius SpatialHash::visit_disk sums, far field via a closed-form
// uniform-density correction term (error bound in docs/PHY.md). Filtering
// is serial and iteration order is fixed, so results are bit-identical for
// any --threads / --shards value.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/spatial_hash.h"
#include "phy/protocol_model.h"

namespace manetcap::phy {

enum class PhyKind { kProtocol, kSinr, kSinrCsma };

std::string to_string(PhyKind k);

/// Parses "protocol" | "sinr" | "sinr-csma"; throws std::runtime_error
/// otherwise.
PhyKind parse_phy(const std::string& s);

/// Parameters of the SINR (and CSMA) backends. Distances enter in units of
/// the current transmission range R_T, so the same parameter set is
/// meaningful at every population size: the noise floor is defined through
/// `snr_edge` (the interference-free SNR of a link at d = R_T) rather than
/// as an absolute power, N0 = P·R_T^{-α} / snr_edge.
struct SinrParams {
  double path_loss = 3.0;    // α; must be > 2 for the far field to converge
  double beta = 1.0;         // SINR success threshold β
  double snr_edge = 10.0;    // interference-free SNR at d = R_T (sets N0)
  double power = 1.0;        // common per-node transmit power P
  double field_radius = 6.0; // near-field radius, in units of R_T; beyond
                             // it interference is the far-field correction
  double cca = 4.0;          // sinr-csma: back off when sensed energy
                             // exceeds cca · N0
  /// Throws CheckError with a named message on any invalid field.
  void validate() const;
};

/// Per-filter-invocation statistics, folded into sched::ScheduleStats and
/// the simulator's Metrics audit.
struct PhyStats {
  std::uint64_t sinr_rejected = 0;    // pairs with a failing direction
  std::uint64_t csma_suppressed = 0;  // pairs backed off before SINR
};

/// A backend evaluates (and filters) one slot's scheduled pair set.
class InterferenceModel {
 public:
  /// Reusable scratch: transmitter snapshots, keep flags, and the per-slot
  /// spatial hash over the transmitter set. Keeps steady-state filter
  /// calls from reallocating the flat buffers (the hash itself is rebuilt
  /// per call — its geometry depends on the slot's transmitter count).
  struct Workspace {
    std::vector<geom::Point> tx_pos;
    std::vector<std::uint8_t> keep;
    std::vector<Transmission> kept;
    std::optional<geom::SpatialHash> hash;
  };

  virtual ~InterferenceModel() = default;

  virtual PhyKind kind() const = 0;

  /// Filters, in place and preserving order, an S*-scheduled pair set for
  /// one position snapshot. `rt` is the transmission range R_T for this
  /// population (callers pass SStarScheduler::range_for). Every pair's two
  /// directions are evaluated against the full scheduled transmitter set
  /// — a pair failing one direction still interferes in the other
  /// (schedules are committed before outcomes). Deterministic: identical
  /// inputs produce bit-identical outputs.
  virtual void filter_pairs(const std::vector<geom::Point>& pos, double rt,
                            std::vector<Transmission>& pairs, Workspace& ws,
                            PhyStats* stats = nullptr) const = 0;

  /// Exact-sum success of one directed link against an explicit set of
  /// other transmitting node ids — the reference filter_pairs is validated
  /// against in tests (no spatial hash, no far-field approximation).
  virtual bool link_succeeds(const std::vector<geom::Point>& pos, double rt,
                             Transmission link,
                             const std::vector<std::uint32_t>& other_tx)
      const = 0;
};

/// `delta` is the protocol guard factor Δ (used by the protocol backend's
/// link_succeeds; ignored by the SINR backends). `sinr` is validated here
/// when `kind` requires it.
std::unique_ptr<InterferenceModel> make_interference_model(
    PhyKind kind, double delta, const SinrParams& sinr = {});

}  // namespace manetcap::phy
