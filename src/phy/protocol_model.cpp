#include "phy/protocol_model.h"

#include <unordered_set>

#include "util/check.h"

namespace manetcap::phy {

ProtocolModel::ProtocolModel(double range, double delta)
    : range_(range), delta_(delta) {
  MANETCAP_CHECK_MSG(range > 0.0, "transmission range must be positive");
  MANETCAP_CHECK_MSG(delta >= 0.0, "guard factor must be non-negative");
}

bool ProtocolModel::in_range(geom::Point tx, geom::Point rx) const {
  // Strict, matching S* (Definition 10: d_ij < R_T). The non-strict form
  // used here previously accepted links at exactly R_T that the scheduler
  // would never produce, so validator and scheduler disagreed on the
  // boundary.
  return geom::torus_dist2(tx, rx) < range_ * range_;
}

bool ProtocolModel::guard_ok(geom::Point other_tx, geom::Point rx) const {
  // Strict for the same reason: S* counts a node at exactly (1+Δ)R_T as
  // inside the guard disk (visit_disk uses d ≤ r), i.e. it requires
  // d > (1+Δ)R_T of every other node.
  const double g = guard_radius();
  return geom::torus_dist2(other_tx, rx) > g * g;
}

bool ProtocolModel::feasible(const std::vector<geom::Point>& pos,
                             const std::vector<Transmission>& txs) const {
  std::unordered_set<std::uint32_t> busy;
  for (const auto& t : txs) {
    MANETCAP_CHECK(t.tx < pos.size() && t.rx < pos.size());
    if (t.tx == t.rx) return false;
    if (!busy.insert(t.tx).second) return false;  // half-duplex, one role
    if (!busy.insert(t.rx).second) return false;
    if (!in_range(pos[t.tx], pos[t.rx])) return false;
  }
  for (const auto& a : txs) {
    for (const auto& b : txs) {
      if (a.tx == b.tx) continue;
      if (!guard_ok(pos[b.tx], pos[a.rx])) return false;
    }
  }
  return true;
}

}  // namespace manetcap::phy
