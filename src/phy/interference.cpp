#include "phy/interference.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace manetcap::phy {

std::string to_string(PhyKind k) {
  switch (k) {
    case PhyKind::kProtocol:
      return "protocol";
    case PhyKind::kSinr:
      return "sinr";
    case PhyKind::kSinrCsma:
      return "sinr-csma";
  }
  return "?";
}

PhyKind parse_phy(const std::string& s) {
  if (s == "protocol") return PhyKind::kProtocol;
  if (s == "sinr") return PhyKind::kSinr;
  if (s == "sinr-csma") return PhyKind::kSinrCsma;
  throw std::runtime_error("unknown phy: " + s +
                           " (expected protocol|sinr|sinr-csma)");
}

void SinrParams::validate() const {
  MANETCAP_CHECK_MSG(std::isfinite(path_loss) && path_loss > 2.0,
                     "SinrParams: path_loss must be finite and > 2 (the "
                     "far-field interference sum diverges at alpha <= 2), "
                     "got " << path_loss);
  MANETCAP_CHECK_MSG(std::isfinite(beta) && beta > 0.0,
                     "SinrParams: beta must be finite and > 0, got " << beta);
  MANETCAP_CHECK_MSG(std::isfinite(snr_edge) && snr_edge > 0.0,
                     "SinrParams: snr_edge must be finite and > 0, got "
                         << snr_edge);
  MANETCAP_CHECK_MSG(std::isfinite(power) && power > 0.0,
                     "SinrParams: power must be finite and > 0, got "
                         << power);
  MANETCAP_CHECK_MSG(std::isfinite(field_radius) && field_radius >= 1.0,
                     "SinrParams: field_radius must be finite and >= 1 (the "
                     "near field must cover at least the link range), got "
                         << field_radius);
  MANETCAP_CHECK_MSG(std::isfinite(cca) && cca > 0.0,
                     "SinrParams: cca must be finite and > 0, got " << cca);
}

namespace {

constexpr std::uint32_t kNoEntry = 0xffffffffu;

class ProtocolInterference final : public InterferenceModel {
 public:
  explicit ProtocolInterference(double delta) : delta_(delta) {}

  PhyKind kind() const override { return PhyKind::kProtocol; }

  void filter_pairs(const std::vector<geom::Point>&, double,
                    std::vector<Transmission>&, Workspace&,
                    PhyStats*) const override {
    // S* output is protocol-feasible by construction (Definition 10 is
    // strictly stricter than Definition 4); nothing to cut.
  }

  bool link_succeeds(const std::vector<geom::Point>& pos, double rt,
                     Transmission link,
                     const std::vector<std::uint32_t>& other_tx)
      const override {
    ProtocolModel model(rt, delta_);
    if (!model.in_range(pos[link.tx], pos[link.rx])) return false;
    for (std::uint32_t id : other_tx) {
      if (id == link.tx) continue;
      if (!model.guard_ok(pos[id], pos[link.rx])) return false;
    }
    return true;
  }

 private:
  double delta_;
};

class SinrInterference : public InterferenceModel {
 public:
  explicit SinrInterference(const SinrParams& p) : p_(p) { p_.validate(); }

  PhyKind kind() const override { return PhyKind::kSinr; }

  void filter_pairs(const std::vector<geom::Point>& pos, double rt,
                    std::vector<Transmission>& pairs, Workspace& ws,
                    PhyStats* stats) const override {
    if (pairs.empty()) return;
    ws.keep.assign(pairs.size(), 1);
    filter_directions(pos, rt, pairs, ws);
    compact(pairs, ws, stats == nullptr ? nullptr : &stats->sinr_rejected);
  }

  bool link_succeeds(const std::vector<geom::Point>& pos, double rt,
                     Transmission link,
                     const std::vector<std::uint32_t>& other_tx)
      const override {
    double itf = 0.0;
    for (std::uint32_t id : other_tx) {
      if (id == link.tx) continue;
      itf += power_at(pos[id], pos[link.rx]);
    }
    const double sig = power_at(pos[link.tx], pos[link.rx]);
    return sig >= p_.beta * (noise_floor(rt) + itf);
  }

 protected:
  /// N0 = P·R_T^{-α} / snr_edge: the floor that makes an
  /// interference-free link at exactly R_T come in at SNR = snr_edge.
  double noise_floor(double rt) const {
    return p_.power * std::pow(rt, -p_.path_loss) / p_.snr_edge;
  }

  /// Received power P·d^{-α} over torus distance; +inf for co-located
  /// endpoints (a zero-distance link always succeeds, a zero-distance
  /// interferer always kills).
  double power_at(geom::Point tx, geom::Point rx) const {
    const double d2 = geom::torus_dist2(tx, rx);
    if (d2 <= 0.0) return std::numeric_limits<double>::infinity();
    return p_.power * std::pow(d2, -0.5 * p_.path_loss);
  }

  /// Mean far-field contribution of ONE transmitter known to lie beyond
  /// the near-field radius rf, under the uniform-density approximation
  /// (docs/PHY.md gives the error bound): far transmitters are treated as
  /// uniform over the torus area outside the disk, giving per node
  ///   2πP (rf^{2-α} − Rmax^{2-α}) / ((α−2)(1 − π rf²)),  Rmax = 1/√π.
  double far_field_unit(double rf) const {
    constexpr double kPi = 3.14159265358979323846;
    const double rmax = 1.0 / std::sqrt(kPi);
    if (rf >= rmax) return 0.0;  // near field already covers the torus area
    const double a = p_.path_loss;
    return 2.0 * kPi * p_.power *
           (std::pow(rf, 2.0 - a) - std::pow(rmax, 2.0 - a)) /
           ((a - 2.0) * (1.0 - kPi * rf * rf));
  }

  /// (Re)builds ws.hash over ws.tx_pos. The grid geometry is a pure
  /// function of (rf, transmitter count), so iteration order — and the FP
  /// summation order downstream — is deterministic for identical inputs.
  void build_tx_hash(Workspace& ws, double rf) const {
    ws.hash.emplace(rf, ws.tx_pos.size());
    ws.hash->build(ws.tx_pos);
  }

  /// Interference at `probe` from the hashed transmitter set: exact
  /// near-field sum within rf (skipping entries skip0/skip1 — the probe's
  /// own pair, always inside the disk) plus the far-field correction for
  /// every transmitter the disk visit did not see.
  double interference_at(const Workspace& ws, geom::Point probe, double rf,
                         double far_unit, std::uint32_t skip0,
                         std::uint32_t skip1) const {
    double near = 0.0;
    std::size_t seen = 0;
    ws.hash->visit_disk(probe, rf, [&](std::uint32_t id) {
      ++seen;
      if (id == skip0 || id == skip1) return;
      near += power_at(ws.tx_pos[id], probe);
    });
    const double far = static_cast<double>(ws.tx_pos.size() - seen);
    return near + far * far_unit;
  }

  /// Evaluates both sub-slot directions of every pair against β, clearing
  /// ws.keep bits. Direction 0 transmits pair.tx → pair.rx, direction 1
  /// the reverse; each direction's interferer set is the same-direction
  /// endpoint of ALL scheduled pairs (commitments precede outcomes).
  void filter_directions(const std::vector<geom::Point>& pos, double rt,
                         const std::vector<Transmission>& pairs,
                         Workspace& ws) const {
    const double rf = p_.field_radius * rt;
    const double far_unit = far_field_unit(rf);
    const double n0 = noise_floor(rt);
    const std::size_t m = pairs.size();
    for (int dir = 0; dir < 2; ++dir) {
      ws.tx_pos.resize(m);
      for (std::size_t p = 0; p < m; ++p)
        ws.tx_pos[p] = dir == 0 ? pos[pairs[p].tx] : pos[pairs[p].rx];
      build_tx_hash(ws, rf);
      for (std::size_t p = 0; p < m; ++p) {
        if (ws.keep[p] == 0) continue;  // already failed the other direction
        const geom::Point rxp =
            dir == 0 ? pos[pairs[p].rx] : pos[pairs[p].tx];
        const double sig = power_at(ws.tx_pos[p], rxp);
        const double itf = interference_at(
            ws, rxp, rf, far_unit, static_cast<std::uint32_t>(p), kNoEntry);
        if (!(sig >= p_.beta * (n0 + itf))) ws.keep[p] = 0;
      }
    }
  }

  /// Drops keep==0 pairs in place (order preserved), counting the cut.
  static void compact(std::vector<Transmission>& pairs, Workspace& ws,
                      std::uint64_t* cut) {
    ws.kept.clear();
    for (std::size_t p = 0; p < pairs.size(); ++p)
      if (ws.keep[p] != 0) ws.kept.push_back(pairs[p]);
    if (cut != nullptr) *cut += pairs.size() - ws.kept.size();
    pairs.swap(ws.kept);
  }

  SinrParams p_;
};

class CsmaSinrInterference final : public SinrInterference {
 public:
  explicit CsmaSinrInterference(const SinrParams& p) : SinrInterference(p) {}

  PhyKind kind() const override { return PhyKind::kSinrCsma; }

  void filter_pairs(const std::vector<geom::Point>& pos, double rt,
                    std::vector<Transmission>& pairs, Workspace& ws,
                    PhyStats* stats) const override {
    if (pairs.empty()) return;
    // Synchronous CCA (lr-wpan mode 1, energy above threshold): every
    // scheduled endpoint is a candidate transmitter; a pair backs off
    // when either endpoint senses energy above cca·N0 from the OTHER
    // candidates. One deterministic pass — all candidates sense the same
    // committed schedule, there is no random backoff stage.
    const double rf = p_.field_radius * rt;
    const double far_unit = far_field_unit(rf);
    const double cca_threshold = p_.cca * noise_floor(rt);
    const std::size_t m = pairs.size();
    ws.tx_pos.resize(2 * m);
    for (std::size_t p = 0; p < m; ++p) {
      ws.tx_pos[2 * p] = pos[pairs[p].tx];
      ws.tx_pos[2 * p + 1] = pos[pairs[p].rx];
    }
    build_tx_hash(ws, rf);
    ws.keep.assign(m, 1);
    for (std::size_t p = 0; p < m; ++p) {
      const auto self = static_cast<std::uint32_t>(2 * p);
      const double e0 = interference_at(ws, ws.tx_pos[self], rf, far_unit,
                                        self, self + 1);
      if (e0 > cca_threshold) {
        ws.keep[p] = 0;
        continue;
      }
      const double e1 = interference_at(ws, ws.tx_pos[self + 1], rf,
                                        far_unit, self, self + 1);
      if (e1 > cca_threshold) ws.keep[p] = 0;
    }
    compact(pairs, ws,
            stats == nullptr ? nullptr : &stats->csma_suppressed);
    // SINR success over the survivors (suppressed pairs transmit nothing,
    // so they are gone from the interferer set as well).
    SinrInterference::filter_pairs(pos, rt, pairs, ws, stats);
  }
};

}  // namespace

std::unique_ptr<InterferenceModel> make_interference_model(
    PhyKind kind, double delta, const SinrParams& sinr) {
  switch (kind) {
    case PhyKind::kProtocol:
      return std::make_unique<ProtocolInterference>(delta);
    case PhyKind::kSinr:
      return std::make_unique<SinrInterference>(sinr);
    case PhyKind::kSinrCsma:
      return std::make_unique<CsmaSinrInterference>(sinr);
  }
  MANETCAP_CHECK(false);
  return nullptr;
}

}  // namespace manetcap::phy
