// The protocol interference model (Definition 4, Gupta–Kumar).
//
// A transmission i→j with common range R_T succeeds iff
//   (1) ‖Z_i − Z_j‖ < R_T, and
//   (2) every other *simultaneously transmitting* node l satisfies
//       ‖Z_l − Z_j‖ > (1+Δ)·R_T.
// Both comparisons are strict, matching the S* scheduling policy
// (Definition 10) exactly — the scheduler's output is always feasible
// under this checker, including transmissions pinned to the boundary.
// The wireless channel carries W = 1 (normalized) when successful.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace manetcap::phy {

/// A directed wireless transmission between node ids (indices into the
/// caller's position vector).
struct Transmission {
  std::uint32_t tx = 0;
  std::uint32_t rx = 0;

  friend bool operator==(Transmission a, Transmission b) {
    return a.tx == b.tx && a.rx == b.rx;
  }
};

/// Stateless checker for the protocol model with parameters (R_T, Δ).
class ProtocolModel {
 public:
  ProtocolModel(double range, double delta);

  double range() const { return range_; }
  double delta() const { return delta_; }
  double guard_radius() const { return (1.0 + delta_) * range_; }

  /// Condition (1) for a single link.
  bool in_range(geom::Point tx, geom::Point rx) const;

  /// True iff an interferer at `other_tx` does NOT violate condition (2)
  /// for a receiver at `rx`.
  bool guard_ok(geom::Point other_tx, geom::Point rx) const;

  /// Full feasibility of a simultaneous transmission set: every link
  /// in range, no node transmits or receives twice, and every pair of
  /// links respects the guard zone. O(|txs|²); used for validation, not
  /// in the hot scheduling path.
  bool feasible(const std::vector<geom::Point>& pos,
                const std::vector<Transmission>& txs) const;

 private:
  double range_;
  double delta_;
};

}  // namespace manetcap::phy
