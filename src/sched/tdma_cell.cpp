#include "sched/tdma_cell.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace manetcap::sched {

TdmaSchedule::TdmaSchedule(std::vector<int> cell_color, int num_colors)
    : color_(std::move(cell_color)), num_colors_(num_colors) {
  MANETCAP_CHECK(num_colors >= 1);
  for (int c : color_)
    MANETCAP_CHECK_MSG(c >= 0 && c < num_colors,
                       "cell color " << c << " out of range");
}

bool TdmaSchedule::is_active(std::size_t cell, std::uint64_t slot) const {
  MANETCAP_DCHECK(cell < color_.size());
  return color_[cell] == active_color(slot);
}

int square_coloring_period(double cell_side, double range, double delta) {
  MANETCAP_CHECK(cell_side > 0.0 && range > 0.0 && delta >= 0.0);
  // Worst case: transmitter on one cell edge, victim receiver on the far
  // edge of the other cell; center separation (p−1)·side must exceed the
  // guard reach (1+Δ)·range plus one range for the in-cell geometry.
  const double need = (2.0 + delta) * range;
  const int p = static_cast<int>(std::ceil(need / cell_side)) + 1;
  return std::max(2, p);
}

std::vector<int> color_square_tessellation(const geom::SquareTessellation& t,
                                           int period) {
  MANETCAP_CHECK(period >= 1);
  std::vector<int> colors(t.num_cells());
  for (int idx = 0; idx < t.num_cells(); ++idx) {
    geom::Cell c = t.cell_at(idx);
    colors[idx] = (c.row % period) * period + (c.col % period);
  }
  return colors;
}

int hex_coloring_period(double side, double delta) {
  MANETCAP_CHECK(side > 0.0 && delta >= 0.0);
  // In-cell range is the cell diameter 2·side; neighbor hex centers are
  // √3·side apart, so p axial steps separate centers by ≥ p·√3·side·(√3/2).
  const double range = 2.0 * side;
  const double need = (2.0 + delta) * range;
  const double per_step = 1.5 * side;  // minimal axial-step separation
  const int p = static_cast<int>(std::ceil(need / per_step)) + 1;
  return std::max(2, p);
}

}  // namespace manetcap::sched
