// Cell-based TDMA activation.
//
// Used by optimal routing & scheduling scheme C (Definition 13): cells are
// arranged into non-interfering groups (a bounded-degree vertex coloring,
// Theorem 9) and the groups are activated round-robin, so each cell is
// active a constant fraction 1/num_colors of the time.
//
// The same machinery schedules squarelet activation in the slot-level
// simulator for scheme A.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/hex.h"
#include "geom/tessellation.h"

namespace manetcap::sched {

/// Round-robin activation over a cell coloring.
class TdmaSchedule {
 public:
  /// `cell_color[c]` ∈ [0, num_colors) for each cell index c.
  TdmaSchedule(std::vector<int> cell_color, int num_colors);

  int num_colors() const { return num_colors_; }
  std::size_t num_cells() const { return color_.size(); }

  int active_color(std::uint64_t slot) const {
    return static_cast<int>(slot % static_cast<std::uint64_t>(num_colors_));
  }
  bool is_active(std::size_t cell, std::uint64_t slot) const;

  /// Fraction of time every cell is active (uniform by construction).
  double duty_cycle() const { return 1.0 / num_colors_; }

  int color_of(std::size_t cell) const { return color_[cell]; }

 private:
  std::vector<int> color_;
  int num_colors_;
};

/// Smallest coloring period p for a square tessellation such that two
/// same-color cells are far enough apart that a transmission of range
/// `range` in one cannot violate the (1+Δ) guard zone of the other:
/// separation (p−1)·side ≥ (2+Δ)·range.
int square_coloring_period(double cell_side, double range, double delta);

/// Colors a g×g square tessellation with period p → p² colors
/// (color = (row mod p)·p + col mod p); returns per-cell-index colors.
std::vector<int> color_square_tessellation(const geom::SquareTessellation& t,
                                           int period);

/// Same separation computation for a hex grid with side `side` where
/// transmissions use range equal to the cell diameter (MSs talk to the
/// cell-center BS, Definition 13).
int hex_coloring_period(double side, double delta);

}  // namespace manetcap::sched
