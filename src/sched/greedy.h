// Greedy maximal-link-set scheduler — a protocol-model baseline.
//
// Not part of the paper's constructions; used to sanity-check S* (Theorem 2
// says S* is order-optimal, so a generic greedy scheduler must not beat it
// by more than a constant factor) and as the scheduler for the static
// multihop baseline where S*'s "lone neighbor" condition is too strict.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/spatial_hash.h"
#include "phy/protocol_model.h"

namespace manetcap::sched {

/// Greedily packs protocol-model-feasible links, shortest first.
class GreedyScheduler {
 public:
  GreedyScheduler(double range, double delta);

  double range() const { return range_; }

  /// Selects a maximal set from `candidates` (directed links) such that the
  /// whole set is simultaneously protocol-model feasible; candidates are
  /// taken shortest-first. Nodes participate in at most one link.
  std::vector<phy::Transmission> schedule(
      const std::vector<geom::Point>& pos,
      std::vector<phy::Transmission> candidates) const;

  /// Convenience candidate generator: each node paired with its nearest
  /// neighbor (deduplicated).
  std::vector<phy::Transmission> nearest_neighbor_candidates(
      const std::vector<geom::Point>& pos) const;

 private:
  double range_;
  double delta_;
};

}  // namespace manetcap::sched
