#include "sched/greedy.h"

#include <algorithm>

#include "util/check.h"

namespace manetcap::sched {

GreedyScheduler::GreedyScheduler(double range, double delta)
    : range_(range), delta_(delta) {
  MANETCAP_CHECK(range > 0.0);
  MANETCAP_CHECK(delta >= 0.0);
}

std::vector<phy::Transmission> GreedyScheduler::schedule(
    const std::vector<geom::Point>& pos,
    std::vector<phy::Transmission> candidates) const {
  const double r2 = range_ * range_;
  const double guard = (1.0 + delta_) * range_;
  const double guard2 = guard * guard;

  // Shortest links first: more links fit, mirroring the nearest-neighbor
  // forwarding the capacity constructions use.
  std::sort(candidates.begin(), candidates.end(),
            [&pos](const phy::Transmission& a, const phy::Transmission& b) {
              return geom::torus_dist2(pos[a.tx], pos[a.rx]) <
                     geom::torus_dist2(pos[b.tx], pos[b.rx]);
            });

  std::vector<bool> busy(pos.size(), false);
  std::vector<phy::Transmission> chosen;
  std::vector<geom::Point> chosen_tx;  // transmitter positions (guard checks)
  std::vector<geom::Point> chosen_rx;

  for (const auto& cand : candidates) {
    if (cand.tx == cand.rx) continue;
    if (busy[cand.tx] || busy[cand.rx]) continue;
    if (geom::torus_dist2(pos[cand.tx], pos[cand.rx]) > r2) continue;

    bool ok = true;
    // New transmitter must not sit inside any chosen receiver's guard zone,
    // and chosen transmitters must not cover the new receiver.
    for (std::size_t s = 0; s < chosen.size() && ok; ++s) {
      if (geom::torus_dist2(pos[cand.tx], chosen_rx[s]) < guard2) ok = false;
      if (geom::torus_dist2(chosen_tx[s], pos[cand.rx]) < guard2) ok = false;
    }
    if (!ok) continue;

    busy[cand.tx] = busy[cand.rx] = true;
    chosen.push_back(cand);
    chosen_tx.push_back(pos[cand.tx]);
    chosen_rx.push_back(pos[cand.rx]);
  }
  return chosen;
}

std::vector<phy::Transmission> GreedyScheduler::nearest_neighbor_candidates(
    const std::vector<geom::Point>& pos) const {
  geom::SpatialHash hash(range_, pos.size());
  hash.build(pos);
  std::vector<phy::Transmission> cands;
  cands.reserve(pos.size());
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    std::uint32_t j = hash.nearest(pos[i], i);
    if (j == geom::SpatialHash::kNone) continue;
    // Deduplicate the symmetric pair: keep the orientation from the lower id.
    if (j > i || hash.nearest(pos[j], j) != i) cands.push_back({i, j});
  }
  return cands;
}

}  // namespace manetcap::sched
