// Scheduling policy S* (Definition 10) — optimal in order (Theorem 2).
//
// At a time instant, a node pair (i, j) may communicate iff
//   d_ij < R_T = c_T/√n   and
//   every other node l (regardless of activity) satisfies
//   min(d_lj, d_li) > (1+Δ)·R_T.
// Equivalently: the guard disk of radius (1+Δ)R_T around each endpoint
// contains only the other endpoint. The pair set selected this way is
// automatically protocol-model feasible (S* is strictly stricter), and the
// shared bandwidth is split equally between the two directions.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/spatial_hash.h"
#include "phy/interference.h"
#include "phy/protocol_model.h"

namespace manetcap::sched {

/// Per-invocation scheduling statistics, filled when a caller passes a
/// non-null pointer to feasible_pairs(). The slot simulator folds these
/// into its sim::Metrics audit (this POD keeps sched free of a dependency
/// on the sim layer); the increments are cheap enough to be always-on.
struct ScheduleStats {
  std::uint64_t candidate_pairs = 0;  // mutual-lone pairs before range check
  std::uint64_t feasible_pairs = 0;   // pairs actually scheduled (after the
                                      // PHY backend, when one is active)
  std::uint64_t range_rejected = 0;   // mutual-lone pairs with d_ij ≥ R_T
  // Filled only when a non-protocol phy::InterferenceModel is passed:
  std::uint64_t phy_sinr_rejected = 0;    // S* pairs with a failing direction
  std::uint64_t phy_csma_suppressed = 0;  // S* pairs backed off by CCA
};

/// Computes the S*-feasible pair set for a position snapshot.
class SStarScheduler {
 public:
  /// Per-slot scratch reused across feasible_pairs_into() calls: the
  /// lone-neighbor table and the output pair list keep their capacity, so
  /// a steady-state slot loop allocates nothing.
  struct Workspace {
    std::vector<std::uint32_t> lone;
    std::vector<phy::Transmission> pairs;
    phy::InterferenceModel::Workspace phy;  // scratch for the PHY backend
  };

  /// `ct` is the constant c_T of Definition 10; `delta` the guard factor Δ.
  SStarScheduler(double ct, double delta);

  double ct() const { return ct_; }
  double delta() const { return delta_; }

  /// R_T = c_T / √(population) for this snapshot size.
  double range_for(std::size_t population) const;

  /// All feasible unordered pairs {i, j} at this instant, reported with
  /// i < j. `pos` holds every node (MSs and BSs alike — Definition 10
  /// ranges over the whole population). `stats`, when non-null, receives
  /// the candidate/feasible/rejected pair counts for this snapshot.
  /// `model`, when non-null and non-protocol, re-evaluates the S* pair
  /// set under that interference backend (docs/PHY.md) — the surviving
  /// subset, in the same order, is returned. Null or the protocol backend
  /// takes exactly the historical code path.
  std::vector<phy::Transmission> feasible_pairs(
      const std::vector<geom::Point>& pos, ScheduleStats* stats = nullptr,
      const phy::InterferenceModel* model = nullptr) const;

  /// Same, but reuses an already-built spatial hash over `pos`.
  std::vector<phy::Transmission> feasible_pairs(
      const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
      ScheduleStats* stats = nullptr,
      const phy::InterferenceModel* model = nullptr) const;

  /// Hot-path form: reuses both an externally maintained spatial hash
  /// (which the slot simulator updates incrementally) and the caller's
  /// Workspace. Returns ws.pairs by reference; the pair set and order are
  /// identical to the allocating overloads. Zero allocations at steady
  /// state, and the inner guard-disk scan runs through the inlined
  /// SpatialHash::visit_disk rather than a std::function callback.
  const std::vector<phy::Transmission>& feasible_pairs_into(
      const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
      Workspace& ws, ScheduleStats* stats = nullptr,
      const phy::InterferenceModel* model = nullptr) const;

  /// Sharded form of feasible_pairs_into, split into phases so the slot
  /// simulator can fan the (dominant) lone-neighbor scan out over
  /// disjoint bucket-row stripes of the spatial hash:
  ///
  ///   begin_scan(pos.size(), ws);
  ///   lone_scan_rows(pos, hash, ws, rb, re);   // per stripe, in parallel
  ///   extract_pairs(pos, ws, stats);           // serial
  ///
  /// Each lone entry is a pure function of (pos, hash) and every indexed
  /// id lives in exactly one bucket row, so covering all rows — in any
  /// order, any partition — produces the identical lone table and
  /// therefore bit-identical pairs and stats to feasible_pairs_into.
  void begin_scan(std::size_t n, Workspace& ws) const;
  void lone_scan_rows(const std::vector<geom::Point>& pos,
                      const geom::SpatialHash& hash, Workspace& ws,
                      std::int64_t row_begin, std::int64_t row_end) const;
  /// The extraction (and the PHY backend filter, when `model` is a
  /// non-protocol backend) runs serially in id order, so the pair list is
  /// bit-identical for any row partition.
  const std::vector<phy::Transmission>& extract_pairs(
      const std::vector<geom::Point>& pos, Workspace& ws,
      ScheduleStats* stats = nullptr,
      const phy::InterferenceModel* model = nullptr) const;

 private:
  double ct_;
  double delta_;
};

}  // namespace manetcap::sched
