#include "sched/sstar.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace manetcap::sched {

SStarScheduler::SStarScheduler(double ct, double delta)
    : ct_(ct), delta_(delta) {
  MANETCAP_CHECK(ct > 0.0);
  MANETCAP_CHECK(delta >= 0.0);
}

double SStarScheduler::range_for(std::size_t population) const {
  MANETCAP_CHECK(population >= 1);
  return ct_ / std::sqrt(static_cast<double>(population));
}

std::vector<phy::Transmission> SStarScheduler::feasible_pairs(
    const std::vector<geom::Point>& pos, ScheduleStats* stats,
    const phy::InterferenceModel* model) const {
  const double guard = (1.0 + delta_) * range_for(pos.size());
  geom::SpatialHash hash(guard, pos.size());
  hash.build(pos);
  return feasible_pairs(pos, hash, stats, model);
}

std::vector<phy::Transmission> SStarScheduler::feasible_pairs(
    const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
    ScheduleStats* stats, const phy::InterferenceModel* model) const {
  Workspace ws;
  feasible_pairs_into(pos, hash, ws, stats, model);
  return std::move(ws.pairs);
}

namespace {
constexpr std::uint32_t kNoneId = ~std::uint32_t{0};
}  // namespace

const std::vector<phy::Transmission>& SStarScheduler::feasible_pairs_into(
    const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
    Workspace& ws, ScheduleStats* stats,
    const phy::InterferenceModel* model) const {
  const std::size_t n = pos.size();
  const double guard = (1.0 + delta_) * range_for(n);

  // lone[i] = j when the guard disk around i contains exactly the single
  // other node j; kNone when it contains zero or ≥2 others. (The value for
  // the ≥2 case is whatever candidate was seen last — the count filter
  // makes it irrelevant, so the scan never needs an early exit.)
  // This id-order loop is the serial hot path; lone_scan_rows produces the
  // identical table in bucket-row order for the sharded one.
  begin_scan(n, ws);
  std::uint32_t* lone = ws.lone.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t found = kNoneId;
    int count = 0;
    hash.visit_disk(pos[i], guard, [&](std::uint32_t id) {
      if (id == i) return;
      ++count;
      found = id;
    });
    if (count == 1) lone[i] = found;
  }

  return extract_pairs(pos, ws, stats, model);
}

void SStarScheduler::begin_scan(std::size_t n, Workspace& ws) const {
  ws.lone.assign(n, kNoneId);
}

void SStarScheduler::lone_scan_rows(const std::vector<geom::Point>& pos,
                                    const geom::SpatialHash& hash,
                                    Workspace& ws, std::int64_t row_begin,
                                    std::int64_t row_end) const {
  const double guard = (1.0 + delta_) * range_for(pos.size());
  std::uint32_t* lone = ws.lone.data();
  hash.visit_rows(row_begin, row_end, [&](std::uint32_t i) {
    std::uint32_t found = kNoneId;
    int count = 0;
    hash.visit_disk(pos[i], guard, [&](std::uint32_t id) {
      if (id == i) return;
      ++count;
      found = id;
    });
    if (count == 1) lone[i] = found;
  });
}

const std::vector<phy::Transmission>& SStarScheduler::extract_pairs(
    const std::vector<geom::Point>& pos, Workspace& ws, ScheduleStats* stats,
    const phy::InterferenceModel* model) const {
  const std::size_t n = pos.size();
  const double rt = range_for(n);
  const double rt2 = rt * rt;
  const std::uint32_t* lone = ws.lone.data();

  ws.pairs.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = lone[i];
    if (j == kNoneId || j <= i) continue;  // report each pair once (i < j)
    if (lone[j] != i) continue;            // guard must be mutual
    if (stats) ++stats->candidate_pairs;
    if (geom::torus_dist2(pos[i], pos[j]) >= rt2) {  // d_ij < R_T
      if (stats) ++stats->range_rejected;
      continue;
    }
    ws.pairs.push_back({i, j});
  }
  // Non-default PHY backends re-evaluate the S* set; the protocol backend
  // (and a null model) leaves it untouched — the branch below is the only
  // cost on the default path.
  if (model != nullptr && model->kind() != phy::PhyKind::kProtocol) {
    phy::PhyStats ps;
    model->filter_pairs(pos, rt, ws.pairs, ws.phy, &ps);
    if (stats) {
      stats->phy_sinr_rejected += ps.sinr_rejected;
      stats->phy_csma_suppressed += ps.csma_suppressed;
    }
  }
  if (stats) stats->feasible_pairs += ws.pairs.size();
  return ws.pairs;
}

}  // namespace manetcap::sched
