#include "sched/sstar.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace manetcap::sched {

SStarScheduler::SStarScheduler(double ct, double delta)
    : ct_(ct), delta_(delta) {
  MANETCAP_CHECK(ct > 0.0);
  MANETCAP_CHECK(delta >= 0.0);
}

double SStarScheduler::range_for(std::size_t population) const {
  MANETCAP_CHECK(population >= 1);
  return ct_ / std::sqrt(static_cast<double>(population));
}

std::vector<phy::Transmission> SStarScheduler::feasible_pairs(
    const std::vector<geom::Point>& pos, ScheduleStats* stats) const {
  const double guard = (1.0 + delta_) * range_for(pos.size());
  geom::SpatialHash hash(guard, pos.size());
  hash.build(pos);
  return feasible_pairs(pos, hash, stats);
}

std::vector<phy::Transmission> SStarScheduler::feasible_pairs(
    const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
    ScheduleStats* stats) const {
  Workspace ws;
  feasible_pairs_into(pos, hash, ws, stats);
  return std::move(ws.pairs);
}

const std::vector<phy::Transmission>& SStarScheduler::feasible_pairs_into(
    const std::vector<geom::Point>& pos, const geom::SpatialHash& hash,
    Workspace& ws, ScheduleStats* stats) const {
  const std::size_t n = pos.size();
  const double rt = range_for(n);
  const double rt2 = rt * rt;
  const double guard = (1.0 + delta_) * rt;

  // lone[i] = j when the guard disk around i contains exactly the single
  // other node j; kNone when it contains zero or ≥2 others. (The value for
  // the ≥2 case is whatever candidate was seen last — the count filter
  // makes it irrelevant, so the scan never needs an early exit.)
  constexpr std::uint32_t kNone = ~std::uint32_t{0};
  ws.lone.assign(n, kNone);
  std::uint32_t* lone = ws.lone.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t found = kNone;
    int count = 0;
    hash.visit_disk(pos[i], guard, [&](std::uint32_t id) {
      if (id == i) return;
      ++count;
      found = id;
    });
    if (count == 1) lone[i] = found;
  }

  ws.pairs.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = lone[i];
    if (j == kNone || j <= i) continue;   // report each pair once (i < j)
    if (lone[j] != i) continue;           // guard must be mutual
    if (stats) ++stats->candidate_pairs;
    if (geom::torus_dist2(pos[i], pos[j]) >= rt2) {  // d_ij < R_T
      if (stats) ++stats->range_rejected;
      continue;
    }
    ws.pairs.push_back({i, j});
  }
  if (stats) stats->feasible_pairs += ws.pairs.size();
  return ws.pairs;
}

}  // namespace manetcap::sched
