#include "sim/route_tables.h"

#include <algorithm>
#include <cmath>

#include "geom/spatial_hash.h"
#include "linkcap/link_capacity.h"
#include "util/check.h"

namespace manetcap::sim {

SchemeARouteTables build_scheme_a_tables(
    const net::Network& net, const std::vector<std::uint32_t>& dest) {
  SchemeARouteTables t;
  const std::size_t n = net.num_ms();
  const double side = 0.8 * net.mobility_radius();
  t.tess = geom::SquareTessellation::with_cell_side(std::min(side, 1.0));
  t.home_cell.resize(n);
  for (std::uint32_t i = 0; i < n; ++i)
    t.home_cell[i] = static_cast<std::uint32_t>(
        t.tess.index_of(t.tess.cell_of(net.ms_home()[i])));
  t.path_start.assign(n + 1, 0);
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto cells = t.tess.hv_path(
        t.tess.cell_at(static_cast<int>(t.home_cell[s])),
        t.tess.cell_at(static_cast<int>(t.home_cell[dest[s]])));
    t.path_start[s + 1] =
        t.path_start[s] + static_cast<std::uint32_t>(cells.size());
    for (const auto& c : cells)
      t.path_cells.push_back(static_cast<std::uint32_t>(t.tess.index_of(c)));
  }
  return t;
}

ServingTables build_scheme_b_serving(const net::Network& net, double ct,
                                     double delta) {
  const std::size_t n = net.num_ms();
  const std::size_t k = net.num_bs();
  MANETCAP_CHECK_MSG(k >= 1, "scheme B slot sim needs base stations");
  linkcap::LinkCapacityModel mu(net.shape(), net.params().f(), n + k, ct,
                                delta);
  ServingTables t;
  const double contact = mu.max_contact_dist_ms_bs();
  t.contact = contact;  // re-homing under faults reuses the same rule
  geom::SpatialHash bs_hash(std::max(contact, 1e-4), k);
  bs_hash.build(net.bs_pos());
  t.serving_start.assign(n + 1, 0);
  t.serving_is_fallback.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t before = t.serving_ids.size();
    bs_hash.visit_disk(
        net.ms_home()[i], contact,
        [&t](std::uint32_t l) { t.serving_ids.push_back(l); });
    if (t.serving_ids.size() == before) {
      // Sparse-BS fallback: an MS whose home point sees no BS within the
      // contact distance must still have a serving BS — packets addressed
      // to it would otherwise sit at hop 0 in BS queues forever
      // (wired_step has nowhere to forward them), permanently pinning
      // max_queue slots and throttling every other flow through that BS.
      const std::uint32_t l = bs_hash.nearest(net.ms_home()[i]);
      MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                         "scheme B: nearest-BS fallback found no BS");
      t.serving_ids.push_back(l);
      t.serving_is_fallback[i] = 1;
    }
    t.serving_start[i + 1] = static_cast<std::uint32_t>(t.serving_ids.size());
  }
  return t;
}

ServingTables build_scheme_c_association(const net::Network& net) {
  const std::size_t n = net.num_ms();
  const std::size_t k = net.num_bs();
  MANETCAP_CHECK_MSG(k >= 1, "scheme C slot sim needs base stations");
  geom::SpatialHash bs_hash(
      std::max(1.0 / std::sqrt(static_cast<double>(k)), 1e-4), k);
  bs_hash.build(net.bs_pos());
  ServingTables t;
  t.serving_start.assign(n + 1, 0);
  t.serving_ids.resize(n);
  t.serving_is_fallback.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t l = bs_hash.nearest(net.ms_home()[i]);
    MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                       "scheme C: BS association found no BS");
    t.serving_ids[i] = l;
    t.serving_start[i + 1] = i + 1;
  }
  return t;
}

CellTables build_cells_and_colors(
    const net::Network& net, const std::vector<std::uint32_t>& serving_start,
    const std::vector<std::uint32_t>& serving_ids, double delta,
    const std::vector<std::uint8_t>* bs_alive) {
  const std::size_t n = net.num_ms();
  const std::size_t k = net.num_bs();
  const auto is_live = [&](std::uint32_t l) {
    return bs_alive == nullptr || bs_alive->empty() || (*bs_alive)[l] != 0;
  };
  std::vector<double> cell_radius(k, 0.0);
  std::vector<std::uint32_t> member_count(k, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t l = serving_ids[serving_start[i]];
    ++member_count[l];
    cell_radius[l] = std::max(
        cell_radius[l],
        geom::torus_dist(net.ms_home()[i], net.bs_pos()[l]));
  }
  // Members per cell, CSR, in ascending MS order (the order the legacy
  // push_back construction produced).
  CellTables t;
  t.members_start.assign(k + 1, 0);
  for (std::uint32_t l = 0; l < k; ++l)
    t.members_start[l + 1] = t.members_start[l] + member_count[l];
  t.members_ids.resize(n);
  std::vector<std::uint32_t> cursor(t.members_start.begin(),
                                    t.members_start.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i)
    t.members_ids[cursor[serving_ids[serving_start[i]]]++] = i;

  const double wobble = 2.0 * net.mobility_radius();
  for (auto& r : cell_radius) r += wobble;

  // Greedy coloring of the cell interference graph (Theorem 9's
  // bounded-degree coloring), restricted to live cells.
  t.cell_color.assign(k, -1);
  t.num_colors = 1;
  for (std::uint32_t a = 0; a < k; ++a) {
    if (!is_live(a)) continue;
    std::vector<bool> used(t.num_colors + 1, false);
    for (std::uint32_t b = 0; b < a; ++b) {
      if (!is_live(b)) continue;
      const double d = geom::torus_dist(net.bs_pos()[a], net.bs_pos()[b]);
      if (d < cell_radius[a] + (1.0 + delta) * cell_radius[b] ||
          d < cell_radius[b] + (1.0 + delta) * cell_radius[a]) {
        if (t.cell_color[b] < static_cast<int>(used.size()))
          used[t.cell_color[b]] = true;
      }
    }
    int c = 0;
    while (c < static_cast<int>(used.size()) && used[c]) ++c;
    t.cell_color[a] = c;
    t.num_colors = std::max(t.num_colors, static_cast<std::size_t>(c) + 1);
  }
  return t;
}

}  // namespace manetcap::sim
