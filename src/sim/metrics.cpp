#include "sim/metrics.h"

#include <utility>

#include "util/artifacts.h"
#include "util/csv.h"

namespace manetcap::sim {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kInjected:
      return "injected";
    case Counter::kDelivered:
      return "delivered";
    case Counter::kRelayed:
      return "relayed";
    case Counter::kInjectRejectQueueFull:
      return "inject_reject_queue_full";
    case Counter::kInjectRejectWindowFull:
      return "inject_reject_window_full";
    case Counter::kRelayRejectQueueFull:
      return "relay_reject_queue_full";
    case Counter::kWiredForwarded:
      return "wired_forwarded";
    case Counter::kWiredCreditStall:
      return "wired_credit_stall";
    case Counter::kWiredRejectQueueFull:
      return "wired_reject_queue_full";
    case Counter::kUndeliverable:
      return "undeliverable";
    case Counter::kDropped:
      return "dropped";
    case Counter::kSchedCandidatePairs:
      return "sched_candidate_pairs";
    case Counter::kSchedFeasiblePairs:
      return "sched_feasible_pairs";
    case Counter::kSchedRangeRejected:
      return "sched_range_rejected";
    case Counter::kDownlinkStarved:
      return "downlink_starved";
    case Counter::kDroppedBsOutage:
      return "dropped_bs_outage";
    case Counter::kMsRehomed:
      return "ms_rehomed";
    case Counter::kHop1Demoted:
      return "hop1_demoted";
    case Counter::kUplinkBlockedBsDown:
      return "uplink_blocked_bs_down";
    case Counter::kPhySinrRejected:
      return "phy_sinr_rejected";
    case Counter::kPhyCsmaSuppressed:
      return "phy_csma_suppressed";
    case Counter::kInjectGatedTraffic:
      return "inject_gated_traffic";
    case Counter::kInjectBlockedChurn:
      return "inject_blocked_churn";
    case Counter::kDroppedMsChurn:
      return "dropped_ms_churn";
    case Counter::kMsLeft:
      return "ms_left";
    case Counter::kMsJoined:
      return "ms_joined";
    case Counter::kMobilityShifts:
      return "mobility_shifts";
  }
  return "?";
}

void Metrics::absorb(Metrics&& other) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    counters_[i] += other.counters_[i];
  if (series_.empty()) {
    series_ = std::move(other.series_);
  } else {
    series_.insert(series_.end(), other.series_.begin(), other.series_.end());
  }
  other.reset();
}

void Metrics::reset() {
  counters_.fill(0);
  series_.clear();
}

std::string Metrics::write_counters_csv(const std::string& name,
                                        const std::string& scheme) const {
  const std::string path = util::artifact_path(name + "_counters");
  util::CsvWriter csv(path, {"scheme", "counter", "value"});
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    csv.add_row({scheme, to_string(c), std::to_string(count(c))});
  }
  return path;
}

std::string Metrics::write_series_csv(const std::string& name) const {
  const std::string path = util::artifact_path(name + "_series");
  util::CsvWriter csv(path, {"slot", "queued", "scheduled_pairs",
                             "active_cells", "live_bs"});
  for (const SlotSample& s : series_) {
    csv.add_row({std::to_string(s.slot), std::to_string(s.queued),
                 std::to_string(s.scheduled_pairs),
                 std::to_string(s.active_cells),
                 std::to_string(s.live_bs)});
  }
  return path;
}

}  // namespace manetcap::sim
