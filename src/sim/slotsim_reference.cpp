// Frozen copy of the pre-overhaul simulator (see slotsim_reference.h).
// Deliberately byte-for-byte the legacy algorithm: deque queues, per-slot
// spatial-hash rebuild inside S*, std::map wired credit. Do not "improve"
// this file — its whole value is staying behaviorally identical to the
// simulator the golden traces were captured with.
#include "sim/slotsim_reference.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "analysis/stats.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "mobility/process.h"
#include "sched/sstar.h"
#include "sim/trace.h"
#include "util/check.h"

namespace manetcap::sim {

namespace {

/// A packet in flight: `flow` identifies the (source, destination) pair;
/// `hop` is the index into the flow's squarelet path (scheme A) or the
/// wired-phase marker (scheme B); `born` is the injection slot (delay).
struct Packet {
  std::uint32_t flow = 0;
  std::uint32_t hop = 0;
  std::uint32_t born = 0;
};

/// Frozen copy of the pre-overhaul spatial query + S* pair selection: CSR
/// grid rebuilt from scratch on every call, type-erased per-candidate
/// callback, and the old one-extra-ring covering span. The shared
/// geom::SpatialHash has since tightened all three; keeping the legacy
/// profile here is what makes bench/slotsim_hotpath's before/after an
/// honest measurement. The pair list and stats are identical to
/// SStarScheduler::feasible_pairs — only the constant factors differ.
class LegacyPairFinder {
 public:
  LegacyPairFinder(double ct, double delta) : ct_(ct), delta_(delta) {}

  std::vector<phy::Transmission> feasible_pairs(
      const std::vector<geom::Point>& pos,
      sched::ScheduleStats* stats) const {
    const std::size_t n = pos.size();
    const double rt = ct_ / std::sqrt(static_cast<double>(n));
    const double rt2 = rt * rt;
    const double guard = (1.0 + delta_) * rt;

    // Per-slot grid rebuild (the pre-overhaul cadence).
    int g = static_cast<int>(std::floor(1.0 / guard));
    g = std::max(1, std::min(g, 4096));
    const int cap =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) * 2;
    g = std::min(g, std::max(1, cap));
    const std::size_t nb = static_cast<std::size_t>(g) * g;
    auto coord = [g](double v) {
      return std::min(static_cast<int>(v * g), g - 1);
    };
    auto bidx = [g](int bx, int by) {
      auto m = [g](int v) {
        int w = v % g;
        return w < 0 ? w + g : w;
      };
      return m(by) * g + m(bx);
    };
    std::vector<std::uint32_t> start(nb + 1, 0), ids(n);
    for (const auto& p : pos) ++start[bidx(coord(p.x), coord(p.y)) + 1];
    for (std::size_t b = 0; b < nb; ++b) start[b + 1] += start[b];
    std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
    for (std::uint32_t id = 0; id < n; ++id)
      ids[cursor[bidx(coord(pos[id].x), coord(pos[id].y))]++] = id;

    const std::function<void(geom::Point, std::uint32_t, std::uint32_t&,
                             int&)>
        scan = [&](geom::Point center, std::uint32_t self,
                   std::uint32_t& found, int& count) {
          const double r2 = guard * guard;
          int span = static_cast<int>(std::ceil(guard * g)) + 1;
          span = std::min(span, g / 2 + 1);
          const int cx = coord(center.x), cy = coord(center.y);
          const int lo = -span,
                    hi = (2 * span + 1 >= g) ? g - 1 - span : span;
          for (int dy = lo; dy <= hi; ++dy) {
            for (int dx = lo; dx <= hi; ++dx) {
              const int b = bidx(cx + dx, cy + dy);
              for (std::uint32_t k = start[b]; k < start[b + 1]; ++k) {
                const std::uint32_t id = ids[k];
                if (torus_dist2(center, pos[id]) > r2 || id == self) continue;
                ++count;
                found = id;
              }
            }
          }
        };

    constexpr std::uint32_t kNone = ~std::uint32_t{0};
    std::vector<std::uint32_t> lone(n, kNone);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t found = kNone;
      int count = 0;
      scan(pos[i], i, found, count);
      if (count == 1) lone[i] = found;
    }

    std::vector<phy::Transmission> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t j = lone[i];
      if (j == kNone || j <= i) continue;
      if (lone[j] != i) continue;
      if (stats) ++stats->candidate_pairs;
      if (geom::torus_dist2(pos[i], pos[j]) >= rt2) {
        if (stats) ++stats->range_rejected;
        continue;
      }
      out.push_back({i, j});
    }
    if (stats) stats->feasible_pairs += out.size();
    return out;
  }

 private:
  double ct_;
  double delta_;
};

std::unique_ptr<mobility::MobilityProcess> make_process(
    const net::Network& net, SlotMobility kind, std::uint64_t seed) {
  const double radius = net.mobility_radius();
  switch (kind) {
    case SlotMobility::kIid:
      return std::make_unique<mobility::IidStationaryMobility>(
          net.ms_home(), net.shape(), 1.0 / net.params().f(), seed);
    case SlotMobility::kWalk:
      return std::make_unique<mobility::BoundedRandomWalk>(net.ms_home(),
                                                           radius, seed);
    case SlotMobility::kPullHome:
      return std::make_unique<mobility::PullHomeMobility>(net.ms_home(),
                                                          radius, seed);
    case SlotMobility::kBrownian:
      return std::make_unique<mobility::BrownianTorusMobility>(net.ms_home(),
                                                               seed);
  }
  MANETCAP_CHECK(false);
  return nullptr;
}

/// Shared simulation state and per-scheme forwarding logic.
class SlotSim {
 public:
  SlotSim(const net::Network& net, const std::vector<std::uint32_t>& dest,
          const SlotSimOptions& opt)
      : net_(net),
        dest_(dest),
        opt_(opt),
        n_(net.num_ms()),
        k_(net.num_bs()),
        queues_(n_ + k_),
        delivered_(n_, 0),
        count_own_(n_, 0) {
    MANETCAP_CHECK(dest.size() == n_);
    MANETCAP_CHECK(opt.warmup < opt.slots);
    // The audit always accumulates into the internal registry (the
    // conservation check needs the counters even without a caller sink);
    // the caller's Metrics absorbs it at end of run.
    if (opt_.metrics != nullptr && opt_.metrics->series_enabled())
      audit_.enable_series(opt_.slots);
    if (opt_.scheme == SlotScheme::kSchemeA) init_scheme_a();
    if (opt_.scheme == SlotScheme::kSchemeB) init_scheme_b();
    if (opt_.scheme == SlotScheme::kSchemeC) init_scheme_c();
    if (opt_.trace != nullptr) capture_context(*opt_.trace);
  }

  SlotSimResult run() {
    auto process = make_process(net_, opt_.mobility, opt_.seed);
    LegacyPairFinder sstar(opt_.ct, opt_.delta);
    std::uint64_t pair_count = 0;

    for (std::size_t t = 0; t < opt_.slots; ++t) {
      const bool measure = t >= opt_.warmup;
      if (measure && !measuring_) {
        measuring_ = true;
        std::fill(delivered_.begin(), delivered_.end(), 0);
      }

      slot_ = static_cast<std::uint32_t>(t);
      if (opt_.scheme == SlotScheme::kSchemeC) {
        // Static cellular TDMA (Definition 13): no S* — the active color
        // group serves; "pairs" counts active cells for reporting.
        const std::size_t served = scheme_c_slot(t);
        if (measure) pair_count += served;
        wired_step(t);
        process->step();
        audit_.sample_slot(slot_, in_network_, 0,
                           static_cast<std::uint32_t>(served));
        continue;
      }

      std::vector<geom::Point> pos = process->positions();
      pos.insert(pos.end(), net_.bs_pos().begin(), net_.bs_pos().end());
      sched::ScheduleStats sstats;
      const auto pairs = sstar.feasible_pairs(pos, &sstats);
      audit_.add(Counter::kSchedCandidatePairs, sstats.candidate_pairs);
      audit_.add(Counter::kSchedFeasiblePairs, sstats.feasible_pairs);
      audit_.add(Counter::kSchedRangeRejected, sstats.range_rejected);
      if (measure) pair_count += pairs.size();

      for (const auto& pr : pairs) {
        // Each S* meeting carries one packet per direction (the bandwidth
        // is split equally between the two directions, Definition 10).
        transfer(pr.tx, pr.rx);
        transfer(pr.rx, pr.tx);
      }
      if (opt_.scheme == SlotScheme::kSchemeB) wired_step(t);
      process->step();
      audit_.sample_slot(slot_, in_network_,
                         static_cast<std::uint32_t>(pairs.size()), 0);
    }

    SlotSimResult res;
    res.measured_slots = opt_.slots - opt_.warmup;
    std::vector<double> rates(n_);
    std::uint64_t total = 0;
    for (std::size_t f = 0; f < n_; ++f) {
      total += delivered_[f];
      rates[f] = static_cast<double>(delivered_[f]) /
                 static_cast<double>(res.measured_slots);
    }
    res.total_delivered = total;
    const auto summary = analysis::summarize(rates);
    res.mean_flow_rate = summary.mean;
    res.min_flow_rate = summary.min;
    res.p10_flow_rate = analysis::quantile(rates, 0.10);
    res.pairs_per_slot = static_cast<double>(pair_count) /
                         static_cast<double>(res.measured_slots);
    if (!delays_.empty()) {
      res.mean_delay = analysis::summarize(delays_).mean;
      res.p95_delay = analysis::quantile(delays_, 0.95);
    }

    std::uint64_t queued = 0;
    for (const auto& q : queues_) queued += q.size();
    res.injected = audit_.count(Counter::kInjected);
    res.delivered_lifetime = audit_.count(Counter::kDelivered);
    res.queued_end = queued;
    res.dropped = audit_.count(Counter::kDropped);
    if (opt_.check_conservation) {
      MANETCAP_CHECK_MSG(in_network_ == queued,
                         "packet accounting drift: in-network counter "
                         "disagrees with actual queue occupancy");
      MANETCAP_CHECK_MSG(
          res.injected == res.delivered_lifetime + queued + res.dropped,
          "packet conservation violated: injected != delivered + queued + "
          "dropped");
      std::uint64_t window = 0;
      for (std::size_t w : count_own_) window += w;
      MANETCAP_CHECK_MSG(window == res.injected - res.delivered_lifetime,
                         "flow-control window drift: sum of per-flow "
                         "windows != packets in flight");
    }
    if (opt_.metrics != nullptr) opt_.metrics->absorb(std::move(audit_));
    if (opt_.trace != nullptr) {
      opt_.trace->footer.injected = res.injected;
      opt_.trace->footer.delivered = res.delivered_lifetime;
      opt_.trace->footer.dropped = res.dropped;
    }
    return res;
  }

 private:
  /// Copies the run configuration and the routing structure the forwarding
  /// code will use into the trace, so verify_trace replays against exactly
  /// the tables this run consulted (no network rebuild, no FP involved).
  void capture_context(Trace& trace) const {
    TraceContext& ctx = trace.context;
    ctx.scheme = opt_.scheme;
    ctx.mobility = opt_.mobility;
    ctx.n = static_cast<std::uint32_t>(n_);
    ctx.k = static_cast<std::uint32_t>(k_);
    ctx.slots = static_cast<std::uint32_t>(opt_.slots);
    ctx.warmup = static_cast<std::uint32_t>(opt_.warmup);
    ctx.max_queue = static_cast<std::uint32_t>(opt_.max_queue);
    ctx.source_backlog = static_cast<std::uint32_t>(opt_.source_backlog);
    ctx.seed = opt_.seed;
    ctx.wired_c = k_ > 0 ? net_.params().c() : 0.0;
    ctx.dest = dest_;
    ctx.home_cell = home_cell_;
    ctx.paths = paths_;
    ctx.serving.assign(serving_.size(), {});
    for (std::size_t i = 0; i < serving_.size(); ++i) {
      ctx.serving[i].reserve(serving_[i].size());
      for (std::uint32_t l : serving_[i])
        ctx.serving[i].push_back(static_cast<std::uint32_t>(n_) + l);
    }
  }
  // --- scheme A ------------------------------------------------------------
  void init_scheme_a() {
    const double side = 0.8 * net_.mobility_radius();
    tess_ = std::make_unique<geom::SquareTessellation>(
        geom::SquareTessellation::with_cell_side(std::min(side, 1.0)));
    home_cell_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i)
      home_cell_[i] = tess_->index_of(tess_->cell_of(net_.ms_home()[i]));
    paths_.resize(n_);
    for (std::uint32_t s = 0; s < n_; ++s) {
      const auto cells = tess_->hv_path(tess_->cell_at(home_cell_[s]),
                                        tess_->cell_at(home_cell_[dest_[s]]));
      paths_[s].reserve(cells.size());
      for (const auto& c : cells)
        paths_[s].push_back(static_cast<std::uint32_t>(tess_->index_of(c)));
    }
  }

  // --- scheme B ------------------------------------------------------------
  void init_scheme_b() {
    MANETCAP_CHECK_MSG(k_ >= 1, "scheme B slot sim needs base stations");
    linkcap::LinkCapacityModel mu(net_.shape(), net_.params().f(), n_ + k_,
                                  opt_.ct, opt_.delta);
    const double contact = mu.max_contact_dist_ms_bs();
    geom::SpatialHash bs_hash(std::max(contact, 1e-4), k_);
    bs_hash.build(net_.bs_pos());
    serving_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      bs_hash.for_each_in_disk(
          net_.ms_home()[i], contact,
          [&](std::uint32_t l) { serving_[i].push_back(l); });
      if (serving_[i].empty()) {
        // Sparse-BS fallback: an MS whose home point sees no BS within the
        // contact distance must still have a serving BS — packets addressed
        // to it would otherwise sit at hop 0 in BS queues forever
        // (wired_step has nowhere to forward them), permanently pinning
        // max_queue slots and throttling every other flow through that BS.
        const std::uint32_t l = bs_hash.nearest(net_.ms_home()[i]);
        MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                           "scheme B: nearest-BS fallback found no BS");
        serving_[i].push_back(l);
      }
    }
  }

  // --- scheme C ------------------------------------------------------------
  void init_scheme_c() {
    MANETCAP_CHECK_MSG(k_ >= 1, "scheme C slot sim needs base stations");
    // Association: nearest BS (with cluster-grid placement this is the
    // hexagonal cell of Definition 13). serving_ holds one BS per MS so
    // the wired phase can reuse the scheme-B machinery.
    geom::SpatialHash bs_hash(
        std::max(1.0 / std::sqrt(static_cast<double>(k_)), 1e-4), k_);
    bs_hash.build(net_.bs_pos());
    serving_.assign(n_, {});
    std::vector<double> cell_radius(k_, 0.0);
    cell_members_.assign(k_, {});
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::uint32_t l = bs_hash.nearest(net_.ms_home()[i]);
      MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                         "scheme C: BS association found no BS");
      serving_[i].push_back(l);
      cell_members_[l].push_back(i);
      cell_radius[l] = std::max(
          cell_radius[l],
          geom::torus_dist(net_.ms_home()[i], net_.bs_pos()[l]));
    }
    const double wobble = 2.0 * net_.mobility_radius();
    for (auto& r : cell_radius) r += wobble;

    // Greedy coloring of the cell interference graph (Theorem 9's
    // bounded-degree coloring).
    cell_color_.assign(k_, 0);
    num_colors_ = 1;
    for (std::uint32_t a = 0; a < k_; ++a) {
      std::vector<bool> used(num_colors_ + 1, false);
      for (std::uint32_t b = 0; b < a; ++b) {
        const double d = geom::torus_dist(net_.bs_pos()[a], net_.bs_pos()[b]);
        if (d < cell_radius[a] + (1.0 + opt_.delta) * cell_radius[b] ||
            d < cell_radius[b] + (1.0 + opt_.delta) * cell_radius[a]) {
          if (cell_color_[b] < static_cast<int>(used.size()))
            used[cell_color_[b]] = true;
        }
      }
      int c = 0;
      while (c < static_cast<int>(used.size()) && used[c]) ++c;
      cell_color_[a] = c;
      num_colors_ = std::max(num_colors_, static_cast<std::size_t>(c) + 1);
    }
    rr_cell_.assign(k_, 0);
  }

  /// One TDMA slot of scheme C: every cell of the active color serves one
  /// uplink and one downlink on its two symmetric channels. Returns the
  /// number of active cells (the concurrency statistic).
  std::size_t scheme_c_slot(std::size_t t) {
    const int active = static_cast<int>(t % num_colors_);
    std::size_t served = 0;
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (cell_color_[l] != active || cell_members_[l].empty()) continue;
      ++served;
      auto& q = queues_[n_ + l];
      // Uplink channel: the round-robin member injects one packet.
      const auto& members = cell_members_[l];
      const std::uint32_t i = members[rr_cell_[l]++ % members.size()];
      try_inject(i, static_cast<std::uint32_t>(n_ + l));
      // Downlink channel: deliver one wired-arrived packet whose
      // destination lives in this cell. The scan must cover the whole
      // queue, not a bounded prefix: hop-0 packets stalled on wired
      // credit keep their positions at the head, so a kScanDepth-limited
      // scan permanently starves every deliverable hop-1 packet queued
      // behind ≥ kScanDepth of them.
      bool delivered_one = false;
      for (std::size_t idx = 0; idx < q.size(); ++idx) {
        if (q[idx].hop != 1) continue;
        const std::uint32_t d = dest_[q[idx].flow];
        if (serving_[d].front() == l) {
          const Packet p = q[idx];
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
          deliver(p, static_cast<std::uint32_t>(n_ + l));
          delivered_one = true;
          break;
        }
      }
      if (!delivered_one && !q.empty())
        audit_.inc(Counter::kDownlinkStarved);
    }
    return served;
  }

  bool is_bs(std::uint32_t id) const { return id >= n_; }

  /// Moves at most one packet from `from` to `to` for the active scheme.
  void transfer(std::uint32_t from, std::uint32_t to) {
    switch (opt_.scheme) {
      case SlotScheme::kSchemeA:
        transfer_scheme_a(from, to);
        break;
      case SlotScheme::kTwoHop:
        transfer_two_hop(from, to);
        break;
      case SlotScheme::kSchemeB:
        transfer_scheme_b(from, to);
        break;
      case SlotScheme::kSchemeC:
        break;  // scheme C never uses S* pairs (static TDMA)
    }
  }

  void deliver(const Packet& p, std::uint32_t holder) {
    ++delivered_[p.flow];
    --count_own_[p.flow];  // release the flow-control window slot
    --in_network_;
    audit_.inc(Counter::kDelivered);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kDeliver, slot_, p.flow, p.hop,
                         holder, dest_[p.flow]);
    if (measuring_ && p.born >= opt_.warmup)
      delays_.push_back(static_cast<double>(slot_ - p.born));
  }

  /// Source injection under the flow-control window: pushes one packet of
  /// `flow`'s own traffic into node `node`'s queue, counting every
  /// rejection — a full queue used to no-op silently, making the offered
  /// load unknowable.
  void try_inject(std::uint32_t flow, std::uint32_t node) {
    auto& q = queues_[node];
    if (count_own_[flow] >= opt_.source_backlog) {
      audit_.inc(Counter::kInjectRejectWindowFull);
      return;
    }
    if (q.size() >= opt_.max_queue) {
      audit_.inc(Counter::kInjectRejectQueueFull);
      return;
    }
    q.push_back({flow, 0, slot_});
    ++count_own_[flow];
    ++in_network_;
    audit_.inc(Counter::kInjected);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kInject, slot_, flow, 0, flow, node);
  }

  // Scheme A: a relay in squarelet path[h] hands the packet to a node whose
  // home squarelet is path[h+1], or directly to the destination.
  void transfer_scheme_a(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;  // pure ad hoc scheme
    auto& q = queues_[from];

    // Source injection: keep the head of the pipeline saturated.
    try_inject(from, from);

    const std::size_t scan = std::min<std::size_t>(q.size(), kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      Packet p = q[idx];
      const auto& path = paths_[p.flow];
      const bool at_last_cell = p.hop + 1 >= path.size();
      if (to == dest_[p.flow]) {
        // The destination itself can take delivery from any path position
        // at or next to its own squarelet; with H-V routing the packet is
        // only ever co-located with the destination at the final cells, so
        // accept delivery whenever they meet.
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
        deliver(p, from);
        return;
      }
      // At the last path cell only the destination itself can take the
      // packet (handled above). `to` cannot be a BS here — the early
      // return already excluded BS endpoints.
      if (at_last_cell) continue;
      if (home_cell_[to] == path[p.hop + 1]) {
        if (queues_[to].size() < opt_.max_queue) {
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
          queues_[to].push_back({p.flow, p.hop + 1, p.born});
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, p.flow,
                               p.hop + 1, from, to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Two-hop: source → any relay → destination.
  void transfer_two_hop(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;
    auto& q = queues_[from];
    try_inject(from, from);
    const std::size_t scan = std::min<std::size_t>(q.size(), kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      Packet p = q[idx];
      if (to == dest_[p.flow]) {
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
        deliver(p, from);
        return;
      }
      // Only the source hands off to a relay (exactly two hops). The relay
      // hand-off advances hop to 1, so "a third hop would be needed" is
      // visible in the packet state (and in the trace).
      if (p.flow == from) {
        if (queues_[to].size() < opt_.max_queue) {
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
          queues_[to].push_back({p.flow, 1, p.born});
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, p.flow, 1,
                               from, to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Scheme B: MS→BS uplink; BS queues drain over the wired backbone in
  // wired_step(); BS→MS downlink on meeting the destination.
  void transfer_scheme_b(std::uint32_t from, std::uint32_t to) {
    if (!is_bs(from) && is_bs(to)) {
      // Uplink: inject one packet of `from`'s own flow (within the
      // flow-control window).
      try_inject(from, to);
      return;
    }
    if (is_bs(from) && !is_bs(to)) {
      // Downlink: deliver a packet destined to `to`, if this BS holds one.
      auto& q = queues_[from];
      const std::size_t scan = std::min<std::size_t>(q.size(), kScanDepth);
      for (std::size_t idx = 0; idx < scan; ++idx) {
        if (dest_[q[idx].flow] == to && q[idx].hop == 1) {
          const Packet p = q[idx];
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
          deliver(p, from);
          return;
        }
      }
    }
  }

  // Wired phase: every edge accrues c(n) units of credit per slot (lazily,
  // from the slot of its last use); a BS forwards each uplink packet
  // (hop 0) to a BS serving the destination once the edge holds a full
  // unit of credit.
  void wired_step(std::size_t slot) {
    const double c = net_.params().c();
    for (std::uint32_t l = 0; l < k_; ++l) {
      auto& q = queues_[n_ + l];
      // Single compaction pass: read cursor `r` visits every packet in the
      // original order (so the rr_ round-robin and credit decisions are
      // made in exactly the sequence the old erase-in-place loop made
      // them), write cursor `w` keeps the survivors. This turns a queue
      // drain from O(|q|²) deque memmoves into O(|q|).
      std::size_t w = 0;
      for (std::size_t r = 0; r < q.size(); ++r) {
        const auto keep = [&] {
          if (w != r) q[w] = q[r];
          ++w;
        };
        if (q[r].hop != 0) {
          keep();
          continue;
        }
        const std::uint32_t d = dest_[q[r].flow];
        if (serving_[d].empty()) {
          // Unreachable since init_scheme_b/_c guarantee a serving BS per
          // MS; counted defensively so a future association change that
          // reintroduces orphans fails the audit instead of stalling.
          audit_.inc(Counter::kUndeliverable);
          keep();
          continue;
        }
        // Round-robin over the destination's serving BSs.
        const std::uint32_t target =
            serving_[d][rr_++ % serving_[d].size()];
        if (target == l) {
          q[r].hop = 1;  // already at a serving BS
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), q[r].flow,
                               1, static_cast<std::uint32_t>(n_ + l),
                               static_cast<std::uint32_t>(n_ + l));
          keep();
          continue;
        }
        auto key = std::minmax(l, target);
        auto [wit, first_use] =
            wire_credit_.try_emplace({key.first, key.second});
        WireState& wire = wit->second;
        // A fresh edge starts accruing at its first-use slot — crediting
        // retroactively from slot 0 would let low-c(n) edges burst a full
        // bucket at first touch and inflate early infra throughput.
        if (first_use) wire.last_topup = slot;
        if (wire.last_topup < slot + 1) {
          wire.credit += c * static_cast<double>(slot + 1 - wire.last_topup);
          // Token bucket with depth scaled to the wire rate (4 slots of
          // credit, but never below one packet so low-c edges still
          // transmit): an idle edge cannot burst arbitrarily later.
          wire.credit = std::min(wire.credit, std::max(1.0, 4.0 * c));
          wire.last_topup = slot + 1;
        }
        if (wire.credit < 1.0) {
          audit_.inc(Counter::kWiredCreditStall);
          keep();
        } else if (queues_[n_ + target].size() >= opt_.max_queue) {
          audit_.inc(Counter::kWiredRejectQueueFull);
          keep();
        } else {
          wire.credit -= 1.0;
          Packet p = q[r];
          p.hop = 1;
          queues_[n_ + target].push_back(p);
          audit_.inc(Counter::kWiredForwarded);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), p.flow, 1,
                               static_cast<std::uint32_t>(n_ + l),
                               static_cast<std::uint32_t>(n_ + target));
        }
      }
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(w), q.end());
    }
  }

  static constexpr std::size_t kScanDepth = 16;

  const net::Network& net_;
  const std::vector<std::uint32_t>& dest_;
  SlotSimOptions opt_;
  std::size_t n_;
  std::size_t k_;

  std::vector<std::deque<Packet>> queues_;
  std::vector<std::uint64_t> delivered_;
  std::vector<std::size_t> count_own_;
  std::vector<double> delays_;  // per delivered packet, measurement window
  std::uint32_t slot_ = 0;      // current slot (delay bookkeeping)
  bool measuring_ = false;

  // Audit state: the metrics registry (absorbed into opt_.metrics at end
  // of run) and a running count of packets resident in any queue — kept
  // incrementally so per-slot sampling is O(1), then cross-checked against
  // the actual queue occupancy by the conservation invariant.
  Metrics audit_;
  std::uint64_t in_network_ = 0;

  // Scheme A state.
  std::unique_ptr<geom::SquareTessellation> tess_;
  std::vector<std::uint32_t> home_cell_;
  std::vector<std::vector<std::uint32_t>> paths_;

  // Scheme B state.
  struct WireState {
    double credit = 0.0;
    std::size_t last_topup = 0;
  };
  std::vector<std::vector<std::uint32_t>> serving_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, WireState> wire_credit_;
  std::size_t rr_ = 0;

  // Scheme C state.
  std::vector<std::vector<std::uint32_t>> cell_members_;
  std::vector<int> cell_color_;
  std::size_t num_colors_ = 1;
  std::vector<std::size_t> rr_cell_;
};

}  // namespace

SlotSimResult run_slot_sim_reference(const net::Network& net,
                                     const std::vector<std::uint32_t>& dest,
                                     const SlotSimOptions& options) {
  // The frozen simulator predates fault injection; it exists to certify
  // the fault-free hot path, so a non-empty plan is a usage error rather
  // than something to backport.
  MANETCAP_CHECK_MSG(options.faults == nullptr || options.faults->empty(),
                     "run_slot_sim_reference does not support fault plans");
  SlotSim sim(net, dest, options);
  return sim.run();
}

}  // namespace manetcap::sim
