#include "sim/fluid.h"

#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "util/check.h"

namespace manetcap::sim {

namespace {

/// (strict, symmetric) λ pair of a scheme evaluation.
struct Lambda {
  double strict = 0.0;
  double symmetric = 0.0;
};

/// Scheme A with automatic two-hop fallback when the grid degenerates.
Lambda adhoc_lambda(const net::Network& net,
                    const std::vector<std::uint32_t>& dest,
                    std::string* label) {
  routing::SchemeA a;
  const auto ra = a.evaluate(net, dest);
  if (!ra.degenerate) {
    if (label) *label = "scheme-A";
    return {ra.throughput.lambda, ra.lambda_symmetric};
  }
  routing::TwoHopRelay th;
  const auto rt = th.evaluate(net, dest);
  if (label) *label = "two-hop";
  return {rt.throughput.lambda, rt.lambda_symmetric};
}

}  // namespace

FluidOutcome evaluate_capacity(const net::ScalingParams& params,
                               const FluidOptions& options) {
  net::Network net = net::Network::build(params, options.shape,
                                         options.placement, options.seed);
  return evaluate_capacity(net, options);
}

FluidOutcome evaluate_capacity(const net::Network& net,
                               const FluidOptions& options) {
  const net::ScalingParams& params = net.params();
  rng::Xoshiro256 g(options.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto dest = net::permutation_traffic(params.n, g);

  FluidOutcome out;
  out.regime = capacity::classify(params);

  auto set_adhoc = [&out](Lambda l, flow::Resource bottleneck,
                          std::string scheme) {
    out.lambda = out.lambda_adhoc = l.strict;
    out.lambda_symmetric = l.symmetric;
    out.bottleneck = bottleneck;
    out.scheme = std::move(scheme);
  };
  auto set_infra = [&out](Lambda l, flow::Resource bottleneck,
                          std::string scheme) {
    out.lambda = out.lambda_infra = l.strict;
    out.lambda_symmetric = l.symmetric;
    out.bottleneck = bottleneck;
    out.scheme = std::move(scheme);
  };

  using Force = FluidOptions::ForceScheme;
  if (options.force != Force::kAuto) {
    switch (options.force) {
      case Force::kA: {
        routing::SchemeA a;
        const auto r = a.evaluate(net, dest);
        // A degenerate grid (side < kMinGrid) means scheme A cannot run at
        // this size at all. Forcing it used to return the evaluator's
        // defaults as if they were a real λ — surface the degeneracy
        // instead: λ = 0 and a labeled outcome the caller can test for.
        set_adhoc({r.degenerate ? 0.0 : r.throughput.lambda,
                   r.degenerate ? 0.0 : r.lambda_symmetric},
                  r.throughput.bottleneck,
                  r.degenerate ? "scheme-A (forced, degenerate)"
                               : "scheme-A (forced)");
        return out;
      }
      case Force::kB: {
        routing::SchemeB b(out.regime == capacity::MobilityRegime::kWeak
                               ? routing::BsGrouping::kCluster
                               : routing::BsGrouping::kSquarelet);
        const auto r = b.evaluate(net, dest);
        set_infra({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "scheme-B (forced)");
        return out;
      }
      case Force::kC: {
        routing::SchemeC c;
        const auto r = c.evaluate(net, dest);
        set_infra({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "scheme-C (forced)");
        return out;
      }
      case Force::kTwoHop: {
        routing::TwoHopRelay th;
        const auto r = th.evaluate(net, dest);
        set_adhoc({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "two-hop (forced)");
        return out;
      }
      case Force::kStaticMultihop: {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "static-multihop (forced)");
        return out;
      }
      case Force::kAuto:
        break;
    }
  }

  switch (out.regime) {
    case capacity::MobilityRegime::kStrong: {
      std::string adhoc_label;
      const Lambda la = adhoc_lambda(net, dest, &adhoc_label);
      out.lambda_adhoc = la.strict;
      if (params.with_bs) {
        routing::SchemeB b(routing::BsGrouping::kSquarelet);
        const auto rb = b.evaluate(net, dest);
        out.lambda_infra = rb.throughput.lambda;
        out.scheme = adhoc_label + " + scheme-B";
        out.bottleneck = la.strict >= rb.throughput.lambda
                             ? flow::Resource::kWirelessRelay
                             : rb.throughput.bottleneck;
        out.lambda = la.strict + rb.throughput.lambda;
        out.lambda_symmetric = la.symmetric + rb.lambda_symmetric;
      } else {
        out.scheme = adhoc_label;
        out.bottleneck = flow::Resource::kWirelessRelay;
        out.lambda = la.strict;
        out.lambda_symmetric = la.symmetric;
      }
      break;
    }
    case capacity::MobilityRegime::kWeak: {
      if (params.with_bs) {
        routing::SchemeB b(routing::BsGrouping::kCluster);
        const auto rb = b.evaluate(net, dest);
        set_infra({rb.throughput.lambda, rb.lambda_symmetric},
                  rb.throughput.bottleneck, "scheme-B (clusters as subnets)");
      } else {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "static-multihop (no BSs)");
      }
      break;
    }
    case capacity::MobilityRegime::kTrivial: {
      if (params.with_bs) {
        routing::SchemeC c;
        const auto rc = c.evaluate(net, dest);
        set_infra({rc.throughput.lambda, rc.lambda_symmetric},
                  rc.throughput.bottleneck, "scheme-C (cellular TDMA)");
      } else {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc({r.throughput.lambda, r.lambda_symmetric},
                  r.throughput.bottleneck, "static-multihop (no BSs)");
      }
      break;
    }
  }
  return out;
}

}  // namespace manetcap::sim
