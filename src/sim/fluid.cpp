#include "sim/fluid.h"

#include "net/traffic.h"
#include "routing/scheme_a.h"
#include "routing/scheme_b.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "sim/sweep.h"
#include "util/check.h"

namespace manetcap::sim {

namespace {

/// (strict, symmetric) λ of a scheme evaluation plus the constraint that
/// bound it — bottlenecks ride along with the rates they explain instead
/// of being re-guessed by the caller.
struct Lambda {
  double strict = 0.0;
  double symmetric = 0.0;
  flow::Resource bottleneck = flow::Resource::kWirelessRelay;
  std::string label;
};

Lambda from(const flow::ThroughputResult& tp, double symmetric) {
  return {tp.lambda, symmetric, tp.bottleneck, tp.bottleneck_label};
}

/// Scheme A with automatic two-hop fallback when the grid degenerates.
Lambda adhoc_lambda(const net::Network& net,
                    const std::vector<std::uint32_t>& dest,
                    std::string* scheme_label) {
  routing::SchemeA a;
  const auto ra = a.evaluate(net, dest);
  if (!ra.degenerate) {
    if (scheme_label) *scheme_label = "scheme-A";
    return from(ra.throughput, ra.lambda_symmetric);
  }
  routing::TwoHopRelay th;
  const auto rt = th.evaluate(net, dest);
  if (scheme_label) *scheme_label = "two-hop";
  return from(rt.throughput, rt.lambda_symmetric);
}

}  // namespace

FluidOutcome evaluate_capacity(const net::ScalingParams& params,
                               const FluidOptions& options) {
  net::Network net = net::Network::build(params, options.shape,
                                         options.placement, options.seed);
  return evaluate_capacity(net, options);
}

FluidOutcome evaluate_capacity(const net::Network& net,
                               const FluidOptions& options) {
  const net::ScalingParams& params = net.params();
  // Canonical traffic derivation (sim::traffic_seed) — the same permutation
  // every other engine draws for this seed, so fluid-vs-slots comparisons
  // see identical flows.
  rng::Xoshiro256 g(traffic_seed(options.seed));
  const auto dest = net::permutation_traffic(params.n, g);

  FluidOutcome out;
  out.regime = capacity::classify(params);

  auto set_adhoc = [&out](const Lambda& l, std::string scheme) {
    out.lambda = out.lambda_adhoc = l.strict;
    out.lambda_symmetric = l.symmetric;
    out.bottleneck = l.bottleneck;
    out.bottleneck_label = l.label;
    out.scheme = std::move(scheme);
  };
  auto set_infra = [&out](const Lambda& l, std::string scheme) {
    out.lambda = out.lambda_infra = l.strict;
    out.lambda_symmetric = l.symmetric;
    out.bottleneck = l.bottleneck;
    out.bottleneck_label = l.label;
    out.scheme = std::move(scheme);
  };

  using Force = FluidOptions::ForceScheme;
  if (options.force != Force::kAuto) {
    switch (options.force) {
      case Force::kA: {
        routing::SchemeA a;
        const auto r = a.evaluate(net, dest);
        // A degenerate grid (side < kMinGrid) means scheme A cannot run at
        // this size at all. Forcing it used to return the evaluator's
        // defaults as if they were a real λ — surface the degeneracy
        // instead: λ = 0 and a labeled outcome the caller can test for.
        Lambda l = from(r.throughput, r.lambda_symmetric);
        if (r.degenerate) l.strict = l.symmetric = 0.0;
        set_adhoc(l, r.degenerate ? "scheme-A (forced, degenerate)"
                                  : "scheme-A (forced)");
        return out;
      }
      case Force::kB: {
        // Same degeneracy contract as forced A: an infrastructure scheme
        // forced onto a network without base stations cannot run — a
        // labeled λ = 0 outcome, not a precondition failure.
        if (net.num_bs() == 0) {
          set_infra({0.0, 0.0, flow::Resource::kAccess, "no base stations"},
                    "scheme-B (forced, degenerate)");
          return out;
        }
        routing::SchemeB b(out.regime == capacity::MobilityRegime::kWeak
                               ? routing::BsGrouping::kCluster
                               : routing::BsGrouping::kSquarelet);
        const auto r = b.evaluate(net, dest);
        set_infra(from(r.throughput, r.lambda_symmetric),
                  "scheme-B (forced)");
        return out;
      }
      case Force::kC: {
        if (net.num_bs() == 0) {
          set_infra({0.0, 0.0, flow::Resource::kAccess, "no base stations"},
                    "scheme-C (forced, degenerate)");
          return out;
        }
        routing::SchemeC c;
        const auto r = c.evaluate(net, dest);
        set_infra(from(r.throughput, r.lambda_symmetric),
                  "scheme-C (forced)");
        return out;
      }
      case Force::kTwoHop: {
        routing::TwoHopRelay th;
        const auto r = th.evaluate(net, dest);
        set_adhoc(from(r.throughput, r.lambda_symmetric),
                  "two-hop (forced)");
        return out;
      }
      case Force::kStaticMultihop: {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc(from(r.throughput, r.lambda_symmetric),
                  "static-multihop (forced)");
        return out;
      }
      case Force::kAuto:
        break;
    }
  }

  switch (out.regime) {
    case capacity::MobilityRegime::kStrong: {
      std::string adhoc_label;
      const Lambda la = adhoc_lambda(net, dest, &adhoc_label);
      out.lambda_adhoc = la.strict;
      if (params.with_bs) {
        routing::SchemeB b(routing::BsGrouping::kSquarelet);
        const auto rb = b.evaluate(net, dest);
        out.lambda_infra = rb.throughput.lambda;
        out.scheme = adhoc_label + " + scheme-B";
        // The hybrid's bottleneck is the larger component's actual binding
        // constraint. The ad-hoc side's is NOT always kWirelessRelay: the
        // two-hop fallback (and any future ad-hoc scheme) reports its own.
        if (la.strict >= rb.throughput.lambda) {
          out.bottleneck = la.bottleneck;
          out.bottleneck_label = la.label;
        } else {
          out.bottleneck = rb.throughput.bottleneck;
          out.bottleneck_label = rb.throughput.bottleneck_label;
        }
        out.lambda = la.strict + rb.throughput.lambda;
        out.lambda_symmetric = la.symmetric + rb.lambda_symmetric;
      } else {
        set_adhoc(la, adhoc_label);
        out.scheme = adhoc_label;
      }
      break;
    }
    case capacity::MobilityRegime::kWeak: {
      if (params.with_bs) {
        routing::SchemeB b(routing::BsGrouping::kCluster);
        const auto rb = b.evaluate(net, dest);
        set_infra(from(rb.throughput, rb.lambda_symmetric),
                  "scheme-B (clusters as subnets)");
      } else {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc(from(r.throughput, r.lambda_symmetric),
                  "static-multihop (no BSs)");
      }
      break;
    }
    case capacity::MobilityRegime::kTrivial: {
      if (params.with_bs) {
        routing::SchemeC c;
        const auto rc = c.evaluate(net, dest);
        set_infra(from(rc.throughput, rc.lambda_symmetric),
                  "scheme-C (cellular TDMA)");
      } else {
        routing::StaticMultihop sm;
        const auto r = sm.evaluate(net, dest);
        set_adhoc(from(r.throughput, r.lambda_symmetric),
                  "static-multihop (no BSs)");
      }
      break;
    }
  }
  return out;
}

}  // namespace manetcap::sim
