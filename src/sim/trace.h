// Deterministic per-packet event trace for the slot simulator, and the
// replay checker that re-validates every packet's lifecycle against the
// paper's per-scheme routing contracts.
//
// The packet-conservation audit (sim/metrics.h) proves *aggregate*
// identities — injected == delivered + queued + dropped — but cannot see
// per-packet routing legality: a packet that skips a squarelet on its H-V
// path (Theorem 5), takes a third hop in the two-hop scheme, or is
// delivered by a BS that does not serve its destination (Definitions
// 12–13) still conserves counts. `Trace` records every inject / relay /
// wired-forward / deliver / drop with its slot, flow, hop and endpoints;
// `verify_trace` replays the log against the routing structure captured
// alongside it (destination map, scheme-A H-V paths, serving-BS sets,
// wired credit rate) and reports each violated invariant by name.
//
// The binary codec is self-contained: a trace file embeds everything the
// checker needs, so replay is exact on any platform — no floating-point
// network reconstruction is involved. Golden traces for tier-1 sizes live
// under tests/golden/ and are re-verified in CI (tools/trace_check).
// See docs/TRACE.md for the format and the invariant list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/slotsim.h"
#include "util/binio.h"

namespace manetcap::sim {

enum class TraceEventKind : std::uint8_t {
  kInject = 0,        // source packet accepted into a queue
  kRelay = 1,         // MS→MS hand-off (schemes A and two-hop)
  kWiredForward = 2,  // BS→BS over the wired backbone (from==to: the
                      // packet was already at a serving BS, hop 0→1
                      // promotion without credit spend)
  kDeliver = 3,       // packet handed to its destination
  kDrop = 4,          // packet lost with a dying BS's queue (from==to: the
                      // BS). Legal only at a slot where the fault timeline
                      // downs that BS; the checker flags any other kDrop.
  // Fault markers (MCTRACE2): flow and hop are 0, from==to names the BS
  // (kWireScale: from/to are the edge's endpoints). The checker
  // cross-checks them against TraceContext::faults; the timeline, not the
  // marker stream, drives the replay state.
  kBsDown = 5,        // BS went down at the start of this slot
  kBsUp = 6,          // BS revived at the start of this slot
  kWireScale = 7,     // wired edge (from,to) accrual rate re-scaled
  kRehome = 8,        // hop-1 packet demoted to hop 0 at from(==to): its
                      // BS stopped serving the destination after a fault
  // Churn / mobility markers (flow and hop are 0). For kMsLeave/kMsJoin
  // from==to names the MS (an id < n, unlike the BS markers); a leave is
  // followed by kDrop events for every packet lost with it. For
  // kMobilityShift all four id fields are 0 — the timeline entry carries
  // the new regime.
  kMsLeave = 9,        // MS departed at the start of this slot
  kMsJoin = 10,        // MS (re)joined at the start of this slot
  kMobilityShift = 11, // mobility regime changed at the start of this slot
};

const char* to_string(TraceEventKind k);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kInject;
  std::uint32_t slot = 0;
  std::uint32_t flow = 0;
  std::uint32_t hop = 0;   // the packet's hop AFTER the event
  std::uint32_t from = 0;  // node relinquishing the packet (== flow at inject)
  std::uint32_t to = 0;    // node receiving it (the destination at deliver)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// One applied fault, as the simulator resolved it — regional outages are
/// already expanded to concrete BS ids and every re-homed MS's new serving
/// set is embedded, so the checker replays the infrastructure timeline
/// with zero geometry or floating point.
struct TraceFault {
  static constexpr std::uint8_t kKindBsDown = 0;
  static constexpr std::uint8_t kKindBsUp = 1;
  static constexpr std::uint8_t kKindWireScale = 2;
  // Churn/mobility kinds reuse the existing fields — `bs` holds the MS id
  // (< n) for leave/join, `scale` holds the regime ordinal for shift — so
  // the MCTRACE2 fault-record byte layout is unchanged.
  static constexpr std::uint8_t kKindMsLeave = 3;
  static constexpr std::uint8_t kKindMsJoin = 4;
  static constexpr std::uint8_t kKindShift = 5;

  std::uint32_t slot = 0;    // faults apply at the start of this slot
  std::uint8_t kind = kKindBsDown;
  /// Subject BSs as absolute node ids (≥ n). Down: every BS killed by the
  /// event (one for `down@`, the whole disk for `region@`), ascending.
  /// Up: the single revived BS. Wire scale: the edge's two endpoints,
  /// min first.
  std::vector<std::uint32_t> bs;
  double scale = 1.0;  // wire-scale events only (0 = severed)
  /// MSs whose serving set changed, ascending, with their new serving
  /// lists (absolute BS node ids) in the parallel table below.
  std::vector<std::uint32_t> rehomed_ms;
  std::vector<std::vector<std::uint32_t>> rehomed_serving;

  friend bool operator==(const TraceFault&, const TraceFault&) = default;
};

/// Everything the checker needs to re-validate a trace without rebuilding
/// the network: per-scheme routing structure plus the run configuration.
/// Captured by SlotSim at construction from the same state the forwarding
/// code uses.
struct TraceContext {
  SlotScheme scheme = SlotScheme::kSchemeA;
  SlotMobility mobility = SlotMobility::kIid;
  std::uint32_t n = 0;  // mobile stations; node ids [0, n)
  std::uint32_t k = 0;  // base stations; node ids [n, n+k)
  std::uint32_t slots = 0;
  std::uint32_t warmup = 0;
  std::uint32_t max_queue = 0;
  std::uint32_t source_backlog = 0;
  std::uint64_t seed = 0;
  double wired_c = 0.0;  // per-edge wired credit rate c(n)

  std::vector<std::uint32_t> dest;  // flow f's destination MS (size n)
  // Scheme A: per-MS home squarelet and per-flow H-V squarelet path.
  std::vector<std::uint32_t> home_cell;
  std::vector<std::vector<std::uint32_t>> paths;
  // Schemes B/C: serving BS ids (absolute node ids ≥ n) per MS. Scheme C
  // associations hold exactly one BS. This is the slot-0 state; faults
  // below override it from their slot onward.
  std::vector<std::vector<std::uint32_t>> serving;
  // Fault timeline, in application order (slots non-decreasing). Empty for
  // a fault-free run — such traces encode to the legacy MCTRACE1 bytes.
  std::vector<TraceFault> faults;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// End-of-run totals, cross-checked against the replayed event stream.
struct TraceFooter {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;

  friend bool operator==(const TraceFooter&, const TraceFooter&) = default;
};

/// The capture sink SlotSim writes through SlotSimOptions::trace, and the
/// unit the codec round-trips. Recording is a bounds-unchecked push_back —
/// the cost when attached is one branch plus one 24-byte append per event,
/// and a single untaken branch per event when detached.
class Trace {
 public:
  TraceContext context;
  std::vector<TraceEvent> events;
  TraceFooter footer;

  void record(TraceEventKind kind, std::uint32_t slot, std::uint32_t flow,
              std::uint32_t hop, std::uint32_t from, std::uint32_t to) {
    events.push_back({kind, slot, flow, hop, from, to});
  }

  /// Serializes to the MCTRACE1 binary format (varint-packed, FNV-1a
  /// checksummed), or MCTRACE2 when the context carries a fault timeline —
  /// fault-free traces stay byte-identical to pre-fault builds.
  /// Deterministic: equal traces encode to equal bytes.
  std::vector<std::uint8_t> encode() const;

  /// Parses bytes produced by encode(). Throws manetcap::CheckError on a
  /// malformed buffer, bad magic, out-of-range field or checksum mismatch.
  static Trace decode(const std::vector<std::uint8_t>& bytes);

  /// File convenience wrappers around encode()/decode(); load throws
  /// manetcap::CheckError when the file cannot be read.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);
};

/// Reusable framing shared between the trace codec and the simulator
/// checkpoint format (MCCKPT1): Trace::encode/decode are layered on these
/// helpers, so a checkpoint embeds fault timelines and in-flight event
/// streams in exactly the bytes the golden traces freeze. Each encoder
/// writes a count followed by the per-entry fields; each decoder validates
/// ranges and throws manetcap::CheckError on malformed input.
void encode_faults(std::vector<std::uint8_t>& out,
                   const std::vector<TraceFault>& faults);
std::vector<TraceFault> decode_faults(util::binio::ByteReader& r);
void encode_events(std::vector<std::uint8_t>& out,
                   const std::vector<TraceEvent>& events);
/// `max_kind` caps the accepted TraceEventKind (4 for MCTRACE1 bodies,
/// 11 when fault/churn markers are legal).
std::vector<TraceEvent> decode_events(util::binio::ByteReader& r,
                                      std::uint8_t max_kind);

/// One violated invariant. `invariant` is a stable name from the list in
/// docs/TRACE.md (e.g. "hop_monotone", "serving_bs", "wired_credit");
/// `event_index` is the offending event's position in Trace::events
/// (events.size() for end-of-trace violations like footer_totals).
struct TraceViolation {
  std::string invariant;
  std::uint64_t event_index = 0;
  std::string detail;
};

struct TraceVerifyOptions {
  /// Worker threads for the per-flow lifecycle checks. 1 = serial;
  /// 0 = util::ThreadPool::default_num_threads(). The verdict — including
  /// violation order and summary text — is bit-identical for every value:
  /// per-flow results land in pre-allocated slots and are merged serially
  /// in flow order (the run_sweep absorb discipline).
  std::size_t num_threads = 1;
  /// Cap on reported violations (a corrupted trace can cascade).
  std::size_t max_violations = 64;
};

struct TraceVerdict {
  bool ok = true;
  std::vector<TraceViolation> violations;  // ascending event_index
  // Replayed totals (entire event stream).
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t relayed = 0;
  std::uint64_t wired_forwarded = 0;
  std::uint64_t dropped = 0;  // BS-outage drops (0 for fault-free traces)

  /// Deterministic multi-line report ("PASS …" / "FAIL …" + one line per
  /// violation) — the string two thread counts must agree on bit-for-bit.
  std::string summary() const;
};

/// Replays `trace` against its embedded context and checks every invariant:
/// slot monotonicity, packet existence/location, queue bounds, flow-window
/// bounds, scheme-A H-V hop monotonicity + path adjacency, the two-hop
/// ≤2-hop contract, scheme B/C hop-phase legality and serving-BS
/// membership, wired-credit feasibility, and footer totals.
TraceVerdict verify_trace(const Trace& trace,
                          const TraceVerifyOptions& options = {});

/// A golden-trace case: fixed instance + run configuration whose captured
/// trace is stored under tests/golden/ and replayed in CI. All seeds
/// derive from sim::trial_seed so regeneration is deterministic.
struct GoldenTraceSpec {
  std::string name;  // file stem, e.g. "scheme_a" → scheme_a.trace
  SlotScheme scheme = SlotScheme::kSchemeA;
  net::ScalingParams params;
  net::BsPlacement placement = net::BsPlacement::kUniform;
  std::size_t slots = 0;
  std::size_t warmup = 0;
  std::uint64_t net_seed = 0;
  std::uint64_t traffic_seed = 0;
  std::uint64_t sim_seed = 0;
};

/// The four tier-1 golden cases (one per scheme).
std::vector<GoldenTraceSpec> golden_trace_specs();

/// Builds the spec's network + permutation traffic, runs the slot
/// simulator with a trace attached, and returns the captured trace.
Trace capture_trace(const GoldenTraceSpec& spec);

}  // namespace manetcap::sim
