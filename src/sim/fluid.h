// End-to-end fluid capacity evaluation: sample an instance, pick the
// paper's optimal scheme for its mobility regime, and measure the feasible
// per-node rate λ.
//
// Scheme selection follows Sections IV–V:
//   strong  → scheme A (mobility multihop) in parallel with scheme B over
//             constant-area squarelets; λ = λ_A + λ_B (the two schemes
//             time-share, matching Θ(1/f) + Θ(min(k²c/n, k/n))).
//             When f(n) = Θ(1) scheme A degenerates to two-hop relay.
//   weak    → scheme B with clusters as subnets (Theorem 7).
//   trivial → scheme C cellular TDMA (Theorem 9).
//   no BSs  → scheme A / two-hop (strong) or static cluster multihop
//             (weak/trivial, Corollary 3).
#pragma once

#include <cstdint>
#include <string>

#include "capacity/regimes.h"
#include "flow/constraints.h"
#include "net/network.h"

namespace manetcap::sim {

struct FluidOptions {
  mobility::ShapeKind shape = mobility::ShapeKind::kUniformDisk;
  net::BsPlacement placement = net::BsPlacement::kClusteredMatched;
  std::uint64_t seed = 1;

  /// Force a scheme instead of regime-based selection (ablations).
  enum class ForceScheme { kAuto, kA, kB, kC, kTwoHop, kStaticMultihop };
  ForceScheme force = ForceScheme::kAuto;
};

struct FluidOutcome {
  capacity::MobilityRegime regime = capacity::MobilityRegime::kStrong;
  double lambda = 0.0;        // combined per-node rate (strict worst case)
  double lambda_adhoc = 0.0;  // mobility-side component (scheme A/two-hop)
  double lambda_infra = 0.0;  // infrastructure-side component (B or C)
  /// Typical-resource estimate composed the same way as `lambda`
  /// (see SchemeAResult::lambda_symmetric) — the quantity scaling fits
  /// should use, free of extreme-value bias.
  double lambda_symmetric = 0.0;
  /// The binding resource of whichever scheme set `lambda`. For a strong
  /// hybrid (λ = λ_A + λ_B) it is the bottleneck of the larger component —
  /// propagated from that component's constraint solve, never assumed.
  flow::Resource bottleneck = flow::Resource::kWirelessRelay;
  std::string bottleneck_label;  // binding constraint's label, if any
  std::string scheme;         // human-readable scheme description
};

/// Samples one instance for `params` and evaluates its fluid capacity.
FluidOutcome evaluate_capacity(const net::ScalingParams& params,
                               const FluidOptions& options);

/// Same, on a pre-built network (placement ablations reuse instances).
FluidOutcome evaluate_capacity(const net::Network& net,
                               const FluidOptions& options);

}  // namespace manetcap::sim
