// The run-shape configuration shared by every measurement entry point.
//
// SlotSimOptions and EngineOptions used to duplicate the (slots, warmup,
// phy, sinr) quartet — and each re-implemented the validation. RunConfig
// is the single home: both option structs inherit it, so call sites keep
// the flat `opt.slots` spelling while the named-error validation lives in
// exactly one place (validate(), parameterized by the reporting struct's
// name so messages stay stable per entry point).
#pragma once

#include <cstddef>

#include "phy/interference.h"

namespace manetcap::sim {

struct RunConfig {
  /// Simulation horizon in slots and the prefix excluded from the
  /// measurement window.
  std::size_t slots = 4000;
  std::size_t warmup = 400;
  /// Interference backend the run is evaluated under (docs/PHY.md).
  /// kProtocol — the default — takes the historical code path exactly.
  phy::PhyKind phy = phy::PhyKind::kProtocol;
  /// Parameters of the sinr / sinr-csma backends (validated when `phy`
  /// selects one; ignored under kProtocol).
  phy::SinrParams sinr;

  /// Validates the shared fields with named errors, prefixed "<who>: "
  /// (e.g. "SlotSimOptions: warmup (400) must be < slots (100)").
  /// Throws manetcap::CheckError on the first violation.
  void validate(const char* who) const;
};

}  // namespace manetcap::sim
