#include "sim/run_config.h"

#include "util/check.h"

namespace manetcap::sim {

void RunConfig::validate(const char* who) const {
  MANETCAP_CHECK_MSG(warmup < slots, who << ": warmup (" << warmup
                                         << ") must be < slots (" << slots
                                         << ")");
  MANETCAP_CHECK_MSG(slots <= 0xffffffffULL,
                     who << ": slots must fit in 32 bits (slot "
                            "stamps, packet birth slots and trace slots are "
                            "uint32)");
  if (phy != phy::PhyKind::kProtocol) sinr.validate();
}

}  // namespace manetcap::sim
