// Frozen pre-overhaul slot simulator (AoS state, per-slot spatial-hash
// rebuild, map-based wired credit). Kept as the behavioral oracle for the
// SoA hot-path rewrite: bench/slotsim_hotpath measures the before/after
// slots/sec ratio against it, and the equivalence tests assert that both
// implementations produce identical results and byte-identical traces on
// the same inputs. Not part of the public umbrella header; new code should
// call sim::run_slot_sim.
#pragma once

#include "sim/slotsim.h"

namespace manetcap::sim {

/// Runs the legacy (pre-SoA) simulator. Same contract as run_slot_sim.
SlotSimResult run_slot_sim_reference(const net::Network& net,
                                     const std::vector<std::uint32_t>& dest,
                                     const SlotSimOptions& options);

}  // namespace manetcap::sim
