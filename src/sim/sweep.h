// Scaling sweeps: measure λ(n) over geometrically spaced n, average over
// seeds, and fit the scaling exponent — the measurement methodology behind
// every Table I row and figure series.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/loglog_fit.h"
#include "net/params.h"

namespace manetcap::sim {

/// Measures one instance: (params, seed) → per-node rate λ.
using Evaluator =
    std::function<double(const net::ScalingParams&, std::uint64_t seed)>;

struct SweepPoint {
  std::size_t n = 0;
  double lambda_gm = 0.0;     // geometric mean over trials
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  std::size_t trials = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  analysis::PowerLawFit fit;  // slope of log λ vs log n
  bool fit_valid = false;     // false when some point measured λ = 0
};

/// Geometrically spaced sizes: n₀·ratioⁱ, i = 0..count−1.
std::vector<std::size_t> geometric_sizes(std::size_t n0, double ratio,
                                         std::size_t count);

/// Runs `eval` for every (n, trial) pair, with params = base except n.
/// Deterministic given seed0.
SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const Evaluator& eval,
                      std::uint64_t seed0 = 1);

}  // namespace manetcap::sim
