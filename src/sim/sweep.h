// Scaling sweeps: measure λ(n) over geometrically spaced n, average over
// seeds, and fit the scaling exponent — the measurement methodology behind
// every Table I row and figure series.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/loglog_fit.h"
#include "net/params.h"
#include "sim/metrics.h"

namespace manetcap::sim {

/// Everything an evaluator gets about its (size, trial) sweep cell.
///
/// `params` is the base parameter set with n overridden to the cell's
/// size; `seed` is the cell's trial_seed(). `metrics` is non-null exactly
/// when the sweep was asked to aggregate audit counters
/// (SweepOptions::metrics) — it then points at a registry private to this
/// cell (evaluators never share one, so the counters stay race-free under
/// a multi-threaded sweep); wire it to SlotSimOptions::metrics or ignore
/// it.
struct EvalContext {
  net::ScalingParams params;
  std::uint64_t seed = 0;
  Metrics* metrics = nullptr;
};

/// Measures one instance: cell context → per-node rate λ. The single
/// evaluator signature for run_sweep; new fields reach evaluators by
/// growing EvalContext instead of multiplying overloads.
using SweepEvaluator = std::function<double(const EvalContext&)>;

struct SweepPoint {
  std::size_t n = 0;
  double lambda_gm = 0.0;     // geometric mean over trials
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  std::size_t trials = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  analysis::PowerLawFit fit;  // slope of log λ vs log n
  bool fit_valid = false;     // false when some point measured λ = 0
};

struct SweepOptions {
  /// Concurrency cap for the (size, trial) fan-out. 1 = serial on the
  /// calling thread; 0 = util::ThreadPool::default_num_threads(). The
  /// fan-out runs on the process-wide persistent executor
  /// (util::ThreadPool::shared()) — no threads are created per call.
  /// Results are bit-identical for every value — trials are independent
  /// tasks writing pre-allocated slots and the reduction runs serially in
  /// a fixed order.
  std::size_t num_threads = 1;
  std::uint64_t seed0 = 1;
  /// Optional aggregate audit sink for the MetricsEvaluator overload:
  /// per-cell counters (and any series) are merged into it serially in
  /// fixed cell order after the fan-out, so the aggregate is bit-identical
  /// for any num_threads. Ignored by the plain Evaluator overloads.
  Metrics* metrics = nullptr;
};

/// Geometrically spaced sizes: n₀·ratioⁱ, i = 0..count−1, deduplicated —
/// when llround collapses adjacent points (small n₀·(ratio−1)), each size
/// appears once, so the result may hold fewer than `count` entries.
std::vector<std::size_t> geometric_sizes(std::size_t n0, double ratio,
                                         std::size_t count);

/// Per-trial seed for sweep cell (size_index, trial): a SplitMix64 mix of
/// all three inputs, so nearby (seed0, si, t) tuples land on statistically
/// independent seeds and no two cells of a sweep collide.
std::uint64_t trial_seed(std::uint64_t seed0, std::size_t size_index,
                         std::size_t trial);

/// Canonical traffic-permutation seed for an instance seed: every engine
/// (fluid, slots, CLI, benches) derives the permutation-traffic RNG from
/// this ONE function — trial_seed(seed, 0, 1), the same SplitMix64 family
/// the golden scenarios draw their traffic from — so cross-validating the
/// engines compares the same flows. Replaces the ad-hoc `seed ^ const`
/// derivations that used to differ between fluid and slot paths.
std::uint64_t traffic_seed(std::uint64_t seed);

/// Runs `eval` for every (n, trial) cell; each call receives an
/// EvalContext with params = base except n. Deterministic given
/// options.seed0, for any num_threads. With num_threads != 1 the
/// evaluator is called concurrently and must be thread-safe (pure
/// functions of the context are; lambdas mutating captured state need
/// their own synchronization). When options.metrics is set it receives
/// the aggregate of every cell's private registry, merged serially in
/// fixed cell order.
SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const SweepEvaluator& eval,
                      const SweepOptions& options = {});

}  // namespace manetcap::sim
