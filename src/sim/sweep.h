// Scaling sweeps: measure λ(n) over geometrically spaced n, average over
// seeds, and fit the scaling exponent — the measurement methodology behind
// every Table I row and figure series.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/loglog_fit.h"
#include "net/params.h"
#include "sim/metrics.h"

namespace manetcap::sim {

/// Measures one instance: (params, seed) → per-node rate λ.
using Evaluator =
    std::function<double(const net::ScalingParams&, std::uint64_t seed)>;

/// Same, but the evaluator also reports audit counters into a per-cell
/// Metrics registry (e.g. by passing it to SlotSimOptions::metrics). Each
/// (size, trial) cell owns a private registry — evaluators never share one,
/// so the counters race-free even under a multi-threaded sweep.
using MetricsEvaluator = std::function<double(const net::ScalingParams&,
                                              std::uint64_t seed, Metrics&)>;

struct SweepPoint {
  std::size_t n = 0;
  double lambda_gm = 0.0;     // geometric mean over trials
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  std::size_t trials = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  analysis::PowerLawFit fit;  // slope of log λ vs log n
  bool fit_valid = false;     // false when some point measured λ = 0
};

struct SweepOptions {
  /// Worker threads for the (size, trial) fan-out. 1 = serial on the
  /// calling thread; 0 = util::ThreadPool::default_num_threads(). Results
  /// are bit-identical for every value — trials are independent tasks and
  /// the reduction runs serially in a fixed order.
  std::size_t num_threads = 1;
  std::uint64_t seed0 = 1;
  /// Optional aggregate audit sink for the MetricsEvaluator overload:
  /// per-cell counters (and any series) are merged into it serially in
  /// fixed cell order after the fan-out, so the aggregate is bit-identical
  /// for any num_threads. Ignored by the plain Evaluator overloads.
  Metrics* metrics = nullptr;
};

/// Geometrically spaced sizes: n₀·ratioⁱ, i = 0..count−1, deduplicated —
/// when llround collapses adjacent points (small n₀·(ratio−1)), each size
/// appears once, so the result may hold fewer than `count` entries.
std::vector<std::size_t> geometric_sizes(std::size_t n0, double ratio,
                                         std::size_t count);

/// Per-trial seed for sweep cell (size_index, trial): a SplitMix64 mix of
/// all three inputs, so nearby (seed0, si, t) tuples land on statistically
/// independent seeds and no two cells of a sweep collide.
std::uint64_t trial_seed(std::uint64_t seed0, std::size_t size_index,
                         std::size_t trial);

/// Runs `eval` for every (n, trial) pair, with params = base except n.
/// Deterministic given options.seed0, for any num_threads. With
/// num_threads != 1 the evaluator is called concurrently and must be
/// thread-safe (pure functions of (params, seed) are; lambdas mutating
/// captured state need their own synchronization).
SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const Evaluator& eval,
                      const SweepOptions& options);

/// MetricsEvaluator variant: every cell gets a fresh Metrics registry and
/// options.metrics (when set) receives the aggregate of all cells.
SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const MetricsEvaluator& eval,
                      const SweepOptions& options);

/// Serial convenience overload (num_threads = 1).
SweepResult run_sweep(const net::ScalingParams& base,
                      const std::vector<std::size_t>& sizes,
                      std::size_t trials, const Evaluator& eval,
                      std::uint64_t seed0 = 1);

}  // namespace manetcap::sim
