// Flow-level (fluid) simulation engine — the fast counterpart of SlotSim.
//
// Instead of moving packets slot by slot, FlowSim allocates a per-flow
// rate over the routing evaluator's constraint rows (TDMA share + bounded
// max-min water-filling over the shared routing::RateStructure incidence),
// then advances continuous per-flow volumes in slot-epochs: a flow's
// delivery lags its injection by its pipeline depth (store-and-forward
// hops), and cross-BS flows are paced by the same wired-credit token
// buckets SlotSim uses (sim/wire_credit.h) over the same serving tables
// (sim/route_tables.h).
//
// The engine reports the same Metrics counters and the same audit identity
// as the packet engine — injected == delivered + queued + dropped, where
// "queued" is the fluid backlog (injected volume not yet delivered) — so
// verify-style checks apply unchanged. See docs/FLOWSIM.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/constraints.h"
#include "net/network.h"
#include "net/traffic.h"
#include "routing/scheme_b.h"
#include "sim/faults.h"
#include "sim/metrics.h"

namespace manetcap::sim {

enum class FlowScheme {
  kSchemeA,         // squarelet H-V multihop over mobility
  kTwoHop,          // Grossglauser–Tse two-hop relay
  kSchemeB,         // uplink → wired backbone → downlink
  kSchemeC,         // cellular TDMA + Valiant backbone
  kStaticMultihop,  // static baseline (mobility off)
};

std::string to_string(FlowScheme s);

struct FlowSimOptions {
  FlowScheme scheme = FlowScheme::kSchemeA;
  std::size_t slots = 4000;   // simulated horizon, in SlotSim slots
  std::size_t warmup = 400;   // rate measurement starts here
  std::size_t epoch_slots = 64;  // rate/credit update granularity
  /// Water-filling rounds after the initial TDMA share (0 = pure TDMA —
  /// then min over served flows of the allocated rate equals the
  /// constraint solver's λ exactly).
  std::size_t maxmin_rounds = 4;
  double ct = 0.3;     // S* contact threshold (matches SlotSimOptions)
  double delta = 1.0;  // protocol-model guard factor
  double bandwidth_share = 1.0;
  routing::BsGrouping grouping = routing::BsGrouping::kSquarelet;
  std::uint64_t seed = 1;  // recorded only; the fluid model is deterministic
  Metrics* metrics = nullptr;
  bool check_conservation = true;
  /// Optional churn timeline (sim/faults.h). The fluid engine accepts
  /// churn-only plans — leave@SLOT:MS / join@SLOT:MS — and refuses
  /// infrastructure or mobility-shift events with a named error (those
  /// need the packet engine's per-slot geometry). Epoch boundaries are
  /// clamped to churn slots, so liveness is constant within an epoch; a
  /// departure flushes the leaver's flows' fluid backlog into `dropped`.
  const FaultPlan* faults = nullptr;
};

struct FlowSimResult {
  // Measured per-flow delivery rates over [warmup, slots).
  double mean_flow_rate = 0.0;
  double min_flow_rate = 0.0;
  double p10_flow_rate = 0.0;
  /// Strict constraint-solver λ over the same rows the allocation used
  /// (identical to the routing evaluator's throughput.lambda).
  double lambda_strict = 0.0;
  double lambda_symmetric = 0.0;
  flow::Resource bottleneck = flow::Resource::kWirelessRelay;
  std::string bottleneck_label;
  bool degenerate = false;  // scheme cannot operate at this size (scheme A)
  std::size_t measured_slots = 0;
  std::size_t served_flows = 0;
  // Audit integers: injected == delivered_lifetime + queued_end + dropped.
  std::uint64_t injected = 0;
  std::uint64_t delivered_lifetime = 0;
  std::uint64_t queued_end = 0;
  std::uint64_t dropped = 0;
  std::uint64_t state_bytes = 0;
};

/// Runs the flow-level engine for permutation traffic `dest` over `net`.
FlowSimResult run_flow_sim(const net::Network& net,
                           const std::vector<std::uint32_t>& dest,
                           const FlowSimOptions& options);

/// Demand-set overload (net/traffic.h): the allocation water-fills as
/// usual, then each flow's offered rate is thinned by its on-off duty
/// cycle, gated on its start slot and clamped to its finite size — the
/// fluid rendering of the same per-flow demands SlotSim injects. A
/// demand set from the default TrafficSpec reproduces the dest overload
/// exactly.
FlowSimResult run_flow_sim(const net::Network& net,
                           const std::vector<net::FlowDemand>& demands,
                           const FlowSimOptions& options);

}  // namespace manetcap::sim
