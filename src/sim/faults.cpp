#include "sim/faults.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace manetcap::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBsDown:
      return "down";
    case FaultKind::kBsUp:
      return "up";
    case FaultKind::kWireScale:
      return "wire";
    case FaultKind::kRegional:
      return "region";
  }
  return "?";
}

namespace {

/// Parses one full numeric field; the whole substring must be consumed —
/// "12x" silently parsing as 12 is how a typo'd spec corrupts a run.
std::uint64_t parse_u64(const std::string& s, const std::string& token) {
  MANETCAP_CHECK_MSG(!s.empty(), "FaultPlan: missing number in '" << token
                                     << "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  MANETCAP_CHECK_MSG(end == s.c_str() + s.size() && s[0] != '-',
                     "FaultPlan: bad number '" << s << "' in '" << token
                                               << "'");
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const std::string& s, const std::string& token) {
  MANETCAP_CHECK_MSG(!s.empty(), "FaultPlan: missing number in '" << token
                                     << "'");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  MANETCAP_CHECK_MSG(end == s.c_str() + s.size() && std::isfinite(v),
                     "FaultPlan: bad number '" << s << "' in '" << token
                                               << "'");
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

void FaultPlan::validate(std::size_t k, std::size_t slots) const {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    MANETCAP_CHECK_MSG(e.slot >= prev,
                       "FaultPlan: events must be in non-decreasing slot "
                       "order (event "
                           << i << " at slot " << e.slot << " after slot "
                           << prev << ")");
    prev = e.slot;
    MANETCAP_CHECK_MSG(e.slot < slots, "FaultPlan: event " << i << " at slot "
                                           << e.slot << " >= slots ("
                                           << slots << ")");
    switch (e.kind) {
      case FaultKind::kBsDown:
      case FaultKind::kBsUp:
        MANETCAP_CHECK_MSG(e.bs < k, "FaultPlan: BS index " << e.bs
                                         << " >= k (" << k << ")");
        break;
      case FaultKind::kWireScale:
        MANETCAP_CHECK_MSG(e.bs < k && e.bs2 < k,
                           "FaultPlan: wired edge (" << e.bs << "," << e.bs2
                                                     << ") out of range, k = "
                                                     << k);
        MANETCAP_CHECK_MSG(e.bs != e.bs2,
                           "FaultPlan: wired edge endpoints must differ");
        MANETCAP_CHECK_MSG(
            std::isfinite(e.scale) && e.scale >= 0.0 && e.scale <= 1.0,
            "FaultPlan: wire scale " << e.scale << " outside [0, 1]");
        break;
      case FaultKind::kRegional:
        MANETCAP_CHECK_MSG(std::isfinite(e.radius) && e.radius >= 0.0,
                           "FaultPlan: regional radius must be >= 0");
        MANETCAP_CHECK_MSG(std::isfinite(e.center.x) &&
                               std::isfinite(e.center.y),
                           "FaultPlan: regional center must be finite");
        break;
    }
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string token = trim(raw);
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    const std::size_t colon = token.find(':', at == std::string::npos ? 0 : at);
    MANETCAP_CHECK_MSG(at != std::string::npos && colon != std::string::npos,
                       "FaultPlan: expected KIND@SLOT:ARGS, got '" << token
                                                                   << "'");
    const std::string kind = token.substr(0, at);
    const std::string slot_s = token.substr(at + 1, colon - at - 1);
    const std::string args = token.substr(colon + 1);

    FaultEvent e;
    e.slot = static_cast<std::uint32_t>(parse_u64(slot_s, token));
    if (kind == "down" || kind == "up") {
      e.kind = kind == "down" ? FaultKind::kBsDown : FaultKind::kBsUp;
      e.bs = static_cast<std::uint32_t>(parse_u64(args, token));
    } else if (kind == "wire") {
      // wire@SLOT:A-BxS — edge (A, B) scaled to S.
      e.kind = FaultKind::kWireScale;
      const std::size_t dash = args.find('-');
      const std::size_t x = args.find('x', dash == std::string::npos ? 0
                                                                    : dash);
      MANETCAP_CHECK_MSG(dash != std::string::npos && x != std::string::npos,
                         "FaultPlan: expected wire@SLOT:A-BxSCALE, got '"
                             << token << "'");
      e.bs = static_cast<std::uint32_t>(
          parse_u64(args.substr(0, dash), token));
      e.bs2 = static_cast<std::uint32_t>(
          parse_u64(args.substr(dash + 1, x - dash - 1), token));
      e.scale = parse_f64(args.substr(x + 1), token);
    } else if (kind == "region") {
      // region@SLOT:X,Y,R — disk of radius R around (X, Y).
      e.kind = FaultKind::kRegional;
      const auto parts = split(args, ',');
      MANETCAP_CHECK_MSG(parts.size() == 3,
                         "FaultPlan: expected region@SLOT:X,Y,R, got '"
                             << token << "'");
      e.center.x = parse_f64(trim(parts[0]), token);
      e.center.y = parse_f64(trim(parts[1]), token);
      e.radius = parse_f64(trim(parts[2]), token);
    } else {
      MANETCAP_CHECK_MSG(false, "FaultPlan: unknown fault kind '"
                                    << kind << "' in '" << token << "'");
    }
    plan.events.push_back(e);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& e : events) {
    os << "  slot " << e.slot << ": ";
    switch (e.kind) {
      case FaultKind::kBsDown:
        os << "BS " << e.bs << " down";
        break;
      case FaultKind::kBsUp:
        os << "BS " << e.bs << " up";
        break;
      case FaultKind::kWireScale:
        os << "wire (" << e.bs << "," << e.bs2 << ") scale " << e.scale;
        break;
      case FaultKind::kRegional:
        os << "regional outage, radius " << e.radius << " at ("
           << e.center.x << "," << e.center.y << ")";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace manetcap::sim
