#include "sim/faults.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/spec.h"

namespace manetcap::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBsDown:
      return "down";
    case FaultKind::kBsUp:
      return "up";
    case FaultKind::kWireScale:
      return "wire";
    case FaultKind::kRegional:
      return "region";
    case FaultKind::kMsLeave:
      return "leave";
    case FaultKind::kMsJoin:
      return "join";
    case FaultKind::kMobilityShift:
      return "shift";
  }
  return "?";
}

namespace {

constexpr const char* kWho = "FaultPlan";

constexpr std::uint8_t kNumMobilityRegimes = 4;

const char* const kMobilityNames[kNumMobilityRegimes] = {"iid", "walk",
                                                         "pull", "brownian"};

std::uint64_t parse_u64(const std::string& s, const std::string& token) {
  return util::spec::parse_u64(kWho, s, token);
}

double parse_f64(const std::string& s, const std::string& token) {
  return util::spec::parse_f64(kWho, s, token);
}

}  // namespace

const char* mobility_name(std::uint8_t mobility) {
  return mobility < kNumMobilityRegimes ? kMobilityNames[mobility] : "?";
}

bool FaultPlan::has_infra() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kBsDown || e.kind == FaultKind::kBsUp ||
        e.kind == FaultKind::kWireScale || e.kind == FaultKind::kRegional) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_churn() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kMsLeave || e.kind == FaultKind::kMsJoin) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::has_shift() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kMobilityShift) return true;
  }
  return false;
}

void FaultPlan::validate(std::size_t k, std::size_t slots,
                         std::size_t n) const {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    MANETCAP_CHECK_MSG(e.slot >= prev,
                       "FaultPlan: events must be in non-decreasing slot "
                       "order (event "
                           << i << " at slot " << e.slot << " after slot "
                           << prev << ")");
    prev = e.slot;
    MANETCAP_CHECK_MSG(e.slot < slots, "FaultPlan: event " << i << " at slot "
                                           << e.slot << " >= slots ("
                                           << slots << ")");
    switch (e.kind) {
      case FaultKind::kBsDown:
      case FaultKind::kBsUp:
        MANETCAP_CHECK_MSG(e.bs < k, "FaultPlan: BS index " << e.bs
                                         << " >= k (" << k << ")");
        break;
      case FaultKind::kWireScale:
        MANETCAP_CHECK_MSG(e.bs < k && e.bs2 < k,
                           "FaultPlan: wired edge (" << e.bs << "," << e.bs2
                                                     << ") out of range, k = "
                                                     << k);
        MANETCAP_CHECK_MSG(e.bs != e.bs2,
                           "FaultPlan: wired edge endpoints must differ");
        MANETCAP_CHECK_MSG(
            std::isfinite(e.scale) && e.scale >= 0.0 && e.scale <= 1.0,
            "FaultPlan: wire scale " << e.scale << " outside [0, 1]");
        break;
      case FaultKind::kRegional:
        MANETCAP_CHECK_MSG(std::isfinite(e.radius) && e.radius >= 0.0,
                           "FaultPlan: regional radius must be >= 0");
        MANETCAP_CHECK_MSG(std::isfinite(e.center.x) &&
                               std::isfinite(e.center.y),
                           "FaultPlan: regional center must be finite");
        break;
      case FaultKind::kMsLeave:
      case FaultKind::kMsJoin:
        MANETCAP_CHECK_MSG(e.ms < n, "FaultPlan: MS index " << e.ms
                                         << " >= n (" << n << ")");
        break;
      case FaultKind::kMobilityShift:
        MANETCAP_CHECK_MSG(e.mobility < kNumMobilityRegimes,
                           "FaultPlan: unknown mobility regime ordinal "
                               << static_cast<unsigned>(e.mobility));
        break;
    }
  }
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : util::spec::split(spec, ';')) {
    const std::string token = util::spec::trim(raw);
    if (token.empty()) continue;
    const util::spec::EventClause c = util::spec::split_event(kWho, token);
    const std::string& kind = c.kind;
    const std::string& args = c.args;

    FaultEvent e;
    e.slot = static_cast<std::uint32_t>(parse_u64(c.slot, token));
    if (kind == "down" || kind == "up") {
      e.kind = kind == "down" ? FaultKind::kBsDown : FaultKind::kBsUp;
      e.bs = static_cast<std::uint32_t>(parse_u64(args, token));
    } else if (kind == "wire") {
      // wire@SLOT:A-BxS — edge (A, B) scaled to S.
      e.kind = FaultKind::kWireScale;
      const std::size_t dash = args.find('-');
      const std::size_t x = args.find('x', dash == std::string::npos ? 0
                                                                    : dash);
      MANETCAP_CHECK_MSG(dash != std::string::npos && x != std::string::npos,
                         "FaultPlan: expected wire@SLOT:A-BxSCALE, got '"
                             << token << "'");
      e.bs = static_cast<std::uint32_t>(
          parse_u64(args.substr(0, dash), token));
      e.bs2 = static_cast<std::uint32_t>(
          parse_u64(args.substr(dash + 1, x - dash - 1), token));
      e.scale = parse_f64(args.substr(x + 1), token);
    } else if (kind == "region") {
      // region@SLOT:X,Y,R — disk of radius R around (X, Y).
      e.kind = FaultKind::kRegional;
      const auto parts = util::spec::split(args, ',');
      MANETCAP_CHECK_MSG(parts.size() == 3,
                         "FaultPlan: expected region@SLOT:X,Y,R, got '"
                             << token << "'");
      e.center.x = parse_f64(util::spec::trim(parts[0]), token);
      e.center.y = parse_f64(util::spec::trim(parts[1]), token);
      e.radius = parse_f64(util::spec::trim(parts[2]), token);
    } else if (kind == "leave" || kind == "join") {
      e.kind = kind == "leave" ? FaultKind::kMsLeave : FaultKind::kMsJoin;
      e.ms = static_cast<std::uint32_t>(parse_u64(args, token));
    } else if (kind == "shift") {
      // shift@SLOT:REGIME — switch the mobility process mid-run.
      e.kind = FaultKind::kMobilityShift;
      const std::string regime = util::spec::trim(args);
      std::uint8_t m = kNumMobilityRegimes;
      for (std::uint8_t i = 0; i < kNumMobilityRegimes; ++i) {
        if (regime == kMobilityNames[i]) m = i;
      }
      MANETCAP_CHECK_MSG(m < kNumMobilityRegimes,
                         "FaultPlan: unknown mobility regime '"
                             << regime << "' in '" << token
                             << "' (want iid|walk|pull|brownian)");
      e.mobility = m;
    } else {
      MANETCAP_CHECK_MSG(false, "FaultPlan: unknown fault kind '"
                                    << kind << "' in '" << token << "'");
    }
    plan.events.push_back(e);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& e : events) {
    os << "  slot " << e.slot << ": ";
    switch (e.kind) {
      case FaultKind::kBsDown:
        os << "BS " << e.bs << " down";
        break;
      case FaultKind::kBsUp:
        os << "BS " << e.bs << " up";
        break;
      case FaultKind::kWireScale:
        os << "wire (" << e.bs << "," << e.bs2 << ") scale " << e.scale;
        break;
      case FaultKind::kRegional:
        os << "regional outage, radius " << e.radius << " at ("
           << e.center.x << "," << e.center.y << ")";
        break;
      case FaultKind::kMsLeave:
        os << "MS " << e.ms << " leaves";
        break;
      case FaultKind::kMsJoin:
        os << "MS " << e.ms << " joins";
        break;
      case FaultKind::kMobilityShift:
        os << "mobility shift to " << mobility_name(e.mobility);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace manetcap::sim
