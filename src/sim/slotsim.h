// Slot-level packet simulation — validates that the fluid capacity numbers
// are achievable by a real schedule (Definition 5's feasibility is about
// actual spatio-temporal schedules, not fluid bounds).
//
// Time is slotted. Each slot: the mobility process advances, policy S*
// selects the feasible wireless pairs, and the active routing scheme moves
// packets (one packet per direction per scheduled pair; wired backbone
// edges accumulate c(n) units of credit per slot). Sources are saturated;
// delivered throughput per flow is the measurement.
//
// Schemes: A (squarelet H-V relay), two-hop relay, B (uplink → wired →
// downlink) and C (static cellular TDMA: cells activate by color, the
// active cell serves one uplink and one downlink per slot on its two
// symmetric channels, Definition 13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/traffic.h"
#include "phy/interference.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/run_config.h"

namespace manetcap::sim {

class Trace;  // sim/trace.h — per-packet event capture

enum class SlotScheme { kSchemeA, kTwoHop, kSchemeB, kSchemeC };

std::string to_string(SlotScheme s);

enum class SlotMobility { kIid, kWalk, kPullHome, kBrownian };

/// Run options. The shared (slots, warmup, phy, sinr) quartet lives in the
/// RunConfig base (sim/run_config.h) — defaults 4000/400 — so `opt.slots`
/// etc. keep their flat spelling. Under a non-protocol `phy` the
/// S*-scheduled pairs are re-evaluated per docs/PHY.md; kProtocol — the
/// default — takes the historical code path exactly (no model is even
/// constructed), so protocol runs stay byte-identical. The SINR backends
/// apply to the S*-driven schemes (A / two-hop / B); scheme C is
/// TDMA-scheduled without instantaneous geometry and rejects a
/// non-protocol backend with a named error.
struct SlotSimOptions : RunConfig {
  SlotScheme scheme = SlotScheme::kSchemeA;
  SlotMobility mobility = SlotMobility::kIid;
  double ct = 0.3;              // S* constant c_T (see LinkCapacityModel)
  double delta = 1.0;           // guard factor Δ
  std::size_t max_queue = 64;   // per-node relay queue bound (backpressure)
  /// In-flight packets each source keeps outstanding. The default 4
  /// saturates the pipeline (throughput measurement); 1 probes the
  /// lightly-loaded end-to-end delay without queueing.
  std::size_t source_backlog = 4;
  std::uint64_t seed = 1;
  /// Optional audit sink. Counters (and, when metrics->enable_series() was
  /// called before the run, the per-slot time series) are accumulated into
  /// it at end of run. Null keeps the audit internal: the conservation
  /// check below still runs, nothing is exported.
  Metrics* metrics = nullptr;
  /// Optional per-packet event sink (sim/trace.h). When set, every
  /// inject / relay / wired-forward / delivery is appended with its slot,
  /// flow, hop and endpoints, and the routing context (H-V paths, serving
  /// sets, wired credit rate) is captured so verify_trace can replay the
  /// run without rebuilding the network. Null (the default) costs one
  /// untaken branch per event.
  Trace* trace = nullptr;
  /// Optional runtime fault/churn timeline (sim/faults.h): BS
  /// outages/revivals, wired-edge degradation, regional outages, MS
  /// leave/join churn and mobility-regime shifts. Validated against the
  /// run shape at start. Infrastructure events require scheme B or C
  /// (churn and shifts run under any scheme); schemes degrade gracefully —
  /// affected MSs re-home to the nearest live BS, scheme-C cells re-color
  /// over the live set, and a dying BS's queue (or a departing MS's
  /// packets) is dropped with an explicit counter so the conservation
  /// identity still closes. Null or an empty plan is exactly a fault-free
  /// run (byte-identical traces). See docs/FAULTS.md.
  const FaultPlan* faults = nullptr;
  /// End-of-run packet-conservation audit:
  ///   injected == delivered + queued_end + dropped,
  /// the running in-network count must match the actual queue occupancy,
  /// and the flow-control windows must equal injected − delivered. One
  /// O(n + k) pass; disable only to reproduce a historical buggy run.
  bool check_conservation = true;

  // --- single-run scale knobs (docs/SCALE.md) ------------------------------
  /// Spatial stripes the per-slot parallel phases (incremental hash
  /// maintenance, the S* lone-neighbor scan, and the overlapped mobility
  /// step) fan out over on util::ThreadPool::shared(). 1 = the serial
  /// legacy path. Results — traces, metrics, every result field — are
  /// bit-identical for every value; scheme C has no S* phase and ignores
  /// the knob.
  std::size_t shards = 1;
  /// Record per-packet end-to-end delays (the delay vector grows with the
  /// delivered count). Off drops mean_delay/p95_delay from the result in
  /// exchange for a flat memory profile on very long horizons.
  bool track_delays = true;
  /// Checkpointing: every `checkpoint_every` slots (0 = never) the full
  /// simulator state — queues, flow windows, positions, RNG streams, wired
  /// credits, fault cursor, audit, in-flight trace — is written atomically
  /// (tmp + rename) to `checkpoint_path` in the MCCKPT1 format.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume: restore state from this MCCKPT1 file (written by a previous
  /// run with the identical configuration — validated by fingerprint) and
  /// continue mid-horizon. The completed run is byte-identical to an
  /// uninterrupted one.
  std::string resume_path;
};

struct SlotSimResult {
  double mean_flow_rate = 0.0;   // mean over flows, packets/slot
  double min_flow_rate = 0.0;
  double p10_flow_rate = 0.0;    // robust lower measure
  double pairs_per_slot = 0.0;   // avg #S*-scheduled pairs
  std::uint64_t total_delivered = 0;
  std::size_t measured_slots = 0;

  // End-to-end delay (injection slot → delivery slot) over packets
  // delivered during the measurement window. The capacity–delay tradeoff
  // is the paper's companion axis (refs [9], [11], [12]).
  double mean_delay = 0.0;
  double p95_delay = 0.0;

  // Lifetime packet audit (whole run, warmup included; total_delivered
  // above counts the measurement window only). The conservation identity
  //   injected == delivered_lifetime + queued_end + dropped
  // holds for every scheme and is checked at end of run unless
  // SlotSimOptions::check_conservation is false.
  std::uint64_t injected = 0;
  std::uint64_t delivered_lifetime = 0;
  std::uint64_t queued_end = 0;  // packets resident in queues at the end
  /// Packets removed without delivery. 0 unless a fault plan is active:
  /// the simulator models backpressure, never loss, except for queues lost
  /// with a dying BS or packets orphaned by node churn.
  std::uint64_t dropped = 0;
  /// Of `dropped`, packets lost to a BS outage.
  std::uint64_t dropped_bs_outage = 0;
  /// Of `dropped`, packets lost to MS churn (a departing MS's own queue
  /// plus every in-flight packet addressed to it).
  std::uint64_t dropped_ms_churn = 0;

  /// Resident bytes of per-run simulator state at end of run (queue slabs,
  /// positions, routing CSR, spatial hash, wired credits, scratch, delay
  /// log) — the numerator of the bytes-per-MS scaling metric
  /// bench/slotsim_scale gates.
  std::uint64_t state_bytes = 0;
};

/// Runs the simulation for permutation traffic `dest` on `net` — the
/// historical saturated-CBR entry point (every flow unlimited, always on,
/// windowed by source_backlog).
SlotSimResult run_slot_sim(const net::Network& net,
                           const std::vector<std::uint32_t>& dest,
                           const SlotSimOptions& options);

/// Runs the simulation for a traffic-model demand set (net/traffic.h):
/// one flow per MS with its own destination, optional finite size,
/// start slot and on-off arrival process. Injection is gated per flow by
/// the demand's arrival process on top of the source_backlog window;
/// everything else — scheduling, routing, the conservation audit — is
/// shared with the permutation entry point, and a default demand set
/// (dest_of(demands) permutation, unlimited, always-on, start 0) is
/// byte-identical to it.
SlotSimResult run_slot_sim(const net::Network& net,
                           const std::vector<net::FlowDemand>& demands,
                           const SlotSimOptions& options);

}  // namespace manetcap::sim
