// Wired-backbone token-bucket state shared by the packet engine (SlotSim)
// and the flow-level engine (FlowSim). Both key edges by the packed
// unordered (min BS, max BS) pair and accrue c(n)·scale units of credit
// per slot with a bucket depth of max(1, 4·c).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace manetcap::sim {

/// Wired-edge token-bucket state, keyed by the unordered BS pair.
/// `scale` is the fault-injection bandwidth factor (1 when healthy, 0 when
/// severed); the accrual rate is c(n)·scale.
struct WireState {
  double credit = 0.0;
  std::size_t last_topup = 0;
  double scale = 1.0;
};

/// Packs an unordered BS pair into the shared 64-bit edge key.
inline std::uint64_t wire_edge_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
         std::max(a, b);
}

/// Open-addressing map from a packed (min BS, max BS) edge key to its
/// WireState. The legacy simulator kept this in a std::map — a pointer
/// chase plus an O(log E) walk per hop-0 packet per slot. Behavior is
/// keyed state only (the map is never iterated), so probing order cannot
/// leak into results.
class WireCreditMap {
 public:
  void reserve_edges(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected + 1) cap <<= 1;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, WireState{});
  }

  /// Returns the slot for `key`, default-constructing it when absent;
  /// second is true on first use (the try_emplace contract).
  std::pair<WireState*, bool> try_emplace(std::uint64_t key) {
    if (keys_.empty()) reserve_edges(8);
    if (2 * (count_ + 1) > keys_.size()) grow();
    std::size_t i = slot_of(key, keys_.size());
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return {&vals_[i], false};
      i = (i + 1) & (keys_.size() - 1);
    }
    keys_[i] = key;
    ++count_;
    return {&vals_[i], true};
  }

  std::size_t size() const { return count_; }

  /// Checkpoint iteration: fn(key, state) in ascending key order. The
  /// probe layout stays unobservable — a map restored from this order is
  /// behaviorally identical regardless of the insertion history that
  /// produced it.
  template <class Fn>
  void for_each_sorted(Fn&& fn) const {
    std::vector<std::size_t> idx;
    idx.reserve(count_);
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kEmpty) idx.push_back(i);
    std::sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
      return keys_[a] < keys_[b];
    });
    for (std::size_t i : idx) fn(keys_[i], vals_[i]);
  }

  std::uint64_t memory_bytes() const {
    return keys_.capacity() * sizeof(std::uint64_t) +
           vals_.capacity() * sizeof(WireState);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::size_t slot_of(std::uint64_t key, std::size_t cap) {
    // SplitMix64 finalizer: edge keys are dense low-entropy pairs.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((x ^ (x >> 31)) & (cap - 1));
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<WireState> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.assign(old_keys.size() * 2, WireState{});
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = slot_of(old_keys[i], keys_.size());
      while (keys_[j] != kEmpty) j = (j + 1) & (keys_.size() - 1);
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<WireState> vals_;
  std::size_t count_ = 0;
};

}  // namespace manetcap::sim
