#include "sim/flowsim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "analysis/stats.h"
#include "routing/rate_structure.h"
#include "routing/scheme_a.h"
#include "routing/scheme_c.h"
#include "routing/static_multihop.h"
#include "routing/two_hop.h"
#include "sim/route_tables.h"
#include "sim/wire_credit.h"
#include "util/check.h"

namespace manetcap::sim {

std::string to_string(FlowScheme s) {
  switch (s) {
    case FlowScheme::kSchemeA:
      return "scheme-A";
    case FlowScheme::kTwoHop:
      return "two-hop";
    case FlowScheme::kSchemeB:
      return "scheme-B";
    case FlowScheme::kSchemeC:
      return "scheme-C";
    case FlowScheme::kStaticMultihop:
      return "static-multihop";
  }
  return "?";
}

namespace {

template <class T>
std::uint64_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Per-flow TDMA share over the incidence: flow f may run at the smallest
/// cap/load ratio among the constraints it touches. Simultaneously
/// feasible (Σ_f coeff·r_f ≤ Σ_f coeff·cap/load ≤ cap since
/// Σ coeff ≤ load), and min over served flows equals the constraint
/// solver's λ exactly — the binding row is incident to some flow.
void tdma_shares(const routing::RateStructure& rs, std::vector<double>& r) {
  const std::size_t n = r.size();
  for (std::size_t f = 0; f < n; ++f) {
    if (rs.flow_served[f] == 0) continue;
    double share = std::numeric_limits<double>::infinity();
    for (std::uint32_t j = rs.flow_start[f]; j < rs.flow_start[f + 1]; ++j) {
      const flow::Constraint& c = rs.constraints[rs.incid_cid[j]];
      share = std::min(share, c.capacity / c.unit_load);
    }
    r[f] = std::isfinite(share) ? share : 0.0;
  }
}

/// Bounded max-min refinement: each round raises every flow by the
/// largest uniform increment its slackest path allows
/// (δ_f = min over incident c of slack_c / unit_load_c). The simultaneous
/// raise stays feasible for the same Σ coeff ≤ load argument as above.
void water_fill(const routing::RateStructure& rs, std::size_t rounds,
                std::vector<double>& r) {
  const std::size_t n = r.size();
  std::vector<double> usage(rs.constraints.size(), 0.0);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::fill(usage.begin(), usage.end(), 0.0);
    for (std::size_t f = 0; f < n; ++f) {
      if (rs.flow_served[f] == 0) continue;
      for (std::uint32_t j = rs.flow_start[f]; j < rs.flow_start[f + 1];
           ++j)
        usage[rs.incid_cid[j]] += rs.incid_coeff[j] * r[f];
    }
    bool raised = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (rs.flow_served[f] == 0) continue;
      double delta = std::numeric_limits<double>::infinity();
      for (std::uint32_t j = rs.flow_start[f]; j < rs.flow_start[f + 1];
           ++j) {
        const std::uint32_t cid = rs.incid_cid[j];
        const flow::Constraint& c = rs.constraints[cid];
        const double slack = c.capacity - usage[cid];
        delta = std::min(delta, slack / c.unit_load);
      }
      if (std::isfinite(delta) && delta > 0.0) {
        r[f] += delta;
        raised = true;
      }
    }
    if (!raised) break;
  }
}

/// One resolved churn transition (slot ascending, plan order preserved).
struct ChurnEvent {
  std::size_t slot = 0;
  std::uint32_t ms = 0;
  bool join = false;
};

FlowSimResult run_flow_sim_impl(const net::Network& net,
                                const std::vector<std::uint32_t>& dest,
                                const std::vector<net::FlowDemand>* demands,
                                const FlowSimOptions& opt) {
  const std::size_t n = net.num_ms();
  MANETCAP_CHECK_MSG(dest.size() == n,
                     "FlowSimOptions: dest must hold one entry per MS");
  net::validate_traffic_dest(dest, n, "FlowSimOptions");
  MANETCAP_CHECK_MSG(opt.warmup < opt.slots,
                     "FlowSimOptions: warmup (" << opt.warmup
                         << ") must be < slots (" << opt.slots << ")");
  MANETCAP_CHECK_MSG(opt.epoch_slots >= 1,
                     "FlowSimOptions: epoch_slots must be >= 1");

  // Churn timeline: the fluid engine takes leave/join only. Liveness is
  // piecewise constant over epochs (boundaries are clamped to churn
  // slots below), which is exactly the granularity the fluid model has.
  std::vector<ChurnEvent> churn;
  std::vector<std::uint8_t> alive;  // empty = everyone present throughout
  if (opt.faults != nullptr) {
    opt.faults->validate(net.num_bs(), opt.slots, n);
    MANETCAP_CHECK_MSG(
        !opt.faults->has_infra() && !opt.faults->has_shift(),
        "FlowSimOptions: the fluid engine accepts churn-only fault plans "
        "(leave@/join@); infrastructure and mobility-shift events need the "
        "slots engine");
    for (const FaultEvent& e : opt.faults->events)
      churn.push_back({e.slot, e.ms, e.kind == FaultKind::kMsJoin});
  }
  if (!churn.empty()) {
    alive.assign(n, 1);
    // An MS whose first event is a join starts the run absent (the
    // packet engine's rule).
    std::vector<std::uint8_t> seen(n, 0);
    for (const ChurnEvent& e : churn) {
      if (seen[e.ms] != 0) continue;
      seen[e.ms] = 1;
      if (e.join) alive[e.ms] = 0;
    }
  }

  // --- rate structure from the routing evaluator ---------------------------
  routing::RateStructure rs;
  FlowSimResult res;
  res.measured_slots = opt.slots - opt.warmup;
  flow::ThroughputResult tp;
  switch (opt.scheme) {
    case FlowScheme::kSchemeA: {
      const auto r = routing::SchemeA().evaluate(net, dest, nullptr,
                                                 opt.bandwidth_share, &rs);
      tp = r.throughput;
      res.lambda_symmetric = r.lambda_symmetric;
      res.degenerate = r.degenerate;
      break;
    }
    case FlowScheme::kTwoHop: {
      const auto r = routing::TwoHopRelay().evaluate(net, dest, &rs);
      tp = r.throughput;
      res.lambda_symmetric = r.lambda_symmetric;
      break;
    }
    case FlowScheme::kSchemeB: {
      const auto r = routing::SchemeB(opt.grouping)
                         .evaluate(net, dest, nullptr, opt.bandwidth_share,
                                   &rs);
      tp = r.throughput;
      res.lambda_symmetric = r.lambda_symmetric;
      break;
    }
    case FlowScheme::kSchemeC: {
      const auto r = routing::SchemeC(opt.delta).evaluate(net, dest, &rs);
      tp = r.throughput;
      res.lambda_symmetric = r.lambda_symmetric;
      break;
    }
    case FlowScheme::kStaticMultihop: {
      const auto r = routing::StaticMultihop().evaluate(net, dest, &rs);
      tp = r.throughput;
      res.lambda_symmetric = r.lambda_symmetric;
      break;
    }
  }
  res.lambda_strict = tp.lambda;
  res.bottleneck = tp.bottleneck;
  res.bottleneck_label = tp.bottleneck_label;

  Metrics audit;
  if (opt.metrics != nullptr && opt.metrics->series_enabled())
    audit.enable_series(opt.slots, opt.metrics->series_stride());

  if (res.degenerate) {
    // Scheme cannot operate at this size: nothing injected, identity holds
    // trivially (0 == 0 + 0 + 0).
    if (opt.metrics != nullptr) opt.metrics->absorb(std::move(audit));
    return res;
  }

  // --- rate allocation -----------------------------------------------------
  std::vector<double> rate(n, 0.0);
  tdma_shares(rs, rate);
  if (opt.maxmin_rounds > 0) water_fill(rs, opt.maxmin_rounds, rate);
  for (std::size_t f = 0; f < n; ++f)
    if (rs.flow_served[f] != 0) ++res.served_flows;

  // --- wired-credit pacing setup (infrastructure schemes) ------------------
  // Each cross-BS flow rides ONE wired edge — the first serving BS of its
  // source paired with the first serving BS of its destination, the same
  // edge SlotSim's wired_step drives — and shares that edge's token bucket
  // with every other flow mapped to it. This is deliberately more
  // restrictive than the evaluator's spread/Valiant aggregate: it is where
  // the flow engine models per-edge contention the closed form averages
  // away.
  constexpr std::uint32_t kNoEdge = ~std::uint32_t{0};
  std::vector<std::uint32_t> flow_edge;
  std::vector<std::uint64_t> edge_keys;
  WireCreditMap credit;
  const bool infra = opt.scheme == FlowScheme::kSchemeB ||
                     opt.scheme == FlowScheme::kSchemeC;
  if (infra) {
    const ServingTables st =
        opt.scheme == FlowScheme::kSchemeB
            ? build_scheme_b_serving(net, opt.ct, opt.delta)
            : build_scheme_c_association(net);
    flow_edge.assign(n, kNoEdge);
    std::unordered_map<std::uint64_t, std::uint32_t> edge_idx;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (rs.flow_served[s] == 0) continue;
      const std::uint32_t a = st.serving_ids[st.serving_start[s]];
      const std::uint32_t b = st.serving_ids[st.serving_start[dest[s]]];
      if (a == b) continue;  // intra-BS: never touches a wire
      const std::uint64_t key = wire_edge_key(a, b);
      auto [it, fresh] = edge_idx.try_emplace(
          key, static_cast<std::uint32_t>(edge_keys.size()));
      if (fresh) {
        edge_keys.push_back(key);
        credit.try_emplace(key);
      }
      flow_edge[s] = it->second;
    }
  }
  const double wired_c = net.num_bs() > 0 ? net.params().c() : 0.0;

  // Per-flow demand decorations; identity values on the legacy path, so
  // a default demand set reproduces the dest overload's arithmetic
  // exactly (duty 1.0 and start 0.0 are exact multiplicative/additive
  // identities in IEEE arithmetic).
  const auto duty_of = [&](std::uint32_t f) {
    if (demands == nullptr) return 1.0;
    const net::FlowDemand& d = (*demands)[f];
    return d.always_on() ? 1.0 : d.on_mean / (d.on_mean + d.off_mean);
  };
  const auto start_of = [&](std::uint32_t f) {
    return demands == nullptr ? 0.0
                              : static_cast<double>((*demands)[f].start);
  };
  const auto size_of = [&](std::uint32_t f) {
    return demands == nullptr ? std::numeric_limits<double>::infinity()
                              : static_cast<double>((*demands)[f].size);
  };
  const auto flow_live = [&](std::uint32_t f) {
    return alive.empty() || (alive[f] != 0 && alive[dest[f]] != 0);
  };

  // --- epoch loop: continuous volumes, floored audit units -----------------
  std::vector<double> inject_cum(n, 0.0);
  std::vector<double> deliver_cum(n, 0.0);
  std::vector<double> drop_cum(n, 0.0);  // churn-flushed backlog per flow
  std::vector<double> deliver_at_warmup(n, 0.0);
  std::vector<double> edge_demand(edge_keys.size(), 0.0);
  std::vector<double> edge_grant(edge_keys.size(), 1.0);
  std::uint64_t prev_inj = 0, prev_del = 0, prev_wired = 0, prev_drop = 0;
  std::size_t next_churn = 0;
  std::size_t t0 = 0;
  while (t0 < opt.slots) {
    std::size_t t1 = std::min(opt.slots, t0 + opt.epoch_slots);
    if (t0 < opt.warmup && opt.warmup < t1) t1 = opt.warmup;
    // Apply churn transitions due at the start of t0, then clamp the
    // epoch so no transition falls strictly inside it — liveness is
    // constant over [t0, t1).
    while (next_churn < churn.size() && churn[next_churn].slot <= t0) {
      const ChurnEvent& e = churn[next_churn++];
      if (e.join) {
        alive[e.ms] = 1;
        audit.inc(Counter::kMsJoined);
        continue;
      }
      alive[e.ms] = 0;
      audit.inc(Counter::kMsLeft);
      // Flush the fluid backlog of every flow the leaver sources or
      // terminates — the packet engine's leave-time queue drops.
      for (std::uint32_t f = 0; f < n; ++f) {
        if (f != e.ms && dest[f] != e.ms) continue;
        drop_cum[f] = inject_cum[f] - deliver_cum[f];
      }
    }
    if (next_churn < churn.size() && churn[next_churn].slot < t1)
      t1 = churn[next_churn].slot;
    const double dt = static_cast<double>(t1 - t0);

    // Wired pacing: aggregate each edge's desired transit volume, then
    // grant min(1, bucket/demand) uniformly to the flows on the edge. The
    // bucket is SlotSim's exact token bucket (accrual c·scale per slot,
    // depth max(1, 4c)).
    if (!edge_keys.empty()) {
      std::fill(edge_demand.begin(), edge_demand.end(), 0.0);
      for (std::uint32_t f = 0; f < n; ++f) {
        if (flow_edge[f] == kNoEdge) continue;
        if (!flow_live(f)) continue;
        const double start = std::max(static_cast<double>(t0),
                                      start_of(f) + rs.flow_hops[f]);
        const double window = std::max(0.0, static_cast<double>(t1) - start);
        edge_demand[flow_edge[f]] += rate[f] * duty_of(f) * window;
      }
      for (std::size_t e = 0; e < edge_keys.size(); ++e) {
        WireState* w = credit.try_emplace(edge_keys[e]).first;
        w->credit = std::min(w->credit + wired_c * w->scale * dt,
                             std::max(1.0, 4.0 * wired_c));
        if (edge_demand[e] <= 0.0) {
          edge_grant[e] = 1.0;
          continue;
        }
        const double g = std::min(1.0, w->credit / edge_demand[e]);
        edge_grant[e] = g;
        w->credit -= g * edge_demand[e];
        if (g < 1.0) audit.inc(Counter::kWiredCreditStall);
      }
    }

    std::uint64_t inj_units = 0, del_units = 0, queued_units = 0;
    std::uint64_t wired_units = 0, drop_units = 0;
    for (std::uint32_t f = 0; f < n; ++f) {
      if (rs.flow_served[f] == 0) continue;
      const bool live = flow_live(f);
      const double duty = duty_of(f);
      if (live) {
        const double istart =
            std::max(static_cast<double>(t0), start_of(f));
        const double iwin =
            std::max(0.0, static_cast<double>(t1) - istart);
        inject_cum[f] =
            std::min(inject_cum[f] + rate[f] * duty * iwin, size_of(f));
      }
      const double start = std::max(static_cast<double>(t0),
                                    start_of(f) + rs.flow_hops[f]);
      const double window =
          live ? std::max(0.0, static_cast<double>(t1) - start) : 0.0;
      double vol = rate[f] * duty * window;
      const bool wired = flow_edge.size() == n && flow_edge[f] != kNoEdge;
      if (wired) vol *= edge_grant[flow_edge[f]];
      // Fluid can never deliver more than was injected and not dropped
      // (pipeline depth only delays, grants only shrink).
      deliver_cum[f] =
          std::min(deliver_cum[f] + vol, inject_cum[f] - drop_cum[f]);
      const auto iu = static_cast<std::uint64_t>(inject_cum[f]);
      const auto du = static_cast<std::uint64_t>(deliver_cum[f]);
      const auto dru = static_cast<std::uint64_t>(drop_cum[f]);
      inj_units += iu;
      del_units += du;
      drop_units += dru;
      queued_units += iu - du - dru;
      if (wired) wired_units += du;
    }
    audit.add(Counter::kInjected, inj_units - prev_inj);
    audit.add(Counter::kDelivered, del_units - prev_del);
    audit.add(Counter::kWiredForwarded, wired_units - prev_wired);
    audit.add(Counter::kDropped, drop_units - prev_drop);
    audit.add(Counter::kDroppedMsChurn, drop_units - prev_drop);
    prev_inj = inj_units;
    prev_del = del_units;
    prev_wired = wired_units;
    prev_drop = drop_units;
    audit.sample_slot(static_cast<std::uint32_t>(t1 - 1), queued_units, 0, 0,
                      0);

    if (t1 == opt.warmup) deliver_at_warmup = deliver_cum;
    t0 = t1;
  }

  // --- results -------------------------------------------------------------
  std::vector<double> measured(n, 0.0);
  for (std::size_t f = 0; f < n; ++f)
    measured[f] = (deliver_cum[f] - deliver_at_warmup[f]) /
                  static_cast<double>(res.measured_slots);
  const auto summary = analysis::summarize(measured);
  res.mean_flow_rate = summary.mean;
  res.min_flow_rate = summary.min;
  res.p10_flow_rate = analysis::quantile(measured, 0.10);

  res.injected = prev_inj;
  res.delivered_lifetime = prev_del;
  res.dropped = prev_drop;
  res.queued_end = res.injected - res.delivered_lifetime - res.dropped;
  if (opt.check_conservation) {
    MANETCAP_CHECK_MSG(
        res.injected ==
            res.delivered_lifetime + res.queued_end + res.dropped,
        "flow conservation violated: injected != delivered + backlog + "
        "dropped");
  }
  res.state_bytes = vec_bytes(rate) + vec_bytes(inject_cum) +
                    vec_bytes(deliver_cum) + vec_bytes(drop_cum) +
                    vec_bytes(deliver_at_warmup) +
                    vec_bytes(measured) + vec_bytes(flow_edge) +
                    vec_bytes(edge_keys) + vec_bytes(edge_demand) +
                    vec_bytes(edge_grant) + vec_bytes(rs.constraints) +
                    vec_bytes(rs.flow_start) + vec_bytes(rs.incid_cid) +
                    vec_bytes(rs.incid_coeff) + vec_bytes(rs.flow_hops) +
                    vec_bytes(rs.flow_served) + credit.memory_bytes();
  if (opt.metrics != nullptr) opt.metrics->absorb(std::move(audit));
  return res;
}

}  // namespace

FlowSimResult run_flow_sim(const net::Network& net,
                           const std::vector<std::uint32_t>& dest,
                           const FlowSimOptions& options) {
  return run_flow_sim_impl(net, dest, nullptr, options);
}

FlowSimResult run_flow_sim(const net::Network& net,
                           const std::vector<net::FlowDemand>& demands,
                           const FlowSimOptions& options) {
  net::validate_demands(demands, net.num_ms());
  const std::vector<std::uint32_t> dest = net::dest_of(demands);
  return run_flow_sim_impl(net, dest, &demands, options);
}

}  // namespace manetcap::sim
