#include "sim/engine.h"

#include <memory>
#include <stdexcept>

#include "capacity/regimes.h"
#include "mobility/process.h"
#include "net/traffic.h"
#include "rng/rng.h"
#include "sched/sstar.h"

namespace manetcap::sim {

std::string to_string(EngineKind k) {
  switch (k) {
    case EngineKind::kFluid:
      return "fluid";
    case EngineKind::kSlots:
      return "slots";
    case EngineKind::kAuto:
      return "auto";
  }
  return "?";
}

EngineKind parse_engine(const std::string& s) {
  if (s == "fluid") return EngineKind::kFluid;
  if (s == "slots") return EngineKind::kSlots;
  if (s == "auto") return EngineKind::kAuto;
  throw std::runtime_error("unknown engine: " + s +
                           " (expected fluid|slots|auto)");
}

FlowScheme flow_scheme_for(const net::ScalingParams& params) {
  const auto regime = capacity::classify(params);
  if (!params.with_bs) {
    return regime == capacity::MobilityRegime::kStrong
               ? FlowScheme::kSchemeA
               : FlowScheme::kStaticMultihop;
  }
  switch (regime) {
    case capacity::MobilityRegime::kStrong:
      return FlowScheme::kSchemeA;
    case capacity::MobilityRegime::kWeak:
      return FlowScheme::kSchemeB;
    case capacity::MobilityRegime::kTrivial:
      return FlowScheme::kSchemeC;
  }
  return FlowScheme::kSchemeA;
}

SlotScheme slot_scheme_for(const net::ScalingParams& params) {
  // The packet engine has no static-multihop; pure ad hoc networks fall
  // back to scheme A regardless of regime.
  if (!params.with_bs) return SlotScheme::kSchemeA;
  switch (capacity::classify(params)) {
    case capacity::MobilityRegime::kStrong:
      return SlotScheme::kSchemeA;
    case capacity::MobilityRegime::kWeak:
      return SlotScheme::kSchemeB;
    case capacity::MobilityRegime::kTrivial:
      return SlotScheme::kSchemeC;
  }
  return SlotScheme::kSchemeA;
}

net::BsPlacement engine_placement(const net::ScalingParams& params,
                                  bool scheme_c, net::BsPlacement base) {
  if (!params.with_bs) return net::BsPlacement::kUniform;
  if (scheme_c && !params.cluster_free())
    return net::BsPlacement::kClusterGrid;
  return base;
}

double sinr_survival_ratio(const net::Network& net, phy::PhyKind kind,
                           const phy::SinrParams& sinr, std::uint64_t seed,
                           std::size_t snapshots) {
  if (kind == phy::PhyKind::kProtocol || snapshots == 0) return 1.0;
  const SlotSimOptions defaults;  // canonical ct / Δ shared by both engines
  const auto model = phy::make_interference_model(kind, defaults.delta, sinr);
  sched::SStarScheduler sstar(defaults.ct, defaults.delta);
  mobility::IidStationaryMobility process(net.ms_home(), net.shape(),
                                          1.0 / net.params().f(), seed);
  const double rt = sstar.range_for(net.num_ms() + net.num_bs());
  phy::InterferenceModel::Workspace phyws;
  std::uint64_t total = 0;
  std::uint64_t kept = 0;
  for (std::size_t s = 0; s < snapshots; ++s) {
    std::vector<geom::Point> pos = process.positions();
    pos.insert(pos.end(), net.bs_pos().begin(), net.bs_pos().end());
    auto pairs = sstar.feasible_pairs(pos);
    total += pairs.size();
    phy::PhyStats ps;
    model->filter_pairs(pos, rt, pairs, phyws, &ps);
    kept += pairs.size();
    process.step();
  }
  // An instance that never schedules a pair has nothing to derate.
  if (total == 0) return 1.0;
  return static_cast<double>(kept) / static_cast<double>(total);
}

double measure_instance(EngineKind kind, const EvalContext& ctx,
                        const EngineOptions& opt) {
  if (kind == EngineKind::kAuto) {
    kind = ctx.params.n < opt.auto_threshold ? EngineKind::kSlots
                                             : EngineKind::kFluid;
  }
  const auto regime = capacity::classify(ctx.params);
  if (kind == EngineKind::kFluid) {
    const FlowScheme scheme = flow_scheme_for(ctx.params);
    const auto placement = engine_placement(
        ctx.params, scheme == FlowScheme::kSchemeC, opt.placement);
    const auto net =
        net::Network::build(ctx.params, opt.shape, placement, ctx.seed);
    rng::Xoshiro256 g(traffic_seed(ctx.seed));
    // The default spec takes the historical dest-overload path exactly; a
    // custom spec draws its demand set from the same canonical traffic
    // seed, so fluid and slots measure the same workload instance.
    std::vector<net::FlowDemand> demands;
    std::vector<std::uint32_t> dest;
    if (opt.traffic.is_default())
      dest = net::permutation_traffic(ctx.params.n, g);
    else
      demands = net::make_traffic_model(opt.traffic)->draw(ctx.params.n, g);
    const auto run = [&](const FlowSimOptions& o) {
      return opt.traffic.is_default() ? run_flow_sim(net, dest, o)
                                      : run_flow_sim(net, demands, o);
    };
    FlowSimOptions fopt;
    fopt.slots = opt.slots;
    fopt.warmup = opt.warmup;
    fopt.faults = opt.faults;
    fopt.grouping = regime == capacity::MobilityRegime::kWeak
                        ? routing::BsGrouping::kCluster
                        : routing::BsGrouping::kSquarelet;
    fopt.seed = ctx.seed;
    fopt.metrics = ctx.metrics;
    // Non-protocol backends derate the fluid engine's wireless capacities
    // by the instance's measured pair-survival ratio (docs/PHY.md).
    // Scheme C runs under the protocol model by design — see
    // EngineOptions::phy — so it takes no derate.
    const double survival =
        scheme == FlowScheme::kSchemeC
            ? 1.0
            : sinr_survival_ratio(net, opt.phy, opt.sinr,
                                  trial_seed(ctx.seed, 0, 2));
    if (survival == 0.0) return 0.0;  // no wireless pair ever clears β
    auto mean_rate = [&](FlowScheme s) {
      fopt.scheme = s;
      // Schemes A and B model the derate exactly (bandwidth_share cuts the
      // wireless legs, wires untouched). Two-hop and static multihop are
      // wireless-only, so a uniform capacity derate scales the achieved
      // rate linearly — apply it to the result instead.
      const bool shares = s == FlowScheme::kSchemeA || s == FlowScheme::kSchemeB;
      fopt.bandwidth_share = shares ? survival : 1.0;
      auto r = run(fopt);
      // Scheme A degenerates below the minimum grid; the paper's answer
      // (and fluid's) is the two-hop fallback, not a zero.
      if (s == FlowScheme::kSchemeA && r.degenerate) {
        fopt.scheme = FlowScheme::kTwoHop;
        fopt.bandwidth_share = 1.0;
        return run(fopt).mean_flow_rate * survival;
      }
      return shares ? r.mean_flow_rate : r.mean_flow_rate * survival;
    };
    // Strong regime with infrastructure: schemes A and B time-share, so the
    // hybrid rate is the sum — the same composition the fluid closed form
    // uses (λ = λ_A + λ_B).
    if (regime == capacity::MobilityRegime::kStrong && ctx.params.with_bs)
      return mean_rate(FlowScheme::kSchemeA) +
             mean_rate(FlowScheme::kSchemeB);
    return mean_rate(scheme);
  }
  const SlotScheme scheme = slot_scheme_for(ctx.params);
  const auto placement = engine_placement(
      ctx.params, scheme == SlotScheme::kSchemeC, opt.placement);
  const auto net =
      net::Network::build(ctx.params, opt.shape, placement, ctx.seed);
  rng::Xoshiro256 g(traffic_seed(ctx.seed));
  SlotSimOptions sopt;
  sopt.scheme = scheme;
  sopt.slots = opt.slots;
  sopt.warmup = opt.warmup;
  sopt.seed = ctx.seed;
  sopt.metrics = ctx.metrics;
  sopt.faults = opt.faults;
  // Scheme C is TDMA-scheduled (no per-slot S* geometry), so the engine
  // layer pins it to the protocol model rather than letting SlotSim reject
  // the combination — the sweep can then mix regimes under one --phy flag.
  sopt.phy = scheme == SlotScheme::kSchemeC ? phy::PhyKind::kProtocol
                                            : opt.phy;
  sopt.sinr = opt.sinr;
  if (!opt.traffic.is_default()) {
    const auto demands =
        net::make_traffic_model(opt.traffic)->draw(ctx.params.n, g);
    return run_slot_sim(net, demands, sopt).mean_flow_rate;
  }
  const auto dest = net::permutation_traffic(ctx.params.n, g);
  return run_slot_sim(net, dest, sopt).mean_flow_rate;
}

SweepEvaluator make_engine_evaluator(EngineKind kind,
                                     const EngineOptions& opt) {
  return [kind, opt](const EvalContext& ctx) {
    return measure_instance(kind, ctx, opt);
  };
}

}  // namespace manetcap::sim
