#include "sim/engine.h"

#include <stdexcept>

#include "capacity/regimes.h"
#include "net/traffic.h"
#include "rng/rng.h"

namespace manetcap::sim {

std::string to_string(EngineKind k) {
  switch (k) {
    case EngineKind::kFluid:
      return "fluid";
    case EngineKind::kSlots:
      return "slots";
    case EngineKind::kAuto:
      return "auto";
  }
  return "?";
}

EngineKind parse_engine(const std::string& s) {
  if (s == "fluid") return EngineKind::kFluid;
  if (s == "slots") return EngineKind::kSlots;
  if (s == "auto") return EngineKind::kAuto;
  throw std::runtime_error("unknown engine: " + s +
                           " (expected fluid|slots|auto)");
}

FlowScheme flow_scheme_for(const net::ScalingParams& params) {
  const auto regime = capacity::classify(params);
  if (!params.with_bs) {
    return regime == capacity::MobilityRegime::kStrong
               ? FlowScheme::kSchemeA
               : FlowScheme::kStaticMultihop;
  }
  switch (regime) {
    case capacity::MobilityRegime::kStrong:
      return FlowScheme::kSchemeA;
    case capacity::MobilityRegime::kWeak:
      return FlowScheme::kSchemeB;
    case capacity::MobilityRegime::kTrivial:
      return FlowScheme::kSchemeC;
  }
  return FlowScheme::kSchemeA;
}

SlotScheme slot_scheme_for(const net::ScalingParams& params) {
  // The packet engine has no static-multihop; pure ad hoc networks fall
  // back to scheme A regardless of regime.
  if (!params.with_bs) return SlotScheme::kSchemeA;
  switch (capacity::classify(params)) {
    case capacity::MobilityRegime::kStrong:
      return SlotScheme::kSchemeA;
    case capacity::MobilityRegime::kWeak:
      return SlotScheme::kSchemeB;
    case capacity::MobilityRegime::kTrivial:
      return SlotScheme::kSchemeC;
  }
  return SlotScheme::kSchemeA;
}

net::BsPlacement engine_placement(const net::ScalingParams& params,
                                  bool scheme_c, net::BsPlacement base) {
  if (!params.with_bs) return net::BsPlacement::kUniform;
  if (scheme_c && !params.cluster_free())
    return net::BsPlacement::kClusterGrid;
  return base;
}

double measure_instance(EngineKind kind, const EvalContext& ctx,
                        const EngineOptions& opt) {
  if (kind == EngineKind::kAuto) {
    kind = ctx.params.n < opt.auto_threshold ? EngineKind::kSlots
                                             : EngineKind::kFluid;
  }
  const auto regime = capacity::classify(ctx.params);
  if (kind == EngineKind::kFluid) {
    const FlowScheme scheme = flow_scheme_for(ctx.params);
    const auto placement = engine_placement(
        ctx.params, scheme == FlowScheme::kSchemeC, opt.placement);
    const auto net =
        net::Network::build(ctx.params, opt.shape, placement, ctx.seed);
    rng::Xoshiro256 g(traffic_seed(ctx.seed));
    const auto dest = net::permutation_traffic(ctx.params.n, g);
    FlowSimOptions fopt;
    fopt.slots = opt.slots;
    fopt.warmup = opt.warmup;
    fopt.grouping = regime == capacity::MobilityRegime::kWeak
                        ? routing::BsGrouping::kCluster
                        : routing::BsGrouping::kSquarelet;
    fopt.seed = ctx.seed;
    fopt.metrics = ctx.metrics;
    auto mean_rate = [&](FlowScheme s) {
      fopt.scheme = s;
      auto r = run_flow_sim(net, dest, fopt);
      // Scheme A degenerates below the minimum grid; the paper's answer
      // (and fluid's) is the two-hop fallback, not a zero.
      if (s == FlowScheme::kSchemeA && r.degenerate) {
        fopt.scheme = FlowScheme::kTwoHop;
        r = run_flow_sim(net, dest, fopt);
      }
      return r.mean_flow_rate;
    };
    // Strong regime with infrastructure: schemes A and B time-share, so the
    // hybrid rate is the sum — the same composition the fluid closed form
    // uses (λ = λ_A + λ_B).
    if (regime == capacity::MobilityRegime::kStrong && ctx.params.with_bs)
      return mean_rate(FlowScheme::kSchemeA) +
             mean_rate(FlowScheme::kSchemeB);
    return mean_rate(scheme);
  }
  const SlotScheme scheme = slot_scheme_for(ctx.params);
  const auto placement = engine_placement(
      ctx.params, scheme == SlotScheme::kSchemeC, opt.placement);
  const auto net =
      net::Network::build(ctx.params, opt.shape, placement, ctx.seed);
  rng::Xoshiro256 g(traffic_seed(ctx.seed));
  const auto dest = net::permutation_traffic(ctx.params.n, g);
  SlotSimOptions sopt;
  sopt.scheme = scheme;
  sopt.slots = opt.slots;
  sopt.warmup = opt.warmup;
  sopt.seed = ctx.seed;
  sopt.metrics = ctx.metrics;
  return run_slot_sim(net, dest, sopt).mean_flow_rate;
}

SweepEvaluator make_engine_evaluator(EngineKind kind,
                                     const EngineOptions& opt) {
  return [kind, opt](const EvalContext& ctx) {
    return measure_instance(kind, ctx, opt);
  };
}

}  // namespace manetcap::sim
