// Packet-conservation metrics for the slot simulator.
//
// A lightweight counter/gauge registry threaded through SlotSim,
// SStarScheduler (via sched::ScheduleStats) and run_sweep. The hot path is
// header-only: counter increments are plain uint64 adds, and the per-slot
// time series costs a single predictable branch per slot unless
// enable_series() was called. CSV flushing (the cold path) lives in
// metrics.cpp and writes under util::artifact_path, so every recorded
// experiment ships its audit trail next to its figure data.
//
// The audit exists to enforce the packet-conservation invariant
//
//     injected == delivered + queued_end + dropped
//
// at end of run for every scheme — a stalled, double-counted or silently
// dropped packet shows up as a counter mismatch instead of a quietly wrong
// λ(n). See docs/METRICS.md for the schema.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace manetcap::sim {

enum class Counter : std::size_t {
  kInjected = 0,           // packets accepted into the network at a source
  kDelivered,              // packets handed to their destination (lifetime)
  kRelayed,                // successful MS→MS relay hand-offs
  kInjectRejectQueueFull,  // source had window space but the queue was full
  kInjectRejectWindowFull, // flow-control window closed (backpressure, not loss)
  kRelayRejectQueueFull,   // relay hand-off blocked by a full next-hop queue
  kWiredForwarded,         // BS→BS transfers over the wired backbone
  kWiredCreditStall,       // wired edge lacked a full credit unit (token bucket)
  kWiredRejectQueueFull,   // wired forward blocked by a full remote BS queue
  kUndeliverable,          // packet whose destination has no serving BS
  kDropped,                // packets removed without delivery (must stay 0)
  kSchedCandidatePairs,    // mutual-lone S* pairs before the range check
  kSchedFeasiblePairs,     // pairs S* actually scheduled
  kSchedRangeRejected,     // mutual-lone pairs failing d < R_T
  kDownlinkStarved,        // scheme C active cell whose downlink channel
                           // found no deliverable hop-1 packet despite a
                           // non-empty BS queue (wasted downlink slot)
  kDroppedBsOutage,        // packets lost with a dying BS's queue (the only
                           // drop source; also counted under kDropped so
                           // the conservation identity stays one equation)
  kMsRehomed,              // MS serving-set recomputations after a BS
                           // outage/revival (failover events)
  kHop1Demoted,            // hop-1 packets demoted to hop 0 because their
                           // BS stopped serving the destination (they
                           // re-forward over the wired backbone)
  kUplinkBlockedBsDown,    // S* scheduled an uplink to a dead BS (wasted
                           // meeting under an active fault)
  kPhySinrRejected,        // S* pairs cut by the SINR backend (a direction
                           // below β; 0 under the protocol model)
  kPhyCsmaSuppressed,      // S* pairs backed off by the CSMA CCA pass
                           // before SINR (sinr-csma backend only)
  kInjectGatedTraffic,     // source idle by its traffic model: flow not yet
                           // started, size exhausted, or in an off-burst
                           // (intentional silence, not backpressure)
  kInjectBlockedChurn,     // injection refused because the source or its
                           // destination has left the network
  kDroppedMsChurn,         // packets dropped with a departing MS — its own
                           // queue plus every in-flight packet addressed to
                           // it (also counted under kDropped, same single-
                           // equation discipline as kDroppedBsOutage)
  kMsLeft,                 // MS departure events applied (leave@SLOT:MS)
  kMsJoined,               // MS arrival events applied (join@SLOT:MS)
  kMobilityShifts,         // mobility-regime changes applied (shift@SLOT:R)
};

inline constexpr std::size_t kNumCounters = 27;

/// Stable snake-case name used as the CSV `counter` column.
const char* to_string(Counter c);

/// One per-slot sample of the simulator's occupancy/concurrency gauges.
struct SlotSample {
  std::uint32_t slot = 0;
  std::uint64_t queued = 0;           // packets resident in any queue
  std::uint32_t scheduled_pairs = 0;  // S* pairs this slot (0 for scheme C)
  std::uint32_t active_cells = 0;     // scheme C active cells (0 otherwise)
  std::uint32_t live_bs = 0;          // BSs alive this slot (fault injection)
};

/// Counter registry plus optional per-slot time series. Cheap to construct,
/// copy and merge; safe to reuse across runs via absorb() aggregation.
class Metrics {
 public:
  void inc(Counter c) { counters_[static_cast<std::size_t>(c)] += 1; }
  void add(Counter c, std::uint64_t d) {
    counters_[static_cast<std::size_t>(c)] += d;
  }
  std::uint64_t count(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  /// Upper bound on the upfront series reservation (samples, not slots).
  /// enable_series used to reserve the full horizon: a multi-week run
  /// (10⁹+ slots) pre-committed gigabytes before the first sample landed.
  /// Growth past the cap still works — it just pays amortized push_back.
  static constexpr std::size_t kMaxSeriesReserve = std::size_t{1} << 20;

  /// Turns on per-slot sampling; `reserve_slots` is the caller's horizon
  /// hint. `stride` keeps every stride-th slot only (sample_slot drops
  /// slots with slot % stride != 0); the default 1 records every slot —
  /// byte-identical output to the pre-stride behavior. The reservation is
  /// horizon/stride, capped at kMaxSeriesReserve.
  void enable_series(std::size_t reserve_slots, std::size_t stride = 1) {
    series_enabled_ = true;
    series_stride_ = stride == 0 ? 1 : stride;
    series_.reserve(
        std::min(reserve_slots / series_stride_ + 1, kMaxSeriesReserve));
  }
  bool series_enabled() const { return series_enabled_; }
  std::size_t series_stride() const { return series_stride_; }

  void sample_slot(std::uint32_t slot, std::uint64_t queued,
                   std::uint32_t scheduled_pairs, std::uint32_t active_cells,
                   std::uint32_t live_bs = 0) {
    if (!series_enabled_ || slot % series_stride_ != 0) return;
    series_.push_back({slot, queued, scheduled_pairs, active_cells, live_bs});
  }
  const std::vector<SlotSample>& series() const { return series_; }

  /// Checkpoint restore: replaces the recorded series wholesale (the
  /// stride and enabled flag are restored separately via enable_series).
  void restore_series(std::vector<SlotSample> series) {
    series_ = std::move(series);
  }

  /// Adds `other`'s counters into this registry and appends its series —
  /// the fixed-order reduction run_sweep uses to aggregate per-cell audits.
  void absorb(Metrics&& other);

  void reset();

  /// Writes `<name>_counters.csv` (scheme,counter,value) under the bench
  /// artifact directory; returns the path written.
  std::string write_counters_csv(const std::string& name,
                                 const std::string& scheme) const;

  /// Writes `<name>_series.csv` (slot,queued,scheduled_pairs,active_cells);
  /// returns the path written (empty series still writes the header).
  std::string write_series_csv(const std::string& name) const;

 private:
  std::array<std::uint64_t, kNumCounters> counters_{};
  bool series_enabled_ = false;
  std::size_t series_stride_ = 1;
  std::vector<SlotSample> series_;
};

}  // namespace manetcap::sim
