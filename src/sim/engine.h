// Engine selection: one switch between the two measurement engines —
// FlowSim (flow-level, seconds at n = 10⁵) and SlotSim (packet-level,
// the ground truth) — exposed to run_sweep and the CLI as
// --engine fluid|slots|auto.
//
// Both engines measure the SAME instance: the network is built from the
// same (params, placement, seed) and the traffic permutation is drawn from
// the canonical sim::traffic_seed derivation, so a fluid-vs-slots delta is
// a modeling difference, never a sampling one.
#pragma once

#include <string>

#include "net/network.h"
#include "sim/flowsim.h"
#include "sim/slotsim.h"
#include "sim/sweep.h"

namespace manetcap::sim {

enum class EngineKind {
  kFluid,  // flow-level FlowSim (run_flow_sim)
  kSlots,  // packet-level SlotSim (run_slot_sim)
  kAuto,   // slots below EngineOptions::auto_threshold MSs, fluid at/above
};

std::string to_string(EngineKind k);

/// Parses "fluid" | "slots" | "auto"; throws std::runtime_error otherwise.
EngineKind parse_engine(const std::string& s);

/// Orchestration options. The shared (slots, warmup, phy, sinr) quartet
/// lives in the RunConfig base (sim/run_config.h); the engine defaults
/// are 2000/200. Under a non-protocol `phy` the slots engine re-evaluates
/// every slot's S* pair set; the fluid engine derates its wireless
/// capacities by the measured sinr_survival_ratio() of the instance.
/// Scheme C (trivial regime) always runs under the protocol model on both
/// engines — its TDMA schedule has no per-slot geometry to evaluate (the
/// decision is made here, at the orchestration layer).
struct EngineOptions : RunConfig {
  EngineOptions() {
    slots = 2000;
    warmup = 200;
  }

  mobility::ShapeKind shape = mobility::ShapeKind::kUniformDisk;
  net::BsPlacement placement = net::BsPlacement::kClusteredMatched;
  /// kAuto crossover: SlotSim below this many MSs, FlowSim at or above —
  /// small instances are cheap enough for packet-level fidelity, large
  /// ones need the flow engine's O(flows) slot-epochs.
  std::size_t auto_threshold = 1024;
  /// Traffic scenario both engines draw their demand set from
  /// (net/traffic.h). The default spec is the paper's uniform-permutation
  /// CBR and takes the historical code path exactly.
  net::TrafficSpec traffic;
  /// Optional fault/churn timeline forwarded to the engines. The slots
  /// engine accepts every kind; the fluid engine accepts churn-only plans
  /// (join/leave) and rejects infrastructure or mobility-shift events
  /// with a named error.
  const FaultPlan* faults = nullptr;
};

/// Monte-Carlo S*-pair survival ratio of one instance under a
/// non-protocol backend: the fraction of S*-scheduled pairs whose two
/// directions both clear β, over `snapshots` i.i.d. mobility snapshots.
/// This is the factor the fluid engine derates its wireless capacities by
/// (wires are unaffected — FlowSimOptions::bandwidth_share semantics).
/// Deterministic in (net, seed); 1.0 for the protocol backend.
double sinr_survival_ratio(const net::Network& net, phy::PhyKind kind,
                           const phy::SinrParams& sinr, std::uint64_t seed,
                           std::size_t snapshots = 32);

/// Paper-optimal scheme for the regime, restricted to what each engine
/// implements. The two functions agree wherever both engines support the
/// scheme, so cross-engine comparisons run the same routing.
FlowScheme flow_scheme_for(const net::ScalingParams& params);
SlotScheme slot_scheme_for(const net::ScalingParams& params);

/// BS placement actually used for an instance (mirrors the CLI rules:
/// no BSs → uniform; clustered scheme C → cluster grid; else `base`).
net::BsPlacement engine_placement(const net::ScalingParams& params,
                                  bool scheme_c, net::BsPlacement base);

/// Builds the instance for `ctx` and measures its mean per-flow rate
/// (packets/slot) under the chosen engine. kAuto resolves per instance
/// from ctx.params.n. ctx.metrics (when set) receives the engine's audit
/// counters.
double measure_instance(EngineKind kind, const EvalContext& ctx,
                        const EngineOptions& opt);

/// run_sweep adapter: λ(n) points measured by the chosen engine.
SweepEvaluator make_engine_evaluator(EngineKind kind,
                                     const EngineOptions& opt = {});

}  // namespace manetcap::sim
