// Runtime fault and churn injection for the simulators: timed
// base-station outages, wired-backbone degradation, node churn and
// mobility-regime shifts.
//
// The paper's infrastructure-mode results (Table I: λ = Θ(min(k²c/n, k/n)))
// assume all k base stations and every wired edge stay up and that the n
// mobile sources are fixed for the whole run. A FaultPlan attaches a
// timeline of disturbances to a run (SlotSimOptions::faults,
// FlowSimOptions::faults): BSs die and revive at named slots, wired edges
// lose bandwidth or are severed, a regional outage kills every BS in a
// disk at once, mobile stations leave and (re)join mid-run, and the
// mobility regime itself can shift. Schemes B and C degrade gracefully
// instead of stalling — affected MSs are re-homed to the nearest live BS,
// scheme-C cells are re-colored over the live set, and packets queued at
// a dead BS or addressed to a departed MS are dropped with explicit
// counters so the packet conservation identity
// (injected == delivered + queued + dropped) still closes under every
// plan. See docs/FAULTS.md for the spec grammar and the full semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace manetcap::sim {

enum class FaultKind : std::uint8_t {
  kBsDown = 0,     // BS `bs` dies at `slot` (queued packets are dropped)
  kBsUp = 1,       // BS `bs` revives at `slot`
  kWireScale = 2,  // wired edge (bs, bs2) bandwidth scaled by `scale`;
                   // scale 0 severs the edge and zeroes buffered credit
  kRegional = 3,   // every live BS within `radius` of `center` dies
  kMsLeave = 4,    // MS `ms` departs at `slot`: its own queue and every
                   // in-flight packet addressed to it are dropped
  kMsJoin = 5,     // MS `ms` (re)joins at `slot`; an MS whose first churn
                   // event is a join is absent from slot 0
  kMobilityShift = 6,  // mobility regime switches to `mobility` at `slot`
};

const char* to_string(FaultKind k);

/// Canonical short names for the mobility regimes a kMobilityShift can
/// select, index-aligned with sim::SlotMobility: iid | walk | pull |
/// brownian.
const char* mobility_name(std::uint8_t mobility);

/// One timed fault. Faults take effect at the START of `slot`, before that
/// slot's scheduling/TDMA phase.
struct FaultEvent {
  std::uint32_t slot = 0;
  FaultKind kind = FaultKind::kBsDown;
  std::uint32_t bs = 0;    // BS index in [0, k): target (down/up), or the
                           // first wired-edge endpoint
  std::uint32_t bs2 = 0;   // second wired-edge endpoint (kWireScale)
  double scale = 1.0;      // kWireScale bandwidth factor, in [0, 1]
  geom::Point center{};    // kRegional disk center (torus coordinates)
  double radius = 0.0;     // kRegional disk radius
  std::uint32_t ms = 0;    // MS index in [0, n) (kMsLeave / kMsJoin)
  std::uint8_t mobility = 0;  // kMobilityShift target regime, the
                              // sim::SlotMobility ordinal (see
                              // mobility_name)
};

/// A validated, slot-ordered fault timeline. Attach via
/// SlotSimOptions::faults; an empty plan is exactly equivalent to no plan
/// (byte-identical traces, identical results).
struct FaultPlan {
  std::vector<FaultEvent> events;  // non-decreasing slot order

  bool empty() const { return events.empty(); }

  /// True iff any event targets the infrastructure (BS down/up, wire,
  /// regional). Such plans require an infrastructure scheme (B or C).
  bool has_infra() const;

  /// True iff any event is node churn (MS leave/join).
  bool has_churn() const;

  /// True iff any event shifts the mobility regime.
  bool has_shift() const;

  /// Validates the plan against a run shape with named errors (the
  /// SlotSimOptions discipline): events must be slot-ordered, BS indices
  /// < k, wired endpoints distinct, scales in [0, 1], slots < `slots`,
  /// MS indices < `n`, shift regimes known. Callers that do not know n
  /// may omit it (MS bounds are then re-checked by the engine).
  /// Throws manetcap::CheckError on the first violation.
  void validate(std::size_t k, std::size_t slots,
                std::size_t n = static_cast<std::size_t>(-1)) const;

  /// Parses the docs/FAULTS.md spec grammar. Events are ';'-separated:
  ///   down@SLOT:BS        BS outage
  ///   up@SLOT:BS          BS revival
  ///   wire@SLOT:A-BxS     wired edge (A,B) scaled to S (0 severs)
  ///   region@SLOT:X,Y,R   regional outage, disk of radius R at (X, Y)
  ///   leave@SLOT:MS       MS departs (its packets are dropped)
  ///   join@SLOT:MS        MS (re)joins
  ///   shift@SLOT:REGIME   mobility regime shift (iid|walk|pull|brownian)
  /// Throws manetcap::CheckError naming the offending token.
  static FaultPlan parse(const std::string& spec);

  /// One line per event, for CLI/bench echoes.
  std::string describe() const;
};

}  // namespace manetcap::sim
