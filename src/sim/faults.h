// Runtime fault injection for the slot simulator: timed base-station
// outages and wired-backbone degradation.
//
// The paper's infrastructure-mode results (Table I: λ = Θ(min(k²c/n, k/n)))
// assume all k base stations and every wired edge stay up. A FaultPlan
// attaches a timeline of infrastructure faults to a SlotSim run
// (SlotSimOptions::faults): BSs die and revive at named slots, wired edges
// lose bandwidth or are severed, and a regional outage kills every BS in a
// disk at once. Schemes B and C degrade gracefully instead of stalling —
// affected MSs are re-homed to the nearest live BS, scheme-C cells are
// re-colored over the live set, and packets queued at a dead BS are
// dropped with an explicit dropped_bs_outage counter so the packet
// conservation identity (injected == delivered + queued + dropped) still
// closes under every plan. See docs/FAULTS.md for the spec grammar and
// the full semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace manetcap::sim {

enum class FaultKind : std::uint8_t {
  kBsDown = 0,     // BS `bs` dies at `slot` (queued packets are dropped)
  kBsUp = 1,       // BS `bs` revives at `slot`
  kWireScale = 2,  // wired edge (bs, bs2) bandwidth scaled by `scale`;
                   // scale 0 severs the edge and zeroes buffered credit
  kRegional = 3,   // every live BS within `radius` of `center` dies
};

const char* to_string(FaultKind k);

/// One timed fault. Faults take effect at the START of `slot`, before that
/// slot's scheduling/TDMA phase.
struct FaultEvent {
  std::uint32_t slot = 0;
  FaultKind kind = FaultKind::kBsDown;
  std::uint32_t bs = 0;    // BS index in [0, k): target (down/up), or the
                           // first wired-edge endpoint
  std::uint32_t bs2 = 0;   // second wired-edge endpoint (kWireScale)
  double scale = 1.0;      // kWireScale bandwidth factor, in [0, 1]
  geom::Point center{};    // kRegional disk center (torus coordinates)
  double radius = 0.0;     // kRegional disk radius
};

/// A validated, slot-ordered fault timeline. Attach via
/// SlotSimOptions::faults; an empty plan is exactly equivalent to no plan
/// (byte-identical traces, identical results).
struct FaultPlan {
  std::vector<FaultEvent> events;  // non-decreasing slot order

  bool empty() const { return events.empty(); }

  /// Validates the plan against a run shape with named errors (the
  /// SlotSimOptions discipline): events must be slot-ordered, BS indices
  /// < k, wired endpoints distinct, scales in [0, 1], slots < `slots`.
  /// Throws manetcap::CheckError on the first violation.
  void validate(std::size_t k, std::size_t slots) const;

  /// Parses the docs/FAULTS.md spec grammar. Events are ';'-separated:
  ///   down@SLOT:BS        BS outage
  ///   up@SLOT:BS          BS revival
  ///   wire@SLOT:A-BxS     wired edge (A,B) scaled to S (0 severs)
  ///   region@SLOT:X,Y,R   regional outage, disk of radius R at (X, Y)
  /// Throws manetcap::CheckError naming the offending token.
  static FaultPlan parse(const std::string& spec);

  /// One line per event, for CLI/bench echoes.
  std::string describe() const;
};

}  // namespace manetcap::sim
