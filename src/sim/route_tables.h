// Routing-structure builders shared by the packet engine (SlotSim) and the
// flow-level engine (FlowSim). Both engines must evaluate the SAME
// squarelet paths, serving sets and TDMA colorings for a given network —
// cross-validation is only meaningful when the routing structure is
// literally shared, so these builders are the single source of truth.
// SlotSim's golden traces are byte-compared each build, pinning the
// builders to the historical construction exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/tessellation.h"
#include "net/network.h"

namespace manetcap::sim {

/// Scheme-A squarelet structure: flow s's H-V path is
/// path_cells[path_start[s] .. path_start[s+1]) over `tess`.
struct SchemeARouteTables {
  geom::SquareTessellation tess{1};
  std::vector<std::uint32_t> home_cell;   // per MS, linearized cell index
  std::vector<std::uint32_t> path_start;  // n + 1 CSR offsets
  std::vector<std::uint32_t> path_cells;
};

/// Builds the scheme-A tables: cell side 0.8·mobility_radius (capped at
/// the unit square), one H-V path per flow between home cells.
SchemeARouteTables build_scheme_a_tables(
    const net::Network& net, const std::vector<std::uint32_t>& dest);

/// Scheme B/C serving sets: MS i is served by BS indices
/// serving_ids[serving_start[i] .. serving_start[i+1]).
struct ServingTables {
  std::vector<std::uint32_t> serving_start;  // n + 1 CSR offsets
  std::vector<std::uint32_t> serving_ids;
  std::vector<std::uint8_t> serving_is_fallback;  // nearest-BS fallback MSs
  double contact = 0.0;  // scheme B MS–BS contact distance (0 for scheme C)
};

/// Scheme-B serving sets: every BS within the link-capacity contact
/// distance of the MS home point, with a nearest-BS fallback for MSs that
/// see none (so every MS always has ≥ 1 serving BS).
ServingTables build_scheme_b_serving(const net::Network& net, double ct,
                                     double delta);

/// Scheme-C association: exactly one serving BS per MS — the nearest
/// (with cluster-grid placement this is the hexagonal cell of
/// Definition 13).
ServingTables build_scheme_c_association(const net::Network& net);

/// Scheme-C cell structure: member CSR + greedy TDMA coloring of the cell
/// interference graph (dead cells get color −1).
struct CellTables {
  std::vector<std::uint32_t> members_start;  // k + 1 CSR offsets
  std::vector<std::uint32_t> members_ids;
  std::vector<int> cell_color;  // per BS; −1 = dead or uncolored
  std::size_t num_colors = 1;
};

/// Rebuilds the member CSR, cell radii and TDMA coloring from the current
/// association (`serving_ids[serving_start[i]]` per MS). `bs_alive` is the
/// per-BS liveness table (nullptr or empty = all live); dead cells are
/// skipped by the coloring so the rotation never activates them.
CellTables build_cells_and_colors(const net::Network& net,
                                  const std::vector<std::uint32_t>& serving_start,
                                  const std::vector<std::uint32_t>& serving_ids,
                                  double delta,
                                  const std::vector<std::uint8_t>* bs_alive);

}  // namespace manetcap::sim
