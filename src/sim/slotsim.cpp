#include "sim/slotsim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "analysis/stats.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "mobility/process.h"
#include "sched/sstar.h"
#include "sim/route_tables.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "sim/wire_credit.h"
#include "util/binio.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace manetcap::sim {

std::string to_string(SlotScheme s) {
  switch (s) {
    case SlotScheme::kSchemeA:
      return "scheme-A";
    case SlotScheme::kTwoHop:
      return "two-hop";
    case SlotScheme::kSchemeB:
      return "scheme-B";
    case SlotScheme::kSchemeC:
      return "scheme-C";
  }
  return "?";
}

namespace {

std::unique_ptr<mobility::MobilityProcess> make_process(
    const net::Network& net, SlotMobility kind, std::uint64_t seed) {
  const double radius = net.mobility_radius();
  switch (kind) {
    case SlotMobility::kIid:
      return std::make_unique<mobility::IidStationaryMobility>(
          net.ms_home(), net.shape(), 1.0 / net.params().f(), seed);
    case SlotMobility::kWalk:
      return std::make_unique<mobility::BoundedRandomWalk>(net.ms_home(),
                                                           radius, seed);
    case SlotMobility::kPullHome:
      return std::make_unique<mobility::PullHomeMobility>(net.ms_home(),
                                                          radius, seed);
    case SlotMobility::kBrownian:
      return std::make_unique<mobility::BrownianTorusMobility>(net.ms_home(),
                                                               seed);
  }
  MANETCAP_CHECK(false);
  return nullptr;
}

/// Validates a run configuration up front with named errors — a zero
/// max_queue or inverted warmup/slots used to surface as undefined
/// behavior (or a cryptic check) deep inside the run.
void validate_options(const SlotSimOptions& opt) {
  // Shared (slots, warmup, phy, sinr) validation lives in the RunConfig
  // base — single point, named errors (sim/run_config.h).
  if (opt.phy != phy::PhyKind::kProtocol) {
    MANETCAP_CHECK_MSG(opt.scheme != SlotScheme::kSchemeC,
                       "SlotSimOptions: --phy " << phy::to_string(opt.phy)
                           << " applies to the S*-driven schemes (A, "
                              "two-hop, B); scheme C's TDMA schedule has "
                              "no per-slot geometry to evaluate");
  }
  opt.RunConfig::validate("SlotSimOptions");
  MANETCAP_CHECK_MSG(opt.max_queue >= 1,
                     "SlotSimOptions: max_queue must be >= 1");
  MANETCAP_CHECK_MSG(opt.ct > 0.0, "SlotSimOptions: ct must be > 0");
  MANETCAP_CHECK_MSG(opt.delta > 0.0, "SlotSimOptions: delta must be > 0");
  MANETCAP_CHECK_MSG(opt.source_backlog >= 1,
                     "SlotSimOptions: source_backlog must be >= 1");
  // Narrowing guards (large-n audit): every quantity below is carried in a
  // 32-bit field somewhere in the hot state (q_born, queue/window
  // counters) — reject configurations that would wrap instead of
  // simulating garbage. (The slots guard lives in RunConfig::validate.)
  MANETCAP_CHECK_MSG(opt.max_queue <= 0xffffffffULL,
                     "SlotSimOptions: max_queue must fit in 32 bits "
                     "(per-node queue sizes are uint32)");
  MANETCAP_CHECK_MSG(opt.source_backlog <= 0xffffffffULL,
                     "SlotSimOptions: source_backlog must fit in 32 bits "
                     "(per-flow windows are uint32)");
  MANETCAP_CHECK_MSG(opt.shards >= 1, "SlotSimOptions: shards must be >= 1");
  MANETCAP_CHECK_MSG(opt.checkpoint_every == 0 || !opt.checkpoint_path.empty(),
                     "SlotSimOptions: checkpoint_every requires a "
                     "checkpoint_path");
}

// WireState / WireCreditMap moved to sim/wire_credit.h so the flow-level
// engine shares the exact same token-bucket structure (key packing, bucket
// depth, accrual law).

/// Shared simulation state and per-scheme forwarding logic.
///
/// All mutable per-packet state is structure-of-arrays: every node's queue
/// is a fixed-capacity run inside three flat slabs (flow / hop / born),
/// FIFO order preserved by in-run compaction, so a slot touches contiguous
/// memory and allocates nothing. Routing structure (H-V paths, serving
/// sets, cell members) is flattened to CSR. Node positions live in one
/// persistent buffer indexed [0, n) for MSs and [n, n+k) for BSs, and the
/// S* spatial hash is maintained incrementally across slots
/// (SpatialHash::move) instead of rebuilt. Event order — and therefore
/// every golden trace byte — is identical to the legacy implementation
/// preserved in slotsim_reference.cpp.
class SlotSim {
 public:
  SlotSim(const net::Network& net, const std::vector<std::uint32_t>& dest,
          const SlotSimOptions& opt,
          const std::vector<net::FlowDemand>* demands = nullptr)
      : net_(net),
        dest_(dest),
        opt_(opt),
        n_(net.num_ms()),
        k_(net.num_bs()),
        // Memory diet: queue slabs are sized per node class, not uniformly.
        // In the infrastructure schemes (B/C) packets live exclusively in
        // BS queues — every push targets a BS node (uplink try_inject,
        // wired forward), so MS runs get capacity 0. In the ad hoc schemes
        // (A/two-hop) the BS roles are inverted: transfer() early-returns
        // on any BS endpoint, so BS runs get capacity 0. At n = 10⁶ MSs
        // this is the difference between ~0.7 GB of dead MS slab and the
        // few MB the k BS queues actually need.
        ms_cap_(opt.scheme == SlotScheme::kSchemeB ||
                        opt.scheme == SlotScheme::kSchemeC
                    ? 0
                    : opt.max_queue),
        bs_cap_(opt.scheme == SlotScheme::kSchemeB ||
                        opt.scheme == SlotScheme::kSchemeC
                    ? opt.max_queue
                    : 0),
        q_flow_(n_ * ms_cap_ + k_ * bs_cap_),
        q_hop_(n_ * ms_cap_ + k_ * bs_cap_),
        q_born_(n_ * ms_cap_ + k_ * bs_cap_),
        q_size_(n_ + k_, 0),
        delivered_(n_, 0),
        count_own_(n_, 0),
        pos_all_(n_ + k_) {
    validate_options(opt);
    // The packet engine models the paper's single-antenna BS: a BS moves at
    // most one packet per direction per slot, and the golden traces pin
    // that event order. Antenna scaling (L > 0) is a fluid-engine feature.
    MANETCAP_CHECK_MSG(net.params().L == 0.0,
                       "SlotSim: the packet engine models single-antenna "
                       "BSs (L = 0); antenna scaling (L = "
                           << net.params().L
                           << ") needs the fluid engine (--engine fluid)");
    MANETCAP_CHECK_MSG(dest.size() == n_,
                       "SlotSimOptions: dest must hold one entry per MS");
    // Out-of-range or self-loop destinations used to be trusted (an id
    // ≥ n indexes past the serving CSR / per-flow state) — reject them
    // up front with a named error.
    net::validate_traffic_dest(dest, n_, "SlotSimOptions");
    MANETCAP_CHECK_MSG(n_ + k_ < geom::SpatialHash::kNone,
                       "SlotSim: population n + k must stay below the "
                       "uint32 id sentinel (2^32 - 1)");
    MANETCAP_CHECK_MSG(q_flow_.size() <= (std::size_t{1} << 38),
                       "SlotSim: queue slabs would exceed the addressable "
                       "budget — reduce max_queue or the population");
    if (demands != nullptr) {
      net::validate_demands(*demands, n_);
      // The default demand set (unlimited, always-on, start 0) gates
      // nothing — leave demands_ null so the legacy path stays
      // byte-identical without per-inject spec checks.
      bool gated = false;
      for (const net::FlowDemand& d : *demands)
        gated = gated || !d.unlimited() || d.start != 0 || !d.always_on();
      if (gated) {
        demands_ = demands;
        inj_count_.assign(n_, 0);
        for (const net::FlowDemand& d : *demands)
          has_onoff_ = has_onoff_ || !d.always_on();
        if (has_onoff_) {
          onoff_.resize(n_);
          for (std::uint32_t f = 0; f < n_; ++f) {
            const net::FlowDemand& d = (*demands)[f];
            if (!d.always_on())
              onoff_[f] = net::OnOffGate(d.on_mean, d.off_mean,
                                         trial_seed(opt_.seed, f, 5));
          }
        }
      }
    }
    if (opt_.faults != nullptr && !opt_.faults->empty()) {
      opt_.faults->validate(k_, opt_.slots, n_);
      if (opt_.faults->has_infra()) {
        MANETCAP_CHECK_MSG(opt_.scheme == SlotScheme::kSchemeB ||
                               opt_.scheme == SlotScheme::kSchemeC,
                           "FaultPlan: BS/wired faults require an "
                           "infrastructure scheme (B or C)");
        bs_alive_.assign(k_, 1);
      }
      MANETCAP_CHECK_MSG(!opt_.faults->has_shift() ||
                             (opt_.checkpoint_every == 0 &&
                              opt_.resume_path.empty()),
                         "SlotSimOptions: checkpointing is not supported "
                         "with mobility-shift events (the process type "
                         "changes mid-run)");
      // Every fault branch below guards on faults_ (or on bs_alive_ /
      // ms_alive_ being empty) — a null (or empty) plan takes exactly the
      // pre-fault code path, byte for byte.
      faults_ = opt_.faults;
      if (opt_.faults->has_churn()) {
        ms_alive_.assign(n_, 1);
        // An MS whose FIRST churn event is a join starts absent.
        std::vector<std::uint8_t> seen(n_, 0);
        for (const FaultEvent& e : opt_.faults->events) {
          if (e.kind != FaultKind::kMsLeave && e.kind != FaultKind::kMsJoin)
            continue;
          if (seen[e.ms] != 0) continue;
          seen[e.ms] = 1;
          if (e.kind == FaultKind::kMsJoin) ms_alive_[e.ms] = 0;
        }
        live_ms_ = 0;
        for (std::uint8_t a : ms_alive_) live_ms_ += a;
      }
    }
    live_bs_ = k_;
    std::copy(net_.bs_pos().begin(), net_.bs_pos().end(),
              pos_all_.begin() + static_cast<std::ptrdiff_t>(n_));
    // The audit always accumulates into the internal registry (the
    // conservation check needs the counters even without a caller sink);
    // the caller's Metrics absorbs it at end of run.
    if (opt_.metrics != nullptr && opt_.metrics->series_enabled())
      audit_.enable_series(opt_.slots, opt_.metrics->series_stride());
    if (opt_.scheme == SlotScheme::kSchemeA) init_scheme_a();
    if (opt_.scheme == SlotScheme::kSchemeB) init_scheme_b();
    if (opt_.scheme == SlotScheme::kSchemeC) init_scheme_c();
    // CSR offsets are uint32; at extreme n × path-length products the
    // flattened tables could outgrow them — fail at run start, not mid-run.
    MANETCAP_CHECK_MSG(path_cells_.size() <= 0xffffffffULL,
                       "SlotSim: scheme-A path table exceeds uint32 CSR "
                       "offsets");
    MANETCAP_CHECK_MSG(serving_ids_.size() <= 0xffffffffULL,
                       "SlotSim: serving table exceeds uint32 CSR offsets");
    if (opt_.trace != nullptr) capture_context(*opt_.trace);
  }

  SlotSimResult run() {
    auto process = make_process(net_, opt_.mobility, opt_.seed);
    sched::SStarScheduler sstar(opt_.ct, opt_.delta);
    sched::SStarScheduler::Workspace ws;
    // Constructed ONLY for a non-protocol backend: the default run never
    // touches the PHY layer, keeping protocol traces byte-identical by
    // construction rather than by care.
    std::unique_ptr<phy::InterferenceModel> phy_model;
    if (opt_.phy != phy::PhyKind::kProtocol)
      phy_model = phy::make_interference_model(opt_.phy, opt_.delta,
                                               opt_.sinr);
    // Same bucket geometry the legacy per-slot rebuild chose: hint = the
    // S* guard radius over the whole population.
    geom::SpatialHash hash((1.0 + opt_.delta) * sstar.range_for(n_ + k_),
                           n_ + k_);
    bool hash_ready = false;
    std::uint64_t pair_count = 0;
    std::size_t t0 = 0;
    if (!opt_.resume_path.empty())
      t0 = load_checkpoint(*process, hash, hash_ready, pair_count);
    // Only the S*-driven pipeline (schemes A/two-hop/B) has the hash and
    // scan phases to stripe; scheme C is static TDMA and runs serial.
    const std::size_t shards =
        opt_.scheme == SlotScheme::kSchemeC ? 1 : opt_.shards;

    for (std::size_t t = t0; t < opt_.slots; ++t) {
      // A checkpoint taken here captures "state as of the end of slot
      // t−1": everything the rest of this iteration reads. `t > t0` skips
      // a pointless immediate re-save on resume.
      if (opt_.checkpoint_every > 0 && t > t0 &&
          t % opt_.checkpoint_every == 0)
        save_checkpoint(t, *process, hash_ready, pair_count);
      const bool measure = t >= opt_.warmup;
      if (measure && !measuring_) {
        measuring_ = true;
        std::fill(delivered_.begin(), delivered_.end(), 0);
      }

      slot_ = static_cast<std::uint32_t>(t);
      // Faults take effect at the start of the slot, before scheduling /
      // TDMA: a BS downed at slot t serves nothing at slot t, an MS
      // departing at slot t is a ghost from slot t on.
      if (faults_ != nullptr) apply_faults(t, process);
      if (opt_.scheme == SlotScheme::kSchemeC) {
        // Static cellular TDMA (Definition 13): no S* — the active color
        // group serves; "pairs" counts active cells for reporting.
        const std::size_t served = scheme_c_slot(t);
        if (measure) pair_count += served;
        wired_step(t);
        process->step();
        audit_.sample_slot(slot_, in_network_, 0,
                           static_cast<std::uint32_t>(served),
                           static_cast<std::uint32_t>(live_bs_));
        continue;
      }

      const std::vector<geom::Point>& mpos = process->positions();
      if (!hash_ready) {
        std::copy(mpos.begin(), mpos.end(), pos_all_.begin());
        hash.build(pos_all_);
        hash_ready = true;
      } else if (shards <= 1) {
        // Only MSs move; each slot rebuckets just the ids that crossed a
        // bucket boundary. BS entries never change.
        for (std::uint32_t i = 0; i < n_; ++i) {
          hash.move(i, pos_all_[i], mpos[i]);
          pos_all_[i] = mpos[i];
        }
      } else {
        sharded_move(hash, mpos, shards);
      }
      sched::ScheduleStats sstats;
      bool stepped = false;
      const std::vector<phy::Transmission>* pairs_ptr;
      if (shards > 1) {
        // Parallel phase: stripe the S* lone-neighbor scan over bucket-row
        // bands, and overlap next slot's mobility draw as one extra task —
        // step() mutates only process-internal state, and positions() is
        // not read again until the top of the next slot. Extraction stays
        // serial (id-ascending) so the pair list, and therefore every
        // transfer and trace byte, matches the serial path exactly.
        sstar.begin_scan(n_ + k_, ws);
        const std::int64_t g = hash.grid_side();
        util::ThreadPool::shared().parallel_for(
            shards + 1, [&](std::size_t s) {
              if (s == shards) {
                process->step();
                return;
              }
              const auto ss = static_cast<std::int64_t>(s);
              const auto sn = static_cast<std::int64_t>(shards);
              sstar.lone_scan_rows(pos_all_, hash, ws, g * ss / sn,
                                   g * (ss + 1) / sn);
            });
        stepped = true;
        pairs_ptr =
            &sstar.extract_pairs(pos_all_, ws, &sstats, phy_model.get());
      } else {
        pairs_ptr = &sstar.feasible_pairs_into(pos_all_, hash, ws, &sstats,
                                               phy_model.get());
      }
      const auto& pairs = *pairs_ptr;
      audit_.add(Counter::kSchedCandidatePairs, sstats.candidate_pairs);
      audit_.add(Counter::kSchedFeasiblePairs, sstats.feasible_pairs);
      audit_.add(Counter::kSchedRangeRejected, sstats.range_rejected);
      if (phy_model != nullptr) {
        audit_.add(Counter::kPhySinrRejected, sstats.phy_sinr_rejected);
        audit_.add(Counter::kPhyCsmaSuppressed, sstats.phy_csma_suppressed);
      }
      if (measure) pair_count += pairs.size();

      for (const auto& pr : pairs) {
        // Each S* meeting carries one packet per direction (the bandwidth
        // is split equally between the two directions, Definition 10).
        transfer(pr.tx, pr.rx);
        transfer(pr.rx, pr.tx);
      }
      if (opt_.scheme == SlotScheme::kSchemeB) wired_step(t);
      if (!stepped) process->step();
      audit_.sample_slot(slot_, in_network_,
                         static_cast<std::uint32_t>(pairs.size()), 0,
                         static_cast<std::uint32_t>(live_bs_));
    }

    SlotSimResult res;
    res.measured_slots = opt_.slots - opt_.warmup;
    std::vector<double> rates(n_);
    std::uint64_t total = 0;
    for (std::size_t f = 0; f < n_; ++f) {
      total += delivered_[f];
      rates[f] = static_cast<double>(delivered_[f]) /
                 static_cast<double>(res.measured_slots);
    }
    res.total_delivered = total;
    const auto summary = analysis::summarize(rates);
    res.mean_flow_rate = summary.mean;
    res.min_flow_rate = summary.min;
    res.p10_flow_rate = analysis::quantile(rates, 0.10);
    res.pairs_per_slot = static_cast<double>(pair_count) /
                         static_cast<double>(res.measured_slots);
    if (!delays_.empty()) {
      res.mean_delay = analysis::summarize(delays_).mean;
      res.p95_delay = analysis::quantile(delays_, 0.95);
    }
    res.state_bytes =
        vec_bytes(q_flow_) + vec_bytes(q_hop_) + vec_bytes(q_born_) +
        vec_bytes(q_size_) + vec_bytes(delivered_) + vec_bytes(count_own_) +
        vec_bytes(delays_) + vec_bytes(pos_all_) + vec_bytes(home_cell_) +
        vec_bytes(path_start_) + vec_bytes(path_cells_) +
        vec_bytes(serving_start_) + vec_bytes(serving_ids_) +
        vec_bytes(serving_is_fallback_) + vec_bytes(members_start_) +
        vec_bytes(members_ids_) + vec_bytes(cell_color_) +
        vec_bytes(rr_cell_) + vec_bytes(bs_alive_) +
        vec_bytes(ms_alive_) + vec_bytes(inj_count_) +
        vec_bytes(move_old_row_) + vec_bytes(move_new_row_) +
        vec_bytes(ws.lone) + vec_bytes(ws.pairs) + hash.memory_bytes() +
        wire_credit_.memory_bytes();

    std::uint64_t queued = 0;
    for (std::uint32_t q : q_size_) queued += q;
    res.injected = audit_.count(Counter::kInjected);
    res.delivered_lifetime = audit_.count(Counter::kDelivered);
    res.queued_end = queued;
    res.dropped = audit_.count(Counter::kDropped);
    res.dropped_bs_outage = audit_.count(Counter::kDroppedBsOutage);
    res.dropped_ms_churn = audit_.count(Counter::kDroppedMsChurn);
    if (opt_.check_conservation) {
      MANETCAP_CHECK_MSG(in_network_ == queued,
                         "packet accounting drift: in-network counter "
                         "disagrees with actual queue occupancy");
      MANETCAP_CHECK_MSG(
          res.injected == res.delivered_lifetime + queued + res.dropped,
          "packet conservation violated: injected != delivered + queued + "
          "dropped");
      std::uint64_t window = 0;
      for (std::uint32_t w : count_own_) window += w;
      MANETCAP_CHECK_MSG(
          window == res.injected - res.delivered_lifetime - res.dropped,
          "flow-control window drift: sum of per-flow "
          "windows != packets in flight");
    }
    if (opt_.metrics != nullptr) opt_.metrics->absorb(std::move(audit_));
    if (opt_.trace != nullptr) {
      opt_.trace->footer.injected = res.injected;
      opt_.trace->footer.delivered = res.delivered_lifetime;
      opt_.trace->footer.dropped = res.dropped;
    }
    return res;
  }

 private:
  /// Copies the run configuration and the routing structure the forwarding
  /// code will use into the trace, so verify_trace replays against exactly
  /// the tables this run consulted (no network rebuild, no FP involved).
  /// The CSR tables are re-expanded to the nested form the codec stores.
  void capture_context(Trace& trace) const {
    TraceContext& ctx = trace.context;
    ctx.scheme = opt_.scheme;
    ctx.mobility = opt_.mobility;
    ctx.n = static_cast<std::uint32_t>(n_);
    ctx.k = static_cast<std::uint32_t>(k_);
    ctx.slots = static_cast<std::uint32_t>(opt_.slots);
    ctx.warmup = static_cast<std::uint32_t>(opt_.warmup);
    ctx.max_queue = static_cast<std::uint32_t>(opt_.max_queue);
    ctx.source_backlog = static_cast<std::uint32_t>(opt_.source_backlog);
    ctx.seed = opt_.seed;
    ctx.wired_c = k_ > 0 ? net_.params().c() : 0.0;
    ctx.dest = dest_;
    ctx.home_cell = home_cell_;
    if (!path_start_.empty()) {
      ctx.paths.assign(n_, {});
      for (std::uint32_t s = 0; s < n_; ++s)
        ctx.paths[s].assign(path_cells_.begin() + path_start_[s],
                            path_cells_.begin() + path_start_[s + 1]);
    }
    const std::size_t ns = serving_start_.empty() ? 0 : n_;
    ctx.serving.assign(ns, {});
    for (std::size_t i = 0; i < ns; ++i) {
      ctx.serving[i].reserve(serving_start_[i + 1] - serving_start_[i]);
      for (std::uint32_t s = serving_start_[i]; s < serving_start_[i + 1];
           ++s)
        ctx.serving[i].push_back(static_cast<std::uint32_t>(n_) +
                                 serving_ids_[s]);
    }
  }

  // --- queue slabs ---------------------------------------------------------
  /// Start of node's run inside the slabs. MSs occupy [0, n·ms_cap_) at
  /// ms_cap_ apiece, BSs the tail at bs_cap_ apiece; the class whose cap is
  /// 0 for the active scheme is provably never pushed to (see the ctor).
  std::size_t q_base(std::uint32_t node) const {
    return node < n_ ? node * ms_cap_
                     : n_ * ms_cap_ + (node - n_) * bs_cap_;
  }
  std::size_t q_cap(std::uint32_t node) const {
    return node < n_ ? ms_cap_ : bs_cap_;
  }

  void push_packet(std::uint32_t node, std::uint32_t flow, std::uint32_t hop,
                   std::uint32_t born) {
    const std::size_t at = q_base(node) + q_size_[node]++;
    q_flow_[at] = flow;
    q_hop_[at] = hop;
    q_born_[at] = born;
  }

  /// Removes the packet at queue position `idx`, shifting the tail down —
  /// exactly the deque::erase order semantics, on contiguous storage.
  void erase_packet(std::uint32_t node, std::size_t idx) {
    const std::size_t base = q_base(node);
    const std::size_t last = --q_size_[node];
    for (std::size_t j = idx; j < last; ++j) {
      q_flow_[base + j] = q_flow_[base + j + 1];
      q_hop_[base + j] = q_hop_[base + j + 1];
      q_born_[base + j] = q_born_[base + j + 1];
    }
  }

  // --- scheme A ------------------------------------------------------------
  void init_scheme_a() {
    SchemeARouteTables t = build_scheme_a_tables(net_, dest_);
    tess_ = std::make_unique<geom::SquareTessellation>(t.tess);
    home_cell_ = std::move(t.home_cell);
    path_start_ = std::move(t.path_start);
    path_cells_ = std::move(t.path_cells);
  }

  // --- scheme B ------------------------------------------------------------
  void init_scheme_b() {
    ServingTables t = build_scheme_b_serving(net_, opt_.ct, opt_.delta);
    contact_ = t.contact;  // re-homing under faults reuses the same rule
    serving_start_ = std::move(t.serving_start);
    serving_ids_ = std::move(t.serving_ids);
    serving_is_fallback_ = std::move(t.serving_is_fallback);
  }

  // --- scheme C ------------------------------------------------------------
  void init_scheme_c() {
    // Association: nearest BS (with cluster-grid placement this is the
    // hexagonal cell of Definition 13). The serving table holds one BS per
    // MS so the wired phase can reuse the scheme-B machinery.
    ServingTables t = build_scheme_c_association(net_);
    serving_start_ = std::move(t.serving_start);
    serving_ids_ = std::move(t.serving_ids);
    serving_is_fallback_ = std::move(t.serving_is_fallback);
    rebuild_members_and_colors();
    rr_cell_.assign(k_, 0);
  }

  /// Rebuilds the member CSR, cell radii and TDMA coloring from the
  /// current association (serving_ids_). Called at init (all cells live)
  /// and after every fault-driven re-association; dead cells get color −1
  /// so the rotation never activates them.
  void rebuild_members_and_colors() {
    CellTables t = build_cells_and_colors(net_, serving_start_, serving_ids_,
                                          opt_.delta, &bs_alive_);
    members_start_ = std::move(t.members_start);
    members_ids_ = std::move(t.members_ids);
    cell_color_ = std::move(t.cell_color);
    num_colors_ = t.num_colors;
  }

  // --- fault injection -----------------------------------------------------
  /// True when BS `l` is serving. Without a fault plan bs_alive_ stays
  /// empty and every BS is live (the branch predicts perfectly).
  bool bs_is_live(std::uint32_t l) const {
    return bs_alive_.empty() || bs_alive_[l] != 0;
  }

  std::uint32_t node_of_bs(std::uint32_t l) const {
    return static_cast<std::uint32_t>(n_) + l;
  }

  /// Applies every fault event scheduled at or before slot `t`. Events are
  /// validated non-decreasing, so this is a cursor walk. `process` is
  /// passed through so a mobility-shift event can swap the process.
  void apply_faults(std::size_t t,
                    std::unique_ptr<mobility::MobilityProcess>& process) {
    const auto& ev = faults_->events;
    while (next_fault_ < ev.size() && ev[next_fault_].slot <= t) {
      apply_fault(ev[next_fault_], process);
      ++next_fault_;
    }
  }

  void apply_fault(const FaultEvent& e,
                   std::unique_ptr<mobility::MobilityProcess>& process) {
    switch (e.kind) {
      case FaultKind::kBsDown:
        apply_bs_down({e.bs});
        break;
      case FaultKind::kBsUp:
        apply_bs_up(e.bs);
        break;
      case FaultKind::kWireScale:
        apply_wire_scale(e);
        break;
      case FaultKind::kRegional: {
        // Resolve the disk to concrete BS ids sim-side, so the trace
        // timeline (and therefore the replay checker) never touches
        // geometry or floating point.
        std::vector<std::uint32_t> downs;
        for (std::uint32_t l = 0; l < k_; ++l)
          if (bs_alive_[l] != 0 &&
              geom::torus_dist(net_.bs_pos()[l], e.center) < e.radius)
            downs.push_back(l);
        apply_bs_down(downs);
        break;
      }
      case FaultKind::kMsLeave:
        apply_ms_leave(e.ms);
        break;
      case FaultKind::kMsJoin:
        apply_ms_join(e.ms);
        break;
      case FaultKind::kMobilityShift:
        apply_mobility_shift(e, process);
        break;
    }
  }

  // --- node churn ----------------------------------------------------------
  /// True when MS `i` is present. Without churn events ms_alive_ stays
  /// empty and every MS is present (same discipline as bs_is_live).
  bool ms_is_present(std::uint32_t i) const {
    return ms_alive_.empty() || ms_alive_[i] != 0;
  }

  /// MS `ms` departs: mark it absent, drop every packet it holds (its own
  /// and any relayed traffic — the holder is gone) and every in-flight
  /// packet addressed to it anywhere in the network. The node keeps its
  /// position and keeps moving — S* can still schedule a meeting with the
  /// ghost, which is simply wasted, exactly the dead-BS semantics.
  void apply_ms_leave(std::uint32_t ms) {
    if (ms_alive_[ms] == 0) return;  // leave on an absent MS: no-op
    ms_alive_[ms] = 0;
    --live_ms_;
    audit_.inc(Counter::kMsLeft);
    TraceFault* tf = open_trace_fault(TraceFault::kKindMsLeave);
    if (tf != nullptr) {
      tf->bs.push_back(ms);  // subject list reused; raw MS id (< n)
      opt_.trace->record(TraceEventKind::kMsLeave, slot_, 0, 0, ms, ms);
    }
    drop_all_at(ms, Counter::kDroppedMsChurn);
    drop_packets_to(ms);
  }

  void apply_ms_join(std::uint32_t ms) {
    if (ms_alive_[ms] != 0) return;  // join on a present MS: no-op
    ms_alive_[ms] = 1;
    ++live_ms_;
    audit_.inc(Counter::kMsJoined);
    TraceFault* tf = open_trace_fault(TraceFault::kKindMsJoin);
    if (tf != nullptr) {
      tf->bs.push_back(ms);
      opt_.trace->record(TraceEventKind::kMsJoin, slot_, 0, 0, ms, ms);
    }
  }

  /// Swaps the mobility process for the shifted regime. The new process
  /// re-initializes motion from the home points with a slot-derived seed,
  /// so the shift is deterministic and shard-invariant; the incremental
  /// spatial hash absorbs the position jump through its ordinary per-MS
  /// move path at the top of the next S* phase.
  void apply_mobility_shift(
      const FaultEvent& e,
      std::unique_ptr<mobility::MobilityProcess>& process) {
    const auto kind = static_cast<SlotMobility>(e.mobility);
    process = make_process(net_, kind, trial_seed(opt_.seed, slot_, 7));
    audit_.inc(Counter::kMobilityShifts);
    TraceFault* tf = open_trace_fault(TraceFault::kKindShift);
    if (tf != nullptr) {
      tf->scale = static_cast<double>(e.mobility);
      opt_.trace->record(TraceEventKind::kMobilityShift, slot_, 0, 0, 0, 0);
    }
  }

  /// Drops every in-flight packet addressed to `ms`, wherever it is
  /// queued: nodes ascending, FIFO within each queue (single compaction
  /// pass). Each drop releases its flow-control window slot so the
  /// conservation identity closes.
  void drop_packets_to(std::uint32_t ms) {
    for (std::uint32_t node = 0; node < n_ + k_; ++node) {
      const std::size_t qs = q_size_[node];
      if (qs == 0) continue;
      const std::size_t base = q_base(node);
      std::size_t w = 0;
      for (std::size_t r = 0; r < qs; ++r) {
        const std::uint32_t flow = q_flow_[base + r];
        if (dest_[flow] == ms) {
          --count_own_[flow];
          --in_network_;
          audit_.inc(Counter::kDropped);
          audit_.inc(Counter::kDroppedMsChurn);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kDrop, slot_, flow,
                               q_hop_[base + r], node, node);
          continue;
        }
        if (w != r) {
          q_flow_[base + w] = q_flow_[base + r];
          q_hop_[base + w] = q_hop_[base + r];
          q_born_[base + w] = q_born_[base + r];
        }
        ++w;
      }
      q_size_[node] = w;
    }
  }

  /// Opens a timeline entry in the trace context (null when not tracing).
  TraceFault* open_trace_fault(std::uint8_t kind) {
    if (opt_.trace == nullptr) return nullptr;
    opt_.trace->context.faults.push_back({});
    TraceFault& tf = opt_.trace->context.faults.back();
    tf.slot = slot_;
    tf.kind = kind;
    return &tf;
  }

  /// Kills every (still live) BS in `downs`: stream markers, queue drops,
  /// re-homing, hop-1 demotions, scheme-C recoloring — in that order, all
  /// deterministic (BSs ascending, queues FIFO).
  void apply_bs_down(const std::vector<std::uint32_t>& downs) {
    std::vector<std::uint32_t> fresh;
    for (std::uint32_t l : downs)
      if (bs_alive_[l] != 0) fresh.push_back(l);  // down on dead BS: no-op
    if (fresh.empty()) return;
    MANETCAP_CHECK_MSG(live_bs_ > fresh.size(),
                       "FaultPlan: fault plan leaves no live base station "
                       "at slot " << slot_);
    TraceFault* tf = open_trace_fault(TraceFault::kKindBsDown);
    for (std::uint32_t l : fresh) {
      bs_alive_[l] = 0;
      --live_bs_;
      if (tf != nullptr) {
        tf->bs.push_back(node_of_bs(l));
        opt_.trace->record(TraceEventKind::kBsDown, slot_, 0, 0,
                           node_of_bs(l), node_of_bs(l));
      }
    }
    for (std::uint32_t l : fresh) drop_queue(l);
    rebuild_serving(tf);
  }

  void apply_bs_up(std::uint32_t l) {
    if (bs_alive_[l] != 0) return;  // up on a live BS: no-op
    bs_alive_[l] = 1;
    ++live_bs_;
    TraceFault* tf = open_trace_fault(TraceFault::kKindBsUp);
    if (tf != nullptr) {
      tf->bs.push_back(node_of_bs(l));
      opt_.trace->record(TraceEventKind::kBsUp, slot_, 0, 0, node_of_bs(l),
                         node_of_bs(l));
    }
    rebuild_serving(tf);
  }

  /// Drops a dying BS's entire queue, FIFO order.
  void drop_queue(std::uint32_t l) {
    drop_all_at(node_of_bs(l), Counter::kDroppedBsOutage);
  }

  /// Drops every packet queued at `node` (a dying BS or a departing MS),
  /// FIFO order. The simulator's only loss sources: each packet counts
  /// under kDropped AND the cause counter `reason` and releases its
  /// flow-control window slot, so the conservation identity
  /// (injected == delivered + queued + dropped) still closes.
  void drop_all_at(std::uint32_t node, Counter reason) {
    const std::size_t base = q_base(node);
    const std::size_t qs = q_size_[node];
    for (std::size_t idx = 0; idx < qs; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      --count_own_[flow];
      --in_network_;
      audit_.inc(Counter::kDropped);
      audit_.inc(reason);
      if (opt_.trace != nullptr)
        opt_.trace->record(TraceEventKind::kDrop, slot_, flow,
                           q_hop_[base + idx], node, node);
    }
    q_size_[node] = 0;
  }

  /// Re-scales one wired edge's accrual rate. Credit earned at the old
  /// scale is settled through the fault slot first (token-bucket cap
  /// included), so a later top-up cannot retroactively apply the new rate
  /// to slots already elapsed; severing (scale 0) also dumps the bucket.
  void apply_wire_scale(const FaultEvent& e) {
    const std::uint32_t a = std::min(e.bs, e.bs2);
    const std::uint32_t b = std::max(e.bs, e.bs2);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto [wire, first_use] = wire_credit_.try_emplace(key);
    if (first_use) wire->last_topup = slot_;
    const double c = net_.params().c();
    if (wire->last_topup < slot_) {
      wire->credit += (c * wire->scale) *
                      static_cast<double>(slot_ - wire->last_topup);
      wire->credit = std::min(wire->credit, std::max(1.0, 4.0 * c));
    }
    wire->last_topup = slot_;
    wire->scale = e.scale;
    if (e.scale == 0.0) wire->credit = 0.0;
    TraceFault* tf = open_trace_fault(TraceFault::kKindWireScale);
    if (tf != nullptr) {
      tf->bs = {node_of_bs(a), node_of_bs(b)};
      tf->scale = e.scale;
      opt_.trace->record(TraceEventKind::kWireScale, slot_, 0, 0,
                         node_of_bs(a), node_of_bs(b));
    }
  }

  /// Nearest live BS to `p` (ties break to the lowest id — deterministic).
  std::uint32_t nearest_live_bs(const geom::Point& p) const {
    std::uint32_t best = geom::SpatialHash::kNone;
    double best_d2 = 0.0;
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (bs_alive_[l] == 0) continue;
      const double d2 = geom::torus_dist2(p, net_.bs_pos()[l]);
      if (best == geom::SpatialHash::kNone || d2 < best_d2) {
        best = l;
        best_d2 = d2;
      }
    }
    MANETCAP_CHECK_MSG(best != geom::SpatialHash::kNone,
                       "fault re-homing found no live BS");
    return best;
  }

  /// Recomputes every MS's serving set over the live BSs — the same rule
  /// init used (scheme B: all BSs within the contact distance, nearest-BS
  /// fallback when none; scheme C: nearest BS) restricted to live ones.
  /// An MS whose membership is unchanged as a set keeps its old list
  /// verbatim (order included), so an untouched region of the network sees
  /// zero behavioral difference. Changed MSs are the "affected" set: their
  /// new lists are recorded in the trace timeline, and hop-1 packets parked
  /// at a BS that no longer serves their destination are demoted to hop 0
  /// (they re-forward over the wired backbone).
  void rebuild_serving(TraceFault* tf) {
    std::vector<std::uint32_t> new_start(n_ + 1, 0);
    std::vector<std::uint32_t> new_ids;
    new_ids.reserve(serving_ids_.size());
    std::vector<std::uint8_t> new_fallback(n_, 0);
    std::vector<std::uint8_t> changed(n_, 0);
    const double contact2 = contact_ * contact_;
    for (std::uint32_t i = 0; i < n_; ++i) {
      const geom::Point home = net_.ms_home()[i];
      const std::size_t mark = new_ids.size();
      if (opt_.scheme == SlotScheme::kSchemeB) {
        // Same inclusive predicate SpatialHash::visit_disk applies
        // (dist² <= contact²), so boundary MSs are not spuriously rehomed.
        for (std::uint32_t l = 0; l < k_; ++l)
          if (bs_alive_[l] != 0 &&
              geom::torus_dist2(home, net_.bs_pos()[l]) <= contact2)
            new_ids.push_back(l);
        if (new_ids.size() == mark) {
          new_ids.push_back(nearest_live_bs(home));
          new_fallback[i] = 1;
        }
      } else {
        new_ids.push_back(nearest_live_bs(home));
      }
      const std::uint32_t ob = serving_start_[i], oe = serving_start_[i + 1];
      bool same = oe - ob == new_ids.size() - mark &&
                  new_fallback[i] == serving_is_fallback_[i];
      for (std::uint32_t s = ob; same && s < oe; ++s) {
        bool found = false;
        for (std::size_t j = mark; j < new_ids.size() && !found; ++j)
          found = new_ids[j] == serving_ids_[s];
        same = found;
      }
      if (same) {
        std::copy(serving_ids_.begin() + ob, serving_ids_.begin() + oe,
                  new_ids.begin() + static_cast<std::ptrdiff_t>(mark));
      } else {
        changed[i] = 1;
        audit_.inc(Counter::kMsRehomed);
        if (tf != nullptr) {
          tf->rehomed_ms.push_back(i);
          auto& list = tf->rehomed_serving.emplace_back(
              new_ids.begin() + static_cast<std::ptrdiff_t>(mark),
              new_ids.end());
          for (std::uint32_t& v : list) v += static_cast<std::uint32_t>(n_);
        }
      }
      new_start[i + 1] = static_cast<std::uint32_t>(new_ids.size());
    }
    serving_start_.swap(new_start);
    serving_ids_.swap(new_ids);
    serving_is_fallback_.swap(new_fallback);

    // Demote stranded hop-1 packets: their BS no longer serves the
    // destination, so the downlink contract would never fire. Hop 0 lets
    // wired_step re-forward them to the new serving set. BSs ascending,
    // FIFO within a queue.
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (bs_alive_[l] == 0) continue;
      const std::uint32_t node = node_of_bs(l);
      const std::size_t base = q_base(node);
      for (std::size_t idx = 0; idx < q_size_[node]; ++idx) {
        if (q_hop_[base + idx] != 1) continue;
        const std::uint32_t d = dest_[q_flow_[base + idx]];
        if (changed[d] == 0) continue;
        bool serves = false;
        for (std::uint32_t s = serving_start_[d];
             s < serving_start_[d + 1] && !serves; ++s)
          serves = serving_ids_[s] == l;
        if (serves) continue;
        q_hop_[base + idx] = 0;
        audit_.inc(Counter::kHop1Demoted);
        if (opt_.trace != nullptr)
          opt_.trace->record(TraceEventKind::kRehome, slot_,
                             q_flow_[base + idx], 0, node, node);
      }
    }

    if (opt_.scheme == SlotScheme::kSchemeC) rebuild_members_and_colors();
  }

  /// One TDMA slot of scheme C: every cell of the active color serves one
  /// uplink and one downlink on its two symmetric channels. Returns the
  /// number of active cells (the concurrency statistic).
  std::size_t scheme_c_slot(std::size_t t) {
    const int active = static_cast<int>(t % num_colors_);
    std::size_t served = 0;
    for (std::uint32_t l = 0; l < k_; ++l) {
      const std::uint32_t mb = members_start_[l], me = members_start_[l + 1];
      if (cell_color_[l] != active || mb == me) continue;
      ++served;
      const std::uint32_t node = static_cast<std::uint32_t>(n_) + l;
      const std::size_t base = q_base(node);
      // Uplink channel: the round-robin member injects one packet.
      const std::uint32_t i = members_ids_[mb + rr_cell_[l]++ % (me - mb)];
      try_inject(i, node);
      // Downlink channel: deliver one wired-arrived packet whose
      // destination lives in this cell. The scan must cover the whole
      // queue, not a bounded prefix: hop-0 packets stalled on wired
      // credit keep their positions at the head, so a kScanDepth-limited
      // scan permanently starves every deliverable hop-1 packet queued
      // behind ≥ kScanDepth of them.
      bool delivered_one = false;
      for (std::size_t idx = 0; idx < q_size_[node]; ++idx) {
        if (q_hop_[base + idx] != 1) continue;
        const std::uint32_t d = dest_[q_flow_[base + idx]];
        if (serving_ids_[serving_start_[d]] == l) {
          const std::uint32_t flow = q_flow_[base + idx];
          const std::uint32_t hop = q_hop_[base + idx];
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(node, idx);
          deliver(flow, hop, born, node);
          delivered_one = true;
          break;
        }
      }
      if (!delivered_one && q_size_[node] > 0)
        audit_.inc(Counter::kDownlinkStarved);
    }
    return served;
  }

  bool is_bs(std::uint32_t id) const { return id >= n_; }

  /// Moves at most one packet from `from` to `to` for the active scheme.
  void transfer(std::uint32_t from, std::uint32_t to) {
    switch (opt_.scheme) {
      case SlotScheme::kSchemeA:
        transfer_scheme_a(from, to);
        break;
      case SlotScheme::kTwoHop:
        transfer_two_hop(from, to);
        break;
      case SlotScheme::kSchemeB:
        transfer_scheme_b(from, to);
        break;
      case SlotScheme::kSchemeC:
        break;  // scheme C never uses S* pairs (static TDMA)
    }
  }

  void deliver(std::uint32_t flow, std::uint32_t hop, std::uint32_t born,
               std::uint32_t holder) {
    ++delivered_[flow];
    --count_own_[flow];  // release the flow-control window slot
    --in_network_;
    audit_.inc(Counter::kDelivered);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kDeliver, slot_, flow, hop, holder,
                         dest_[flow]);
    if (measuring_ && opt_.track_delays && born >= opt_.warmup)
      delays_.push_back(static_cast<double>(slot_ - born));
  }

  /// Source injection under the flow-control window: pushes one packet of
  /// `flow`'s own traffic into node `node`'s queue, counting every
  /// rejection — a full queue used to no-op silently, making the offered
  /// load unknowable.
  void try_inject(std::uint32_t flow, std::uint32_t node) {
    // Traffic-model arrival gate (null for the legacy saturated-CBR
    // path): a flow that has not started, has exhausted its size, or is
    // in an off-gap offers nothing this meeting. The on-off gate advances
    // lazily per flow, so its state at a slot is independent of which
    // earlier slots were queried — a requirement for shard bit-identity.
    if (demands_ != nullptr) {
      const net::FlowDemand& d = (*demands_)[flow];
      if (slot_ < d.start || inj_count_[flow] >= d.size ||
          (has_onoff_ && !onoff_[flow].on_at(slot_))) {
        audit_.inc(Counter::kInjectGatedTraffic);
        return;
      }
    }
    // Churn gate: an absent source offers nothing; traffic toward an
    // absent destination is refused at the source (it would be dropped on
    // arrival anyway).
    if (!ms_alive_.empty() &&
        (ms_alive_[flow] == 0 || ms_alive_[dest_[flow]] == 0)) {
      audit_.inc(Counter::kInjectBlockedChurn);
      return;
    }
    if (count_own_[flow] >= opt_.source_backlog) {
      audit_.inc(Counter::kInjectRejectWindowFull);
      return;
    }
    if (q_size_[node] >= q_cap(node)) {
      audit_.inc(Counter::kInjectRejectQueueFull);
      return;
    }
    push_packet(node, flow, 0, slot_);
    ++count_own_[flow];
    ++in_network_;
    if (demands_ != nullptr) ++inj_count_[flow];
    audit_.inc(Counter::kInjected);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kInject, slot_, flow, 0, flow, node);
  }

  // Scheme A: a relay in squarelet path[h] hands the packet to a node whose
  // home squarelet is path[h+1], or directly to the destination.
  void transfer_scheme_a(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;  // pure ad hoc scheme
    // A departed MS still occupies its position, so S* can schedule a
    // meeting with the ghost — the meeting is simply wasted (the dead-BS
    // semantics applied to churn).
    if (!ms_alive_.empty() && (ms_alive_[from] == 0 || ms_alive_[to] == 0))
      return;

    // Source injection: keep the head of the pipeline saturated.
    try_inject(from, from);

    const std::size_t base = q_base(from);
    const std::size_t scan = std::min<std::size_t>(q_size_[from], kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      const std::uint32_t hop = q_hop_[base + idx];
      if (to == dest_[flow]) {
        // The destination itself can take delivery from any path position
        // at or next to its own squarelet; with H-V routing the packet is
        // only ever co-located with the destination at the final cells, so
        // accept delivery whenever they meet.
        const std::uint32_t born = q_born_[base + idx];
        erase_packet(from, idx);
        deliver(flow, hop, born, from);
        return;
      }
      // At the last path cell only the destination itself can take the
      // packet (handled above). `to` cannot be a BS here — the early
      // return already excluded BS endpoints.
      if (hop + 1 >= path_start_[flow + 1] - path_start_[flow]) continue;
      if (home_cell_[to] == path_cells_[path_start_[flow] + hop + 1]) {
        if (q_size_[to] < q_cap(to)) {
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          push_packet(to, flow, hop + 1, born);
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, flow, hop + 1,
                               from, to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Two-hop: source → any relay → destination.
  void transfer_two_hop(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;
    if (!ms_alive_.empty() && (ms_alive_[from] == 0 || ms_alive_[to] == 0))
      return;  // ghost meeting (see transfer_scheme_a)
    try_inject(from, from);
    const std::size_t base = q_base(from);
    const std::size_t scan = std::min<std::size_t>(q_size_[from], kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      if (to == dest_[flow]) {
        const std::uint32_t hop = q_hop_[base + idx];
        const std::uint32_t born = q_born_[base + idx];
        erase_packet(from, idx);
        deliver(flow, hop, born, from);
        return;
      }
      // Only the source hands off to a relay (exactly two hops). The relay
      // hand-off advances hop to 1, so "a third hop would be needed" is
      // visible in the packet state (and in the trace).
      if (flow == from) {
        if (q_size_[to] < q_cap(to)) {
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          push_packet(to, flow, 1, born);
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, flow, 1, from,
                               to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Scheme B: MS→BS uplink; BS queues drain over the wired backbone in
  // wired_step(); BS→MS downlink on meeting the destination.
  void transfer_scheme_b(std::uint32_t from, std::uint32_t to) {
    if (!is_bs(from) && is_bs(to)) {
      if (!bs_is_live(to - static_cast<std::uint32_t>(n_))) {
        // A dead BS still occupies its position, so S* can schedule a
        // meeting with it — the meeting is simply wasted.
        audit_.inc(Counter::kUplinkBlockedBsDown);
        return;
      }
      // Uplink: inject one packet of `from`'s own flow (within the
      // flow-control window).
      try_inject(from, to);
      return;
    }
    if (is_bs(from) && !is_bs(to)) {
      // Downlink: deliver a packet destined to `to`, if this BS holds one.
      const std::size_t base = q_base(from);
      const std::size_t scan =
          std::min<std::size_t>(q_size_[from], kScanDepth);
      for (std::size_t idx = 0; idx < scan; ++idx) {
        if (dest_[q_flow_[base + idx]] == to && q_hop_[base + idx] == 1) {
          const std::uint32_t flow = q_flow_[base + idx];
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          deliver(flow, 1, born, from);
          return;
        }
      }
    }
  }

  // Wired phase: every edge accrues c(n) units of credit per slot (lazily,
  // from the slot of its last use); a BS forwards each uplink packet
  // (hop 0) to a BS serving the destination once the edge holds a full
  // unit of credit.
  void wired_step(std::size_t slot) {
    const double c = net_.params().c();
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (!bs_is_live(l)) continue;  // a dead BS's queue was dropped
      const std::uint32_t node = static_cast<std::uint32_t>(n_) + l;
      const std::size_t base = q_base(node);
      // Single compaction pass: read cursor `r` visits every packet in the
      // original order (so the rr_ round-robin and credit decisions are
      // made in exactly the sequence the old erase-in-place loop made
      // them), write cursor `w` keeps the survivors.
      const std::size_t qs = q_size_[node];
      std::size_t w = 0;
      for (std::size_t r = 0; r < qs; ++r) {
        const auto keep = [&] {
          if (w != r) {
            q_flow_[base + w] = q_flow_[base + r];
            q_hop_[base + w] = q_hop_[base + r];
            q_born_[base + w] = q_born_[base + r];
          }
          ++w;
        };
        if (q_hop_[base + r] != 0) {
          keep();
          continue;
        }
        const std::uint32_t flow = q_flow_[base + r];
        const std::uint32_t d = dest_[flow];
        const std::uint32_t sb = serving_start_[d], se = serving_start_[d + 1];
        if (se == sb) {
          // Unreachable since init_scheme_b/_c guarantee a serving BS per
          // MS; counted defensively so a future association change that
          // reintroduces orphans fails the audit instead of stalling.
          audit_.inc(Counter::kUndeliverable);
          keep();
          continue;
        }
        // Round-robin over the destination's serving BSs.
        const std::uint32_t target = serving_ids_[sb + rr_++ % (se - sb)];
        if (target == l) {
          q_hop_[base + r] = 1;  // already at a serving BS
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), flow, 1,
                               node, node);
          keep();
          continue;
        }
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(l, target)) << 32) |
            std::max(l, target);
        auto [wire, first_use] = wire_credit_.try_emplace(key);
        // A fresh edge starts accruing at its first-use slot — crediting
        // retroactively from slot 0 would let low-c(n) edges burst a full
        // bucket at first touch and inflate early infra throughput.
        if (first_use) wire->last_topup = slot;
        if (wire->last_topup < slot + 1) {
          // scale is exactly 1.0 outside a fault plan, so c·scale·Δ is
          // bit-identical to the historical c·Δ accrual.
          wire->credit += (c * wire->scale) *
                          static_cast<double>(slot + 1 - wire->last_topup);
          // Token bucket with depth scaled to the wire rate (4 slots of
          // credit, but never below one packet so low-c edges still
          // transmit): an idle edge cannot burst arbitrarily later.
          wire->credit = std::min(wire->credit, std::max(1.0, 4.0 * c));
          wire->last_topup = slot + 1;
        }
        if (wire->credit < 1.0) {
          audit_.inc(Counter::kWiredCreditStall);
          keep();
        } else if (q_size_[n_ + target] >= bs_cap_) {
          audit_.inc(Counter::kWiredRejectQueueFull);
          keep();
        } else {
          wire->credit -= 1.0;
          push_packet(static_cast<std::uint32_t>(n_) + target, flow, 1,
                      q_born_[base + r]);
          audit_.inc(Counter::kWiredForwarded);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), flow, 1,
                               node,
                               static_cast<std::uint32_t>(n_ + target));
        }
      }
      q_size_[node] = w;
    }
  }

  // --- sharded slot pipeline -----------------------------------------------
  /// Stripe-parallel incremental hash maintenance. Three phases:
  ///   M1 (parallel over id ranges): compute each MS's old/new bucket row
  ///      into scratch — reads only pos_all_ and mpos, writes disjoint
  ///      ranges.
  ///   M2 (parallel over stripes of bucket rows): stripe s owns rows
  ///      [g·s/S, g·(s+1)/S) and processes exactly the ids whose OLD row
  ///      lies in it. Movers staying inside the stripe are rebucketed
  ///      immediately: every chain pointer a move() touches belongs to the
  ///      id's old or new bucket — chain neighbors share the id's bucket,
  ///      and each bucket row belongs to exactly one stripe — so writes
  ///      from different stripes never alias. Movers whose new row falls
  ///      outside the stripe are deferred.
  ///   M3 (serial): apply the deferred movers, stripe-ascending then
  ///      id-ascending.
  /// The per-bucket id SETS after M3 equal the serial path's exactly; only
  /// within-bucket chain order can differ, which no consumer observes (S*
  /// lone counting is order-free, nearest() never runs on this hash
  /// mid-run). The shard-invariance tests byte-compare the traces to pin
  /// this down.
  void sharded_move(geom::SpatialHash& hash,
                    const std::vector<geom::Point>& mpos,
                    std::size_t shards) {
    hash.ensure_incremental();  // the CSR→list conversion must stay serial
    util::ThreadPool& pool = util::ThreadPool::shared();
    const std::int64_t g = hash.grid_side();
    move_old_row_.resize(n_);
    move_new_row_.resize(n_);
    move_deferred_.resize(shards);
    pool.parallel_for(shards, [&](std::size_t s) {
      const std::size_t b = n_ * s / shards;
      const std::size_t e = n_ * (s + 1) / shards;
      for (std::size_t i = b; i < e; ++i) {
        move_old_row_[i] =
            static_cast<std::int32_t>(hash.bucket_row_of(pos_all_[i]));
        move_new_row_[i] =
            static_cast<std::int32_t>(hash.bucket_row_of(mpos[i]));
      }
    });
    pool.parallel_for(shards, [&](std::size_t s) {
      const auto ss = static_cast<std::int64_t>(s);
      const auto sn = static_cast<std::int64_t>(shards);
      const std::int64_t rb = g * ss / sn;
      const std::int64_t re = g * (ss + 1) / sn;
      auto& defer = move_deferred_[s];
      defer.clear();
      for (std::uint32_t i = 0; i < n_; ++i) {
        const std::int32_t ro = move_old_row_[i];
        if (ro < rb || ro >= re) continue;
        const std::int32_t rn = move_new_row_[i];
        if (rn >= rb && rn < re) {
          hash.move(i, pos_all_[i], mpos[i]);
          pos_all_[i] = mpos[i];
        } else {
          defer.push_back(i);
        }
      }
    });
    for (const auto& defer : move_deferred_)
      for (std::uint32_t i : defer) {
        hash.move(i, pos_all_[i], mpos[i]);
        pos_all_[i] = mpos[i];
      }
  }

  // --- checkpoint / restore (MCCKPT1, docs/SCALE.md) -----------------------
  /// Fingerprints bind a checkpoint to the run that wrote it: the exact
  /// traffic pattern, network geometry and fault timeline — anything the
  /// config echo (n, k, seed, …) cannot distinguish.
  std::uint64_t dest_fingerprint() const {
    std::vector<std::uint8_t> buf;
    buf.reserve(dest_.size() * 5);
    for (std::uint32_t d : dest_) util::binio::put_varint(buf, d);
    return util::binio::fnv1a(buf.data(), buf.size());
  }

  std::uint64_t geometry_fingerprint() const {
    std::vector<std::uint8_t> buf;
    buf.reserve((net_.ms_home().size() + net_.bs_pos().size()) * 16);
    for (const geom::Point& p : net_.ms_home()) {
      util::binio::put_f64(buf, p.x);
      util::binio::put_f64(buf, p.y);
    }
    for (const geom::Point& p : net_.bs_pos()) {
      util::binio::put_f64(buf, p.x);
      util::binio::put_f64(buf, p.y);
    }
    return util::binio::fnv1a(buf.data(), buf.size());
  }

  std::uint64_t faults_fingerprint() const {
    if (faults_ == nullptr) return 0;
    std::vector<std::uint8_t> buf;
    for (const FaultEvent& e : faults_->events) {
      util::binio::put_varint(buf, e.slot);
      buf.push_back(static_cast<std::uint8_t>(e.kind));
      util::binio::put_varint(buf, e.bs);
      util::binio::put_varint(buf, e.bs2);
      util::binio::put_f64(buf, e.scale);
      util::binio::put_f64(buf, e.center.x);
      util::binio::put_f64(buf, e.center.y);
      util::binio::put_f64(buf, e.radius);
      util::binio::put_varint(buf, e.ms);
      buf.push_back(e.mobility);
    }
    return util::binio::fnv1a(buf.data(), buf.size());
  }

  /// Binds a checkpoint to the full demand set (the dest fingerprint only
  /// covers destinations): sizes, starts and on-off means. 0 for the
  /// legacy saturated-CBR path.
  std::uint64_t traffic_fingerprint() const {
    if (demands_ == nullptr) return 0;
    std::vector<std::uint8_t> buf;
    buf.reserve(demands_->size() * 24);
    for (const net::FlowDemand& d : *demands_) {
      util::binio::put_varint(buf, d.dst);
      util::binio::put_u64_fixed(buf, d.size);
      util::binio::put_varint(buf, d.start);
      util::binio::put_f64(buf, d.on_mean);
      util::binio::put_f64(buf, d.off_mean);
    }
    return util::binio::fnv1a(buf.data(), buf.size());
  }

  /// Serializes the full simulator state as of the top of slot `t_next`
  /// (i.e. end of slot t_next − 1) and atomically replaces
  /// opt_.checkpoint_path (tmp + rename — a crash mid-write never corrupts
  /// the previous checkpoint).
  void save_checkpoint(std::size_t t_next,
                       const mobility::MobilityProcess& process,
                       bool hash_ready, std::uint64_t pair_count) const {
    using util::binio::put_f64;
    using util::binio::put_id_list;
    using util::binio::put_u64_fixed;
    using util::binio::put_varint;
    std::vector<std::uint8_t> out;
    out.reserve(64 + (n_ + k_) * 24);
    for (int i = 0; i < 8; ++i)  // magic, byte-wise (see trace.cpp)
      out.push_back(static_cast<std::uint8_t>(kCkptMagic[i]));
    // Config echo — every knob that shapes the trajectory.
    out.push_back(static_cast<std::uint8_t>(opt_.scheme));
    out.push_back(static_cast<std::uint8_t>(opt_.mobility));
    put_varint(out, n_);
    put_varint(out, k_);
    put_varint(out, opt_.slots);
    put_varint(out, opt_.warmup);
    put_varint(out, opt_.max_queue);
    put_varint(out, opt_.source_backlog);
    put_varint(out, opt_.seed);
    put_f64(out, opt_.ct);
    put_f64(out, opt_.delta);
    // PHY backend + parameters: a checkpoint written under one
    // interference model must not resume under another.
    out.push_back(static_cast<std::uint8_t>(opt_.phy));
    put_f64(out, opt_.sinr.path_loss);
    put_f64(out, opt_.sinr.beta);
    put_f64(out, opt_.sinr.snr_edge);
    put_f64(out, opt_.sinr.power);
    put_f64(out, opt_.sinr.field_radius);
    put_f64(out, opt_.sinr.cca);
    put_f64(out, k_ > 0 ? net_.params().c() : 0.0);
    put_u64_fixed(out, dest_fingerprint());
    put_u64_fixed(out, geometry_fingerprint());
    put_u64_fixed(out, faults_fingerprint());
    put_u64_fixed(out, traffic_fingerprint());
    // Cursor + scalar state.
    put_varint(out, t_next);
    out.push_back(measuring_ ? 1 : 0);
    out.push_back(hash_ready ? 1 : 0);
    put_varint(out, pair_count);
    put_varint(out, in_network_);
    put_varint(out, rr_);
    put_varint(out, next_fault_);
    put_varint(out, live_bs_);
    put_varint(out, bs_alive_.size());
    out.insert(out.end(), bs_alive_.begin(), bs_alive_.end());
    // Churn + traffic-model state (empty/absent on the legacy path).
    put_varint(out, ms_alive_.size());
    out.insert(out.end(), ms_alive_.begin(), ms_alive_.end());
    put_varint(out, live_ms_);
    out.push_back(demands_ != nullptr ? 1 : 0);
    if (demands_ != nullptr) {
      for (std::uint64_t cnt : inj_count_) put_varint(out, cnt);
      out.push_back(has_onoff_ ? 1 : 0);
      if (has_onoff_) {
        for (const net::OnOffGate& gate : onoff_) {
          put_u64_fixed(out, gate.until());
          out.push_back(gate.is_on() ? 1 : 0);
          for (std::uint64_t s : gate.rng_state()) put_u64_fixed(out, s);
        }
      }
    }
    // Positions (the hash is rebuilt from these on load, not serialized).
    for (const geom::Point& p : pos_all_) {
      put_f64(out, p.x);
      put_f64(out, p.y);
    }
    for (std::uint64_t d : delivered_) put_varint(out, d);
    for (std::uint32_t w : count_own_) put_varint(out, w);
    // Queues: occupied prefixes only — a near-empty 10⁶-node run
    // checkpoints in kilobytes, not the slab size.
    for (std::uint32_t node = 0; node < n_ + k_; ++node) {
      const std::size_t base = q_base(node);
      put_varint(out, q_size_[node]);
      for (std::size_t j = 0; j < q_size_[node]; ++j) {
        put_varint(out, q_flow_[base + j]);
        put_varint(out, q_hop_[base + j]);
        put_varint(out, q_born_[base + j]);
      }
    }
    // Serving CSR — faults mutate it mid-run, so the ctor's version is not
    // authoritative.
    put_id_list(out, serving_start_);
    put_id_list(out, serving_ids_);
    put_varint(out, serving_is_fallback_.size());
    out.insert(out.end(), serving_is_fallback_.begin(),
               serving_is_fallback_.end());
    put_varint(out, rr_cell_.size());
    for (std::size_t v : rr_cell_) put_varint(out, v);
    put_varint(out, wire_credit_.size());
    wire_credit_.for_each_sorted([&](std::uint64_t key, const WireState& w) {
      put_u64_fixed(out, key);
      put_f64(out, w.credit);
      put_varint(out, w.last_topup);
      put_f64(out, w.scale);
    });
    // Audit registry + series + delay log.
    for (std::size_t c = 0; c < kNumCounters; ++c)
      put_varint(out, audit_.count(static_cast<Counter>(c)));
    put_varint(out, audit_.series().size());
    for (const SlotSample& s : audit_.series()) {
      put_varint(out, s.slot);
      put_varint(out, s.queued);
      put_varint(out, s.scheduled_pairs);
      put_varint(out, s.active_cells);
      put_varint(out, s.live_bs);
    }
    put_varint(out, delays_.size());
    for (double d : delays_) put_f64(out, d);
    // Mobility (RNG streams + evolving coordinates).
    process.save_state(out);
    // In-flight trace, so a resumed traced run emits the identical file.
    if (opt_.trace != nullptr) {
      out.push_back(1);
      encode_faults(out, opt_.trace->context.faults);
      encode_events(out, opt_.trace->events);
    } else {
      out.push_back(0);
    }
    put_u64_fixed(out, util::binio::fnv1a(out.data(), out.size()));

    const std::string tmp = opt_.checkpoint_path + ".tmp";
    {
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      MANETCAP_CHECK_MSG(f.good(),
                         "checkpoint: cannot open for write: " << tmp);
      f.write(reinterpret_cast<const char*>(out.data()),
              static_cast<std::streamsize>(out.size()));
      f.flush();
      MANETCAP_CHECK_MSG(f.good(), "checkpoint: write failed: " << tmp);
    }
    MANETCAP_CHECK_MSG(
        std::rename(tmp.c_str(), opt_.checkpoint_path.c_str()) == 0,
        "checkpoint: atomic rename failed: " << opt_.checkpoint_path);
  }

  /// Restores state from opt_.resume_path. Validates the config echo and
  /// fingerprints against this run's configuration, then loads everything
  /// save_checkpoint wrote and rebuilds the derived structures (spatial
  /// hash from positions, scheme-C members/colors from the restored
  /// association). Returns the slot to resume at.
  std::size_t load_checkpoint(mobility::MobilityProcess& process,
                              geom::SpatialHash& hash, bool& hash_ready,
                              std::uint64_t& pair_count) {
    using util::binio::get_f64;
    using util::binio::get_id_list;
    std::ifstream in(opt_.resume_path, std::ios::binary | std::ios::ate);
    MANETCAP_CHECK_MSG(in.good(),
                       "checkpoint: cannot open for read: " << opt_.resume_path);
    const std::streamsize fsize = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(fsize));
    in.read(reinterpret_cast<char*>(bytes.data()), fsize);
    MANETCAP_CHECK_MSG(in.good(),
                       "checkpoint: read failed: " << opt_.resume_path);
    MANETCAP_CHECK_MSG(bytes.size() >= 16, "checkpoint: file too small");
    MANETCAP_CHECK_MSG(std::memcmp(bytes.data(), kCkptMagic, 8) == 0,
                       "checkpoint: bad magic (not an MCCKPT1 file)");
    const std::size_t body = bytes.size() - 8;
    MANETCAP_CHECK_MSG(util::binio::get_u64_fixed(bytes, body) ==
                           util::binio::fnv1a(bytes.data(), body),
                       "checkpoint: checksum mismatch (truncated or "
                       "corrupted file)");
    util::binio::ByteReader r{bytes, 8, body, "checkpoint"};

    MANETCAP_CHECK_MSG(r.u8() == static_cast<std::uint8_t>(opt_.scheme),
                       "checkpoint: scheme mismatch");
    MANETCAP_CHECK_MSG(r.u8() == static_cast<std::uint8_t>(opt_.mobility),
                       "checkpoint: mobility model mismatch");
    MANETCAP_CHECK_MSG(r.varint() == n_, "checkpoint: n mismatch");
    MANETCAP_CHECK_MSG(r.varint() == k_, "checkpoint: k mismatch");
    MANETCAP_CHECK_MSG(r.varint() == opt_.slots, "checkpoint: slots mismatch");
    MANETCAP_CHECK_MSG(r.varint() == opt_.warmup,
                       "checkpoint: warmup mismatch");
    MANETCAP_CHECK_MSG(r.varint() == opt_.max_queue,
                       "checkpoint: max_queue mismatch");
    MANETCAP_CHECK_MSG(r.varint() == opt_.source_backlog,
                       "checkpoint: source_backlog mismatch");
    MANETCAP_CHECK_MSG(r.varint() == opt_.seed, "checkpoint: seed mismatch");
    MANETCAP_CHECK_MSG(get_f64(r) == opt_.ct, "checkpoint: ct mismatch");
    MANETCAP_CHECK_MSG(get_f64(r) == opt_.delta,
                       "checkpoint: delta mismatch");
    MANETCAP_CHECK_MSG(r.u8() == static_cast<std::uint8_t>(opt_.phy),
                       "checkpoint: phy backend mismatch");
    // The six SINR parameters are always serialized (uniform layout) but
    // only binding when a non-protocol backend is active — under the
    // protocol model they are ignored by the run, so they must not be
    // able to block a resume.
    const double ck_sinr[6] = {get_f64(r), get_f64(r), get_f64(r),
                               get_f64(r), get_f64(r), get_f64(r)};
    if (opt_.phy != phy::PhyKind::kProtocol) {
      const double now_sinr[6] = {opt_.sinr.path_loss,    opt_.sinr.beta,
                                  opt_.sinr.snr_edge,     opt_.sinr.power,
                                  opt_.sinr.field_radius, opt_.sinr.cca};
      for (int i = 0; i < 6; ++i)
        MANETCAP_CHECK_MSG(ck_sinr[i] == now_sinr[i],
                           "checkpoint: SINR parameter mismatch");
    }
    MANETCAP_CHECK_MSG(get_f64(r) == (k_ > 0 ? net_.params().c() : 0.0),
                       "checkpoint: wired capacity c(n) mismatch");
    MANETCAP_CHECK_MSG(r.u64_fixed() == dest_fingerprint(),
                       "checkpoint: traffic pattern (dest) fingerprint "
                       "mismatch");
    MANETCAP_CHECK_MSG(r.u64_fixed() == geometry_fingerprint(),
                       "checkpoint: network geometry fingerprint mismatch");
    MANETCAP_CHECK_MSG(r.u64_fixed() == faults_fingerprint(),
                       "checkpoint: fault plan fingerprint mismatch");
    MANETCAP_CHECK_MSG(r.u64_fixed() == traffic_fingerprint(),
                       "checkpoint: traffic demand fingerprint mismatch");

    const std::size_t t_next = r.varint();
    MANETCAP_CHECK_MSG(t_next <= opt_.slots,
                       "checkpoint: resume slot beyond the horizon");
    measuring_ = r.u8() != 0;
    hash_ready = r.u8() != 0;
    pair_count = r.varint();
    in_network_ = r.varint();
    rr_ = r.varint();
    next_fault_ = r.varint();
    MANETCAP_CHECK_MSG(
        faults_ == nullptr || next_fault_ <= faults_->events.size(),
        "checkpoint: fault cursor out of range");
    live_bs_ = r.varint();
    MANETCAP_CHECK_MSG(r.varint() == bs_alive_.size(),
                       "checkpoint: BS liveness table size mismatch");
    for (auto& b : bs_alive_) b = r.u8();
    MANETCAP_CHECK_MSG(r.varint() == ms_alive_.size(),
                       "checkpoint: MS presence table size mismatch");
    for (auto& b : ms_alive_) b = r.u8();
    live_ms_ = r.varint();
    MANETCAP_CHECK_MSG(live_ms_ <= n_,
                       "checkpoint: live MS count out of range");
    MANETCAP_CHECK_MSG((r.u8() != 0) == (demands_ != nullptr),
                       "checkpoint: traffic-model state presence mismatch");
    if (demands_ != nullptr) {
      for (auto& cnt : inj_count_) cnt = r.varint();
      MANETCAP_CHECK_MSG((r.u8() != 0) == has_onoff_,
                         "checkpoint: on-off gate state presence mismatch");
      if (has_onoff_) {
        for (net::OnOffGate& gate : onoff_) {
          const std::uint64_t until = r.u64_fixed();
          const bool on = r.u8() != 0;
          std::array<std::uint64_t, 4> s{};
          for (std::uint64_t& w : s) w = r.u64_fixed();
          gate.restore(until, on, s);
        }
      }
    }
    for (geom::Point& p : pos_all_) {
      p.x = get_f64(r);
      p.y = get_f64(r);
    }
    for (auto& d : delivered_) d = r.varint();
    for (auto& w : count_own_) w = r.u32v();
    for (std::uint32_t node = 0; node < n_ + k_; ++node) {
      const std::uint32_t qs = r.u32v();
      MANETCAP_CHECK_MSG(qs <= q_cap(node),
                         "checkpoint: queue size exceeds capacity at node "
                             << node);
      q_size_[node] = qs;
      const std::size_t base = q_base(node);
      for (std::size_t j = 0; j < qs; ++j) {
        q_flow_[base + j] = r.u32v();
        q_hop_[base + j] = r.u32v();
        q_born_[base + j] = r.u32v();
      }
    }
    serving_start_ = get_id_list(r);
    serving_ids_ = get_id_list(r);
    MANETCAP_CHECK_MSG(
        serving_start_.empty() || (serving_start_.size() == n_ + 1 &&
                                   serving_start_.back() ==
                                       serving_ids_.size()),
        "checkpoint: serving CSR is inconsistent");
    MANETCAP_CHECK_MSG(r.varint() == serving_is_fallback_.size(),
                       "checkpoint: fallback table size mismatch");
    for (auto& b : serving_is_fallback_) b = r.u8();
    MANETCAP_CHECK_MSG(r.varint() == rr_cell_.size(),
                       "checkpoint: cell round-robin table size mismatch");
    for (auto& v : rr_cell_) v = r.varint();
    const std::uint64_t n_edges = r.varint();
    MANETCAP_CHECK_MSG(n_edges <= static_cast<std::uint64_t>(k_) * k_,
                       "checkpoint: wired edge count out of range");
    for (std::uint64_t e = 0; e < n_edges; ++e) {
      const std::uint64_t key = r.u64_fixed();
      auto [wire, first_use] = wire_credit_.try_emplace(key);
      MANETCAP_CHECK_MSG(first_use, "checkpoint: duplicate wired edge key");
      wire->credit = get_f64(r);
      wire->last_topup = r.varint();
      wire->scale = get_f64(r);
    }
    for (std::size_t c = 0; c < kNumCounters; ++c)
      audit_.add(static_cast<Counter>(c), r.varint());  // fresh registry: add == set
    const std::uint64_t n_samples = r.varint();
    MANETCAP_CHECK_MSG(n_samples <= opt_.slots,
                       "checkpoint: series sample count out of range");
    std::vector<SlotSample> samples(n_samples);
    for (SlotSample& s : samples) {
      s.slot = r.u32v();
      s.queued = r.varint();
      s.scheduled_pairs = r.u32v();
      s.active_cells = r.u32v();
      s.live_bs = r.u32v();
    }
    audit_.restore_series(std::move(samples));
    const std::uint64_t n_delays = r.varint();
    MANETCAP_CHECK_MSG(n_delays <= (std::uint64_t{1} << 40),
                       "checkpoint: delay log size out of range");
    delays_.resize(n_delays);
    for (double& d : delays_) d = get_f64(r);
    process.load_state(r);
    const std::uint8_t has_trace = r.u8();
    if (has_trace != 0) {
      MANETCAP_CHECK_MSG(opt_.trace != nullptr,
                         "checkpoint: file carries trace state but no "
                         "trace sink is attached to this run");
      opt_.trace->context.faults = decode_faults(r);
      opt_.trace->events = decode_events(r, 11);
    } else {
      MANETCAP_CHECK_MSG(opt_.trace == nullptr,
                         "checkpoint: a trace sink is attached but the "
                         "file carries no trace state");
    }
    MANETCAP_CHECK_MSG(r.pos == r.end, "checkpoint: trailing bytes");

    // Derived state. The hash is a fresh CSR build over the restored
    // positions — within-bucket order may differ from the incremental
    // chains the original run carried, which is unobservable (see
    // sharded_move). Scheme C re-derives members and colors from the
    // restored association + liveness, exactly as rebuild_serving would.
    if (hash_ready) hash.build(pos_all_);
    if (opt_.scheme == SlotScheme::kSchemeC) rebuild_members_and_colors();
    return t_next;
  }

  template <class T>
  static std::uint64_t vec_bytes(const std::vector<T>& v) {
    return v.capacity() * sizeof(T);
  }

  static constexpr char kCkptMagic[8] = {'M', 'C', 'C', 'K', 'P', 'T', '1',
                                         '\0'};

  static constexpr std::size_t kScanDepth = 16;

  const net::Network& net_;
  const std::vector<std::uint32_t>& dest_;
  SlotSimOptions opt_;
  std::size_t n_;
  std::size_t k_;

  // Queue slabs (SoA): node q's packets occupy
  // [q_base(q), q_base(q) + q_size_[q]) in each of the three parallel
  // arrays, in FIFO order. Per-class capacities (one of them 0 for every
  // scheme) keep the slabs proportional to the queues actually used;
  // uint32 sizes/windows halve the per-node bookkeeping at large n.
  std::size_t ms_cap_;
  std::size_t bs_cap_;
  std::vector<std::uint32_t> q_flow_;
  std::vector<std::uint32_t> q_hop_;
  std::vector<std::uint32_t> q_born_;
  std::vector<std::uint32_t> q_size_;

  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint32_t> count_own_;
  std::vector<double> delays_;  // per delivered packet, measurement window
  std::uint32_t slot_ = 0;      // current slot (delay bookkeeping)
  bool measuring_ = false;

  // Persistent position buffer: MSs at [0, n), BSs at [n, n+k). The BS
  // tail never changes after construction.
  std::vector<geom::Point> pos_all_;

  // Audit state: the metrics registry (absorbed into opt_.metrics at end
  // of run) and a running count of packets resident in any queue — kept
  // incrementally so per-slot sampling is O(1), then cross-checked against
  // the actual queue occupancy by the conservation invariant.
  Metrics audit_;
  std::uint64_t in_network_ = 0;

  // Scheme A state (paths in CSR: flow s's squarelet path is
  // path_cells_[path_start_[s] .. path_start_[s+1])).
  std::unique_ptr<geom::SquareTessellation> tess_;
  std::vector<std::uint32_t> home_cell_;
  std::vector<std::uint32_t> path_start_;
  std::vector<std::uint32_t> path_cells_;

  // Scheme B/C serving sets in CSR (BS indices 0..k).
  std::vector<std::uint32_t> serving_start_;
  std::vector<std::uint32_t> serving_ids_;
  WireCreditMap wire_credit_;
  std::size_t rr_ = 0;

  // Scheme C state (cell members in CSR).
  std::vector<std::uint32_t> members_start_;
  std::vector<std::uint32_t> members_ids_;
  std::vector<int> cell_color_;
  std::size_t num_colors_ = 1;
  std::vector<std::size_t> rr_cell_;

  // Fault-injection state. faults_ stays null for a fault-free run: every
  // fault branch is guarded on it (or on bs_alive_ being empty), so the
  // no-fault code path — and its golden trace bytes — are unchanged.
  const FaultPlan* faults_ = nullptr;
  std::size_t next_fault_ = 0;          // cursor into faults_->events
  std::vector<std::uint8_t> bs_alive_;  // per-BS liveness; empty = all live
  std::size_t live_bs_ = 0;
  double contact_ = 0.0;  // scheme B MS–BS contact distance (re-homing rule)
  std::vector<std::uint8_t> serving_is_fallback_;  // nearest-BS fallback MSs

  // Traffic-model state (tentpole). demands_ stays null for the default
  // saturated-CBR spec — every traffic branch is guarded on it, same
  // discipline as faults_, so the legacy path and its golden trace bytes
  // are unchanged.
  const std::vector<net::FlowDemand>* demands_ = nullptr;
  std::vector<std::uint64_t> inj_count_;  // packets injected per flow
  std::vector<net::OnOffGate> onoff_;     // per-flow burst gates
  bool has_onoff_ = false;

  // MS churn state; empty = everyone present for the whole run.
  std::vector<std::uint8_t> ms_alive_;
  std::size_t live_ms_ = 0;

  // Sharded-move scratch (old/new bucket row per MS, per-stripe deferred
  // movers), reused across slots. Empty on the serial path.
  std::vector<std::int32_t> move_old_row_;
  std::vector<std::int32_t> move_new_row_;
  std::vector<std::vector<std::uint32_t>> move_deferred_;
};

}  // namespace

SlotSimResult run_slot_sim(const net::Network& net,
                           const std::vector<std::uint32_t>& dest,
                           const SlotSimOptions& options) {
  SlotSim sim(net, dest, options);
  return sim.run();
}

SlotSimResult run_slot_sim(const net::Network& net,
                           const std::vector<net::FlowDemand>& demands,
                           const SlotSimOptions& options) {
  net::validate_demands(demands, net.num_ms());
  // The sim holds dest by reference; this wrapper owns the derived map
  // for the sim's lifetime.
  const std::vector<std::uint32_t> dest = net::dest_of(demands);
  SlotSim sim(net, dest, options, &demands);
  return sim.run();
}

}  // namespace manetcap::sim
