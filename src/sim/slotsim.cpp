#include "sim/slotsim.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "analysis/stats.h"
#include "geom/spatial_hash.h"
#include "geom/tessellation.h"
#include "linkcap/link_capacity.h"
#include "mobility/process.h"
#include "sched/sstar.h"
#include "sim/trace.h"
#include "util/check.h"

namespace manetcap::sim {

std::string to_string(SlotScheme s) {
  switch (s) {
    case SlotScheme::kSchemeA:
      return "scheme-A";
    case SlotScheme::kTwoHop:
      return "two-hop";
    case SlotScheme::kSchemeB:
      return "scheme-B";
    case SlotScheme::kSchemeC:
      return "scheme-C";
  }
  return "?";
}

namespace {

std::unique_ptr<mobility::MobilityProcess> make_process(
    const net::Network& net, SlotMobility kind, std::uint64_t seed) {
  const double radius = net.mobility_radius();
  switch (kind) {
    case SlotMobility::kIid:
      return std::make_unique<mobility::IidStationaryMobility>(
          net.ms_home(), net.shape(), 1.0 / net.params().f(), seed);
    case SlotMobility::kWalk:
      return std::make_unique<mobility::BoundedRandomWalk>(net.ms_home(),
                                                           radius, seed);
    case SlotMobility::kPullHome:
      return std::make_unique<mobility::PullHomeMobility>(net.ms_home(),
                                                          radius, seed);
    case SlotMobility::kBrownian:
      return std::make_unique<mobility::BrownianTorusMobility>(net.ms_home(),
                                                               seed);
  }
  MANETCAP_CHECK(false);
  return nullptr;
}

/// Validates a run configuration up front with named errors — a zero
/// max_queue or inverted warmup/slots used to surface as undefined
/// behavior (or a cryptic check) deep inside the run.
void validate_options(const SlotSimOptions& opt) {
  MANETCAP_CHECK_MSG(opt.warmup < opt.slots,
                     "SlotSimOptions: warmup (" << opt.warmup
                         << ") must be < slots (" << opt.slots << ")");
  MANETCAP_CHECK_MSG(opt.max_queue >= 1,
                     "SlotSimOptions: max_queue must be >= 1");
  MANETCAP_CHECK_MSG(opt.ct > 0.0, "SlotSimOptions: ct must be > 0");
  MANETCAP_CHECK_MSG(opt.delta > 0.0, "SlotSimOptions: delta must be > 0");
  MANETCAP_CHECK_MSG(opt.source_backlog >= 1,
                     "SlotSimOptions: source_backlog must be >= 1");
}

/// Wired-edge token-bucket state, keyed by the unordered BS pair.
/// `scale` is the fault-injection bandwidth factor (1 when healthy, 0 when
/// severed); the accrual rate is c(n)·scale.
struct WireState {
  double credit = 0.0;
  std::size_t last_topup = 0;
  double scale = 1.0;
};

/// Open-addressing map from a packed (min BS, max BS) edge key to its
/// WireState. The legacy simulator kept this in a std::map — a pointer
/// chase plus an O(log E) walk per hop-0 packet per slot. Behavior is
/// keyed state only (the map is never iterated), so probing order cannot
/// leak into results.
class WireCreditMap {
 public:
  void reserve_edges(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected + 1) cap <<= 1;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, WireState{});
  }

  /// Returns the slot for `key`, default-constructing it when absent;
  /// second is true on first use (the try_emplace contract).
  std::pair<WireState*, bool> try_emplace(std::uint64_t key) {
    if (keys_.empty()) reserve_edges(8);
    if (2 * (count_ + 1) > keys_.size()) grow();
    std::size_t i = slot_of(key, keys_.size());
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return {&vals_[i], false};
      i = (i + 1) & (keys_.size() - 1);
    }
    keys_[i] = key;
    ++count_;
    return {&vals_[i], true};
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::size_t slot_of(std::uint64_t key, std::size_t cap) {
    // SplitMix64 finalizer: edge keys are dense low-entropy pairs.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((x ^ (x >> 31)) & (cap - 1));
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<WireState> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.assign(old_keys.size() * 2, WireState{});
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = slot_of(old_keys[i], keys_.size());
      while (keys_[j] != kEmpty) j = (j + 1) & (keys_.size() - 1);
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<WireState> vals_;
  std::size_t count_ = 0;
};

/// Shared simulation state and per-scheme forwarding logic.
///
/// All mutable per-packet state is structure-of-arrays: every node's queue
/// is a fixed-capacity run inside three flat slabs (flow / hop / born),
/// FIFO order preserved by in-run compaction, so a slot touches contiguous
/// memory and allocates nothing. Routing structure (H-V paths, serving
/// sets, cell members) is flattened to CSR. Node positions live in one
/// persistent buffer indexed [0, n) for MSs and [n, n+k) for BSs, and the
/// S* spatial hash is maintained incrementally across slots
/// (SpatialHash::move) instead of rebuilt. Event order — and therefore
/// every golden trace byte — is identical to the legacy implementation
/// preserved in slotsim_reference.cpp.
class SlotSim {
 public:
  SlotSim(const net::Network& net, const std::vector<std::uint32_t>& dest,
          const SlotSimOptions& opt)
      : net_(net),
        dest_(dest),
        opt_(opt),
        n_(net.num_ms()),
        k_(net.num_bs()),
        cap_(opt.max_queue),
        q_flow_((n_ + k_) * cap_),
        q_hop_((n_ + k_) * cap_),
        q_born_((n_ + k_) * cap_),
        q_size_(n_ + k_, 0),
        delivered_(n_, 0),
        count_own_(n_, 0),
        pos_all_(n_ + k_) {
    validate_options(opt);
    MANETCAP_CHECK_MSG(dest.size() == n_,
                       "SlotSimOptions: dest must hold one entry per MS");
    if (opt_.faults != nullptr && !opt_.faults->empty()) {
      opt_.faults->validate(k_, opt_.slots);
      MANETCAP_CHECK_MSG(opt_.scheme == SlotScheme::kSchemeB ||
                             opt_.scheme == SlotScheme::kSchemeC,
                         "FaultPlan: BS/wired faults require an "
                         "infrastructure scheme (B or C)");
      // Every fault branch below guards on faults_ — a null (or empty)
      // plan takes exactly the pre-fault code path, byte for byte.
      faults_ = opt_.faults;
      bs_alive_.assign(k_, 1);
    }
    live_bs_ = k_;
    std::copy(net_.bs_pos().begin(), net_.bs_pos().end(),
              pos_all_.begin() + static_cast<std::ptrdiff_t>(n_));
    // The audit always accumulates into the internal registry (the
    // conservation check needs the counters even without a caller sink);
    // the caller's Metrics absorbs it at end of run.
    if (opt_.metrics != nullptr && opt_.metrics->series_enabled())
      audit_.enable_series(opt_.slots);
    if (opt_.scheme == SlotScheme::kSchemeA) init_scheme_a();
    if (opt_.scheme == SlotScheme::kSchemeB) init_scheme_b();
    if (opt_.scheme == SlotScheme::kSchemeC) init_scheme_c();
    if (opt_.trace != nullptr) capture_context(*opt_.trace);
  }

  SlotSimResult run() {
    auto process = make_process(net_, opt_.mobility, opt_.seed);
    sched::SStarScheduler sstar(opt_.ct, opt_.delta);
    sched::SStarScheduler::Workspace ws;
    // Same bucket geometry the legacy per-slot rebuild chose: hint = the
    // S* guard radius over the whole population.
    geom::SpatialHash hash((1.0 + opt_.delta) * sstar.range_for(n_ + k_),
                           n_ + k_);
    bool hash_ready = false;
    std::uint64_t pair_count = 0;

    for (std::size_t t = 0; t < opt_.slots; ++t) {
      const bool measure = t >= opt_.warmup;
      if (measure && !measuring_) {
        measuring_ = true;
        std::fill(delivered_.begin(), delivered_.end(), 0);
      }

      slot_ = static_cast<std::uint32_t>(t);
      // Faults take effect at the start of the slot, before scheduling /
      // TDMA: a BS downed at slot t serves nothing at slot t.
      if (faults_ != nullptr) apply_faults(t);
      if (opt_.scheme == SlotScheme::kSchemeC) {
        // Static cellular TDMA (Definition 13): no S* — the active color
        // group serves; "pairs" counts active cells for reporting.
        const std::size_t served = scheme_c_slot(t);
        if (measure) pair_count += served;
        wired_step(t);
        process->step();
        audit_.sample_slot(slot_, in_network_, 0,
                           static_cast<std::uint32_t>(served),
                           static_cast<std::uint32_t>(live_bs_));
        continue;
      }

      const std::vector<geom::Point>& mpos = process->positions();
      if (!hash_ready) {
        std::copy(mpos.begin(), mpos.end(), pos_all_.begin());
        hash.build(pos_all_);
        hash_ready = true;
      } else {
        // Only MSs move; each slot rebuckets just the ids that crossed a
        // bucket boundary. BS entries never change.
        for (std::uint32_t i = 0; i < n_; ++i) {
          hash.move(i, pos_all_[i], mpos[i]);
          pos_all_[i] = mpos[i];
        }
      }
      sched::ScheduleStats sstats;
      const auto& pairs = sstar.feasible_pairs_into(pos_all_, hash, ws,
                                                    &sstats);
      audit_.add(Counter::kSchedCandidatePairs, sstats.candidate_pairs);
      audit_.add(Counter::kSchedFeasiblePairs, sstats.feasible_pairs);
      audit_.add(Counter::kSchedRangeRejected, sstats.range_rejected);
      if (measure) pair_count += pairs.size();

      for (const auto& pr : pairs) {
        // Each S* meeting carries one packet per direction (the bandwidth
        // is split equally between the two directions, Definition 10).
        transfer(pr.tx, pr.rx);
        transfer(pr.rx, pr.tx);
      }
      if (opt_.scheme == SlotScheme::kSchemeB) wired_step(t);
      process->step();
      audit_.sample_slot(slot_, in_network_,
                         static_cast<std::uint32_t>(pairs.size()), 0,
                         static_cast<std::uint32_t>(live_bs_));
    }

    SlotSimResult res;
    res.measured_slots = opt_.slots - opt_.warmup;
    std::vector<double> rates(n_);
    std::uint64_t total = 0;
    for (std::size_t f = 0; f < n_; ++f) {
      total += delivered_[f];
      rates[f] = static_cast<double>(delivered_[f]) /
                 static_cast<double>(res.measured_slots);
    }
    res.total_delivered = total;
    const auto summary = analysis::summarize(rates);
    res.mean_flow_rate = summary.mean;
    res.min_flow_rate = summary.min;
    res.p10_flow_rate = analysis::quantile(rates, 0.10);
    res.pairs_per_slot = static_cast<double>(pair_count) /
                         static_cast<double>(res.measured_slots);
    if (!delays_.empty()) {
      res.mean_delay = analysis::summarize(delays_).mean;
      res.p95_delay = analysis::quantile(delays_, 0.95);
    }

    std::uint64_t queued = 0;
    for (std::size_t q : q_size_) queued += q;
    res.injected = audit_.count(Counter::kInjected);
    res.delivered_lifetime = audit_.count(Counter::kDelivered);
    res.queued_end = queued;
    res.dropped = audit_.count(Counter::kDropped);
    res.dropped_bs_outage = audit_.count(Counter::kDroppedBsOutage);
    if (opt_.check_conservation) {
      MANETCAP_CHECK_MSG(in_network_ == queued,
                         "packet accounting drift: in-network counter "
                         "disagrees with actual queue occupancy");
      MANETCAP_CHECK_MSG(
          res.injected == res.delivered_lifetime + queued + res.dropped,
          "packet conservation violated: injected != delivered + queued + "
          "dropped");
      std::uint64_t window = 0;
      for (std::size_t w : count_own_) window += w;
      MANETCAP_CHECK_MSG(
          window == res.injected - res.delivered_lifetime - res.dropped,
          "flow-control window drift: sum of per-flow "
          "windows != packets in flight");
    }
    if (opt_.metrics != nullptr) opt_.metrics->absorb(std::move(audit_));
    if (opt_.trace != nullptr) {
      opt_.trace->footer.injected = res.injected;
      opt_.trace->footer.delivered = res.delivered_lifetime;
      opt_.trace->footer.dropped = res.dropped;
    }
    return res;
  }

 private:
  /// Copies the run configuration and the routing structure the forwarding
  /// code will use into the trace, so verify_trace replays against exactly
  /// the tables this run consulted (no network rebuild, no FP involved).
  /// The CSR tables are re-expanded to the nested form the codec stores.
  void capture_context(Trace& trace) const {
    TraceContext& ctx = trace.context;
    ctx.scheme = opt_.scheme;
    ctx.mobility = opt_.mobility;
    ctx.n = static_cast<std::uint32_t>(n_);
    ctx.k = static_cast<std::uint32_t>(k_);
    ctx.slots = static_cast<std::uint32_t>(opt_.slots);
    ctx.warmup = static_cast<std::uint32_t>(opt_.warmup);
    ctx.max_queue = static_cast<std::uint32_t>(opt_.max_queue);
    ctx.source_backlog = static_cast<std::uint32_t>(opt_.source_backlog);
    ctx.seed = opt_.seed;
    ctx.wired_c = k_ > 0 ? net_.params().c() : 0.0;
    ctx.dest = dest_;
    ctx.home_cell = home_cell_;
    if (!path_start_.empty()) {
      ctx.paths.assign(n_, {});
      for (std::uint32_t s = 0; s < n_; ++s)
        ctx.paths[s].assign(path_cells_.begin() + path_start_[s],
                            path_cells_.begin() + path_start_[s + 1]);
    }
    const std::size_t ns = serving_start_.empty() ? 0 : n_;
    ctx.serving.assign(ns, {});
    for (std::size_t i = 0; i < ns; ++i) {
      ctx.serving[i].reserve(serving_start_[i + 1] - serving_start_[i]);
      for (std::uint32_t s = serving_start_[i]; s < serving_start_[i + 1];
           ++s)
        ctx.serving[i].push_back(static_cast<std::uint32_t>(n_) +
                                 serving_ids_[s]);
    }
  }

  // --- queue slabs ---------------------------------------------------------
  void push_packet(std::uint32_t node, std::uint32_t flow, std::uint32_t hop,
                   std::uint32_t born) {
    const std::size_t at = node * cap_ + q_size_[node]++;
    q_flow_[at] = flow;
    q_hop_[at] = hop;
    q_born_[at] = born;
  }

  /// Removes the packet at queue position `idx`, shifting the tail down —
  /// exactly the deque::erase order semantics, on contiguous storage.
  void erase_packet(std::uint32_t node, std::size_t idx) {
    const std::size_t base = node * cap_;
    const std::size_t last = --q_size_[node];
    for (std::size_t j = idx; j < last; ++j) {
      q_flow_[base + j] = q_flow_[base + j + 1];
      q_hop_[base + j] = q_hop_[base + j + 1];
      q_born_[base + j] = q_born_[base + j + 1];
    }
  }

  // --- scheme A ------------------------------------------------------------
  void init_scheme_a() {
    const double side = 0.8 * net_.mobility_radius();
    tess_ = std::make_unique<geom::SquareTessellation>(
        geom::SquareTessellation::with_cell_side(std::min(side, 1.0)));
    home_cell_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i)
      home_cell_[i] = tess_->index_of(tess_->cell_of(net_.ms_home()[i]));
    path_start_.assign(n_ + 1, 0);
    for (std::uint32_t s = 0; s < n_; ++s) {
      const auto cells = tess_->hv_path(tess_->cell_at(home_cell_[s]),
                                        tess_->cell_at(home_cell_[dest_[s]]));
      path_start_[s + 1] =
          path_start_[s] + static_cast<std::uint32_t>(cells.size());
      for (const auto& c : cells)
        path_cells_.push_back(static_cast<std::uint32_t>(tess_->index_of(c)));
    }
  }

  // --- scheme B ------------------------------------------------------------
  void init_scheme_b() {
    MANETCAP_CHECK_MSG(k_ >= 1, "scheme B slot sim needs base stations");
    linkcap::LinkCapacityModel mu(net_.shape(), net_.params().f(), n_ + k_,
                                  opt_.ct, opt_.delta);
    const double contact = mu.max_contact_dist_ms_bs();
    contact_ = contact;  // re-homing under faults reuses the same rule
    geom::SpatialHash bs_hash(std::max(contact, 1e-4), k_);
    bs_hash.build(net_.bs_pos());
    serving_start_.assign(n_ + 1, 0);
    serving_is_fallback_.assign(n_, 0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::size_t before = serving_ids_.size();
      bs_hash.visit_disk(
          net_.ms_home()[i], contact,
          [this](std::uint32_t l) { serving_ids_.push_back(l); });
      if (serving_ids_.size() == before) {
        // Sparse-BS fallback: an MS whose home point sees no BS within the
        // contact distance must still have a serving BS — packets addressed
        // to it would otherwise sit at hop 0 in BS queues forever
        // (wired_step has nowhere to forward them), permanently pinning
        // max_queue slots and throttling every other flow through that BS.
        const std::uint32_t l = bs_hash.nearest(net_.ms_home()[i]);
        MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                           "scheme B: nearest-BS fallback found no BS");
        serving_ids_.push_back(l);
        serving_is_fallback_[i] = 1;
      }
      serving_start_[i + 1] = static_cast<std::uint32_t>(serving_ids_.size());
    }
  }

  // --- scheme C ------------------------------------------------------------
  void init_scheme_c() {
    MANETCAP_CHECK_MSG(k_ >= 1, "scheme C slot sim needs base stations");
    // Association: nearest BS (with cluster-grid placement this is the
    // hexagonal cell of Definition 13). The serving table holds one BS per
    // MS so the wired phase can reuse the scheme-B machinery.
    geom::SpatialHash bs_hash(
        std::max(1.0 / std::sqrt(static_cast<double>(k_)), 1e-4), k_);
    bs_hash.build(net_.bs_pos());
    serving_start_.assign(n_ + 1, 0);
    serving_ids_.resize(n_);
    serving_is_fallback_.assign(n_, 0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::uint32_t l = bs_hash.nearest(net_.ms_home()[i]);
      MANETCAP_CHECK_MSG(l != geom::SpatialHash::kNone,
                         "scheme C: BS association found no BS");
      serving_ids_[i] = l;
      serving_start_[i + 1] = i + 1;
    }
    rebuild_members_and_colors();
    rr_cell_.assign(k_, 0);
  }

  /// Rebuilds the member CSR, cell radii and TDMA coloring from the
  /// current association (serving_ids_). Called at init (all cells live)
  /// and after every fault-driven re-association; dead cells get color −1
  /// so the rotation never activates them.
  void rebuild_members_and_colors() {
    std::vector<double> cell_radius(k_, 0.0);
    std::vector<std::uint32_t> member_count(k_, 0);
    for (std::uint32_t i = 0; i < n_; ++i) {
      const std::uint32_t l = serving_ids_[serving_start_[i]];
      ++member_count[l];
      cell_radius[l] = std::max(
          cell_radius[l],
          geom::torus_dist(net_.ms_home()[i], net_.bs_pos()[l]));
    }
    // Members per cell, CSR, in ascending MS order (the order the legacy
    // push_back construction produced).
    members_start_.assign(k_ + 1, 0);
    for (std::uint32_t l = 0; l < k_; ++l)
      members_start_[l + 1] = members_start_[l] + member_count[l];
    members_ids_.resize(n_);
    std::vector<std::uint32_t> cursor(members_start_.begin(),
                                      members_start_.end() - 1);
    for (std::uint32_t i = 0; i < n_; ++i)
      members_ids_[cursor[serving_ids_[serving_start_[i]]]++] = i;

    const double wobble = 2.0 * net_.mobility_radius();
    for (auto& r : cell_radius) r += wobble;

    // Greedy coloring of the cell interference graph (Theorem 9's
    // bounded-degree coloring), restricted to live cells.
    cell_color_.assign(k_, -1);
    num_colors_ = 1;
    for (std::uint32_t a = 0; a < k_; ++a) {
      if (!bs_is_live(a)) continue;
      std::vector<bool> used(num_colors_ + 1, false);
      for (std::uint32_t b = 0; b < a; ++b) {
        if (!bs_is_live(b)) continue;
        const double d = geom::torus_dist(net_.bs_pos()[a], net_.bs_pos()[b]);
        if (d < cell_radius[a] + (1.0 + opt_.delta) * cell_radius[b] ||
            d < cell_radius[b] + (1.0 + opt_.delta) * cell_radius[a]) {
          if (cell_color_[b] < static_cast<int>(used.size()))
            used[cell_color_[b]] = true;
        }
      }
      int c = 0;
      while (c < static_cast<int>(used.size()) && used[c]) ++c;
      cell_color_[a] = c;
      num_colors_ = std::max(num_colors_, static_cast<std::size_t>(c) + 1);
    }
  }

  // --- fault injection -----------------------------------------------------
  /// True when BS `l` is serving. Without a fault plan bs_alive_ stays
  /// empty and every BS is live (the branch predicts perfectly).
  bool bs_is_live(std::uint32_t l) const {
    return bs_alive_.empty() || bs_alive_[l] != 0;
  }

  std::uint32_t node_of_bs(std::uint32_t l) const {
    return static_cast<std::uint32_t>(n_) + l;
  }

  /// Applies every fault event scheduled at or before slot `t`. Events are
  /// validated non-decreasing, so this is a cursor walk.
  void apply_faults(std::size_t t) {
    const auto& ev = faults_->events;
    while (next_fault_ < ev.size() && ev[next_fault_].slot <= t) {
      apply_fault(ev[next_fault_]);
      ++next_fault_;
    }
  }

  void apply_fault(const FaultEvent& e) {
    switch (e.kind) {
      case FaultKind::kBsDown:
        apply_bs_down({e.bs});
        break;
      case FaultKind::kBsUp:
        apply_bs_up(e.bs);
        break;
      case FaultKind::kWireScale:
        apply_wire_scale(e);
        break;
      case FaultKind::kRegional: {
        // Resolve the disk to concrete BS ids sim-side, so the trace
        // timeline (and therefore the replay checker) never touches
        // geometry or floating point.
        std::vector<std::uint32_t> downs;
        for (std::uint32_t l = 0; l < k_; ++l)
          if (bs_alive_[l] != 0 &&
              geom::torus_dist(net_.bs_pos()[l], e.center) < e.radius)
            downs.push_back(l);
        apply_bs_down(downs);
        break;
      }
    }
  }

  /// Opens a timeline entry in the trace context (null when not tracing).
  TraceFault* open_trace_fault(std::uint8_t kind) {
    if (opt_.trace == nullptr) return nullptr;
    opt_.trace->context.faults.push_back({});
    TraceFault& tf = opt_.trace->context.faults.back();
    tf.slot = slot_;
    tf.kind = kind;
    return &tf;
  }

  /// Kills every (still live) BS in `downs`: stream markers, queue drops,
  /// re-homing, hop-1 demotions, scheme-C recoloring — in that order, all
  /// deterministic (BSs ascending, queues FIFO).
  void apply_bs_down(const std::vector<std::uint32_t>& downs) {
    std::vector<std::uint32_t> fresh;
    for (std::uint32_t l : downs)
      if (bs_alive_[l] != 0) fresh.push_back(l);  // down on dead BS: no-op
    if (fresh.empty()) return;
    MANETCAP_CHECK_MSG(live_bs_ > fresh.size(),
                       "FaultPlan: fault plan leaves no live base station "
                       "at slot " << slot_);
    TraceFault* tf = open_trace_fault(TraceFault::kKindBsDown);
    for (std::uint32_t l : fresh) {
      bs_alive_[l] = 0;
      --live_bs_;
      if (tf != nullptr) {
        tf->bs.push_back(node_of_bs(l));
        opt_.trace->record(TraceEventKind::kBsDown, slot_, 0, 0,
                           node_of_bs(l), node_of_bs(l));
      }
    }
    for (std::uint32_t l : fresh) drop_queue(l);
    rebuild_serving(tf);
  }

  void apply_bs_up(std::uint32_t l) {
    if (bs_alive_[l] != 0) return;  // up on a live BS: no-op
    bs_alive_[l] = 1;
    ++live_bs_;
    TraceFault* tf = open_trace_fault(TraceFault::kKindBsUp);
    if (tf != nullptr) {
      tf->bs.push_back(node_of_bs(l));
      opt_.trace->record(TraceEventKind::kBsUp, slot_, 0, 0, node_of_bs(l),
                         node_of_bs(l));
    }
    rebuild_serving(tf);
  }

  /// Drops a dying BS's entire queue, FIFO order. The only loss source in
  /// the simulator: each packet counts under kDropped AND kDroppedBsOutage
  /// and releases its flow-control window slot, so the conservation
  /// identity (injected == delivered + queued + dropped) still closes.
  void drop_queue(std::uint32_t l) {
    const std::uint32_t node = node_of_bs(l);
    const std::size_t base = node * cap_;
    const std::size_t qs = q_size_[node];
    for (std::size_t idx = 0; idx < qs; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      --count_own_[flow];
      --in_network_;
      audit_.inc(Counter::kDropped);
      audit_.inc(Counter::kDroppedBsOutage);
      if (opt_.trace != nullptr)
        opt_.trace->record(TraceEventKind::kDrop, slot_, flow,
                           q_hop_[base + idx], node, node);
    }
    q_size_[node] = 0;
  }

  /// Re-scales one wired edge's accrual rate. Credit earned at the old
  /// scale is settled through the fault slot first (token-bucket cap
  /// included), so a later top-up cannot retroactively apply the new rate
  /// to slots already elapsed; severing (scale 0) also dumps the bucket.
  void apply_wire_scale(const FaultEvent& e) {
    const std::uint32_t a = std::min(e.bs, e.bs2);
    const std::uint32_t b = std::max(e.bs, e.bs2);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto [wire, first_use] = wire_credit_.try_emplace(key);
    if (first_use) wire->last_topup = slot_;
    const double c = net_.params().c();
    if (wire->last_topup < slot_) {
      wire->credit += (c * wire->scale) *
                      static_cast<double>(slot_ - wire->last_topup);
      wire->credit = std::min(wire->credit, std::max(1.0, 4.0 * c));
    }
    wire->last_topup = slot_;
    wire->scale = e.scale;
    if (e.scale == 0.0) wire->credit = 0.0;
    TraceFault* tf = open_trace_fault(TraceFault::kKindWireScale);
    if (tf != nullptr) {
      tf->bs = {node_of_bs(a), node_of_bs(b)};
      tf->scale = e.scale;
      opt_.trace->record(TraceEventKind::kWireScale, slot_, 0, 0,
                         node_of_bs(a), node_of_bs(b));
    }
  }

  /// Nearest live BS to `p` (ties break to the lowest id — deterministic).
  std::uint32_t nearest_live_bs(const geom::Point& p) const {
    std::uint32_t best = geom::SpatialHash::kNone;
    double best_d2 = 0.0;
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (bs_alive_[l] == 0) continue;
      const double d2 = geom::torus_dist2(p, net_.bs_pos()[l]);
      if (best == geom::SpatialHash::kNone || d2 < best_d2) {
        best = l;
        best_d2 = d2;
      }
    }
    MANETCAP_CHECK_MSG(best != geom::SpatialHash::kNone,
                       "fault re-homing found no live BS");
    return best;
  }

  /// Recomputes every MS's serving set over the live BSs — the same rule
  /// init used (scheme B: all BSs within the contact distance, nearest-BS
  /// fallback when none; scheme C: nearest BS) restricted to live ones.
  /// An MS whose membership is unchanged as a set keeps its old list
  /// verbatim (order included), so an untouched region of the network sees
  /// zero behavioral difference. Changed MSs are the "affected" set: their
  /// new lists are recorded in the trace timeline, and hop-1 packets parked
  /// at a BS that no longer serves their destination are demoted to hop 0
  /// (they re-forward over the wired backbone).
  void rebuild_serving(TraceFault* tf) {
    std::vector<std::uint32_t> new_start(n_ + 1, 0);
    std::vector<std::uint32_t> new_ids;
    new_ids.reserve(serving_ids_.size());
    std::vector<std::uint8_t> new_fallback(n_, 0);
    std::vector<std::uint8_t> changed(n_, 0);
    const double contact2 = contact_ * contact_;
    for (std::uint32_t i = 0; i < n_; ++i) {
      const geom::Point home = net_.ms_home()[i];
      const std::size_t mark = new_ids.size();
      if (opt_.scheme == SlotScheme::kSchemeB) {
        // Same inclusive predicate SpatialHash::visit_disk applies
        // (dist² <= contact²), so boundary MSs are not spuriously rehomed.
        for (std::uint32_t l = 0; l < k_; ++l)
          if (bs_alive_[l] != 0 &&
              geom::torus_dist2(home, net_.bs_pos()[l]) <= contact2)
            new_ids.push_back(l);
        if (new_ids.size() == mark) {
          new_ids.push_back(nearest_live_bs(home));
          new_fallback[i] = 1;
        }
      } else {
        new_ids.push_back(nearest_live_bs(home));
      }
      const std::uint32_t ob = serving_start_[i], oe = serving_start_[i + 1];
      bool same = oe - ob == new_ids.size() - mark &&
                  new_fallback[i] == serving_is_fallback_[i];
      for (std::uint32_t s = ob; same && s < oe; ++s) {
        bool found = false;
        for (std::size_t j = mark; j < new_ids.size() && !found; ++j)
          found = new_ids[j] == serving_ids_[s];
        same = found;
      }
      if (same) {
        std::copy(serving_ids_.begin() + ob, serving_ids_.begin() + oe,
                  new_ids.begin() + static_cast<std::ptrdiff_t>(mark));
      } else {
        changed[i] = 1;
        audit_.inc(Counter::kMsRehomed);
        if (tf != nullptr) {
          tf->rehomed_ms.push_back(i);
          auto& list = tf->rehomed_serving.emplace_back(
              new_ids.begin() + static_cast<std::ptrdiff_t>(mark),
              new_ids.end());
          for (std::uint32_t& v : list) v += static_cast<std::uint32_t>(n_);
        }
      }
      new_start[i + 1] = static_cast<std::uint32_t>(new_ids.size());
    }
    serving_start_.swap(new_start);
    serving_ids_.swap(new_ids);
    serving_is_fallback_.swap(new_fallback);

    // Demote stranded hop-1 packets: their BS no longer serves the
    // destination, so the downlink contract would never fire. Hop 0 lets
    // wired_step re-forward them to the new serving set. BSs ascending,
    // FIFO within a queue.
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (bs_alive_[l] == 0) continue;
      const std::uint32_t node = node_of_bs(l);
      const std::size_t base = node * cap_;
      for (std::size_t idx = 0; idx < q_size_[node]; ++idx) {
        if (q_hop_[base + idx] != 1) continue;
        const std::uint32_t d = dest_[q_flow_[base + idx]];
        if (changed[d] == 0) continue;
        bool serves = false;
        for (std::uint32_t s = serving_start_[d];
             s < serving_start_[d + 1] && !serves; ++s)
          serves = serving_ids_[s] == l;
        if (serves) continue;
        q_hop_[base + idx] = 0;
        audit_.inc(Counter::kHop1Demoted);
        if (opt_.trace != nullptr)
          opt_.trace->record(TraceEventKind::kRehome, slot_,
                             q_flow_[base + idx], 0, node, node);
      }
    }

    if (opt_.scheme == SlotScheme::kSchemeC) rebuild_members_and_colors();
  }

  /// One TDMA slot of scheme C: every cell of the active color serves one
  /// uplink and one downlink on its two symmetric channels. Returns the
  /// number of active cells (the concurrency statistic).
  std::size_t scheme_c_slot(std::size_t t) {
    const int active = static_cast<int>(t % num_colors_);
    std::size_t served = 0;
    for (std::uint32_t l = 0; l < k_; ++l) {
      const std::uint32_t mb = members_start_[l], me = members_start_[l + 1];
      if (cell_color_[l] != active || mb == me) continue;
      ++served;
      const std::uint32_t node = static_cast<std::uint32_t>(n_) + l;
      const std::size_t base = node * cap_;
      // Uplink channel: the round-robin member injects one packet.
      const std::uint32_t i = members_ids_[mb + rr_cell_[l]++ % (me - mb)];
      try_inject(i, node);
      // Downlink channel: deliver one wired-arrived packet whose
      // destination lives in this cell. The scan must cover the whole
      // queue, not a bounded prefix: hop-0 packets stalled on wired
      // credit keep their positions at the head, so a kScanDepth-limited
      // scan permanently starves every deliverable hop-1 packet queued
      // behind ≥ kScanDepth of them.
      bool delivered_one = false;
      for (std::size_t idx = 0; idx < q_size_[node]; ++idx) {
        if (q_hop_[base + idx] != 1) continue;
        const std::uint32_t d = dest_[q_flow_[base + idx]];
        if (serving_ids_[serving_start_[d]] == l) {
          const std::uint32_t flow = q_flow_[base + idx];
          const std::uint32_t hop = q_hop_[base + idx];
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(node, idx);
          deliver(flow, hop, born, node);
          delivered_one = true;
          break;
        }
      }
      if (!delivered_one && q_size_[node] > 0)
        audit_.inc(Counter::kDownlinkStarved);
    }
    return served;
  }

  bool is_bs(std::uint32_t id) const { return id >= n_; }

  /// Moves at most one packet from `from` to `to` for the active scheme.
  void transfer(std::uint32_t from, std::uint32_t to) {
    switch (opt_.scheme) {
      case SlotScheme::kSchemeA:
        transfer_scheme_a(from, to);
        break;
      case SlotScheme::kTwoHop:
        transfer_two_hop(from, to);
        break;
      case SlotScheme::kSchemeB:
        transfer_scheme_b(from, to);
        break;
      case SlotScheme::kSchemeC:
        break;  // scheme C never uses S* pairs (static TDMA)
    }
  }

  void deliver(std::uint32_t flow, std::uint32_t hop, std::uint32_t born,
               std::uint32_t holder) {
    ++delivered_[flow];
    --count_own_[flow];  // release the flow-control window slot
    --in_network_;
    audit_.inc(Counter::kDelivered);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kDeliver, slot_, flow, hop, holder,
                         dest_[flow]);
    if (measuring_ && born >= opt_.warmup)
      delays_.push_back(static_cast<double>(slot_ - born));
  }

  /// Source injection under the flow-control window: pushes one packet of
  /// `flow`'s own traffic into node `node`'s queue, counting every
  /// rejection — a full queue used to no-op silently, making the offered
  /// load unknowable.
  void try_inject(std::uint32_t flow, std::uint32_t node) {
    if (count_own_[flow] >= opt_.source_backlog) {
      audit_.inc(Counter::kInjectRejectWindowFull);
      return;
    }
    if (q_size_[node] >= cap_) {
      audit_.inc(Counter::kInjectRejectQueueFull);
      return;
    }
    push_packet(node, flow, 0, slot_);
    ++count_own_[flow];
    ++in_network_;
    audit_.inc(Counter::kInjected);
    if (opt_.trace != nullptr)
      opt_.trace->record(TraceEventKind::kInject, slot_, flow, 0, flow, node);
  }

  // Scheme A: a relay in squarelet path[h] hands the packet to a node whose
  // home squarelet is path[h+1], or directly to the destination.
  void transfer_scheme_a(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;  // pure ad hoc scheme

    // Source injection: keep the head of the pipeline saturated.
    try_inject(from, from);

    const std::size_t base = from * cap_;
    const std::size_t scan = std::min<std::size_t>(q_size_[from], kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      const std::uint32_t hop = q_hop_[base + idx];
      if (to == dest_[flow]) {
        // The destination itself can take delivery from any path position
        // at or next to its own squarelet; with H-V routing the packet is
        // only ever co-located with the destination at the final cells, so
        // accept delivery whenever they meet.
        const std::uint32_t born = q_born_[base + idx];
        erase_packet(from, idx);
        deliver(flow, hop, born, from);
        return;
      }
      // At the last path cell only the destination itself can take the
      // packet (handled above). `to` cannot be a BS here — the early
      // return already excluded BS endpoints.
      if (hop + 1 >= path_start_[flow + 1] - path_start_[flow]) continue;
      if (home_cell_[to] == path_cells_[path_start_[flow] + hop + 1]) {
        if (q_size_[to] < cap_) {
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          push_packet(to, flow, hop + 1, born);
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, flow, hop + 1,
                               from, to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Two-hop: source → any relay → destination.
  void transfer_two_hop(std::uint32_t from, std::uint32_t to) {
    if (is_bs(from) || is_bs(to)) return;
    try_inject(from, from);
    const std::size_t base = from * cap_;
    const std::size_t scan = std::min<std::size_t>(q_size_[from], kScanDepth);
    for (std::size_t idx = 0; idx < scan; ++idx) {
      const std::uint32_t flow = q_flow_[base + idx];
      if (to == dest_[flow]) {
        const std::uint32_t hop = q_hop_[base + idx];
        const std::uint32_t born = q_born_[base + idx];
        erase_packet(from, idx);
        deliver(flow, hop, born, from);
        return;
      }
      // Only the source hands off to a relay (exactly two hops). The relay
      // hand-off advances hop to 1, so "a third hop would be needed" is
      // visible in the packet state (and in the trace).
      if (flow == from) {
        if (q_size_[to] < cap_) {
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          push_packet(to, flow, 1, born);
          audit_.inc(Counter::kRelayed);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kRelay, slot_, flow, 1, from,
                               to);
          return;
        }
        audit_.inc(Counter::kRelayRejectQueueFull);
      }
    }
  }

  // Scheme B: MS→BS uplink; BS queues drain over the wired backbone in
  // wired_step(); BS→MS downlink on meeting the destination.
  void transfer_scheme_b(std::uint32_t from, std::uint32_t to) {
    if (!is_bs(from) && is_bs(to)) {
      if (!bs_is_live(to - static_cast<std::uint32_t>(n_))) {
        // A dead BS still occupies its position, so S* can schedule a
        // meeting with it — the meeting is simply wasted.
        audit_.inc(Counter::kUplinkBlockedBsDown);
        return;
      }
      // Uplink: inject one packet of `from`'s own flow (within the
      // flow-control window).
      try_inject(from, to);
      return;
    }
    if (is_bs(from) && !is_bs(to)) {
      // Downlink: deliver a packet destined to `to`, if this BS holds one.
      const std::size_t base = from * cap_;
      const std::size_t scan =
          std::min<std::size_t>(q_size_[from], kScanDepth);
      for (std::size_t idx = 0; idx < scan; ++idx) {
        if (dest_[q_flow_[base + idx]] == to && q_hop_[base + idx] == 1) {
          const std::uint32_t flow = q_flow_[base + idx];
          const std::uint32_t born = q_born_[base + idx];
          erase_packet(from, idx);
          deliver(flow, 1, born, from);
          return;
        }
      }
    }
  }

  // Wired phase: every edge accrues c(n) units of credit per slot (lazily,
  // from the slot of its last use); a BS forwards each uplink packet
  // (hop 0) to a BS serving the destination once the edge holds a full
  // unit of credit.
  void wired_step(std::size_t slot) {
    const double c = net_.params().c();
    for (std::uint32_t l = 0; l < k_; ++l) {
      if (!bs_is_live(l)) continue;  // a dead BS's queue was dropped
      const std::uint32_t node = static_cast<std::uint32_t>(n_) + l;
      const std::size_t base = node * cap_;
      // Single compaction pass: read cursor `r` visits every packet in the
      // original order (so the rr_ round-robin and credit decisions are
      // made in exactly the sequence the old erase-in-place loop made
      // them), write cursor `w` keeps the survivors.
      const std::size_t qs = q_size_[node];
      std::size_t w = 0;
      for (std::size_t r = 0; r < qs; ++r) {
        const auto keep = [&] {
          if (w != r) {
            q_flow_[base + w] = q_flow_[base + r];
            q_hop_[base + w] = q_hop_[base + r];
            q_born_[base + w] = q_born_[base + r];
          }
          ++w;
        };
        if (q_hop_[base + r] != 0) {
          keep();
          continue;
        }
        const std::uint32_t flow = q_flow_[base + r];
        const std::uint32_t d = dest_[flow];
        const std::uint32_t sb = serving_start_[d], se = serving_start_[d + 1];
        if (se == sb) {
          // Unreachable since init_scheme_b/_c guarantee a serving BS per
          // MS; counted defensively so a future association change that
          // reintroduces orphans fails the audit instead of stalling.
          audit_.inc(Counter::kUndeliverable);
          keep();
          continue;
        }
        // Round-robin over the destination's serving BSs.
        const std::uint32_t target = serving_ids_[sb + rr_++ % (se - sb)];
        if (target == l) {
          q_hop_[base + r] = 1;  // already at a serving BS
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), flow, 1,
                               node, node);
          keep();
          continue;
        }
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(l, target)) << 32) |
            std::max(l, target);
        auto [wire, first_use] = wire_credit_.try_emplace(key);
        // A fresh edge starts accruing at its first-use slot — crediting
        // retroactively from slot 0 would let low-c(n) edges burst a full
        // bucket at first touch and inflate early infra throughput.
        if (first_use) wire->last_topup = slot;
        if (wire->last_topup < slot + 1) {
          // scale is exactly 1.0 outside a fault plan, so c·scale·Δ is
          // bit-identical to the historical c·Δ accrual.
          wire->credit += (c * wire->scale) *
                          static_cast<double>(slot + 1 - wire->last_topup);
          // Token bucket with depth scaled to the wire rate (4 slots of
          // credit, but never below one packet so low-c edges still
          // transmit): an idle edge cannot burst arbitrarily later.
          wire->credit = std::min(wire->credit, std::max(1.0, 4.0 * c));
          wire->last_topup = slot + 1;
        }
        if (wire->credit < 1.0) {
          audit_.inc(Counter::kWiredCreditStall);
          keep();
        } else if (q_size_[n_ + target] >= cap_) {
          audit_.inc(Counter::kWiredRejectQueueFull);
          keep();
        } else {
          wire->credit -= 1.0;
          push_packet(static_cast<std::uint32_t>(n_) + target, flow, 1,
                      q_born_[base + r]);
          audit_.inc(Counter::kWiredForwarded);
          if (opt_.trace != nullptr)
            opt_.trace->record(TraceEventKind::kWiredForward,
                               static_cast<std::uint32_t>(slot), flow, 1,
                               node,
                               static_cast<std::uint32_t>(n_ + target));
        }
      }
      q_size_[node] = w;
    }
  }

  static constexpr std::size_t kScanDepth = 16;

  const net::Network& net_;
  const std::vector<std::uint32_t>& dest_;
  SlotSimOptions opt_;
  std::size_t n_;
  std::size_t k_;

  // Queue slabs (SoA): node q's packets occupy [q·cap_, q·cap_+q_size_[q])
  // in each of the three parallel arrays, in FIFO order.
  std::size_t cap_;
  std::vector<std::uint32_t> q_flow_;
  std::vector<std::uint32_t> q_hop_;
  std::vector<std::uint32_t> q_born_;
  std::vector<std::size_t> q_size_;

  std::vector<std::uint64_t> delivered_;
  std::vector<std::size_t> count_own_;
  std::vector<double> delays_;  // per delivered packet, measurement window
  std::uint32_t slot_ = 0;      // current slot (delay bookkeeping)
  bool measuring_ = false;

  // Persistent position buffer: MSs at [0, n), BSs at [n, n+k). The BS
  // tail never changes after construction.
  std::vector<geom::Point> pos_all_;

  // Audit state: the metrics registry (absorbed into opt_.metrics at end
  // of run) and a running count of packets resident in any queue — kept
  // incrementally so per-slot sampling is O(1), then cross-checked against
  // the actual queue occupancy by the conservation invariant.
  Metrics audit_;
  std::uint64_t in_network_ = 0;

  // Scheme A state (paths in CSR: flow s's squarelet path is
  // path_cells_[path_start_[s] .. path_start_[s+1])).
  std::unique_ptr<geom::SquareTessellation> tess_;
  std::vector<std::uint32_t> home_cell_;
  std::vector<std::uint32_t> path_start_;
  std::vector<std::uint32_t> path_cells_;

  // Scheme B/C serving sets in CSR (BS indices 0..k).
  std::vector<std::uint32_t> serving_start_;
  std::vector<std::uint32_t> serving_ids_;
  WireCreditMap wire_credit_;
  std::size_t rr_ = 0;

  // Scheme C state (cell members in CSR).
  std::vector<std::uint32_t> members_start_;
  std::vector<std::uint32_t> members_ids_;
  std::vector<int> cell_color_;
  std::size_t num_colors_ = 1;
  std::vector<std::size_t> rr_cell_;

  // Fault-injection state. faults_ stays null for a fault-free run: every
  // fault branch is guarded on it (or on bs_alive_ being empty), so the
  // no-fault code path — and its golden trace bytes — are unchanged.
  const FaultPlan* faults_ = nullptr;
  std::size_t next_fault_ = 0;          // cursor into faults_->events
  std::vector<std::uint8_t> bs_alive_;  // per-BS liveness; empty = all live
  std::size_t live_bs_ = 0;
  double contact_ = 0.0;  // scheme B MS–BS contact distance (re-homing rule)
  std::vector<std::uint8_t> serving_is_fallback_;  // nearest-BS fallback MSs
};

}  // namespace

SlotSimResult run_slot_sim(const net::Network& net,
                           const std::vector<std::uint32_t>& dest,
                           const SlotSimOptions& options) {
  SlotSim sim(net, dest, options);
  return sim.run();
}

}  // namespace manetcap::sim
